(* beltway-experiments: regenerate any of the paper's tables/figures
   by id, or all of them. *)

let run ids full list_ids verbose csv jobs =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  (match jobs with
  | Some n -> Beltway_sim.Pool.set_default_jobs n
  | None -> ());
  Beltway_sim.Figures.csv_output := csv;
  if list_ids then begin
    List.iter print_endline Beltway_sim.Figures.all_ids;
    exit 0
  end;
  let ids = if ids = [] then Beltway_sim.Figures.all_ids else ids in
  List.iter
    (fun id ->
      try Beltway_sim.Figures.run ~id ~full
      with Invalid_argument e ->
        Printf.eprintf "error: %s\n" e;
        exit 2)
    ids

open Cmdliner

let ids_arg =
  let doc = "Experiment ids (table1, fig1, fig5..fig11); default: all." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let full_arg =
  let doc = "Use the paper's 33-point heap ladder instead of 9 points." in
  Arg.(value & flag & info [ "full" ] ~doc)

let list_arg =
  let doc = "List experiment ids." in
  Arg.(value & flag & info [ "list" ] ~doc)

let verbose_arg =
  let doc = "Log progress (minimum-heap searches, sweeps)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let csv_arg =
  let doc = "Also emit each table as CSV (for plotting)." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the evaluation sweep (default: \
     $(b,BELTWAY_JOBS) or the number of cores). Output is identical \
     at any job count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "regenerate the Beltway paper's tables and figures" in
  Cmd.v
    (Cmd.info "beltway-experiments" ~doc)
    Term.(
      const run $ ids_arg $ full_arg $ list_arg $ verbose_arg $ csv_arg
      $ jobs_arg)

let () = Cmd.eval cmd |> exit
