(* beltway-run: run one workload under one collector configuration and
   report collector statistics — the reproduction's analogue of picking
   a GC on the Jikes RVM command line (the paper's headline interface:
   "Beltway configurations, selected by command line options"). *)

let sanitizer_level = function
  | None -> Beltway_check.Sanitizer.env_level ()
  | Some n -> (
    match Beltway_check.Sanitizer.level_of_int n with
    | Some l -> l
    | None ->
      Printf.eprintf "error: --sanitize takes 0, 1 or 2 (got %d)\n" n;
      exit 2)

let sanitizer_report san =
  if Beltway_check.Sanitizer.enabled san then begin
    Beltway_check.Sanitizer.check_now san;
    Format.printf "%a" Beltway_check.Sanitizer.report san;
    if not (Beltway_check.Sanitizer.ok san) then exit 1
  end

let list_policies () =
  List.iter
    (fun (name, _) ->
      Printf.printf "%-12s %s\n%-12s exemplar: %s\n" name
        (Beltway.Policy.describe name) ""
        (Beltway.Policy.exemplar name))
    Beltway.Policy.registry;
  exit 0

let list_strategies () =
  List.iter
    (fun (i : Beltway.Strategy.info) ->
      Printf.printf "%-12s %s\n%-12s exemplar: %s\n" i.Beltway.Strategy.key
        i.Beltway.Strategy.summary "" i.Beltway.Strategy.exemplar_config)
    Beltway.Strategy.infos;
  exit 0

let run config_str bench_name heap_kb verify_heap quiet dump sanitize trace
    metrics profile policy strategy gc_domains =
  (match gc_domains with
  | Some n when n < 1 ->
    Printf.eprintf "error: --gc-domains must be >= 1 (got %d)\n" n;
    exit 2
  | _ -> ());
  if policy = Some "list" then list_policies ();
  if strategy = Some "list" then list_strategies ();
  let config_str =
    match policy with
    | Some name -> config_str ^ "+policy:" ^ name
    | None -> config_str
  in
  let config_str =
    match strategy with
    | Some name -> config_str ^ "+strategy:" ^ name
    | None -> config_str
  in
  match Beltway.Config.parse config_str with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 2
  | Ok config -> (
    (* Resolve early so an unknown +policy:NAME / +strategy:NAME (or a
       non-parallel strategy asked to shard over domains) is a clean
       CLI error, not an Invalid_argument out of Gc.create. *)
    (match Beltway.Policy.resolve config with
    | Ok _ -> ()
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2);
    (match Beltway.Strategy.resolve config with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2
    | Ok strat -> (
      let effective_domains =
        match gc_domains with
        | Some n -> n
        | None -> Option.value (Beltway.Gc.env_gc_domains ()) ~default:1
      in
      match
        Beltway.Strategy.check_domains strat ~gc_domains:effective_domains
      with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2));
    match Beltway_workload.Spec.by_name bench_name with
    | None ->
      Printf.eprintf "error: unknown benchmark %S (have: %s)\n" bench_name
        (String.concat ", "
           (List.map (fun b -> b.Beltway_workload.Spec.name) Beltway_workload.Spec.all));
      exit 2
    | Some bench ->
      let gc =
        Beltway.Gc.create ~frame_log_words:Beltway_sim.Runner.frame_log_words
          ?gc_domains ~config ~heap_bytes:(heap_kb * 1024) ()
      in
      let san = Beltway_check.Sanitizer.attach ~level:(sanitizer_level sanitize) gc in
      let trace_file =
        match trace with Some _ -> trace | None -> Beltway_obs.Recorder.env_file ()
      in
      let recorder =
        if trace_file <> None || metrics <> None then
          Some (Beltway_obs.Recorder.attach gc)
        else None
      in
      let profile_file =
        match profile with
        | Some _ -> profile
        | None -> Beltway_obs.Profiler.env_file ()
      in
      let profiler =
        if profile_file <> None then Some (Beltway_obs.Profiler.attach gc)
        else None
      in
      let export_profile () =
        match (profiler, profile_file) with
        | Some p, Some f ->
          Beltway_obs.Profiler.detach p;
          Beltway_obs.Profiler.write_file f
            [
              Beltway_obs.Profiler.run_json
                ~name:bench.Beltway_workload.Spec.name p;
            ];
          if not quiet then begin
            Format.printf "%a@." (Beltway_obs.Profiler.report ~top:10) p;
            Format.printf "profile:     %s@." f
          end
        | _ -> ()
      in
      let export_obs () =
        match recorder with
        | None -> ()
        | Some r ->
          Beltway_obs.Recorder.detach r;
          Option.iter
            (fun f ->
              Beltway_obs.Chrome_trace.write_file f
                (Beltway_obs.Chrome_trace.to_json
                   ~process_name:bench.Beltway_workload.Spec.name r);
              if not quiet then
                Format.printf "trace:       %s (%d events, %d dropped)@." f
                  (Beltway_obs.Recorder.event_count r)
                  (Beltway_obs.Recorder.dropped r))
            trace_file;
          Option.iter
            (fun f ->
              Beltway_obs.Chrome_trace.write_file f
                (Beltway_obs.Metrics.to_json (Beltway_obs.Recorder.metrics r));
              if not quiet then Format.printf "metrics:     %s@." f)
            metrics
      in
      let t0 = Unix.gettimeofday () in
      let outcome =
        try
          bench.Beltway_workload.Spec.run gc;
          Ok ()
        with Beltway.Gc.Out_of_memory m -> Error m
      in
      let wall = Unix.gettimeofday () -. t0 in
      let stats = Beltway.Gc.stats gc in
      let model = Beltway_sim.Cost_model.default in
      (match outcome with
      | Ok () ->
        if not quiet then begin
          Format.printf "benchmark:   %s (%s)@." bench.Beltway_workload.Spec.name
            bench.Beltway_workload.Spec.description;
          (* the collector itself is named by the summary header below *)
          Format.printf "heap:        %d KB (%d frames of %d KB)@."
            (Beltway.Gc.heap_bytes gc / 1024)
            (Beltway.Gc.heap_frames gc)
            (Beltway.Gc.frame_bytes gc / 1024);
          Format.printf "%a@." Beltway.Gc_stats.pp_summary stats;
          Format.printf "model time:  total %.3e units (GC %.3e, mutator %.3e — %.1f%% in GC)@."
            (Beltway_sim.Cost_model.total_time model stats)
            (Beltway_sim.Cost_model.gc_time model stats)
            (Beltway_sim.Cost_model.mutator_time model stats)
            (100.0
            *. Beltway_sim.Cost_model.gc_time model stats
            /. Float.max 1.0 (Beltway_sim.Cost_model.total_time model stats));
          Format.printf "wall clock:  %.3fs (simulation)@." wall;
          (match recorder with
          | Some r when Beltway_obs.Recorder.collections r > 0 ->
            let tl = Beltway_sim.Mmu.timeline model stats in
            Format.printf "%a@." Beltway_sim.Mmu.pp_drift
              (Beltway_sim.Mmu.crosscheck tl
                 ~recorded_durs:(Beltway_obs.Recorder.pause_durs_us r))
          | _ -> ())
        end;
        export_obs ();
        export_profile ();
        if dump then Format.printf "%a@." Beltway.Gc.pp_heap gc;
        if verify_heap then begin
          match Beltway.Verify.check gc with
          | Ok () -> Format.printf "heap integrity: OK@."
          | Error e ->
            Format.printf "heap integrity: FAILED: %s@." e;
            exit 1
        end;
        sanitizer_report san
      | Error m ->
        export_obs ();
        export_profile ();
        Format.printf "OUT OF MEMORY after %d collections: %s@."
          (Beltway.Gc_stats.gcs stats) m;
        exit 3))

open Cmdliner

let config_arg =
  let doc =
    "Collector configuration: ss, appel, appel3, fixed:N, ofm:N, of:N, X.Y, \
     X.Y.100, with +nofilter/+ttd:N/+remtrig:N/+halfreserve option suffixes."
  in
  Arg.(value & opt string "25.25.100" & info [ "g"; "gc" ] ~docv:"CONFIG" ~doc)

let bench_arg =
  let doc = "Benchmark: jess, raytrace, db, javac, jack, pseudojbb." in
  Arg.(value & opt string "jess" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let heap_arg =
  let doc = "Heap size in KiB." in
  Arg.(value & opt int 1024 & info [ "H"; "heap-kb" ] ~docv:"KB" ~doc)

let verify_arg =
  let doc = "Run the full heap-integrity checker afterwards." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let quiet_arg =
  let doc = "Suppress the statistics report." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let dump_arg =
  let doc = "Print the final belt/increment structure." in
  Arg.(value & flag & info [ "dump" ] ~doc)

let sanitize_arg =
  let doc =
    "Run under the differential heap sanitizer: 1 = shadow-heap diff at every \
     collection, 2 = also full integrity verification (default when the level \
     is omitted). Overrides $(b,BELTWAY_SANITIZE)."
  in
  Arg.(
    value
    & opt ~vopt:(Some 2) (some int) None
    & info [ "sanitize" ] ~docv:"LEVEL" ~doc)

let trace_arg =
  let doc =
    "Attach the GC flight recorder and write a Chrome trace_event JSON trace \
     to $(docv) (load in chrome://tracing or Perfetto). Overrides \
     $(b,BELTWAY_TRACE)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Attach the GC flight recorder and write a JSON metrics snapshot (pause \
     and occupancy distributions with p50/p90/p99, trigger and frame \
     counters) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Attach the object-demographics profiler and write a beltway-profile/1 \
     JSON report (per-site allocation/survival counts, per-belt age \
     histograms, promotion matrix, occupancy series) to $(docv); a text \
     top-sites report is printed unless $(b,--quiet). Overrides \
     $(b,BELTWAY_PROFILE)."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let policy_arg =
  let doc =
    "Select the collector policy from the registry by $(docv) (shorthand for \
     a +policy:$(docv) suffix on the configuration); $(b,--policy list) \
     prints the registry and exits."
  in
  Arg.(value & opt (some string) None & info [ "policy" ] ~docv:"NAME" ~doc)

let strategy_arg =
  let doc =
    "Select the reclamation strategy from the registry by $(docv) — copying \
     (default), marksweep or markcompact (shorthand for a +strategy:$(docv) \
     suffix on the configuration); $(b,--strategy list) prints the registry \
     and exits."
  in
  Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"NAME" ~doc)

let gc_domains_arg =
  let doc =
    "Shard each collection across $(docv) domains (work-stealing parallel \
     Cheney drain); 1 = sequential collector. Overrides \
     $(b,BELTWAY_GC_DOMAINS)."
  in
  Arg.(value & opt (some int) None & info [ "gc-domains" ] ~docv:"N" ~doc)

let cmd =
  let doc = "run a synthetic benchmark under a Beltway collector configuration" in
  Cmd.v
    (Cmd.info "beltway-run" ~doc)
    Term.(
      const run $ config_arg $ bench_arg $ heap_arg $ verify_arg $ quiet_arg
      $ dump_arg $ sanitize_arg $ trace_arg $ metrics_arg $ profile_arg
      $ policy_arg $ strategy_arg $ gc_domains_arg)

let () = exit (Cmd.eval cmd)
