(* beltlang: run a Beltlang program (from a file or the bundled suite)
   on a simulated heap under any Beltway collector configuration. *)

let sanitizer_level = function
  | None -> Beltway_check.Sanitizer.env_level ()
  | Some n -> (
    match Beltway_check.Sanitizer.level_of_int n with
    | Some l -> l
    | None ->
      Printf.eprintf "error: --sanitize takes 0, 1 or 2 (got %d)\n" n;
      exit 2)

let lint source =
  match Beltlang.Sexp.parse_string source with
  | exception Beltlang.Sexp.Parse_error e ->
    Printf.eprintf "syntax error: %s\n" e;
    exit 2
  | forms ->
    let diags = Beltlang.Analysis.analyze forms in
    List.iter (fun d -> Format.printf "%a@." Beltlang.Analysis.pp_diag d) diags;
    let errors = Beltlang.Analysis.errors diags in
    Format.printf "lint: %d error(s), %d warning(s)@." errors
      (Beltlang.Analysis.warnings diags);
    exit (if errors > 0 then 1 else 0)

let dump_bytecode source =
  match Beltlang.Sexp.parse_string source with
  | exception Beltlang.Sexp.Parse_error e ->
    Printf.eprintf "syntax error: %s\n" e;
    exit 2
  | forms -> (
    match Beltlang.Compile.compile (Beltlang.Ast.compile forms) with
    | exception Beltlang.Ast.Compile_error e ->
      Printf.eprintf "syntax error: %s\n" e;
      exit 2
    | bc ->
      Format.printf "%a@." Beltlang.Bytecode.pp bc;
      exit 0)

let run config_str heap_kb source_file builtin list_programs show_stats
    verify_heap sanitize lint_only trace metrics profile strategy gc_domains
    vm_kind dump =
  (match gc_domains with
  | Some n when n < 1 ->
    Printf.eprintf "error: --gc-domains must be >= 1 (got %d)\n" n;
    exit 2
  | _ -> ());
  if list_programs then begin
    List.iter
      (fun (p : Beltlang.Programs.t) ->
        Printf.printf "%-12s %s\n" p.name p.description)
      Beltlang.Programs.all;
    exit 0
  end;
  if strategy = Some "list" then begin
    List.iter
      (fun (i : Beltway.Strategy.info) ->
        Printf.printf "%-12s %s\n" i.Beltway.Strategy.key
          i.Beltway.Strategy.summary)
      Beltway.Strategy.infos;
    exit 0
  end;
  let config_str =
    match strategy with
    | Some name -> config_str ^ "+strategy:" ^ name
    | None -> config_str
  in
  match Beltway.Config.parse config_str with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 2
  | Ok config ->
    (match Beltway.Policy.resolve config with
    | Ok _ -> ()
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2);
    (match Beltway.Strategy.resolve config with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 2
    | Ok strat -> (
      let effective_domains =
        match gc_domains with
        | Some n -> n
        | None -> Option.value (Beltway.Gc.env_gc_domains ()) ~default:1
      in
      match
        Beltway.Strategy.check_domains strat ~gc_domains:effective_domains
      with
      | Ok () -> ()
      | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2));
    let source =
      match (builtin, source_file) with
      | Some name, _ -> (
        match Beltlang.Programs.by_name name with
        | Some p -> p.Beltlang.Programs.source
        | None ->
          Printf.eprintf "error: no bundled program %S (try --list)\n" name;
          exit 2)
      | None, Some file -> (
        try In_channel.with_open_text file In_channel.input_all
        with Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          exit 2)
      | None, None ->
        Printf.eprintf "error: give a FILE or --program NAME (see --list)\n";
        exit 2
    in
    if lint_only then lint source;
    if dump then dump_bytecode source;
    let gc = Beltway.Gc.create ?gc_domains ~config ~heap_bytes:(heap_kb * 1024) () in
    let san = Beltway_check.Sanitizer.attach ~level:(sanitizer_level sanitize) gc in
    let trace_file =
      match trace with Some _ -> trace | None -> Beltway_obs.Recorder.env_file ()
    in
    let recorder =
      if trace_file <> None || metrics <> None then
        Some (Beltway_obs.Recorder.attach gc)
      else None
    in
    let profile_file =
      match profile with
      | Some _ -> profile
      | None -> Beltway_obs.Profiler.env_file ()
    in
    let profiler =
      if profile_file <> None then Some (Beltway_obs.Profiler.attach gc)
      else None
    in
    (* Both engines share heap layout, output format, errors and GC
       behaviour; the bytecode VM is simply faster (see DESIGN.md). *)
    let run_engine, engine_output =
      match vm_kind with
      | `Bytecode ->
        let vm = Beltlang.Vm.create gc in
        ((fun src -> Beltlang.Vm.run_string vm src), fun () -> Beltlang.Vm.output vm)
      | `Ast ->
        let interp = Beltlang.Interp.create gc in
        ( (fun src -> Beltlang.Interp.run_string interp src),
          fun () -> Beltlang.Interp.output interp )
    in
    let status =
      try
        run_engine source;
        0
      with
      | Beltlang.Sexp.Parse_error e | Beltlang.Ast.Compile_error e ->
        Printf.eprintf "syntax error: %s\n" e;
        2
      | Beltlang.Interp.Runtime_error e ->
        Printf.eprintf "runtime error: %s\n" e;
        1
      | Beltway.Gc.Out_of_memory e ->
        Printf.eprintf "out of memory: %s\n" e;
        3
    in
    (match recorder with
    | None -> ()
    | Some r ->
      Beltway_obs.Recorder.detach r;
      Option.iter
        (fun f ->
          Beltway_obs.Chrome_trace.write_file f
            (Beltway_obs.Chrome_trace.to_json ~process_name:"beltlang" r))
        trace_file;
      Option.iter
        (fun f ->
          Beltway_obs.Chrome_trace.write_file f
            (Beltway_obs.Metrics.to_json (Beltway_obs.Recorder.metrics r)))
        metrics);
    (match (profiler, profile_file) with
    | Some p, Some f ->
      Beltway_obs.Profiler.detach p;
      Beltway_obs.Profiler.write_file f [ Beltway_obs.Profiler.run_json ~name:"beltlang" p ];
      (* stdout carries the program's own output; the report goes to
         stderr so profiled and unprofiled stdout stay identical *)
      Format.eprintf "%a@." (Beltway_obs.Profiler.report ~top:10) p
    | _ -> ());
    print_string (engine_output ());
    if show_stats then
      (* the summary header names the configuration and its policy *)
      Format.eprintf "[gc] %a@." Beltway.Gc_stats.pp_summary (Beltway.Gc.stats gc);
    (* Integrity reporting only makes sense for completed runs (an OOM
       can abort mid-collection, leaving forwarding pointers behind). *)
    if status = 0 then begin
      if verify_heap then begin
        match Beltway.Verify.check gc with
        | Ok () -> Format.printf "heap integrity: OK@."
        | Error e ->
          Format.printf "heap integrity: FAILED: %s@." e;
          exit 1
      end;
      if Beltway_check.Sanitizer.enabled san then begin
        Beltway_check.Sanitizer.check_now san;
        Format.printf "%a" Beltway_check.Sanitizer.report san;
        if not (Beltway_check.Sanitizer.ok san) then exit 1
      end
    end;
    exit status

open Cmdliner

let config_arg =
  let doc = "Collector configuration (as for beltway-run)." in
  Arg.(value & opt string "25.25.100" & info [ "g"; "gc" ] ~docv:"CONFIG" ~doc)

let heap_arg =
  let doc = "Heap size in KiB." in
  Arg.(value & opt int 512 & info [ "H"; "heap-kb" ] ~docv:"KB" ~doc)

let file_arg =
  let doc = "Beltlang source file." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let builtin_arg =
  let doc = "Run a bundled program instead of a file." in
  Arg.(value & opt (some string) None & info [ "p"; "program" ] ~docv:"NAME" ~doc)

let list_arg =
  let doc = "List bundled programs." in
  Arg.(value & flag & info [ "list" ] ~doc)

let stats_arg =
  let doc = "Print collector statistics to stderr." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let verify_arg =
  let doc = "Run the full heap-integrity checker after the program completes." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let sanitize_arg =
  let doc =
    "Run under the differential heap sanitizer: 1 = shadow-heap diff at every \
     collection, 2 = also full integrity verification (default when the level \
     is omitted). Overrides $(b,BELTWAY_SANITIZE)."
  in
  Arg.(
    value
    & opt ~vopt:(Some 2) (some int) None
    & info [ "sanitize" ] ~docv:"LEVEL" ~doc)

let lint_arg =
  let doc =
    "Static analysis only (no execution): scope and arity errors, \
     unreachable-code and unused-binding warnings, allocation-site \
     pretenuring notes. Exit 1 if any error is found."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let trace_arg =
  let doc =
    "Attach the GC flight recorder and write a Chrome trace_event JSON trace \
     to $(docv). Overrides $(b,BELTWAY_TRACE)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Attach the GC flight recorder and write a JSON metrics snapshot to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Attach the object-demographics profiler and write a beltway-profile/1 \
     JSON report to $(docv); bytecode allocation sites are labelled \
     $(i,lambda@pc:kind). The text report goes to stderr (stdout carries the \
     program's output). Overrides $(b,BELTWAY_PROFILE)."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let vm_arg =
  let doc =
    "Execution engine: $(b,bytecode) (flat-array compiler and tight dispatch \
     loop, the default) or $(b,ast) (the tree-walking reference interpreter). \
     Both produce identical output and identical GC statistics."
  in
  Arg.(
    value
    & opt (enum [ ("bytecode", `Bytecode); ("ast", `Ast) ]) `Bytecode
    & info [ "vm" ] ~docv:"ENGINE" ~doc)

let dump_arg =
  let doc = "Compile to bytecode, print the disassembly and exit." in
  Arg.(value & flag & info [ "dump-bytecode" ] ~doc)

let strategy_arg =
  let doc =
    "Select the reclamation strategy from the registry by $(docv) — copying \
     (default), marksweep or markcompact (shorthand for a +strategy:$(docv) \
     suffix on the configuration); $(b,--strategy list) prints the registry \
     and exits."
  in
  Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"NAME" ~doc)

let gc_domains_arg =
  let doc =
    "Shard each collection across $(docv) domains (work-stealing parallel \
     Cheney drain); 1 = sequential collector. Overrides \
     $(b,BELTWAY_GC_DOMAINS)."
  in
  Arg.(value & opt (some int) None & info [ "gc-domains" ] ~docv:"N" ~doc)

let cmd =
  let doc = "run a Beltlang program on a Beltway-collected heap" in
  Cmd.v
    (Cmd.info "beltlang" ~doc)
    Term.(
      const run $ config_arg $ heap_arg $ file_arg $ builtin_arg $ list_arg
      $ stats_arg $ verify_arg $ sanitize_arg $ lint_arg $ trace_arg
      $ metrics_arg $ profile_arg $ strategy_arg $ gc_domains_arg $ vm_arg
      $ dump_arg)

let () = Cmd.eval cmd |> exit
