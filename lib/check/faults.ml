module State = Beltway.State
module Gc = Beltway.Gc

type fault =
  | Skipped_barrier
  | Dropped_remset
  | Corrupted_header
  | Premature_free
  | Undersized_reserve
  | Racy_forwarding
  | Dropped_mark
  | Misthreaded_compact

let all =
  [ Skipped_barrier; Dropped_remset; Corrupted_header; Premature_free;
    Undersized_reserve; Racy_forwarding; Dropped_mark; Misthreaded_compact ]

let name = function
  | Skipped_barrier -> "skipped-barrier"
  | Dropped_remset -> "dropped-remset"
  | Corrupted_header -> "corrupted-header"
  | Premature_free -> "premature-free"
  | Undersized_reserve -> "undersized-reserve"
  | Racy_forwarding -> "racy-forwarding"
  | Dropped_mark -> "dropped-mark"
  | Misthreaded_compact -> "misthreaded-compact"

(* A small generational heap: 25.25.100 (optionally with a +strategy
   suffix for the in-place defect classes), 1 KiB frames, 512 KiB. *)
let setup ?(config = "25.25.100") ~level () =
  let config = Result.get_ok (Beltway.Config.parse config) in
  let gc = Gc.create ~frame_log_words:8 ~config ~heap_bytes:(512 * 1024) () in
  let san = Sanitizer.attach ~level gc in
  let ty = Gc.register_type gc ~name:"faults.node" in
  (gc, san, ty)

(* An old object (promoted off the nursery by a full collection) and a
   young one, both rooted. Returns their current addresses. *)
let old_and_young gc ty =
  let roots = Gc.roots gc in
  let a = Gc.alloc gc ~ty ~nfields:4 in
  let ga = Roots.new_global roots (Value.of_addr a) in
  Gc.full_collect gc;
  let b = Gc.alloc gc ~ty ~nfields:2 in
  let gb = Roots.new_global roots (Value.of_addr b) in
  let a = Value.to_addr (Roots.get_global roots ga) in
  (a, b, ga, gb)

let result_of san ~after =
  match Sanitizer.violations san with
  | v :: _ -> Ok v
  | [] -> Error (Printf.sprintf "sanitizer stayed silent after %s" after)

let precheck san =
  Sanitizer.check_now san;
  match Sanitizer.violations san with
  | [] -> Ok ()
  | v :: _ -> Error (Printf.sprintf "false positive before injection: %s" v)

let ( let* ) = Result.bind

(* Store old->young bypassing the barrier: the write itself lands (and
   the shadow is told, as it would be in a runtime whose barrier was
   miscompiled) but no remset entry exists. *)
let skipped_barrier () =
  let gc, san, ty = setup ~level:Sanitizer.Paranoid () in
  let a, b, _, _ = old_and_young gc ty in
  let* () = precheck san in
  let st = Gc.state gc in
  Object_model.set_field st.State.mem a 0 (Value.of_addr b);
  Sanitizer.note_write san ~obj:a ~field:0 ~value:(Value.of_addr b);
  Sanitizer.check_now san;
  result_of san ~after:"an unrecorded old-to-young pointer store"

(* Record the pointer correctly, then lose the remset entry, then let a
   real nursery collection run: the slot is never forwarded and ends up
   pointing at the young object's pre-move address. *)
let dropped_remset () =
  let gc, san, ty = setup ~level:Sanitizer.Shadow () in
  let a, b, _, _ = old_and_young gc ty in
  Gc.write gc a 0 (Value.of_addr b);
  (* Pad the nursery past min-useful size so the forced collection
     below targets it (and only it). *)
  for _ = 1 to 200 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  let* () = precheck san in
  let st = Gc.state gc in
  let slot_frame = State.frame_of_addr st (Object_model.field_addr a 0) in
  Beltway.Remset.drop_frame st.State.remsets slot_frame;
  Gc.collect gc;
  (* The sanitizer diffs at every collection; the stale slot in [a] is
     already on record. *)
  result_of san ~after:"a dropped remset entry and a nursery collection"

let corrupted_header () =
  let gc, san, ty = setup ~level:Sanitizer.Shadow () in
  let roots = Gc.roots gc in
  let c = Gc.alloc gc ~ty ~nfields:3 in
  ignore (Roots.new_global roots (Value.of_addr c));
  let* () = precheck san in
  let st = Gc.state gc in
  Memory.set st.State.mem c (1000 lsl 1);
  Sanitizer.check_now san;
  result_of san ~after:"rewriting an object's header word"

let premature_free () =
  let gc, san, ty = setup ~level:Sanitizer.Shadow () in
  let roots = Gc.roots gc in
  let d = Gc.alloc gc ~ty ~nfields:3 in
  ignore (Roots.new_global roots (Value.of_addr d));
  let* () = precheck san in
  let st = Gc.state gc in
  Memory.free_frame st.State.mem (State.frame_of_addr st d);
  Sanitizer.check_now san;
  result_of san ~after:"freeing the frame under a live object"

(* Understate the frames in use: exactly the accounting slip that lets
   the schedule admit an allocation the copy reserve cannot cover. *)
let undersized_reserve () =
  let gc, san, ty = setup ~level:Sanitizer.Paranoid () in
  let _ = old_and_young gc ty in
  let* () = precheck san in
  let st = Gc.state gc in
  st.State.frames_used <- st.State.frames_used - 1;
  Sanitizer.check_now san;
  result_of san ~after:"understating the frame budget in use"

(* The parallel drain's defect class: a non-atomic forwarding install.
   Two domains race to evacuate the same object; with a plain store
   instead of a CAS on the header word, both copies survive the race
   and the slots forwarded through the loser's view keep the loser's
   duplicate. Deterministic end-state emulation: carve a private
   destination (as the losing domain's reserve chunk would be), blit a
   duplicate of a live child there, and switch a parent slot onto the
   duplicate behind the hooks' back — the observable damage of the
   lost install. The shadow still holds the canonical address, so the
   diff must flag the slot. *)
let racy_forwarding () =
  let gc, san, ty = setup ~level:Sanitizer.Shadow () in
  let roots = Gc.roots gc in
  let parent = Gc.alloc gc ~ty ~nfields:2 in
  let gp = Roots.new_global roots (Value.of_addr parent) in
  let child = Gc.alloc gc ~ty ~nfields:2 in
  Gc.write gc (Value.to_addr (Roots.get_global roots gp)) 0 (Value.of_addr child);
  (* Settle both into a post-collection heap, as the race would. *)
  Gc.full_collect gc;
  let* () = precheck san in
  let st = Gc.state gc in
  let mem = st.State.mem in
  let parent = Value.to_addr (Roots.get_global roots gp) in
  let child = Value.to_addr (Gc.read gc parent 0) in
  let size = Object_model.size_words ~nfields:2 in
  let inc = State.new_increment st ~belt:0 in
  State.grant_frame st inc ~during_gc:false;
  let dup = Beltway.Increment.bump_or_null inc ~size in
  Memory.blit mem ~src:child ~dst:dup ~len:size;
  Memory.set mem (Object_model.field_addr parent 0) (Value.of_addr dup);
  Sanitizer.check_now san;
  result_of san ~after:"a duplicate copy installed by a lost forwarding race"

(* The mark-sweep strategy's defect class: the tracer drops a mark bit
   on a reachable object, so the sweep coalesces it into a free-list
   filler. Deterministic end-state emulation (as for
   [Racy_forwarding]): after a clean in-place collection, overwrite a
   still-referenced child with exactly the filler the sweep writes over
   dead runs — an even length header and odd (immediate) payload
   words — and declare it dead through the sanitizer's own death
   channel, as the sweep's hook would. The shadow keeps the entry (a
   live parent edge still names it), so the diff must flag the
   corpse. *)
let dropped_mark () =
  let gc, san, ty =
    setup ~config:"25.25.100+strategy:marksweep" ~level:Sanitizer.Shadow ()
  in
  let roots = Gc.roots gc in
  let parent = Gc.alloc gc ~ty ~nfields:2 in
  let gp = Roots.new_global roots (Value.of_addr parent) in
  let child = Gc.alloc gc ~ty ~nfields:2 in
  Gc.write gc (Value.to_addr (Roots.get_global roots gp)) 0 (Value.of_addr child);
  (* A back pointer, so the corpse's payload held a reference the
     filler visibly destroys. *)
  let child_now () = Value.to_addr (Gc.read gc parent 0) in
  Gc.write gc child 0 (Value.of_addr parent);
  (* Garbage, then a real mark-sweep collection: the precheck below
     proves the strategy itself produces no false positives. *)
  for _ = 1 to 200 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  Gc.full_collect gc;
  let* () = precheck san in
  let st = Gc.state gc in
  let mem = st.State.mem in
  let child = child_now () in
  let size = Object_model.size_words ~nfields:2 in
  Memory.set mem child ((size - Object_model.header_words) lsl 1);
  Memory.fill mem ~dst:(child + 1) ~len:(size - 1) 1;
  Shadow.note_object_dead (Sanitizer.shadow san) ~addr:child;
  Sanitizer.check_now san;
  result_of san ~after:"a reachable object swept under a dropped mark bit"

(* The mark-compact strategy's defect class: Jonkers unthreading
   restores a threaded slot with the wrong destination address (an
   off-by-one-object slip in the slide bookkeeping). Deterministic
   end-state emulation: run a real threaded compaction (garbage ahead
   of the survivors forces a slide), then redirect a parent slot to
   the address one object past its child, behind the hooks' back. The
   shadow tracked the real slide, so the diff must flag the slot. *)
let misthreaded_compact () =
  let gc, san, ty =
    setup ~config:"25.25.100+strategy:markcompact" ~level:Sanitizer.Shadow ()
  in
  let roots = Gc.roots gc in
  (* Garbage first: compaction slides the survivors down over it. *)
  for _ = 1 to 200 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  let parent = Gc.alloc gc ~ty ~nfields:2 in
  let gp = Roots.new_global roots (Value.of_addr parent) in
  let child = Gc.alloc gc ~ty ~nfields:2 in
  Gc.write gc (Value.to_addr (Roots.get_global roots gp)) 0 (Value.of_addr child);
  Gc.full_collect gc;
  let* () = precheck san in
  let st = Gc.state gc in
  let mem = st.State.mem in
  let parent = Value.to_addr (Roots.get_global roots gp) in
  let child = Value.to_addr (Gc.read gc parent 0) in
  let size = Object_model.size_words ~nfields:2 in
  Memory.set mem
    (Object_model.field_addr parent 0)
    (Value.of_addr (child + size));
  Sanitizer.check_now san;
  result_of san ~after:"a slot unthreaded to the wrong compaction address"

let inject = function
  | Skipped_barrier -> skipped_barrier ()
  | Dropped_remset -> dropped_remset ()
  | Corrupted_header -> corrupted_header ()
  | Premature_free -> premature_free ()
  | Undersized_reserve -> undersized_reserve ()
  | Racy_forwarding -> racy_forwarding ()
  | Dropped_mark -> dropped_mark ()
  | Misthreaded_compact -> misthreaded_compact ()
