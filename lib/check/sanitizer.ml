module State = Beltway.State

type level = Off | Shadow | Paranoid

let level_of_int = function
  | 0 -> Some Off
  | 1 -> Some Shadow
  | 2 -> Some Paranoid
  | _ -> None

let env_level () =
  match Sys.getenv_opt "BELTWAY_SANITIZE" with
  | Some ("1" | "shadow" | "on") -> Shadow
  | Some ("2" | "paranoid" | "full") -> Paranoid
  | Some _ | None -> Off

type t = {
  gc : Beltway.Gc.t;
  level : level;
  shadow : Shadow.t;
  mutable violations : string list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable collections : int;
  mutable hooks : State.hooks option;
}

let max_violations = 32

let record t msg =
  if t.count < max_violations then begin
    t.violations <- msg :: t.violations;
    t.count <- t.count + 1
  end
  else t.dropped <- t.dropped + 1

let check_now t =
  if t.level <> Off then begin
    Shadow.diff t.shadow ~violation:(record t);
    if t.level = Paranoid then begin
      match Beltway.Verify.check t.gc with
      | Ok () -> ()
      | Error e -> record t ("verify: " ^ e)
    end
  end

let attach ?level gc =
  let level = match level with Some l -> l | None -> env_level () in
  let t =
    {
      gc;
      level;
      shadow = Shadow.create gc;
      violations = [];
      count = 0;
      dropped = 0;
      collections = 0;
      hooks = None;
    }
  in
  if level <> Off then begin
    let hooks =
      {
        State.noop_hooks with
        State.on_alloc =
          (fun ~addr ~tib ~nfields -> Shadow.note_alloc t.shadow ~addr ~tib ~nfields);
        on_write =
          (fun ~obj ~field ~value ->
            Shadow.note_write t.shadow ~obj ~field ~value ~violation:(record t));
        on_move =
          (fun ~src ~dst -> Shadow.note_move t.shadow ~src ~dst ~violation:(record t));
        on_object_dead =
          (fun ~addr ~words:_ -> Shadow.note_object_dead t.shadow ~addr);
        on_collect_end =
          (fun ~full_heap:_ ->
            t.collections <- t.collections + 1;
            check_now t);
      }
    in
    State.add_hooks (Beltway.Gc.state gc) hooks;
    t.hooks <- Some hooks
  end;
  t

let detach t =
  match t.hooks with
  | None -> ()
  | Some h ->
    State.remove_hooks (Beltway.Gc.state t.gc) h;
    t.hooks <- None

let level t = t.level
let enabled t = t.level <> Off

let note_write t ~obj ~field ~value =
  if t.level <> Off then
    Shadow.note_write t.shadow ~obj ~field ~value ~violation:(record t)

let violations t = List.rev t.violations
let dropped t = t.dropped
let ok t = t.count = 0
let collections_checked t = t.collections
let tracked t = Shadow.tracked t.shadow
let shadow t = t.shadow

let report fmt t =
  List.iter (fun v -> Format.fprintf fmt "sanitizer: %s@." v) (violations t);
  if t.dropped > 0 then
    Format.fprintf fmt "sanitizer: (%d further violations suppressed)@." t.dropped;
  if ok t then
    Format.fprintf fmt "sanitizer: OK@."
  else
    Format.fprintf fmt "sanitizer: FAILED (%d violations)@."
      (t.count + t.dropped)
