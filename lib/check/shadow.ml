module State = Beltway.State

(* A shadow field value. References are tracked by shadow identity, not
   by address: the collector may move the referent, and the whole point
   is to check that every real slot chased the move. *)
type sval =
  | Imm of int (* raw tagged word: null or an immediate *)
  | Obj of int (* shadow id of a tracked heap object *)
  | Boot of Addr.t (* boot-space object: immortal, never moves *)

type entry = {
  id : int;
  mutable addr : Addr.t;
  tib : Value.t;
  fields : sval array;
}

(* The lifetime oracle: exact birth records and an append-only move
   log, kept SEPARATELY from the graph mirror above. [diff] purges
   unreachable entries from [by_addr]/[by_id] (their addresses may be
   reused), but the collector can still legitimately move an object
   the mutator already dropped (remset-retained garbage) — the
   profiler attributes those copies too, so the oracle it is checked
   against must keep their birth records. Address reuse is handled by
   replace-on-alloc: an address that is the source of a move is a live
   slot in a live frame, so its lifetime record is necessarily the one
   written by the allocation that created the object there. *)
type lt = { lt_site : int; lt_birth : int; lt_words : int }

type move_record = {
  m_site : int;
  m_src_belt : int;
  m_dst_belt : int;
  m_age : int; (* allocation-clock words since birth *)
  m_words : int;
}

type t = {
  gc : Beltway.Gc.t;
  by_addr : (Addr.t, entry) Hashtbl.t;
  by_id : (int, entry) Hashtbl.t;
  mutable next_id : int;
  reached : (int, unit) Hashtbl.t; (* scratch for [diff] *)
  lt_by_addr : (Addr.t, lt) Hashtbl.t; (* lifetime oracle, never purged *)
  moves : move_record Beltway_util.Vec.t;
  mutable lt_alloc_objects : int array; (* per site, grown on demand *)
  mutable lt_alloc_words : int array;
}

let dummy_move =
  { m_site = 0; m_src_belt = -1; m_dst_belt = -1; m_age = 0; m_words = 0 }

let create gc =
  {
    gc;
    by_addr = Hashtbl.create 1024;
    by_id = Hashtbl.create 1024;
    next_id = 0;
    reached = Hashtbl.create 1024;
    lt_by_addr = Hashtbl.create 1024;
    moves = Beltway_util.Vec.create ~dummy:dummy_move ();
    lt_alloc_objects = Array.make 8 0;
    lt_alloc_words = Array.make 8 0;
  }

let tracked t = Hashtbl.length t.by_id

let ensure_site t s =
  let n = Array.length t.lt_alloc_objects in
  if s >= n then begin
    let n' = max (s + 1) (2 * n) in
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.lt_alloc_objects <- grow t.lt_alloc_objects;
    t.lt_alloc_words <- grow t.lt_alloc_words
  end

let note_alloc t ~addr ~tib ~nfields =
  let e = { id = t.next_id; addr; tib; fields = Array.make nfields (Imm Value.null) } in
  t.next_id <- t.next_id + 1;
  (* The address cannot collide with a live entry: a tracked object at
     [addr] would have had to be freed or moved first, and both paths
     remove the old mapping (purge in [diff], re-key in [note_move]). *)
  Hashtbl.replace t.by_addr addr e;
  Hashtbl.replace t.by_id e.id e;
  let st = Beltway.Gc.state t.gc in
  let site = st.State.alloc_site in
  ensure_site t site;
  t.lt_alloc_objects.(site) <- t.lt_alloc_objects.(site) + 1;
  let words = Object_model.size_words ~nfields in
  t.lt_alloc_words.(site) <- t.lt_alloc_words.(site) + words;
  Hashtbl.replace t.lt_by_addr addr
    {
      lt_site = site;
      lt_birth = st.State.stats.Beltway.Gc_stats.words_allocated;
      lt_words = words;
    }

let classify t st v ~violation =
  if not (Value.is_ref v) then Imm v
  else begin
    let a = Value.to_addr v in
    if Boot_space.contains st.State.boot a then Boot a
    else
      match Hashtbl.find_opt t.by_addr a with
      | Some e -> Obj e.id
      | None ->
        violation
          (Printf.sprintf "store of a reference to untracked object %#x" a);
        Imm v
  end

let note_write t ~obj ~field ~value ~violation =
  match Hashtbl.find_opt t.by_addr obj with
  | None ->
    (* An object allocated before the shadow attached (or in the boot
       space): not mirrored, so the store cannot be checked. Ignoring
       it is the conservative, no-false-positive choice. *)
    ()
  | Some e ->
    if field < 0 || field >= Array.length e.fields then
      violation
        (Printf.sprintf "store to field %d of object %#x, which shadow #%d says has %d fields"
           field obj e.id (Array.length e.fields))
    else begin
      let st = Beltway.Gc.state t.gc in
      e.fields.(field) <- classify t st value ~violation
    end

let note_move t ~src ~dst ~violation =
  (* Lifetime oracle first: it also covers moves of objects [diff] has
     already purged from the graph mirror (dead but remset-retained). *)
  (match Hashtbl.find_opt t.lt_by_addr src with
  | None -> () (* allocated before attach *)
  | Some lt ->
    let st = Beltway.Gc.state t.gc in
    let belt_of a =
      match State.inc_of_frame st (State.frame_of_addr st a) with
      | Some inc -> inc.Beltway.Increment.belt
      | None -> -1
    in
    Beltway_util.Vec.push t.moves
      {
        m_site = lt.lt_site;
        m_src_belt = belt_of src;
        m_dst_belt = belt_of dst;
        m_age = st.State.stats.Beltway.Gc_stats.words_allocated - lt.lt_birth;
        m_words = lt.lt_words;
      };
    Hashtbl.remove t.lt_by_addr src;
    Hashtbl.replace t.lt_by_addr dst lt);
  match Hashtbl.find_opt t.by_addr src with
  | None ->
    (* The collector may legitimately evacuate objects the shadow never
       tracked (pre-attach allocations, remset-retained garbage). *)
    ()
  | Some e ->
    (match Hashtbl.find_opt t.by_addr dst with
    | Some clash when clash != e ->
      violation
        (Printf.sprintf
           "move of %#x lands on %#x, already occupied by shadow #%d" src dst
           clash.id)
    | _ -> ());
    Hashtbl.remove t.by_addr src;
    e.addr <- dst;
    Hashtbl.replace t.by_addr dst e

(* An in-place strategy reclaimed the object at [addr]: its words are
   about to become a free-list filler or be slid over, so the address
   must stop keying the entry before the collector reuses it (a
   compaction slide lands within the same collection, long before
   [diff]'s purge). The id entry deliberately STAYS: if the collector
   wrongly reclaimed a reachable object, some surviving shadow edge
   still names this id, [diff] walks it, and validation of the stale
   address reports the corruption — reclaiming a live object must be
   flagged, not silently forgotten. *)
let note_object_dead t ~addr =
  match Hashtbl.find_opt t.by_addr addr with
  | Some e when e.addr = addr -> Hashtbl.remove t.by_addr addr
  | _ -> ()

(* Validate one shadow-reachable entry against real memory. Every check
   reads through the checked [Memory.get]-family accessors, so a
   corrupt heap traps into [Invalid_argument] instead of reading wild —
   which we report as a violation in its own right. *)
let validate t st mem (e : entry) ~violation =
  let bad fmt = Format.kasprintf violation fmt in
  try
    let frame = State.frame_of_addr st e.addr in
    if not (Memory.is_live mem frame) then
      bad "lost object: shadow #%d at %#x lies in dead frame %d" e.id e.addr frame
    else if State.inc_of_frame st frame = None then
      bad "lost object: shadow #%d at %#x lies in unowned frame %d" e.id e.addr
        frame
    else begin
      match Object_model.forwarded mem e.addr with
      | Some f ->
        bad "stale forwarding pointer: object %#x still forwards to %#x outside GC"
          e.addr f
      | None ->
        let n = Object_model.nfields mem e.addr in
        if n <> Array.length e.fields then
          bad "corrupted header: object %#x claims %d fields, shadow #%d recorded %d"
            e.addr n e.id (Array.length e.fields)
        else begin
          let real_tib = Object_model.tib mem e.addr in
          if real_tib <> e.tib then
            bad "clobbered TIB of object %#x: expected %a, found %a" e.addr
              Value.pp e.tib Value.pp real_tib;
          Array.iteri
            (fun i sv ->
              let real = Memory.get mem (Object_model.field_addr e.addr i) in
              match sv with
              | Imm w ->
                if real <> w then
                  bad "clobbered field %d of object %#x (shadow #%d): expected %a, found %a"
                    i e.addr e.id Value.pp w Value.pp real
              | Boot a ->
                if (not (Value.is_ref real)) || Value.to_addr real <> a then
                  bad "clobbered field %d of object %#x: expected boot ref %#x, found %a"
                    i e.addr a Value.pp real
              | Obj id ->
                let tgt = Hashtbl.find t.by_id id in
                if not (Value.is_ref real) then
                  bad "clobbered field %d of object %#x: expected ref to shadow #%d, found %a"
                    i e.addr id Value.pp real
                else begin
                  let ra = Value.to_addr real in
                  if ra <> tgt.addr then
                    bad
                      "stale reference: field %d of object %#x points to %#x but shadow #%d lives at %#x (missed forwarding or write-barrier omission)"
                      i e.addr ra id tgt.addr
                end)
            e.fields
        end
    end
  with Invalid_argument m -> bad "shadow walk trapped at object %#x: %s" e.addr m

let diff t ~violation =
  let st = Beltway.Gc.state t.gc in
  let mem = st.State.mem in
  let reached = t.reached in
  Hashtbl.reset reached;
  let work = ref [] in
  let push_id id =
    if not (Hashtbl.mem reached id) then begin
      Hashtbl.replace reached id ();
      work := id :: !work
    end
  in
  (* Roots come from the real heap: the trace starts from what the
     mutator can actually name right now. *)
  Roots.iter st.State.roots (fun v ->
      if Value.is_ref v then begin
        let a = Value.to_addr v in
        if not (Boot_space.contains st.State.boot a) then
          match Hashtbl.find_opt t.by_addr a with
          | Some e -> push_id e.id
          | None ->
            (* Pre-attach allocations are untracked by design; anything
               else here would be caught by Verify's root checks. *)
            ()
      end);
  (* ... but the edges are the shadow's own, so a collector that lost
     or corrupted a field cannot steer the trace around the damage. *)
  let rec drain () =
    match !work with
    | [] -> ()
    | id :: rest ->
      work := rest;
      let e = Hashtbl.find t.by_id id in
      Array.iter (function Obj id' -> push_id id' | Imm _ | Boot _ -> ()) e.fields;
      drain ()
  in
  drain ();
  Hashtbl.iter
    (fun id () -> validate t st mem (Hashtbl.find t.by_id id) ~violation)
    reached;
  (* Purge entries the mutator can no longer reach: their addresses may
     be reused by future allocations, and keeping them would manufacture
     false clashes. *)
  let dead =
    Hashtbl.fold
      (fun id e acc -> if Hashtbl.mem reached id then acc else (id, e) :: acc)
      t.by_id []
  in
  List.iter
    (fun (id, e) ->
      (match Hashtbl.find_opt t.by_addr e.addr with
      | Some e' when e' == e -> Hashtbl.remove t.by_addr e.addr
      | _ -> ());
      Hashtbl.remove t.by_id id)
    dead

(* ---- lifetime-oracle accessors (for the profiler differential) ---- *)

let site_alloc_objects t s =
  if s >= 0 && s < Array.length t.lt_alloc_objects then t.lt_alloc_objects.(s)
  else 0

let site_alloc_words t s =
  if s >= 0 && s < Array.length t.lt_alloc_words then t.lt_alloc_words.(s)
  else 0

let moves t = Beltway_util.Vec.to_array t.moves
