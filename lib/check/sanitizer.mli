(** The differential heap sanitizer: shadow-heap maintenance, scheduled
    diffs, and violation reporting.

    Attach one sanitizer per heap, before the first allocation. At
    every completed collection the shadow is diffed against the real
    heap ({!Shadow.diff}); at level {!Paranoid} the snapshot invariant
    checker ([Beltway.Verify.check]) runs there too, catching the
    defect classes that need belt/remset context the shadow does not
    model (remset sufficiency, FIFO order, frame accounting).

    Selection: [BELTWAY_SANITIZE=0|1|2] in the environment, or
    [--sanitize [N]] on the CLIs (which overrides the environment). *)

type level =
  | Off  (** no hooks installed; every call is a no-op *)
  | Shadow  (** shadow-heap diff at every collection *)
  | Paranoid  (** [Shadow] + full [Verify.check] at every collection *)

val level_of_int : int -> level option
(** [0], [1], [2]; anything else is [None]. *)

val env_level : unit -> level
(** Level requested by [BELTWAY_SANITIZE] ([Off] when unset or
    unparseable). *)

type t

val attach : ?level:level -> Beltway.Gc.t -> t
(** Install the sanitizer's hooks on the heap (default level:
    {!env_level}). Attach before the first allocation: earlier objects
    are invisible to the shadow. *)

val detach : t -> unit
(** Remove the hooks; accumulated violations remain readable. *)

val level : t -> level
val enabled : t -> bool

val check_now : t -> unit
(** Run the differential check on demand (also runs automatically at
    every collection). *)

val note_write : t -> obj:Addr.t -> field:int -> value:Value.t -> unit
(** Tell the shadow about a store that bypassed [Gc.write] — the
    fault-injection harness uses this to model "the store happened but
    its barrier record was lost". *)

val violations : t -> string list
(** Accumulated violations, oldest first (capped; see {!dropped}). *)

val dropped : t -> int
(** Violations discarded beyond the reporting cap. *)

val ok : t -> bool
val collections_checked : t -> int
val tracked : t -> int

val shadow : t -> Shadow.t
(** The underlying shadow heap — the profiler differential reads its
    lifetime oracle. *)

val report : Format.formatter -> t -> unit
(** One line per violation, then a summary count. *)
