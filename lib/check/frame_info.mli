(** Per-frame collector metadata.

    The paper (S3.3.1) attaches to each frame "a number associated with
    each frame that indicates the frame's relative collection order";
    the write barrier compares these *collect stamps* with a shift and
    an array load (Figure 4, line 6: [Belt.collect_\[t\] <
    Belt.collect_\[s\]]). We also record which increment owns each
    frame so a collection can resolve the promotion target of any
    object from its address alone.

    Stamps are [priority * 2^40 + sequence]: generational
    configurations give lower belts lower priority (they are collected
    first even though their increments are created later), older-first
    configurations use epoch-based priorities, and pure FIFO
    configurations use a constant priority so stamps decay to creation
    order. Frames of one increment share one stamp, so pointers between
    the constituent frames of an increment are never remembered. The
    boot space's frames carry {!immortal_stamp}. *)

type t

val immortal_stamp : int
(** Greater than any assignable stamp; boot/immortal frames never
    appear younger than any heap frame. *)

val priority_unit : int
(** The multiplier separating priority classes ([2^40]). *)

val create : unit -> t

val set : t -> frame:int -> stamp:int -> incr:int -> unit
(** Install metadata when a frame is handed to an increment (or to the
    boot space, with [incr = boot_incr_id]). *)

val clear : t -> frame:int -> unit
(** Reset metadata when a frame is freed. *)

val stamp : t -> int -> int
(** Collect stamp of a frame; {!no_stamp} for unowned frames. *)

val restamp : t -> frame:int -> stamp:int -> unit
(** Update only the stamp (BOF belt flips renumber surviving belts). *)

val incr_of : t -> int -> int
(** Owning increment id of a frame, or [-1]. *)

val no_stamp : int
(** Stamp reported for unowned frames ([-1]); never satisfies the
    remember predicate as a target. *)
