type t = { mutable stamps : int array; mutable incrs : int array }

let immortal_stamp = max_int
let priority_unit = 1 lsl 40
let no_stamp = -1

let create () = { stamps = Array.make 64 no_stamp; incrs = Array.make 64 (-1) }

let ensure t frame =
  let cap = Array.length t.stamps in
  if frame >= cap then begin
    let n = max (frame + 1) (cap * 2) in
    let stamps = Array.make n no_stamp in
    Array.blit t.stamps 0 stamps 0 cap;
    t.stamps <- stamps;
    let incrs = Array.make n (-1) in
    Array.blit t.incrs 0 incrs 0 cap;
    t.incrs <- incrs
  end

let set t ~frame ~stamp ~incr =
  ensure t frame;
  t.stamps.(frame) <- stamp;
  t.incrs.(frame) <- incr

let clear t ~frame =
  ensure t frame;
  t.stamps.(frame) <- no_stamp;
  t.incrs.(frame) <- -1

let stamp t frame = if frame < Array.length t.stamps then t.stamps.(frame) else no_stamp

let restamp t ~frame ~stamp =
  ensure t frame;
  t.stamps.(frame) <- stamp

let incr_of t frame = if frame < Array.length t.incrs then t.incrs.(frame) else -1
