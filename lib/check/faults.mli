(** Fault injection: mutation-testing the sanitizer itself.

    Each fault seeds one defect class a Beltway implementation can
    suffer, into an otherwise healthy heap with a sanitizer attached,
    and reports whether the sanitizer flagged it. A checker that has
    never been shown to catch a bug is folklore; this harness is the
    evidence. Each injection first asserts the pre-injection heap is
    clean, so a detection cannot be a latent false positive. *)

type fault =
  | Skipped_barrier
      (** a pointer store whose write-barrier record was omitted
          (paper §3.3.2 completeness) — caught by [Verify]'s remset
          sufficiency check at level [Paranoid] *)
  | Dropped_remset
      (** a correctly recorded remset entry lost before the next
          collection — the slot misses forwarding, caught by the
          shadow diff as a stale reference after the collection *)
  | Corrupted_header
      (** an object's header word rewritten — caught by the shadow
          diff's field-count comparison *)
  | Premature_free
      (** a frame holding a live object returned to the memory
          substrate — caught by the shadow diff as a lost object *)
  | Undersized_reserve
      (** copy-reserve/frame accounting understating the frames in
          use, the precursor to reserve exhaustion (paper §3.3.4) —
          caught by [Verify]'s accounting check at level [Paranoid] *)
  | Racy_forwarding
      (** the parallel drain's defect class: a forwarding install that
          used a plain store instead of a CAS, so two domains racing
          to evacuate one object both keep their copies and a slot
          ends up on the losing duplicate — caught by the shadow diff
          as a stale reference (the shadow holds the winner) *)
  | Dropped_mark
      (** the mark-sweep strategy's defect class: the tracer drops a
          mark bit on a reachable object and the sweep turns it into a
          free-list filler — caught by the shadow diff as a clobbered
          corpse (a live parent edge still names the entry, whose TIB
          and fields the filler overwrote) *)
  | Misthreaded_compact
      (** the mark-compact strategy's defect class: Jonkers
          unthreading restores a threaded slot with the wrong
          destination address, so after the slide a parent field
          points one object past its child — caught by the shadow
          diff as a stale reference (the shadow tracked the real
          slide) *)

val all : fault list
val name : fault -> string

val inject : fault -> (string, string) result
(** Run the injection on a fresh heap. [Ok msg]: the sanitizer flagged
    the fault; [msg] is its first violation. [Error why]: it stayed
    silent (or reported before the injection — a false positive). *)
