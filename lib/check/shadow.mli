(** The shadow heap: an independent mirror of the mutator-visible
    object graph.

    The shadow heap is rebuilt from nothing but the mutator's own
    operations, observed through {!Beltway.State.hooks}: every
    allocation creates a shadow entry, every field store updates it,
    and every collector move re-keys it. It shares no code with the
    collector's forwarding or scanning paths, so diffing it against
    the real heap ({!diff}) catches whole classes of collector bugs
    that a single-snapshot invariant checker cannot:

    - {e lost objects}: a shadow-reachable object whose frame was
      freed or dropped from its increment;
    - {e clobbered fields / headers}: the real word no longer matches
      what the mutator last stored;
    - {e stale forwarding pointers}: an object still carrying a
      forwarding header outside a collection;
    - {e write-barrier omissions}: a slot the collector failed to
      forward, left pointing at an object's pre-move address.

    Soundness of the no-false-positive claim: the diff only validates
    entries reachable from the real root set through shadow edges.
    Shadow reachability is exactly mutator-visible reachability, a
    subset of what any correct collector must preserve, so every
    validated comparison is against memory the collector was obliged
    to keep. Entries that fall shadow-unreachable are purged — the
    mutator can never name them again, and their addresses may be
    legitimately reused. *)

type t

val create : Beltway.Gc.t -> t
(** An empty shadow for the given heap. Attach before the first
    allocation: objects allocated earlier are unknown to the shadow
    (stores into them are ignored rather than mirrored). *)

(** {2 Mirror maintenance} (wired to [State.hooks] by the sanitizer) *)

val note_alloc : t -> addr:Addr.t -> tib:Value.t -> nfields:int -> unit
val note_write :
  t -> obj:Addr.t -> field:int -> value:Value.t -> violation:(string -> unit) -> unit
val note_move : t -> src:Addr.t -> dst:Addr.t -> violation:(string -> unit) -> unit

val note_object_dead : t -> addr:Addr.t -> unit
(** An in-place strategy reclaimed the object at [addr]: the address
    stops keying its entry (the words may be reused within the same
    collection), but the entry itself survives until {!diff}'s purge —
    so wrongly reclaiming a reachable object is still caught by
    validation through the surviving shadow edges. *)

(** {2 Differential check} *)

val diff : t -> violation:(string -> unit) -> unit
(** Compare the shadow against the real heap: trace shadow
    reachability from the real roots, validate every reachable entry
    (placement, header, TIB, every field) against real memory, then
    purge unreachable entries. [violation] is called once per
    discrepancy. *)

val tracked : t -> int
(** Entries currently mirrored (reachable or not-yet-purged). *)

(** {2 Lifetime oracle}

    Alongside the graph mirror, the shadow keeps an exact demographic
    record: per-site allocation counts and one {!move_record} per
    collector move, stamped with the allocation site, source and
    destination belts, age on the allocation clock and object size.
    Unlike the mirror this record is never purged — a dead but
    remset-retained object can still be moved, and the profiler
    attributes that copy, so the oracle it is differenced against must
    too. *)

type move_record = {
  m_site : int;  (** allocation-site id at birth *)
  m_src_belt : int;  (** -1 when the frame was unowned *)
  m_dst_belt : int;
  m_age : int;  (** allocation-clock words since birth *)
  m_words : int;  (** object size *)
}

val site_alloc_objects : t -> int -> int
(** Objects allocated at a site while the shadow was attached. *)

val site_alloc_words : t -> int -> int

val moves : t -> move_record array
(** The move log, in collector order. *)
