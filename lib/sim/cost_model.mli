(** The deterministic cost model.

    The paper measures wall-clock seconds on a 733 MHz PowerMac G4; we
    measure *work*: every event the collector and mutator perform is
    counted exactly (words allocated and copied, slots scanned,
    barrier fast/slow paths, remembered slots processed, frames
    freed), and this module maps counts to abstract time units. One
    unit is loosely "one nanosecond-ish of 2002 hardware", but only
    ratios matter: all figures are reported relative to the best
    configuration, exactly as in the paper.

    The default constants are calibrated so that, like Figure 1(a), a
    generational collector on these workloads spends roughly 5-40%% of
    total time in GC between 3x and 1x the minimum heap size. The
    constants can be overridden to test the sensitivity of conclusions
    to the model (see the ablation bench). *)

type t = {
  alloc_word : float; (** per word allocated (zeroing + bump share) *)
  alloc_object : float; (** per-object overhead (header init, type) *)
  barrier_filtered : float; (** nursery-filter fast exit *)
  barrier_fast : float; (** full predicate, nothing remembered *)
  barrier_slow : float; (** predicate + remset insert *)
  gc_setup : float; (** per-collection fixed cost (stop, roots setup) *)
  gc_root : float; (** per root slot *)
  gc_copy_word : float; (** per word copied *)
  gc_scan_slot : float; (** per slot scanned *)
  gc_remset_slot : float; (** per remembered slot processed *)
  gc_free_frame : float; (** per frame released *)
  gc_mark_word : float; (** per word marked (in-place strategies) *)
  gc_sweep_word : float; (** per dead word swept into a free list *)
  gc_move_word : float; (** per word slid by the compactor *)
}

val default : t

val mutator_time : t -> Beltway.Gc_stats.t -> float
(** Total mutator work for a run (allocation + barriers). *)

val collection_time : t -> Beltway.Gc_stats.collection -> float
(** Work of one collection. *)

val gc_time : t -> Beltway.Gc_stats.t -> float
(** Sum over all collections. *)

val total_time : t -> Beltway.Gc_stats.t -> float
(** [mutator_time + gc_time]. *)
