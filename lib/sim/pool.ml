(* A fixed-size domain pool for embarrassingly parallel sweeps.

   Every task the harness submits builds its own [Gc.t] (heap, remsets,
   PRNG, statistics), so tasks share no mutable state and results are a
   deterministic function of the task alone; the pool only changes
   *when* each task runs. [map] therefore returns results in input
   order and is observationally identical at any job count.

   The queue machinery lives in [Beltway_util.Team] (shared with the
   parallel collector's intra-collection fan-out): Mutex+Condition
   task queue, lazily spawned workers, and a submitting domain that
   participates in draining, so a pool of [jobs] keeps exactly [jobs]
   domains busy ([jobs - 1] spawned workers plus the caller). Nested
   parallel maps — including a parallel *collection* triggered inside a
   pool task — downgrade to sequential execution via the team's
   domain-local worker flag. *)

module Team = Beltway_util.Team

type t = Team.t

let max_jobs = Team.max_size

let env_jobs () =
  match Sys.getenv_opt "BELTWAY_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let recommended_jobs () =
  match env_jobs () with
  | Some n -> min n max_jobs
  | None -> min (Domain.recommended_domain_count ()) max_jobs

let create ~jobs = Team.create ~size:jobs
let jobs t = Team.size t
let shutdown t = Team.shutdown t

(* The shared default pool, sized by --jobs / BELTWAY_JOBS /
   recommended_domain_count, in that priority order. *)
let default_pool : t option ref = ref None
let chosen_jobs : int option ref = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let jobs = match !chosen_jobs with Some n -> n | None -> recommended_jobs () in
    let p = create ~jobs in
    default_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

let set_default_jobs n =
  let n = max 1 (min n max_jobs) in
  (match !default_pool with
  | Some p when jobs p <> n ->
    shutdown p;
    default_pool := None
  | _ -> ());
  chosen_jobs := Some n

let default_jobs () = jobs (default ())

let map ?pool f xs =
  let p = match pool with Some p -> p | None -> default () in
  Team.map p f xs
