(* A fixed-size domain pool for embarrassingly parallel sweeps.

   Every task the harness submits builds its own [Gc.t] (heap, remsets,
   PRNG, statistics), so tasks share no mutable state and results are a
   deterministic function of the task alone; the pool only changes
   *when* each task runs. [map] therefore returns results in input
   order and is observationally identical at any job count.

   The queue is Mutex+Condition (plenty for tasks that each run for
   milliseconds to seconds); the submitting domain participates in
   draining, so a pool of [jobs] keeps exactly [jobs] domains busy
   ([jobs - 1] spawned workers plus the caller). *)

type t = {
  jobs : int;
  mutable workers : unit Domain.t list; (* spawned lazily on first parallel map *)
  mutable started : bool;
  mutable stop : bool;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
}

(* Workers must never submit nested parallel maps (the pool has no
   dependency tracking and a nested wait could deadlock on a full
   queue); a domain-local flag downgrades any such call to sequential
   execution. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* OCaml 5 performs poorly beyond ~a hundred domains; far above any
   sensible core count, so clamp quietly. *)
let max_jobs = 64

let env_jobs () =
  match Sys.getenv_opt "BELTWAY_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let recommended_jobs () =
  match env_jobs () with
  | Some n -> min n max_jobs
  | None -> min (Domain.recommended_domain_count ()) max_jobs

let create ~jobs =
  {
    jobs = max 1 (min jobs max_jobs);
    workers = [];
    started = false;
    stop = false;
    queue = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
  }

let jobs t = t.jobs

let worker_loop t () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.m;
      task ();
      loop ()
    end
  in
  loop ()

let ensure_started t =
  if not t.started then begin
    t.started <- true;
    t.workers <- List.init (t.jobs - 1) (fun _ -> Domain.spawn (worker_loop t))
  end

let shutdown t =
  if t.started then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.started <- false;
    t.stop <- false
  end

(* The shared default pool, sized by --jobs / BELTWAY_JOBS /
   recommended_domain_count, in that priority order. *)
let default_pool : t option ref = ref None
let chosen_jobs : int option ref = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let jobs = match !chosen_jobs with Some n -> n | None -> recommended_jobs () in
    let p = create ~jobs in
    default_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

let set_default_jobs n =
  let n = max 1 (min n max_jobs) in
  (match !default_pool with
  | Some p when p.jobs <> n ->
    shutdown p;
    default_pool := None
  | _ -> ());
  chosen_jobs := Some n

let default_jobs () = (default ()).jobs

let map ?pool f xs =
  let p = match pool with Some p -> p | None -> default () in
  let n = List.length xs in
  if p.jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then List.map f xs
  else begin
    ensure_started p;
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make n in
    let done_m = Mutex.create () in
    let done_c = Condition.create () in
    let task i x () =
      (try results.(i) <- Some (f x)
       with e -> ignore (Atomic.compare_and_set first_error None (Some e)));
      Mutex.lock done_m;
      if Atomic.fetch_and_add remaining (-1) = 1 then Condition.broadcast done_c;
      Mutex.unlock done_m
    in
    Mutex.lock p.m;
    List.iteri (fun i x -> Queue.push (task i x) p.queue) xs;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.m;
    (* The caller drains alongside the workers, then sleeps until the
       stragglers finish. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock p.m;
        let task = if Queue.is_empty p.queue then None else Some (Queue.pop p.queue) in
        Mutex.unlock p.m;
        match task with
        | Some task ->
          task ();
          help ()
        | None ->
          Mutex.lock done_m;
          while Atomic.get remaining > 0 do
            Condition.wait done_c done_m
          done;
          Mutex.unlock done_m
      end
    in
    help ();
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end
