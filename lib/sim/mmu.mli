(** Minimum mutator utilization (paper S4.3, Figure 11).

    Following Cheng & Blelloch, mutator utilization over an interval
    [\[t, t+w)] is the fraction of that interval in which the mutator
    (not the collector) runs; MMU(w) is the minimum over all placements
    of a window of length [w] inside the run. MMU curves are
    monotonically increasing in [w]; the x-intercept is the maximum
    pause and the asymptote is overall throughput.

    The timeline is reconstructed from the collection log: mutator
    progress is interpolated on the allocation clock at the run's mean
    mutator rate, and each collection contributes a pause of its
    cost-model duration. *)

type timeline

val timeline : Cost_model.t -> Beltway.Gc_stats.t -> timeline

val of_pauses :
  ?total:float -> starts:float array -> durs:float array -> unit -> timeline
(** A timeline built directly from recorded pauses (e.g. the flight
    recorder's wall-clock pause log) instead of the cost-model
    reconstruction. [total] extends the run past the last pause end
    (defaults to the last pause end); units are whatever the inputs
    use, as long as they agree. *)

val total_time : timeline -> float
val max_pause : timeline -> float
val utilization : timeline -> float
(** Overall mutator fraction (the curve's asymptote). *)

val mmu : timeline -> window:float -> float
(** MMU for one window length, in [\[0,1\]]. Windows longer than the
    run return {!utilization}. *)

val curve : timeline -> windows:float list -> (float * float) list
(** [(w, mmu w)] pairs. *)

val pause_count : timeline -> int

(** {2 Cross-checking the reconstruction}

    The cost-model timeline and a flight-recorder pause log describe
    the same collections in different units (abstract cost vs wall
    microseconds), so the comparison is scale-free: each pause's
    {e share} of its timeline's total pause time. Per-pause share
    deviations near zero mean the cost model's relative pause shape
    matches what actually happened. *)

type drift = {
  model_pauses : int;
  recorded_pauses : int;
  compared : int;  (** [min model_pauses recorded_pauses] *)
  mean_share_dev : float;
      (** mean over compared pauses of
          [|dur_i/total_model - rec_i/total_rec|] *)
  max_share_dev : float;
  model_total_pause : float;
  recorded_total_pause : float;
}

val crosscheck : timeline -> recorded_durs:float array -> drift
(** Compare a (cost-model) timeline's pause durations against a
    recorded pause log, pairing pauses by collection order. *)

val pp_drift : Format.formatter -> drift -> unit
