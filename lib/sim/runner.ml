let log_src = Logs.Src.create "beltway.runner" ~doc:"Beltway experiment runner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  bench : string;
  config : string;
  heap_frames : int;
  heap_bytes : int;
  completed : bool;
  oom_reason : string option;
  stats : Beltway.Gc_stats.t;
  gc_time : float;
  mutator_time : float;
  total_time : float;
}

let frame_log_words = 10
let frame_bytes = (1 lsl frame_log_words) * Addr.bytes_per_word

let run_on gc ~model ~bench ~config ~heap_frames =
  let completed, oom_reason =
    try
      bench.Beltway_workload.Spec.run gc;
      (true, None)
    with Beltway.Gc.Out_of_memory m -> (false, Some m)
  in
  let stats = Beltway.Gc.stats gc in
  {
    bench = bench.Beltway_workload.Spec.name;
    config = Config.to_string config;
    heap_frames;
    heap_bytes = heap_frames * frame_bytes;
    completed;
    oom_reason;
    stats;
    gc_time = Cost_model.gc_time model stats;
    mutator_time = Cost_model.mutator_time model stats;
    total_time = Cost_model.total_time model stats;
  }

let make_gc ?gc_domains ~config ~heap_frames () =
  Beltway.Gc.create ~frame_log_words ?gc_domains ~config
    ~heap_bytes:(heap_frames * frame_bytes) ()

let run_one ?(model = Cost_model.default) ?gc_domains ~bench ~config
    ~heap_frames () =
  run_on
    (make_gc ?gc_domains ~config ~heap_frames ())
    ~model ~bench ~config ~heap_frames

let run_traced ?(model = Cost_model.default) ?capacity ?gc_domains ~bench
    ~config ~heap_frames () =
  let gc = make_gc ?gc_domains ~config ~heap_frames () in
  let recorder = Beltway_obs.Recorder.attach ?capacity gc in
  let result = run_on gc ~model ~bench ~config ~heap_frames in
  Beltway_obs.Recorder.detach recorder;
  (result, recorder)

let run_profiled ?(model = Cost_model.default) ?gc_domains ~bench ~config
    ~heap_frames () =
  let gc = make_gc ?gc_domains ~config ~heap_frames () in
  let profiler = Beltway_obs.Profiler.attach gc in
  let result = run_on gc ~model ~bench ~config ~heap_frames in
  Beltway_obs.Profiler.detach profiler;
  (result, profiler)

let crosscheck_mmu ?(model = Cost_model.default) result recorder =
  let tl = Mmu.timeline model result.stats in
  Mmu.crosscheck tl
    ~recorded_durs:(Beltway_obs.Recorder.pause_durs_us recorder)

(* The memo is only ever touched from the submitting domain: pool
   tasks run the search below and results are recorded on return. *)
let memo : (string * string, int) Hashtbl.t = Hashtbl.create 16

let min_heap_key bench config =
  (bench.Beltway_workload.Spec.name, Config.to_string config)

(* The raw binary search, deterministic per (benchmark, config) and
   free of shared state, so it can run on any domain. *)
let min_heap_search ~config bench =
  let completes frames =
    (run_one ~bench ~config ~heap_frames:frames ()).completed
  in
  (* Grow an upper bound from the hint, then binary search. *)
  let hi = ref (max 8 bench.Beltway_workload.Spec.min_heap_hint_frames) in
  while not (completes !hi) do
    hi := !hi * 2;
    if !hi > 1 lsl 22 then
      failwith
        (Printf.sprintf "min_heap_frames: %s/%s does not complete even at %d frames"
           bench.Beltway_workload.Spec.name (Config.to_string config) !hi)
  done;
  let lo = ref (max 4 (!hi / 16)) in
  (* Ensure lo fails (or accept lo). *)
  if completes !lo then hi := !lo
  else begin
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if completes mid then hi := mid else lo := mid
    done
  end;
  !hi

let record_min_heap bench config mh =
  Log.info (fun m ->
      m "min heap for %s under %s: %d frames (%d KB)"
        bench.Beltway_workload.Spec.name (Config.to_string config) mh
        (mh * frame_bytes / 1024));
  Hashtbl.replace memo (min_heap_key bench config) mh

let min_heap_frames ?(config = Config.appel) bench =
  match Hashtbl.find_opt memo (min_heap_key bench config) with
  | Some v -> v
  | None ->
    let mh = min_heap_search ~config bench in
    record_min_heap bench config mh;
    mh

let prewarm_min_heaps ?(config = Config.appel) benches =
  let todo =
    List.filter
      (fun b -> not (Hashtbl.mem memo (min_heap_key b config)))
      benches
  in
  let found = Pool.map (min_heap_search ~config) todo in
  List.iter2 (fun b mh -> record_min_heap b config mh) todo found

let multipliers ~full =
  let n = if full then 33 else 9 in
  let ratio = 3.0 in
  List.init n (fun i ->
      let f = float_of_int i /. float_of_int (n - 1) in
      Float.pow ratio f)

let heap_ladder ~min_frames ~mults =
  List.map (fun m -> max 4 (int_of_float (Float.round (float_of_int min_frames *. m)))) mults

let sweep ?model ?pool ?gc_domains ~bench ~config ~heaps () =
  Pool.map ?pool
    (fun heap_frames -> run_one ?model ?gc_domains ~bench ~config ~heap_frames ())
    heaps
