module Spec = Beltway_workload.Spec
module Table = Beltway_util.Table
module SM = Beltway_util.Stats_math

(* When enabled, every table is followed by its machine-readable CSV
   form (see Table.to_csv) for post-processing/plotting. *)
let csv_output = ref false

let print_table t =
  Table.print t;
  if !csv_output then print_string (Table.to_csv t)

let cfg s =
  match Config.parse s with
  | Ok c -> c
  | Error e -> invalid_arg (Printf.sprintf "Figures: bad config %S: %s" s e)

(* Run memo shared by all figures. *)
let run_memo : (string * string * int, Runner.result) Hashtbl.t = Hashtbl.create 512

let run_cached ~bench ~config ~heap_frames =
  let key =
    (bench.Spec.name, Config.to_string config, heap_frames)
  in
  match Hashtbl.find_opt run_memo key with
  | Some r -> r
  | None ->
    let r = Runner.run_one ~bench ~config ~heap_frames () in
    Hashtbl.replace run_memo key r;
    r

(* Populate the memo for a batch of (bench, config, heap) cells on the
   domain pool. Each figure prewarms its exact grid, then renders
   sequentially from the memo, so tables come out byte-identical at any
   job count: every cell is a deterministic function of its key, only
   the evaluation schedule is parallel. The memo itself is touched
   exclusively from this (the submitting) domain. *)
let prewarm cells =
  let fresh = Hashtbl.create 64 in
  let todo =
    List.filter
      (fun (bench, config, heap_frames) ->
        let key = (bench.Spec.name, Config.to_string config, heap_frames) in
        if Hashtbl.mem run_memo key || Hashtbl.mem fresh key then false
        else begin
          Hashtbl.replace fresh key ();
          true
        end)
      cells
  in
  let results =
    Pool.map
      (fun (bench, config, heap_frames) ->
        Runner.run_one ~bench ~config ~heap_frames ())
      todo
  in
  List.iter2
    (fun (bench, config, heap_frames) r ->
      Hashtbl.replace run_memo (bench.Spec.name, Config.to_string config, heap_frames) r)
    todo results

(* Min-heap searches plus the full benches x configs x ladder grid. *)
let prewarm_ladders ~benches ~configs ~mults =
  Runner.prewarm_min_heaps benches;
  prewarm
    (List.concat_map
       (fun b ->
         let ladder =
           Runner.heap_ladder ~min_frames:(Runner.min_heap_frames b) ~mults
         in
         List.concat_map
           (fun config -> List.map (fun hf -> (b, config, hf)) ladder)
           configs)
       benches)

let cell ~bench ~config ~heap_frames =
  let r = run_cached ~bench ~config ~heap_frames in
  if r.Runner.completed then Some r else None

let mult_label m = Printf.sprintf "%.2f" m
let kb frames = frames * Runner.frame_bytes / 1024

(* Geometric mean of [metric] across benches for one (config, mult);
   None when any benchmark failed at that heap size. *)
let geo_cell ~benches ~config ~mults_frames ~metric i =
  let values =
    List.map
      (fun (bench, ladder) ->
        match cell ~bench ~config ~heap_frames:(List.nth ladder i) with
        | Some r -> Some (metric r)
        | None -> None)
      (List.combine benches mults_frames)
  in
  if List.exists Option.is_none values then None
  else Some (SM.geomean (List.map Option.get values))

(* A figure built from geometric means over the six benchmarks:
   one table per metric, columns per config, rows per multiplier,
   values relative to the figure's best. *)
let geomean_figure ~title ~configs ~full ~metrics =
  let mults = Runner.multipliers ~full in
  let benches = Spec.all in
  prewarm_ladders ~benches ~configs ~mults;
  let ladders =
    List.map
      (fun b ->
        let mh = Runner.min_heap_frames b in
        Runner.heap_ladder ~min_frames:mh ~mults)
      benches
  in
  List.iter
    (fun (metric_name, metric) ->
      (* Collect all defined geomeans to find the figure's best. *)
      let grid =
        List.map
          (fun config ->
            List.mapi
              (fun i _ -> geo_cell ~benches ~config ~mults_frames:ladders ~metric i)
              mults)
          configs
      in
      let defined =
        List.concat_map (List.filter_map (fun x -> x)) grid
      in
      let best = match defined with [] -> 1.0 | l -> SM.min_l l in
      let t =
        Table.create
          ~title:(Printf.sprintf "%s — %s (relative to best %.3e units)" title metric_name best)
          ~columns:("heap/min" :: List.map Config.to_string configs)
      in
      List.iteri
        (fun i m ->
          let row =
            mult_label m
            :: List.map
                 (fun col ->
                   match List.nth col i with
                   | Some v -> Printf.sprintf "%.3f" (v /. best)
                   | None -> "-")
                 grid
          in
          Table.add_row t row)
        mults;
      print_table t)
    metrics

let gc_time (r : Runner.result) = Float.max 1.0 r.Runner.gc_time
let total_time (r : Runner.result) = r.Runner.total_time

(* ------------------------------------------------------------------ *)

let table1 ~full =
  ignore full;
  Runner.prewarm_min_heaps Spec.all;
  prewarm
    (List.concat_map
       (fun b ->
         let mh = Runner.min_heap_frames b in
         let at mult = max 4 (int_of_float (Float.round (float_of_int mh *. mult))) in
         [
           (b, Config.appel, at 3.0);
           (b, Config.appel, at 1.25);
           (b, Config.appel, mh * 3);
         ])
       Spec.all);
  let t =
    Table.create ~title:"Table 1: benchmark characteristics"
      ~columns:
        [ "benchmark"; "description"; "min heap"; "total alloc"; "GCs@3.0x"; "GCs@1.25x" ]
  in
  List.iter
    (fun b ->
      let mh = Runner.min_heap_frames b in
      let gcs mult =
        let heap_frames =
          max 4 (int_of_float (Float.round (float_of_int mh *. mult)))
        in
        let r = run_cached ~bench:b ~config:Config.appel ~heap_frames in
        if r.Runner.completed then
          string_of_int (Beltway.Gc_stats.gcs r.Runner.stats)
        else "-"
      in
      let r = run_cached ~bench:b ~config:Config.appel ~heap_frames:(mh * 3) in
      Table.add_row t
        [
          b.Spec.name;
          b.Spec.description;
          Printf.sprintf "%dKB" (kb mh);
          Printf.sprintf "%dKB"
            (r.Runner.stats.Beltway.Gc_stats.words_allocated * Addr.bytes_per_word
           / 1024);
          gcs 3.0;
          gcs 1.25;
        ])
    Spec.all;
  print_table t

let fig1 ~full =
  let mults = Runner.multipliers ~full in
  prewarm_ladders ~benches:Spec.all ~configs:[ Config.appel ] ~mults;
  let pct =
    Table.create ~title:"Figure 1(a): % of time spent in GC (Appel-style collector)"
      ~columns:("heap/min" :: List.map (fun b -> b.Spec.name) Spec.all)
  in
  let rel =
    Table.create
      ~title:"Figure 1(b): total time relative to best heap size (Appel-style collector)"
      ~columns:("heap/min" :: List.map (fun b -> b.Spec.name) Spec.all)
  in
  let per_bench =
    List.map
      (fun b ->
        let mh = Runner.min_heap_frames b in
        let ladder = Runner.heap_ladder ~min_frames:mh ~mults in
        List.map (fun hf -> cell ~bench:b ~config:Config.appel ~heap_frames:hf) ladder)
      Spec.all
  in
  let bests =
    List.map
      (fun col ->
        match List.filter_map (Option.map total_time) col with
        | [] -> 1.0
        | l -> SM.min_l l)
      per_bench
  in
  List.iteri
    (fun i m ->
      let pct_row =
        mult_label m
        :: List.map
             (fun col ->
               match List.nth col i with
               | Some r ->
                 Printf.sprintf "%.1f%%" (100.0 *. r.Runner.gc_time /. r.Runner.total_time)
               | None -> "-")
             per_bench
      in
      let rel_row =
        mult_label m
        :: List.map2
             (fun col best ->
               match List.nth col i with
               | Some r -> Printf.sprintf "%.3f" (total_time r /. best)
               | None -> "-")
             per_bench bests
      in
      Table.add_row pct pct_row;
      Table.add_row rel rel_row)
    mults;
  print_table pct;
  print_table rel

let fig5 ~full =
  geomean_figure
    ~title:"Figure 5: Appel vs Beltway 100.100 vs 100.100.100 (geomean, 6 benchmarks)"
    ~configs:[ Config.appel; cfg "100.100"; cfg "100.100.100" ]
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ]

let fig6 ~full =
  geomean_figure
    ~title:"Figure 6: fixed-size nursery generational collectors vs Appel (geomean)"
    ~configs:[ Config.appel; cfg "fixed:10"; cfg "fixed:25"; cfg "fixed:50"; cfg "fixed:75" ]
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ]

let fig7 ~full =
  geomean_figure
    ~title:"Figure 7: increment-size sensitivity of Beltway X.X.100 (geomean)"
    ~configs:[ cfg "10.10.100"; cfg "25.25.100"; cfg "33.33.100"; cfg "50.50.100" ]
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ]

let fig8 ~full =
  geomean_figure
    ~title:"Figure 8: Beltway 25.25 vs 25.25.100 vs Appel (geomean)"
    ~configs:[ cfg "25.25"; cfg "25.25.100"; Config.appel ]
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ];
  (* The javac detail: 25.25 never reclaims a large cyclic structure. *)
  let mults = Runner.multipliers ~full in
  let b = Spec.javac in
  let mh = Runner.min_heap_frames b in
  let ladder = Runner.heap_ladder ~min_frames:mh ~mults in
  let t =
    Table.create
      ~title:
        "Figure 8 detail: javac under Beltway 25.25 (incomplete) vs 25.25.100 — the \
         cross-increment cycle pathology (S4.2.4)"
      ~columns:[ "heap/min"; "25.25"; "25.25.100"; "appel" ]
  in
  let cols =
    List.map
      (fun c -> List.map (fun hf -> cell ~bench:b ~config:c ~heap_frames:hf) ladder)
      [ cfg "25.25"; cfg "25.25.100"; Config.appel ]
  in
  let best =
    match List.concat_map (List.filter_map (Option.map total_time)) cols with
    | [] -> 1.0
    | l -> SM.min_l l
  in
  List.iteri
    (fun i m ->
      Table.add_row t
        (mult_label m
        :: List.map
             (fun col ->
               match List.nth col i with
               | Some r -> Printf.sprintf "%.3f" (total_time r /. best)
               | None -> "-")
             cols))
    mults;
  print_table t

let fig9 ~full =
  geomean_figure
    ~title:"Figure 9: Beltway 25.25.100 vs Appel vs fixed-25% nursery (geomean)"
    ~configs:[ cfg "25.25.100"; Config.appel; cfg "fixed:25" ]
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ]

let fig10 ~full =
  let mults = Runner.multipliers ~full in
  let configs = [ cfg "25.25.100"; Config.appel; cfg "fixed:25" ] in
  prewarm_ladders ~benches:Spec.all ~configs ~mults;
  List.iter
    (fun b ->
      let mh = Runner.min_heap_frames b in
      let ladder = Runner.heap_ladder ~min_frames:mh ~mults in
      let cols =
        List.map
          (fun c -> List.map (fun hf -> cell ~bench:b ~config:c ~heap_frames:hf) ladder)
          configs
      in
      let best =
        match List.concat_map (List.filter_map (Option.map total_time)) cols with
        | [] -> 1.0
        | l -> SM.min_l l
      in
      let t =
        Table.create
          ~title:
            (Printf.sprintf "Figure 10 (%s): total time relative to best (min heap %dKB)"
               b.Spec.name (kb mh))
          ~columns:("heap/min" :: List.map Config.to_string configs)
      in
      List.iteri
        (fun i m ->
          Table.add_row t
            (mult_label m
            :: List.map
                 (fun col ->
                   match List.nth col i with
                   | Some r -> Printf.sprintf "%.3f" (total_time r /. best)
                   | None -> "-")
                 cols))
        mults;
      print_table t)
    Spec.all

let fig11 ~full =
  ignore full;
  let b = Spec.javac in
  let mh = Runner.min_heap_frames b in
  let configs =
    [ cfg "10.10"; cfg "10.10.100"; cfg "33.33"; cfg "33.33.100"; Config.appel ]
  in
  prewarm
    (List.concat_map
       (fun mult ->
         let heap_frames = int_of_float (float_of_int mh *. mult) in
         List.map (fun c -> (b, c, heap_frames)) configs)
       [ 1.5; 3.0 ]);
  let model = Cost_model.default in
  List.iter
    (fun mult ->
      let heap_frames = int_of_float (float_of_int mh *. mult) in
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 11: javac MMU at %.2fx min heap (%dKB); x-intercept = max pause"
               mult (kb heap_frames))
          ~columns:("window (units)" :: List.map Config.to_string configs)
      in
      let tls =
        List.map
          (fun c ->
            match cell ~bench:b ~config:c ~heap_frames with
            | Some r -> Some (Mmu.timeline model r.Runner.stats)
            | None -> None)
          configs
      in
      let windows =
        [ 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7; 3e7; 1e8 ]
      in
      List.iter
        (fun w ->
          Table.add_row t
            (Printf.sprintf "%.0e" w
            :: List.map
                 (function
                   | Some tl -> Printf.sprintf "%.3f" (Mmu.mmu tl ~window:w)
                   | None -> "-")
                 tls))
        windows;
      Table.add_row t
        ("max pause"
        :: List.map
             (function
               | Some tl -> Printf.sprintf "%.2e" (Mmu.max_pause tl)
               | None -> "-")
             tls);
      Table.add_row t
        ("utilization"
        :: List.map
             (function
               | Some tl -> Printf.sprintf "%.3f" (Mmu.utilization tl)
               | None -> "-")
             tls);
      print_table t)
    [ 1.5; 3.0 ]

let ablation ~full =
  ignore full;
  (* Each mechanism toggled against its baseline, at a moderately tight
     heap (1.5x the per-benchmark minimum) where the mechanisms
     matter. *)
  let variants =
    [
      ("25.25.100", "baseline");
      ("25.25.100+nofilter", "without the nursery-source barrier filter");
      ("25.25.100+halfreserve", "fixed half-heap reserve instead of dynamic");
      ("25.25.100+remtrig:20000", "with the remset trigger");
      ("25.25.100+cards", "card-table barrier instead of remsets");
      ("25.25.100+los:256", "with a 1KB-threshold large object space");
      ("appel", "Appel baseline");
      ("appel+ttd:8", "Appel with a time-to-die split nursery");
    ]
  in
  let benches = [ Spec.jess; Spec.javac; Spec.pseudojbb ] in
  Runner.prewarm_min_heaps benches;
  prewarm
    (List.concat_map
       (fun (cs, _) ->
         List.map
           (fun b -> (b, cfg cs, Runner.min_heap_frames b * 3 / 2))
           benches)
       variants);
  let t =
    Table.create
      ~title:
        "Ablation of S3.3 mechanisms at 1.5x min heap (total time relative to the \
         25.25.100 baseline; barrier slow-path count in parentheses)"
      ~columns:("variant" :: "description" :: List.map (fun b -> b.Spec.name) benches)
  in
  let baseline_times =
    List.map
      (fun b ->
        let mh = Runner.min_heap_frames b in
        match cell ~bench:b ~config:(cfg "25.25.100") ~heap_frames:(mh * 3 / 2) with
        | Some r -> Some (total_time r)
        | None -> None)
      benches
  in
  List.iter
    (fun (cs, desc) ->
      let row =
        List.map2
          (fun b base ->
            let mh = Runner.min_heap_frames b in
            match (cell ~bench:b ~config:(cfg cs) ~heap_frames:(mh * 3 / 2), base) with
            | Some r, Some base ->
              Printf.sprintf "%.3f (%d)" (total_time r /. base)
                r.Runner.stats.Beltway.Gc_stats.barrier_slow
            | _ -> "-")
          benches baseline_times
      in
      Table.add_row t (cs :: desc :: row))
    variants;
  print_table t

let xy_explore ~full =
  (* "Our framework and implementation also supports Beltway X.Y
     collectors where X != Y, but we do not explore these
     configurations here" (paper S3.2) — here we do: asymmetric
     nursery/mature increment sizes against the symmetric baseline. *)
  geomean_figure
    ~title:"Beyond the paper: asymmetric Beltway X.Y (geomean, 6 benchmarks)"
    ~configs:[ cfg "25.25"; cfg "10.40"; cfg "40.10"; cfg "50.20"; cfg "20.50" ]
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ]

let interp ~full =
  ignore full;
  (* The second mutator family: real interpreted programs (Beltlang)
     whose heap the collectors manage — the "interpreter heap"
     reproduction strategy, exercised end to end. Every collector must
     produce identical program output (checked); the table compares
     their costs. *)
  let configs = [ "appel"; "25.25.100"; "10.10.100"; "25.25"; "ss"; "of:25" ] in
  let model = Cost_model.default in
  let heap_bytes = 768 * 1024 in
  (* Every (program, collector) run is independent — own heap, own
     interpreter — so the whole grid fans out on the pool; rendering
     (including the output-identity check against the first collector)
     stays sequential and order-stable. *)
  let grid =
    List.concat_map
      (fun (p : Beltlang.Programs.t) -> List.map (fun cs -> (p, cs)) configs)
      Beltlang.Programs.all
  in
  let results =
    Pool.map
      (fun ((p : Beltlang.Programs.t), cs) ->
        let config = cfg cs in
        let gc = Beltway.Gc.create ~config ~heap_bytes () in
        let it = Beltlang.Interp.create gc in
        match Beltlang.Interp.run_string it p.Beltlang.Programs.source with
        | () -> Some (Beltway.Gc.stats gc, Beltlang.Interp.output it)
        | exception Beltway.Gc.Out_of_memory _ -> None)
      grid
  in
  let by_cell = Hashtbl.create 64 in
  List.iter2
    (fun ((p : Beltlang.Programs.t), cs) r ->
      Hashtbl.replace by_cell (p.Beltlang.Programs.name, cs) r)
    grid results;
  List.iter
    (fun (p : Beltlang.Programs.t) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf "Interpreted %s (%s) in a %dKB heap"
               p.Beltlang.Programs.name p.Beltlang.Programs.description
               (heap_bytes / 1024))
          ~columns:[ "collector"; "GCs"; "copied KB"; "GC time"; "total time"; "output" ]
      in
      let reference = ref None in
      List.iter
        (fun cs ->
          match Hashtbl.find by_cell (p.Beltlang.Programs.name, cs) with
          | Some (stats, out) ->
            let ok =
              match !reference with
              | None ->
                reference := Some out;
                true
              | Some r -> r = out
            in
            Table.add_row t
              [
                cs;
                string_of_int (Beltway.Gc_stats.gcs stats);
                string_of_int (Beltway.Gc_stats.total_copied_words stats * 4 / 1024);
                Printf.sprintf "%.2e" (Cost_model.gc_time model stats);
                Printf.sprintf "%.2e" (Cost_model.total_time model stats);
                (if ok then "identical" else "MISMATCH");
              ]
          | None -> Table.add_row t [ cs; "-"; "-"; "-"; "-"; "OOM" ])
        configs;
      print_table t)
    Beltlang.Programs.all

let sensitivity ~full =
  ignore full;
  (* Are the Figure 9 conclusions an artifact of the cost-model
     constants? Re-evaluate the same runs (same event counts) under
     perturbed models: each row scales one constant family by the given
     factor and reports the 25.25.100 : appel total-time ratio (< 1
     means Beltway wins) at a tight and a large heap. *)
  let d = Cost_model.default in
  let models =
    [
      ("default", d);
      ( "barrier x4",
        { d with
          Cost_model.barrier_fast = d.Cost_model.barrier_fast *. 4.0;
          barrier_slow = d.Cost_model.barrier_slow *. 4.0;
          barrier_filtered = d.Cost_model.barrier_filtered *. 4.0
        } );
      ( "barrier /4",
        { d with
          Cost_model.barrier_fast = d.Cost_model.barrier_fast /. 4.0;
          barrier_slow = d.Cost_model.barrier_slow /. 4.0;
          barrier_filtered = d.Cost_model.barrier_filtered /. 4.0
        } );
      ("copy x4", { d with Cost_model.gc_copy_word = d.Cost_model.gc_copy_word *. 4.0 });
      ("copy /4", { d with Cost_model.gc_copy_word = d.Cost_model.gc_copy_word /. 4.0 });
      ( "scan x4",
        { d with
          Cost_model.gc_scan_slot = d.Cost_model.gc_scan_slot *. 4.0;
          gc_remset_slot = d.Cost_model.gc_remset_slot *. 4.0
        } );
      ("setup x8", { d with Cost_model.gc_setup = d.Cost_model.gc_setup *. 8.0 });
    ]
  in
  let benches = Spec.all in
  Runner.prewarm_min_heaps benches;
  prewarm
    (List.concat_map
       (fun b ->
         let mh = Runner.min_heap_frames b in
         List.concat_map
           (fun mult ->
             let heap_frames =
               max 4 (int_of_float (Float.round (float_of_int mh *. mult)))
             in
             [ (b, cfg "25.25.100", heap_frames); (b, Config.appel, heap_frames) ])
           [ 1.32; 3.0 ])
       benches);
  let ratio model mult =
    let per_bench config =
      List.map
        (fun b ->
          let mh = Runner.min_heap_frames b in
          let heap_frames = max 4 (int_of_float (Float.round (float_of_int mh *. mult))) in
          match cell ~bench:b ~config ~heap_frames with
          | Some r -> Some (Cost_model.total_time model r.Runner.stats)
          | None -> None)
        benches
    in
    let a = per_bench (cfg "25.25.100") and b = per_bench Config.appel in
    if List.exists Option.is_none a || List.exists Option.is_none b then None
    else
      Some (SM.geomean (List.map Option.get a) /. SM.geomean (List.map Option.get b))
  in
  let t =
    Table.create
      ~title:
        "Cost-model sensitivity: total-time ratio 25.25.100 : appel (geomean; < 1 = \
         Beltway wins) under perturbed cost constants"
      ~columns:[ "model"; "at 1.32x min heap"; "at 3.0x min heap" ]
  in
  List.iter
    (fun (name, model) ->
      let fmt = function Some r -> Printf.sprintf "%.3f" r | None -> "-" in
      Table.add_row t [ name; fmt (ratio model 1.32); fmt (ratio model 3.0) ])
    models;
  print_table t

let policy_zoo ~full =
  (* Every registered collector policy under its exemplar
     configuration — the registry's own comparison figure. Driven off
     [Policy.registry], so a new entry appears here with no edit. *)
  geomean_figure
    ~title:"Policy registry: every registered policy, exemplar config (geomean, 6 benchmarks)"
    ~configs:
      (List.map
         (fun (name, _) -> cfg (Beltway.Policy.exemplar name))
         Beltway.Policy.registry)
    ~full
    ~metrics:[ ("GC time", gc_time); ("total time", total_time) ]

let strategies ~full =
  ignore full;
  (* Copying vs in-place reclamation under one policy (25.25.100): the
     evacuation bill is proportional to survivors and pays a copy
     reserve; marking is proportional to the live set plus a sweep or
     slide over the plan, and uses the whole heap. The per-benchmark
     tables locate where each regime wins; the final table names the
     cheapest strategy per (benchmark, heap size) cell — the crossover
     in tabular form. *)
  let base = "25.25.100" in
  let strat_cfgs =
    List.map
      (fun (i : Strategy.info) ->
        ( i.Strategy.key,
          if i.Strategy.key = Strategy.default_name then cfg base
          else cfg (base ^ "+strategy:" ^ i.Strategy.key) ))
      Strategy.infos
  in
  let names = List.map fst strat_cfgs in
  let benches = [ Spec.jess; Spec.javac; Spec.raytrace ] in
  let mults = [ 1.0; 1.25; 1.5; 2.0; 2.5; 3.0 ] in
  Runner.prewarm_min_heaps benches;
  let at b m =
    max 4
      (int_of_float (Float.round (float_of_int (Runner.min_heap_frames b) *. m)))
  in
  prewarm
    (List.concat_map
       (fun b ->
         List.concat_map
           (fun m -> List.map (fun (_, c) -> (b, c, at b m)) strat_cfgs)
           mults)
       benches);
  List.iter
    (fun b ->
      let cols =
        List.map
          (fun (_, c) ->
            List.map (fun m -> cell ~bench:b ~config:c ~heap_frames:(at b m)) mults)
          strat_cfgs
      in
      let best =
        match List.concat_map (List.filter_map (Option.map total_time)) cols with
        | [] -> 1.0
        | l -> SM.min_l l
      in
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Strategies (%s): total time relative to best, %% of time in GC in \
                parentheses (min heap %dKB)"
               b.Spec.name
               (kb (Runner.min_heap_frames b)))
          ~columns:("heap/min" :: names)
      in
      List.iteri
        (fun i m ->
          Table.add_row t
            (mult_label m
            :: List.map
                 (fun col ->
                   match List.nth col i with
                   | Some r ->
                     Printf.sprintf "%.3f (%.1f%%)" (total_time r /. best)
                       (100.0 *. r.Runner.gc_time /. r.Runner.total_time)
                   | None -> "-")
                 cols))
        mults;
      print_table t)
    benches;
  let t =
    Table.create
      ~title:"Strategy crossover: cheapest strategy per (benchmark, heap size)"
      ~columns:("heap/min" :: List.map (fun b -> b.Spec.name) benches)
  in
  List.iter
    (fun m ->
      Table.add_row t
        (mult_label m
        :: List.map
             (fun b ->
               let winner =
                 List.fold_left
                   (fun acc (name, c) ->
                     match cell ~bench:b ~config:c ~heap_frames:(at b m) with
                     | None -> acc
                     | Some r -> (
                       let time = total_time r in
                       match acc with
                       | Some (_, best) when best <= time -> acc
                       | _ -> Some (name, time)))
                   None strat_cfgs
               in
               match winner with Some (name, _) -> name | None -> "-")
             benches))
    mults;
  print_table t

let all_ids =
  [
    "table1"; "fig1"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "ablate"; "xy"; "interp"; "sensitivity";
  ]

let run ~id ~full =
  match id with
  | "table1" -> table1 ~full
  | "fig1" -> fig1 ~full
  | "fig5" -> fig5 ~full
  | "fig6" -> fig6 ~full
  | "fig7" -> fig7 ~full
  | "fig8" -> fig8 ~full
  | "fig9" -> fig9 ~full
  | "fig10" -> fig10 ~full
  | "fig11" -> fig11 ~full
  | "ablate" -> ablation ~full
  | "xy" -> xy_explore ~full
  | "interp" -> interp ~full
  | "sensitivity" -> sensitivity ~full
  (* not listed in all_ids (keeps the paper-ordered registry stable);
     reachable by explicit id *)
  | "policies" -> policy_zoo ~full
  | "strategies" -> strategies ~full
  | _ ->
    invalid_arg
      (Printf.sprintf "Figures.run: unknown id %S (expected one of: %s)" id
         (String.concat ", " all_ids))

let run_all ~full = List.iter (fun id -> run ~id ~full) all_ids
