(** Experiment execution: single runs, minimum-heap search, and
    heap-size sweeps.

    The paper's protocol: for each benchmark, find the minimum heap
    size in which the Appel-style collector completes (Table 1), then
    run every collector at a ladder of heap sizes from 1x to 3x that
    minimum (they use 33 sizes; [multipliers] defaults to 9 and the
    harness's [--full] flag restores 33). A configuration failing at a
    heap size ([completed = false]) appears as a missing point,
    exactly like the truncated curves in Figures 6 and 10. *)

type result = {
  bench : string;
  config : string;
  heap_frames : int;
  heap_bytes : int;
  completed : bool;
  oom_reason : string option;
  stats : Beltway.Gc_stats.t;
  gc_time : float;
  mutator_time : float;
  total_time : float;
}

val frame_log_words : int
(** Frame granularity used throughout the harness (10: 4 KiB
    frames). *)

val frame_bytes : int
(** Bytes per frame at that granularity. *)

val run_one :
  ?model:Cost_model.t ->
  ?gc_domains:int ->
  bench:Beltway_workload.Spec.t ->
  config:Config.t ->
  heap_frames:int ->
  unit ->
  result
(** [gc_domains] shards each collection of this run over that many
    domains (default: the [BELTWAY_GC_DOMAINS] environment variable,
    else sequential). *)

val run_traced :
  ?model:Cost_model.t ->
  ?capacity:int ->
  ?gc_domains:int ->
  bench:Beltway_workload.Spec.t ->
  config:Config.t ->
  heap_frames:int ->
  unit ->
  result * Beltway_obs.Recorder.t
(** [run_one] with a flight recorder attached for the duration of the
    workload ([capacity] = event-ring size). The recorder is detached
    before returning; export it with [Beltway_obs.Chrome_trace] /
    [Beltway_obs.Metrics.to_json]. *)

val run_profiled :
  ?model:Cost_model.t ->
  ?gc_domains:int ->
  bench:Beltway_workload.Spec.t ->
  config:Config.t ->
  heap_frames:int ->
  unit ->
  result * Beltway_obs.Profiler.t
(** [run_one] with the object-demographics profiler attached for the
    duration of the workload; detached before returning, so its
    accumulated data is stable. Export with
    [Beltway_obs.Profiler.run_json]. *)

val crosscheck_mmu :
  ?model:Cost_model.t -> result -> Beltway_obs.Recorder.t -> Mmu.drift
(** Compare the cost-model pause timeline reconstructed from
    [result.stats] against the recorder's wall-clock pause log (see
    {!Mmu.crosscheck}). *)

val min_heap_frames :
  ?config:Config.t -> Beltway_workload.Spec.t -> int
(** Smallest frame count at which the benchmark completes (binary
    search; [config] defaults to the Appel comparator, as in
    Table 1). Results are memoised per (benchmark, config label). *)

val prewarm_min_heaps :
  ?config:Config.t -> Beltway_workload.Spec.t list -> unit
(** Run the not-yet-memoised minimum-heap searches for [benches]
    concurrently on the default {!Pool} (each search is sequential
    internally — every probe depends on the last — but searches for
    different benchmarks are independent). Subsequent
    {!min_heap_frames} calls are cache hits. *)

val multipliers : full:bool -> float list
(** The heap-size ladder: 9 points (or 33 with [full]) from 1.0 to
    3.0, geometrically spaced. *)

val heap_ladder : min_frames:int -> mults:float list -> int list

val sweep :
  ?model:Cost_model.t ->
  ?pool:Pool.t ->
  ?gc_domains:int ->
  bench:Beltway_workload.Spec.t ->
  config:Config.t ->
  heaps:int list ->
  unit ->
  result list
(** Run the benchmark at every heap size in [heaps], in parallel on
    [pool] (default: the shared {!Pool.default}). Results are in
    [heaps] order and independent of the job count: each run builds its
    own [Gc.t]. *)
