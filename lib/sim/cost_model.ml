type t = {
  alloc_word : float;
  alloc_object : float;
  barrier_filtered : float;
  barrier_fast : float;
  barrier_slow : float;
  gc_setup : float;
  gc_root : float;
  gc_copy_word : float;
  gc_scan_slot : float;
  gc_remset_slot : float;
  gc_free_frame : float;
  gc_mark_word : float;
  gc_sweep_word : float;
  gc_move_word : float;
}

let default =
  {
    alloc_word = 1.0;
    alloc_object = 3.0;
    barrier_filtered = 0.5;
    barrier_fast = 2.0;
    barrier_slow = 15.0;
    gc_setup = 4_000.0;
    gc_root = 2.0;
    gc_copy_word = 4.0;
    gc_scan_slot = 2.0;
    gc_remset_slot = 5.0;
    gc_free_frame = 30.0;
    (* In-place strategy terms. Marking touches a word plus a bitmap
       bit (cheaper than an evacuating copy); sweeping is a linear
       header scan (cheapest per word); a compaction slide is a
       memmove without the re-scan a copy pays. All three stats are
       zero under the copying strategy, so these terms contribute
       exactly 0.0 there and every copying figure is unchanged. *)
    gc_mark_word = 3.0;
    gc_sweep_word = 0.5;
    gc_move_word = 2.0;
  }

let mutator_time t (s : Beltway.Gc_stats.t) =
  (t.alloc_word *. float_of_int s.Beltway.Gc_stats.words_allocated)
  +. (t.alloc_object *. float_of_int s.Beltway.Gc_stats.objects_allocated)
  +. (t.barrier_filtered *. float_of_int s.Beltway.Gc_stats.barrier_filtered)
  +. (t.barrier_fast *. float_of_int s.Beltway.Gc_stats.barrier_fast)
  +. (t.barrier_slow *. float_of_int s.Beltway.Gc_stats.barrier_slow)

let collection_time t (c : Beltway.Gc_stats.collection) =
  t.gc_setup
  +. (t.gc_root *. float_of_int c.Beltway.Gc_stats.roots_scanned)
  +. (t.gc_copy_word *. float_of_int c.Beltway.Gc_stats.copied_words)
  +. (t.gc_scan_slot *. float_of_int c.Beltway.Gc_stats.scanned_slots)
  +. (t.gc_remset_slot *. float_of_int c.Beltway.Gc_stats.remset_slots)
  +. (t.gc_free_frame *. float_of_int c.Beltway.Gc_stats.freed_frames)
  +. (t.gc_mark_word *. float_of_int c.Beltway.Gc_stats.marked_words)
  +. (t.gc_sweep_word *. float_of_int c.Beltway.Gc_stats.swept_words)
  +. (t.gc_move_word *. float_of_int c.Beltway.Gc_stats.moved_words)

let gc_time t (s : Beltway.Gc_stats.t) =
  Beltway_util.Vec.fold (fun acc c -> acc +. collection_time t c) 0.0
    s.Beltway.Gc_stats.collections

let total_time t s = mutator_time t s +. gc_time t s
