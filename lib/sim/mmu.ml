type timeline = {
  starts : float array; (* pause start times, ascending *)
  durs : float array;
  prefix : float array; (* prefix.(i) = total pause time before pause i *)
  total : float;
  total_pause : float;
}

let timeline model (stats : Beltway.Gc_stats.t) =
  let mut_total = Cost_model.mutator_time model stats in
  let words = max 1 stats.Beltway.Gc_stats.words_allocated in
  let rate = mut_total /. float_of_int words in
  let n = Beltway_util.Vec.length stats.Beltway.Gc_stats.collections in
  let starts = Array.make n 0.0 in
  let durs = Array.make n 0.0 in
  let prefix = Array.make (n + 1) 0.0 in
  let acc_pause = ref 0.0 in
  for i = 0 to n - 1 do
    let c = Beltway_util.Vec.get stats.Beltway.Gc_stats.collections i in
    let mut_progress = rate *. float_of_int c.Beltway.Gc_stats.clock_words in
    starts.(i) <- mut_progress +. !acc_pause;
    durs.(i) <- Cost_model.collection_time model c;
    prefix.(i) <- !acc_pause;
    acc_pause := !acc_pause +. durs.(i)
  done;
  prefix.(n) <- !acc_pause;
  { starts; durs; prefix; total = mut_total +. !acc_pause; total_pause = !acc_pause }

let of_pauses ?total ~starts ~durs () =
  let n = Array.length starts in
  if Array.length durs <> n then invalid_arg "Mmu.of_pauses: length mismatch";
  let prefix = Array.make (n + 1) 0.0 in
  let acc = ref 0.0 in
  let last_end = ref 0.0 in
  for i = 0 to n - 1 do
    prefix.(i) <- !acc;
    acc := !acc +. durs.(i);
    last_end := Float.max !last_end (starts.(i) +. durs.(i))
  done;
  prefix.(n) <- !acc;
  let total =
    match total with Some t -> Float.max t !last_end | None -> !last_end
  in
  {
    starts = Array.copy starts;
    durs = Array.copy durs;
    prefix;
    total;
    total_pause = !acc;
  }

let total_time t = t.total
let pause_count t = Array.length t.starts
let max_pause t = Array.fold_left Float.max 0.0 t.durs

type drift = {
  model_pauses : int;
  recorded_pauses : int;
  compared : int;
  mean_share_dev : float;
  max_share_dev : float;
  model_total_pause : float;
  recorded_total_pause : float;
}

let crosscheck model_tl ~recorded_durs =
  let m = Array.length model_tl.durs in
  let r = Array.length recorded_durs in
  let compared = min m r in
  let model_total_pause = model_tl.total_pause in
  let recorded_total_pause = Array.fold_left ( +. ) 0.0 recorded_durs in
  let mean_dev = ref 0.0 and max_dev = ref 0.0 in
  if compared > 0 && model_total_pause > 0.0 && recorded_total_pause > 0.0
  then begin
    for i = 0 to compared - 1 do
      let ms = model_tl.durs.(i) /. model_total_pause in
      let rs = recorded_durs.(i) /. recorded_total_pause in
      let d = Float.abs (ms -. rs) in
      mean_dev := !mean_dev +. d;
      if d > !max_dev then max_dev := d
    done;
    mean_dev := !mean_dev /. float_of_int compared
  end;
  {
    model_pauses = m;
    recorded_pauses = r;
    compared;
    mean_share_dev = !mean_dev;
    max_share_dev = !max_dev;
    model_total_pause;
    recorded_total_pause;
  }

let pp_drift fmt d =
  Format.fprintf fmt
    "MMU cross-check: %d model pauses vs %d recorded (%d compared); \
     pause-share drift mean %.2f%%, max %.2f%%"
    d.model_pauses d.recorded_pauses d.compared
    (100.0 *. d.mean_share_dev)
    (100.0 *. d.max_share_dev)

let utilization t =
  if t.total <= 0.0 then 1.0 else (t.total -. t.total_pause) /. t.total

(* Pause time overlapping [a, b). *)
let pause_in t a b =
  let n = Array.length t.starts in
  if n = 0 || b <= a then 0.0
  else begin
    (* First pause ending after a. *)
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let s = t.starts.(i) and d = t.durs.(i) in
      let e = s +. d in
      if e > a && s < b then acc := !acc +. (Float.min e b -. Float.max s a)
    done;
    !acc
  end

let mmu t ~window =
  if window <= 0.0 then invalid_arg "Mmu.mmu: non-positive window";
  if window >= t.total then utilization t
  else begin
    (* The minimum is attained with a window starting at a pause start
       or ending at a pause end; also test the run's edges. *)
    let candidates = ref [ 0.0; t.total -. window ] in
    Array.iteri
      (fun i s ->
        candidates := s :: (s +. t.durs.(i) -. window) :: !candidates)
      t.starts;
    let best = ref 1.0 in
    List.iter
      (fun a ->
        let a = Float.max 0.0 (Float.min a (t.total -. window)) in
        let p = pause_in t a (a +. window) in
        let u = (window -. p) /. window in
        if u < !best then best := u)
      !candidates;
    Float.max 0.0 !best
  end

let curve t ~windows = List.map (fun w -> (w, mmu t ~window:w)) windows
