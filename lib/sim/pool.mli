(** A fixed-size pool of OCaml 5 domains for the evaluation harness.

    The paper evaluation runs hundreds of fully independent
    (benchmark, configuration, heap size) simulations; each builds its
    own [Gc.t], so there is no shared heap state and a task's result is
    a deterministic function of the task alone. The pool parallelises
    *scheduling* only: {!map} always returns results in input order,
    and its output is byte-identical at any job count.

    Worker domains are spawned lazily on the first parallel {!map} and
    joined at exit (for the default pool) or by {!shutdown}. Calls to
    {!map} from inside a pool task run sequentially — nesting adds no
    parallelism and must not deadlock. *)

type t

val create : jobs:int -> t
(** A pool running at most [jobs] tasks concurrently ([jobs - 1]
    spawned domains plus the calling domain; clamped to [1, 64]). *)

val jobs : t -> int

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, running up to [jobs]
    applications concurrently, and returns results in input order.
    [pool] defaults to {!default}. With [jobs = 1], a single-element
    list, or when called from inside a pool task, this is exactly
    [List.map f xs] on the calling domain. If any application raises,
    one such exception is re-raised after all tasks finish. *)

val default : unit -> t
(** The shared pool. Sized by {!set_default_jobs} if called, else the
    [BELTWAY_JOBS] environment variable, else
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Fix the default pool's size (the harness's [--jobs N]). Replaces
    the current default pool if it was already running at a different
    size. *)

val default_jobs : unit -> int
(** Job count of the default pool (creating it if needed). *)

val recommended_jobs : unit -> int
(** [BELTWAY_JOBS] if set and valid, else
    [Domain.recommended_domain_count ()], clamped to the pool
    maximum. *)

val shutdown : t -> unit
(** Stop and join the pool's workers. Queued-but-unstarted work is
    abandoned (only possible if a [map] was interrupted by an
    exception elsewhere); the pool restarts lazily if used again. *)
