(** Reproduction of every table and figure in the paper's evaluation.

    Each [figN] function re-runs the corresponding experiment and
    prints the result as an aligned text table (the paper's plots,
    tabulated): y-values are reported exactly as in the paper —
    relative to the best result in the figure, lower is better — and
    the x-axis is heap size relative to the per-benchmark minimum heap
    (measured for the Appel-style collector, Table 1's protocol).
    Missing cells ([-]) are heap sizes at which that configuration ran
    out of memory, reproducing the truncated curves of Figures 6, 8
    and 10.

    Runs are memoised per (benchmark, configuration, heap size) so the
    full suite re-uses shared points. [full] selects the paper's
    33-point heap ladder instead of the default 9. *)

val csv_output : bool ref
(** When set, every table is followed by its CSV rendering
    ([Table.to_csv]) for post-processing/plotting; off by default. *)

val table1 : full:bool -> unit
(** Benchmark characteristics: minimum heap, total allocation, GCs at
    large and small heaps. *)

val fig1 : full:bool -> unit
(** Time spent in GC and total-time sensitivity vs heap size for the
    Appel-style collector, per benchmark. *)

val fig5 : full:bool -> unit
(** Appel vs Beltway 100.100 vs 100.100.100 (geometric means). *)

val fig6 : full:bool -> unit
(** Fixed-size-nursery collectors vs Appel. *)

val fig7 : full:bool -> unit
(** Increment-size sensitivity of Beltway X.X.100. *)

val fig8 : full:bool -> unit
(** Beltway 25.25 vs 25.25.100 vs Appel (completeness trade-off),
    including the per-benchmark javac detail. *)

val fig9 : full:bool -> unit
(** Beltway 25.25.100 vs Appel vs fixed-25%% nursery (geometric
    means). *)

val fig10 : full:bool -> unit
(** Per-benchmark total execution times for the Figure 9
    collectors. *)

val fig11 : full:bool -> unit
(** MMU curves for javac at two heap sizes across
    {10.10, 10.10.100, 33.33, 33.33.100, appel}. *)

val ablation : full:bool -> unit
(** Not in the paper's figures, but in its design narrative (S3.3):
    ablations of the mechanisms DESIGN.md calls out — the
    nursery-source barrier filter, the dynamic copy reserve, the
    remset trigger and the time-to-die trigger — each toggled on the
    Beltway 25.25.100 / Appel baselines. *)

val xy_explore : full:bool -> unit
(** Beyond the paper: the asymmetric Beltway X.Y configurations S3.2
    mentions but does not evaluate. *)

val interp : full:bool -> unit
(** The interpreter-substrate experiment: every bundled Beltlang
    program under six collector families, checking byte-identical
    output and comparing cost. *)

val sensitivity : full:bool -> unit
(** Cost-model sensitivity: re-evaluate the Figure 9 comparison under
    perturbed cost constants (same runs, same event counts) to check
    the conclusions are not an artifact of the default model. *)

val policy_zoo : full:bool -> unit
(** Every registered collector policy under its exemplar
    configuration (geometric means). Driven off [Policy.registry]. *)

val strategies : full:bool -> unit
(** Copying vs in-place reclamation ([Strategy.registry]) under one
    policy across the heap ladder, with a crossover table naming the
    cheapest strategy per (benchmark, heap size). *)

val all_ids : string list
(** In paper order: table1, fig1, fig5..fig11, plus [ablate], [xy],
    [interp] and [sensitivity]. *)

val run : id:string -> full:bool -> unit
(** Dispatch by id; also accepts the unlisted [policies]
    ({!policy_zoo}) and [strategies] ({!strategies}) ids.
    @raise Invalid_argument on an unknown id. *)

val run_all : full:bool -> unit
