(** Belts: FIFO queues of increments (paper S2.2).

    A belt groups one or more increments and is collected in strict
    first-in-first-out order: the front (oldest) increment is always
    the next collected; allocation and promotion go to the back
    (youngest) increment. *)

type t

val create : index:int -> t
val index : t -> int
val set_index : t -> int -> unit
(** BOF belt flips exchange the roles (and indices) of two belts. *)

val length : t -> int
val is_empty : t -> bool

val front : t -> Increment.t option
(** Oldest increment: the next to be collected. *)

val back : t -> Increment.t option
(** Youngest increment: receives allocation/promotion. *)

val push_back : t -> Increment.t -> unit

val remove : t -> Increment.t -> unit
(** Remove a (collected) increment wherever it sits; FIFO order of the
    rest is preserved. @raise Invalid_argument if absent. *)

val iter : t -> (Increment.t -> unit) -> unit
(** Front-to-back traversal. *)

val fold : t -> init:'a -> f:('a -> Increment.t -> 'a) -> 'a

val fold_right : t -> init:'a -> f:(Increment.t -> 'a -> 'a) -> 'a
(** Back-to-front fold, for building front-to-back lists by consing
    without an intermediate reversal. *)

val occupancy_frames : t -> int
(** Total frames held by the belt's increments. *)

val words_used : t -> int

val swap_contents : t -> t -> unit
(** Exchange the increment queues of two belts (the BOF flip); belt
    indices of the increments are rewritten to match. *)
