(** Remembered sets, one per (source frame, target frame) pair.

    As in the paper (S3.3.2), the bounded number of frames lets us keep
    a distinct remset for every target-source frame pair, keyed by
    [rsidx = (s << k) | t]. Entries are *slot addresses* (the address
    of the field holding the interesting pointer), so the collector
    re-reads each slot at collection time — entries whose slot was
    since overwritten are revalidated for free, and all sets relating
    to a frame can be dropped in one operation when that frame is
    collected or freed.

    Mutators can insert the same slot many times; sets are compacted by
    an occasional deduplication pass once they grow past a threshold,
    mirroring GCTk's sequential-store-buffer + hash organisation. *)

type t

val create : ?dedup_threshold:int -> unit -> t
(** [dedup_threshold] (default 4096): a set longer than this is
    deduplicated before growing further. *)

val insert : t -> src_frame:int -> tgt_frame:int -> slot:Addr.t -> unit

val total_entries : t -> int
(** Current entry count across all sets (drives the remset trigger). *)

val inserts : t -> int
(** Lifetime insert count (barrier slow-path statistic). *)

val sets : t -> int
(** Number of non-empty (source, target) pairs. *)

val iter_into :
  t ->
  in_plan:(int -> bool) ->
  (slot:Addr.t -> unit) ->
  unit
(** Apply [f] to every remembered slot whose *target* frame satisfies
    [in_plan] and whose *source* frame does not (sources inside the
    plan are discovered by the Cheney scan instead). These slots are
    collection roots. *)

val drop_frame : t -> int -> unit
(** Delete every set whose source *or* target is the given frame
    ("we can trivially delete all remsets relating to a frame"). *)

val entries_targeting : t -> int -> int
(** Entry count over sets whose target is the given frame (survival
    pressure heuristic for triggers). *)

val mem_slot : t -> src_frame:int -> tgt_frame:int -> slot:Addr.t -> bool
(** Whether the slot is recorded in the (source, target) set. Amortised
    O(1): a per-set hash index is built lazily on first query and
    extended incrementally, so verifier sweeps over large remsets stay
    linear. Used by the integrity verifier, not by the collector. *)
