(* Flat per-frame side tables for the collection fast path.

   Two parallel int arrays indexed by frame: the full collect stamp,
   and a packed metadata word {increment id, pinned bit, in-plan bit}.
   The stamp lives in its own array because stamps span the whole word
   range (immortal_stamp = max_int); everything the collector's
   [forward] needs besides the stamp fits in the packed word, so plan
   membership, pinnedness and the owning increment id resolve from a
   single array load. *)

type t = { mutable stamps : int array; mutable meta : int array }

let immortal_stamp = max_int
let priority_unit = 1 lsl 40
let no_stamp = -1

(* meta layout: bit 0 = in-plan, bit 1 = pinned, bits 2.. = id + 1
   (0 = unowned). *)
let in_plan_bit = 1
let pinned_bit = 2
let no_meta = 0

let pack ~incr ~pinned ~in_plan =
  ((incr + 1) lsl 2)
  lor (if pinned then pinned_bit else 0)
  lor if in_plan then in_plan_bit else 0

let[@inline] meta_incr m = (m lsr 2) - 1
let[@inline] meta_pinned m = m land pinned_bit <> 0
let[@inline] meta_in_plan m = m land in_plan_bit <> 0

let create () = { stamps = Array.make 64 no_stamp; meta = Array.make 64 no_meta }

let ensure t frame =
  let cap = Array.length t.stamps in
  if frame >= cap then begin
    let n = max (frame + 1) (cap * 2) in
    let stamps = Array.make n no_stamp in
    Array.blit t.stamps 0 stamps 0 cap;
    t.stamps <- stamps;
    let meta = Array.make n no_meta in
    Array.blit t.meta 0 meta 0 cap;
    t.meta <- meta
  end

let set t ~frame ~stamp ~incr ~pinned =
  ensure t frame;
  t.stamps.(frame) <- stamp;
  t.meta.(frame) <- pack ~incr ~pinned ~in_plan:false

let clear t ~frame =
  ensure t frame;
  t.stamps.(frame) <- no_stamp;
  t.meta.(frame) <- no_meta

let restamp t ~frame ~stamp =
  ensure t frame;
  t.stamps.(frame) <- stamp

let set_in_plan t ~frame v =
  ensure t frame;
  let m = t.meta.(frame) in
  t.meta.(frame) <- (if v then m lor in_plan_bit else m land lnot in_plan_bit)

(* Reads tolerate frames beyond the grown extent (they answer as
   unowned), so address-derived indices need no prior [ensure]. The
   bounds test also licenses the unsafe load. *)
let[@inline] stamp t frame =
  if frame < Array.length t.stamps then Array.unsafe_get t.stamps frame
  else no_stamp

let[@inline] meta t frame =
  if frame < Array.length t.meta then Array.unsafe_get t.meta frame else no_meta

let[@inline] incr_of t frame = meta_incr (meta t frame)
let[@inline] pinned t frame = meta_pinned (meta t frame)
let[@inline] in_plan t frame = meta_in_plan (meta t frame)
