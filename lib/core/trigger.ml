type reason = Gc_stats.reason =
  | Heap_full
  | Nursery
  | Remset
  | Forced
  | Full

let fired st ~reason =
  match st.State.hooks with
  | [] -> ()
  | hs -> List.iter (fun h -> h.State.on_trigger ~reason) hs

let nursery_full st ~size =
  match Belt.back st.State.belts.(0) with
  | None -> false
  | Some inc ->
    Increment.at_bound inc
    && (inc.Increment.cursor = Addr.null
       || inc.Increment.cursor + size > inc.Increment.limit)

let remset_due st =
  match st.State.config.Config.remset_trigger with
  | None -> false
  | Some threshold -> Remset.total_entries st.State.remsets > threshold

let heap_full st ~incoming_frames =
  st.State.frames_used + incoming_frames + Copy_reserve.frames st
  > st.State.heap_frames

let ttd_due st =
  match st.State.config.Config.ttd_frames with
  | None -> false
  | Some ttd ->
    Belt.length st.State.belts.(0) = 1
    && st.State.frames_used + ttd + Copy_reserve.frames st >= st.State.heap_frames
