module Vec = Beltway_util.Vec

let frame_shift = 21 (* frame indices comfortably below 2^21 *)

type set = {
  src : int;
  tgt : int;
  slots : int Vec.t;
  mutable since_dedup : int;
  (* Lazy membership index for [mem_slot]: built on first query,
     extended incrementally over slots appended since, discarded when a
     dedup reorders the vec. Inserts stay append-only and cheap. *)
  mutable probe : (int, unit) Hashtbl.t option;
  mutable probed : int; (* slots already folded into [probe] *)
}

type t = {
  sets : (int, set) Hashtbl.t;
  by_src : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* frame -> rsidx set *)
  by_tgt : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  dedup_threshold : int;
  mutable total : int;
  mutable inserts : int;
}

let create ?(dedup_threshold = 4096) () =
  {
    sets = Hashtbl.create 64;
    by_src = Hashtbl.create 64;
    by_tgt = Hashtbl.create 64;
    dedup_threshold;
    total = 0;
    inserts = 0;
  }

let rsidx ~src ~tgt = (src lsl frame_shift) lor tgt

let index_add table frame idx =
  let set =
    match Hashtbl.find_opt table frame with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace table frame s;
      s
  in
  Hashtbl.replace set idx ()

(* In-place compaction: survivors are written back over the prefix of
   the same vec and the tail truncated — no rebuild, no reallocation. *)
let dedup t set =
  let n = Vec.length set.slots in
  let seen = Hashtbl.create n in
  let w = ref 0 in
  for r = 0 to n - 1 do
    let slot = Vec.get set.slots r in
    if not (Hashtbl.mem seen slot) then begin
      Hashtbl.replace seen slot ();
      Vec.set set.slots !w slot;
      incr w
    end
  done;
  Vec.truncate set.slots !w;
  set.since_dedup <- 0;
  set.probe <- None;
  set.probed <- 0;
  t.total <- t.total - (n - !w)

let insert t ~src_frame ~tgt_frame ~slot =
  let idx = rsidx ~src:src_frame ~tgt:tgt_frame in
  let set =
    match Hashtbl.find_opt t.sets idx with
    | Some s -> s
    | None ->
      let s =
        {
          src = src_frame;
          tgt = tgt_frame;
          slots = Vec.create ~dummy:0 ();
          since_dedup = 0;
          probe = None;
          probed = 0;
        }
      in
      Hashtbl.replace t.sets idx s;
      index_add t.by_src src_frame idx;
      index_add t.by_tgt tgt_frame idx;
      s
  in
  Vec.push set.slots slot;
  set.since_dedup <- set.since_dedup + 1;
  t.total <- t.total + 1;
  t.inserts <- t.inserts + 1;
  if Vec.length set.slots > t.dedup_threshold && set.since_dedup > t.dedup_threshold / 2
  then dedup t set

let total_entries t = t.total
let inserts t = t.inserts
let sets t = Hashtbl.length t.sets

let iter_into t ~in_plan f =
  Hashtbl.iter
    (fun _ set ->
      if in_plan set.tgt && not (in_plan set.src) then
        Vec.iter (fun slot -> f ~slot) set.slots)
    t.sets

let remove_set t idx =
  match Hashtbl.find_opt t.sets idx with
  | None -> ()
  | Some set ->
    t.total <- t.total - Vec.length set.slots;
    Hashtbl.remove t.sets idx;
    (match Hashtbl.find_opt t.by_src set.src with
    | Some s -> Hashtbl.remove s idx
    | None -> ());
    (match Hashtbl.find_opt t.by_tgt set.tgt with
    | Some s -> Hashtbl.remove s idx
    | None -> ())

let drop_frame t frame =
  let collect table =
    match Hashtbl.find_opt table frame with
    | None -> []
    | Some s -> Hashtbl.fold (fun idx () acc -> idx :: acc) s []
  in
  List.iter (remove_set t) (collect t.by_src);
  List.iter (remove_set t) (collect t.by_tgt);
  Hashtbl.remove t.by_src frame;
  Hashtbl.remove t.by_tgt frame

let mem_slot t ~src_frame ~tgt_frame ~slot =
  match Hashtbl.find_opt t.sets (rsidx ~src:src_frame ~tgt:tgt_frame) with
  | None -> false
  | Some set ->
    let h =
      match set.probe with
      | Some h -> h
      | None ->
        let h = Hashtbl.create (max 16 (Vec.length set.slots)) in
        set.probe <- Some h;
        set.probed <- 0;
        h
    in
    let n = Vec.length set.slots in
    for i = set.probed to n - 1 do
      Hashtbl.replace h (Vec.get set.slots i) ()
    done;
    set.probed <- n;
    Hashtbl.mem h slot

let entries_targeting t frame =
  match Hashtbl.find_opt t.by_tgt frame with
  | None -> 0
  | Some s ->
    Hashtbl.fold
      (fun idx () acc ->
        match Hashtbl.find_opt t.sets idx with
        | Some set -> acc + Vec.length set.slots
        | None -> acc)
      s 0
