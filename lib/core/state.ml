exception Out_of_memory of string

(* Per-domain summary of one parallel collection, handed to the
   [on_gc_domains] hook for the flight recorder: phase windows in the
   recorder's clock (start, duration in us; zero when no clock is
   installed) plus the domain's share of the copy work and its
   work-stealing traffic. *)
type par_report = {
  pr_domain : int;
  pr_phases : (Gc_stats.gc_phase * float * float) array;
  pr_copied_objects : int;
  pr_copied_words : int;
  pr_scanned_slots : int;
  pr_steals : int;
  pr_cas_retries : int;
}

type hooks = {
  on_alloc : addr:Addr.t -> tib:Value.t -> nfields:int -> unit;
  on_write : obj:Addr.t -> field:int -> value:Value.t -> unit;
  on_move : src:Addr.t -> dst:Addr.t -> unit;
  on_object_dead : addr:Addr.t -> words:int -> unit;
  on_collect_start : reason:Gc_stats.reason -> emergency:bool -> unit;
  on_collect_end : full_heap:bool -> unit;
  on_gc_phase : phase:Gc_stats.gc_phase -> enter:bool -> unit;
  on_frame_grant : frame:int -> belt:int -> during_gc:bool -> unit;
  on_frame_free : frame:int -> belt:int -> unit;
  on_belt_advance : belt:int -> inc_id:int -> stamp:int -> unit;
  on_reserve : frames:int -> unit;
  on_trigger : reason:Gc_stats.reason -> unit;
  on_barrier_slow : entries:int -> unit;
  on_gc_domains : reports:par_report array -> unit;
}

let noop_hooks =
  {
    on_alloc = (fun ~addr:_ ~tib:_ ~nfields:_ -> ());
    on_write = (fun ~obj:_ ~field:_ ~value:_ -> ());
    on_move = (fun ~src:_ ~dst:_ -> ());
    on_object_dead = (fun ~addr:_ ~words:_ -> ());
    on_collect_start = (fun ~reason:_ ~emergency:_ -> ());
    on_collect_end = (fun ~full_heap:_ -> ());
    on_gc_phase = (fun ~phase:_ ~enter:_ -> ());
    on_frame_grant = (fun ~frame:_ ~belt:_ ~during_gc:_ -> ());
    on_frame_free = (fun ~frame:_ ~belt:_ -> ());
    on_belt_advance = (fun ~belt:_ ~inc_id:_ ~stamp:_ -> ());
    on_reserve = (fun ~frames:_ -> ());
    on_trigger = (fun ~reason:_ -> ());
    on_barrier_slow = (fun ~entries:_ -> ());
    on_gc_domains = (fun ~reports:_ -> ());
  }

(* Per-domain scratch for the parallel collector, reused across
   collections: a Chase–Lev grey deque, private destination increments
   per belt, and buffers for the side effects that must replay on the
   main domain after the drain (remset/card re-records and on_move
   hook firings — neither the remset tables nor the hooks are
   thread-safe). *)
type par_domain = {
  pd_stack : int Beltway_util.Vec.t; (* private grey stack, no atomics *)
  pd_grey : Beltway_util.Deque.t; (* published surplus, steal target *)
  mutable pd_delta : int; (* unflushed in-flight delta *)
  pd_dests : Increment.t option array; (* private open dest per belt *)
  mutable pd_opened : Increment.t list; (* dests this domain opened this GC *)
  pd_remember : int Beltway_util.Vec.t; (* (slot, tgt frame) pairs *)
  pd_moves : int Beltway_util.Vec.t; (* (src, dst) pairs, when hooks installed *)
  mutable pd_copied_words : int;
  mutable pd_copied_objects : int;
  mutable pd_scanned_slots : int;
  mutable pd_remset_slots : int;
  mutable pd_roots_scanned : int;
  mutable pd_steals : int;
  mutable pd_cas_retries : int;
  pd_phase_start : float array; (* roots / remset-or-cards / cheney *)
  pd_phase_dur : float array;
}

(* The pluggable collector-policy layer. The record type lives here,
   not in [Policy], because its closures consume the very state that
   stores them (the same mutual-recursion-by-placement as [hooks]);
   [Policy] constructs these records and owns the registry. Hot-path
   decisions (barrier discipline, promotion) are plain data read per
   operation; closures are consulted only per collection and per
   allocation slow path. *)

type barrier_discipline =
  | Barrier_remsets of { nursery_filter : bool }
      (** remembered sets of slot addresses; [nursery_filter] skips
          even the stamp compare for stores whose source lies in the
          single open nursery increment *)
  | Barrier_cards  (** unconditional frame-granularity card marking *)

type alloc_action =
  | Alloc_grant  (** grant the allocation increment one more frame *)
  | Alloc_collect of Gc_stats.reason  (** collect now, for this reason *)
  | Alloc_open_nursery
      (** open a further increment on the allocation belt (older-first:
          the nursery bound opens a new window rather than collecting) *)
  | Alloc_split_nursery
      (** time-to-die: seal the nursery and open a fresh increment the
          next nursery collection will spare *)

(* The reclamation-strategy descriptor: how the increments of a plan
   are reclaimed, orthogonal to the policy (which decides *what* to
   collect and when). Like [policy], the record lives here because its
   closure consumes the state that stores it; [Strategy] constructs
   the records and owns the registry, and [Collector] interprets the
   kind. Plain data ([strategy_kind], the booleans) is read per
   collection; only the reserve rule is a closure. *)
type strategy_kind =
  | Strategy_copying  (** Cheney evacuation (the pre-strategy collector) *)
  | Strategy_marksweep  (** mark bitmap + free-list sweep, in place *)
  | Strategy_markcompact  (** mark bitmap + threaded slide, in place *)

type t = {
  mem : Memory.t;
  boot : Boot_space.t;
  types : Type_registry.t;
  roots : Roots.t;
  ftab : Frame_table.t;
  config : Config.t;
  policy : policy;
  strategy : strategy;
  heap_frames : int;
  belts : Belt.t array;
  belt_bounds : int option array;
  remsets : Remset.t;
  cards : Card_table.t;
  stats : Gc_stats.t;
  incs_by_id : (int, Increment.t) Hashtbl.t;
  mutable inc_by_id : Increment.t option array;
  gc_slots : int Beltway_util.Vec.t;
  gc_pinned : Increment.t Beltway_util.Vec.t;
  gc_mark_stack : int Beltway_util.Vec.t;
  mutable frames_used : int;
  mutable next_inc_id : int;
  mutable seq : int;
  mutable epoch : int;
  mutable in_gc : bool;
  mutable gcs_this_alloc : int;
  mutable live_est_frames : int;
      (* survivors of the most recent full-heap collection; 0 = none
         yet. A cheap live-set statistic for diagnostics and tests. *)
  mutable hooks : hooks list;
  mutable gc_domains : int;
      (* domains a collection's drain fans out over; 1 = the
         byte-identical sequential collector *)
  gc_lock : Mutex.t;
      (* serialises shared-structure mutation (increment creation,
         frame grants and their hooks) during a parallel drain *)
  mutable gc_par : par_domain array; (* parallel-drain scratch, grown on demand *)
  mutable clock_us : unit -> float;
      (* timestamp source for per-domain phase spans; returns 0 until
         a flight recorder installs its clock *)
  mutable alloc_site : int;
      (* allocation-site id the next [on_alloc] firing is attributed
         to; 0 is the catch-all "unknown" site. Instrumented mutators
         (the bytecode VM, the synthetic workloads) store here right
         before allocating; nothing in the collector reads it. *)
  site_names : string Beltway_util.Vec.t;
      (* site id -> label; index 0 is "unknown". OCaml-side only —
         registration never touches the simulated heap, so attaching
         site ids cannot perturb figure output. *)
  site_ids : (string, int) Hashtbl.t; (* label -> site id *)
}

and policy = {
  policy_name : string;  (** registry key, for reporting *)
  barrier : barrier_discipline;
  promote : int array;
      (** destination belt for survivors of each configured belt
          (indexed by source belt; pinned LOS increments never move) *)
  stamp_priority : t -> belt:int -> int;
      (** priority class of the next increment opened on [belt]
          (belt-major, epoch-based, ...) *)
  target : t -> Increment.t list;
      (** candidate target increments in decreasing preference order;
          the schedule takes the downward closure of the first feasible
          one *)
  reserve_frames : t -> int;
      (** conservative copy reserve in frames *)
  alloc_trigger : t -> size:int -> alloc_action;
      (** trigger cascade for a nursery allocation that does not fit *)
  pretenure_trigger : t -> alloc_action;
      (** trigger cascade for a pretenured (higher-belt) allocation *)
  large_trigger : t -> incoming_frames:int -> alloc_action;
      (** trigger cascade before admitting a pinned large object *)
  refresh_nursery : t -> unit;
      (** hook run when no open nursery increment exists, before a new
          one is created (BOF: flip the belts) *)
}

and strategy = {
  strategy_name : string;  (** registry key, for reporting *)
  strategy_kind : strategy_kind;
  strategy_moving : bool;
      (** whether surviving objects change address (copying: across
          frames; mark-compact: within the increment's own frames) *)
  strategy_needs_reserve : bool;
      (** whether collections need destination frames up front (the
          schedule's feasibility test and the heap-full trigger) *)
  strategy_parallel : bool;
      (** whether the strategy supports the sharded [gc_domains > 1]
          drain; non-parallel strategies are rejected at setup *)
  strategy_reserve : t -> int;
      (** reserve frames to hold back; the copying strategy delegates
          to the installed policy's rule verbatim *)
}

let copying_strategy =
  {
    strategy_name = "copying";
    strategy_kind = Strategy_copying;
    strategy_moving = true;
    strategy_needs_reserve = true;
    strategy_parallel = true;
    strategy_reserve = (fun st -> st.policy.reserve_frames st);
  }

let create ?(strategy = copying_strategy) ~config ~policy ~heap_frames
    ~frame_log_words () =
  let config =
    match Config.validate config with
    | Ok c -> c
    | Error e -> invalid_arg ("State.create: invalid configuration: " ^ e)
  in
  if heap_frames < 4 then invalid_arg "State.create: heap_frames must be >= 4";
  (* Headroom above the budget: boot space plus slack so that budget
     exhaustion surfaces as Out_of_memory (policy), never as the
     memory substrate running dry (mechanism). *)
  let mem =
    Memory.create ~frame_log_words ~max_frames:((heap_frames * 2) + 64)
  in
  let boot = Boot_space.create mem in
  let types = Type_registry.create mem boot in
  let ftab = Frame_table.create () in
  let regular = Array.length config.Config.belts in
  (* The large object space, when enabled, is one extra belt above all
     configured belts: its pinned increments carry the highest stamps,
     so they are reached only by plans that already cover everything
     below — and pointers out of large objects are always remembered. *)
  let nbelts = regular + if config.Config.los_threshold <> None then 1 else 0 in
  let belts = Array.init nbelts (fun index -> Belt.create ~index) in
  let belt_bounds =
    Array.init nbelts (fun i ->
        if i < regular then
          Config.resolve_bound config ~heap_frames config.Config.belts.(i).Config.bound
        else None)
  in
  let stats = Gc_stats.create () in
  stats.Gc_stats.config_label <- config.Config.label;
  stats.Gc_stats.policy_name <- policy.policy_name;
  stats.Gc_stats.strategy_name <- strategy.strategy_name;
  let site_names = Beltway_util.Vec.create ~dummy:"" () in
  Beltway_util.Vec.push site_names "unknown";
  let site_ids = Hashtbl.create 64 in
  Hashtbl.replace site_ids "unknown" 0;
  {
    mem;
    boot;
    types;
    roots = Roots.create ();
    ftab;
    config;
    policy;
    strategy;
    heap_frames;
    belts;
    belt_bounds;
    remsets = Remset.create ();
    cards = Card_table.create ();
    stats;
    incs_by_id = Hashtbl.create 64;
    inc_by_id = Array.make 64 None;
    gc_slots = Beltway_util.Vec.create ~dummy:0 ();
    gc_pinned =
      Beltway_util.Vec.create
        ~dummy:(Increment.create ~id:(-1) ~belt:0 ~stamp:0 ~bound_frames:None)
        ();
    gc_mark_stack = Beltway_util.Vec.create ~dummy:0 ();
    frames_used = 0;
    next_inc_id = 0;
    seq = 0;
    epoch = 0;
    in_gc = false;
    gcs_this_alloc = 0;
    live_est_frames = 0;
    hooks = [];
    gc_domains = 1;
    gc_lock = Mutex.create ();
    gc_par = [||];
    clock_us = (fun () -> 0.);
    alloc_site = 0;
    site_names;
    site_ids;
  }

let set_gc_domains t n =
  t.gc_domains <- max 1 (min n Beltway_util.Team.max_size)

let make_par_domain t =
  {
    pd_stack = Beltway_util.Vec.create ~dummy:0 ();
    pd_grey = Beltway_util.Deque.create ~empty:Addr.null ();
    pd_delta = 0;
    pd_dests = Array.make (Array.length t.belts) None;
    pd_opened = [];
    pd_remember = Beltway_util.Vec.create ~dummy:0 ();
    pd_moves = Beltway_util.Vec.create ~dummy:0 ();
    pd_copied_words = 0;
    pd_copied_objects = 0;
    pd_scanned_slots = 0;
    pd_remset_slots = 0;
    pd_roots_scanned = 0;
    pd_steals = 0;
    pd_cas_retries = 0;
    pd_phase_start = Array.make 3 0.;
    pd_phase_dur = Array.make 3 0.;
  }

(* The first [n] per-domain scratch contexts, created on first use and
   reused across collections. *)
let par_domains t n =
  let cur = Array.length t.gc_par in
  if cur < n then
    t.gc_par <-
      Array.init n (fun i -> if i < cur then t.gc_par.(i) else make_par_domain t);
  Array.sub t.gc_par 0 n

let add_hooks t h = t.hooks <- t.hooks @ [ h ]
let remove_hooks t h = t.hooks <- List.filter (fun h' -> h' != h) t.hooks

(* Allocation-site registry: idempotent by label, dense ids from 0
   ("unknown"). Lives entirely on the OCaml side of the simulation. *)
let register_site t ~name =
  match Hashtbl.find_opt t.site_ids name with
  | Some id -> id
  | None ->
    let id = Beltway_util.Vec.length t.site_names in
    Beltway_util.Vec.push t.site_names name;
    Hashtbl.replace t.site_ids name id;
    id

let site_count t = Beltway_util.Vec.length t.site_names

let site_name t id =
  if id >= 0 && id < site_count t then Beltway_util.Vec.get t.site_names id
  else "unknown"

let heap_words t = t.heap_frames * Memory.frame_words t.mem
let free_frames t = t.heap_frames - t.frames_used
let total_increments t = Hashtbl.length t.incs_by_id

let live_words t =
  Array.fold_left (fun acc b -> acc + Belt.words_used b) 0 t.belts

let stamp_for_belt t belt =
  let priority = t.policy.stamp_priority t ~belt in
  let s = (priority * Frame_table.priority_unit) + t.seq in
  t.seq <- t.seq + 1;
  s

(* Destination belt for survivors of an increment on [belt]: one array
   read off the installed policy (precomputed, so the Cheney inner loop
   never dispatches a closure). Pinned LOS increments are never
   evacuated, so only configured belts can appear; the LOS belt index
   clamps onto the top configured belt harmlessly. *)
let dest_belt t belt =
  let p = t.policy.promote in
  p.(min belt (Array.length p - 1))

(* The id -> increment array mirrors [incs_by_id] so the collector's
   forward path resolves an id with an array read, not a hash probe. *)
let register_inc t id inc =
  let cap = Array.length t.inc_by_id in
  if id >= cap then begin
    let arr = Array.make (max (id + 1) (cap * 2)) None in
    Array.blit t.inc_by_id 0 arr 0 cap;
    t.inc_by_id <- arr
  end;
  t.inc_by_id.(id) <- Some inc;
  Hashtbl.replace t.incs_by_id id inc

(* Pre-grow the id mirror so [register_inc] never swaps the array out
   from under the parallel collector's lock-free forward path. *)
let reserve_inc_ids t n =
  let cap = Array.length t.inc_by_id in
  if n > cap then begin
    let arr = Array.make (max n (cap * 2)) None in
    Array.blit t.inc_by_id 0 arr 0 cap;
    t.inc_by_id <- arr
  end

let new_increment t ~belt =
  let id = t.next_inc_id in
  t.next_inc_id <- id + 1;
  let inc =
    Increment.create ~id ~belt
      ~stamp:(stamp_for_belt t belt)
      ~bound_frames:t.belt_bounds.(belt)
  in
  register_inc t id inc;
  Belt.push_back t.belts.(belt) inc;
  (match t.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h -> h.on_belt_advance ~belt ~inc_id:id ~stamp:inc.Increment.stamp)
      hs);
  inc

let grant_frame t inc ~during_gc =
  if t.frames_used >= t.heap_frames then
    raise
      (Out_of_memory
         (Printf.sprintf
            "frame budget exhausted (%d frames)%s" t.heap_frames
            (if during_gc then " during collection: copy reserve insufficient"
             else "")));
  let frame = Memory.alloc_frame t.mem in
  t.frames_used <- t.frames_used + 1;
  t.stats.Gc_stats.frames_allocated <- t.stats.Gc_stats.frames_allocated + 1;
  if t.frames_used > t.stats.Gc_stats.peak_frames then
    t.stats.Gc_stats.peak_frames <- t.frames_used;
  Frame_table.set t.ftab ~frame ~stamp:inc.Increment.stamp ~incr:inc.Increment.id
    ~pinned:false;
  Increment.add_frame inc t.mem frame;
  match t.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h -> h.on_frame_grant ~frame ~belt:inc.Increment.belt ~during_gc)
      hs

let open_inc t ~belt =
  match Belt.back t.belts.(belt) with
  | Some inc
    when (not inc.Increment.sealed) && (not (Increment.at_bound inc))
         && not inc.Increment.in_plan ->
    inc
  | _ -> new_increment t ~belt

let free_increment t inc =
  Beltway_util.Vec.iter
    (fun frame ->
      Remset.drop_frame t.remsets frame;
      Card_table.clear t.cards ~frame;
      Frame_table.clear t.ftab ~frame;
      Memory.free_frame t.mem frame;
      t.frames_used <- t.frames_used - 1;
      match t.hooks with
      | [] -> ()
      | hs ->
        List.iter (fun h -> h.on_frame_free ~frame ~belt:inc.Increment.belt) hs)
    inc.Increment.frames;
  Belt.remove t.belts.(inc.Increment.belt) inc;
  Hashtbl.remove t.incs_by_id inc.Increment.id;
  t.inc_by_id.(inc.Increment.id) <- None

let inc_of_frame t frame =
  let id = Frame_table.incr_of t.ftab frame in
  if id < 0 then None else t.inc_by_id.(id)

let live_increments t =
  (* Front-to-back per belt, belts in index order: built back-to-front
     with direct conses — no intermediate per-belt lists. *)
  let acc = ref [] in
  for bi = Array.length t.belts - 1 downto 0 do
    acc := Belt.fold_right t.belts.(bi) ~init:!acc ~f:(fun i tail -> i :: tail)
  done;
  !acc

let frame_of_addr t a = Memory.addr_frame t.mem a
let stamp_of_addr t a = Frame_table.stamp t.ftab (frame_of_addr t a)

let regular_belts t = Array.length t.config.Config.belts

let los_belt t =
  if t.config.Config.los_threshold <> None then Some (regular_belts t) else None

let new_pinned_increment t ~size =
  let belt =
    match los_belt t with
    | Some b -> b
    | None -> invalid_arg "State.new_pinned_increment: no large object space"
  in
  let fw = Memory.frame_words t.mem in
  let k = (size + fw - 1) / fw in
  if t.frames_used + k > t.heap_frames then
    raise
      (Out_of_memory
         (Printf.sprintf "large object of %d words does not fit (%d frames needed, %d free)"
            size k (t.heap_frames - t.frames_used)));
  let frames = Memory.alloc_frames_contiguous t.mem k in
  t.frames_used <- t.frames_used + k;
  t.stats.Gc_stats.frames_allocated <- t.stats.Gc_stats.frames_allocated + k;
  if t.frames_used > t.stats.Gc_stats.peak_frames then
    t.stats.Gc_stats.peak_frames <- t.frames_used;
  let id = t.next_inc_id in
  t.next_inc_id <- id + 1;
  let stamp = stamp_for_belt t belt in
  let inc = Increment.create_pinned ~id ~belt ~stamp ~frames t.mem ~size in
  List.iter
    (fun frame -> Frame_table.set t.ftab ~frame ~stamp ~incr:id ~pinned:true)
    frames;
  register_inc t id inc;
  Belt.push_back t.belts.(belt) inc;
  (match t.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        h.on_belt_advance ~belt ~inc_id:id ~stamp;
        List.iter
          (fun frame -> h.on_frame_grant ~frame ~belt ~during_gc:false)
          frames)
      hs);
  inc

let flip_belts t =
  if not t.config.Config.flip then
    invalid_arg "State.flip_belts: configuration does not flip";
  Belt.swap_contents t.belts.(0) t.belts.(1);
  t.epoch <- t.epoch + 1
