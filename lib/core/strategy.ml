(* The reclamation-strategy registry: how a plan's increments are
   reclaimed, orthogonal to [Policy] (what to collect and when). The
   [State.strategy] record type lives in [State] for the same
   mutual-recursion-by-placement reason as [State.policy]; this module
   constructs the records, owns the registry and resolves config
   strings, exactly mirroring [Policy]. [Collector] interprets the
   installed record's [strategy_kind] once per collection. *)

let copying = State.copying_strategy

let marksweep =
  {
    State.strategy_name = "marksweep";
    strategy_kind = State.Strategy_marksweep;
    strategy_moving = false;
    strategy_needs_reserve = false;
    strategy_parallel = false;
    strategy_reserve = (fun _ -> 0);
  }

let markcompact =
  {
    State.strategy_name = "markcompact";
    strategy_kind = State.Strategy_markcompact;
    (* Moving, but strictly within the increment's own frames (a
       slide), so no destination frames are reserved. *)
    strategy_moving = true;
    strategy_needs_reserve = false;
    strategy_parallel = false;
    strategy_reserve = (fun _ -> 0);
  }

(* ---- registry ------------------------------------------------------ *)

type info = {
  key : string;
  strategy : State.strategy;
  summary : string;
  exemplar_config : string;
}

let infos =
  [
    {
      key = "copying";
      strategy = copying;
      summary =
        "Cheney evacuation into fresh destination increments (the paper's \
         collector; the default — byte-identical to the pre-strategy \
         implementation, parallel drain supported)";
      exemplar_config = "25.25.100";
    };
    {
      key = "marksweep";
      strategy = marksweep;
      summary =
        "bitmap mark + free-list sweep: survivors stay in place (logical \
         promotion restamps their increment), dead runs become reusable \
         holes; zero copy reserve";
      exemplar_config = "25.25.100+strategy:marksweep";
    };
    {
      key = "markcompact";
      strategy = markcompact;
      summary =
        "bitmap mark + threaded (Jonkers) compaction: survivors slide to \
         the front of their own frames, empty tail frames are freed; zero \
         copy reserve";
      exemplar_config = "25.25.100+strategy:markcompact";
    };
  ]

let registry : (string * State.strategy) list =
  List.map (fun i -> (i.key, i.strategy)) infos

let names = List.map (fun i -> i.key) infos

let info_exn key =
  match List.find_opt (fun i -> i.key = key) infos with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Strategy: unknown strategy %S" key)

let describe key = (info_exn key).summary
let exemplar key = (info_exn key).exemplar_config
let name (s : State.strategy) = s.State.strategy_name

(* ---- resolution ---------------------------------------------------- *)

let default_name = "copying"

let resolve (cfg : Config.t) =
  let key =
    match cfg.Config.strategy with Some n -> n | None -> default_name
  in
  match List.assoc_opt key registry with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown strategy %S (registered: %s)" key
         (String.concat ", " names))

let resolve_exn cfg =
  match resolve cfg with
  | Ok s -> s
  | Error e -> invalid_arg ("Strategy.resolve: " ^ e)

(* ---- parallel-drain compatibility ---------------------------------- *)

let check_domains (s : State.strategy) ~gc_domains =
  if gc_domains <= 1 || s.State.strategy_parallel then Ok ()
  else
    Error
      (Printf.sprintf
         "strategy %s does not support a parallel drain (--gc-domains %d); \
          use --gc-domains 1 or the copying strategy"
         s.State.strategy_name gc_domains)
