module Vec = Beltway_util.Vec

type plan = {
  increments : Increment.t list;
  reason : Gc_stats.reason;
  emergency : bool;
  full_heap : bool;
}

let plan_frames p =
  List.fold_left (fun acc i -> acc + Increment.occupancy_frames i) 0 p.increments

let plan_words p =
  List.fold_left (fun acc i -> acc + Increment.words_used i) 0 p.increments

let evacuation_frames p =
  List.fold_left
    (fun acc (i : Increment.t) ->
      if i.Increment.pinned then acc else acc + Increment.occupancy_frames i)
    0 p.increments

type dest = { inc : Increment.t; pos : Increment.pos }

(* The hot path below is deliberately allocation-free per object and
   per slot: plan membership, pinnedness and the owning increment id
   come from one packed frame-table word ([Frame_table.meta]), the
   id -> increment step is an array read, forwarding pointers are
   decoded from the raw header word (no [option]), and reference slots
   are walked with a direct [for] loop over the object's field range
   instead of a per-slot closure. Only per-collection setup (the plan
   walk, destination registration) allocates. *)
let collect st plan =
  let mem = st.State.mem in
  let ftab = st.State.ftab in
  let frame_log = Memory.frame_log mem in
  st.State.in_gc <- true;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        h.State.on_collect_start ~reason:plan.reason ~emergency:plan.emergency)
      hs);
  (* Phase spans for the flight recorder: free when no hooks are
     installed (one list match per phase boundary per collection). *)
  let phase p enter =
    match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_gc_phase ~phase:p ~enter) hs
  in
  let copied_words = ref 0 in
  let copied_objects = ref 0 in
  let scanned_slots = ref 0 in
  let remset_slots = ref 0 in
  let roots_scanned = ref 0 in

  (* Plan membership: an in-plan bit on each member frame's packed
     metadata word, plus a flag on the increment itself. *)
  List.iter
    (fun (inc : Increment.t) ->
      inc.Increment.in_plan <- true;
      Increment.seal inc;
      Vec.iter (fun f -> Frame_table.set_in_plan ftab ~frame:f true) inc.Increment.frames)
    plan.increments;

  (* Destination (open) increments, one per destination belt, created
     lazily and replaced when they hit their bound. [dests] also serves
     as the Cheney grey-set: every destination is scanned from the
     position at which it was registered. *)
  let dests : dest option Vec.t = Vec.create ~dummy:None () in
  let belt_dest : dest option array = Array.make (Array.length st.State.belts) None in
  let register_dest belt =
    let inc = State.open_inc st ~belt in
    let d = { inc; pos = Increment.scan_pos inc } in
    Vec.push dests (Some d);
    belt_dest.(belt) <- Some d;
    d
  in
  let dest_for belt =
    match belt_dest.(belt) with
    | Some d when (not d.inc.Increment.sealed) && not (Increment.at_bound d.inc) -> d
    | Some d when not d.inc.Increment.sealed ->
      (* At bound but current frame may still have room; keep using it
         until a bump actually fails. *)
      d
    | _ -> register_dest belt
  in

  (* Bump-allocate [size] words in the destination for [belt], rolling
     over to a fresh increment when the current one is full. *)
  let rec dest_alloc belt size =
    let d = dest_for belt in
    let addr = Increment.bump_or_null d.inc ~size in
    if addr <> Addr.null then addr
    else if Increment.at_bound d.inc then begin
      Increment.seal d.inc;
      ignore (register_dest belt);
      dest_alloc belt size
    end
    else begin
      State.grant_frame st d.inc ~during_gc:true;
      dest_alloc belt size
    end
  in

  (* Pinned (large-object) increments in the plan are marked in place
     rather than copied; their objects join the grey set through
     [pinned_work] (scratch reused across collections), flagged via
     [gc_mark] so each is pushed once. *)
  let pinned_work = st.State.gc_pinned in
  Vec.clear pinned_work;

  (* Evacuate one object; returns its new address. [size] was decoded
     from the header word the caller already loaded. Unchecked accesses
     throughout the drain are sound by construction: sources sit in
     in-plan frames and destinations in just-granted frames, both live
     for the whole collection. *)
  let copy (src_inc : Increment.t) addr size =
    let belt = State.dest_belt st src_inc.Increment.belt in
    let new_addr = dest_alloc belt size in
    (* Objects never span frames (only pinned LOS increments do, and
       those are marked in place), so the whole object moves as one
       block. *)
    Memory.unsafe_blit mem ~src:addr ~dst:new_addr ~len:size;
    (* Forwarding pointer: odd status word, as decoded in [forward]. *)
    Memory.unsafe_set mem addr ((new_addr lsl 1) lor 1);
    copied_words := !copied_words + size;
    incr copied_objects;
    (match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_move ~src:addr ~dst:new_addr) hs);
    new_addr
  in

  let unowned addr =
    invalid_arg (Printf.sprintf "Collector: object %#x in unowned frame" addr)
  in
  let forward v =
    if not (Value.is_ref v) then v
    else begin
      let addr = Value.to_addr v in
      let m = Frame_table.meta ftab (addr lsr frame_log) in
      if not (Frame_table.meta_in_plan m) then v
      else begin
        (* Header word: odd = forwarding pointer, even = field count.
           The in-plan bit implies a live frame, so the load need not
           consult the liveness bitmap. *)
        let s = Memory.unsafe_get mem addr in
        if s land 1 = 1 then Value.of_addr (s lsr 1)
        else begin
          let id = Frame_table.meta_incr m in
          if id < 0 then unowned addr;
          match st.State.inc_by_id.(id) with
          | None -> unowned addr
          | Some inc when Frame_table.meta_pinned m ->
            if not inc.Increment.gc_mark then begin
              inc.Increment.gc_mark <- true;
              Vec.push pinned_work inc
            end;
            v
          | Some src_inc ->
            Value.of_addr (copy src_inc addr ((s lsr 1) + Object_model.header_words))
        end
      end
    end
  in

  (* Roots. *)
  phase Gc_stats.Phase_roots true;
  Roots.iter_update st.State.roots (fun v ->
      incr roots_scanned;
      forward v);
  phase Gc_stats.Phase_roots false;

  (* Record that a surviving slot still holds an interesting pointer,
     in whichever bookkeeping the policy's barrier discipline uses. The
     predicate is the write barrier's, inlined over the already-flat
     stamp table. *)
  let use_cards = st.State.policy.State.barrier = State.Barrier_cards in
  let remsets = st.State.remsets in
  let cards = st.State.cards in
  let re_remember ~slot ~src ~tgt =
    if src <> tgt && Frame_table.stamp ftab tgt < Frame_table.stamp ftab src then begin
      if use_cards then Card_table.mark cards ~frame:src
      else Remset.insert remsets ~src_frame:src ~tgt_frame:tgt ~slot
    end
  in

  (* Scan one grey object: forward its outgoing references and re-apply
     the barrier predicate under the new frame stamps. Slots are the
     TIB word at [obj+1] and the fields from [obj+2]: one contiguous
     range, walked directly. The source frame is taken per slot, which
     also handles pinned objects spanning several (contiguous, equally
     stamped) frames. *)
  let scan_object obj =
    (* Grey objects are never forwarded, so the header word is the
       field count directly. *)
    let n = Memory.unsafe_get mem obj lsr 1 in
    for slot = obj + 1 to obj + 1 + n do
      let v = Memory.unsafe_get mem slot in
      if Value.is_ref v then begin
        incr scanned_slots;
        let v' = forward v in
        if v' <> v then Memory.unsafe_set mem slot v';
        re_remember ~slot ~src:(slot lsr frame_log)
          ~tgt:(Value.to_addr v' lsr frame_log)
      end
    done
  in
  (* Same walk for dirty-frame (card) scanning, which counts against
     the remembered-slot statistic instead. *)
  let card_scan_object obj =
    let n = Memory.unsafe_get mem obj lsr 1 in
    for slot = obj + 1 to obj + 1 + n do
      let v = Memory.unsafe_get mem slot in
      if Value.is_ref v then begin
        incr remset_slots;
        let v' = forward v in
        if v' <> v then Memory.unsafe_set mem slot v';
        re_remember ~slot ~src:(slot lsr frame_log)
          ~tgt:(Value.to_addr v' lsr frame_log)
      end
    done
  in

  (match st.State.policy.State.barrier with
  | State.Barrier_remsets _ ->
    phase Gc_stats.Phase_remset true;
    (* Remembered slots targeting the plan from outside it. Snapshot
       first (into scratch reused across collections): forwarding
       inserts new remset entries and the table must not be mutated
       mid-iteration. *)
    let pending_slots = st.State.gc_slots in
    Vec.clear pending_slots;
    Remset.iter_into remsets
      ~in_plan:(fun f -> Frame_table.in_plan ftab f)
      (fun ~slot -> Vec.push pending_slots slot);
    for k = 0 to Vec.length pending_slots - 1 do
      let slot = Vec.get pending_slots k in
      incr remset_slots;
      let v = Memory.get mem slot in
      if Value.is_ref v then begin
        let v' = forward v in
        if v' <> v then begin
          Memory.set mem slot v';
          (* The slot now refers into a destination frame; re-apply
             the barrier predicate under the new stamps. *)
          re_remember ~slot ~src:(slot lsr frame_log)
            ~tgt:(Value.to_addr v' lsr frame_log)
        end
      end
    done;
    Vec.clear pending_slots;
    phase Gc_stats.Phase_remset false
  | State.Barrier_cards ->
    phase Gc_stats.Phase_cards true;
    (* Card scanning: every dirty frame outside the plan may hold
       pointers into it. Scan the owning increments object by object —
       the scan-cost side of the cards-vs-remsets trade-off (paper S5).
       Cards are cleared first and re-marked for slots that still hold
       interesting pointers afterwards. *)
    let incs_to_scan = Hashtbl.create 16 in
    Card_table.iter_dirty cards (fun frame ->
        if not (Frame_table.in_plan ftab frame) then begin
          Card_table.clear cards ~frame;
          match State.inc_of_frame st frame with
          | Some inc -> Hashtbl.replace incs_to_scan inc.Increment.id inc
          | None -> ()
        end);
    Hashtbl.iter
      (fun _ (inc : Increment.t) -> Increment.iter_objects inc mem card_scan_object)
      incs_to_scan;
    phase Gc_stats.Phase_cards false);

  (* Cheney drain: scan every destination's copied objects and every
     marked pinned object; scanning may copy or mark more, so iterate
     until no grey work remains. *)
  phase Gc_stats.Phase_cheney true;
  let progress = ref true in
  let pinned_scanned = ref 0 in
  while !progress do
    progress := false;
    (* [dests] may grow during the loop; index-based iteration picks up
       new destinations in the same pass. *)
    let i = ref 0 in
    while !i < Vec.length dests do
      let d = Option.get (Vec.get dests !i) in
      let obj = ref (Increment.scan_next d.inc mem d.pos) in
      while !obj <> Addr.null do
        progress := true;
        scan_object !obj;
        obj := Increment.scan_next d.inc mem d.pos
      done;
      incr i
    done;
    while !pinned_scanned < Vec.length pinned_work do
      progress := true;
      let inc = Vec.get pinned_work !pinned_scanned in
      incr pinned_scanned;
      scan_object (Increment.base_object inc mem)
    done
  done;
  phase Gc_stats.Phase_cheney false;

  (* Release the evacuated increments; marked pinned increments stay in
     place (that is the point of the large object space), with their
     transient plan/mark state cleared. *)
  phase Gc_stats.Phase_free true;
  let pf = plan_frames plan in
  let pw = plan_words plan in
  let pi = List.length plan.increments in
  let freed_frames = ref 0 in
  List.iter
    (fun (inc : Increment.t) ->
      if inc.Increment.pinned && inc.Increment.gc_mark then begin
        inc.Increment.gc_mark <- false;
        inc.Increment.in_plan <- false;
        Vec.iter
          (fun f -> Frame_table.set_in_plan ftab ~frame:f false)
          inc.Increment.frames
      end
      else begin
        freed_frames := !freed_frames + Increment.occupancy_frames inc;
        State.free_increment st inc
      end)
    plan.increments;
  let freed_frames = !freed_frames in
  Vec.clear pinned_work;
  phase Gc_stats.Phase_free false;

  st.State.in_gc <- false;
  if plan.full_heap then st.State.live_est_frames <- st.State.frames_used;
  let record : Gc_stats.collection =
    {
      Gc_stats.n = Gc_stats.gcs st.State.stats;
      reason = plan.reason;
      emergency = plan.emergency;
      clock_words = st.State.stats.Gc_stats.words_allocated;
      plan_incs = pi;
      plan_frames = pf;
      plan_words = pw;
      full_heap = plan.full_heap;
      copied_words = !copied_words;
      copied_objects = !copied_objects;
      scanned_slots = !scanned_slots;
      remset_slots = !remset_slots;
      roots_scanned = !roots_scanned;
      freed_frames;
      heap_frames_after = st.State.frames_used;
      reserve_frames = Copy_reserve.frames st;
    }
  in
  Gc_stats.record_collection st.State.stats record;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        (* Reserve sampled once per collection, after the plan's frames
           are back: the recorder's reserve-pressure time series. *)
        h.State.on_reserve ~frames:record.Gc_stats.reserve_frames;
        h.State.on_collect_end ~full_heap:plan.full_heap)
      hs);
  record
