module Vec = Beltway_util.Vec

type plan = {
  increments : Increment.t list;
  reason : Gc_stats.reason;
  emergency : bool;
  full_heap : bool;
}

let plan_frames p =
  List.fold_left (fun acc i -> acc + Increment.occupancy_frames i) 0 p.increments

let plan_words p =
  List.fold_left (fun acc i -> acc + Increment.words_used i) 0 p.increments

let evacuation_frames p =
  List.fold_left
    (fun acc (i : Increment.t) ->
      if i.Increment.pinned then acc else acc + Increment.occupancy_frames i)
    0 p.increments

type dest = { inc : Increment.t; pos : Increment.pos }

(* The hot path below is deliberately allocation-free per object and
   per slot: plan membership, pinnedness and the owning increment id
   come from one packed frame-table word ([Frame_table.meta]), the
   id -> increment step is an array read, forwarding pointers are
   decoded from the raw header word (no [option]), and reference slots
   are walked with a direct [for] loop over the object's field range
   instead of a per-slot closure. Only per-collection setup (the plan
   walk, destination registration) allocates. *)
let collect_seq st plan =
  let mem = st.State.mem in
  let ftab = st.State.ftab in
  let frame_log = Memory.frame_log mem in
  st.State.in_gc <- true;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        h.State.on_collect_start ~reason:plan.reason ~emergency:plan.emergency)
      hs);
  (* Phase spans for the flight recorder: free when no hooks are
     installed (one list match per phase boundary per collection). *)
  let phase p enter =
    match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_gc_phase ~phase:p ~enter) hs
  in
  let copied_words = ref 0 in
  let copied_objects = ref 0 in
  let scanned_slots = ref 0 in
  let remset_slots = ref 0 in
  let roots_scanned = ref 0 in

  (* Plan membership: an in-plan bit on each member frame's packed
     metadata word, plus a flag on the increment itself. *)
  List.iter
    (fun (inc : Increment.t) ->
      inc.Increment.in_plan <- true;
      Increment.seal inc;
      Vec.iter (fun f -> Frame_table.set_in_plan ftab ~frame:f true) inc.Increment.frames)
    plan.increments;

  (* Destination (open) increments, one per destination belt, created
     lazily and replaced when they hit their bound. [dests] also serves
     as the Cheney grey-set: every destination is scanned from the
     position at which it was registered. *)
  let dests : dest option Vec.t = Vec.create ~dummy:None () in
  let belt_dest : dest option array = Array.make (Array.length st.State.belts) None in
  let register_dest belt =
    let inc = State.open_inc st ~belt in
    let d = { inc; pos = Increment.scan_pos inc } in
    Vec.push dests (Some d);
    belt_dest.(belt) <- Some d;
    d
  in
  let dest_for belt =
    match belt_dest.(belt) with
    | Some d when (not d.inc.Increment.sealed) && not (Increment.at_bound d.inc) -> d
    | Some d when not d.inc.Increment.sealed ->
      (* At bound but current frame may still have room; keep using it
         until a bump actually fails. *)
      d
    | _ -> register_dest belt
  in

  (* Bump-allocate [size] words in the destination for [belt], rolling
     over to a fresh increment when the current one is full. *)
  let rec dest_alloc belt size =
    let d = dest_for belt in
    let addr = Increment.bump_or_null d.inc ~size in
    if addr <> Addr.null then addr
    else if Increment.at_bound d.inc then begin
      Increment.seal d.inc;
      ignore (register_dest belt);
      dest_alloc belt size
    end
    else begin
      State.grant_frame st d.inc ~during_gc:true;
      dest_alloc belt size
    end
  in

  (* Pinned (large-object) increments in the plan are marked in place
     rather than copied; their objects join the grey set through
     [pinned_work] (scratch reused across collections), flagged via
     [gc_mark] so each is pushed once. *)
  let pinned_work = st.State.gc_pinned in
  Vec.clear pinned_work;

  (* Evacuate one object; returns its new address. [size] was decoded
     from the header word the caller already loaded. Unchecked accesses
     throughout the drain are sound by construction: sources sit in
     in-plan frames and destinations in just-granted frames, both live
     for the whole collection. *)
  let copy (src_inc : Increment.t) addr size =
    let belt = State.dest_belt st src_inc.Increment.belt in
    let new_addr = dest_alloc belt size in
    (* Objects never span frames (only pinned LOS increments do, and
       those are marked in place), so the whole object moves as one
       block. *)
    Memory.unsafe_blit mem ~src:addr ~dst:new_addr ~len:size;
    (* Forwarding pointer: odd status word, as decoded in [forward]. *)
    Memory.unsafe_set mem addr ((new_addr lsl 1) lor 1);
    copied_words := !copied_words + size;
    incr copied_objects;
    (match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_move ~src:addr ~dst:new_addr) hs);
    new_addr
  in

  let unowned addr =
    invalid_arg (Printf.sprintf "Collector: object %#x in unowned frame" addr)
  in
  let forward v =
    if not (Value.is_ref v) then v
    else begin
      let addr = Value.to_addr v in
      let m = Frame_table.meta ftab (addr lsr frame_log) in
      if not (Frame_table.meta_in_plan m) then v
      else begin
        (* Header word: odd = forwarding pointer, even = field count.
           The in-plan bit implies a live frame, so the load need not
           consult the liveness bitmap. *)
        let s = Memory.unsafe_get mem addr in
        if s land 1 = 1 then Value.of_addr (s lsr 1)
        else begin
          let id = Frame_table.meta_incr m in
          if id < 0 then unowned addr;
          match st.State.inc_by_id.(id) with
          | None -> unowned addr
          | Some inc when Frame_table.meta_pinned m ->
            if not inc.Increment.gc_mark then begin
              inc.Increment.gc_mark <- true;
              Vec.push pinned_work inc
            end;
            v
          | Some src_inc ->
            Value.of_addr (copy src_inc addr ((s lsr 1) + Object_model.header_words))
        end
      end
    end
  in

  (* Roots. *)
  phase Gc_stats.Phase_roots true;
  Roots.iter_update st.State.roots (fun v ->
      incr roots_scanned;
      forward v);
  phase Gc_stats.Phase_roots false;

  (* Record that a surviving slot still holds an interesting pointer,
     in whichever bookkeeping the policy's barrier discipline uses. The
     predicate is the write barrier's, inlined over the already-flat
     stamp table. *)
  let use_cards = st.State.policy.State.barrier = State.Barrier_cards in
  let remsets = st.State.remsets in
  let cards = st.State.cards in
  let re_remember ~slot ~src ~tgt =
    Write_barrier.re_remember st ~use_cards ~slot ~src_frame:src ~tgt_frame:tgt
  in

  (* Scan one grey object: forward its outgoing references and re-apply
     the barrier predicate under the new frame stamps. Slots are the
     TIB word at [obj+1] and the fields from [obj+2]: one contiguous
     range, walked directly. The source frame is taken per slot, which
     also handles pinned objects spanning several (contiguous, equally
     stamped) frames. *)
  let scan_object obj =
    (* Grey objects are never forwarded, so the header word is the
       field count directly. *)
    let n = Memory.unsafe_get mem obj lsr 1 in
    for slot = obj + 1 to obj + 1 + n do
      let v = Memory.unsafe_get mem slot in
      if Value.is_ref v then begin
        incr scanned_slots;
        let v' = forward v in
        if v' <> v then Memory.unsafe_set mem slot v';
        re_remember ~slot ~src:(slot lsr frame_log)
          ~tgt:(Value.to_addr v' lsr frame_log)
      end
    done
  in
  (* Same walk for dirty-frame (card) scanning, which counts against
     the remembered-slot statistic instead. *)
  let card_scan_object obj =
    let n = Memory.unsafe_get mem obj lsr 1 in
    for slot = obj + 1 to obj + 1 + n do
      let v = Memory.unsafe_get mem slot in
      if Value.is_ref v then begin
        incr remset_slots;
        let v' = forward v in
        if v' <> v then Memory.unsafe_set mem slot v';
        re_remember ~slot ~src:(slot lsr frame_log)
          ~tgt:(Value.to_addr v' lsr frame_log)
      end
    done
  in

  (match st.State.policy.State.barrier with
  | State.Barrier_remsets _ ->
    phase Gc_stats.Phase_remset true;
    (* Remembered slots targeting the plan from outside it. Snapshot
       first (into scratch reused across collections): forwarding
       inserts new remset entries and the table must not be mutated
       mid-iteration. *)
    let pending_slots = st.State.gc_slots in
    Vec.clear pending_slots;
    Remset.iter_into remsets
      ~in_plan:(fun f -> Frame_table.in_plan ftab f)
      (fun ~slot -> Vec.push pending_slots slot);
    for k = 0 to Vec.length pending_slots - 1 do
      let slot = Vec.get pending_slots k in
      incr remset_slots;
      let v = Memory.get mem slot in
      if Value.is_ref v then begin
        let v' = forward v in
        if v' <> v then begin
          Memory.set mem slot v';
          (* The slot now refers into a destination frame; re-apply
             the barrier predicate under the new stamps. *)
          re_remember ~slot ~src:(slot lsr frame_log)
            ~tgt:(Value.to_addr v' lsr frame_log)
        end
      end
    done;
    Vec.clear pending_slots;
    phase Gc_stats.Phase_remset false
  | State.Barrier_cards ->
    phase Gc_stats.Phase_cards true;
    (* Card scanning: every dirty frame outside the plan may hold
       pointers into it. Scan the owning increments object by object —
       the scan-cost side of the cards-vs-remsets trade-off (paper S5).
       Cards are cleared first and re-marked for slots that still hold
       interesting pointers afterwards. *)
    let incs_to_scan = Hashtbl.create 16 in
    Card_table.iter_dirty cards (fun frame ->
        if not (Frame_table.in_plan ftab frame) then begin
          Card_table.clear cards ~frame;
          match State.inc_of_frame st frame with
          | Some inc -> Hashtbl.replace incs_to_scan inc.Increment.id inc
          | None -> ()
        end);
    Hashtbl.iter
      (fun _ (inc : Increment.t) -> Increment.iter_objects inc mem card_scan_object)
      incs_to_scan;
    phase Gc_stats.Phase_cards false);

  (* Cheney drain: scan every destination's copied objects and every
     marked pinned object; scanning may copy or mark more, so iterate
     until no grey work remains. *)
  phase Gc_stats.Phase_cheney true;
  let progress = ref true in
  let pinned_scanned = ref 0 in
  while !progress do
    progress := false;
    (* [dests] may grow during the loop; index-based iteration picks up
       new destinations in the same pass. *)
    let i = ref 0 in
    while !i < Vec.length dests do
      let d = Option.get (Vec.get dests !i) in
      let obj = ref (Increment.scan_next d.inc mem d.pos) in
      while !obj <> Addr.null do
        progress := true;
        scan_object !obj;
        obj := Increment.scan_next d.inc mem d.pos
      done;
      incr i
    done;
    while !pinned_scanned < Vec.length pinned_work do
      progress := true;
      let inc = Vec.get pinned_work !pinned_scanned in
      incr pinned_scanned;
      scan_object (Increment.base_object inc mem)
    done
  done;
  phase Gc_stats.Phase_cheney false;

  (* Release the evacuated increments; marked pinned increments stay in
     place (that is the point of the large object space), with their
     transient plan/mark state cleared. *)
  phase Gc_stats.Phase_free true;
  let pf = plan_frames plan in
  let pw = plan_words plan in
  let pi = List.length plan.increments in
  let freed_frames = ref 0 in
  List.iter
    (fun (inc : Increment.t) ->
      if inc.Increment.pinned && inc.Increment.gc_mark then begin
        inc.Increment.gc_mark <- false;
        inc.Increment.in_plan <- false;
        Vec.iter
          (fun f -> Frame_table.set_in_plan ftab ~frame:f false)
          inc.Increment.frames
      end
      else begin
        freed_frames := !freed_frames + Increment.occupancy_frames inc;
        State.free_increment st inc
      end)
    plan.increments;
  let freed_frames = !freed_frames in
  Vec.clear pinned_work;
  phase Gc_stats.Phase_free false;

  st.State.in_gc <- false;
  if plan.full_heap then st.State.live_est_frames <- st.State.frames_used;
  let record : Gc_stats.collection =
    {
      Gc_stats.n = Gc_stats.gcs st.State.stats;
      reason = plan.reason;
      emergency = plan.emergency;
      clock_words = st.State.stats.Gc_stats.words_allocated;
      plan_incs = pi;
      plan_frames = pf;
      plan_words = pw;
      full_heap = plan.full_heap;
      copied_words = !copied_words;
      copied_objects = !copied_objects;
      scanned_slots = !scanned_slots;
      remset_slots = !remset_slots;
      roots_scanned = !roots_scanned;
      marked_objects = 0;
      marked_words = 0;
      swept_words = 0;
      moved_words = 0;
      freed_frames;
      heap_frames_after = st.State.frames_used;
      reserve_frames = Copy_reserve.frames st;
    }
  in
  Gc_stats.record_collection st.State.stats record;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        (* Reserve sampled once per collection, after the plan's frames
           are back: the recorder's reserve-pressure time series. *)
        h.State.on_reserve ~frames:record.Gc_stats.reserve_frames;
        h.State.on_collect_end ~full_heap:plan.full_heap)
      hs);
  record

(* ------------------------------------------------------------------ *)
(* The parallel drain: the same collection sharded over N domains.

   Protocol (see DESIGN.md "Parallel collection"):
   - each domain greys objects onto a private stack (the hot path,
     fence-free) and offloads surplus in batches onto its Chase–Lev
     deque, which is what other domains steal from; it also owns a
     private open destination increment per belt, so the copy loop's
     bump allocation never contends on a shared cursor;
   - forwarding pointers are installed with a CAS on the header word;
     the loser of a race discards its speculative copy (rolling its
     private bump back) and adopts the winner's address;
   - shared-structure mutation (opening increments, granting frames,
     and the hooks those fire) is serialised by [st.gc_lock];
   - remset/card re-records and on_move hook firings are buffered per
     domain and replayed on the submitting domain after the drain —
     none of that machinery is thread-safe;
   - termination: a shared in-flight counter, +1 per grey push and -1
     per scanned object, batched through a per-domain delta that is
     flushed at steal boundaries. A domain whose own work runs dry
     steals from the others; after a failed round it parks on a
     condition variable (spinning would starve the working domains on
     an oversubscribed machine) until surplus is published, the
     counter reaches zero, or a sibling aborts. *)

module Deque = Beltway_util.Deque
module Team = Beltway_util.Team

(* The lazily created team shared by every heap in the process (one
   collection runs at a time per heap; concurrent collections of
   *different* heaps just share the queue). Grown when a heap asks for
   more domains than the current team has. *)
let gc_team : Team.t option ref = ref None
let exit_hook_installed = ref false

let team_for domains =
  match !gc_team with
  | Some t when Team.size t >= domains -> t
  | prev ->
    (match prev with Some t -> Team.shutdown t | None -> ());
    let t = Team.create ~size:domains in
    gc_team := Some t;
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit (fun () ->
          match !gc_team with Some t -> Team.shutdown t | None -> ())
    end;
    t

let collect_par st plan =
  let mem = st.State.mem in
  let ftab = st.State.ftab in
  let frame_log = Memory.frame_log mem in
  let ndomains = st.State.gc_domains in
  let team = team_for ndomains in
  st.State.in_gc <- true;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        h.State.on_collect_start ~reason:plan.reason ~emergency:plan.emergency)
      hs);
  let phase p enter =
    match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_gc_phase ~phase:p ~enter) hs
  in
  let record_moves = st.State.hooks <> [] in
  let clock = st.State.clock_us in
  let use_cards = st.State.policy.State.barrier = State.Barrier_cards in

  (* Plan membership, exactly as in the sequential path. *)
  List.iter
    (fun (inc : Increment.t) ->
      inc.Increment.in_plan <- true;
      Increment.seal inc;
      Vec.iter (fun f -> Frame_table.set_in_plan ftab ~frame:f true) inc.Increment.frames)
    plan.increments;

  (* Worker domains read the flat backing, the liveness bitmap, the
     frame table and the id->increment mirror without synchronisation;
     none of those arrays may be swapped for a grown copy mid-drain.
     Pre-grow each to cover every frame the drain could possibly
     allocate (the whole remaining budget). *)
  let headroom = max 0 (st.State.heap_frames - st.State.frames_used) in
  Memory.reserve_fresh mem ~frames:headroom;
  Frame_table.ensure ftab (Memory.fresh_frames mem + headroom);
  let max_new_incs =
    (* Upper bound on increments opened during the drain: every belt
       of every domain can roll over at most once per granted frame. *)
    st.State.next_inc_id + headroom + (ndomains * Array.length st.State.belts) + 1
  in
  State.reserve_inc_ids st max_new_incs;

  let ctxs = State.par_domains st ndomains in
  Array.iter
    (fun (c : State.par_domain) ->
      Vec.clear c.State.pd_stack;
      c.State.pd_delta <- 0;
      Array.fill c.State.pd_dests 0 (Array.length c.State.pd_dests) None;
      c.State.pd_opened <- [];
      Vec.clear c.State.pd_remember;
      Vec.clear c.State.pd_moves;
      c.State.pd_copied_words <- 0;
      c.State.pd_copied_objects <- 0;
      c.State.pd_scanned_slots <- 0;
      c.State.pd_remset_slots <- 0;
      c.State.pd_roots_scanned <- 0;
      c.State.pd_steals <- 0;
      c.State.pd_cas_retries <- 0;
      Array.fill c.State.pd_phase_start 0 3 0.;
      Array.fill c.State.pd_phase_dur 0 3 0.)
    ctxs;

  let pending = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let aborted () = Atomic.get failure <> None in
  let check_failure () =
    match Atomic.get failure with Some e -> raise e | None -> ()
  in
  let pin_lock = Mutex.create () in

  (* Idle parking. A thief whose steal round finds nothing sleeps on
     [idle_cv] instead of spinning: on an oversubscribed machine a
     spinning thief consumes the timeslice of the one domain holding
     work, inverting the speedup. Wakers broadcast under [idle_m], and
     a sleeper re-checks its predicate under the same mutex before
     waiting, so a wakeup can never be missed. *)
  let idle_m = Mutex.create () in
  let idle_cv = Condition.create () in
  let sleepers = Atomic.make 0 in
  let wake_all () =
    Mutex.lock idle_m;
    Condition.broadcast idle_cv;
    Mutex.unlock idle_m
  in

  (* The in-flight counter is kept approximately: each domain batches
     its +1-per-push / -1-per-scan into a private [pd_delta] and folds
     it in with one fetch-and-add at steal boundaries (and every
     [flush_bound] pushes, so idle thieves are not stranded by a stale
     zero). Exactness only matters at quiescence: a domain reaches the
     exit check with its own stack and deque empty and its delta
     flushed, so when every domain has exited no unscanned object can
     remain, and the final flush-to-zero wakes any parked sleeper. *)
  let flush (ctx : State.par_domain) =
    let d = ctx.State.pd_delta in
    if d <> 0 then begin
      ctx.State.pd_delta <- 0;
      let now = Atomic.fetch_and_add pending d + d in
      if now = 0 && Atomic.get sleepers > 0 then wake_all ()
    end
  in
  (* Grey publication: the hot path pushes to the domain-private stack
     (no fences); surplus is offloaded to the Chase–Lev deque in
     batches from the drain loop. *)
  let grey_push (ctx : State.par_domain) obj =
    ctx.State.pd_delta <- ctx.State.pd_delta + 1;
    Vec.push ctx.State.pd_stack obj
  in

  (* Private destination allocation: bump without synchronisation;
     open increments and grant frames under the state lock. *)
  let rec dest_alloc (ctx : State.par_domain) belt size =
    match ctx.State.pd_dests.(belt) with
    | Some d ->
      let addr = Increment.bump_or_null d ~size in
      if addr <> Addr.null then addr
      else if Increment.at_bound d then begin
        Increment.seal d;
        ctx.State.pd_dests.(belt) <- None;
        dest_alloc ctx belt size
      end
      else begin
        Mutex.lock st.State.gc_lock;
        (try State.grant_frame st d ~during_gc:true
         with e ->
           Mutex.unlock st.State.gc_lock;
           raise e);
        Mutex.unlock st.State.gc_lock;
        dest_alloc ctx belt size
      end
    | None ->
      Mutex.lock st.State.gc_lock;
      let inc =
        try State.new_increment st ~belt
        with e ->
          Mutex.unlock st.State.gc_lock;
          raise e
      in
      Mutex.unlock st.State.gc_lock;
      ctx.State.pd_dests.(belt) <- Some inc;
      ctx.State.pd_opened <- inc :: ctx.State.pd_opened;
      dest_alloc ctx belt size
  in

  (* Evacuate one object speculatively, then race to install the
     forwarding pointer. [header] is the even header word the caller
     loaded; a CAS that finds anything else lost to another domain,
     whose odd header decodes to the authoritative new address. *)
  let copy ctx (src_inc : Increment.t) addr header size =
    let belt = State.dest_belt st src_inc.Increment.belt in
    let new_addr = dest_alloc ctx belt size in
    Memory.unsafe_blit mem ~src:addr ~dst:new_addr ~len:size;
    let prev =
      Memory.cas_word mem addr ~expect:header ~desired:((new_addr lsl 1) lor 1)
    in
    if prev = header then begin
      ctx.State.pd_copied_words <- ctx.State.pd_copied_words + size;
      ctx.State.pd_copied_objects <- ctx.State.pd_copied_objects + 1;
      if record_moves then begin
        Vec.push ctx.State.pd_moves addr;
        Vec.push ctx.State.pd_moves new_addr
      end;
      grey_push ctx new_addr;
      new_addr
    end
    else begin
      ctx.State.pd_cas_retries <- ctx.State.pd_cas_retries + 1;
      (match ctx.State.pd_dests.(belt) with
      | Some d -> Increment.unbump d ~addr:new_addr ~size
      | None -> assert false (* a successful bump leaves its increment open *));
      prev lsr 1
    end
  in

  let unowned addr =
    invalid_arg (Printf.sprintf "Collector: object %#x in unowned frame" addr)
  in
  let forward ctx v =
    if not (Value.is_ref v) then v
    else begin
      let addr = Value.to_addr v in
      let m = Frame_table.meta ftab (addr lsr frame_log) in
      if not (Frame_table.meta_in_plan m) then v
      else begin
        let s = Memory.unsafe_get mem addr in
        if s land 1 = 1 then Value.of_addr (s lsr 1)
        else begin
          let id = Frame_table.meta_incr m in
          if id < 0 then unowned addr;
          match st.State.inc_by_id.(id) with
          | None -> unowned addr
          | Some inc when Frame_table.meta_pinned m ->
            (* Pinned: marked in place; the first domain to claim the
               mark (under [pin_lock]) pushes the base object grey. *)
            if not inc.Increment.gc_mark then begin
              Mutex.lock pin_lock;
              let first = not inc.Increment.gc_mark in
              if first then inc.Increment.gc_mark <- true;
              Mutex.unlock pin_lock;
              if first then
                grey_push ctx (Increment.base_object inc mem)
            end;
            v
          | Some src_inc ->
            Value.of_addr
              (copy ctx src_inc addr s ((s lsr 1) + Object_model.header_words))
        end
      end
    end
  in

  (* The stamp compare runs on the worker with possibly stale target
     stamps (a frame granted by another domain may still read as
     unowned), which can only over-approximate — the replay on the
     main domain re-evaluates the predicate over the settled table. *)
  let buffer_remember ctx ~slot ~src ~tgt =
    if src <> tgt && Frame_table.stamp ftab tgt < Frame_table.stamp ftab src then begin
      Vec.push ctx.State.pd_remember slot;
      Vec.push ctx.State.pd_remember tgt
    end
  in

  let scan_slots (ctx : State.par_domain) ~as_remset obj =
    let n = Memory.unsafe_get mem obj lsr 1 in
    for slot = obj + 1 to obj + 1 + n do
      let v = Memory.unsafe_get mem slot in
      if Value.is_ref v then begin
        if as_remset then
          ctx.State.pd_remset_slots <- ctx.State.pd_remset_slots + 1
        else ctx.State.pd_scanned_slots <- ctx.State.pd_scanned_slots + 1;
        let v' = forward ctx v in
        if v' <> v then Memory.unsafe_set mem slot v';
        buffer_remember ctx ~slot ~src:(slot lsr frame_log)
          ~tgt:(Value.to_addr v' lsr frame_log)
      end
    done
  in

  (* Run [f i ctxs.(i)] on the team, recording the domain's wall-clock
     window for phase ordinal [ord] and routing any exception into
     [failure] (a raise must never leave a sibling spinning). *)
  let timed ord f i =
    let ctx = ctxs.(i) in
    let t0 = clock () in
    ctx.State.pd_phase_start.(ord) <- t0;
    (try f i ctx
     with e ->
       ignore (Atomic.compare_and_set failure None (Some e));
       (* Sleepers re-check [aborted] on wake; set-then-broadcast. *)
       wake_all ());
    (* Each phase is a team barrier, so flushing here makes [pending]
       exact at every phase boundary — the Cheney drain starts from a
       true outstanding count. *)
    flush ctx;
    ctx.State.pd_phase_dur.(ord) <- clock () -. t0
  in

  (* Roots: strided shards over the combined root index space. *)
  phase Gc_stats.Phase_roots true;
  Team.run team ~domains:ndomains
    (timed 0 (fun i ctx ->
         Roots.iter_update_shard st.State.roots ~index:i ~stride:ndomains
           (fun v ->
             ctx.State.pd_roots_scanned <- ctx.State.pd_roots_scanned + 1;
             forward ctx v)));
  check_failure ();
  phase Gc_stats.Phase_roots false;

  (match st.State.policy.State.barrier with
  | State.Barrier_remsets _ ->
    phase Gc_stats.Phase_remset true;
    (* Snapshot on the submitting domain (the remset tables are not
       thread-safe), then process strided shards of the snapshot.
       Duplicate slots may land in different shards: both domains
       forward the same value (the CAS dedups the copy) and the
       double insert is tolerated, as in the sequential path. *)
    let pending_slots = st.State.gc_slots in
    Vec.clear pending_slots;
    Remset.iter_into st.State.remsets
      ~in_plan:(fun f -> Frame_table.in_plan ftab f)
      (fun ~slot -> Vec.push pending_slots slot);
    Team.run team ~domains:ndomains
      (timed 1 (fun i ctx ->
           let len = Vec.length pending_slots in
           let k = ref i in
           while !k < len && not (aborted ()) do
             let slot = Vec.get pending_slots !k in
             ctx.State.pd_remset_slots <- ctx.State.pd_remset_slots + 1;
             let v = Memory.get mem slot in
             if Value.is_ref v then begin
               let v' = forward ctx v in
               if v' <> v then begin
                 Memory.set mem slot v';
                 buffer_remember ctx ~slot ~src:(slot lsr frame_log)
                   ~tgt:(Value.to_addr v' lsr frame_log)
               end
             end;
             k := !k + ndomains
           done));
    check_failure ();
    Vec.clear pending_slots;
    phase Gc_stats.Phase_remset false
  | State.Barrier_cards ->
    phase Gc_stats.Phase_cards true;
    (* Dirty-increment gathering on the submitting domain; each dirty
       increment is scanned wholly by one domain (strided), so no two
       domains write the same non-plan slot. *)
    let incs_to_scan = Hashtbl.create 16 in
    Card_table.iter_dirty st.State.cards (fun frame ->
        if not (Frame_table.in_plan ftab frame) then begin
          Card_table.clear st.State.cards ~frame;
          match State.inc_of_frame st frame with
          | Some inc -> Hashtbl.replace incs_to_scan inc.Increment.id inc
          | None -> ()
        end);
    let scan_incs = Array.of_seq (Hashtbl.to_seq_values incs_to_scan) in
    Team.run team ~domains:ndomains
      (timed 1 (fun i ctx ->
           let k = ref i in
           while !k < Array.length scan_incs && not (aborted ()) do
             Increment.iter_objects scan_incs.(!k) mem (fun obj ->
                 scan_slots ctx ~as_remset:true obj);
             k := !k + ndomains
           done));
    check_failure ();
    phase Gc_stats.Phase_cards false);

  (* Cheney drain. Hot path: pop the private stack (no atomics),
     offloading surplus to the domain's deque in batches so thieves
     have something to take. Dry path: drain the own deque, then
     steal; a failed round flushes the delta, spins briefly, and
     parks. Any single domain can finish the whole drain through
     stealing, so a degraded (sequential) team execution remains
     correct. *)
  let offload_trigger = 64 and offload_low = 16 and offload_batch = 32 in
  let flush_bound = 64 in
  let any_published () =
    let any = ref false in
    for d = 0 to ndomains - 1 do
      if not (Deque.is_empty ctxs.(d).State.pd_grey) then any := true
    done;
    !any
  in
  let park () =
    Mutex.lock idle_m;
    Atomic.incr sleepers;
    (* Predicate re-checked under [idle_m]: every waker broadcasts
       under it, so a publish or flush-to-zero between this check and
       the wait is impossible. *)
    if Atomic.get pending > 0 && (not (aborted ())) && not (any_published ())
    then Condition.wait idle_cv idle_m;
    Atomic.decr sleepers;
    Mutex.unlock idle_m
  in
  phase Gc_stats.Phase_cheney true;
  Team.run team ~domains:ndomains
    (timed 2 (fun i ctx ->
         let scan obj =
           scan_slots ctx ~as_remset:false obj;
           ctx.State.pd_delta <- ctx.State.pd_delta - 1
         in
         let rec own () =
           if
             Vec.length ctx.State.pd_stack > offload_trigger
             && Deque.length ctx.State.pd_grey < offload_low
           then begin
             for _ = 1 to offload_batch do
               Deque.push ctx.State.pd_grey (Vec.pop ctx.State.pd_stack)
             done;
             if Atomic.get sleepers > 0 then wake_all ()
           end;
           if ctx.State.pd_delta > flush_bound then flush ctx;
           if not (Vec.is_empty ctx.State.pd_stack) then begin
             scan (Vec.pop ctx.State.pd_stack);
             own ()
           end
           else begin
             let obj = Deque.pop ctx.State.pd_grey in
             if obj <> Addr.null then begin
               scan obj;
               own ()
             end
             else steal 0
           end
         and steal rounds =
           flush ctx;
           if not (aborted ()) then begin
             let stolen = ref Addr.null in
             let k = ref 1 in
             while !stolen = Addr.null && !k < ndomains do
               let v = Deque.steal ctxs.((i + !k) mod ndomains).State.pd_grey in
               if v <> Addr.null then stolen := v;
               incr k
             done;
             match !stolen with
             | obj when obj <> Addr.null ->
               ctx.State.pd_steals <- ctx.State.pd_steals + 1;
               scan obj;
               own ()
             | _ ->
               if Atomic.get pending = 0 then ()
               else if rounds < 2 then begin
                 Domain.cpu_relax ();
                 steal (rounds + 1)
               end
               else begin
                 park ();
                 steal 0
               end
           end
         in
         own ()));
  check_failure ();
  phase Gc_stats.Phase_cheney false;

  (* Back to one domain: replay buffered side effects, then the free
     phase and bookkeeping exactly as in the sequential path. *)
  let copied_words = ref 0 in
  let copied_objects = ref 0 in
  let scanned_slots = ref 0 in
  let remset_slots = ref 0 in
  let roots_scanned = ref 0 in
  Array.iter
    (fun (c : State.par_domain) ->
      copied_words := !copied_words + c.State.pd_copied_words;
      copied_objects := !copied_objects + c.State.pd_copied_objects;
      scanned_slots := !scanned_slots + c.State.pd_scanned_slots;
      remset_slots := !remset_slots + c.State.pd_remset_slots;
      roots_scanned := !roots_scanned + c.State.pd_roots_scanned)
    ctxs;

  (* Moves first, so the shadow heap has re-keyed every object before
     any later hook looks at it. *)
  if record_moves then
    Array.iter
      (fun (c : State.par_domain) ->
        let mv = c.State.pd_moves in
        let len = Vec.length mv in
        let k = ref 0 in
        while !k < len do
          let src = Vec.get mv !k and dst = Vec.get mv (!k + 1) in
          List.iter (fun h -> h.State.on_move ~src ~dst) st.State.hooks;
          k := !k + 2
        done;
        Vec.clear mv)
      ctxs;

  Array.iter
    (fun (c : State.par_domain) ->
      let buf = c.State.pd_remember in
      let len = Vec.length buf in
      let k = ref 0 in
      while !k < len do
        let slot = Vec.get buf !k and tgt = Vec.get buf (!k + 1) in
        Write_barrier.re_remember st ~use_cards ~slot
          ~src_frame:(slot lsr frame_log) ~tgt_frame:tgt;
        k := !k + 2
      done;
      Vec.clear buf)
    ctxs;

  (* Destination increments that ended the drain empty — every copy
     they received lost its forwarding race — are freed (they may hold
     one granted frame each). *)
  Array.iter
    (fun (c : State.par_domain) ->
      List.iter
        (fun (inc : Increment.t) ->
          if Increment.words_used inc = 0 then State.free_increment st inc)
        c.State.pd_opened;
      c.State.pd_opened <- [];
      Array.fill c.State.pd_dests 0 (Array.length c.State.pd_dests) None)
    ctxs;

  phase Gc_stats.Phase_free true;
  let pf = plan_frames plan in
  let pw = plan_words plan in
  let pi = List.length plan.increments in
  let freed_frames = ref 0 in
  List.iter
    (fun (inc : Increment.t) ->
      if inc.Increment.pinned && inc.Increment.gc_mark then begin
        inc.Increment.gc_mark <- false;
        inc.Increment.in_plan <- false;
        Vec.iter
          (fun f -> Frame_table.set_in_plan ftab ~frame:f false)
          inc.Increment.frames
      end
      else begin
        freed_frames := !freed_frames + Increment.occupancy_frames inc;
        State.free_increment st inc
      end)
    plan.increments;
  let freed_frames = !freed_frames in
  phase Gc_stats.Phase_free false;

  st.State.in_gc <- false;
  if plan.full_heap then st.State.live_est_frames <- st.State.frames_used;
  let record : Gc_stats.collection =
    {
      Gc_stats.n = Gc_stats.gcs st.State.stats;
      reason = plan.reason;
      emergency = plan.emergency;
      clock_words = st.State.stats.Gc_stats.words_allocated;
      plan_incs = pi;
      plan_frames = pf;
      plan_words = pw;
      full_heap = plan.full_heap;
      copied_words = !copied_words;
      copied_objects = !copied_objects;
      scanned_slots = !scanned_slots;
      remset_slots = !remset_slots;
      roots_scanned = !roots_scanned;
      marked_objects = 0;
      marked_words = 0;
      swept_words = 0;
      moved_words = 0;
      freed_frames;
      heap_frames_after = st.State.frames_used;
      reserve_frames = Copy_reserve.frames st;
    }
  in
  Gc_stats.record_collection st.State.stats record;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    let reports =
      Array.mapi
        (fun i (c : State.par_domain) ->
          {
            State.pr_domain = i;
            pr_phases =
              [|
                ( Gc_stats.Phase_roots,
                  c.State.pd_phase_start.(0),
                  c.State.pd_phase_dur.(0) );
                ( (if use_cards then Gc_stats.Phase_cards
                   else Gc_stats.Phase_remset),
                  c.State.pd_phase_start.(1),
                  c.State.pd_phase_dur.(1) );
                ( Gc_stats.Phase_cheney,
                  c.State.pd_phase_start.(2),
                  c.State.pd_phase_dur.(2) );
              |];
            pr_copied_objects = c.State.pd_copied_objects;
            pr_copied_words = c.State.pd_copied_words;
            pr_scanned_slots = c.State.pd_scanned_slots + c.State.pd_remset_slots;
            pr_steals = c.State.pd_steals;
            pr_cas_retries = c.State.pd_cas_retries;
          })
        ctxs
    in
    List.iter
      (fun h ->
        h.State.on_gc_domains ~reports;
        h.State.on_reserve ~frames:record.Gc_stats.reserve_frames;
        h.State.on_collect_end ~full_heap:plan.full_heap)
      hs);
  record

(* ------------------------------------------------------------------ *)
(* The in-place strategies: bitmap mark-sweep and threaded (Jonkers)
   mark-compact. One driver handles both; [compact] selects whether
   the reclaim phase rebuilds free lists in place or slides survivors
   to the front of their own increments.

   Shape of a collection:

   - the plan's non-pinned increments are *logically promoted first*:
     moved to their destination belts and restamped (every frame
     restamped to match) before any tracing. Tracing then runs
     entirely under the final stamps, so re-applying the write
     barrier's predicate while marking records exactly the right
     remembered slots — the property the copying drain gets from
     allocating survivors into new-stamped destination frames.
     Restamping only ever raises a target's stamp, so pre-existing
     remembered entries can become superfluous but never
     insufficient; and a pointer from outside the plan into a
     promoted increment needs no new entry, because downward closure
     puts any older source increment into every future plan that
     contains the now-younger-stamped target.

   - marking: roots, then remembered slots / dirty cards, then an
     explicit mark-stack drain over the side bitmap (one bit per heap
     word, held by the memory substrate; only the plan's frames are
     cleared, and marks are only ever read behind an in-plan test).
     Pinned (LOS) increments in the plan are marked through the same
     bitmap on their base object.

   - reclaim: the sweep coalesces each increment's dead runs into
     free-list fillers frame by frame, freeing frames with no
     survivor; the compactor threads references (Jonkers' scheme, as
     in motoko-rts) and slides survivors to the front of the
     increment's own frames in two passes, freeing the vacated tail.

   Neither strategy needs a copy reserve ([Strategy] reserves zero
   frames), which is exactly the trade the strategies experiment
   measures against the copying collector's per-object work. *)
let collect_mark st plan ~compact =
  let mem = st.State.mem in
  let ftab = st.State.ftab in
  let frame_log = Memory.frame_log mem in
  let frame_words = Memory.frame_words mem in
  st.State.in_gc <- true;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        h.State.on_collect_start ~reason:plan.reason ~emergency:plan.emergency)
      hs);
  let phase p enter =
    match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_gc_phase ~phase:p ~enter) hs
  in
  let hook_object_dead ~addr ~words =
    match st.State.hooks with
    | [] -> ()
    | hs -> List.iter (fun h -> h.State.on_object_dead ~addr ~words) hs
  in
  let marked_objects = ref 0 in
  let marked_words = ref 0 in
  let swept_words = ref 0 in
  let moved_words = ref 0 in
  let scanned_slots = ref 0 in
  let remset_slots = ref 0 in
  let roots_scanned = ref 0 in
  let freed_frames = ref 0 in

  (* Plan totals up front: unlike the copying drain, the reclaim phase
     below rewrites the plan increments' own occupancy. *)
  let pf = plan_frames plan in
  let pw = plan_words plan in
  let pi = List.length plan.increments in

  (* Plan membership bits, as in the copying drain. *)
  List.iter
    (fun (inc : Increment.t) ->
      inc.Increment.in_plan <- true;
      Increment.seal inc;
      Vec.iter
        (fun f -> Frame_table.set_in_plan ftab ~frame:f true)
        inc.Increment.frames)
    plan.increments;

  (* Logical promotion: survivors keep their frames, so promotion is a
     belt/stamp relabelling instead of a copy. Each increment takes a
     fresh stamp, so pushing it to the back of its destination belt
     preserves the belts' stamp-FIFO ordering whatever the plan order.
     Pinned increments keep their place, exactly as under copying.
     (The increment also keeps its original belt's [bound_frames] —
     the bound travels with the increment, not the belt.) *)
  List.iter
    (fun (inc : Increment.t) ->
      if not inc.Increment.pinned then begin
        let dest = State.dest_belt st inc.Increment.belt in
        Belt.remove st.State.belts.(inc.Increment.belt) inc;
        inc.Increment.belt <- dest;
        inc.Increment.stamp <- State.stamp_for_belt st dest;
        Belt.push_back st.State.belts.(dest) inc;
        Vec.iter
          (fun f -> Frame_table.restamp ftab ~frame:f ~stamp:inc.Increment.stamp)
          inc.Increment.frames
      end)
    plan.increments;

  (* Side mark bitmap over the plan's frames, plus the explicit mark
     stack. Marks outside the plan may be stale from an earlier
     collection; they are never read. *)
  Memory.ensure_marks mem;
  List.iter
    (fun (inc : Increment.t) ->
      Vec.iter (fun f -> Memory.clear_marks_frame mem f) inc.Increment.frames)
    plan.increments;
  let stack = st.State.gc_mark_stack in
  Vec.clear stack;

  (* Grey an object: mark bit, statistics, stack push. Pinned objects
     are marked through the same bitmap on their base address, so
     retention at reclaim is one bitmap test either way. *)
  let trace v =
    if Value.is_ref v then begin
      let addr = Value.to_addr v in
      if
        Frame_table.meta_in_plan (Frame_table.meta ftab (addr lsr frame_log))
        && not (Memory.marked mem addr)
      then begin
        Memory.set_mark mem addr;
        incr marked_objects;
        marked_words :=
          !marked_words + (Memory.unsafe_get mem addr lsr 1)
          + Object_model.header_words;
        Vec.push stack addr
      end
    end
  in

  let use_cards = st.State.policy.State.barrier = State.Barrier_cards in
  let re_remember ~slot ~src ~tgt =
    Write_barrier.re_remember st ~use_cards ~slot ~src_frame:src ~tgt_frame:tgt
  in

  (* External referrer slots, collected during the remset/card phases.
     The compactor must come back to them after the slide — both to
     thread them (so they learn the new addresses) and to re-record
     them (their old remset entries are keyed by target frame, and a
     vacated target frame drops its entries). Deduplicated: threading
     one slot twice would tie its chain into a cycle. The sweep needs
     none of this and leaves the vector empty. *)
  let ext_slots : int Vec.t = Vec.create ~dummy:0 () in
  let ext_seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let note_ext slot =
    if compact && not (Hashtbl.mem ext_seen slot) then begin
      Hashtbl.replace ext_seen slot ();
      Vec.push ext_slots slot
    end
  in

  (* Roots. Nothing moves during marking, so this pass only traces;
     the compactor rewrites root slots after the slide. *)
  phase Gc_stats.Phase_roots true;
  Roots.iter_update st.State.roots (fun v ->
      incr roots_scanned;
      trace v;
      v);
  phase Gc_stats.Phase_roots false;

  (match st.State.policy.State.barrier with
  | State.Barrier_remsets _ ->
    phase Gc_stats.Phase_remset true;
    (* Remembered slots targeting the plan from outside it. Snapshot
       first: marking inserts remset entries (mark-sweep re-records
       during the drain) and the table must not be mutated
       mid-iteration. *)
    let pending_slots = st.State.gc_slots in
    Vec.clear pending_slots;
    Remset.iter_into st.State.remsets
      ~in_plan:(fun f -> Frame_table.in_plan ftab f)
      (fun ~slot -> Vec.push pending_slots slot);
    for k = 0 to Vec.length pending_slots - 1 do
      let slot = Vec.get pending_slots k in
      incr remset_slots;
      let v = Memory.get mem slot in
      if Value.is_ref v then begin
        trace v;
        note_ext slot
      end
    done;
    Vec.clear pending_slots;
    phase Gc_stats.Phase_remset false
  | State.Barrier_cards ->
    phase Gc_stats.Phase_cards true;
    (* Dirty-frame scanning, as in the copying drain: cards are cleared
       first and re-marked for slots that still hold interesting
       pointers — immediately for slots whose target stays put, after
       the slide for slots into compacting increments. *)
    let incs_to_scan = Hashtbl.create 16 in
    Card_table.iter_dirty st.State.cards (fun frame ->
        if not (Frame_table.in_plan ftab frame) then begin
          Card_table.clear st.State.cards ~frame;
          match State.inc_of_frame st frame with
          | Some inc -> Hashtbl.replace incs_to_scan inc.Increment.id inc
          | None -> ()
        end);
    Hashtbl.iter
      (fun _ (inc : Increment.t) ->
        Increment.iter_objects inc mem (fun obj ->
            let n = Memory.unsafe_get mem obj lsr 1 in
            for slot = obj + 1 to obj + 1 + n do
              let v = Memory.unsafe_get mem slot in
              if Value.is_ref v then begin
                incr remset_slots;
                trace v;
                let tf = Value.to_addr v lsr frame_log in
                let tm = Frame_table.meta ftab tf in
                if
                  compact
                  && Frame_table.meta_in_plan tm
                  && not (Frame_table.meta_pinned tm)
                then note_ext slot
                else re_remember ~slot ~src:(slot lsr frame_log) ~tgt:tf
              end
            done))
      incs_to_scan;
    phase Gc_stats.Phase_cards false);

  (* Mark drain. Under the sweep, surviving slots re-apply the barrier
     predicate here, under the (final) promoted stamps — the in-place
     analogue of the copying scan's re-recording. The compactor defers
     it to after the slide: both the slots and their targets move. *)
  phase Gc_stats.Phase_mark true;
  while not (Vec.is_empty stack) do
    let obj = Vec.pop stack in
    let n = Memory.unsafe_get mem obj lsr 1 in
    for slot = obj + 1 to obj + 1 + n do
      let v = Memory.unsafe_get mem slot in
      if Value.is_ref v then begin
        incr scanned_slots;
        trace v;
        if not compact then
          re_remember ~slot ~src:(slot lsr frame_log)
            ~tgt:(Value.to_addr v lsr frame_log)
      end
    done
  done;
  phase Gc_stats.Phase_mark false;

  (* Free one frame of a surviving increment (wholly dead, or vacated
     by the slide): the same per-frame bookkeeping [State.free_increment]
     does, minus the increment-level teardown. *)
  let free_frame_now (inc : Increment.t) frame =
    Remset.drop_frame st.State.remsets frame;
    Card_table.clear st.State.cards ~frame;
    Frame_table.clear ftab ~frame;
    Memory.free_frame mem frame;
    st.State.frames_used <- st.State.frames_used - 1;
    incr freed_frames;
    match st.State.hooks with
    | [] -> ()
    | hs ->
      List.iter (fun h -> h.State.on_frame_free ~frame ~belt:inc.Increment.belt) hs
  in
  (* Pinned increments are retained in place when their object was
     reached, released otherwise — the same either way; the compactor
     additionally re-records the retained object's slots once every
     target has its final address ([rescan]). *)
  let finish_pinned ~rescan (inc : Increment.t) =
    if Memory.marked mem (Increment.base_object inc mem) then begin
      if rescan then begin
        let obj = Increment.base_object inc mem in
        let n = Memory.unsafe_get mem obj lsr 1 in
        for slot = obj + 1 to obj + 1 + n do
          let v = Memory.unsafe_get mem slot in
          if Value.is_ref v then
            re_remember ~slot ~src:(slot lsr frame_log)
              ~tgt:(Value.to_addr v lsr frame_log)
        done
      end;
      inc.Increment.in_plan <- false;
      Vec.iter
        (fun f -> Frame_table.set_in_plan ftab ~frame:f false)
        inc.Increment.frames
    end
    else begin
      freed_frames := !freed_frames + Increment.occupancy_frames inc;
      State.free_increment st inc
    end
  in

  if not compact then begin
    (* Sweep: rebuild each increment in place. Adjacent dead objects
       coalesce into one filler per run — an even header and odd
       (immediate) payload words, so object walks parse it and slot
       walks skip it — pushed onto the increment's free list. Frames
       with no survivor are returned individually, and the increment
       is unsealed so the mutator can bump its tail and refill its
       holes. *)
    phase Gc_stats.Phase_sweep true;
    List.iter
      (fun (inc : Increment.t) ->
        if inc.Increment.pinned then finish_pinned ~rescan:false inc
        else begin
          let nframes = Increment.frame_count inc in
          (* Survival per frame, decided before any rebuilding. *)
          let keep = Array.make (max nframes 1) false in
          let any_live = ref false in
          for fi = 0 to nframes - 1 do
            let base = Memory.frame_base mem (Vec.get inc.Increment.frames fi) in
            let extent = base + Increment.used_of_frame inc mem fi in
            let a = ref base in
            while !a < extent do
              if Memory.marked mem !a then begin
                keep.(fi) <- true;
                any_live := true
              end;
              a := !a + (Memory.unsafe_get mem !a lsr 1) + Object_model.header_words
            done
          done;
          if not !any_live then begin
            freed_frames := !freed_frames + Increment.occupancy_frames inc;
            State.free_increment st inc
          end
          else begin
            Increment.clear_free_list inc;
            let kept_frames = Vec.create ~dummy:0 () in
            let kept_used = Vec.create ~dummy:0 () in
            let live = ref 0 in
            let fillers = ref 0 in
            for fi = 0 to nframes - 1 do
              let frame = Vec.get inc.Increment.frames fi in
              if not keep.(fi) then free_frame_now inc frame
              else begin
                let used = Increment.used_of_frame inc mem fi in
                let base = Memory.frame_base mem frame in
                let extent = base + used in
                let run_start = ref Addr.null in
                let flush upto =
                  if !run_start <> Addr.null then begin
                    let k = upto - !run_start in
                    Memory.unsafe_set mem !run_start
                      ((k - Object_model.header_words) lsl 1);
                    Memory.fill mem ~dst:(!run_start + 1) ~len:(k - 1) 1;
                    Increment.push_free inc ~addr:!run_start ~words:k;
                    incr fillers;
                    run_start := Addr.null
                  end
                in
                let a = ref base in
                while !a < extent do
                  let size =
                    (Memory.unsafe_get mem !a lsr 1) + Object_model.header_words
                  in
                  if Memory.marked mem !a then begin
                    incr live;
                    flush !a
                  end
                  else begin
                    if !run_start = Addr.null then run_start := !a;
                    swept_words := !swept_words + size;
                    (* Dead in a surviving frame: reported here. Dead
                       objects in a freed frame die with the frame
                       ([on_frame_free]), never both. *)
                    hook_object_dead ~addr:!a ~words:size
                  end;
                  a := !a + size
                done;
                flush extent;
                Vec.push kept_frames frame;
                Vec.push kept_used used
              end
            done;
            (* Rebuild over the surviving frames: the last reopens
               under the bump cursor (its tail words are still zeroed —
               bump allocation never reached them), the others keep
               their recorded extents. *)
            Vec.clear inc.Increment.frames;
            Vec.clear inc.Increment.frame_used;
            let m = Vec.length kept_frames in
            let words = ref 0 in
            for i = 0 to m - 1 do
              Vec.push inc.Increment.frames (Vec.get kept_frames i);
              words := !words + Vec.get kept_used i;
              if i < m - 1 then
                Vec.push inc.Increment.frame_used (Vec.get kept_used i)
            done;
            let last_base = Memory.frame_base mem (Vec.get kept_frames (m - 1)) in
            inc.Increment.cursor <- last_base + Vec.get kept_used (m - 1);
            inc.Increment.limit <- last_base + frame_words;
            inc.Increment.words_used <- !words;
            inc.Increment.objects <- !live + !fillers;
            inc.Increment.sealed <- false;
            inc.Increment.in_plan <- false;
            Vec.iter
              (fun f -> Frame_table.set_in_plan ftab ~frame:f false)
              inc.Increment.frames
          end
        end)
      plan.increments;
    phase Gc_stats.Phase_sweep false
  end
  else begin
    (* Threaded compaction (Jonkers): every reference to a moving
       object is threaded into a chain hanging off the target's
       header; two passes over the compacting increments in one fixed
       total order (plan order, stream order within an increment)
       first compute destination addresses and unthread the already
       recorded referrers, then slide the objects and unthread the
       rest. Both passes recompute the same destination cursor — the
       survivors packed into the increment's own frames in order,
       advancing at a frame seam exactly when the object would not
       fit the remainder. The original packing obeyed the same rule,
       so within any frame the destination never overtakes the
       source and [Memory.blit]'s forward copy is safe; across
       frames, source and destination never alias. *)
    phase Gc_stats.Phase_compact true;

    (* Fields of retained pinned objects point into compacting
       increments by address; collect them with the external slots
       (deduplicated) so they are threaded and re-recorded too. *)
    List.iter
      (fun (inc : Increment.t) ->
        if
          inc.Increment.pinned
          && Memory.marked mem (Increment.base_object inc mem)
        then begin
          let obj = Increment.base_object inc mem in
          let n = Memory.unsafe_get mem obj lsr 1 in
          for slot = obj + 1 to obj + 1 + n do
            if Value.is_ref (Memory.unsafe_get mem slot) then note_ext slot
          done
        end)
      plan.increments;
    (* Thread the external slots. Every slot's target was traced with
       this same value, so a slot pointing at a moving (in-plan,
       non-pinned) object always points at a live one. This must
       happen only now: the drain above reads these very slots, and a
       threaded slot holds a chain link, not a value. *)
    let thread_slot slot =
      let v = Memory.get mem slot in
      if Value.is_ref v then begin
        let tgt = Value.to_addr v in
        let tm = Frame_table.meta ftab (tgt lsr frame_log) in
        if Frame_table.meta_in_plan tm && not (Frame_table.meta_pinned tm)
        then begin
          Memory.set mem slot (Memory.unsafe_get mem tgt);
          Memory.unsafe_set mem tgt ((slot lsl 1) lor 1)
        end
      end
    in
    Vec.iter thread_slot ext_slots;

    let compacting =
      List.filter
        (fun (i : Increment.t) -> not i.Increment.pinned)
        plan.increments
    in
    (* Chain-walk to the terminal (even) header word without
       unthreading: an object's size is needed to place it before its
       referrers can learn the new address. *)
    let threaded_header obj =
      let w = ref (Memory.unsafe_get mem obj) in
      while !w land 1 = 1 do
        w := Memory.unsafe_get mem (!w lsr 1)
      done;
      !w
    in
    (* Relocation table for the root slots, which live outside the
       simulated heap and cannot be threaded — the one deviation from
       pure threading. Only movers are recorded. *)
    let old_new : (int, int) Hashtbl.t = Hashtbl.create 256 in
    (* Destination frame count per increment, decided by pass one. *)
    let live_frames : (int, int) Hashtbl.t = Hashtbl.create 16 in

    (* Pass one. *)
    List.iter
      (fun (inc : Increment.t) ->
        let nframes = Increment.frame_count inc in
        let dfi = ref 0 in
        let daddr = ref Addr.null in
        let dlimit = ref Addr.null in
        if nframes > 0 then begin
          daddr := Memory.frame_base mem (Vec.get inc.Increment.frames 0);
          dlimit := !daddr + frame_words
        end;
        let any = ref false in
        for fi = 0 to nframes - 1 do
          let base = Memory.frame_base mem (Vec.get inc.Increment.frames fi) in
          let extent = base + Increment.used_of_frame inc mem fi in
          let a = ref base in
          while !a < extent do
            if Memory.marked mem !a then begin
              any := true;
              let h = threaded_header !a in
              let size = (h lsr 1) + Object_model.header_words in
              if !daddr + size > !dlimit then begin
                incr dfi;
                daddr := Memory.frame_base mem (Vec.get inc.Increment.frames !dfi);
                dlimit := !daddr + frame_words
              end;
              let dst = !daddr in
              daddr := dst + size;
              if dst <> !a then Hashtbl.replace old_new !a dst;
              (* Unthread: referrers recorded so far (external slots,
                 and fields of objects earlier in the order) learn the
                 new address; the original header comes back. *)
              let w = ref (Memory.unsafe_get mem !a) in
              while !w land 1 = 1 do
                let s = !w lsr 1 in
                w := Memory.unsafe_get mem s;
                Memory.unsafe_set mem s (Value.of_addr dst)
              done;
              Memory.unsafe_set mem !a !w;
              (* Thread this object's own references to movers (a
                 self-reference threads into this object's own chain
                 and resolves in pass two, before the slide). *)
              let n = !w lsr 1 in
              for slot = !a + 1 to !a + 1 + n do
                let v = Memory.unsafe_get mem slot in
                if Value.is_ref v then begin
                  let tgt = Value.to_addr v in
                  let tm = Frame_table.meta ftab (tgt lsr frame_log) in
                  if Frame_table.meta_in_plan tm && not (Frame_table.meta_pinned tm)
                  then begin
                    Memory.unsafe_set mem slot (Memory.unsafe_get mem tgt);
                    Memory.unsafe_set mem tgt ((slot lsl 1) lor 1)
                  end
                end
              done;
              a := !a + size
            end
            else
              a :=
                !a + (Memory.unsafe_get mem !a lsr 1) + Object_model.header_words
          done
        done;
        Hashtbl.replace live_frames inc.Increment.id (if !any then !dfi + 1 else 0))
      compacting;

    (* Pass two: the same walk and the same destination computation;
       unthread the remaining referrers (slots of objects later in the
       order — not yet moved — or of this object itself), restore the
       header, slide, and rebuild the increment over its survivor
       prefix. Finishing each increment here is sound: all of its
       slots already hold final values (forward references were
       resolved by pass one, which ran to completion everywhere). *)
    List.iter
      (fun (inc : Increment.t) ->
        let m = Hashtbl.find live_frames inc.Increment.id in
        if m = 0 then begin
          freed_frames := !freed_frames + Increment.occupancy_frames inc;
          State.free_increment st inc
        end
        else begin
          let nframes = Increment.frame_count inc in
          let dfi = ref 0 in
          let daddr = ref (Memory.frame_base mem (Vec.get inc.Increment.frames 0)) in
          let dlimit = ref (!daddr + frame_words) in
          let extents = Vec.create ~dummy:0 () in
          let live = ref 0 in
          for fi = 0 to nframes - 1 do
            let base = Memory.frame_base mem (Vec.get inc.Increment.frames fi) in
            let extent = base + Increment.used_of_frame inc mem fi in
            let a = ref base in
            while !a < extent do
              if Memory.marked mem !a then begin
                let h = threaded_header !a in
                let size = (h lsr 1) + Object_model.header_words in
                if !daddr + size > !dlimit then begin
                  Vec.push extents
                    (!daddr
                    - Memory.frame_base mem (Vec.get inc.Increment.frames !dfi));
                  incr dfi;
                  daddr := Memory.frame_base mem (Vec.get inc.Increment.frames !dfi);
                  dlimit := !daddr + frame_words
                end;
                let dst = !daddr in
                daddr := dst + size;
                let w = ref (Memory.unsafe_get mem !a) in
                while !w land 1 = 1 do
                  let s = !w lsr 1 in
                  w := Memory.unsafe_get mem s;
                  Memory.unsafe_set mem s (Value.of_addr dst)
                done;
                Memory.unsafe_set mem !a !w;
                incr live;
                if dst <> !a then begin
                  Memory.blit mem ~src:!a ~dst ~len:size;
                  moved_words := !moved_words + size;
                  match st.State.hooks with
                  | [] -> ()
                  | hs -> List.iter (fun h -> h.State.on_move ~src:!a ~dst) hs
                end;
                a := !a + size
              end
              else begin
                let size =
                  (Memory.unsafe_get mem !a lsr 1) + Object_model.header_words
                in
                if fi < m then begin
                  (* Dying inside a surviving frame: reported here. A
                     dead object in a vacated frame dies with the
                     frame ([on_frame_free]), never both. *)
                  swept_words := !swept_words + size;
                  hook_object_dead ~addr:!a ~words:size
                end;
                a := !a + size
              end
            done
          done;
          Vec.push extents
            (!daddr - Memory.frame_base mem (Vec.get inc.Increment.frames !dfi));
          (* Free the vacated tail, rebuild the survivor prefix. *)
          for fi = nframes - 1 downto m do
            free_frame_now inc (Vec.get inc.Increment.frames fi)
          done;
          Vec.truncate inc.Increment.frames m;
          Vec.clear inc.Increment.frame_used;
          let words = ref 0 in
          for i = 0 to m - 1 do
            let u = Vec.get extents i in
            words := !words + u;
            if i < m - 1 then Vec.push inc.Increment.frame_used u
          done;
          inc.Increment.cursor <- !daddr;
          inc.Increment.limit <-
            Memory.frame_base mem (Vec.get inc.Increment.frames (m - 1))
            + frame_words;
          (* The slide leaves stale object images under the reopened
             bump tail; allocation assumes zeroed words. *)
          if inc.Increment.limit > inc.Increment.cursor then
            Memory.fill mem ~dst:inc.Increment.cursor
              ~len:(inc.Increment.limit - inc.Increment.cursor)
              0;
          inc.Increment.words_used <- !words;
          inc.Increment.objects <- !live;
          Increment.clear_free_list inc;
          inc.Increment.sealed <- false;
          inc.Increment.in_plan <- false;
          Vec.iter
            (fun f -> Frame_table.set_in_plan ftab ~frame:f false)
            inc.Increment.frames;
          (* Re-apply the barrier predicate over the compacted stream
             (the in-place analogue of the copying scan's
             re-recording): every slot here is final. *)
          for i = 0 to m - 1 do
            let base = Memory.frame_base mem (Vec.get inc.Increment.frames i) in
            let extent = base + Vec.get extents i in
            let a = ref base in
            while !a < extent do
              let n = Memory.unsafe_get mem !a lsr 1 in
              for slot = !a + 1 to !a + 1 + n do
                let v = Memory.unsafe_get mem slot in
                if Value.is_ref v then
                  re_remember ~slot ~src:(slot lsr frame_log)
                    ~tgt:(Value.to_addr v lsr frame_log)
              done;
              a := !a + n + Object_model.header_words
            done
          done
        end)
      compacting;

    (* Retained pinned objects: clear plan state and re-record their
       (now final) slots. *)
    List.iter
      (fun (inc : Increment.t) ->
        if inc.Increment.pinned then finish_pinned ~rescan:true inc)
      plan.increments;

    (* Root slots, from the relocation table. *)
    Roots.iter_update st.State.roots (fun v ->
        if Value.is_ref v then (
          match Hashtbl.find_opt old_new (Value.to_addr v) with
          | Some dst -> Value.of_addr dst
          | None -> v)
        else v);

    (* External referrer slots: re-record under the final target
       frames. An entry keyed by a vacated target frame was dropped
       with that frame; this re-insertion is what preserves it. *)
    Vec.iter
      (fun slot ->
        let v = Memory.get mem slot in
        if Value.is_ref v then
          re_remember ~slot ~src:(slot lsr frame_log)
            ~tgt:(Value.to_addr v lsr frame_log))
      ext_slots;
    phase Gc_stats.Phase_compact false
  end;

  st.State.in_gc <- false;
  if plan.full_heap then st.State.live_est_frames <- st.State.frames_used;
  let record : Gc_stats.collection =
    {
      Gc_stats.n = Gc_stats.gcs st.State.stats;
      reason = plan.reason;
      emergency = plan.emergency;
      clock_words = st.State.stats.Gc_stats.words_allocated;
      plan_incs = pi;
      plan_frames = pf;
      plan_words = pw;
      full_heap = plan.full_heap;
      copied_words = 0;
      copied_objects = 0;
      scanned_slots = !scanned_slots;
      remset_slots = !remset_slots;
      roots_scanned = !roots_scanned;
      marked_objects = !marked_objects;
      marked_words = !marked_words;
      swept_words = !swept_words;
      moved_words = !moved_words;
      freed_frames = !freed_frames;
      heap_frames_after = st.State.frames_used;
      reserve_frames = Copy_reserve.frames st;
    }
  in
  Gc_stats.record_collection st.State.stats record;
  (match st.State.hooks with
  | [] -> ()
  | hs ->
    List.iter
      (fun h ->
        h.State.on_reserve ~frames:record.Gc_stats.reserve_frames;
        h.State.on_collect_end ~full_heap:plan.full_heap)
      hs);
  record

(* The strategy dispatch. The copying strategy is the pre-existing
   collector verbatim (sequential or parallel by fan-out); the
   in-place strategies are sequential by construction and rejected at
   configuration time for [gc_domains > 1]. *)
let collect st plan =
  match st.State.strategy.State.strategy_kind with
  | State.Strategy_copying ->
    if st.State.gc_domains <= 1 then collect_seq st plan else collect_par st plan
  | State.Strategy_marksweep -> collect_mark st plan ~compact:false
  | State.Strategy_markcompact -> collect_mark st plan ~compact:true
