module Vec = Beltway_util.Vec

type plan = {
  increments : Increment.t list;
  reason : string;
  full_heap : bool;
}

let plan_frames p =
  List.fold_left (fun acc i -> acc + Increment.occupancy_frames i) 0 p.increments

let plan_words p =
  List.fold_left (fun acc i -> acc + Increment.words_used i) 0 p.increments

let evacuation_frames p =
  List.fold_left
    (fun acc (i : Increment.t) ->
      if i.Increment.pinned then acc else acc + Increment.occupancy_frames i)
    0 p.increments

(* Destination belt for survivors of an increment on [belt]. Pinned
   (LOS) increments are never evacuated, so only configured belts can
   appear here; the top configured belt wraps onto itself. *)
let dest_belt st belt =
  let regular = State.regular_belts st in
  let belt = min belt (regular - 1) in
  match st.State.config.Config.belts.(belt).Config.promote with
  | Config.Same_belt -> belt
  | Config.Next_belt -> if belt + 1 < regular then belt + 1 else belt

type dest = { inc : Increment.t; pos : Increment.pos }

let collect st plan =
  let mem = st.State.mem in
  st.State.in_gc <- true;
  let copied_words = ref 0 in
  let copied_objects = ref 0 in
  let scanned_slots = ref 0 in
  let remset_slots = ref 0 in
  let roots_scanned = ref 0 in

  (* Plan membership, by increment id and by frame. *)
  let in_plan_inc = Hashtbl.create 16 in
  let in_plan_frame = Hashtbl.create 64 in
  List.iter
    (fun (inc : Increment.t) ->
      Hashtbl.replace in_plan_inc inc.Increment.id ();
      Increment.seal inc;
      Vec.iter (fun f -> Hashtbl.replace in_plan_frame f ()) inc.Increment.frames)
    plan.increments;
  let frame_in_plan f = Hashtbl.mem in_plan_frame f in
  let inc_in_plan (i : Increment.t) = Hashtbl.mem in_plan_inc i.Increment.id in

  (* Destination (open) increments, one per destination belt, created
     lazily and replaced when they hit their bound. [dests] also serves
     as the Cheney grey-set: every destination is scanned from the
     position at which it was registered. *)
  let dests : dest option Vec.t = Vec.create ~dummy:None () in
  let belt_dest : dest option array = Array.make (Array.length st.State.belts) None in
  let register_dest belt =
    let inc = State.open_inc st ~belt ~in_plan:inc_in_plan in
    let d = { inc; pos = Increment.scan_pos inc } in
    Vec.push dests (Some d);
    belt_dest.(belt) <- Some d;
    d
  in
  let dest_for belt =
    match belt_dest.(belt) with
    | Some d when (not d.inc.Increment.sealed) && not (Increment.at_bound d.inc) -> d
    | Some d when not d.inc.Increment.sealed ->
      (* At bound but current frame may still have room; keep using it
         until a bump actually fails. *)
      d
    | _ -> register_dest belt
  in

  (* Bump-allocate [size] words in the destination for [belt], rolling
     over to a fresh increment when the current one is full. *)
  let rec dest_alloc belt size =
    let d = dest_for belt in
    match Increment.try_bump d.inc ~size with
    | Some addr -> addr
    | None ->
      if Increment.at_bound d.inc then begin
        Increment.seal d.inc;
        let d' = register_dest belt in
        ignore d';
        dest_alloc belt size
      end
      else begin
        State.grant_frame st d.inc ~during_gc:true;
        dest_alloc belt size
      end
  in

  (* Pinned (large-object) increments in the plan are marked in place
     rather than copied; their objects join the grey set through
     [pinned_work]. *)
  let marked_pinned : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let pinned_work : Increment.t Vec.t =
    Vec.create ~dummy:(Increment.create ~id:(-1) ~belt:0 ~stamp:0 ~bound_frames:None) ()
  in

  (* Evacuate one object; returns its new address. *)
  let copy src_inc addr =
    let size = Object_model.size_of mem addr in
    let belt = dest_belt st src_inc.Increment.belt in
    let new_addr = dest_alloc belt size in
    (* Objects never span frames (only pinned LOS increments do, and
       those are marked in place), so the whole object moves as one
       block. *)
    Memory.blit mem ~src:addr ~dst:new_addr ~len:size;
    Object_model.set_forwarding mem addr new_addr;
    copied_words := !copied_words + size;
    incr copied_objects;
    new_addr
  in

  let forward v =
    if not (Value.is_ref v) then v
    else begin
      let addr = Value.to_addr v in
      if not (frame_in_plan (State.frame_of_addr st addr)) then v
      else begin
        match Object_model.forwarded mem addr with
        | Some new_addr -> Value.of_addr new_addr
        | None -> (
          match State.inc_of_frame st (State.frame_of_addr st addr) with
          | None ->
            invalid_arg (Printf.sprintf "Collector: object %#x in unowned frame" addr)
          | Some inc when inc.Increment.pinned ->
            if not (Hashtbl.mem marked_pinned inc.Increment.id) then begin
              Hashtbl.replace marked_pinned inc.Increment.id ();
              Vec.push pinned_work inc
            end;
            v
          | Some src_inc -> Value.of_addr (copy src_inc addr))
      end
    end
  in

  (* Roots. *)
  Roots.iter_update st.State.roots (fun v ->
      incr roots_scanned;
      forward v);

  (* Record that a surviving slot still holds an interesting pointer,
     in whichever bookkeeping the configuration uses. *)
  let re_remember ~slot ~src ~tgt =
    if Write_barrier.would_remember st ~src_frame:src ~tgt_frame:tgt then begin
      match st.State.config.Config.barrier with
      | Config.Remsets -> Remset.insert st.State.remsets ~src_frame:src ~tgt_frame:tgt ~slot
      | Config.Cards -> Card_table.mark st.State.cards ~frame:src
    end
  in

  (match st.State.config.Config.barrier with
  | Config.Remsets ->
    (* Remembered slots targeting the plan from outside it. Snapshot
       first: forwarding inserts new remset entries and the table must
       not be mutated mid-iteration. *)
    let pending_slots = Vec.create ~dummy:0 () in
    Remset.iter_into st.State.remsets ~in_plan:frame_in_plan (fun ~slot ->
        Vec.push pending_slots slot);
    Vec.iter
      (fun slot ->
        incr remset_slots;
        let v = Memory.get mem slot in
        if Value.is_ref v then begin
          let v' = forward v in
          if v' <> v then begin
            Memory.set mem slot v';
            (* The slot now refers into a destination frame; re-apply
               the barrier predicate under the new stamps. *)
            re_remember ~slot ~src:(State.frame_of_addr st slot)
              ~tgt:(State.frame_of_addr st (Value.to_addr v'))
          end
        end)
      pending_slots
  | Config.Cards ->
    (* Card scanning: every dirty frame outside the plan may hold
       pointers into it. Scan the owning increments object by object —
       the scan-cost side of the cards-vs-remsets trade-off (paper S5).
       Cards are cleared first and re-marked for slots that still hold
       interesting pointers afterwards. *)
    let incs_to_scan = Hashtbl.create 16 in
    Card_table.iter_dirty st.State.cards (fun frame ->
        if not (frame_in_plan frame) then begin
          Card_table.clear st.State.cards ~frame;
          match State.inc_of_frame st frame with
          | Some inc -> Hashtbl.replace incs_to_scan inc.Increment.id inc
          | None -> ()
        end);
    Hashtbl.iter
      (fun _ (inc : Increment.t) ->
        Increment.iter_objects inc mem (fun obj ->
            Object_model.iter_ref_slots mem obj (fun slot ->
                incr remset_slots;
                let v = Memory.get mem slot in
                let v' = forward v in
                if v' <> v then Memory.set mem slot v';
                re_remember ~slot ~src:(State.frame_of_addr st slot)
                  ~tgt:(State.frame_of_addr st (Value.to_addr v')))))
      incs_to_scan);

  (* Scan one grey object: forward its outgoing references and re-apply
     the barrier predicate under the new frame stamps. The source frame
     is taken per slot, which also handles pinned objects spanning
     several (contiguous, equally stamped) frames. *)
  let scan_object obj =
    Object_model.iter_ref_slots mem obj (fun slot ->
        incr scanned_slots;
        let v = Memory.get mem slot in
        let v' = forward v in
        if v' <> v then Memory.set mem slot v';
        re_remember ~slot ~src:(State.frame_of_addr st slot)
          ~tgt:(State.frame_of_addr st (Value.to_addr v')))
  in

  (* Cheney drain: scan every destination's copied objects and every
     marked pinned object; scanning may copy or mark more, so iterate
     until no grey work remains. *)
  let progress = ref true in
  let pinned_scanned = ref 0 in
  while !progress do
    progress := false;
    (* [dests] may grow during the loop; index-based iteration picks up
       new destinations in the same pass. *)
    let i = ref 0 in
    while !i < Vec.length dests do
      let d = Option.get (Vec.get dests !i) in
      while Increment.scan_pending d.inc mem d.pos do
        progress := true;
        scan_object (Increment.scan_step d.inc mem d.pos)
      done;
      incr i
    done;
    while !pinned_scanned < Vec.length pinned_work do
      progress := true;
      let inc = Vec.get pinned_work !pinned_scanned in
      incr pinned_scanned;
      scan_object (Increment.base_object inc mem)
    done
  done;

  (* Release the evacuated increments; marked pinned increments stay in
     place (that is the point of the large object space). *)
  let pf = plan_frames plan in
  let pw = plan_words plan in
  let pi = List.length plan.increments in
  let freed_frames = ref 0 in
  List.iter
    (fun (inc : Increment.t) ->
      if
        not
          (inc.Increment.pinned && Hashtbl.mem marked_pinned inc.Increment.id)
      then begin
        freed_frames := !freed_frames + Increment.occupancy_frames inc;
        State.free_increment st inc
      end)
    plan.increments;
  let freed_frames = !freed_frames in

  st.State.in_gc <- false;
  if plan.full_heap then st.State.live_est_frames <- st.State.frames_used;
  let record : Gc_stats.collection =
    {
      Gc_stats.n = Gc_stats.gcs st.State.stats;
      reason = plan.reason;
      clock_words = st.State.stats.Gc_stats.words_allocated;
      plan_incs = pi;
      plan_frames = pf;
      plan_words = pw;
      full_heap = plan.full_heap;
      copied_words = !copied_words;
      copied_objects = !copied_objects;
      scanned_slots = !scanned_slots;
      remset_slots = !remset_slots;
      roots_scanned = !roots_scanned;
      freed_frames;
      heap_frames_after = st.State.frames_used;
      reserve_frames = Copy_reserve.frames st;
    }
  in
  Gc_stats.record_collection st.State.stats record;
  record
