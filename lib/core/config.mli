(** Collector configurations.

    The paper's central claim is that one framework, configured from
    the command line, acts as every copying collector: semi-space
    (BSS), Appel-style generational (BA2 and the three-generation
    variant), fixed-size-nursery generational, older-first mix (BOFM),
    older-first (BOF), and the new Beltway X.X and X.X.100 families.
    This module is that configuration surface: a belt array plus a
    handful of orthogonal mechanisms (stamp ordering, flip, triggers,
    reserve policy), with a parser for the command-line syntax used by
    the [bin/beltway_run] executable. *)

type bound =
  | Pct of int
      (** Increments bounded at this percentage of usable memory
          (resolved to frames per heap size at [Gc.create]). *)
  | Whole_heap  (** A single increment may grow to all usable memory. *)

type promote =
  | Same_belt  (** Survivors go to the back of the same belt. *)
  | Next_belt
      (** Survivors go to the back of the next higher belt (the top
          belt wraps to itself). *)

type belt_cfg = { bound : bound; promote : promote }

type stamp_mode =
  | Belt_major
      (** Lower belts collected before higher belts (generational and
          Beltway configurations). *)
  | Epoch
      (** Pure FIFO / epoch order (semi-space, older-first): the
          globally oldest increment is always collected next; BOF belt
          flips advance the epoch. *)

type reserve_mode =
  | Half  (** Classic half-heap copy reserve (semi-space, GCTk
              generational comparators). *)
  | Dynamic  (** The paper's dynamic conservative copy reserve
                 (S3.3.4). *)

type barrier =
  | Remsets
      (** Per-(source, target)-frame-pair remembered sets of slot
          addresses (the paper's choice, S3.3.2). *)
  | Cards
      (** Frame-granularity card marking: an unconditional O(1) barrier
          paid for by scanning dirty frames at collection (paper S5's
          alternative; select with [+cards]). *)

type order =
  | Lowest_belt
      (** Collect the front increment of the lowest belt whose front is
          worth collecting; the plan is the downward closure in stamp
          order (generational / Beltway behaviour). *)
  | Global_fifo
      (** Collect the globally oldest increment (BSS, BOFM, BOF). *)

type t = {
  label : string;
  belts : belt_cfg array;
  stamp_mode : stamp_mode;
  order : order;
  flip : bool;  (** BOF: swap belts when belt 0 empties. *)
  nursery_filter : bool;
      (** Barrier fast-exits when the source is in the single nursery
          increment (S3.3.2); only sound under [Belt_major] with a
          single-increment nursery. *)
  reserve : reserve_mode;
  ttd_frames : int option;
      (** Time-to-die trigger: within this many frames of heap-full,
          redirect allocation into a second nursery increment
          (S3.3.3). *)
  remset_trigger : int option;
      (** Force a collection when total remset entries exceed this. *)
  min_useful_frames : int;
      (** A front increment below this occupancy is "not worthwhile";
          the paper's "small fixed threshold" under which the heap is
          considered full. *)
  los_threshold : int option;
      (** Large-object-space threshold in words: objects at least this
          big are allocated as {e pinned} single-object increments on a
          dedicated highest belt — never copied, reclaimed when
          unreachable at collections whose plan reaches them. [None]
          disables the LOS (the paper's GCTk had none; this is the
          extension its S5 discusses). *)
  barrier : barrier;  (** pointer-tracking mechanism *)
  policy : string option;
      (** Explicit policy selection, as the raw ["name[:arg]"] spec
          from [+policy:...]. [None] selects the default for the
          configuration's [order] ([Lowest_belt] -> "beltway",
          [Global_fifo] -> "older-first"). Resolved against
          [Policy.registry] by [Policy.resolve]; [Config] itself never
          interprets it. *)
  strategy : string option;
      (** Explicit reclamation-strategy selection from [+strategy:NAME].
          [None] selects the default copying strategy. Resolved against
          [Strategy.registry] by [Strategy.resolve]; [Config] itself
          never interprets it. *)
}

val validate : t -> (t, string) result
(** Check internal consistency (e.g. the nursery filter's soundness
    conditions); normalises nothing. *)

(** {2 Named configurations (paper S3.1, S3.2)} *)

val semi_space : t
(** BSS: one belt, one whole-heap increment. *)

val appel : t
(** The Appel-style two-generation comparator (half-heap reserve, as in
    GCTk's generational collectors). *)

val beltway_appel : t
(** BA2 = Beltway 100.100: the Beltway configuration equivalent to
    Appel (dynamic reserve degenerates to the same discipline). *)

val appel3 : t
(** Beltway 100.100.100: three-generation Appel-style. *)

val fixed_nursery : pct:int -> t
(** Fixed-size nursery generational collector; [pct] is the nursery's
    share of usable memory. *)

val bofm : pct:int -> t
(** Older-first mix: one belt, increments of [pct], allocation and
    copy both to the back. *)

val bof : pct:int -> t
(** Older-first: allocation belt A and copy belt C with window
    increments of [pct]; flips when A empties. *)

val beltway_xx : x:int -> t
(** Beltway X.X (incomplete when [x < 100]). *)

val beltway_xx100 : x:int -> t
(** Beltway X.X.100 (complete; third whole-heap belt). *)

val beltway_xy : x:int -> y:int -> t
(** The generalised two-belt Beltway X.Y. *)

(** {2 Command-line syntax} *)

val parse : string -> (t, string) result
(** Accepted forms (case-insensitive):
    - ["ss"], ["bss"] — semi-space
    - ["appel"], ["ba2"] — Appel comparator
    - ["appel3"] — three-generation Appel
    - ["fixed:N"] — fixed nursery of N%%
    - ["ofm:N"], ["bofm:N"] — older-first mix
    - ["of:N"], ["bof:N"] — older-first
    - ["X.Y"] — two-belt Beltway (e.g. ["25.25"], ["100.100"])
    - ["X.Y.100"] — complete Beltway (e.g. ["25.25.100"])
    plus option suffixes, each introduced by [+]:
    ["+nofilter"], ["+filter"], ["+ttd:FRAMES"], ["+remtrig:N"],
    ["+halfreserve"], ["+dynreserve"], ["+minuseful:N"],
    ["+los:WORDS"] (large object space threshold),
    ["+cards"] / ["+remsets"] (pointer-tracking mechanism),
    ["+policy:NAME[:ARG]"] (explicit policy-registry selection, e.g.
    ["+policy:sweep:8"]; see [Policy.registry]),
    ["+strategy:NAME"] (reclamation-strategy selection, e.g.
    ["+strategy:marksweep"]; see [Strategy.registry]).
    E.g. ["25.25.100+remtrig:100000"] or ["appel+los:256"]. *)

val to_string : t -> string
(** The label (round-trips through {!parse} for named forms). *)

val resolve_bound : t -> heap_frames:int -> bound -> int option
(** Frames for a bound at a given heap size: [None] for [Whole_heap];
    [Pct x] resolves to [max 1 (heap * x / (100 + x))] under a dynamic
    reserve (x%% of usable memory left after one increment of reserve)
    and [max 1 (heap/2 * x / 100)] under a half reserve. *)

val pp : Format.formatter -> t -> unit
