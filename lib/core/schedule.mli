(** The collection schedule: when to collect, and what.

    The schedule turns the configuration's policy knobs into concrete
    plans:

    - {e plan shape}: a plan is always the downward closure, in collect
      stamp order, of a chosen target increment — every live increment
      stamped no later than the target is collected with it. This is
      what makes independent increment collection sound: pointers into
      the plan from outside it are exactly the remembered ones.
    - {e target choice}: [Lowest_belt] configurations pick the front
      increment of the lowest belt whose front is worth collecting
      (generational / Beltway behaviour: prefer young, FIFO within a
      belt); [Global_fifo] configurations pick the globally oldest
      increment (semi-space, older-first).
    - {e feasibility}: if the chosen plan's evacuation cannot fit in the
      free frames, the schedule degrades to a lower-belt target; the
      dynamic copy reserve guarantees at least the nursery plan fits.
    - {e BOF flip}: when the allocation belt empties, the belts swap
      roles and the epoch advances before allocation resumes.

    [prepare_alloc] is the mutator-facing entry point: after it
    returns, the nursery increment can satisfy the requested bump
    allocation. It runs the trigger cascade (nursery bound, remset
    threshold, time-to-die split, heap-full) and raises
    [State.Out_of_memory] when a full cascade cannot make room — the
    analogue of a benchmark failing at a heap size in the paper. *)

val nursery : State.t -> Increment.t
(** The open nursery increment, creating one (flipping belts first if
    the configuration flips and the allocation belt is empty). *)

val choose_plan : State.t -> reason:Gc_stats.reason -> Collector.plan option
(** Select a feasible plan per policy; [None] when nothing is
    collectible (empty heap). The plan's [emergency] flag is set when
    no candidate passed the conservative reserve test. *)

val collect_now : State.t -> reason:Gc_stats.reason -> Gc_stats.collection option
(** Choose a plan and run it. *)

val full_collect : State.t -> Gc_stats.collection option
(** Collect everything (closure of the highest-stamped increment).
    Exposed for tests and for complete configurations' last resort;
    respects feasibility (may raise [State.Out_of_memory]). *)

val prepare_alloc : State.t -> size:int -> Increment.t
(** Make room for a [size]-word bump allocation in the nursery and
    return the (open, non-full) nursery increment.
    @raise State.Out_of_memory when the heap is too small.
    @raise Invalid_argument if [size] exceeds a frame. *)

val prepare_alloc_in : State.t -> belt:int -> size:int -> Increment.t
(** Make room for a pretenured [size]-word bump allocation on a higher
    belt (segregation by allocation site, paper S5) and return that
    belt's open increment. Only the heap-full and remset triggers
    apply.
    @raise Invalid_argument for belt 0 (use {!prepare_alloc}), an
    out-of-range belt, or an oversized request.
    @raise State.Out_of_memory when the heap is too small. *)

val alloc_large : State.t -> size:int -> Increment.t
(** Allocate a [size]-word pinned large object on the LOS belt, running
    the collection cascade first if the frames it needs would eat into
    the copy reserve. Returns the new single-object increment.
    @raise State.Out_of_memory when the heap is too small.
    @raise Invalid_argument when the configuration has no LOS. *)
