(** The collection schedule: the mechanical interpreter of the
    installed {!State.policy}.

    The schedule owns what is invariant across collectors, and asks
    the policy for everything else:

    - {e plan shape} (schedule): a plan is always the downward closure,
      in collect stamp order, of a chosen target increment — every
      live increment stamped no later than the target is collected
      with it. This is what makes independent increment collection
      sound: pointers into the plan from outside it are exactly the
      remembered ones.
    - {e target choice} (policy [target]): candidates in decreasing
      preference order — lowest-belt for generational/Beltway
      policies, globally oldest for older-first, anything a new
      registry entry likes.
    - {e feasibility} (schedule): if the chosen plan's evacuation
      cannot fit in the free frames, the schedule degrades along the
      policy's remaining candidates, then falls back to an emergency
      plan.
    - {e trigger cascade} (policy [alloc_trigger] and friends): the
      policy returns an {!State.alloc_action} verdict; the schedule
      executes it (collect, grant a frame, open another allocation
      window, split the nursery).
    - {e nursery refresh} (policy [refresh_nursery]): run before a new
      nursery increment is opened — BOF belt flipping lives there.

    [prepare_alloc] is the mutator-facing entry point: after it
    returns, the nursery increment can satisfy the requested bump
    allocation. It raises [State.Out_of_memory] when a full cascade
    cannot make room — the analogue of a benchmark failing at a heap
    size in the paper. *)

val nursery : State.t -> Increment.t
(** The open nursery increment, creating one (running the policy's
    nursery refresh first when there is no open increment). *)

val choose_plan : State.t -> reason:Gc_stats.reason -> Collector.plan option
(** Select a feasible plan per policy; [None] when nothing is
    collectible (empty heap). The plan's [emergency] flag is set when
    no candidate passed the conservative reserve test. *)

val collect_now : State.t -> reason:Gc_stats.reason -> Gc_stats.collection option
(** Choose a plan and run it. *)

val full_collect : State.t -> Gc_stats.collection option
(** Collect everything (closure of the highest-stamped increment).
    Exposed for tests and for complete configurations' last resort;
    respects feasibility (may raise [State.Out_of_memory]). *)

val prepare_alloc : State.t -> size:int -> Increment.t
(** Make room for a [size]-word bump allocation in the nursery and
    return the (open, non-full) nursery increment.
    @raise State.Out_of_memory when the heap is too small.
    @raise Invalid_argument if [size] exceeds a frame. *)

val prepare_alloc_in : State.t -> belt:int -> size:int -> Increment.t
(** Make room for a pretenured [size]-word bump allocation on a higher
    belt (segregation by allocation site, paper S5) and return that
    belt's open increment. Only the heap-full and remset triggers
    apply.
    @raise Invalid_argument for belt 0 (use {!prepare_alloc}), an
    out-of-range belt, or an oversized request.
    @raise State.Out_of_memory when the heap is too small. *)

val alloc_large : State.t -> size:int -> Increment.t
(** Allocate a [size]-word pinned large object on the LOS belt, running
    the collection cascade first if the frames it needs would eat into
    the copy reserve. Returns the new single-object increment.
    @raise State.Out_of_memory when the heap is too small.
    @raise Invalid_argument when the configuration has no LOS. *)
