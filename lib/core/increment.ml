module Vec = Beltway_util.Vec

type t = {
  id : int;
  mutable belt : int;
  mutable stamp : int;
  frames : int Vec.t;
  frame_used : int Vec.t;
  mutable cursor : Addr.t;
  mutable limit : Addr.t;
  mutable words_used : int;
  mutable objects : int;
  bound_frames : int option;
  mutable sealed : bool;
  pinned : bool;
  mutable in_plan : bool;
  mutable gc_mark : bool;
  free_list : int Vec.t;
  mutable free_word_count : int;
}

type pos = { mutable fi : int; mutable addr : Addr.t }

let create ~id ~belt ~stamp ~bound_frames =
  {
    id;
    belt;
    stamp;
    frames = Vec.create ~dummy:0 ();
    frame_used = Vec.create ~dummy:0 ();
    cursor = Addr.null;
    limit = Addr.null;
    words_used = 0;
    objects = 0;
    bound_frames;
    sealed = false;
    pinned = false;
    in_plan = false;
    gc_mark = false;
    free_list = Vec.create ~dummy:0 ();
    free_word_count = 0;
  }

(* A pinned (large-object-space) increment: exactly one object of
   [size] words laid out across [frames] *contiguous* frames. Pinned
   increments are never copied and never receive further allocation. *)
let create_pinned ~id ~belt ~stamp ~frames:frame_list mem ~size =
  let t =
    {
      id;
      belt;
      stamp;
      frames = Vec.create ~dummy:0 ();
      frame_used = Vec.create ~dummy:0 ();
      cursor = Addr.null;
      limit = Addr.null;
      words_used = size;
      objects = 1;
      bound_frames = None;
      sealed = true;
      pinned = true;
      in_plan = false;
      gc_mark = false;
      free_list = Vec.create ~dummy:0 ();
      free_word_count = 0;
    }
  in
  let fw = Memory.frame_words mem in
  let n = List.length frame_list in
  List.iteri
    (fun i f ->
      Vec.push t.frames f;
      (* Every frame fully used except possibly the last. *)
      Vec.push t.frame_used (if i < n - 1 then fw else size - ((n - 1) * fw)))
    frame_list;
  (match frame_list with
  | first :: _ ->
    t.cursor <- Memory.frame_base mem first + size;
    t.limit <- t.cursor
  | [] -> invalid_arg "Increment.create_pinned: no frames");
  t

let base_object t mem =
  if not t.pinned then invalid_arg "Increment.base_object: not pinned";
  Memory.frame_base mem (Vec.get t.frames 0)

let frame_count t = Vec.length t.frames
let occupancy_frames t = Vec.length t.frames
let words_used t = t.words_used

let wasted_words t mem =
  (frame_count t * Memory.frame_words mem) - t.words_used

let at_bound t =
  match t.bound_frames with None -> false | Some b -> frame_count t >= b

let retire_current_frame t mem =
  (* Record how much of the frame the bump pointer actually used. *)
  if frame_count t > 0 then begin
    let base = Memory.frame_base mem (Vec.top t.frames) in
    Vec.push t.frame_used (t.cursor - base)
  end

let add_frame t mem frame =
  if t.sealed then invalid_arg "Increment.add_frame: sealed";
  if at_bound t then invalid_arg "Increment.add_frame: at bound";
  retire_current_frame t mem;
  Vec.push t.frames frame;
  t.cursor <- Memory.frame_base mem frame;
  t.limit <- t.cursor + Memory.frame_words mem

(* The collector's and allocator's bump path: [Addr.null] for "does not
   fit" keeps it allocation-free (no [option] cell per object). *)
let[@inline] bump_or_null t ~size =
  if (not t.sealed) && t.cursor <> Addr.null && t.cursor + size <= t.limit then begin
    let addr = t.cursor in
    t.cursor <- t.cursor + size;
    t.words_used <- t.words_used + size;
    t.objects <- t.objects + 1;
    addr
  end
  else Addr.null

let try_bump t ~size =
  let addr = bump_or_null t ~size in
  if addr = Addr.null then None else Some addr

(* Roll back the most recent bump — the parallel collector's
   lost-forwarding-race path, where a speculative copy must be
   discarded. Sound only immediately after the matching
   [bump_or_null], with no intervening allocation or frame grant in
   this (domain-private) increment; the cursor check enforces that. *)
let unbump t ~addr ~size =
  if t.cursor <> addr + size then
    invalid_arg "Increment.unbump: not the most recent allocation";
  t.cursor <- addr;
  t.words_used <- t.words_used - size;
  t.objects <- t.objects - 1

let seal t = t.sealed <- true

(* ------------------------------------------------------------------ *)
(* Free-list reallocation (mark-sweep strategy). Each hole left by a
   swept object run is a *filler object* in the heap — even header
   [(words - header_words) lsl 1], every payload word an odd immediate
   — so the object stream stays walkable, and the free list is just an
   index over those fillers: flat (address, words) pairs. First-fit
   with a remainder rule: a hole may be taken exactly, or split
   leaving at least [header_words] words for the remainder filler
   (1-word remainders cannot be represented, so such holes are
   skipped for that size). *)

let clear_free_list t =
  Vec.clear t.free_list;
  t.free_word_count <- 0

let push_free t ~addr ~words =
  Vec.push t.free_list addr;
  Vec.push t.free_list words;
  t.free_word_count <- t.free_word_count + words

let free_words t = t.free_word_count

let fits_free t ~size =
  let n = Vec.length t.free_list in
  let i = ref 0 in
  let found = ref false in
  while (not !found) && !i < n do
    let words = Vec.get t.free_list (!i + 1) in
    if words = size || words >= size + Object_model.header_words then
      found := true
    else i := !i + 2
  done;
  !found

let fit_or_null t mem ~size =
  let n = Vec.length t.free_list in
  let i = ref 0 in
  let addr = ref Addr.null in
  while !addr = Addr.null && !i < n do
    let a = Vec.get t.free_list !i in
    let words = Vec.get t.free_list (!i + 1) in
    if words = size then begin
      (* Exact fit: drop the pair (swap-remove keeps the vec dense). *)
      let last = Vec.length t.free_list - 2 in
      Vec.set t.free_list !i (Vec.get t.free_list last);
      Vec.set t.free_list (!i + 1) (Vec.get t.free_list (last + 1));
      Vec.truncate t.free_list last;
      addr := a
    end
    else if words >= size + Object_model.header_words then begin
      (* Split: the remainder stays a filler object in place. *)
      let rem = words - size in
      Memory.set mem (a + size) ((rem - Object_model.header_words) lsl 1);
      Memory.fill mem ~dst:(a + size + 1) ~len:(rem - 1) 1;
      Vec.set t.free_list !i (a + size);
      Vec.set t.free_list (!i + 1) rem;
      t.objects <- t.objects + 1;
      addr := a
    end
    else i := !i + 2
  done;
  if !addr <> Addr.null then begin
    t.free_word_count <- t.free_word_count - size;
    (* The hole's words are odd immediates; the allocation contract is
       zeroed (null-field) memory, like a fresh bump. *)
    Memory.fill mem ~dst:!addr ~len:size 0
  end;
  !addr

(* Bump first (the common case, identical to the copying allocator),
   then fall back to the free list; [Addr.null] when neither fits. *)
let alloc_or_null t mem ~size =
  let addr = bump_or_null t ~size in
  if addr <> Addr.null then addr
  else if t.free_word_count >= size && not t.sealed then
    fit_or_null t mem ~size
  else Addr.null

(* Used words of frame [fi]: retired frames have a recorded extent; the
   frame under the cursor extends to the cursor. *)
let used_of_frame t mem fi =
  if fi < Vec.length t.frame_used then Vec.get t.frame_used fi
  else if fi = frame_count t - 1 && t.cursor <> Addr.null then
    t.cursor - Memory.frame_base mem (Vec.get t.frames fi)
  else 0

let scan_pos t = { fi = frame_count t - 1; addr = t.cursor }
let start_pos (_ : t) = { fi = 0; addr = Addr.null }

(* Normalise a position: ensure it points at a real object or the
   frontier. A fresh increment (no frames) normalises to the frontier
   trivially. *)
let normalise t mem pos =
  if frame_count t = 0 then ()
  else begin
    if pos.addr = Addr.null then begin
      pos.fi <- 0;
      pos.addr <- Memory.frame_base mem (Vec.get t.frames 0)
    end;
    (* Skip over frame seams: if we reached the used extent of the
       current frame and further frames exist, hop to the next base. *)
    let continue = ref true in
    while !continue do
      let base = Memory.frame_base mem (Vec.get t.frames pos.fi) in
      let extent = base + used_of_frame t mem pos.fi in
      if pos.addr >= extent && pos.fi < frame_count t - 1 then begin
        pos.fi <- pos.fi + 1;
        pos.addr <- Memory.frame_base mem (Vec.get t.frames pos.fi)
      end
      else continue := false
    done
  end

let scan_pending t mem pos =
  (not t.pinned)
  && frame_count t > 0
  && begin
       normalise t mem pos;
       pos.fi < frame_count t - 1 || pos.addr < t.cursor
     end

let scan_step t mem pos =
  if not (scan_pending t mem pos) then
    invalid_arg "Increment.scan_step: nothing pending";
  (* After normalisation pos.addr points at an object header. *)
  let addr = pos.addr in
  let size = Object_model.size_of mem addr in
  pos.addr <- pos.addr + size;
  normalise t mem pos;
  addr

(* [scan_pending] + [scan_step] fused: one normalisation per object
   instead of three (the Cheney drain calls this per copied object).
   The object's size comes straight off its header word — objects in a
   destination increment are never forwarded, and the increment's
   frames are live, so the unchecked load is sound. *)
let scan_next t mem pos =
  if t.pinned || frame_count t = 0 then Addr.null
  else begin
    normalise t mem pos;
    if pos.fi < frame_count t - 1 || pos.addr < t.cursor then begin
      let addr = pos.addr in
      pos.addr <-
        addr + (Memory.unsafe_get mem addr lsr 1) + Object_model.header_words;
      addr
    end
    else Addr.null
  end

let iter_objects t mem f =
  if t.pinned then f (base_object t mem)
  else begin
    let pos = start_pos t in
    while scan_pending t mem pos do
      f (scan_step t mem pos)
    done
  end
