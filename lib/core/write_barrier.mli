(** The frame-based unidirectional write barrier (paper Figure 4).

    Executed on every pointer store. The fast path is a shift, a
    compare and two stamp loads; the slow path inserts the *slot
    address* into the remembered set for the (source frame, target
    frame) pair. A pointer is remembered only when the target frame
    would be collected sooner than the source frame
    ([collect(t) < collect(s)]), which makes the barrier
    unidirectional with respect to frames; intra-frame — and, because
    an increment's frames share a stamp, intra-increment — pointers
    are never remembered.

    The optional nursery-source filter (S3.3.2) skips even the stamp
    comparison when the source lies in the single nursery increment,
    eliminating the remset work for type-object (TIB) initialisation
    writes; it is sound exactly because under belt-major ordering the
    nursery's stamp is minimal, so the predicate could never hold. *)

val record : State.t -> slot:Addr.t -> target:Addr.t -> unit
(** [record st ~slot ~target]: the mutator stored a reference to
    [target] into the heap word at [slot]. Must be called *after* the
    store (entries are validated by re-reading slots at collection).
    Never called for null/immediate stores. *)

val would_remember : State.t -> src_frame:int -> tgt_frame:int -> bool
(** The bare predicate (exposed for tests and the collector's re-record
    path): true iff a pointer from [src_frame] to [tgt_frame] must be
    remembered. *)

val re_remember :
  State.t -> use_cards:bool -> slot:Addr.t -> src_frame:int -> tgt_frame:int -> unit
(** The collector's re-record step for a scanned surviving slot:
    applies {!would_remember} and, when it holds, marks the source
    frame's card or inserts the slot into the remembered set according
    to [use_cards] (the policy's barrier discipline, hoisted out of
    the scan loop). Both the sequential and parallel drains funnel
    through this. *)
