(** Collection triggers (paper S3.3.3).

    Beltway collectors do not only collect when the heap is full; these
    predicates let the schedule preempt identifiable future problems:

    - {e nursery trigger}: the single nursery increment reached its
      bound — collect young objects now;
    - {e remset trigger}: remembered sets grew past a threshold —
      entries are collection roots, so survival rate and scan time
      climb with them;
    - {e time-to-die trigger}: within TTD bytes of heap-full, redirect
      allocation into a second nursery increment so the most recently
      allocated objects are not collected before they have had [TTD]
      bytes of allocation to die.

    These are the {e mechanisms}; the {e order} in which they are
    consulted, and what each verdict means, is the installed policy's
    trigger cascade ([State.policy.alloc_trigger] and friends, built
    by [Policy] from these predicates). The schedule never calls the
    predicates directly any more — it interprets the policy's
    {!State.alloc_action}. *)

type reason = Gc_stats.reason =
  | Heap_full
  | Nursery
  | Remset
  | Forced
  | Full
(** Re-export of {!Gc_stats.reason}: the closed set of collection
    causes. The trigger predicates below decide them; the schedule
    stamps the chosen one into the plan and the collection log. *)

val fired : State.t -> reason:reason -> unit
(** Report that a trigger decided a collection (dispatches
    [hooks.on_trigger]; free when no hooks are installed). The schedule
    calls this once per triggered collection, before planning. *)

val nursery_full : State.t -> size:int -> bool
(** The open nursery increment cannot accept [size] more words without
    exceeding its bound. *)

val remset_due : State.t -> bool
(** The configured remset threshold is exceeded. *)

val heap_full : State.t -> incoming_frames:int -> bool
(** Granting [incoming_frames] more frames would eat into the copy
    reserve. *)

val ttd_due : State.t -> bool
(** The time-to-die window has been reached and the nursery should be
    split (only when a TTD is configured and the nursery is still a
    single increment). *)
