let would_remember st ~src_frame ~tgt_frame =
  src_frame <> tgt_frame
  && Frame_table.stamp st.State.ftab tgt_frame
     < Frame_table.stamp st.State.ftab src_frame

(* The collector's re-record path, shared by the sequential and
   parallel drains: a surviving slot still holds an interesting
   pointer under the destination's new stamps, so record it in
   whichever bookkeeping the policy's barrier discipline uses. *)
let[@inline] re_remember st ~use_cards ~slot ~src_frame ~tgt_frame =
  if
    src_frame <> tgt_frame
    && Frame_table.stamp st.State.ftab tgt_frame
       < Frame_table.stamp st.State.ftab src_frame
  then begin
    if use_cards then Card_table.mark st.State.cards ~frame:src_frame
    else Remset.insert st.State.remsets ~src_frame ~tgt_frame ~slot
  end

(* Is the frame part of the open nursery increment? Used only when the
   policy's barrier discipline enables the filter (single-increment
   nursery). *)
let in_nursery st frame =
  match Belt.back st.State.belts.(0) with
  | None -> false
  | Some inc -> Frame_table.incr_of st.State.ftab frame = inc.Increment.id

(* Out-of-line remembering tail (remset insert + hooks): keeps the
   inline part — filter and stamp compare — free of closure
   definitions, which the non-flambda inliner refuses to inline. *)
let remember_slow st stats ~s ~t ~slot =
  stats.Gc_stats.barrier_slow <- stats.Gc_stats.barrier_slow + 1;
  Remset.insert st.State.remsets ~src_frame:s ~tgt_frame:t ~slot;
  match st.State.hooks with
  | [] -> ()
  | hs ->
    let entries = Remset.total_entries st.State.remsets in
    List.iter (fun (h : State.hooks) -> h.State.on_barrier_slow ~entries) hs

let[@inline] record st ~slot ~target =
  let stats = st.State.stats in
  stats.Gc_stats.barrier_ops <- stats.Gc_stats.barrier_ops + 1;
  let frame_log = Memory.frame_log st.State.mem in
  let s = slot lsr frame_log in
  let t = target lsr frame_log in
  (* The barrier discipline is policy *data*, matched per store — never
     a closure dispatch on this, the hottest path in the system. *)
  match st.State.policy.State.barrier with
  | State.Barrier_cards ->
    (* Unconditional card marking: no stamp comparison at all; the
       collector pays by scanning dirty frames. *)
    Card_table.mark st.State.cards ~frame:s;
    stats.Gc_stats.barrier_fast <- stats.Gc_stats.barrier_fast + 1
  | State.Barrier_remsets { nursery_filter } ->
    if nursery_filter && in_nursery st s then
      stats.Gc_stats.barrier_filtered <- stats.Gc_stats.barrier_filtered + 1
    else begin
      (* The unidirectional condition over the flat stamp table: two
         array reads and a compare on the taken (fast) path. *)
      let ftab = st.State.ftab in
      if s <> t && Frame_table.stamp ftab t < Frame_table.stamp ftab s then
        remember_slow st stats ~s ~t ~slot
      else stats.Gc_stats.barrier_fast <- stats.Gc_stats.barrier_fast + 1
    end
