let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_object st addr =
  let mem = st.State.mem in
  match Object_model.forwarded mem addr with
  | Some f -> err "object %#x carries a forwarding pointer (to %#x) outside GC" addr f
  | None ->
    let n = Object_model.nfields mem addr in
    if n < 0 || n > Object_model.max_fields mem then
      err "object %#x has absurd field count %d" addr n
    else Ok n

let check_ref st ~what addr =
  if Boot_space.contains st.State.boot addr then Ok ()
  else begin
    let frame = State.frame_of_addr st addr in
    if not (Memory.is_live st.State.mem frame) then
      err "%s references %#x in dead frame %d" what addr frame
    else begin
      match State.inc_of_frame st frame with
      | None -> err "%s references %#x in unowned frame %d" what addr frame
      | Some _ ->
        let* _ = check_object st addr in
        Ok ()
    end
  end

let check_roots st =
  let bad = ref (Ok ()) in
  Roots.iter st.State.roots (fun v ->
      if Result.is_ok !bad && Value.is_ref v then
        bad := check_ref st ~what:"root slot" (Value.to_addr v));
  !bad

let check_belt_fifo st =
  Array.to_list st.State.belts
  |> List.fold_left
       (fun acc belt ->
         let* () = acc in
         let prev = ref min_int in
         let res = ref (Ok ()) in
         Belt.iter belt (fun inc ->
             if Result.is_ok !res then
               if inc.Increment.stamp < !prev then
                 res :=
                   err "belt %d violates FIFO stamp order at increment %d"
                     (Belt.index belt) inc.Increment.id
               else prev := inc.Increment.stamp);
         !res)
       (Ok ())

let check_frames st =
  List.fold_left
    (fun acc (inc : Increment.t) ->
      let* () = acc in
      Beltway_util.Vec.fold
        (fun acc frame ->
          let* () = acc in
          if Frame_table.incr_of st.State.ftab frame <> inc.Increment.id then
            err "frame %d not attributed to its increment %d" frame inc.Increment.id
          else if Frame_table.stamp st.State.ftab frame <> inc.Increment.stamp then
            err "frame %d stamp disagrees with increment %d" frame inc.Increment.id
          else Ok ())
        (Ok ()) inc.Increment.frames)
    (Ok ()) (State.live_increments st)

let check_objects_and_remsets gc =
  let st = Gc.state gc in
  let mem = st.State.mem in
  let incs = State.live_increments st in
  (* The oracle's reachability table costs a full heap trace; an empty
     heap (every increment object-free) has nothing to check. *)
  if List.for_all (fun (i : Increment.t) -> i.Increment.objects = 0) incs then Ok ()
  else begin
  let reach = Oracle.reachable gc in
  List.fold_left
    (fun acc (inc : Increment.t) ->
      let* () = acc in
      let res = ref (Ok ()) in
      (try
         Increment.iter_objects inc mem (fun obj ->
             if Result.is_ok !res then begin
               match check_object st obj with
               | Error e -> res := Error e
               | Ok _ ->
                 Object_model.iter_ref_slots mem obj (fun slot ->
                     if Result.is_ok !res then begin
                       let v = Memory.get mem slot in
                       let tgt = Value.to_addr v in
                       (match
                          check_ref st
                            ~what:(Printf.sprintf "field at %#x of object %#x" slot obj)
                            tgt
                        with
                       | Error e -> res := Error e
                       | Ok () ->
                         (* Remset sufficiency for reachable sources. *)
                         if Hashtbl.mem reach obj then begin
                           let s = State.frame_of_addr st slot in
                           let t = State.frame_of_addr st tgt in
                           let covered =
                             match st.State.policy.State.barrier with
                             | State.Barrier_remsets _ ->
                               Remset.mem_slot st.State.remsets ~src_frame:s
                                 ~tgt_frame:t ~slot
                             | State.Barrier_cards ->
                               Card_table.is_dirty st.State.cards ~frame:s
                           in
                           if
                             (not (Boot_space.contains st.State.boot tgt))
                             && Write_barrier.would_remember st ~src_frame:s
                                  ~tgt_frame:t
                             && not covered
                           then
                             res :=
                               err
                                 "unremembered interesting pointer: slot %#x (frame \
                                  %d, stamp %d) -> %#x (frame %d, stamp %d)"
                                 slot s
                                 (Frame_table.stamp st.State.ftab s)
                                 tgt t
                                 (Frame_table.stamp st.State.ftab t)
                         end)
                     end)
             end)
       with Invalid_argument e ->
         res :=
           err "heap walk failed in increment %d (belt %d, stamp %d): %s"
             inc.Increment.id inc.Increment.belt inc.Increment.stamp e);
      !res)
    (Ok ()) incs
  end

let check_accounting st =
  let counted =
    List.fold_left
      (fun acc (i : Increment.t) -> acc + Increment.occupancy_frames i)
      0 (State.live_increments st)
  in
  if counted <> st.State.frames_used then
    err "frame accounting drift: increments hold %d frames, state says %d" counted
      st.State.frames_used
  else Ok ()

let check gc =
  (* A sufficiently corrupt heap (dangling references into dead frames,
     clobbered headers) can make the traversal itself trap; that is a
     detection, not a checker failure. *)
  try
    let st = Gc.state gc in
    let* () = check_roots st in
    let* () = check_belt_fifo st in
    let* () = check_frames st in
    let* () = check_accounting st in
    check_objects_and_remsets gc
  with Invalid_argument e -> err "heap traversal trapped: %s" e

let check_exn gc = match check gc with Ok () -> () | Error e -> failwith e
