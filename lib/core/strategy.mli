(** The reclamation-strategy registry.

    A [State.strategy] decides {e how} the increments of a plan are
    reclaimed — Cheney evacuation (the paper's collector), bitmap
    mark-sweep, or threaded mark-compact — orthogonally to the
    [Policy], which decides what to collect and when. This module
    constructs the strategy records, owns the registry behind
    [+strategy:NAME] / [--strategy NAME], and mirrors [Policy]'s
    registry surface; [Collector] interprets the installed record. *)

val copying : State.strategy
(** Cheney evacuation — [State.copying_strategy], the default.
    Byte-identical to the pre-strategy collector for every existing
    configuration, including under [--gc-domains]. *)

val marksweep : State.strategy
(** Bitmap mark-sweep: a side mark bitmap ([Memory.ensure_marks]) plus
    an explicit mark stack traces the plan in place; dead runs become
    filler objects indexed by per-increment free lists
    ([Increment.fit_or_null]); surviving increments are {e logically}
    promoted (restamped onto their destination belt without moving a
    word). Needs zero copy reserve. *)

val markcompact : State.strategy
(** Threaded (Jonkers) mark-compact: the same mark phase, then pointer
    threading and a slide pass over the increment's own frames using
    [Memory.blit]; empty tail frames are freed. Needs zero copy
    reserve. *)

type info = {
  key : string;  (** registry name *)
  strategy : State.strategy;
  summary : string;  (** one-line description for [--strategy list] *)
  exemplar_config : string;  (** a config string that exercises it *)
}

val infos : info list
val registry : (string * State.strategy) list
val names : string list

val describe : string -> string
(** Summary of a registered strategy.
    @raise Invalid_argument on an unknown key. *)

val exemplar : string -> string
(** Exemplar configuration of a registered strategy.
    @raise Invalid_argument on an unknown key. *)

val name : State.strategy -> string

val default_name : string
(** ["copying"]: the strategy selected when the configuration names
    none. *)

val resolve : Config.t -> (State.strategy, string) result
(** The strategy a configuration selects: [cfg.strategy] looked up in
    the registry, or the default copying strategy when unset. *)

val resolve_exn : Config.t -> State.strategy
(** {!resolve}, raising [Invalid_argument] on an unknown name. *)

val check_domains : State.strategy -> gc_domains:int -> (unit, string) result
(** Whether the strategy supports sharding collections over
    [gc_domains] domains; [Error message] for a non-parallel strategy
    asked to run with [gc_domains > 1]. [Gc.create] and
    [Gc.set_gc_domains] enforce it. *)
