(* One partially filled frame per destination belt — per GC domain,
   since the parallel drain gives every domain its own private open
   destination increment on each belt — plus slack. At one domain this
   is the original [nbelts + 2]. *)
let pad st = (Array.length st.State.belts * st.State.gc_domains) + 2

let dynamic_frames st =
  (* Floor: the largest bounded increment size — a fresh increment of
     that size could always fill and require evacuation. *)
  let floor_frames =
    Array.fold_left
      (fun acc bound -> match bound with Some b -> max acc b | None -> acc)
      0 st.State.belt_bounds
  in
  let nbelts = Array.length st.State.belts in
  (* Top-two occupancies among increments promoting into each belt, so
     an increment's own contribution can be excluded from its own
     potential (otherwise the semi-space increment would count itself
     as its own copy source and halve utilisation). *)
  let in_best = Array.make nbelts (0, -1) in
  let in_second = Array.make nbelts 0 in
  List.iter
    (fun (inc : Increment.t) ->
      if not inc.Increment.pinned then begin
        let d = State.dest_belt st inc.Increment.belt in
        let occ = Increment.occupancy_frames inc in
        let best_occ, _ = in_best.(d) in
        if occ > best_occ then begin
          in_second.(d) <- best_occ;
          in_best.(d) <- (occ, inc.Increment.id)
        end
        else if occ > in_second.(d) then in_second.(d) <- occ
      end)
    (State.live_increments st);
  let incoming belt ~excluding =
    let best_occ, best_id = in_best.(belt) in
    if best_id = excluding then in_second.(belt) else best_occ
  in
  let potential =
    List.fold_left
      (fun acc (inc : Increment.t) ->
        if inc.Increment.pinned then acc (* never evacuated *)
        else begin
          let occ = Increment.occupancy_frames inc in
          let p =
            (* Only the back (open) increment of a belt receives copies. *)
            match Belt.back st.State.belts.(inc.Increment.belt) with
            | Some back when back.Increment.id = inc.Increment.id ->
              occ + incoming inc.Increment.belt ~excluding:inc.Increment.id
            | _ -> occ
          in
          max acc p
        end)
      0 (State.live_increments st)
  in
  max floor_frames potential + pad st

(* "Slightly more generous" than half: copied data may not pack as
   well as the original (frame-seam waste), so the fixed reserve
   carries the same pad as the dynamic one. *)
let half_frames st = (st.State.heap_frames / 2) + pad st

(* The dynamic reserve is deliberately NOT capped at half the heap: the
   uncapped formula is what keeps the allocation gate self-limiting —
   while a large unbounded belt dominates occupancy, the reserve tracks
   it, so occupancy can never outgrow the space needed to evacuate it
   (the paper: the reserve "grows until it is finally half of the heap,
   so that the third belt occupancy and the copy reserve are equal in
   size"). *)
(* The installed reclamation strategy owns the reserve: the copying
   strategy delegates to the installed policy's rule (the formulas
   above, verbatim), the in-place strategies need no destination
   frames and return zero. *)
let frames st = st.State.strategy.State.strategy_reserve st
