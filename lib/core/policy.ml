(* Policies are built from the mechanism modules below them: target
   choice over [Belt]/[Increment], trigger predicates from [Trigger],
   reserve rules from [Copy_reserve]. [Schedule], [Write_barrier],
   [Collector] and [Copy_reserve] dispatch through the installed
   record; nothing in them names a collector family. *)

type of_config = Config.t -> (State.policy, string) result

(* ---- target choice ------------------------------------------------- *)

(* Front increments, one per non-empty belt, in belt order. *)
let fronts st = Array.to_list st.State.belts |> List.filter_map Belt.front

let min_stamp_front st =
  fronts st
  |> List.filter (fun (i : Increment.t) -> Increment.occupancy_frames i > 0)
  |> List.fold_left
       (fun acc (i : Increment.t) ->
         match acc with
         | Some (b : Increment.t) when b.Increment.stamp <= i.Increment.stamp -> acc
         | _ -> Some i)
       None

let worthwhile st (i : Increment.t) =
  Increment.occupancy_frames i >= st.State.config.Config.min_useful_frames

(* Global-FIFO target (semi-space, older-first): the globally oldest
   non-empty front. *)
let fifo_target st = Option.to_list (min_stamp_front st)

(* Lowest-belt target (generational / Beltway): the front increment of
   the lowest belt whose front is worth collecting, followed by
   lower-belt fall-backs for feasibility degradation. *)
let lowest_belt_target st =
  (* Empty increments are never useful targets: collecting one frees
     nothing and stalls the cascade. *)
  let fs =
    List.filter (fun (i : Increment.t) -> Increment.occupancy_frames i > 0) (fronts st)
  in
  (* Middle-belt fullness (paper S3.2: "when the higher belt becomes
     full, it collects the oldest increment in the higher belt"): a
     bounded middle belt holding more than two increments' worth is
     full — drain its front now, so garbage flows on to the top belt
     instead of accumulating until the terminal collection can no
     longer be afforded. The paper's steady state for 33.33 — "two
     completely full increments on belt 1" — is exactly this bound. *)
  let nbelts = State.regular_belts st in
  let overflowing =
    List.filter
      (fun (i : Increment.t) ->
        let b = i.Increment.belt in
        b > 0 && b < nbelts - 1
        &&
        match st.State.belt_bounds.(b) with
        | Some x -> Belt.occupancy_frames st.State.belts.(b) > 2 * x
        | None -> false)
      fs
    |> List.rev (* highest such belt first *)
  in
  let first_worthwhile = List.find_opt (worthwhile st) fs in
  let chosen =
    match (overflowing, first_worthwhile) with
    | o :: _, _ -> Some o
    | [], Some i -> Some i
    | [], None -> (
      (* Nothing worthwhile: take the highest non-empty belt (the
         paper's "heap is considered full" case forcing a major
         collection). *)
      match List.rev fs with last :: _ -> Some last | [] -> None)
  in
  match chosen with
  | None -> []
  | Some c ->
    (* Degradation candidates: every front on a belt lower than or
       equal to the chosen one, highest belt first. *)
    List.filter (fun (i : Increment.t) -> i.Increment.belt <= c.Increment.belt) fs
    |> List.rev

let max_stamp_increment st =
  List.fold_left
    (fun acc (i : Increment.t) ->
      match acc with
      | Some (b : Increment.t) when b.Increment.stamp >= i.Increment.stamp -> acc
      | _ -> Some i)
    None (State.live_increments st)

(* ---- shared cascade pieces ----------------------------------------- *)

(* Generational / Beltway cascade, in the order the paper's triggers
   compose: remset threshold, nursery bound, heap-full, time-to-die. *)
let generational_alloc_trigger st ~size =
  if Trigger.remset_due st then State.Alloc_collect Gc_stats.Remset
  else if Trigger.nursery_full st ~size then State.Alloc_collect Gc_stats.Nursery
  else if Trigger.heap_full st ~incoming_frames:1 then
    State.Alloc_collect Gc_stats.Heap_full
  else if Trigger.ttd_due st then State.Alloc_split_nursery
  else State.Alloc_grant

(* FIFO cascade: a nursery at its bound is not a reason to collect
   young objects (there is no "young"); open another window on the
   allocation belt instead, unless the heap is full. *)
let fifo_alloc_trigger st ~size =
  if Trigger.remset_due st then State.Alloc_collect Gc_stats.Remset
  else if Trigger.nursery_full st ~size then
    if Trigger.heap_full st ~incoming_frames:1 then
      State.Alloc_collect Gc_stats.Heap_full
    else State.Alloc_open_nursery
  else if Trigger.heap_full st ~incoming_frames:1 then
    State.Alloc_collect Gc_stats.Heap_full
  else if Trigger.ttd_due st then State.Alloc_split_nursery
  else State.Alloc_grant

(* Pretenured allocation: only the heap-full and remset triggers apply
   — nursery-specific triggers (bound, TTD) govern belt 0 only. *)
let pretenure_trigger st =
  if Trigger.remset_due st then State.Alloc_collect Gc_stats.Remset
  else if Trigger.heap_full st ~incoming_frames:1 then
    State.Alloc_collect Gc_stats.Heap_full
  else State.Alloc_grant

let large_trigger st ~incoming_frames =
  if Trigger.remset_due st then State.Alloc_collect Gc_stats.Remset
  else if Trigger.heap_full st ~incoming_frames then
    State.Alloc_collect Gc_stats.Heap_full
  else State.Alloc_grant

(* ---- configuration plumbing ---------------------------------------- *)

let promote_of_config (cfg : Config.t) =
  let regular = Array.length cfg.Config.belts in
  Array.init regular (fun b ->
      match cfg.Config.belts.(b).Config.promote with
      | Config.Same_belt -> b
      | Config.Next_belt -> if b + 1 < regular then b + 1 else b)

let barrier_of_config (cfg : Config.t) =
  match cfg.Config.barrier with
  | Config.Cards -> State.Barrier_cards
  | Config.Remsets ->
    State.Barrier_remsets { nursery_filter = cfg.Config.nursery_filter }

let reserve_of_config (cfg : Config.t) =
  match cfg.Config.reserve with
  | Config.Half -> Copy_reserve.half_frames
  | Config.Dynamic -> Copy_reserve.dynamic_frames

(* BOF: when the allocation belt has emptied, the belts flip before
   allocation resumes. *)
let refresh_of_config (cfg : Config.t) =
  if cfg.Config.flip then (fun st ->
    if
      Belt.is_empty st.State.belts.(0)
      && not (Belt.is_empty st.State.belts.(1))
    then State.flip_belts st)
  else fun _st -> ()

let belt_major_priority _st ~belt = belt
let epoch_priority st ~belt = st.State.epoch + belt

(* The explicit "name[:arg]" spec carried by the configuration, split. *)
let spec_parts (cfg : Config.t) =
  match cfg.Config.policy with
  | None -> (None, None)
  | Some spec -> (
    match String.index_opt spec ':' with
    | None -> (Some spec, None)
    | Some i ->
      ( Some (String.sub spec 0 i),
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) ))

let no_arg name cfg k =
  match snd (spec_parts cfg) with
  | None -> Ok k
  | Some a -> Error (Printf.sprintf "policy %s takes no argument (got %S)" name a)

(* ---- the registered policies --------------------------------------- *)

let beltway_of cfg =
  no_arg "beltway" cfg
    {
      State.policy_name = "beltway";
      barrier = barrier_of_config cfg;
      promote = promote_of_config cfg;
      stamp_priority = belt_major_priority;
      target = lowest_belt_target;
      reserve_frames = reserve_of_config cfg;
      alloc_trigger = generational_alloc_trigger;
      pretenure_trigger;
      large_trigger;
      refresh_nursery = refresh_of_config cfg;
    }

let older_first_of cfg =
  (* The nursery-source filter assumes the nursery's stamp is globally
     minimal; under epoch stamping an increment surviving a flip can be
     older than the nursery, so the filtered store would have needed a
     remset entry. Config.validate catches filtered Epoch parses; this
     guards the explicit +policy override path. *)
  if cfg.Config.nursery_filter then
    Error "policy older-first: the nursery-source filter is unsound under FIFO order"
  else
    no_arg "older-first" cfg
      {
        State.policy_name = "older-first";
        barrier = barrier_of_config cfg;
        promote = promote_of_config cfg;
        stamp_priority = epoch_priority;
        target = fifo_target;
        reserve_frames = reserve_of_config cfg;
        alloc_trigger = fifo_alloc_trigger;
        pretenure_trigger;
        large_trigger;
        refresh_nursery = refresh_of_config cfg;
      }

(* The collector the old knobs could not express: belt-major Beltway
   scheduling whose every [period]-th collection widens its target to
   the whole heap. It buys completeness for incomplete X.Y
   configurations by *schedule* rather than by a third belt — no knob
   combination could periodically force a full-heap plan. Sound for
   free: any target's downward closure is a sound plan. *)
let sweep_of cfg =
  let period =
    match snd (spec_parts cfg) with
    | None -> Ok 8
    | Some a -> (
      match int_of_string_opt a with
      | Some k when k >= 2 -> Ok k
      | Some k -> Error (Printf.sprintf "policy sweep: period %d must be >= 2" k)
      | None ->
        Error (Printf.sprintf "policy sweep: expected an integer period, got %S" a))
  in
  Result.map
    (fun period ->
      {
        State.policy_name = "sweep";
        barrier = barrier_of_config cfg;
        promote = promote_of_config cfg;
        stamp_priority = belt_major_priority;
        target =
          (fun st ->
            let base = lowest_belt_target st in
            if (Gc_stats.gcs st.State.stats + 1) mod period = 0 then
              match max_stamp_increment st with
              | Some top -> top :: base
              | None -> base
            else base);
        reserve_frames = reserve_of_config cfg;
        alloc_trigger = generational_alloc_trigger;
        pretenure_trigger;
        large_trigger;
        refresh_nursery = refresh_of_config cfg;
      })
    period

(* ---- registry ------------------------------------------------------ *)

type info = {
  key : string;
  of_config : of_config;
  summary : string;
  exemplar_config : string;
}

let infos =
  [
    {
      key = "beltway";
      of_config = beltway_of;
      summary =
        "belt-major generational scheduling: collect the lowest worthwhile \
         belt front (BSS-as-one-belt, Appel, fixed nursery, Beltway X.Y and \
         X.Y.100)";
      exemplar_config = "25.25.100";
    };
    {
      key = "older-first";
      of_config = older_first_of;
      summary =
        "global-FIFO scheduling under epoch stamps: always collect the \
         globally oldest increment (BSS, BOFM, BOF with belt flipping)";
      exemplar_config = "of:25";
    };
    {
      key = "sweep";
      of_config = sweep_of;
      summary =
        "beltway scheduling whose every Nth collection targets the whole \
         heap: completeness by schedule for incomplete X.Y configurations \
         (+policy:sweep:N, default 8)";
      exemplar_config = "25.25+policy:sweep:6";
    };
  ]

let registry : (string * of_config) list =
  List.map (fun i -> (i.key, i.of_config)) infos

let names = List.map (fun i -> i.key) infos

let info_exn key =
  match List.find_opt (fun i -> i.key = key) infos with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Policy: unknown policy %S" key)

let describe key = (info_exn key).summary
let exemplar key = (info_exn key).exemplar_config
let name (p : State.policy) = p.State.policy_name

(* ---- resolution ---------------------------------------------------- *)

let default_name (cfg : Config.t) =
  match cfg.Config.order with
  | Config.Lowest_belt -> "beltway"
  | Config.Global_fifo -> "older-first"

let resolve (cfg : Config.t) =
  let key =
    match fst (spec_parts cfg) with Some n -> n | None -> default_name cfg
  in
  match List.assoc_opt key registry with
  | Some of_config -> of_config cfg
  | None ->
    Error
      (Printf.sprintf "unknown policy %S (registered: %s)" key
         (String.concat ", " names))

let resolve_exn cfg =
  match resolve cfg with
  | Ok p -> p
  | Error e -> invalid_arg ("Policy.resolve: " ^ e)
