(** The dynamic conservative copy reserve (paper S3.3.4).

    All copying collectors hold space in reserve for the survivors of
    the worst-case collection. Classical semi-space and generational
    implementations fix the reserve at half the heap; Beltway computes
    a conservative minimum each time: the larger of the largest
    configured increment size and the largest *potential occupancy* of
    any increment at its next collection — an increment's own
    occupancy plus the maximum occupancy of any other increment the
    collector could copy into it — plus a small pad for frame-seam
    fragmentation ("the copy reserve must be slightly more generous
    because the copied data may not pack as well").

    With a small increment size the reserve stays near one increment;
    as an X.X.100 third belt fills, the reserve grows until it reaches
    half the heap and falls back after that belt is collected,
    "continuously maximizing usable memory". *)

val frames : State.t -> int
(** The reserve in frames, as the installed policy computes it (its
    [reserve_frames] hook, normally {!half_frames} or
    {!dynamic_frames}). Allocation must keep
    [frames_used + incoming + frames st <= heap_frames]. *)

val half_frames : State.t -> int
(** The classic half-heap reserve plus {!pad} — the mechanism behind
    [Config.Half]; exposed for policies to install. *)

val dynamic_frames : State.t -> int
(** The paper's dynamic conservative reserve — the mechanism behind
    [Config.Dynamic]; exposed for policies to install. *)

val pad : State.t -> int
(** The fragmentation pad included in {!frames} (also used by the
    schedule when checking plan feasibility). *)
