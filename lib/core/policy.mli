(** The collector-policy registry: constructing {!State.policy} records
    from configurations.

    The paper's central claim is that one belts-and-increments
    framework acts as every copying collector; this module is where a
    collector {e family} becomes a value. A policy owns the four
    decisions the framework leaves open — target choice, barrier
    discipline, the trigger cascade, and the copy-reserve rule — and
    [Schedule]/[Write_barrier]/[Collector]/[Copy_reserve] dispatch
    through whichever record is installed on the state. [Config] stays
    a pure parser: it selects and parameterises a policy (by [order]
    default or an explicit [+policy:NAME[:ARG]] suffix) but encodes no
    behaviour itself.

    Registering a new collector means adding one entry to
    {!registry}; the schedule, collector internals, figures, benches
    and the [@policy] conformance suite pick it up unchanged. *)

type of_config = Config.t -> (State.policy, string) result
(** A policy constructor: build a policy parameterised by a validated
    configuration, or explain why the combination is unsound (e.g. the
    nursery-source filter under FIFO order). *)

val registry : (string * of_config) list
(** The registered policies, keyed by the name accepted by
    [+policy:NAME] and reported by [--policy list]. *)

val names : string list
(** Registry keys, in registration order. *)

val describe : string -> string
(** One-line human description of a registered policy.
    @raise Invalid_argument for an unknown key. *)

val exemplar : string -> string
(** A representative configuration string that resolves to this policy
    — what the benches, figures and conformance tests run.
    @raise Invalid_argument for an unknown key. *)

val name : State.policy -> string
(** The registry key a policy was built under. *)

val default_name : Config.t -> string
(** The registry key selected when the configuration carries no
    explicit [+policy:] spec: ["beltway"] for [Lowest_belt]
    configurations, ["older-first"] for [Global_fifo]. *)

val resolve : Config.t -> (State.policy, string) result
(** Build the policy the configuration selects (explicit spec or
    {!default_name}), parameterised by its knobs. *)

val resolve_exn : Config.t -> State.policy
(** {!resolve}, raising [Invalid_argument] on error. *)

(** {2 Mechanism pieces}

    Exposed so new policies can be composed from the same parts the
    built-in ones use. *)

val lowest_belt_target : State.t -> Increment.t list
(** Generational / Beltway target choice: the front increment of the
    lowest belt whose front is worth collecting (with middle-belt
    overflow preemption), then lower-belt degradation candidates. *)

val fifo_target : State.t -> Increment.t list
(** Global-FIFO target choice: the globally oldest non-empty front. *)

val max_stamp_increment : State.t -> Increment.t option
(** The highest-stamped live increment — the target whose downward
    closure is the whole heap. *)

val generational_alloc_trigger : State.t -> size:int -> State.alloc_action
(** Remset threshold, nursery bound, heap-full, time-to-die — in that
    order. *)

val fifo_alloc_trigger : State.t -> size:int -> State.alloc_action
(** As {!generational_alloc_trigger}, but a nursery at its bound opens
    another allocation window instead of forcing a collection. *)

val pretenure_trigger : State.t -> State.alloc_action
(** Heap-full and remset triggers only (nursery triggers govern belt 0
    alone). *)

val large_trigger : State.t -> incoming_frames:int -> State.alloc_action
(** Heap-full (accounting for the object's frames) and remset
    triggers. *)

val promote_of_config : Config.t -> int array
(** The per-belt promotion map a configuration's belt array denotes. *)

val barrier_of_config : Config.t -> State.barrier_discipline
val reserve_of_config : Config.t -> State.t -> int
