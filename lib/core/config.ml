type bound = Pct of int | Whole_heap
type promote = Same_belt | Next_belt
type belt_cfg = { bound : bound; promote : promote }
type stamp_mode = Belt_major | Epoch
type reserve_mode = Half | Dynamic
type order = Lowest_belt | Global_fifo
type barrier = Remsets | Cards

type t = {
  label : string;
  belts : belt_cfg array;
  stamp_mode : stamp_mode;
  order : order;
  flip : bool;
  nursery_filter : bool;
  reserve : reserve_mode;
  ttd_frames : int option;
  remset_trigger : int option;
  min_useful_frames : int;
  los_threshold : int option;
  barrier : barrier;
  policy : string option;
  strategy : string option;
}

let validate t =
  if Array.length t.belts = 0 then Error "configuration needs at least one belt"
  else if
    t.nursery_filter
    && (t.stamp_mode <> Belt_major || t.ttd_frames <> None)
  then
    Error
      "nursery-source filter requires belt-major ordering and a single nursery \
       increment (no time-to-die trigger)"
  else if t.flip && Array.length t.belts <> 2 then
    Error "belt flipping (BOF) requires exactly two belts"
  else if t.min_useful_frames < 1 then Error "min_useful_frames must be >= 1"
  else if (match t.los_threshold with Some n -> n < 2 | None -> false) then
    Error "los threshold must be >= 2 words"
  else if
    Array.exists (fun b -> match b.bound with Pct p -> p < 1 || p > 100 | _ -> false) t.belts
  then Error "percentage bounds must lie in [1,100]"
  else Ok t

let base ~label ~belts ~stamp_mode ~order =
  {
    label;
    belts;
    stamp_mode;
    order;
    flip = false;
    nursery_filter = false;
    reserve = Dynamic;
    ttd_frames = None;
    remset_trigger = None;
    min_useful_frames = 2;
    los_threshold = None;
    barrier = Remsets;
    policy = None;
    strategy = None;
  }

let pct_bound x = if x >= 100 then Whole_heap else Pct x

let semi_space =
  base ~label:"ss"
    ~belts:[| { bound = Whole_heap; promote = Same_belt } |]
    ~stamp_mode:Epoch ~order:Global_fifo

let appel =
  {
    (base ~label:"appel"
       ~belts:
         [|
           { bound = Whole_heap; promote = Next_belt };
           { bound = Whole_heap; promote = Same_belt };
         |]
       ~stamp_mode:Belt_major ~order:Lowest_belt)
    with
    reserve = Half;
    nursery_filter = true;
  }

let beltway_appel = { appel with label = "100.100"; reserve = Dynamic }

let appel3 =
  {
    (base ~label:"100.100.100"
       ~belts:
         [|
           { bound = Whole_heap; promote = Next_belt };
           { bound = Whole_heap; promote = Next_belt };
           { bound = Whole_heap; promote = Same_belt };
         |]
       ~stamp_mode:Belt_major ~order:Lowest_belt)
    with
    nursery_filter = true;
  }

let fixed_nursery ~pct =
  {
    (base
       ~label:(Printf.sprintf "fixed:%d" pct)
       ~belts:
         [|
           { bound = Pct pct; promote = Next_belt };
           { bound = Whole_heap; promote = Same_belt };
         |]
       ~stamp_mode:Belt_major ~order:Lowest_belt)
    with
    reserve = Half;
    nursery_filter = true;
  }

let bofm ~pct =
  base
    ~label:(Printf.sprintf "ofm:%d" pct)
    ~belts:[| { bound = Pct pct; promote = Same_belt } |]
    ~stamp_mode:Epoch ~order:Global_fifo

let bof ~pct =
  {
    (base
       ~label:(Printf.sprintf "of:%d" pct)
       ~belts:
         [|
           { bound = Pct pct; promote = Next_belt };
           { bound = Pct pct; promote = Next_belt };
         |]
       ~stamp_mode:Epoch ~order:Global_fifo)
    with
    flip = true;
  }

let beltway_xy ~x ~y =
  {
    (base
       ~label:(Printf.sprintf "%d.%d" x y)
       ~belts:
         [|
           { bound = pct_bound x; promote = Next_belt };
           { bound = pct_bound y; promote = Same_belt };
         |]
       ~stamp_mode:Belt_major ~order:Lowest_belt)
    with
    nursery_filter = true;
  }

let beltway_xx ~x = beltway_xy ~x ~y:x

let beltway_xx100 ~x =
  {
    (base
       ~label:(Printf.sprintf "%d.%d.100" x x)
       ~belts:
         [|
           { bound = pct_bound x; promote = Next_belt };
           { bound = pct_bound x; promote = Next_belt };
           { bound = Whole_heap; promote = Same_belt };
         |]
       ~stamp_mode:Belt_major ~order:Lowest_belt)
    with
    nursery_filter = true;
  }

let to_string t = t.label
let pp fmt t = Format.pp_print_string fmt t.label

let resolve_bound t ~heap_frames = function
  | Whole_heap -> None
  | Pct x ->
    let frames =
      match t.reserve with
      | Dynamic -> max 1 (heap_frames * x / (100 + x))
      | Half -> max 1 (heap_frames / 2 * x / 100)
    in
    Some frames

(* -- parser ------------------------------------------------------------ *)

let parse_int name s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let apply_option cfg opt =
  match String.split_on_char ':' opt with
  | [ "nofilter" ] -> Ok { cfg with nursery_filter = false }
  | [ "filter" ] -> Ok { cfg with nursery_filter = true }
  | [ "halfreserve" ] -> Ok { cfg with reserve = Half }
  | [ "dynreserve" ] -> Ok { cfg with reserve = Dynamic }
  | [ "ttd"; n ] ->
    Result.map (fun n -> { cfg with ttd_frames = Some n; nursery_filter = false })
      (parse_int "ttd" n)
  | [ "remtrig"; n ] ->
    Result.map (fun n -> { cfg with remset_trigger = Some n }) (parse_int "remtrig" n)
  | [ "minuseful"; n ] ->
    Result.map (fun n -> { cfg with min_useful_frames = n }) (parse_int "minuseful" n)
  | [ "los"; n ] ->
    Result.map (fun n -> { cfg with los_threshold = Some n }) (parse_int "los" n)
  | [ "cards" ] -> Ok { cfg with barrier = Cards }
  | [ "remsets" ] -> Ok { cfg with barrier = Remsets }
  | "policy" :: (name :: _ as spec) when name <> "" ->
    (* The raw "name[:arg]" spec; existence and arguments are checked
       against the registry by [Policy.resolve] (Config stays a pure
       parser with no dependency on the policy constructors). *)
    Ok { cfg with policy = Some (String.concat ":" spec) }
  | [ "policy" ] -> Error "policy: expected a registry name (try +policy:NAME)"
  | [ "strategy"; name ] when name <> "" ->
    (* Existence is checked against the registry by [Strategy.resolve]
       (Config stays a pure parser, as for [+policy:...]). *)
    Ok { cfg with strategy = Some name }
  | [ "strategy" ] ->
    Error "strategy: expected a registry name (try +strategy:NAME)"
  | _ -> Error (Printf.sprintf "unknown option %S" opt)

let parse_base s =
  let s = String.lowercase_ascii s in
  let with_arg prefix k =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match parse_int prefix (String.sub s plen (String.length s - plen)) with
      | Ok n when n >= 1 && n <= 100 -> Some (Ok (k n))
      | Ok n -> Some (Error (Printf.sprintf "%s: %d out of range [1,100]" prefix n))
      | Error e -> Some (Error e)
    else None
  in
  match s with
  | "ss" | "bss" -> Ok semi_space
  | "appel" | "ba2" -> Ok appel
  | "appel3" -> Ok appel3
  | _ -> (
    let prefixed =
      List.find_map
        (fun (p, k) -> with_arg p k)
        [
          ("fixed:", fun n -> fixed_nursery ~pct:n);
          ("ofm:", fun n -> bofm ~pct:n);
          ("bofm:", fun n -> bofm ~pct:n);
          ("of:", fun n -> bof ~pct:n);
          ("bof:", fun n -> bof ~pct:n);
        ]
    in
    match prefixed with
    | Some r -> r
    | None -> (
      match List.map int_of_string_opt (String.split_on_char '.' s) with
      | [ Some x; Some y ] when x >= 1 && x <= 100 && y >= 1 && y <= 100 ->
        Ok { (beltway_xy ~x ~y) with label = s }
      | [ Some x; Some y; Some 100 ] when x >= 1 && x <= 100 && y >= 1 && y <= 100 ->
        if x = y then Ok (beltway_xx100 ~x)
        else
          Ok
            {
              (beltway_xx100 ~x) with
              label = s;
              belts =
                [|
                  { bound = pct_bound x; promote = Next_belt };
                  { bound = pct_bound y; promote = Next_belt };
                  { bound = Whole_heap; promote = Same_belt };
                |];
            }
      | _ ->
        Error
          (Printf.sprintf
             "unrecognised collector %S (try: ss, appel, appel3, fixed:N, ofm:N, of:N, \
              X.Y, X.Y.100)"
             s)))

let parse s =
  match String.split_on_char '+' (String.trim s) with
  | [] | [ "" ] -> Error "empty collector specification"
  | b :: opts ->
    let ( let* ) = Result.bind in
    let* cfg = parse_base b in
    let* cfg =
      List.fold_left
        (fun acc opt ->
          let* cfg = acc in
          apply_option cfg opt)
        (Ok cfg) opts
    in
    let* cfg = validate { cfg with label = String.trim s } in
    Ok cfg
