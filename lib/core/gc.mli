(** The public mutator-facing interface to a Beltway heap.

    Typical use:
    {[
      let cfg = Result.get_ok (Beltway.Config.parse "25.25.100") in
      let gc = Beltway.Gc.create ~config:cfg ~heap_bytes:(2 * 1024 * 1024) () in
      let point = Beltway.Gc.register_type gc ~name:"point" in
      let a = Beltway.Gc.alloc gc ~ty:point ~nfields:2 in
      Beltway.Gc.write gc a 0 (Beltway.Value.of_int 42)
    ]}

    {b Address validity.} Objects move. An address returned by
    {!alloc} (or read from the heap) is valid only until the next call
    to {!alloc}, {!collect} or {!full_collect}; to hold an object
    across allocations, keep it in a root slot ({!roots}: globals or
    the shadow stack) and re-read it afterwards. {!write} and {!read}
    never move objects. *)

type t

exception Out_of_memory of string
(** The program does not fit this heap size under this configuration. *)

val create :
  ?frame_log_words:int ->
  ?gc_domains:int ->
  config:Config.t ->
  heap_bytes:int ->
  unit ->
  t
(** A fresh heap. [frame_log_words] (default 10, i.e. 4 KiB frames)
    sets the frame granularity; [heap_bytes] is the collector's
    budget, rounded up to whole frames (minimum 4 frames). The
    collector policy is resolved from the configuration through
    [Policy.resolve] (its default for the configuration's order, or
    the explicit [+policy:NAME] selection), and the reclamation
    strategy through [Strategy.resolve] (copying unless
    [+strategy:NAME] selects otherwise). [gc_domains] sets how many
    domains each collection is sharded over (default: the
    [BELTWAY_GC_DOMAINS] environment variable, else 1 = sequential);
    a non-parallel strategy combined with [gc_domains > 1] is
    rejected.
    @raise Invalid_argument on an invalid configuration, an unknown
    policy or strategy, or a strategy/[gc_domains] mismatch. *)

val register_type : t -> name:string -> Type_registry.id
(** Register (or look up) a type; allocates its immortal type object in
    the boot space. *)

val tib_value : t -> Type_registry.id -> Value.t
(** The type's TIB reference (immortal, never moves) — cacheable by a
    runtime that wants type checks as a single word compare, and the
    [tib] argument of {!alloc_small_fast}. *)

val alloc_small_fast : t -> tib:Value.t -> nfields:int -> Addr.t
(** The allocation fast path, exposed for inlining at a language
    runtime's hot allocation sites (the Jikes RVM / MMTk technique):
    exactly {!alloc}'s nursery bump hit — init, stats, TIB barrier
    write and hooks included — or [Addr.null], with no side effect,
    when the slow path must run (LOS-sized request, no open nursery,
    or no room). On [Addr.null] the caller falls back to {!alloc};
    the composition is behaviourally identical to calling {!alloc}
    directly. [tib] must come from {!tib_value}. *)

val alloc : t -> ty:Type_registry.id -> nfields:int -> Addr.t
(** Allocate an object with [nfields] null fields. May collect first;
    never collects after allocating, so the returned address is valid
    until the mutator's next allocation. The type-object (TIB)
    reference is written through the write barrier, as in Jikes RVM.
    @raise Out_of_memory when the heap is too small. *)

val alloc_pretenured : t -> ty:Type_registry.id -> nfields:int -> belt:int -> Addr.t
(** Allocate directly on a higher belt — the framework's segregation by
    allocation site (pretenuring of long-lived or immortal data, paper
    S5). [belt] must be a configured belt index >= 1. The same
    address-validity contract as {!alloc} applies.
    @raise Invalid_argument for belt 0 or an out-of-range belt. *)

val write : t -> Addr.t -> int -> Value.t -> unit
(** [write t obj i v]: store [v] into field [i] of [obj], through the
    write barrier when [v] is a reference. *)

val read : t -> Addr.t -> int -> Value.t

val nfields : t -> Addr.t -> int
val type_of : t -> Addr.t -> Type_registry.id option
(** The object's type, recovered from its TIB reference. *)

val roots : t -> Roots.t
val stats : t -> Gc_stats.t
val config : t -> Config.t

val policy_name : t -> string
(** Registry name of the installed collector policy (see
    [Policy.registry]). *)

val strategy_name : t -> string
(** Registry name of the installed reclamation strategy (see
    [Strategy.registry]); ["copying"] unless the configuration selected
    another with [+strategy:NAME]. *)

val collect : t -> unit
(** Force one policy collection (no-op on an empty heap). *)

val full_collect : t -> unit
(** Force a collection of every increment. *)

val heap_frames : t -> int
val frame_bytes : t -> int
val heap_bytes : t -> int
val frames_used : t -> int
val words_allocated : t -> int
val bytes_allocated : t -> int
val live_words_upper_bound : t -> int
(** Occupied words across all increments (live data plus uncollected
    garbage). *)

val reserve_frames : t -> int
(** The copy reserve currently in force (paper S3.3.4). *)

val set_gc_domains : t -> int -> unit
(** Change the collection fan-out for subsequent collections (clamped
    to [1, Beltway_util.Team.max_size]). One domain is the sequential
    collector, byte-identical to the pre-parallel behaviour.
    @raise Invalid_argument when the installed strategy does not
    support a parallel drain and the clamped fan-out exceeds 1 (the
    fan-out is reset to 1 first, so the heap stays usable). *)

val gc_domains : t -> int
(** The fan-out currently in force. *)

val env_gc_domains : unit -> int option
(** The [BELTWAY_GC_DOMAINS] environment default, if set and valid. *)

val register_site : t -> name:string -> int
(** Intern an allocation-site label (see {!State.register_site}):
    idempotent, dense ids, id 0 is "unknown". Never allocates on the
    simulated heap, so site registration cannot perturb GC behaviour. *)

val set_alloc_site : t -> int -> unit
(** Attribute subsequent allocations to a site id. The channel is
    sticky: instrumented mutators set it immediately before every
    allocation; uninstrumented allocations inherit the last value
    (initially 0, "unknown"). Only observation hooks read it. *)

val alloc_site : t -> int
(** The site id currently in force. *)

val site_name : t -> int -> string
(** Label of a site id ("unknown" for out-of-range ids). *)

val site_count : t -> int
(** Number of registered sites, including "unknown". *)

val type_name : t -> Type_registry.id -> string
(** Registered name of a type id (for site labels derived from types). *)

val state : t -> State.t
(** The underlying state — for the integrity verifier, the oracle and
    white-box tests; mutating it directly voids all warranties. *)

val pp_heap : Format.formatter -> t -> unit
(** A human-readable snapshot of the belt structure: per belt, its
    increments front-to-back with id, stamp, frames, occupancy and
    flags — the debugging view of Figure 2. *)
