(** Flat per-frame collector metadata: the GC hot-path side tables.

    The successor of the legacy [Frame_info] oracle's two bare arrays (now [Beltway_check.Frame_info], kept as the differential-test reference), extended so the
    collector's [forward] never touches a hashtable: each frame carries
    its collect stamp (paper S3.3.1) plus a packed word holding the
    owning increment id, a pinned bit (large-object increments are
    marked in place, never copied) and an in-plan bit (set for exactly
    the frames of the increments being collected, for the duration of
    one collection). Plan membership, pinnedness and the source
    increment id therefore resolve from one array load, and the stamp
    from a second — no [Hashtbl.mem], no closure.

    Stamps are [priority * 2^40 + sequence] exactly as before
    ([Beltway_check.Frame_info] documents the scheme); they keep a dedicated array
    because {!immortal_stamp} is [max_int], which no packing could
    share a word with. *)

type t

val immortal_stamp : int
(** Greater than any assignable stamp; boot/immortal frames never
    appear younger than any heap frame. *)

val priority_unit : int
(** The multiplier separating stamp priority classes ([2^40]). *)

val no_stamp : int
(** Stamp reported for unowned frames ([-1]); never satisfies the
    remember predicate as a target. *)

val create : unit -> t

val ensure : t -> int -> unit
(** Grow the side tables now so every frame index up to and including
    the argument is in range. Reads already tolerate out-of-range
    frames; the point of calling this eagerly is the parallel
    collector, whose worker domains read the arrays unsynchronised —
    growth must not swap the backing arrays under them, so the
    collector covers the whole possible index range before fanning
    out. *)

val set : t -> frame:int -> stamp:int -> incr:int -> pinned:bool -> unit
(** Install metadata when a frame is handed to an increment (or to the
    boot space, with [incr = -1]). Clears the in-plan bit. *)

val clear : t -> frame:int -> unit
(** Reset metadata when a frame is freed. *)

val restamp : t -> frame:int -> stamp:int -> unit
(** Update only the stamp (BOF belt flips renumber surviving belts). *)

val set_in_plan : t -> frame:int -> bool -> unit
(** Flip the in-plan bit; the collector sets it over the plan's frames
    at the start of a collection and it is cleared when the frame is
    freed or (for retained pinned increments) when the collection
    ends. *)

val stamp : t -> int -> int
(** Collect stamp of a frame; {!no_stamp} for unowned frames. *)

val incr_of : t -> int -> int
(** Owning increment id of a frame, or [-1]. *)

val pinned : t -> int -> bool
val in_plan : t -> int -> bool

(** {2 Packed-word access}

    The collector's inner loop loads the packed word once with {!meta}
    and decodes the fields it needs; {!pack} is exposed for the
    property tests that check the packing round-trips. *)

val meta : t -> int -> int
(** The packed metadata word of a frame ({!no_meta} when unowned). *)

val no_meta : int
(** The word of an unowned frame ([0]): no increment, no flags. *)

val pack : incr:int -> pinned:bool -> in_plan:bool -> int
val meta_incr : int -> int
val meta_pinned : int -> bool
val meta_in_plan : int -> bool
