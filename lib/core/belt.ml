(* Belts hold few increments (tens at most) and are mutated only at
   collections, so a plain list with O(n) edits is the simplest correct
   representation. The back (allocation) increment is additionally
   cached: [back] sits on the allocation and write-barrier fast paths,
   where a per-call list walk plus a fresh [option] cell would
   dominate. The cache is rebuilt at every mutation — all of which
   happen at collection boundaries, never per-object. *)
type t = {
  mutable index : int;
  mutable incs : Increment.t list;
  mutable back_cache : Increment.t option;
}

let recache t =
  t.back_cache <-
    (match t.incs with [] -> None | l -> Some (List.nth l (List.length l - 1)))

let create ~index = { index; incs = []; back_cache = None }
let index t = t.index
let set_index t i = t.index <- i
let length t = List.length t.incs
let is_empty t = t.incs = []
let front t = match t.incs with [] -> None | i :: _ -> Some i
let[@inline] back t = t.back_cache

let push_back t inc =
  t.incs <- t.incs @ [ inc ];
  t.back_cache <- Some inc

let remove t inc =
  let found = ref false in
  t.incs <-
    List.filter
      (fun (i : Increment.t) ->
        if i.id = inc.Increment.id then begin
          found := true;
          false
        end
        else true)
      t.incs;
  if not !found then invalid_arg "Belt.remove: increment not on belt";
  recache t

let iter t f = List.iter f t.incs
let fold t ~init ~f = List.fold_left f init t.incs
let fold_right t ~init ~f = List.fold_right f t.incs init

let occupancy_frames t =
  fold t ~init:0 ~f:(fun acc i -> acc + Increment.occupancy_frames i)

let words_used t = fold t ~init:0 ~f:(fun acc i -> acc + Increment.words_used i)

let swap_contents a b =
  let tmp = a.incs in
  a.incs <- b.incs;
  b.incs <- tmp;
  List.iter (fun (i : Increment.t) -> i.Increment.belt <- a.index) a.incs;
  List.iter (fun (i : Increment.t) -> i.Increment.belt <- b.index) b.incs;
  recache a;
  recache b
