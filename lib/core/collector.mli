(** The copying collector: a Cheney scan over a *set* of increments.

    A plan is a set of increments collected together (the downward
    closure of the chosen increment in collect-stamp order, so every
    unremembered inter-increment pointer into the plan originates
    inside the plan). Roots are the mutator root set plus every
    remembered slot whose target frame is in the plan and whose source
    frame is not. Survivors are copied to the open increment of their
    promotion-target belt — per *source increment*, so one pass
    handles a nursery increment promoting up and an old increment
    compacting onto its own belt in the same collection (the paper's
    collect-lower-and-higher-increments-together optimisation falls
    out for free).

    While scanning a copied object the collector re-applies the write
    barrier's predicate to every outgoing reference: survivors live in
    new frames with new stamps, so their interesting pointers are
    re-recorded and all remsets relating to the evacuated frames can
    simply be dropped. *)

type plan = {
  increments : Increment.t list; (** downward-closed in stamp order *)
  reason : Gc_stats.reason;
  emergency : bool;
      (** planned although the conservative reserve test failed *)
  full_heap : bool;
}

val collect : State.t -> plan -> Gc_stats.collection
(** Run the collection: evacuate live objects, update roots and
    remembered slots, free the plan's frames, log and return the
    collection record. @raise State.Out_of_memory if the copy reserve
    proves insufficient (heap too small for this program). *)

val plan_frames : plan -> int
val plan_words : plan -> int

val evacuation_frames : plan -> int
(** Frames the plan may need to copy somewhere else: its occupancy
    minus pinned (large-object) increments, which are marked in place
    rather than evacuated. Plan feasibility is judged on this. *)
