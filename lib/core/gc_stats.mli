(** Collector statistics and the per-collection event log.

    The harness reconstructs the paper's figures from these raw event
    counts: GC "time" and mutator "time" are computed by
    [Beltway_sim.Cost_model] from bytes copied, slots scanned, barrier
    paths taken, etc., so the collector itself stays measurement-
    agnostic. The allocation clock (words allocated so far) timestamps
    every collection, which is what the MMU analysis needs. *)

type reason =
  | Heap_full  (** granting a frame would eat into the copy reserve *)
  | Nursery  (** the nursery increment reached its bound *)
  | Remset  (** the remembered sets grew past the configured threshold *)
  | Forced  (** explicitly requested ([Gc.collect]) *)
  | Full  (** explicitly requested full-heap collection *)
(** Why a collection was started: the closed set shared by [Trigger],
    [Schedule], the collection log and the trace exporters, so spellings
    cannot drift between producers and consumers. *)

val reason_to_string : reason -> string
val reason_of_string : string -> reason option
val all_reasons : reason list

type gc_phase =
  | Phase_roots  (** forwarding the mutator root set *)
  | Phase_remset  (** draining remembered slots targeting the plan *)
  | Phase_cards  (** scanning dirty frames (card barrier) *)
  | Phase_cheney  (** the Cheney grey-set drain (copy + scan) *)
  | Phase_mark  (** tracing mark bits + mark stack (non-moving strategies) *)
  | Phase_sweep  (** free-list rebuild over dead runs (mark-sweep) *)
  | Phase_compact  (** pointer threading + slide (mark-compact) *)
  | Phase_free  (** releasing the plan's evacuated increments *)
(** Phases of one collection, in execution order, as reported through
    [State.hooks.on_gc_phase] for the flight recorder's phase spans.
    A collection runs either the Cheney phase or the mark/sweep or
    mark/compact pair, per the installed reclamation strategy. *)

val phase_to_string : gc_phase -> string
val all_phases : gc_phase list

type collection = {
  n : int;  (** ordinal of this collection *)
  reason : reason;
  emergency : bool;
      (** chosen although the conservative reserve test failed (the
          schedule's last-resort plan in tight heaps) *)
  clock_words : int;  (** allocation clock when the pause began *)
  plan_incs : int;  (** increments collected together *)
  plan_frames : int;
  plan_words : int;  (** occupancy of the collected increments *)
  full_heap : bool;
  copied_words : int;
  copied_objects : int;
  scanned_slots : int;  (** slots examined by the Cheney scan *)
  remset_slots : int;
      (** barrier-bookkeeping slots processed as roots: remembered-set
          entries under [Remsets], or slots of dirty-frame objects
          scanned under [Cards] *)
  roots_scanned : int;
  freed_frames : int;
  heap_frames_after : int;  (** frames still held after the collection *)
  reserve_frames : int;  (** copy reserve in force when triggered *)
  marked_objects : int;  (** objects marked in place (non-moving strategies) *)
  marked_words : int;  (** words of marked objects *)
  swept_words : int;  (** dead words turned into free-list fillers *)
  moved_words : int;  (** words slid by the compaction pass *)
}

val collection_label : collection -> string
(** [reason_to_string], with ["-emergency"] appended when the plan was
    an emergency one — the human-facing spelling used in logs and trace
    span names. *)

type t = {
  mutable config_label : string;
      (** configuration string these statistics belong to (filled by
          [State.create]; [""] for bare statistics) *)
  mutable policy_name : string;
      (** registry name of the installed policy (filled by
          [State.create]; [""] for bare statistics) *)
  mutable strategy_name : string;
      (** registry name of the installed reclamation strategy (filled
          by [State.create]; [""] for bare statistics) *)
  mutable words_allocated : int;
  mutable objects_allocated : int;
  mutable barrier_ops : int;  (** barrier executions (every pointer store) *)
  mutable barrier_fast : int;  (** taken but nothing remembered *)
  mutable barrier_slow : int;  (** remset insert performed *)
  mutable barrier_filtered : int;  (** skipped by the nursery-source filter *)
  mutable frames_allocated : int;  (** lifetime frame grants *)
  mutable peak_frames : int;  (** high-water heap footprint *)
  collections : collection Beltway_util.Vec.t;
}

val create : unit -> t

val record_collection : t -> collection -> unit

val gcs : t -> int

val last : t -> collection option
(** The most recently recorded collection, if any. *)

val total_copied_words : t -> int
val total_freed_frames : t -> int

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph human-readable summary, including the barrier-filter
    rate as a percentage and per-collection averages. Statistics that
    belong to a heap open with a [collector: <config> [policy <name>]]
    header so traces and reports are attributable to a policy. Safe on
    empty statistics: a zero-collection run prints zeros, never NaN. *)
