module Vec = Beltway_util.Vec

type reason =
  | Heap_full
  | Nursery
  | Remset
  | Forced
  | Full

let reason_to_string = function
  | Heap_full -> "heap-full"
  | Nursery -> "nursery"
  | Remset -> "remset"
  | Forced -> "forced"
  | Full -> "full"

let reason_of_string = function
  | "heap-full" -> Some Heap_full
  | "nursery" -> Some Nursery
  | "remset" -> Some Remset
  | "forced" -> Some Forced
  | "full" -> Some Full
  | _ -> None

let all_reasons = [ Heap_full; Nursery; Remset; Forced; Full ]

type gc_phase =
  | Phase_roots
  | Phase_remset
  | Phase_cards
  | Phase_cheney
  | Phase_mark
  | Phase_sweep
  | Phase_compact
  | Phase_free

let phase_to_string = function
  | Phase_roots -> "roots"
  | Phase_remset -> "remset-drain"
  | Phase_cards -> "card-drain"
  | Phase_cheney -> "cheney-copy"
  | Phase_mark -> "mark"
  | Phase_sweep -> "sweep"
  | Phase_compact -> "compact"
  | Phase_free -> "frame-free"

let all_phases =
  [
    Phase_roots;
    Phase_remset;
    Phase_cards;
    Phase_cheney;
    Phase_mark;
    Phase_sweep;
    Phase_compact;
    Phase_free;
  ]

type collection = {
  n : int;
  reason : reason;
  emergency : bool;
  clock_words : int;
  plan_incs : int;
  plan_frames : int;
  plan_words : int;
  full_heap : bool;
  copied_words : int;
  copied_objects : int;
  scanned_slots : int;
  remset_slots : int;
  roots_scanned : int;
  freed_frames : int;
  heap_frames_after : int;
  reserve_frames : int;
  marked_objects : int;
  marked_words : int;
  swept_words : int;
  moved_words : int;
}

let collection_label c =
  reason_to_string c.reason ^ if c.emergency then "-emergency" else ""

let dummy_collection =
  {
    n = -1;
    reason = Forced;
    emergency = false;
    clock_words = 0;
    plan_incs = 0;
    plan_frames = 0;
    plan_words = 0;
    full_heap = false;
    copied_words = 0;
    copied_objects = 0;
    scanned_slots = 0;
    remset_slots = 0;
    roots_scanned = 0;
    freed_frames = 0;
    heap_frames_after = 0;
    reserve_frames = 0;
    marked_objects = 0;
    marked_words = 0;
    swept_words = 0;
    moved_words = 0;
  }

type t = {
  mutable config_label : string;
  mutable policy_name : string;
  mutable strategy_name : string;
  mutable words_allocated : int;
  mutable objects_allocated : int;
  mutable barrier_ops : int;
  mutable barrier_fast : int;
  mutable barrier_slow : int;
  mutable barrier_filtered : int;
  mutable frames_allocated : int;
  mutable peak_frames : int;
  collections : collection Vec.t;
}

let create () =
  {
    config_label = "";
    policy_name = "";
    strategy_name = "";
    words_allocated = 0;
    objects_allocated = 0;
    barrier_ops = 0;
    barrier_fast = 0;
    barrier_slow = 0;
    barrier_filtered = 0;
    frames_allocated = 0;
    peak_frames = 0;
    collections = Vec.create ~dummy:dummy_collection ();
  }

let record_collection t c = Vec.push t.collections c
let gcs t = Vec.length t.collections

let last t =
  let n = gcs t in
  if n = 0 then None else Some (Vec.get t.collections (n - 1))

let total_copied_words t =
  Vec.fold (fun acc c -> acc + c.copied_words) 0 t.collections

let total_freed_frames t =
  Vec.fold (fun acc c -> acc + c.freed_frames) 0 t.collections

(* All derived ratios below are guarded: a run with no collections (or
   no barrier activity) must print zeros, never a NaN or a division
   crash. *)
let pp_summary fmt t =
  let pct num den = if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den in
  let per num den = if den <= 0 then 0.0 else float_of_int num /. float_of_int den in
  let n = gcs t in
  (* The attribution header prints only for statistics belonging to a
     heap (State.create fills both fields); a bare [create ()] keeps
     the historical four-line shape. *)
  Format.fprintf fmt "@[<v>";
  (* The strategy is named only when it departs from the default
     copying collector, so pre-strategy output is preserved byte for
     byte. *)
  if t.config_label <> "" || t.policy_name <> "" then
    if t.strategy_name = "" || t.strategy_name = "copying" then
      Format.fprintf fmt "collector: %s [policy %s]@," t.config_label
        t.policy_name
    else
      Format.fprintf fmt "collector: %s [policy %s, strategy %s]@,"
        t.config_label t.policy_name t.strategy_name;
  Format.fprintf fmt
    "allocated: %d words in %d objects@,\
     barriers: %d (%d fast, %d slow, %d filtered = %.1f%%)@,\
     collections: %d (copied %d words, freed %d frames, peak %d frames)@,\
     per GC: %.1f words copied, %.1f frames freed, %.1f remset slots@]"
    t.words_allocated t.objects_allocated t.barrier_ops t.barrier_fast t.barrier_slow
    t.barrier_filtered
    (pct t.barrier_filtered t.barrier_ops)
    n (total_copied_words t) (total_freed_frames t) t.peak_frames
    (per (total_copied_words t) n)
    (per (total_freed_frames t) n)
    (per (Vec.fold (fun acc c -> acc + c.remset_slots) 0 t.collections) n)
