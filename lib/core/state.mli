(** The mutable collector state shared by the barrier, triggers,
    collector and schedule.

    Layering: [State] owns the belts, frame budget and stamp counters
    and offers mechanical operations (create an increment, grant it a
    frame, free it); [Write_barrier], [Copy_reserve], [Collector] and
    [Trigger]/[Schedule] implement policy over it; [Gc] is the public
    facade. *)

exception Out_of_memory of string
(** The program does not fit this heap size under this configuration —
    the analogue of a benchmark "failing to run" at a heap size in the
    paper's figures. *)

type hooks = {
  on_alloc : addr:Addr.t -> tib:Value.t -> nfields:int -> unit;
      (** after an object is initialised (header + TIB written, fields
          null), for every allocation path: nursery, pretenured, LOS *)
  on_write : obj:Addr.t -> field:int -> value:Value.t -> unit;
      (** after a mutator field store (and its barrier record) *)
  on_move : src:Addr.t -> dst:Addr.t -> unit;
      (** after the collector evacuates an object and installs its
          forwarding pointer *)
  on_collect_start : reason:Gc_stats.reason -> emergency:bool -> unit;
      (** on entering a collection, before any evacuation *)
  on_collect_end : full_heap:bool -> unit;
      (** after a collection completes and the heap is consistent
          (evacuated increments freed, statistics recorded); not fired
          when a collection aborts with [Out_of_memory] *)
  on_gc_phase : phase:Gc_stats.gc_phase -> enter:bool -> unit;
      (** entering/leaving one phase of a collection (roots, remset or
          card drain, Cheney copy, frame free), strictly nested inside
          the collect start/end pair *)
  on_frame_grant : frame:int -> belt:int -> during_gc:bool -> unit;
      (** after a frame is granted to an increment and stamped *)
  on_frame_free : frame:int -> belt:int -> unit;
      (** after a collected increment's frame is returned to the
          memory substrate *)
  on_belt_advance : belt:int -> inc_id:int -> stamp:int -> unit;
      (** a fresh increment was opened at the back of a belt *)
  on_reserve : frames:int -> unit;
      (** copy-reserve size sampled at the end of each collection *)
  on_trigger : reason:Gc_stats.reason -> unit;
      (** a collection trigger fired (before the plan is chosen); not
          reported for explicitly forced collections *)
  on_barrier_slow : entries:int -> unit;
      (** after a write-barrier slow path inserted a remembered-set
          entry; [entries] is the new remset total *)
}
(** Observation hooks for heap-analysis tools (the shadow-heap
    sanitizer, verification-every-n testing, the [Beltway_obs] flight
    recorder). Hooks observe; they must not allocate on or otherwise
    mutate the heap being observed. Every dispatch site first matches
    on the empty hook list, so a heap with no hooks installed pays one
    branch per site and nothing more. *)

val noop_hooks : hooks
(** All-no-op record, for [{ noop_hooks with ... }] updates. *)

type t = {
  mem : Memory.t;
  boot : Boot_space.t;
  types : Type_registry.t;
  roots : Roots.t;
  ftab : Frame_table.t; (** flat per-frame stamps + packed GC metadata *)
  config : Config.t;
  heap_frames : int; (** collector-owned frame budget *)
  belts : Belt.t array;
  belt_bounds : int option array; (** resolved increment bounds per belt *)
  remsets : Remset.t;
  cards : Card_table.t; (** used when the configuration selects [Cards] *)
  stats : Gc_stats.t;
  incs_by_id : (int, Increment.t) Hashtbl.t;
  mutable inc_by_id : Increment.t option array;
      (** mirror of [incs_by_id]: id -> increment as a grow-on-demand
          array, so the collection fast path resolves an increment id
          with an array read instead of a hash probe *)
  gc_slots : int Beltway_util.Vec.t;
      (** reused scratch for the collector's remembered-slot snapshot *)
  gc_pinned : Increment.t Beltway_util.Vec.t;
      (** reused scratch for the collector's pinned grey set *)
  mutable frames_used : int;
  mutable next_inc_id : int;
  mutable seq : int; (** stamp sequence counter *)
  mutable epoch : int; (** epoch for [Epoch] stamp mode (BOF flips) *)
  mutable in_gc : bool;
  mutable gcs_this_alloc : int; (** cascade guard *)
  mutable live_est_frames : int;
      (** survivors of the most recent full-heap collection (0 before
          the first): a cheap live-set statistic. *)
  mutable hooks : hooks list;
      (** installed observation hooks; empty in the common case, and
          the dispatch sites are a single [match] away from free when
          it is *)
}

val add_hooks : t -> hooks -> unit
(** Install an observation hook set (appended; hooks fire in
    installation order). *)

val remove_hooks : t -> hooks -> unit
(** Uninstall a hook set previously passed to {!add_hooks} (matched by
    physical identity). *)

val create : config:Config.t -> heap_frames:int -> frame_log_words:int -> t
(** Fresh state with an empty heap. [heap_frames] is the collector's
    budget; the underlying memory is sized with headroom for the boot
    space. @raise Invalid_argument on a configuration that fails
    [Config.validate]. *)

val heap_words : t -> int
val free_frames : t -> int
val total_increments : t -> int
val live_words : t -> int
(** Sum of increment occupancy in words (an upper bound on live data;
    includes garbage not yet collected). *)

val stamp_for_belt : t -> int -> int
(** Next collect stamp for an increment created on the given belt
    (consumes a sequence number). *)

val new_increment : t -> belt:int -> Increment.t
(** Create an empty increment at the back of the belt. *)

val grant_frame : t -> Increment.t -> during_gc:bool -> unit
(** Give the increment one more frame, charging the budget and stamping
    the frame. @raise Out_of_memory when the budget is exhausted (the
    schedule must prevent this for mutator allocation; during GC it
    means the copy reserve was insufficient despite padding, i.e. the
    heap is simply too small). *)

val open_inc : t -> belt:int -> Increment.t
(** The back increment of the belt if it can still receive objects and
    is not in the current plan (its [in_plan] flag); otherwise a fresh
    increment. *)

val free_increment : t -> Increment.t -> unit
(** Release a collected increment: frames returned, frame metadata and
    remsets relating to its frames dropped, removed from its belt. *)

val inc_of_frame : t -> int -> Increment.t option
(** Owning increment of a frame, if any. *)

val live_increments : t -> Increment.t list
(** All increments, front-to-back per belt, belts in index order. *)

val frame_of_addr : t -> Addr.t -> int
val stamp_of_addr : t -> Addr.t -> int

val regular_belts : t -> int
(** Number of configured belts (excluding the LOS belt, if any). *)

val los_belt : t -> int option
(** Index of the large-object-space belt when the configuration
    enables one ([+los:N]); always the highest belt. *)

val new_pinned_increment : t -> size:int -> Increment.t
(** Allocate a pinned single-object increment of [size] words on the
    LOS belt (contiguous frames, charged to the budget). The caller
    (schedule) must have made room first.
    @raise Out_of_memory if the budget cannot cover it.
    @raise Invalid_argument when the configuration has no LOS. *)

val flip_belts : t -> unit
(** BOF flip: swap belt 0 and belt 1 contents and advance the epoch.
    @raise Invalid_argument unless the configuration enables
    flipping. *)
