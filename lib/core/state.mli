(** The mutable collector state shared by the barrier, triggers,
    collector and schedule.

    Layering: [State] owns the belts, frame budget and stamp counters
    and offers mechanical operations (create an increment, grant it a
    frame, free it) plus the installed {!policy} record;
    [Write_barrier], [Copy_reserve], [Collector] and
    [Trigger]/[Schedule] are mechanism that dispatches through that
    policy; [Policy] builds policies from configurations; [Gc] is the
    public facade. *)

exception Out_of_memory of string
(** The program does not fit this heap size under this configuration —
    the analogue of a benchmark "failing to run" at a heap size in the
    paper's figures. *)

type par_report = {
  pr_domain : int;
  pr_phases : (Gc_stats.gc_phase * float * float) array;
      (** (phase, start, duration) per parallel phase, in the flight
          recorder's microsecond clock (zeros when none is attached) *)
  pr_copied_objects : int;
  pr_copied_words : int;
  pr_scanned_slots : int;
  pr_steals : int;  (** grey objects taken from other domains' deques *)
  pr_cas_retries : int;
      (** forwarding races lost: speculative copies discarded after
          another domain installed the forwarding pointer first *)
}
(** Per-domain summary of one parallel collection, reported through
    [on_gc_domains]. *)

type hooks = {
  on_alloc : addr:Addr.t -> tib:Value.t -> nfields:int -> unit;
      (** after an object is initialised (header + TIB written, fields
          null), for every allocation path: nursery, pretenured, LOS *)
  on_write : obj:Addr.t -> field:int -> value:Value.t -> unit;
      (** after a mutator field store (and its barrier record) *)
  on_move : src:Addr.t -> dst:Addr.t -> unit;
      (** after the collector relocates an object: a Cheney evacuation
          (forwarding pointer installed) or a compaction slide. Fired
          only for objects whose address actually changed. *)
  on_object_dead : addr:Addr.t -> words:int -> unit;
      (** a non-moving strategy found the object unreachable and is
          reclaiming it in place (its words become a free-list filler
          or are slid over); fired during the sweep/compact phase,
          before the words are reused. Copying collections never fire
          it — death is implied by frame free there. *)
  on_collect_start : reason:Gc_stats.reason -> emergency:bool -> unit;
      (** on entering a collection, before any evacuation *)
  on_collect_end : full_heap:bool -> unit;
      (** after a collection completes and the heap is consistent
          (evacuated increments freed, statistics recorded); not fired
          when a collection aborts with [Out_of_memory] *)
  on_gc_phase : phase:Gc_stats.gc_phase -> enter:bool -> unit;
      (** entering/leaving one phase of a collection (roots, remset or
          card drain, Cheney copy, frame free), strictly nested inside
          the collect start/end pair *)
  on_frame_grant : frame:int -> belt:int -> during_gc:bool -> unit;
      (** after a frame is granted to an increment and stamped *)
  on_frame_free : frame:int -> belt:int -> unit;
      (** after a collected increment's frame is returned to the
          memory substrate *)
  on_belt_advance : belt:int -> inc_id:int -> stamp:int -> unit;
      (** a fresh increment was opened at the back of a belt *)
  on_reserve : frames:int -> unit;
      (** copy-reserve size sampled at the end of each collection *)
  on_trigger : reason:Gc_stats.reason -> unit;
      (** a collection trigger fired (before the plan is chosen); not
          reported for explicitly forced collections *)
  on_barrier_slow : entries:int -> unit;
      (** after a write-barrier slow path inserted a remembered-set
          entry; [entries] is the new remset total *)
  on_gc_domains : reports:par_report array -> unit;
      (** after a parallel collection's drain completes (before
          [on_collect_end]): one {!par_report} per GC domain. Never
          fired by the sequential collector. *)
}
(** Observation hooks for heap-analysis tools (the shadow-heap
    sanitizer, verification-every-n testing, the [Beltway_obs] flight
    recorder). Hooks observe; they must not allocate on or otherwise
    mutate the heap being observed. Every dispatch site first matches
    on the empty hook list, so a heap with no hooks installed pays one
    branch per site and nothing more. *)

val noop_hooks : hooks
(** All-no-op record, for [{ noop_hooks with ... }] updates. *)

type par_domain = {
  pd_stack : int Beltway_util.Vec.t;
      (** private grey stack: the drain's hot path, no atomics *)
  pd_grey : Beltway_util.Deque.t;
      (** published surplus, stolen from by other domains *)
  mutable pd_delta : int;
      (** unflushed in-flight delta (+1 per grey push, -1 per scan),
          batched into the shared counter at steal boundaries *)
  pd_dests : Increment.t option array;
  mutable pd_opened : Increment.t list;
  pd_remember : int Beltway_util.Vec.t;
  pd_moves : int Beltway_util.Vec.t;
  mutable pd_copied_words : int;
  mutable pd_copied_objects : int;
  mutable pd_scanned_slots : int;
  mutable pd_remset_slots : int;
  mutable pd_roots_scanned : int;
  mutable pd_steals : int;
  mutable pd_cas_retries : int;
  pd_phase_start : float array;
  pd_phase_dur : float array;
}
(** Per-domain scratch for the parallel collector (grey deque, private
    destination increments, replay buffers, counters), reused across
    collections. Owned by [Collector]; exposed for white-box tests. *)

(** {2 The policy layer}

    A {!policy} record owns the four decisions the paper's knobs
    parameterise: target choice, barrier discipline, the trigger
    cascade, and the copy-reserve rule. The type lives here (not in
    [Policy]) because its closures consume the state that stores them —
    the same mutual-recursion-by-placement as {!hooks}; [Policy]
    constructs the records and owns the registry. Hot-path decisions
    ({!barrier_discipline}, the promotion map) are plain data read per
    operation; closures run only per collection and per allocation
    slow path, so the barrier fast path and Cheney inner loop never
    dispatch through a closure. *)

type barrier_discipline =
  | Barrier_remsets of { nursery_filter : bool }
      (** remembered sets of slot addresses; [nursery_filter] skips
          even the stamp compare for stores whose source lies in the
          single open nursery increment (sound only under belt-major
          stamping with a one-increment nursery) *)
  | Barrier_cards  (** unconditional frame-granularity card marking *)

type alloc_action =
  | Alloc_grant  (** grant the allocation increment one more frame *)
  | Alloc_collect of Gc_stats.reason  (** collect now, for this reason *)
  | Alloc_open_nursery
      (** open a further increment on the allocation belt (older-first:
          a full nursery opens a new window rather than collecting) *)
  | Alloc_split_nursery
      (** time-to-die: seal the nursery and open a fresh increment the
          next nursery collection will spare *)

(** {2 The reclamation-strategy layer}

    A {!strategy} record owns *how* a plan's increments are reclaimed —
    Cheney evacuation, bitmap mark-sweep, or threaded mark-compact —
    orthogonal to the {!policy}, which owns what to collect and when.
    Like [policy], the type lives here because its closure consumes the
    state that stores it; [Strategy] constructs the records and owns
    the registry, and [Collector] dispatches on {!strategy_kind} once
    per collection. *)

type strategy_kind =
  | Strategy_copying  (** Cheney evacuation (the pre-strategy collector) *)
  | Strategy_marksweep  (** mark bitmap + free-list sweep, in place *)
  | Strategy_markcompact  (** mark bitmap + threaded slide, in place *)

type t = {
  mem : Memory.t;
  boot : Boot_space.t;
  types : Type_registry.t;
  roots : Roots.t;
  ftab : Frame_table.t; (** flat per-frame stamps + packed GC metadata *)
  config : Config.t;
  policy : policy; (** the installed collector policy *)
  strategy : strategy; (** the installed reclamation strategy *)
  heap_frames : int; (** collector-owned frame budget *)
  belts : Belt.t array;
  belt_bounds : int option array; (** resolved increment bounds per belt *)
  remsets : Remset.t;
  cards : Card_table.t; (** used when the configuration selects [Cards] *)
  stats : Gc_stats.t;
  incs_by_id : (int, Increment.t) Hashtbl.t;
  mutable inc_by_id : Increment.t option array;
      (** mirror of [incs_by_id]: id -> increment as a grow-on-demand
          array, so the collection fast path resolves an increment id
          with an array read instead of a hash probe *)
  gc_slots : int Beltway_util.Vec.t;
      (** reused scratch for the collector's remembered-slot snapshot *)
  gc_pinned : Increment.t Beltway_util.Vec.t;
      (** reused scratch for the collector's pinned grey set *)
  gc_mark_stack : int Beltway_util.Vec.t;
      (** reused scratch for the marking strategies' explicit mark
          stack (grey object addresses) *)
  mutable frames_used : int;
  mutable next_inc_id : int;
  mutable seq : int; (** stamp sequence counter *)
  mutable epoch : int; (** epoch for [Epoch] stamp mode (BOF flips) *)
  mutable in_gc : bool;
  mutable gcs_this_alloc : int; (** cascade guard *)
  mutable live_est_frames : int;
      (** survivors of the most recent full-heap collection (0 before
          the first): a cheap live-set statistic. *)
  mutable hooks : hooks list;
      (** installed observation hooks; empty in the common case, and
          the dispatch sites are a single [match] away from free when
          it is *)
  mutable gc_domains : int;
      (** domains each collection's drain fans out over (set through
          {!set_gc_domains}); 1 selects the sequential collector,
          byte-identical to the pre-parallel implementation *)
  gc_lock : Mutex.t;
      (** serialises shared-structure mutation (increment creation,
          frame grants, and their hooks) during a parallel drain *)
  mutable gc_par : par_domain array;
      (** parallel-drain scratch, grown on demand by {!par_domains} *)
  mutable clock_us : unit -> float;
      (** timestamp source for per-domain phase spans; returns 0 until
          a flight recorder installs its clock *)
  mutable alloc_site : int;
      (** allocation-site id the next [on_alloc] firing is attributed
          to; 0 is the catch-all "unknown" site. Instrumented mutators
          store here right before allocating; the collector never
          reads it. *)
  site_names : string Beltway_util.Vec.t;
      (** site id -> label; index 0 is "unknown". OCaml-side only —
          registering sites never touches the simulated heap. *)
  site_ids : (string, int) Hashtbl.t;  (** label -> site id *)
}

and policy = {
  policy_name : string;  (** registry key, for reporting *)
  barrier : barrier_discipline;
  promote : int array;
      (** destination belt for survivors of each configured belt
          (indexed by source belt; pinned LOS increments never move) *)
  stamp_priority : t -> belt:int -> int;
      (** priority class of the next increment opened on [belt]
          (belt-major, epoch-based, ...) *)
  target : t -> Increment.t list;
      (** candidate target increments in decreasing preference order;
          the schedule takes the downward closure of the first feasible
          one and degrades along the rest *)
  reserve_frames : t -> int;  (** conservative copy reserve in frames *)
  alloc_trigger : t -> size:int -> alloc_action;
      (** trigger cascade for a nursery allocation that does not fit *)
  pretenure_trigger : t -> alloc_action;
      (** trigger cascade for a pretenured (higher-belt) allocation *)
  large_trigger : t -> incoming_frames:int -> alloc_action;
      (** trigger cascade before admitting a pinned large object *)
  refresh_nursery : t -> unit;
      (** run when no open nursery increment exists, before a new one
          is created (BOF: flip the belts) *)
}

and strategy = {
  strategy_name : string;  (** registry key, for reporting *)
  strategy_kind : strategy_kind;
  strategy_moving : bool;
      (** whether surviving objects change address (copying: across
          frames; mark-compact: within the increment's own frames) *)
  strategy_needs_reserve : bool;
      (** whether collections need destination frames up front (the
          schedule's feasibility test and the heap-full trigger) *)
  strategy_parallel : bool;
      (** whether the strategy supports the sharded [gc_domains > 1]
          drain; non-parallel strategies are rejected at setup *)
  strategy_reserve : t -> int;
      (** reserve frames to hold back; the copying strategy delegates
          to the installed policy's rule verbatim *)
}

val copying_strategy : strategy
(** The Cheney-evacuation strategy: exactly the pre-strategy collector
    (its reserve rule is the installed policy's, its drain the
    untouched sequential/parallel copy loop), so every pre-strategy
    configuration behaves byte-identically. *)

val add_hooks : t -> hooks -> unit
(** Install an observation hook set (appended; hooks fire in
    installation order). *)

val remove_hooks : t -> hooks -> unit
(** Uninstall a hook set previously passed to {!add_hooks} (matched by
    physical identity). *)

val register_site : t -> name:string -> int
(** Intern an allocation-site label, returning its dense id
    (idempotent: the same label always yields the same id). Id 0 is
    the pre-registered "unknown" site. Registration allocates nothing
    on the simulated heap. *)

val site_count : t -> int
(** Number of registered sites, including "unknown". *)

val site_name : t -> int -> string
(** Label of a site id; out-of-range ids map to "unknown". *)

val create :
  ?strategy:strategy ->
  config:Config.t ->
  policy:policy ->
  heap_frames:int ->
  frame_log_words:int ->
  unit ->
  t
(** Fresh state with an empty heap under the given policy (resolve one
    from the configuration with [Policy.resolve]; [Gc.create] does)
    and reclamation strategy (default {!copying_strategy}; resolve one
    with [Strategy.resolve]). [heap_frames] is the collector's budget;
    the underlying memory is sized with headroom for the boot space.
    @raise Invalid_argument on a configuration that fails
    [Config.validate]. *)

val set_gc_domains : t -> int -> unit
(** Set the number of domains future collections fan out over (clamped
    to [1, Beltway_util.Team.max_size]). Takes effect at the next
    collection. *)

val par_domains : t -> int -> par_domain array
(** The first [n] per-domain scratch contexts, created on first use
    and reused across collections. *)

val heap_words : t -> int
val free_frames : t -> int
val total_increments : t -> int
val live_words : t -> int
(** Sum of increment occupancy in words (an upper bound on live data;
    includes garbage not yet collected). *)

val stamp_for_belt : t -> int -> int
(** Next collect stamp for an increment created on the given belt
    (consumes a sequence number; the priority class comes from the
    policy's [stamp_priority]). *)

val dest_belt : t -> int -> int
(** Destination belt for survivors of an increment on the given belt:
    one read of the policy's precomputed promotion map. *)

val new_increment : t -> belt:int -> Increment.t
(** Create an empty increment at the back of the belt. *)

val reserve_inc_ids : t -> int -> unit
(** Pre-grow the id -> increment mirror to hold at least [n] ids, so
    increments opened while worker domains read the mirror without the
    lock never swap its backing array. *)

val grant_frame : t -> Increment.t -> during_gc:bool -> unit
(** Give the increment one more frame, charging the budget and stamping
    the frame. @raise Out_of_memory when the budget is exhausted (the
    schedule must prevent this for mutator allocation; during GC it
    means the copy reserve was insufficient despite padding, i.e. the
    heap is simply too small). *)

val open_inc : t -> belt:int -> Increment.t
(** The back increment of the belt if it can still receive objects and
    is not in the current plan (its [in_plan] flag); otherwise a fresh
    increment. *)

val free_increment : t -> Increment.t -> unit
(** Release a collected increment: frames returned, frame metadata and
    remsets relating to its frames dropped, removed from its belt. *)

val inc_of_frame : t -> int -> Increment.t option
(** Owning increment of a frame, if any. *)

val live_increments : t -> Increment.t list
(** All increments, front-to-back per belt, belts in index order. *)

val frame_of_addr : t -> Addr.t -> int
val stamp_of_addr : t -> Addr.t -> int

val regular_belts : t -> int
(** Number of configured belts (excluding the LOS belt, if any). *)

val los_belt : t -> int option
(** Index of the large-object-space belt when the configuration
    enables one ([+los:N]); always the highest belt. *)

val new_pinned_increment : t -> size:int -> Increment.t
(** Allocate a pinned single-object increment of [size] words on the
    LOS belt (contiguous frames, charged to the budget). The caller
    (schedule) must have made room first.
    @raise Out_of_memory if the budget cannot cover it.
    @raise Invalid_argument when the configuration has no LOS. *)

val flip_belts : t -> unit
(** BOF flip: swap belt 0 and belt 1 contents and advance the epoch.
    @raise Invalid_argument unless the configuration enables
    flipping. *)
