let log_src = Logs.Src.create "beltway.schedule" ~doc:"Beltway collection schedule"

module Log = (val Logs.src_log log_src : Logs.LOG)

let nursery st =
  match Belt.back st.State.belts.(0) with
  | Some inc when (not inc.Increment.sealed) && not (Increment.at_bound inc) -> inc
  | Some inc when not inc.Increment.sealed -> inc (* at bound: caller collects *)
  | _ ->
    (* No open nursery: let the policy refresh the allocation belt
       first (BOF flips here) before a new increment is created. *)
    st.State.policy.State.refresh_nursery st;
    State.new_increment st ~belt:0

let closure st (target : Increment.t) =
  List.filter
    (fun (i : Increment.t) -> i.Increment.stamp <= target.Increment.stamp)
    (State.live_increments st)

(* Evacuating the plan needs at most its own occupancy plus one
   partially filled frame per destination belt per GC domain (each
   domain of the parallel drain keeps a private open destination on
   each belt); the copy reserve's pad guarantees this fits whenever
   the plan is no larger than the reserve's potential. *)
let feasible st plan =
  (* In-place strategies reclaim without destination frames: every
     plan is feasible (the whole point of running without a copy
     reserve). *)
  (not st.State.strategy.State.strategy_needs_reserve)
  || Collector.evacuation_frames plan
     + (Array.length st.State.belts * st.State.gc_domains)
     <= State.free_frames st

let choose_plan st ~reason =
  let all = State.live_increments st in
  let nlive = List.length all in
  let mk ?(emergency = false) target =
    let incs = closure st target in
    {
      Collector.increments = incs;
      reason;
      emergency;
      full_heap = List.length incs = nlive && nlive > 0;
    }
  in
  let rec pick = function
    | [] -> None
    | target :: rest ->
      let plan = mk target in
      if feasible st plan then Some plan
      else begin
        Log.debug (fun m ->
            m "plan for increment %d infeasible (%d frames, %d free); degrading"
              target.Increment.id
              (Collector.plan_frames plan)
              (State.free_frames st));
        pick rest
      end
  in
  (* A pinned (LOS) target would be chosen again and again if it turns
     out to be live (it is retained in place, staying the belt front),
     stalling the cascade. When a plan reaches the LOS belt, take the
     whole belt: the closure of its back, i.e. a full collection that
     sweeps every unreachable large object. *)
  let widen_pinned (c : Increment.t) =
    if c.Increment.pinned then
      match Belt.back st.State.belts.(c.Increment.belt) with
      | Some back -> back
      | None -> c
    else c
  in
  (* Target choice is the policy's; the schedule owns plan shape
     (downward closure), feasibility degradation along the candidate
     list, and the emergency fallback. *)
  let cands = List.map widen_pinned (st.State.policy.State.target st) in
  match pick cands with
  | Some plan -> Some plan
  | None -> (
    (* No plan passes the conservative occupancy test. The reserve is
       conservative — it assumes 100% survival — so before declaring
       the heap too small, attempt the policy's preferred plan and let
       the collection itself run out of frames if the *actual*
       survivors do not fit (grant_frame raises Out_of_memory during
       GC, which surfaces as this heap size failing, exactly as a real
       collector would die here). This emergency path is what lets the
       complete Beltway configurations operate below the half-heap
       discipline in tight heaps. *)
    match cands with
    | [] -> None
    | target :: _ ->
      Log.debug (fun m ->
          m "emergency collection of increment %d (plan exceeds conservative reserve)"
            target.Increment.id);
      Some (mk ~emergency:true target))

let collect_now st ~reason =
  match choose_plan st ~reason with
  | None -> None
  | Some plan -> Some (Collector.collect st plan)

let full_collect st =
  match Policy.max_stamp_increment st with
  | None -> None
  | Some target ->
    Some
      (Collector.collect st
         {
           Collector.increments = closure st target;
           reason = Gc_stats.Full;
           emergency = false;
           full_heap = true;
         })

let alloc_large st ~size =
  if State.los_belt st = None then
    invalid_arg "Schedule.alloc_large: configuration has no large object space";
  let fw = Memory.frame_words st.State.mem in
  let k = (size + fw - 1) / fw in
  let max_attempts = (2 * State.total_increments st) + 16 in
  let rec go attempts =
    if attempts > max_attempts then
      raise
        (State.Out_of_memory
           (Printf.sprintf "no progress making room for a %d-word large object" size));
    match st.State.policy.State.large_trigger st ~incoming_frames:k with
    | State.Alloc_collect reason -> (
      Trigger.fired st ~reason;
      match collect_now st ~reason with
      | Some _ -> go (attempts + 1)
      | None ->
        raise
          (State.Out_of_memory
             (Printf.sprintf "nothing collectible for a %d-word large object" size)))
    | State.Alloc_grant | State.Alloc_open_nursery | State.Alloc_split_nursery ->
      State.new_pinned_increment st ~size
  in
  go 0

(* Free-list reallocation, the in-place strategies' last resort: when
   the heap has no whole frame left (the regime where a copying
   collector is simply out of memory), an allocation that does not fit
   its target increment may land in any unsealed increment's swept
   holes. Gated off entirely under a reserve-carrying (copying)
   strategy — its increments never carry free lists, and the gate
   keeps the trigger cascade byte-identical. While whole frames remain
   the fallback stays out of the way, so the policy's collection
   cadence (time-to-die, nursery bounds) is untouched. *)
let fit_fallback st ~size =
  if
    st.State.strategy.State.strategy_needs_reserve
    || State.free_frames st > 0
  then None
  else
    List.find_opt
      (fun (i : Increment.t) ->
        (not i.Increment.sealed)
        && (not i.Increment.pinned)
        && (Increment.fits_free i ~size
           || (i.Increment.cursor <> Addr.null
              && i.Increment.cursor + size <= i.Increment.limit))
      (* holes from the sweep, or the bump tail the compactor reopened *))
      (State.live_increments st)

let prepare_alloc_in st ~belt ~size =
  (* Pretenured allocation (segregation by allocation site, paper S5):
     bump directly in the open increment of a higher belt, under the
     policy's pretenure cascade. *)
  if belt < 1 || belt >= State.regular_belts st then
    invalid_arg (Printf.sprintf "Schedule.prepare_alloc_in: bad belt %d" belt);
  if size > Memory.frame_words st.State.mem then
    invalid_arg
      (Printf.sprintf "allocation of %d words exceeds the %d-word frame size" size
         (Memory.frame_words st.State.mem));
  let max_attempts = (2 * State.total_increments st) + 16 in
  let rec go attempts =
    if attempts > max_attempts then
      raise
        (State.Out_of_memory
           (Printf.sprintf "no progress pretenuring a %d-word allocation on belt %d"
              size belt));
    let collect reason =
      Trigger.fired st ~reason;
      match collect_now st ~reason with
      | Some _ -> go (attempts + 1)
      | None ->
        raise
          (State.Out_of_memory
             (Printf.sprintf "nothing collectible for a pretenured %d-word allocation"
                size))
    in
    let inc = State.open_inc st ~belt in
    if
      (not inc.Increment.sealed)
      && ((inc.Increment.cursor <> Addr.null
          && inc.Increment.cursor + size <= inc.Increment.limit)
         || Increment.fits_free inc ~size)
    then inc
    else
      match fit_fallback st ~size with
      | Some holes -> holes
      | None -> (
      match st.State.policy.State.pretenure_trigger st with
      | State.Alloc_collect reason -> collect reason
      | State.Alloc_grant | State.Alloc_open_nursery | State.Alloc_split_nursery
        ->
        State.grant_frame st inc ~during_gc:false;
        go attempts)
  in
  go 0

let prepare_alloc st ~size =
  if size > Memory.frame_words st.State.mem then
    invalid_arg
      (Printf.sprintf "allocation of %d words exceeds the %d-word frame size" size
         (Memory.frame_words st.State.mem));
  let max_attempts = (2 * State.total_increments st) + 16 in
  let rec go attempts =
    if attempts > max_attempts then
      raise
        (State.Out_of_memory
           (Printf.sprintf
              "no progress after %d collections for a %d-word allocation (heap %d \
               frames, %d used, reserve %d)"
              attempts size st.State.heap_frames st.State.frames_used
              (Copy_reserve.frames st)));
    let collect reason =
      Trigger.fired st ~reason;
      match collect_now st ~reason with
      | Some _ -> go (attempts + 1)
      | None ->
        raise
          (State.Out_of_memory
             (Printf.sprintf "nothing collectible for a %d-word allocation" size))
    in
    let nur = nursery st in
    (* The fit test admits free-list holes (mark-sweep increments):
       without this, a swept-but-roomy nursery at its frame bound
       would re-trigger collection forever instead of reusing its
       holes. Copying increments have empty free lists, so the extra
       disjunct is dead for them. *)
    if
      (not nur.Increment.sealed)
      && ((nur.Increment.cursor <> Addr.null
          && nur.Increment.cursor + size <= nur.Increment.limit)
         || Increment.fits_free nur ~size)
    then nur
    else
      match fit_fallback st ~size with
      | Some holes -> holes
      | None -> (
        (* The allocation does not fit: the policy's trigger cascade
           decides among collecting, granting a frame, opening another
           allocation window, or a time-to-die nursery split; the
           schedule interprets the verdict mechanically. *)
        match st.State.policy.State.alloc_trigger st ~size with
        | State.Alloc_collect reason -> collect reason
        | State.Alloc_open_nursery ->
          let fresh = State.new_increment st ~belt:0 in
          State.grant_frame st fresh ~during_gc:false;
          go attempts
        | State.Alloc_split_nursery ->
          (* Time-to-die: seal the current nursery increment and direct
             the youngest allocation into a fresh one that the next
             nursery collection will spare. *)
          Increment.seal nur;
          let fresh = State.new_increment st ~belt:0 in
          State.grant_frame st fresh ~during_gc:false;
          go attempts
        | State.Alloc_grant ->
          State.grant_frame st nur ~during_gc:false;
          go attempts)
  in
  go 0
