let log_src = Logs.Src.create "beltway.schedule" ~doc:"Beltway collection schedule"

module Log = (val Logs.src_log log_src : Logs.LOG)

let nursery st =
  match Belt.back st.State.belts.(0) with
  | Some inc when (not inc.Increment.sealed) && not (Increment.at_bound inc) -> inc
  | Some inc when not inc.Increment.sealed -> inc (* at bound: caller collects *)
  | _ ->
    (* No open nursery. BOF: when the allocation belt has emptied, the
       belts flip before allocation resumes. *)
    if
      st.State.config.Config.flip
      && Belt.is_empty st.State.belts.(0)
      && not (Belt.is_empty st.State.belts.(1))
    then State.flip_belts st;
    State.new_increment st ~belt:0

let closure st (target : Increment.t) =
  List.filter
    (fun (i : Increment.t) -> i.Increment.stamp <= target.Increment.stamp)
    (State.live_increments st)

(* Front increments, one per non-empty belt, in belt order. *)
let fronts st =
  Array.to_list st.State.belts |> List.filter_map Belt.front

let min_stamp_front st =
  fronts st
  |> List.filter (fun (i : Increment.t) -> Increment.occupancy_frames i > 0)
  |> List.fold_left
       (fun acc (i : Increment.t) ->
         match acc with
         | Some (b : Increment.t) when b.Increment.stamp <= i.Increment.stamp -> acc
         | _ -> Some i)
       None

let worthwhile st (i : Increment.t) =
  Increment.occupancy_frames i >= st.State.config.Config.min_useful_frames

(* Candidate targets in *decreasing* preference order: the policy's
   first choice first, then lower-belt fall-backs for feasibility
   degradation. *)
let candidates st =
  match st.State.config.Config.order with
  | Config.Global_fifo -> Option.to_list (min_stamp_front st)
  | Config.Lowest_belt ->
    (* Empty increments are never useful targets: collecting one frees
       nothing and stalls the cascade. *)
    let fs =
      List.filter (fun (i : Increment.t) -> Increment.occupancy_frames i > 0) (fronts st)
    in
    (* Middle-belt fullness (paper S3.2: "when the higher belt becomes
       full, it collects the oldest increment in the higher belt"): a
       bounded middle belt holding more than two increments' worth is
       full — drain its front now, so garbage flows on to the top belt
       instead of accumulating until the terminal collection can no
       longer be afforded. The paper's steady state for 33.33 — "two
       completely full increments on belt 1" — is exactly this bound. *)
    let nbelts = State.regular_belts st in
    let overflowing =
      List.filter
        (fun (i : Increment.t) ->
          let b = i.Increment.belt in
          b > 0 && b < nbelts - 1
          &&
          match st.State.belt_bounds.(b) with
          | Some x -> Belt.occupancy_frames st.State.belts.(b) > 2 * x
          | None -> false)
        fs
      |> List.rev (* highest such belt first *)
    in
    let first_worthwhile = List.find_opt (worthwhile st) fs in
    let chosen =
      match (overflowing, first_worthwhile) with
      | o :: _, _ -> Some o
      | [], Some i -> Some i
      | [], None -> (
        (* Nothing worthwhile: take the highest non-empty belt (the
           paper's "heap is considered full" case forcing a major
           collection). *)
        match List.rev fs with last :: _ -> Some last | [] -> None)
    in
    (match chosen with
    | None -> []
    | Some c ->
      (* Degradation candidates: every front on a belt lower than or
         equal to the chosen one, highest belt first. *)
      List.filter (fun (i : Increment.t) -> i.Increment.belt <= c.Increment.belt) fs
      |> List.rev)

(* Evacuating the plan needs at most its own occupancy plus one
   partially filled frame per destination belt; the copy reserve's pad
   guarantees this fits whenever the plan is no larger than the
   reserve's potential. *)
let feasible st plan =
  Collector.evacuation_frames plan + Array.length st.State.belts
  <= State.free_frames st

let choose_plan st ~reason =
  let all = State.live_increments st in
  let nlive = List.length all in
  let mk ?(emergency = false) target =
    let incs = closure st target in
    {
      Collector.increments = incs;
      reason;
      emergency;
      full_heap = List.length incs = nlive && nlive > 0;
    }
  in
  let rec pick = function
    | [] -> None
    | target :: rest ->
      let plan = mk target in
      if feasible st plan then Some plan
      else begin
        Log.debug (fun m ->
            m "plan for increment %d infeasible (%d frames, %d free); degrading"
              target.Increment.id
              (Collector.plan_frames plan)
              (State.free_frames st));
        pick rest
      end
  in
  (* Proactive completeness: once the full-collection watermark is
     reached, collect the whole heap now — the live estimate says it
     fits even when the conservative occupancy test does not. *)
  (* A pinned (LOS) target would be chosen again and again if it turns
     out to be live (it is retained in place, staying the belt front),
     stalling the cascade. When a plan reaches the LOS belt, take the
     whole belt: the closure of its back, i.e. a full collection that
     sweeps every unreachable large object. *)
  let widen_pinned (c : Increment.t) =
    if c.Increment.pinned then
      match Belt.back st.State.belts.(c.Increment.belt) with
      | Some back -> back
      | None -> c
    else c
  in
  let cands = List.map widen_pinned (candidates st) in
  match pick cands with
  | Some plan -> Some plan
  | None -> (
    (* No plan passes the conservative occupancy test. The reserve is
       conservative — it assumes 100% survival — so before declaring
       the heap too small, attempt the policy's preferred plan and let
       the collection itself run out of frames if the *actual*
       survivors do not fit (grant_frame raises Out_of_memory during
       GC, which surfaces as this heap size failing, exactly as a real
       collector would die here). This emergency path is what lets the
       complete Beltway configurations operate below the half-heap
       discipline in tight heaps. *)
    match cands with
    | [] -> None
    | target :: _ ->
      Log.debug (fun m ->
          m "emergency collection of increment %d (plan exceeds conservative reserve)"
            target.Increment.id);
      Some (mk ~emergency:true target))

let collect_now st ~reason =
  match choose_plan st ~reason with
  | None -> None
  | Some plan -> Some (Collector.collect st plan)

let full_collect st =
  let all = State.live_increments st in
  match
    List.fold_left
      (fun acc (i : Increment.t) ->
        match acc with
        | Some (b : Increment.t) when b.Increment.stamp >= i.Increment.stamp -> acc
        | _ -> Some i)
      None all
  with
  | None -> None
  | Some target ->
    Some
      (Collector.collect st
         {
           Collector.increments = closure st target;
           reason = Gc_stats.Full;
           emergency = false;
           full_heap = true;
         })

let alloc_large st ~size =
  if State.los_belt st = None then
    invalid_arg "Schedule.alloc_large: configuration has no large object space";
  let fw = Memory.frame_words st.State.mem in
  let k = (size + fw - 1) / fw in
  let max_attempts = (2 * State.total_increments st) + 16 in
  let rec go attempts =
    if attempts > max_attempts then
      raise
        (State.Out_of_memory
           (Printf.sprintf "no progress making room for a %d-word large object" size));
    if Trigger.remset_due st || Trigger.heap_full st ~incoming_frames:k then begin
      let reason =
        if Trigger.remset_due st then Gc_stats.Remset else Gc_stats.Heap_full
      in
      Trigger.fired st ~reason;
      match collect_now st ~reason with
      | Some _ -> go (attempts + 1)
      | None ->
        raise
          (State.Out_of_memory
             (Printf.sprintf "nothing collectible for a %d-word large object" size))
    end
    else State.new_pinned_increment st ~size
  in
  go 0

let prepare_alloc_in st ~belt ~size =
  (* Pretenured allocation (segregation by allocation site, paper S5):
     bump directly in the open increment of a higher belt. Only the
     heap-full and remset triggers apply — nursery-specific triggers
     (bound, TTD) govern belt 0 only. *)
  if belt < 1 || belt >= State.regular_belts st then
    invalid_arg (Printf.sprintf "Schedule.prepare_alloc_in: bad belt %d" belt);
  if size > Memory.frame_words st.State.mem then
    invalid_arg
      (Printf.sprintf "allocation of %d words exceeds the %d-word frame size" size
         (Memory.frame_words st.State.mem));
  let max_attempts = (2 * State.total_increments st) + 16 in
  let rec go attempts =
    if attempts > max_attempts then
      raise
        (State.Out_of_memory
           (Printf.sprintf "no progress pretenuring a %d-word allocation on belt %d"
              size belt));
    let collect reason =
      Trigger.fired st ~reason;
      match collect_now st ~reason with
      | Some _ -> go (attempts + 1)
      | None ->
        raise
          (State.Out_of_memory
             (Printf.sprintf "nothing collectible for a pretenured %d-word allocation"
                size))
    in
    let inc = State.open_inc st ~belt in
    if
      (not inc.Increment.sealed)
      && inc.Increment.cursor <> Addr.null
      && inc.Increment.cursor + size <= inc.Increment.limit
    then inc
    else if Trigger.remset_due st then collect Gc_stats.Remset
    else if Trigger.heap_full st ~incoming_frames:1 then collect Gc_stats.Heap_full
    else begin
      State.grant_frame st inc ~during_gc:false;
      go attempts
    end
  in
  go 0

let prepare_alloc st ~size =
  if size > Memory.frame_words st.State.mem then
    invalid_arg
      (Printf.sprintf "allocation of %d words exceeds the %d-word frame size" size
         (Memory.frame_words st.State.mem));
  let max_attempts = (2 * State.total_increments st) + 16 in
  let rec go attempts =
    if attempts > max_attempts then
      raise
        (State.Out_of_memory
           (Printf.sprintf
              "no progress after %d collections for a %d-word allocation (heap %d \
               frames, %d used, reserve %d)"
              attempts size st.State.heap_frames st.State.frames_used
              (Copy_reserve.frames st)));
    let collect reason =
      Trigger.fired st ~reason;
      match collect_now st ~reason with
      | Some _ -> go (attempts + 1)
      | None ->
        raise
          (State.Out_of_memory
             (Printf.sprintf "nothing collectible for a %d-word allocation" size))
    in
    let nur = nursery st in
    if
      (not nur.Increment.sealed)
      && nur.Increment.cursor <> Addr.null
      && nur.Increment.cursor + size <= nur.Increment.limit
    then nur
    else if Trigger.remset_due st then collect Gc_stats.Remset
    else if Trigger.nursery_full st ~size then
      (* Nursery trigger: only meaningful for Lowest_belt policies;
         Global_fifo (older-first) configurations instead open another
         increment on the allocation belt if there is room. *)
      match st.State.config.Config.order with
      | Config.Lowest_belt -> collect Gc_stats.Nursery
      | Config.Global_fifo ->
        if Trigger.heap_full st ~incoming_frames:1 then collect Gc_stats.Heap_full
        else begin
          let fresh = State.new_increment st ~belt:0 in
          State.grant_frame st fresh ~during_gc:false;
          go attempts
        end
    else if Trigger.heap_full st ~incoming_frames:1 then collect Gc_stats.Heap_full
    else if Trigger.ttd_due st then begin
      (* Time-to-die: seal the current nursery increment and direct the
         youngest allocation into a fresh one that the next nursery
         collection will spare. *)
      Increment.seal nur;
      let fresh = State.new_increment st ~belt:0 in
      State.grant_frame st fresh ~during_gc:false;
      go attempts
    end
    else begin
      State.grant_frame st nur ~during_gc:false;
      go attempts
    end
  in
  go 0
