type t = State.t

exception Out_of_memory = State.Out_of_memory

let stamp_boot_frames st =
  List.iter
    (fun frame ->
      Frame_table.set st.State.ftab ~frame ~stamp:Frame_table.immortal_stamp
        ~incr:(-1) ~pinned:false)
    (Boot_space.frames st.State.boot)

(* BELTWAY_GC_DOMAINS: process-wide default for the number of domains a
   collection fans out over; an explicit [?gc_domains] overrides it. *)
let env_gc_domains () =
  match Sys.getenv_opt "BELTWAY_GC_DOMAINS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let create ?(frame_log_words = 10) ?gc_domains ~config ~heap_bytes () =
  let frame_bytes = (1 lsl frame_log_words) * Addr.bytes_per_word in
  let heap_frames = max 4 ((heap_bytes + frame_bytes - 1) / frame_bytes) in
  let policy =
    match Policy.resolve config with
    | Ok p -> p
    | Error e -> invalid_arg ("Gc.create: " ^ e)
  in
  let strategy =
    match Strategy.resolve config with
    | Ok s -> s
    | Error e -> invalid_arg ("Gc.create: " ^ e)
  in
  let st = State.create ~strategy ~config ~policy ~heap_frames ~frame_log_words () in
  stamp_boot_frames st;
  (match gc_domains with
  | Some n -> State.set_gc_domains st n
  | None -> (
    match env_gc_domains () with
    | Some n -> State.set_gc_domains st n
    | None -> ()));
  (match Strategy.check_domains strategy ~gc_domains:st.State.gc_domains with
  | Ok () -> ()
  | Error e -> invalid_arg ("Gc.create: " ^ e));
  st

let register_type st ~name =
  let id = Type_registry.register st.State.types ~name in
  (* Type registration may have mapped new boot frames; keep their
     stamps immortal. *)
  stamp_boot_frames st;
  id

let tib_value st ty = Type_registry.tib_value st.State.types ty

let alloc_hooks hs ~addr ~tib ~nfields =
  List.iter (fun (h : State.hooks) -> h.State.on_alloc ~addr ~tib ~nfields) hs

let[@inline] finish_alloc_tib st ~tib ~nfields ~size addr =
  Object_model.init st.State.mem addr ~tib ~nfields;
  let stats = st.State.stats in
  stats.Gc_stats.words_allocated <- stats.Gc_stats.words_allocated + size;
  stats.Gc_stats.objects_allocated <- stats.Gc_stats.objects_allocated + 1;
  (* The TIB initialising write goes through the write barrier, exactly
     the Jikes RVM behaviour that motivates the nursery filter. *)
  Write_barrier.record st ~slot:(Object_model.tib_addr addr)
    ~target:(Value.to_addr tib);
  (match st.State.hooks with
  | [] -> ()
  | hs -> alloc_hooks hs ~addr ~tib ~nfields);
  addr

let finish_alloc st ~ty ~nfields ~size addr =
  finish_alloc_tib st ~tib:(tib_value st ty) ~nfields ~size addr

(* The narrow fast-path entry point the bytecode VM inlines at its
   allocating opcodes: the nursery bump hit of [alloc], nothing else.
   Returns [Addr.null] whenever the slow path must run — LOS-sized
   request, no open nursery, or no room — having had no side effect
   at all ([bump_or_null] is side-effect-free on failure), so the
   caller's fallback to [alloc] replays from the same state and the
   two paths compose to exactly [alloc]'s behaviour: same stats, same
   barrier traffic, same hooks. *)
let[@inline] alloc_small_fast st ~tib ~nfields =
  let size = Object_model.size_words ~nfields in
  let large =
    match st.State.config.Config.los_threshold with
    | Some threshold -> size >= threshold
    | None -> false
  in
  if large then Addr.null
  else
    match Belt.back st.State.belts.(0) with
    | Some inc when not inc.Increment.sealed ->
      let addr = Increment.bump_or_null inc ~size in
      if addr = Addr.null then Addr.null
      else finish_alloc_tib st ~tib ~nfields ~size addr
    | _ -> Addr.null

let alloc st ~ty ~nfields =
  if nfields < 0 then invalid_arg "Gc.alloc: negative field count";
  let size = Object_model.size_words ~nfields in
  match st.State.config.Config.los_threshold with
  | Some threshold when size >= threshold ->
    let inc = Schedule.alloc_large st ~size in
    finish_alloc st ~ty ~nfields ~size (Increment.base_object inc st.State.mem)
  | _ ->
    let nur = Schedule.prepare_alloc st ~size in
    (* Bump, falling back to the increment's free list (mark-sweep
       holes); identical to a plain bump when the list is empty. *)
    let addr = Increment.alloc_or_null nur st.State.mem ~size in
    if addr = Addr.null then
      (* prepare_alloc guarantees room; reaching here is a scheduler bug. *)
      invalid_arg "Gc.alloc: internal error: nursery bump failed after prepare";
    finish_alloc st ~ty ~nfields ~size addr

let alloc_pretenured st ~ty ~nfields ~belt =
  if nfields < 0 then invalid_arg "Gc.alloc_pretenured: negative field count";
  let size = Object_model.size_words ~nfields in
  match st.State.config.Config.los_threshold with
  | Some threshold when size >= threshold ->
    (* Large objects are already segregated; the LOS overrides. *)
    let inc = Schedule.alloc_large st ~size in
    finish_alloc st ~ty ~nfields ~size (Increment.base_object inc st.State.mem)
  | _ ->
    let inc = Schedule.prepare_alloc_in st ~belt ~size in
    let addr = Increment.alloc_or_null inc st.State.mem ~size in
    if addr = Addr.null then
      invalid_arg "Gc.alloc_pretenured: internal error: bump failed";
    finish_alloc st ~ty ~nfields ~size addr

let write st obj i v =
  Object_model.set_field st.State.mem obj i v;
  if Value.is_ref v then
    Write_barrier.record st ~slot:(Object_model.field_addr obj i)
      ~target:(Value.to_addr v);
  match st.State.hooks with
  | [] -> ()
  | hs -> List.iter (fun h -> h.State.on_write ~obj ~field:i ~value:v) hs

let read st obj i = Object_model.get_field st.State.mem obj i
let nfields st obj = Object_model.nfields st.State.mem obj
let type_of st obj = Type_registry.id_of_tib st.State.types (Object_model.tib st.State.mem obj)
let roots st = st.State.roots
let stats st = st.State.stats
let config st = st.State.config
let policy_name st = st.State.policy.State.policy_name
let strategy_name st = st.State.strategy.State.strategy_name
let collect st = ignore (Schedule.collect_now st ~reason:Gc_stats.Forced)
let full_collect st = ignore (Schedule.full_collect st)
let heap_frames st = st.State.heap_frames
let frame_bytes st = Memory.frame_bytes st.State.mem
let heap_bytes st = heap_frames st * frame_bytes st
let frames_used st = st.State.frames_used
let words_allocated st = st.State.stats.Gc_stats.words_allocated
let bytes_allocated st = words_allocated st * Addr.bytes_per_word
let live_words_upper_bound st = State.live_words st
let reserve_frames st = Copy_reserve.frames st
let set_gc_domains st n =
  State.set_gc_domains st n;
  match Strategy.check_domains st.State.strategy ~gc_domains:st.State.gc_domains with
  | Ok () -> ()
  | Error e ->
    State.set_gc_domains st 1;
    invalid_arg ("Gc.set_gc_domains: " ^ e)
let gc_domains st = st.State.gc_domains
let state st = st
let register_site st ~name = State.register_site st ~name
let set_alloc_site st site = st.State.alloc_site <- site
let alloc_site st = st.State.alloc_site
let site_name st id = State.site_name st id
let site_count st = State.site_count st
let type_name st ty = Type_registry.name st.State.types ty

let pp_heap fmt st =
  Format.fprintf fmt "@[<v>heap: %d/%d frames used, reserve %d, remsets %d entries"
    st.State.frames_used st.State.heap_frames (Copy_reserve.frames st)
    (Remset.total_entries st.State.remsets);
  if st.State.policy.State.barrier = State.Barrier_cards then
    Format.fprintf fmt ", %d dirty cards" (Card_table.dirty_count st.State.cards);
  Array.iter
    (fun belt ->
      let name =
        match State.los_belt st with
        | Some b when b = Belt.index belt -> "LOS"
        | _ -> string_of_int (Belt.index belt)
      in
      Format.fprintf fmt "@,belt %s (%d increments):" name (Belt.length belt);
      Belt.iter belt (fun (i : Increment.t) ->
          Format.fprintf fmt "@,  inc %d stamp=%d frames=%d words=%d%s%s" i.Increment.id
            i.Increment.stamp (Increment.frame_count i) i.Increment.words_used
            (if i.Increment.sealed then " sealed" else "")
            (if i.Increment.pinned then " pinned" else "")))
    st.State.belts;
  Format.fprintf fmt "@]"
