(** Increments: the unit of collection (paper S2.2).

    An increment is an independently collectible region of memory,
    realised as an ordered list of frames sharing one collect stamp,
    with bump-pointer allocation in the last frame. Because copying
    never packs perfectly (frame tails are wasted when an object does
    not fit), each retired frame remembers how many words it actually
    used, which lets a Cheney scan walk the increment's objects without
    any per-frame object table. *)

type t = {
  id : int;
  mutable belt : int; (* belt index; updated when BOF flips belts *)
  mutable stamp : int;
  frames : int Beltway_util.Vec.t; (* frame indices, allocation order *)
  frame_used : int Beltway_util.Vec.t; (* used words per retired frame *)
  mutable cursor : Addr.t; (* bump pointer; null if no frame yet *)
  mutable limit : Addr.t; (* end of current frame *)
  mutable words_used : int; (* live-words estimate: words ever bumped *)
  mutable objects : int; (* objects allocated/copied into this increment *)
  bound_frames : int option; (* None = may grow to all usable memory *)
  mutable sealed : bool; (* closed to further allocation *)
  pinned : bool;
      (* a large-object-space increment: exactly one object, never
         copied; reclaimed whole when unreachable *)
  mutable in_plan : bool;
      (* member of the plan currently being collected; lets the
         collector and [State.open_inc] test plan membership without a
         hashtable. Always false outside a collection. *)
  mutable gc_mark : bool;
      (* transient per-collection mark (pinned increment reached, or
         queued for a card scan). Always false outside a collection. *)
  free_list : int Beltway_util.Vec.t;
      (* flat (address, words) pairs indexing the filler objects left
         by a sweep; empty under the copying strategy *)
  mutable free_word_count : int; (* sum of the free-list hole sizes *)
}

type pos
(** A scan position within an increment (Cheney scan pointer). *)

val create :
  id:int -> belt:int -> stamp:int -> bound_frames:int option -> t

val create_pinned :
  id:int -> belt:int -> stamp:int -> frames:int list -> Memory.t -> size:int -> t
(** A sealed, pinned increment holding exactly one [size]-word object
    laid out from the base of the first frame; the frames must be
    address-contiguous (consecutive indices).
    @raise Invalid_argument on an empty frame list. *)

val base_object : t -> Memory.t -> Addr.t
(** The single object of a pinned increment.
    @raise Invalid_argument if not pinned. *)

val frame_count : t -> int

val used_of_frame : t -> Memory.t -> int -> int
(** Used words of the increment's [fi]-th frame: the recorded extent
    of a retired frame, the bump cursor's progress in the frame under
    it (zero for an index out of range). The in-place strategies walk
    and rebuild increments frame by frame with this. *)

val occupancy_frames : t -> int
(** Frames held (the collection/copy-reserve accounting unit). *)

val words_used : t -> int

val wasted_words : t -> Memory.t -> int
(** Frame words held minus words used (fragmentation at frame seams,
    the reason the paper's copy reserve must be "slightly more
    generous"). *)

val at_bound : t -> bool
(** True when [bound_frames] is reached and the current frame cannot be
    extended further. *)

val add_frame : t -> Memory.t -> int -> unit
(** Append a freshly allocated frame and point the bump cursor at it.
    The caller owns budget accounting and frame-info stamping.
    @raise Invalid_argument if sealed or at bound. *)

val try_bump : t -> size:int -> Addr.t option
(** Bump-allocate [size] words in the current frame; [None] when it
    does not fit (caller decides whether to extend or collect). The
    returned address is uninitialised (zeroed) memory. *)

val bump_or_null : t -> size:int -> Addr.t
(** {!try_bump} without the [option] cell: [Addr.null] when the
    allocation does not fit. The allocation-free form the collector's
    copy loop and the mutator allocation path use. *)

val unbump : t -> addr:Addr.t -> size:int -> unit
(** Roll back the most recent {!bump_or_null} of [size] words at
    [addr] — the parallel collector's lost-forwarding-race path. Only
    valid immediately after the matching bump, with no intervening
    allocation or frame grant in this increment.
    @raise Invalid_argument if [addr + size] is not the cursor. *)

val seal : t -> unit
(** Close to further allocation (nursery handoff for the time-to-die
    trigger; plan membership seals too). *)

(** {2 Free-list reallocation}

    The mark-sweep strategy turns each dead run into a *filler object*
    (even header, odd-immediate payload) so the object stream stays
    walkable, and indexes the holes here as flat (address, words)
    pairs. Allocation is first-fit with a remainder rule: a hole is
    taken exactly or split leaving at least [Object_model.header_words]
    words for the remainder filler. Copying increments never populate
    the list, so these paths cost them nothing. *)

val clear_free_list : t -> unit
val push_free : t -> addr:Addr.t -> words:int -> unit

val free_words : t -> int
(** Total words on the free list (an upper bound on what
    {!fit_or_null} can place). *)

val fits_free : t -> size:int -> bool
(** Whether some hole admits a [size]-word object under the remainder
    rule — the schedule's must-this-allocation-trigger test. *)

val fit_or_null : t -> Memory.t -> size:int -> Addr.t
(** Take the first fitting hole: returns zeroed memory like a fresh
    bump, writes the remainder filler when splitting, or [Addr.null]
    when no hole fits. *)

val alloc_or_null : t -> Memory.t -> size:int -> Addr.t
(** {!bump_or_null}, falling back to {!fit_or_null} when the bump
    fails and the increment is not sealed. *)

val scan_pos : t -> pos
(** Position at the current frontier: subsequent copies into this
    increment will be scanned from here. *)

val start_pos : t -> pos
(** Position at the first object (integrity walks, oracle). *)

val scan_pending : t -> Memory.t -> pos -> bool
(** Whether objects remain between [pos] and the frontier (normalises
    [pos] across frame seams as a side effect). *)

val scan_step : t -> Memory.t -> pos -> Addr.t
(** Object address at [pos], advancing [pos] past it.
    @raise Invalid_argument if nothing is pending. *)

val scan_next : t -> Memory.t -> pos -> Addr.t
(** {!scan_pending} and {!scan_step} in one call: the next object
    address (advancing [pos] past it), or [Addr.null] when the scan has
    reached the frontier. Normalises [pos] once per object, where the
    pending/step pair normalises three times. *)

val iter_objects : t -> Memory.t -> (Addr.t -> unit) -> unit
(** Walk every object currently in the increment from the beginning.
    Unsafe during collection of this increment (headers may be
    forwarding pointers). *)
