(* An int-specialised Chase–Lev work-stealing deque.

   One owner pushes and pops at the bottom; any number of thieves CAS
   the top. The element type is a bare [int] (the collector stores
   object addresses) so the structure is allocation-free in steady
   state; an [empty] sentinel chosen at creation stands in for "no
   element" on both the empty-deque and lost-race paths, keeping the
   hot path free of [option] cells.

   The circular buffer is replaced wholesale on growth (never mutated
   in place for a resize), and thieves re-read it through an [Atomic]
   cell *after* loading [top] and [bottom]: a successful CAS on [top]
   at value [t] proves the owner had not consumed logical index [t],
   and every buffer new enough to be observed after those loads holds
   logical index [t] intact — growth copies exactly the live range
   [top, bottom) and pushes only ever write at indices >= bottom.

   All control words are seq_cst OCaml [Atomic]s; element reads and
   writes are plain, ordered through the [bottom] publication store
   (write element, then store bottom) on the owner side and the
   corresponding load on the thief side. *)

type t = {
  buf : int array Atomic.t;
  top : int Atomic.t;
  bottom : int Atomic.t;
  empty : int;
}

let create ?(capacity = 256) ~empty () =
  let cap = max 2 capacity in
  (* Round up to a power of two so index masking works. *)
  let cap =
    let c = ref 2 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    buf = Atomic.make (Array.make cap empty);
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    empty;
  }

let empty_value t = t.empty

let length t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
let is_empty t = length t = 0

let grow t a ~top:tp ~bottom:b =
  let n = Array.length a in
  let a' = Array.make (n * 2) t.empty in
  for i = tp to b - 1 do
    a'.(i land ((n * 2) - 1)) <- a.(i land (n - 1))
  done;
  Atomic.set t.buf a';
  a'

(* Owner only. *)
let push t v =
  if v = t.empty then invalid_arg "Deque.push: the empty sentinel";
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let a = Atomic.get t.buf in
  let a = if b - tp >= Array.length a then grow t a ~top:tp ~bottom:b else a in
  a.(b land (Array.length a - 1)) <- v;
  Atomic.set t.bottom (b + 1)

(* Owner only. Returns [empty] when the deque has no element (or a
   thief won the race to the last one). *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  let a = Atomic.get t.buf in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty; undo the reservation. *)
    Atomic.set t.bottom (b + 1);
    t.empty
  end
  else begin
    let v = a.(b land (Array.length a - 1)) in
    if b > tp then v
    else begin
      (* Single element left: race the thieves for it. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (b + 1);
      if won then v else t.empty
    end
  end

(* Any domain. Returns [empty] on an empty deque and on CAS contention
   (the caller's steal loop retries other victims anyway). *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b <= tp then t.empty
  else begin
    let a = Atomic.get t.buf in
    let v = a.(tp land (Array.length a - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else t.empty
  end
