(** A fixed-size team of OCaml 5 domains draining a shared task queue.

    The engine behind both the harness pool ([Beltway_sim.Pool]) and
    the parallel collector's intra-collection fan-out. The submitting
    domain always participates in draining, so a team of [size] keeps
    exactly [size] domains busy ([size - 1] spawned workers plus the
    caller). Worker domains are spawned lazily on the first parallel
    submission and joined by {!shutdown}.

    Nested submissions (from a worker, or from a domain currently
    helping another {!run}/{!map}) downgrade to sequential execution
    on the caller — the queue has no dependency tracking, and this is
    what makes nesting deadlock-free. *)

type t

val create : size:int -> t
(** A team running at most [size] tasks concurrently (clamped to
    [1, 64]). *)

val size : t -> int

val in_worker : unit -> bool
(** Whether the calling domain is a team worker (or is helping drain a
    submission); any team fan-out from such a domain runs
    sequentially. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element, up to [size]
    concurrently, returning results in input order. With [size = 1], a
    singleton list, or from inside a worker, this is exactly
    [List.map f xs] on the calling domain. If any application raises,
    one such exception is re-raised after all tasks finish. *)

val run : t -> domains:int -> (int -> unit) -> unit
(** [run t ~domains f] runs [f 0 .. f (domains - 1)] to completion, up
    to [size] concurrently (sequentially under the same conditions as
    {!map}). If any [f i] raises, one such exception is re-raised
    after all finish. *)

val shutdown : t -> unit
(** Stop and join the team's workers; the team restarts lazily if used
    again. *)

val max_size : int
(** The clamp applied to [size] (64). *)
