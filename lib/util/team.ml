(* A fixed-size team of worker domains draining a shared task queue.

   This is the engine behind both [Beltway_sim.Pool] (embarrassingly
   parallel figure sweeps) and the parallel collector's intra-collection
   fan-out: a Mutex+Condition queue of thunks, [size - 1] spawned
   domains, and a submitting domain that always participates in
   draining, so a team of [size] keeps exactly [size] domains busy.

   Nesting: a domain-local flag marks every team worker (and every
   domain currently helping a [run]), and any nested submission
   downgrades to sequential execution on the caller. The queue has no
   dependency tracking, so this is what keeps nested fan-outs both
   deadlock-free and cheap to reason about; the parallel collector's
   drain tasks are self-sufficient (any one of them can finish the
   whole drain via stealing), so a degraded sequential execution is
   still correct, just serial. *)

type t = {
  size : int;
  mutable workers : unit Domain.t list; (* spawned lazily on first parallel run *)
  mutable started : bool;
  mutable stop : bool;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
}

let in_worker_flag : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_flag

(* OCaml 5 performs poorly beyond ~a hundred domains; far above any
   sensible core count, so clamp quietly. *)
let max_size = 64

let create ~size =
  {
    size = max 1 (min size max_size);
    workers = [];
    started = false;
    stop = false;
    queue = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
  }

let size t = t.size

let worker_loop t () =
  Domain.DLS.set in_worker_flag true;
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m (* stopping *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.m;
      task ();
      loop ()
    end
  in
  loop ()

let ensure_started t =
  if not t.started then begin
    t.started <- true;
    t.workers <- List.init (t.size - 1) (fun _ -> Domain.spawn (worker_loop t))
  end

let shutdown t =
  if t.started then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.started <- false;
    t.stop <- false
  end

(* Enqueue [tasks] and block until all have run; the caller drains
   alongside the workers. Exceptions raised by a task are caught by
   the caller-provided wrapper below, never here, so the queue
   machinery itself cannot wedge a worker. *)
let run_all t tasks =
  let n = List.length tasks in
  if n = 0 then ()
  else if t.size <= 1 || n <= 1 || in_worker () then List.iter (fun f -> f ()) tasks
  else begin
    ensure_started t;
    let remaining = Atomic.make n in
    let done_m = Mutex.create () in
    let done_c = Condition.create () in
    let wrap f () =
      f ();
      Mutex.lock done_m;
      if Atomic.fetch_and_add remaining (-1) = 1 then Condition.broadcast done_c;
      Mutex.unlock done_m
    in
    Mutex.lock t.m;
    List.iter (fun f -> Queue.push (wrap f) t.queue) tasks;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    (* Help drain, then sleep until the stragglers finish. The helping
       caller is flagged as a worker so that anything it runs cannot
       submit a nested parallel fan-out. *)
    let was_worker = in_worker () in
    Domain.DLS.set in_worker_flag true;
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock t.m;
        let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
        Mutex.unlock t.m;
        match task with
        | Some task ->
          task ();
          help ()
        | None ->
          Mutex.lock done_m;
          while Atomic.get remaining > 0 do
            Condition.wait done_c done_m
          done;
          Mutex.unlock done_m
      end
    in
    help ();
    Domain.DLS.set in_worker_flag was_worker
  end

let map t f xs =
  let n = List.length xs in
  if t.size <= 1 || n <= 1 || in_worker () then List.map f xs
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let tasks =
      List.mapi
        (fun i x () ->
          try results.(i) <- Some (f x)
          with e -> ignore (Atomic.compare_and_set first_error None (Some e)))
        xs
    in
    run_all t tasks;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let run t ~domains f =
  let domains = max 1 domains in
  let first_error = Atomic.make None in
  let tasks =
    List.init domains (fun i () ->
        try f i
        with e -> ignore (Atomic.compare_and_set first_error None (Some e)))
  in
  run_all t tasks;
  match Atomic.get first_error with Some e -> raise e | None -> ()
