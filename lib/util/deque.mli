(** An int-specialised Chase–Lev work-stealing deque.

    One owning domain pushes and pops at the bottom; any number of
    other domains steal from the top. Elements are bare [int]s and a
    per-deque [empty] sentinel replaces [option] on every return path,
    so the steady state allocates nothing. The parallel collector uses
    one of these per GC domain as its grey stack. *)

type t

val create : ?capacity:int -> empty:int -> unit -> t
(** A deque whose "no element" answer is [empty] (the sentinel must
    never be pushed). [capacity] (default 256) is rounded up to a
    power of two; the buffer grows automatically. *)

val empty_value : t -> int
(** The sentinel chosen at creation. *)

val push : t -> int -> unit
(** Owner only: push at the bottom.
    @raise Invalid_argument on the empty sentinel. *)

val pop : t -> int
(** Owner only: pop the most recently pushed element (LIFO), or the
    sentinel when none remains. *)

val steal : t -> int
(** Any domain: take the oldest element (FIFO), or the sentinel when
    the deque is empty {e or} another thief won the race — callers
    treat both as a miss and move to the next victim. *)

val length : t -> int
(** Momentary element count (racy, for diagnostics only). *)

val is_empty : t -> bool
