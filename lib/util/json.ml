type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing -------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = false) t =
  let b = Buffer.create 256 in
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f ->
      if Float.is_finite f then Buffer.add_string b (number_to_string f)
      else Buffer.add_string b "null" (* JSON has no nan/inf *)
    | Str s -> escape_string b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---- parsing --------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word v =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'; c.pos <- c.pos + 1
      | Some '\\' -> Buffer.add_char b '\\'; c.pos <- c.pos + 1
      | Some '/' -> Buffer.add_char b '/'; c.pos <- c.pos + 1
      | Some 'n' -> Buffer.add_char b '\n'; c.pos <- c.pos + 1
      | Some 'r' -> Buffer.add_char b '\r'; c.pos <- c.pos + 1
      | Some 't' -> Buffer.add_char b '\t'; c.pos <- c.pos + 1
      | Some 'b' -> Buffer.add_char b '\b'; c.pos <- c.pos + 1
      | Some 'f' -> Buffer.add_char b '\012'; c.pos <- c.pos + 1
      | Some 'u' ->
        if c.pos + 5 > String.length c.s then fail c "truncated \\u escape";
        let hex = String.sub c.s (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
        in
        (* Only BMP code points below 0x80 round-trip exactly; others
           are emitted as UTF-8. *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        c.pos <- c.pos + 5
      | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char b ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail c (Printf.sprintf "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected , or ] in array"
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ---- accessors ------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
