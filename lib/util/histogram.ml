type t = {
  bucket_width : float;
  counts : (int, int) Hashtbl.t;
  mutable n : int;
  mutable sum : float;
  mutable max_v : float;
}

let create ~bucket_width () =
  if bucket_width <= 0.0 then invalid_arg "Histogram.create: width must be positive";
  { bucket_width; counts = Hashtbl.create 64; n = 0; sum = 0.0; max_v = 0.0 }

let add t v =
  let v = Float.max 0.0 v in
  let b = int_of_float (v /. t.bucket_width) in
  Hashtbl.replace t.counts b (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts b));
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let max_value t = t.max_v

let buckets t =
  Hashtbl.fold (fun b c acc -> (float_of_int b *. t.bucket_width, c) :: acc) t.counts []
  |> List.sort compare

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let quantile t q =
  if t.n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    (* Rank of the q-th sample, 1-based; q = 0 takes the first. *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let rec walk cum = function
      | [] -> t.max_v
      | (lo, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then
          (* Upper edge of the bucket, but never above the recorded
             maximum (the top bucket's edge usually overshoots it). *)
          Float.min (lo +. t.bucket_width) t.max_v
        else walk cum rest
    in
    walk 0 (buckets t)
  end

let merge a b =
  if a.bucket_width <> b.bucket_width then
    invalid_arg "Histogram.merge: bucket widths differ";
  let t = create ~bucket_width:a.bucket_width () in
  let absorb src =
    Hashtbl.iter
      (fun bkt c ->
        Hashtbl.replace t.counts bkt
          (c + Option.value ~default:0 (Hashtbl.find_opt t.counts bkt)))
      src.counts;
    t.n <- t.n + src.n;
    t.sum <- t.sum +. src.sum;
    if src.max_v > t.max_v then t.max_v <- src.max_v
  in
  absorb a;
  absorb b;
  t
