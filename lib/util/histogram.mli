(** Fixed-bucket histograms for pause-time distributions. *)

type t

val create : bucket_width:float -> unit -> t
(** Buckets are [\[k*w, (k+1)*w)]. @raise Invalid_argument if
    [bucket_width <= 0]. *)

val add : t -> float -> unit
(** Record one observation; negative observations are clamped to 0. *)

val count : t -> int
(** Total observations. *)

val max_value : t -> float
(** Largest observation recorded (0 when empty). *)

val buckets : t -> (float * int) list
(** Non-empty buckets as (lower bound, count), ascending. *)

val mean : t -> float
(** Mean of raw observations (exact, not bucketised). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]] (clamped): an upper bound on the
    q-th sample, resolved to its bucket's upper edge and capped at
    {!max_value}. 0 when empty; [quantile t 1.0 = max_value t]. *)

val merge : t -> t -> t
(** Combine two histograms into a fresh one (inputs unchanged).
    @raise Invalid_argument when the bucket widths differ. *)
