(** Minimal JSON: enough to emit and validate the benchmark harness's
    machine-readable results ([BENCH_results.json]) without an external
    dependency. Numbers are floats (as in JSON itself); non-finite
    floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialise; [indent] pretty-prints with two-space indentation. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field of an object; [None] for absent fields or non-objects. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
