(* Ast -> Bytecode.

   The compiled code's operand stack IS the collector's shadow stack
   (Roots), so the compilation discipline is not free: at every
   allocation site the stack must hold exactly the values the AST
   interpreter has pushed at the same point, or the two engines
   diverge in GC behaviour (different live sets -> different copied
   words -> different stats). The rules that guarantee this:

   - every expression compiles to code with net stack effect +1;
   - argument lists (prims, calls, let bindings, quoted pairs) are
     evaluated left to right, each result staying on the stack until
     the consuming instruction, exactly as [Interp] pushes them;
   - values the interpreter holds only in OCaml locals (an [if]
     condition, a discarded [begin] statement, a returned body result
     during frame release) are popped before the next instruction
     that can allocate.

   Variable resolution: the interpreter walks the environment-frame
   parent chain [depth] times for every access. Here each lexical
   scope whose frame lives in the current function's stack segment is
   resolved to a static fp-relative offset (zero hops); only scopes
   captured from enclosing functions are reached by parent-chain hops
   starting at the function's parameter frame (offset 0). *)

module Vec = Beltway_util.Vec
module B = Bytecode

let err fmt = Format.kasprintf (fun s -> raise (Ast.Compile_error s)) fmt

type ctx = {
  code : int Vec.t;
  consts : int Vec.t;
  const_ids : (int, int) Hashtbl.t;
  strings : string Vec.t;
  string_ids : (string, int) Hashtbl.t;
}

(* Per-function compile state: [scopes] holds the fp-relative offset
   of each stack-resident environment frame (innermost first; the
   last entry is always 0, the parameter/toplevel frame at fp); [sp]
   is the static stack pointer, the fp-relative offset of the next
   push. *)
type frame_ctx = { mutable scopes : int list; mutable sp : int }

let emit ctx insn = Vec.push ctx.code insn
let here ctx = Vec.length ctx.code

let check_a what v =
  if v < 0 || v >= B.max_a then
    err "bytecode limit: %s %d exceeds %d" what v (B.max_a - 1)

let check_b what v =
  if v < 0 || v >= B.max_b then
    err "bytecode limit: %s %d exceeds %d" what v (B.max_b - 1)

let check_c what v =
  if v < 0 || v >= B.max_c then
    err "bytecode limit: %s %d exceeds %d" what v (B.max_c - 1)

(* Emit a jump with a placeholder target; patch once the target pc is
   known. *)
let emit_jump ctx op =
  let at = here ctx in
  emit ctx (B.make op);
  at

let patch ctx at =
  let target = here ctx in
  check_a "jump target" target;
  Vec.set ctx.code at (B.with_a (Vec.get ctx.code at) target)

let const_id ctx tagged =
  match Hashtbl.find_opt ctx.const_ids tagged with
  | Some i -> i
  | None ->
    let i = Vec.length ctx.consts in
    check_a "constant-pool index" i;
    Vec.push ctx.consts tagged;
    Hashtbl.replace ctx.const_ids tagged i;
    i

let string_id ctx s =
  match Hashtbl.find_opt ctx.string_ids s with
  | Some i -> i
  | None ->
    let i = Vec.length ctx.strings in
    check_a "string-pool index" i;
    Vec.push ctx.strings s;
    Hashtbl.replace ctx.string_ids s i;
    i

(* Push a tagged immediate: inline when it fits the payload. *)
let emit_push_value ctx fctx tagged =
  if B.fits_payload tagged then emit ctx (B.make_payload B.op_push_int tagged)
  else emit ctx (B.make B.op_push_const ~a:(const_id ctx tagged));
  fctx.sp <- fctx.sp + 1

let emit_push_int ctx fctx n = emit_push_value ctx fctx ((n lsl 1) lor 1)

(* Resolve a [Var] depth to (fp-relative frame offset, parent hops). *)
let resolve fctx depth =
  let m = List.length fctx.scopes in
  if depth < m then (List.nth fctx.scopes depth, 0) else (0, depth - m + 1)

(* Immediates eligible for [arith_imm] fusion: operand B is 16-bit
   unsigned. *)
let imm_ok k = k >= 0 && k < B.max_b

let cmp_kind = function
  | Ast.Lt -> 0
  | Ast.Le -> 1
  | Ast.Gt -> 2
  | Ast.Ge -> 3
  | _ -> 4

(* Operand word for a multi-word superinstruction: a local's (frame
   offset, slot, hops) triple packed in an opcode-less word. *)
let triple_word fctx ~depth ~idx =
  let off, hops = resolve fctx depth in
  check_a "stack offset" off;
  check_b "variable slot" idx;
  check_c "scope nesting (hops)" hops;
  B.make 0 ~a:off ~b:idx ~c:hops

(* (frame, slot, immediate, arith kind) of a fusable
   [(set! x (op y k))] right-hand side, if the shape allows it. *)
let upd_local_parts = function
  | Ast.Prim (Ast.Add, [ Ast.Var { depth; idx }; Ast.Int k ]) when imm_ok k ->
    Some (depth, idx, k, 0)
  | Ast.Prim (Ast.Add, [ Ast.Int k; Ast.Var { depth; idx } ]) when imm_ok k ->
    Some (depth, idx, k, 0)
  | Ast.Prim (Ast.Sub, [ Ast.Var { depth; idx }; Ast.Int k ]) when imm_ok k ->
    Some (depth, idx, k, 1)
  | Ast.Prim (Ast.Mul, [ Ast.Var { depth; idx }; Ast.Int k ]) when imm_ok k ->
    Some (depth, idx, k, 2)
  | Ast.Prim (Ast.Mul, [ Ast.Int k; Ast.Var { depth; idx } ]) when imm_ok k ->
    Some (depth, idx, k, 2)
  | Ast.Prim (Ast.Div, [ Ast.Var { depth; idx }; Ast.Int k ])
    when imm_ok k && k <> 0 ->
    Some (depth, idx, k, 3)
  | Ast.Prim (Ast.Mod, [ Ast.Var { depth; idx }; Ast.Int k ])
    when imm_ok k && k <> 0 ->
    Some (depth, idx, k, 4)
  | _ -> None

(* Same shape with a global source, for [(set! g (op g k))]: the
   destination global must be the source (read-modify-write of one
   root slot), and its index must fit the 24-bit A field — which the
   unfused encoding requires anyway. *)
let upd_global_parts g = function
  | Ast.Prim (Ast.Add, [ Ast.Global g'; Ast.Int k ]) when g' = g && imm_ok k ->
    Some (k, 0)
  | Ast.Prim (Ast.Add, [ Ast.Int k; Ast.Global g' ]) when g' = g && imm_ok k ->
    Some (k, 0)
  | Ast.Prim (Ast.Sub, [ Ast.Global g'; Ast.Int k ]) when g' = g && imm_ok k ->
    Some (k, 1)
  | Ast.Prim (Ast.Mul, [ Ast.Global g'; Ast.Int k ]) when g' = g && imm_ok k ->
    Some (k, 2)
  | Ast.Prim (Ast.Mul, [ Ast.Int k; Ast.Global g' ]) when g' = g && imm_ok k ->
    Some (k, 2)
  | Ast.Prim (Ast.Div, [ Ast.Global g'; Ast.Int k ])
    when g' = g && imm_ok k && k <> 0 ->
    Some (k, 3)
  | Ast.Prim (Ast.Mod, [ Ast.Global g'; Ast.Int k ])
    when g' = g && imm_ok k && k <> 0 ->
    Some (k, 4)
  | _ -> None

let rec compile_expr ctx fctx (e : Ast.expr) =
  match e with
  | Ast.Int n -> emit_push_int ctx fctx n
  | Ast.Bool b -> emit_push_int ctx fctx (if b then 1 else 0)
  | Ast.Nil ->
    emit ctx (B.make B.op_push_nil);
    fctx.sp <- fctx.sp + 1
  | Ast.Var { depth; idx } ->
    let off, hops = resolve fctx depth in
    check_a "stack offset" off;
    check_b "variable slot" idx;
    check_c "scope nesting (hops)" hops;
    emit ctx (B.make B.op_local ~a:off ~b:idx ~c:hops);
    fctx.sp <- fctx.sp + 1
  | Ast.Global g ->
    check_a "global index" g;
    emit ctx (B.make B.op_global ~a:g);
    fctx.sp <- fctx.sp + 1
  | Ast.If (c, t, e) ->
    let jf = compile_branch_unless ctx fctx c in
    let sp0 = fctx.sp in
    compile_expr ctx fctx t;
    let je = emit_jump ctx B.op_jump in
    patch ctx jf;
    fctx.sp <- sp0;
    compile_expr ctx fctx e;
    patch ctx je
  | Ast.Begin body -> compile_body ctx fctx body
  | Ast.And body -> (
    (* (and) = #t; a falsy non-final form short-circuits to #f; the
       final form's value is returned as-is. *)
    match body with
    | [] -> emit_push_int ctx fctx 1
    | body ->
      let sp0 = fctx.sp in
      let jumps = ref [] in
      let rec go = function
        | [] -> assert false
        | [ last ] -> compile_expr ctx fctx last
        | x :: rest ->
          jumps := compile_branch_unless ctx fctx x :: !jumps;
          go rest
      in
      go body;
      let jend = emit_jump ctx B.op_jump in
      List.iter (patch ctx) !jumps;
      fctx.sp <- sp0;
      emit_push_int ctx fctx 0;
      patch ctx jend)
  | Ast.Or body ->
    (* The first truthy value wins; all-falsy (including the last
       form) yields #f, as in the interpreter. *)
    let sp0 = fctx.sp in
    let jumps = ref [] in
    List.iter
      (fun x ->
        compile_expr ctx fctx x;
        emit ctx (B.make B.op_dup);
        jumps := emit_jump ctx B.op_jump_if_true :: !jumps;
        emit ctx (B.make B.op_pop);
        fctx.sp <- fctx.sp - 1)
      body;
    fctx.sp <- sp0;
    emit_push_int ctx fctx 0;
    List.iter (patch ctx) !jumps
  | Ast.While { cond; body } ->
    let top = here ctx in
    let jend = compile_branch_unless ctx fctx cond in
    List.iter (compile_discard ctx fctx) body;
    check_a "jump target" top;
    emit ctx (B.make B.op_jump ~a:top);
    patch ctx jend;
    emit ctx (B.make B.op_push_nil);
    fctx.sp <- fctx.sp + 1
  | Ast.Set_var { depth; idx; value } ->
    compile_expr ctx fctx value;
    let off, hops = resolve fctx depth in
    check_a "stack offset" off;
    check_b "variable slot" idx;
    check_c "scope nesting (hops)" hops;
    emit ctx (B.make B.op_set_local ~a:off ~b:idx ~c:hops)
  | Ast.Set_global { idx; value } ->
    compile_expr ctx fctx value;
    check_a "global index" idx;
    emit ctx (B.make B.op_set_global ~a:idx)
  | Ast.Lambda { lam } ->
    check_b "lambda index" lam;
    let parent = List.hd fctx.scopes in
    check_a "stack offset" parent;
    emit ctx (B.make B.op_closure ~a:parent ~b:lam);
    fctx.sp <- fctx.sp + 1
  | Ast.Let { bindings; body } ->
    let k = List.length bindings in
    check_b "let binding count" k;
    compile_args ctx fctx bindings;
    let parent = List.hd fctx.scopes in
    check_a "stack offset" parent;
    emit ctx (B.make B.op_enter_env ~a:parent ~b:k);
    fctx.sp <- fctx.sp + 1;
    (* The new frame sits just below the (now consumed-into-frame but
       still stacked) bindings: sp - 1 is its offset. *)
    let saved = fctx.scopes in
    fctx.scopes <- (fctx.sp - 1) :: saved;
    compile_body ctx fctx body;
    fctx.scopes <- saved;
    emit ctx (B.make B.op_exit_env ~a:k);
    fctx.sp <- fctx.sp - (k + 1)
  | Ast.Call (f, args) ->
    compile_expr ctx fctx f;
    compile_args ctx fctx args;
    let nargs = List.length args in
    check_a "argument count" nargs;
    emit ctx (B.make B.op_call ~a:nargs);
    fctx.sp <- fctx.sp - nargs
  (* Literal arith operand: fuse into [arith_imm], rewriting the top
     of stack in place. Sound for any evaluation order here — the
     dropped stack slot would have held an immediate, which is
     invisible to the collector — and sound for [Int k; x] orders only
     when the operator commutes (so not [Sub]). The type check hits
     the non-literal operand first in both encodings, so error
     messages match. *)
  | Ast.Prim ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), [ _; Ast.Int _ ])
  | Ast.Prim ((Ast.Add | Ast.Mul), [ Ast.Int _; _ ]) ->
    compile_arith_imm ctx fctx e
  | Ast.Prim (Ast.Not, [ _ ])
  | Ast.Prim
      ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num), [ _; Ast.Int _ ]) ->
    compile_bool ctx fctx ~negate:false e
  | Ast.Prim (Ast.Car, [ Ast.Var { depth; idx } ]) ->
    emit ctx (B.make B.op_local_car lor triple_word fctx ~depth ~idx);
    fctx.sp <- fctx.sp + 1
  | Ast.Prim (Ast.Cdr, [ Ast.Var { depth; idx } ]) ->
    emit ctx (B.make B.op_local_cdr lor triple_word fctx ~depth ~idx);
    fctx.sp <- fctx.sp + 1
  | Ast.Prim (p, args) -> compile_prim ctx fctx p args
  | Ast.Quoted q -> compile_quote ctx fctx q

(* Literal arith operand, dispatched from [compile_expr]: fuse into
   [local_arith] (local source read inline) or [arith_imm] (top of
   stack rewritten in place); falls back to the generic encoding when
   the immediate does not fit operand B. Sound for the [Int k; x]
   orders only because [+] and [*] commute; the dropped stack slot
   would have held an immediate, invisible to the collector, and the
   type check hits the non-literal operand first in both encodings. *)
and compile_arith_imm ctx fctx e =
  let fused x k kind =
    match x with
    | Ast.Var { depth; idx } ->
      let w = triple_word fctx ~depth ~idx in
      emit ctx (B.make B.op_local_arith ~b:k ~c:kind);
      emit ctx w;
      fctx.sp <- fctx.sp + 1
    | Ast.Global g ->
      check_a "global index" g;
      emit ctx (B.make B.op_global_arith ~a:g ~b:k ~c:kind);
      fctx.sp <- fctx.sp + 1
    | x ->
      compile_expr ctx fctx x;
      emit ctx (B.make B.op_arith_imm ~b:k ~c:kind)
  in
  match e with
  | Ast.Prim (Ast.Add, [ x; Ast.Int k ]) when imm_ok k -> fused x k 0
  | Ast.Prim (Ast.Add, [ Ast.Int k; x ]) when imm_ok k -> fused x k 0
  | Ast.Prim (Ast.Sub, [ x; Ast.Int k ]) when imm_ok k -> fused x k 1
  | Ast.Prim (Ast.Mul, [ x; Ast.Int k ]) when imm_ok k -> fused x k 2
  | Ast.Prim (Ast.Mul, [ Ast.Int k; x ]) when imm_ok k -> fused x k 2
  | Ast.Prim (Ast.Div, [ x; Ast.Int k ]) when imm_ok k && k <> 0 ->
    fused x k 3
  | Ast.Prim (Ast.Mod, [ x; Ast.Int k ]) when imm_ok k && k <> 0 ->
    fused x k 4
  | Ast.Prim (p, args) -> compile_prim ctx fctx p args
  | _ -> assert false

(* Boolean-producing expression with a fusable shape: top-level
   [not]s are absorbed into the negate bit; compare-with-literal and
   null?/pair? tests become one dispatch that pushes the boolean
   directly. *)
and compile_bool ctx fctx ~negate (e : Ast.expr) =
  let neg = if negate then B.negate_bit else 0 in
  match e with
  | Ast.Prim (Ast.Not, [ x ]) -> compile_bool ctx fctx ~negate:(not negate) x
  | Ast.Prim
      (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p), [ x; Ast.Int k ])
    ->
    compile_expr ctx fctx x;
    emit ctx (B.make B.op_cmp_imm ~c:(cmp_kind p lor neg));
    emit ctx k
  | Ast.Prim (((Ast.Is_null | Ast.Is_pair) as p), [ x ]) ->
    compile_expr ctx fctx x;
    emit ctx
      (B.make B.op_test ~c:((match p with Ast.Is_null -> 0 | _ -> 1) lor neg))
  | e ->
    compile_expr ctx fctx e;
    if negate then emit ctx (B.make B.op_not)

(* Argument lists (prims, calls, let bindings): adjacent local reads
   collapse into [local2] — both pushes, one dispatch. *)
and compile_args ctx fctx = function
  | Ast.Var { depth = d1; idx = i1 } :: Ast.Var { depth = d2; idx = i2 } :: rest
    ->
    let w1 = triple_word fctx ~depth:d1 ~idx:i1 in
    let w2 = triple_word fctx ~depth:d2 ~idx:i2 in
    emit ctx (B.make B.op_local2 lor w1);
    emit ctx w2;
    fctx.sp <- fctx.sp + 2;
    compile_args ctx fctx rest
  | x :: rest ->
    compile_expr ctx fctx x;
    compile_args ctx fctx rest
  | [] -> ()

and compile_prim ctx fctx p args =
    compile_args ctx fctx args;
    let n = List.length args in
    let opcode =
      match p with
      | Ast.Add -> B.op_add
      | Ast.Sub -> B.op_sub
      | Ast.Mul -> B.op_mul
      | Ast.Div -> B.op_div
      | Ast.Mod -> B.op_mod
      | Ast.Lt -> B.op_lt
      | Ast.Le -> B.op_le
      | Ast.Gt -> B.op_gt
      | Ast.Ge -> B.op_ge
      | Ast.Eq_num -> B.op_eq_num
      | Ast.Eq_phys -> B.op_eq_phys
      | Ast.Not -> B.op_not
      | Ast.Cons -> B.op_cons
      | Ast.Car -> B.op_car
      | Ast.Cdr -> B.op_cdr
      | Ast.Set_car -> B.op_set_car
      | Ast.Set_cdr -> B.op_set_cdr
      | Ast.Is_null -> B.op_is_null
      | Ast.Is_pair -> B.op_is_pair
      | Ast.Vector_make -> B.op_vec_make
      | Ast.Vector_ref -> B.op_vec_ref
      | Ast.Vector_set -> B.op_vec_set
      | Ast.Vector_length -> B.op_vec_len
      | Ast.Print -> B.op_print
    in
    emit ctx (B.make opcode);
    fctx.sp <- fctx.sp - n + 1

(* Compile [c] and emit a forward branch taken when it is falsy (or
   truthy, under [negate] — a wrapping [not] is absorbed by flipping
   the flag rather than materialising a boolean). Returns the jump
   index for [patch]. Top-level integer compares and null?/pair? tests
   fuse into single-dispatch branch forms, with local operands read
   inline. Every fused span is allocation-free, so the operand stack
   at each allocation point — and hence GC stats — match the unfused
   encoding; type checks keep the unfused operand order and error
   strings. *)
and compile_branch_unless ?(negate = false) ctx fctx (c : Ast.expr) =
  let neg = if negate then B.negate_bit else 0 in
  match c with
  | Ast.Prim (Ast.Not, [ c ]) ->
    compile_branch_unless ~negate:(not negate) ctx fctx c
  | Ast.Prim
      ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p),
        [ Ast.Var { depth = d1; idx = i1 }; Ast.Var { depth = d2; idx = i2 } ]
      ) ->
    let w1 = triple_word fctx ~depth:d1 ~idx:i1 in
    let w2 = triple_word fctx ~depth:d2 ~idx:i2 in
    let at = here ctx in
    emit ctx (B.make B.op_jcmp_ll ~c:(cmp_kind p lor neg));
    emit ctx w1;
    emit ctx w2;
    at
  | Ast.Prim
      ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p),
        [ Ast.Var { depth; idx }; Ast.Int k ] ) ->
    let w = triple_word fctx ~depth ~idx in
    let at = here ctx in
    emit ctx (B.make B.op_jcmp_li ~c:(cmp_kind p lor neg));
    emit ctx w;
    emit ctx k;
    at
  | Ast.Prim
      ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p),
        [ Ast.Global g1; Ast.Global g2 ] )
    when g2 < B.max_b ->
    check_a "global index" g1;
    let at = here ctx in
    emit ctx (B.make B.op_jcmp_gg ~c:(cmp_kind p lor neg));
    emit ctx (B.make 0 ~a:g1 ~b:g2);
    at
  | Ast.Prim
      ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p),
        [ Ast.Global g; Ast.Int k ] )
    when g < B.max_b ->
    let at = here ctx in
    emit ctx (B.make B.op_jcmp_gi ~b:g ~c:(cmp_kind p lor neg));
    emit ctx k;
    at
  | Ast.Prim (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p), [ x; Ast.Int k ])
    ->
    compile_expr ctx fctx x;
    let at = here ctx in
    emit ctx (B.make B.op_jcmp_imm ~c:(cmp_kind p lor neg));
    emit ctx k;
    fctx.sp <- fctx.sp - 1;
    at
  | Ast.Prim (Ast.Eq_phys, [ x; y ]) ->
    compile_args ctx fctx [ x; y ];
    let at = here ctx in
    emit ctx (B.make B.op_jeq ~c:neg);
    fctx.sp <- fctx.sp - 2;
    at
  | Ast.Prim (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq_num) as p), [ x; y ])
    ->
    compile_expr ctx fctx x;
    compile_expr ctx fctx y;
    let at = here ctx in
    emit ctx (B.make B.op_jcmp_false ~c:(cmp_kind p lor neg));
    fctx.sp <- fctx.sp - 2;
    at
  | Ast.Prim (((Ast.Is_null | Ast.Is_pair) as p), [ x ]) ->
    let kind = (match p with Ast.Is_null -> 0 | _ -> 1) lor neg in
    (match x with
    | Ast.Var { depth; idx } ->
      let w = triple_word fctx ~depth ~idx in
      let at = here ctx in
      emit ctx (B.make B.op_jtest_l ~c:kind);
      emit ctx w;
      at
    | x ->
      compile_expr ctx fctx x;
      let at = here ctx in
      emit ctx (B.make B.op_jtest ~c:kind);
      fctx.sp <- fctx.sp - 1;
      at)
  | c ->
    compile_expr ctx fctx c;
    let jf =
      emit_jump ctx
        (if negate then B.op_jump_if_true else B.op_jump_if_false)
    in
    fctx.sp <- fctx.sp - 1;
    jf

(* Statement position: compile [e] for effect, leaving nothing on the
   stack. [set!] and mutating-prim forms skip the push-null-then-pop
   dance of their expression encoding (the skipped null is invisible
   to the collector: no allocation point between its push and pop);
   control forms propagate the discard into their branches. *)
and compile_discard ctx fctx (e : Ast.expr) =
  match e with
  | Ast.Set_var { depth; idx; value = Ast.Var { depth = sd; idx = si } } ->
    (* (set! x y): one dispatch, source resolved after nothing — the
       unfused order (source read, then destination resolve) is kept
       by the opcode itself. *)
    let dst = triple_word fctx ~depth ~idx in
    let src = triple_word fctx ~depth:sd ~idx:si in
    emit ctx (B.make B.op_move_local lor dst);
    emit ctx src
  | Ast.Set_var { depth; idx; value } -> (
    match upd_local_parts value with
    | Some (sd, si, k, kind) ->
      (* (set! x (op y k)): read, arith and write in one dispatch. *)
      let src = triple_word fctx ~depth:sd ~idx:si in
      let dst = triple_word fctx ~depth ~idx in
      emit ctx (B.make B.op_upd_local ~b:k ~c:kind);
      emit ctx src;
      emit ctx dst
    | None ->
      compile_expr ctx fctx value;
      let off, hops = resolve fctx depth in
      check_a "stack offset" off;
      check_b "variable slot" idx;
      check_c "scope nesting (hops)" hops;
      emit ctx (B.make B.op_set_local_void ~a:off ~b:idx ~c:hops);
      fctx.sp <- fctx.sp - 1)
  | Ast.Set_global { idx; value } -> (
    match upd_global_parts idx value with
    | Some (k, kind) ->
      (* (set! g (op g k)): read-modify-write of one root slot. *)
      check_a "global index" idx;
      emit ctx (B.make B.op_upd_global ~a:idx ~b:k ~c:kind)
    | None ->
      compile_expr ctx fctx value;
      check_a "global index" idx;
      emit ctx (B.make B.op_store_global ~a:idx);
      fctx.sp <- fctx.sp - 1)
  | Ast.Prim (Ast.Set_car, ([ _; _ ] as args)) ->
    compile_args ctx fctx args;
    emit ctx (B.make B.op_set_car_void);
    fctx.sp <- fctx.sp - 2
  | Ast.Prim (Ast.Set_cdr, ([ _; _ ] as args)) ->
    compile_args ctx fctx args;
    emit ctx (B.make B.op_set_cdr_void);
    fctx.sp <- fctx.sp - 2
  | Ast.Prim (Ast.Vector_set, ([ _; _; _ ] as args)) ->
    compile_args ctx fctx args;
    emit ctx (B.make B.op_vec_set_void);
    fctx.sp <- fctx.sp - 3
  | Ast.Prim (Ast.Print, [ x ]) ->
    compile_expr ctx fctx x;
    emit ctx (B.make B.op_print_void);
    fctx.sp <- fctx.sp - 1
  | Ast.If (c, t, e) ->
    let jf = compile_branch_unless ctx fctx c in
    let sp0 = fctx.sp in
    compile_discard ctx fctx t;
    let je = emit_jump ctx B.op_jump in
    patch ctx jf;
    fctx.sp <- sp0;
    compile_discard ctx fctx e;
    patch ctx je
  | Ast.Begin body -> List.iter (compile_discard ctx fctx) body
  | Ast.While { cond; body } ->
    let top = here ctx in
    let jend = compile_branch_unless ctx fctx cond in
    List.iter (compile_discard ctx fctx) body;
    check_a "jump target" top;
    emit ctx (B.make B.op_jump ~a:top);
    patch ctx jend
  | e ->
    compile_expr ctx fctx e;
    emit ctx (B.make B.op_pop);
    fctx.sp <- fctx.sp - 1

(* [eval_body]: all but the last statement are evaluated for effect. *)
and compile_body ctx fctx = function
  | [] ->
    emit ctx (B.make B.op_push_nil);
    fctx.sp <- fctx.sp + 1
  | [ last ] -> compile_expr ctx fctx last
  | x :: rest ->
    compile_discard ctx fctx x;
    compile_body ctx fctx rest

(* Quoted data, with the interpreter's build order: tail first, then
   head, then the pair — both on the stack across the allocation.
   Unsupported atoms become a runtime [Fail], not a compile error,
   matching the interpreter's behaviour for unreached quotes. *)
and compile_quote ctx fctx (s : Sexp.t) =
  match s with
  | Sexp.Atom "#t" -> emit_push_int ctx fctx 1
  | Sexp.Atom "#f" -> emit_push_int ctx fctx 0
  | Sexp.Atom "nil" ->
    emit ctx (B.make B.op_push_nil);
    fctx.sp <- fctx.sp + 1
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some n -> emit_push_int ctx fctx n
    | None ->
      let msg = Printf.sprintf "quote: symbols are not supported (%s)" a in
      emit ctx (B.make B.op_fail ~a:(string_id ctx msg));
      (* never returns at runtime; keep the static stack consistent *)
      fctx.sp <- fctx.sp + 1)
  | Sexp.List items ->
    let rec build = function
      | [] ->
        emit ctx (B.make B.op_push_nil);
        fctx.sp <- fctx.sp + 1
      | x :: rest ->
        build rest;
        compile_quote ctx fctx x;
        emit ctx (B.make B.op_qpair);
        fctx.sp <- fctx.sp - 1
    in
    build items

let compile (prog : Ast.program) : B.program =
  let ctx =
    {
      code = Vec.create ~dummy:0 ();
      consts = Vec.create ~dummy:0 ();
      const_ids = Hashtbl.create 16;
      strings = Vec.create ~dummy:"" ();
      string_ids = Hashtbl.create 16;
    }
  in
  (* Toplevel: one degenerate root frame at fp (pushed by the VM's
     run), each form's value stored to its global or dropped. *)
  let fctx = { scopes = [ 0 ]; sp = 1 } in
  List.iter
    (fun (target, e) ->
      match target with
      | Some g ->
        compile_expr ctx fctx e;
        check_a "global index" g;
        emit ctx (B.make B.op_store_global ~a:g);
        fctx.sp <- fctx.sp - 1
      | None -> compile_discard ctx fctx e)
    prog.Ast.toplevel;
  emit ctx (B.make B.op_halt);
  (* Lambda bodies, in table order; each starts a fresh frame context
     whose scope 0 is the parameter frame the caller pushes. *)
  let lambdas =
    Array.map
      (fun (lam : Ast.lambda) ->
        let entry = here ctx in
        check_a "code size" entry;
        let fctx = { scopes = [ 0 ]; sp = 1 } in
        compile_body ctx fctx lam.Ast.body;
        emit ctx (B.make B.op_return);
        { B.l_entry = entry; l_params = lam.Ast.params; l_name = lam.Ast.name })
      prog.Ast.lambdas
  in
  if here ctx > B.max_a then
    err "bytecode limit: program of %d instructions exceeds %d" (here ctx)
      B.max_a;
  {
    B.code = Vec.to_array ctx.code;
    consts = Vec.to_array ctx.consts;
    strings = Vec.to_array ctx.strings;
    lambdas;
    globals = prog.Ast.globals;
  }

(* Allocation sites of a compiled unit, for the demographics profiler:
   one (pc, label) pair per allocating opcode (environment frames,
   closures, call frames, pairs and vectors — the fused
   superinstructions are allocation-free by construction, so only the
   six base opcodes appear). Labels name the enclosing lambda — the
   one with the greatest entry point at or below the pc; toplevel code
   precedes every lambda body — plus the pc and the allocation kind,
   e.g. ["fib@42:frame"]. *)
let alloc_sites (p : B.program) =
  let owner pc =
    let best = ref None in
    Array.iter
      (fun (li : B.lambda_info) ->
        if li.B.l_entry <= pc then
          match !best with
          | Some (b : B.lambda_info) when b.B.l_entry >= li.B.l_entry -> ()
          | _ -> best := Some li)
      p.B.lambdas;
    match !best with
    | Some li -> li.B.l_name
    | None -> "<toplevel>"
  in
  let acc = ref [] in
  let n = Array.length p.B.code in
  let pc = ref 0 in
  while !pc < n do
    let insn = p.B.code.(!pc) in
    let opc = B.op insn in
    let kind =
      if opc = B.op_enter_env then Some "env"
      else if opc = B.op_closure then Some "closure"
      else if opc = B.op_call then Some "frame"
      else if opc = B.op_qpair then Some "quote"
      else if opc = B.op_cons then Some "cons"
      else if opc = B.op_vec_make then Some "vector"
      else None
    in
    (match kind with
    | Some k ->
      acc := (!pc, Printf.sprintf "%s@%d:%s" (owner !pc) !pc k) :: !acc
    | None -> ());
    pc := !pc + B.insn_len insn
  done;
  Array.of_list (List.rev !acc)
