(** Flat bytecode for Beltlang.

    One instruction per word: opcode in the low 8 bits, operands
    packed above it (A: 24-bit, B: 16-bit, C: 8-bit unsigned), except
    [Push_int] whose bits 8..62 are one signed payload — the tagged
    immediate itself. Programs are a single [int array] code stream
    (toplevel first, ending in [halt]; lambda bodies after, each
    ending in [return]) plus constant, string and lambda tables.

    The numbering is shared verbatim with the VM's dispatch match;
    change both together. *)

(* Opcodes *)
val op_halt : int
val op_push_int : int
val op_push_const : int
val op_push_nil : int
val op_pop : int
val op_dup : int
val op_local : int
val op_set_local : int
val op_global : int
val op_set_global : int
val op_store_global : int
val op_jump : int
val op_jump_if_false : int
val op_jump_if_true : int
val op_enter_env : int
val op_exit_env : int
val op_closure : int
val op_call : int
val op_return : int
val op_qpair : int
val op_cons : int
val op_car : int
val op_cdr : int
val op_set_car : int
val op_set_cdr : int
val op_is_null : int
val op_is_pair : int
val op_not : int
val op_eq_phys : int
val op_add : int
val op_sub : int
val op_mul : int
val op_div : int
val op_mod : int
val op_lt : int
val op_le : int
val op_gt : int
val op_ge : int
val op_eq_num : int
val op_vec_make : int
val op_vec_ref : int
val op_vec_set : int
val op_vec_len : int
val op_print : int
val op_fail : int

(** Fused superinstructions: each replaces an allocation-free opcode
    sequence (compare + conditional jump; set! in statement position;
    binary arith with a literal operand), so fusion cannot change the
    operand stack at any allocation point — GC stats are identical to
    the unfused encoding by construction. *)

val op_jcmp_false : int
(** A = target pc, C = compare kind (index into {!cmp_name}, bit 3
    negates); pops both operands, branches when the compare is
    false. *)

val op_set_local_void : int
(** [set_local] that pushes nothing: statement-position [set!]. *)

val op_arith_imm : int
(** B = immediate operand, C = arith kind (index into {!arith_name});
    rewrites the top of stack in place. *)

(** Multi-word superinstructions ({!insn_len} > 1): the opcode word is
    followed by operand words — a local-variable triple packed in an
    opcode-less word's A/B/C fields, or a raw untagged immediate. All
    fuse allocation-free sequences only. *)

val op_jcmp_imm : int
(** 2 words: A = target, C = compare kind (bit 3 negates); w1 = raw
    immediate. Pops one operand. *)

val op_jcmp_ll : int
(** 3 words: A = target, C = compare kind (bit 3 negates); w1, w2 =
    local triples. Pops nothing. *)

val op_jtest : int
(** 1 word: A = target, C = test kind (index into {!test_name}, bit 3
    negates). Pops the tested value; branches when the test fails. *)

val op_jtest_l : int
(** 2 words: as {!op_jtest} but testing a local (w1 = triple). *)

val op_upd_local : int
(** 3 words: B = immediate, C = arith kind; w1 = source triple, w2 =
    destination triple. Statement-position [(set! x (op y k))]. *)

val op_move_local : int
(** 2 words: destination triple inline; w1 = source triple.
    Statement-position [(set! x y)]. *)

val op_local_arith : int
(** 2 words: B = immediate, C = arith kind; w1 = source triple.
    Pushes [(op y k)]. *)

val op_local2 : int
(** 2 words: first triple inline, w1 = second triple. Pushes both. *)

val op_local_car : int
val op_local_cdr : int
(** 1 word: local triple inline. Push [(car x)] / [(cdr x)]. *)

val op_set_car_void : int
val op_set_cdr_void : int
val op_vec_set_void : int
val op_print_void : int
(** Statement-position variants that skip the push-null-then-pop of
    their expression forms. *)

val op_jcmp_li : int
(** 3 words: A = target, C = compare kind; w1 = local triple, w2 =
    raw immediate. Pops nothing. *)

val op_jcmp_gg : int
(** 2 words: A = target, C = compare kind; w1 packs the two global
    indices in its A and B fields. Pops nothing. *)

val op_jcmp_gi : int
(** 2 words: A = target, B = global index, C = compare kind; w1 =
    raw immediate. Pops nothing. *)

val op_upd_global : int
(** 1 word: A = global, B = immediate, C = arith kind.
    Statement-position [(set! g (op g k))]. *)

val op_global_arith : int
(** 1 word: A = global, B = immediate, C = arith kind.
    Pushes [(op g k)]. *)

val op_cmp_imm : int
(** 2 words: C = compare kind (bit 3 negates); w1 = raw immediate.
    Pops the operand and pushes the boolean. *)

val op_test : int
(** 1 word: C = test kind (bit 3 negates). Pops the operand and
    pushes the boolean. *)

val op_jeq : int
(** 1 word: A = target, C bit 3 negates. Pops two operands, branches
    when they are not physically equal ([eq?] false, xor negate). *)

val op_count : int

val insn_len : int -> int
(** [insn_len insn] is the total word count of the instruction whose
    opcode word is [insn] (1 for classic opcodes). *)

val test_name : string array
(** Test-kind names for {!op_jtest} ([null?] [pair?]). *)

val negate_bit : int
(** Bit in operand C that negates a fused branch condition (absorbs a
    wrapping [not]). *)

val cmp_name : string array
(** Compare-kind names ([<] [<=] [>] [>=] [=]), shared with runtime
    error messages so fused code fails byte-identically. *)

val arith_name : string array
(** Arith-kind names ([+] [-] [*] [/] [mod]), shared likewise. *)

(** Operand capacity: exceeding any of these is a compile-time
    [Ast.Compile_error] (and a ["bytecode-limit"] lint). *)

val max_a : int
(** Jump targets, stack offsets, global/const/string indices, arity. *)

val max_b : int
(** Variable slots, binding counts, lambda indices. *)

val max_c : int
(** Environment-chain hops (lexical nesting distance). *)

val fits_payload : int -> bool
(** Whether a tagged immediate fits the inline [Push_int] payload
    (55 signed bits); wider values go through the constant pool. *)

val make : ?a:int -> ?b:int -> ?c:int -> int -> int
val make_payload : int -> int -> int
(** [make_payload op payload] packs a signed 55-bit payload. *)

val op : int -> int
val a : int -> int
val b : int -> int
val c : int -> int
val payload : int -> int

val with_a : int -> int -> int
(** [with_a insn target] rewrites operand A (jump patching). *)

type lambda_info = { l_entry : int; l_params : int; l_name : string }

type program = {
  code : int array;
  consts : int array;
  strings : string array;
  lambdas : lambda_info array;
  globals : string array;
}

val op_name : int -> string

val pp : Format.formatter -> program -> unit
(** Disassembly, as printed by [beltlang --dump-bytecode]. *)
