(** The Beltlang bytecode compiler: [Ast.program] -> flat code.

    The emitted code's operand stack is the collector's shadow stack,
    and the compilation discipline keeps it byte-for-byte identical to
    the AST interpreter's at every allocation site — the property the
    differential tests (output + GC-stats equality) rest on.

    @raise Ast.Compile_error when the program exceeds a bytecode
    operand limit (see {!Bytecode.max_a} and friends); the
    ["bytecode-limit"] lint in {!Analysis} flags such programs
    statically. *)

val compile : Ast.program -> Bytecode.program
