(** The Beltlang bytecode compiler: [Ast.program] -> flat code.

    The emitted code's operand stack is the collector's shadow stack,
    and the compilation discipline keeps it byte-for-byte identical to
    the AST interpreter's at every allocation site — the property the
    differential tests (output + GC-stats equality) rest on.

    @raise Ast.Compile_error when the program exceeds a bytecode
    operand limit (see {!Bytecode.max_a} and friends); the
    ["bytecode-limit"] lint in {!Analysis} flags such programs
    statically. *)

val compile : Ast.program -> Bytecode.program

val alloc_sites : Bytecode.program -> (int * string) array
(** The allocating opcodes of a compiled unit as (pc, label) pairs in
    code order; labels are ["<lambda-name>@<pc>:<kind>"] with kind one
    of [env]/[closure]/[frame]/[quote]/[cons]/[vector] and
    ["<toplevel>"] for code outside any lambda. The VM interns these
    as allocation sites when a profiler may be listening. *)
