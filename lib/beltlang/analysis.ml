module Vec = Beltway_util.Vec

type severity = Error | Warning | Note
type diag = { severity : severity; code : string; message : string }

type gstate = {
  mutable g_arity : int option; (* known fixed arity, when a function *)
  mutable g_used : bool;
  mutable g_assigned : bool;
}

type ctx = {
  diags : diag Vec.t;
  globals : (string, gstate) Hashtbl.t;
  global_order : string Vec.t;
  mutable scopes : (string * bool ref) list list; (* innermost first *)
  mutable in_def : string option; (* enclosing top-level definition *)
  mutable data_allocs : int;
  mutable closures : int;
  mutable escaping : int;
  mutable stored : int;
}

let add ctx severity code fmt =
  Format.kasprintf
    (fun message -> Vec.push ctx.diags { severity; code; message })
    fmt

let where ctx = match ctx.in_def with None -> "" | Some n -> " in " ^ n

let describe s =
  let str = Format.asprintf "%a" Sexp.pp s in
  if String.length str > 40 then String.sub str 0 37 ^ "..." else str

(* Constant truthiness under the interpreter's rule: null and the
   immediate 0 (which is also #f) are false, everything else true. *)
let literal_bool = function
  | Sexp.Atom "#t" -> Some true
  | Sexp.Atom "#f" | Sexp.Atom "nil" -> Some false
  | Sexp.List [] -> Some false
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some 0 -> Some false
    | Some _ -> Some true
    | None -> None)
  | _ -> None

(* Heap-allocating expressions, syntactically. Closures are reported
   separately: every top-level definition makes one, so flagging them
   as pretenuring candidates would be all noise. *)
let data_alloc_kind = function
  | Sexp.List (Sexp.Atom "cons" :: _) -> Some "cons cell"
  | Sexp.List (Sexp.Atom "make-vector" :: _) -> Some "vector"
  | Sexp.List [ Sexp.Atom "quote"; Sexp.List (_ :: _) ] -> Some "quoted list"
  | _ -> None

let push_scope ctx names =
  ctx.scopes <- List.map (fun n -> (n, ref false)) names :: ctx.scopes

(* Leading underscore opts out of unused warnings, the usual idiom. *)
let warnable n = not (String.length n > 0 && n.[0] = '_')

let pop_scope ctx ~code ~what =
  match ctx.scopes with
  | [] -> ()
  | frame :: rest ->
    ctx.scopes <- rest;
    List.iter
      (fun (n, used) ->
        if (not !used) && warnable n then
          add ctx Warning code "%s %s is never used%s" what n (where ctx))
      frame

let lookup_local ctx name ~mark =
  let rec scan = function
    | [] -> false
    | frame :: rest -> (
      match List.assoc_opt name frame with
      | Some used ->
        if mark then used := true;
        true
      | None -> scan rest)
  in
  scan ctx.scopes

let use_var ctx name =
  if not (lookup_local ctx name ~mark:true) then
    match Hashtbl.find_opt ctx.globals name with
    | Some g -> g.g_used <- true
    | None ->
      (* Primitive names are only recognised in call position, exactly
         as in the resolver. *)
      add ctx Error "unbound-var" "unbound variable %s%s" name (where ctx)

(* A name is a primitive here iff no local or global binding shadows
   it — the resolver's rule. *)
let prim_here ctx op =
  List.mem_assoc op Ast.prims
  && (not (lookup_local ctx op ~mark:false))
  && not (Hashtbl.mem ctx.globals op)

let declare ctx name =
  match Hashtbl.find_opt ctx.globals name with
  | Some g -> g
  | None ->
    let g = { g_arity = None; g_used = false; g_assigned = false } in
    Hashtbl.replace ctx.globals name g;
    Vec.push ctx.global_order name;
    g

let pretenure_note ctx ~kind ~sink =
  add ctx Note "pretenure"
    "%s %s likely outlives its creating scope: a candidate for alloc_pretenured (belt >= 1)%s"
    kind sink (where ctx)

let rec walk ctx (s : Sexp.t) =
  match s with
  | Sexp.Atom ("#t" | "#f" | "nil") | Sexp.List [] -> ()
  | Sexp.Atom a -> if int_of_string_opt a = None then use_var ctx a
  | Sexp.List (Sexp.Atom "quote" :: rest) -> (
    match rest with
    | [ q ] -> (
      match q with
      | Sexp.List (_ :: _) -> ctx.data_allocs <- ctx.data_allocs + 1
      | _ -> ())
    | _ -> add ctx Error "bad-form" "quote expects one form%s" (where ctx))
  | Sexp.List (Sexp.Atom "if" :: rest) -> (
    match rest with
    | [ c; t ] ->
      walk ctx c;
      (match literal_bool c with
      | Some false ->
        add ctx Warning "unreachable"
          "then-branch is unreachable: condition %s is always false%s"
          (describe c) (where ctx)
      | Some true | None -> ());
      walk ctx t
    | [ c; t; e ] ->
      walk ctx c;
      (match literal_bool c with
      | Some true ->
        add ctx Warning "unreachable"
          "else-branch is unreachable: condition %s is always true%s"
          (describe c) (where ctx)
      | Some false ->
        add ctx Warning "unreachable"
          "then-branch is unreachable: condition %s is always false%s"
          (describe c) (where ctx)
      | None -> ());
      walk ctx t;
      walk ctx e
    | _ -> add ctx Error "bad-form" "if expects 2 or 3 forms%s" (where ctx))
  | Sexp.List (Sexp.Atom "begin" :: body) -> List.iter (walk ctx) body
  | Sexp.List (Sexp.Atom "lambda" :: rest) -> walk_lambda ctx ~name:None rest
  | Sexp.List (Sexp.Atom "let" :: Sexp.List bindings :: body) ->
    (* Non-recursive: binding expressions see the outer scope. *)
    let names =
      List.filter_map
        (function
          | Sexp.List [ Sexp.Atom n; e ] ->
            walk ctx e;
            Some n
          | b ->
            add ctx Error "bad-form" "bad let binding %s%s" (describe b)
              (where ctx);
            None)
        bindings
    in
    push_scope ctx names;
    List.iter (walk ctx) body;
    pop_scope ctx ~code:"unused-binding" ~what:"let binding"
  | Sexp.List (Sexp.Atom "let" :: _) ->
    add ctx Error "bad-form" "let expects a binding list%s" (where ctx)
  | Sexp.List [ Sexp.Atom "set!"; Sexp.Atom name; value ] ->
    walk ctx value;
    if not (lookup_local ctx name ~mark:true) then (
      match Hashtbl.find_opt ctx.globals name with
      | Some g ->
        g.g_assigned <- true;
        (match data_alloc_kind value with
        | Some kind ->
          ctx.escaping <- ctx.escaping + 1;
          pretenure_note ctx ~kind ~sink:("assigned to global " ^ name)
        | None -> ())
      | None ->
        add ctx Error "unbound-var" "set! of unbound variable %s%s" name
          (where ctx))
  | Sexp.List (Sexp.Atom "set!" :: _) ->
    add ctx Error "bad-form" "set! expects a variable and a value%s" (where ctx)
  | Sexp.List [ Sexp.Atom "while" ] ->
    add ctx Error "bad-form" "while expects a condition%s" (where ctx)
  | Sexp.List (Sexp.Atom "while" :: cond :: body) ->
    walk ctx cond;
    (match literal_bool cond with
    | Some false ->
      add ctx Warning "unreachable"
        "while body is unreachable: condition %s is always false%s"
        (describe cond) (where ctx)
    | Some true ->
      add ctx Warning "constant-loop"
        "while condition %s is always true: the loop never exits normally%s"
        (describe cond) (where ctx)
    | None -> ());
    List.iter (walk ctx) body
  | Sexp.List (Sexp.Atom (("and" | "or") as op) :: rest) ->
    (* and stops at the first false, or at the first true: a constant
       terminator makes everything after it dead. *)
    let stops = op = "or" in
    let rec go = function
      | [] -> ()
      | [ last ] -> walk ctx last
      | x :: tail -> (
        walk ctx x;
        match literal_bool x with
        | Some b when b = stops ->
          add ctx Warning "unreachable"
            "%s: forms after the constant %s are unreachable%s" op (describe x)
            (where ctx);
          List.iter (walk ctx) tail
        | _ -> go tail)
    in
    go rest
  | Sexp.List (Sexp.Atom op :: args) when prim_here ctx op ->
    let _, arity = List.assoc op Ast.prims in
    if List.length args <> arity then
      add ctx Error "bad-arity" "%s expects %d arguments, got %d%s" op arity
        (List.length args) (where ctx);
    List.iter (walk ctx) args;
    (match op with
    | "cons" | "make-vector" -> ctx.data_allocs <- ctx.data_allocs + 1
    | _ -> ());
    (match (op, args) with
    | ("set-car!" | "set-cdr!"), [ _; v ] | "vector-set!", [ _; _; v ] -> (
      match data_alloc_kind v with
      | Some kind ->
        ctx.stored <- ctx.stored + 1;
        pretenure_note ctx ~kind ~sink:("stored into the heap via " ^ op)
      | None -> ())
    | _ -> ())
  | Sexp.List (f :: args) ->
    walk ctx f;
    List.iter (walk ctx) args;
    (* Arity against a top-level definition of known, never-reassigned
       arity. *)
    (match f with
    | Sexp.Atom name when not (lookup_local ctx name ~mark:false) -> (
      match Hashtbl.find_opt ctx.globals name with
      | Some { g_arity = Some k; _ } when k <> List.length args ->
        add ctx Error "bad-arity" "%s expects %d arguments, got %d%s" name k
          (List.length args) (where ctx)
      | _ -> ())
    | _ -> ())

and walk_lambda ctx ~name rest =
  ctx.closures <- ctx.closures + 1;
  match rest with
  | Sexp.List params :: body when body <> [] ->
    let names =
      List.filter_map
        (function
          | Sexp.Atom p -> Some p
          | s ->
            add ctx Error "bad-form" "bad parameter %s%s" (describe s)
              (where ctx);
            None)
        params
    in
    let saved = ctx.in_def in
    (match name with Some n -> ctx.in_def <- Some n | None -> ());
    push_scope ctx names;
    List.iter (walk ctx) body;
    pop_scope ctx ~code:"unused-param" ~what:"parameter";
    ctx.in_def <- saved
  | _ -> add ctx Error "bad-form" "bad lambda%s" (where ctx)

let walk_top ctx (s : Sexp.t) =
  match s with
  | Sexp.List [ Sexp.Atom "define"; Sexp.Atom name; value ] ->
    ctx.in_def <- Some name;
    (match value with
    | Sexp.List (Sexp.Atom "lambda" :: rest) ->
      walk_lambda ctx ~name:(Some name) rest
    | _ -> (
      walk ctx value;
      match data_alloc_kind value with
      | Some kind ->
        ctx.escaping <- ctx.escaping + 1;
        ctx.in_def <- None;
        add ctx Note "pretenure"
          "global %s is initialised with a %s: immortal data, a candidate for alloc_pretenured (belt >= 1)"
          name kind
      | None -> ()));
    ctx.in_def <- None
  | Sexp.List (Sexp.Atom "define" :: Sexp.List (Sexp.Atom name :: params) :: body)
    ->
    walk_lambda ctx ~name:(Some name) (Sexp.List params :: body)
  | Sexp.List (Sexp.Atom "define" :: _) ->
    add ctx Error "bad-form" "bad define %s" (describe s)
  | other -> walk ctx other

(* Pre-declare top-level definitions (mutual recursion, as in the
   resolver) and record function arities. *)
let predeclare ctx forms =
  List.iter
    (fun (s : Sexp.t) ->
      match s with
      | Sexp.List (Sexp.Atom "define" :: Sexp.Atom name :: rest) ->
        let g = declare ctx name in
        g.g_arity <-
          (match rest with
          | [ Sexp.List (Sexp.Atom "lambda" :: Sexp.List params :: _ :: _) ] ->
            Some (List.length params)
          | _ -> None)
      | Sexp.List (Sexp.Atom "define" :: Sexp.List (Sexp.Atom name :: params) :: _)
        ->
        (declare ctx name).g_arity <- Some (List.length params)
      | _ -> ())
    forms

(* Any textual (set! name ...) voids arity conclusions about the
   global [name]: the analysis cannot order assignments against
   calls. Conservative: shadowed set!s void it too. *)
let rec scan_assignments ctx (s : Sexp.t) =
  match s with
  | Sexp.Atom _ -> ()
  | Sexp.List [ Sexp.Atom "set!"; Sexp.Atom name; v ] ->
    (match Hashtbl.find_opt ctx.globals name with
    | Some g -> g.g_arity <- None
    | None -> ());
    scan_assignments ctx v
  | Sexp.List l -> List.iter (scan_assignments ctx) l

let analyze forms =
  let ctx =
    {
      diags = Vec.create ~dummy:{ severity = Note; code = ""; message = "" } ();
      globals = Hashtbl.create 32;
      global_order = Vec.create ~dummy:"" ();
      scopes = [];
      in_def = None;
      data_allocs = 0;
      closures = 0;
      escaping = 0;
      stored = 0;
    }
  in
  predeclare ctx forms;
  List.iter (scan_assignments ctx) forms;
  List.iter (walk_top ctx) forms;
  (* Bytecode operand limits: a scope-clean program can still overflow
     an operand field (nesting deeper than max_c hops, more than max_b
     bindings in a scope, an oversized constant pool). Run the real
     compiler — the only authority on the encoding — and surface its
     limit errors statically, instead of letting `--vm bytecode` fail
     at run time. Only meaningful when resolution succeeded: on scope
     errors the compiler would just re-reject what is already
     reported above. *)
  (if Vec.to_list ctx.diags |> List.for_all (fun d -> d.severity <> Error) then
     try ignore (Compile.compile (Ast.compile forms)) with
     | Ast.Compile_error msg ->
       add ctx Error "bytecode-limit" "%s (not encodable as bytecode)" msg
     | _ -> ());
  Vec.iter
    (fun name ->
      let g = Hashtbl.find ctx.globals name in
      if (not g.g_used) && warnable name then
        add ctx Warning "unused-global" "global %s is defined but never used"
          name)
    ctx.global_order;
  add ctx Note "alloc-summary"
    "allocation sites: %d data, %d closure; %d escaping to globals, %d stored into the heap"
    ctx.data_allocs ctx.closures ctx.escaping ctx.stored;
  Vec.to_list ctx.diags

let errors diags = List.length (List.filter (fun d -> d.severity = Error) diags)

let warnings diags =
  List.length (List.filter (fun d -> d.severity = Warning) diags)

let pp_diag fmt d =
  Format.fprintf fmt "lint: %s [%s] %s"
    (match d.severity with
    | Error -> "error"
    | Warning -> "warning"
    | Note -> "note")
    d.code d.message
