(* Flat bytecode for Beltlang: one instruction per word, operands
   packed inline. The compiled form trades the AST walker's pointer
   chasing for a single int-array fetch per step, so the dispatch loop
   is a fetch, a mask and one jump-table match.

   Word layout (63-bit OCaml int):

     bits 0..7    opcode
     bits 8..31   operand A (24-bit unsigned: jump target, stack
                  offset, global/const/string index, arity)
     bits 32..47  operand B (16-bit unsigned: variable slot, binding
                  count, lambda index)
     bits 48..55  operand C (8-bit unsigned: environment-chain hops)

   [Push_int] instead treats bits 8..62 as one signed payload (the
   already-tagged immediate, recovered by [asr 8]); integers outside
   that range go to the constant pool. *)

(* Opcode numbering is load-bearing: the VM dispatches on these exact
   values with literal patterns (a dense match compiles to a jump
   table). Keep the two in sync. *)
let op_halt = 0
let op_push_int = 1 (* payload = tagged immediate *)
let op_push_const = 2 (* A = constant-pool index *)
let op_push_nil = 3
let op_pop = 4
let op_dup = 5
let op_local = 6 (* A = frame offset, B = slot, C = hops *)
let op_set_local = 7 (* A = frame offset, B = slot, C = hops *)
let op_global = 8 (* A = global index *)
let op_set_global = 9 (* A = global index; pushes null *)
let op_store_global = 10 (* A = global index; pushes nothing *)
let op_jump = 11 (* A = target pc *)
let op_jump_if_false = 12 (* A = target pc; pops the condition *)
let op_jump_if_true = 13 (* A = target pc; pops the condition *)
let op_enter_env = 14 (* A = parent frame offset, B = binding count *)
let op_exit_env = 15 (* A = binding count *)
let op_closure = 16 (* A = parent frame offset, B = lambda index *)
let op_call = 17 (* A = argument count *)
let op_return = 18
let op_qpair = 19 (* cons for quoted structure: [tail head] -> pair *)
let op_cons = 20
let op_car = 21
let op_cdr = 22
let op_set_car = 23
let op_set_cdr = 24
let op_is_null = 25
let op_is_pair = 26
let op_not = 27
let op_eq_phys = 28
let op_add = 29
let op_sub = 30
let op_mul = 31
let op_div = 32
let op_mod = 33
let op_lt = 34
let op_le = 35
let op_gt = 36
let op_ge = 37
let op_eq_num = 38
let op_vec_make = 39
let op_vec_ref = 40
let op_vec_set = 41
let op_vec_len = 42
let op_print = 43
let op_fail = 44 (* A = string-pool index of the runtime error *)

(* Fused superinstructions. Each replaces a sequence that contains no
   allocation point, so fusing cannot change the operand stack at any
   allocation — GC behaviour (and stats) are identical to the unfused
   encoding by construction. *)
let op_jcmp_false = 45 (* A = target pc, C = compare kind; pops both operands *)
let op_set_local_void = 46 (* A = frame offset, B = slot, C = hops; pushes nothing *)
let op_arith_imm = 47 (* B = immediate operand, C = arith kind *)

(* Multi-word superinstructions: the opcode word is followed by one or
   two operand words ([insn_len] gives the total). A local-variable
   operand word packs the usual (frame offset, slot, hops) triple in
   the A/B/C fields of an opcode-less word; an immediate operand word
   is the raw (untagged) integer. Jump patching still targets the
   opcode word's A field. *)
let op_jcmp_imm = 48 (* 2w: A = target, C = kind; w1 = immediate. Pops one. *)
let op_jcmp_ll = 49 (* 3w: A = target, C = kind; w1, w2 = local triples *)
let op_jtest = 50 (* 1w: A = target, C = test kind. Pops one. *)
let op_jtest_l = 51 (* 2w: A = target, C = test kind; w1 = local triple *)
let op_upd_local = 52 (* 3w: B = imm, C = arith kind; w1 = src, w2 = dst triple *)
let op_move_local = 53 (* 2w: dst triple inline; w1 = src triple *)
let op_local_arith = 54 (* 2w: B = imm, C = arith kind; w1 = src triple *)
let op_local2 = 55 (* 2w: first triple inline; w1 = second triple *)
let op_local_car = 56 (* 1w: local triple *)
let op_local_cdr = 57 (* 1w: local triple *)
let op_set_car_void = 58 (* set-car! in statement position: pushes nothing *)
let op_set_cdr_void = 59
let op_vec_set_void = 60
let op_print_void = 61
let op_jcmp_li = 62 (* 3w: A = target, C = kind; w1 = local triple, w2 = imm *)
let op_jcmp_gg = 63 (* 2w: A = target, C = kind; w1 = A:global1 B:global2 *)
let op_jcmp_gi = 64 (* 2w: A = target, B = global, C = kind; w1 = imm *)
let op_upd_global = 65 (* 1w: A = global, B = imm, C = arith kind *)
let op_global_arith = 66 (* 1w: A = global, B = imm, C = arith kind *)
let op_cmp_imm = 67 (* 2w: C = kind; w1 = imm. Pops one, pushes the bool. *)
let op_test = 68 (* 1w: C = test kind. Pops one, pushes the bool. *)
let op_jeq = 69 (* 1w: A = target, C bit 3 negates. Pops two (eq?). *)

let op_count = 70

(* Kind tables for the fused opcodes: index = operand C (low 3 bits;
   bit 3 negates a branch condition, absorbing a wrapping [not]). The
   strings are the same names the unfused opcodes use in runtime
   errors, so fused code fails with byte-identical messages. Div and
   mod are only ever fused with a non-zero literal divisor, so the
   unfused zero check cannot be observed missing. *)
let cmp_name = [| "<"; "<="; ">"; ">="; "=" |]
let arith_name = [| "+"; "-"; "*"; "/"; "mod" |]
let test_name = [| "null?"; "pair?" |]
let negate_bit = 8

(* ---- operand limits (the lint mirrors these; see Analysis) ------- *)

let max_a = 1 lsl 24
let max_b = 1 lsl 16
let max_c = 1 lsl 8

(* Inline [Push_int] payload: a tagged immediate in 55 signed bits. *)
let min_payload = -(1 lsl 54)
let max_payload = (1 lsl 54) - 1

let fits_payload v = v >= min_payload && v <= max_payload

(* ---- encode / decode -------------------------------------------- *)

let make ?(a = 0) ?(b = 0) ?(c = 0) op =
  op lor (a lsl 8) lor (b lsl 32) lor (c lsl 48)

let make_payload op payload = op lor (payload lsl 8)
let[@inline] op insn = insn land 0xff
let[@inline] a insn = (insn lsr 8) land 0xffffff
let[@inline] b insn = (insn lsr 32) land 0xffff
let[@inline] c insn = (insn lsr 48) land 0xff
let[@inline] payload insn = insn asr 8

(* Rewrite operand A in place (jump patching). *)
let with_a insn target = insn land lnot (0xffffff lsl 8) lor (target lsl 8)

(* Total words of the instruction starting with this opcode word. *)
let insn_len insn =
  let opc = insn land 0xff in
  if
    opc = op_jcmp_imm || opc = op_jtest_l || opc = op_move_local
    || opc = op_local_arith || opc = op_local2 || opc = op_jcmp_gg
    || opc = op_jcmp_gi || opc = op_cmp_imm
  then 2
  else if opc = op_jcmp_ll || opc = op_upd_local || opc = op_jcmp_li then 3
  else 1

(* ---- programs ---------------------------------------------------- *)

type lambda_info = { l_entry : int; l_params : int; l_name : string }

type program = {
  code : int array; (* toplevel at pc 0 (ends in Halt), lambda bodies after *)
  consts : int array; (* tagged values too wide for an inline payload *)
  strings : string array; (* runtime-error messages for [Fail] *)
  lambdas : lambda_info array;
  globals : string array; (* global slot -> name, as in [Ast.program] *)
}

(* ---- disassembler ------------------------------------------------ *)

let op_name = function
  | 0 -> "halt"
  | 1 -> "push-int"
  | 2 -> "push-const"
  | 3 -> "push-nil"
  | 4 -> "pop"
  | 5 -> "dup"
  | 6 -> "local"
  | 7 -> "set-local"
  | 8 -> "global"
  | 9 -> "set-global"
  | 10 -> "store-global"
  | 11 -> "jump"
  | 12 -> "jump-if-false"
  | 13 -> "jump-if-true"
  | 14 -> "enter-env"
  | 15 -> "exit-env"
  | 16 -> "closure"
  | 17 -> "call"
  | 18 -> "return"
  | 19 -> "qpair"
  | 20 -> "cons"
  | 21 -> "car"
  | 22 -> "cdr"
  | 23 -> "set-car!"
  | 24 -> "set-cdr!"
  | 25 -> "null?"
  | 26 -> "pair?"
  | 27 -> "not"
  | 28 -> "eq?"
  | 29 -> "add"
  | 30 -> "sub"
  | 31 -> "mul"
  | 32 -> "div"
  | 33 -> "mod"
  | 34 -> "lt"
  | 35 -> "le"
  | 36 -> "gt"
  | 37 -> "ge"
  | 38 -> "eq-num"
  | 39 -> "make-vector"
  | 40 -> "vector-ref"
  | 41 -> "vector-set!"
  | 42 -> "vector-length"
  | 43 -> "print"
  | 44 -> "fail"
  | 45 -> "jcmp-false"
  | 46 -> "set-local!"
  | 47 -> "arith-imm"
  | 48 -> "jcmp-imm"
  | 49 -> "jcmp-ll"
  | 50 -> "jtest"
  | 51 -> "jtest-l"
  | 52 -> "upd-local"
  | 53 -> "move-local"
  | 54 -> "local-arith"
  | 55 -> "local2"
  | 56 -> "local-car"
  | 57 -> "local-cdr"
  | 58 -> "set-car!v"
  | 59 -> "set-cdr!v"
  | 60 -> "vector-set!v"
  | 61 -> "print-v"
  | 62 -> "jcmp-li"
  | 63 -> "jcmp-gg"
  | 64 -> "jcmp-gi"
  | 65 -> "upd-global"
  | 66 -> "global-arith"
  | 67 -> "cmp-imm"
  | 68 -> "test"
  | 69 -> "jeq"
  | n -> Printf.sprintf "op%d" n

let pp_triple fmt w =
  Format.fprintf fmt "frame@%d slot %d hops %d" (a w) (b w) (c w)

let pp_kc fmt kc names =
  Format.fprintf fmt "%s%s"
    (if kc land negate_bit <> 0 then "not " else "")
    names.(kc land 7)

(* [pp_insn p code pc fmt insn]: the decoder needs the trailing operand
   words of multi-word instructions, hence the code array and pc. *)
let pp_insn p code pc fmt insn =
  let opc = op insn in
  let name = op_name opc in
  if opc = op_jcmp_imm then
    Format.fprintf fmt "%-14s %a %d -> %d" name
      (fun fmt kc -> pp_kc fmt kc cmp_name)
      (c insn) code.(pc + 1) (a insn)
  else if opc = op_jcmp_ll then
    Format.fprintf fmt "%-14s %a (%a) (%a) -> %d" name
      (fun fmt kc -> pp_kc fmt kc cmp_name)
      (c insn) pp_triple
      code.(pc + 1)
      pp_triple
      code.(pc + 2)
      (a insn)
  else if opc = op_jtest then
    Format.fprintf fmt "%-14s %a -> %d" name
      (fun fmt kc -> pp_kc fmt kc test_name)
      (c insn) (a insn)
  else if opc = op_jtest_l then
    Format.fprintf fmt "%-14s %a (%a) -> %d" name
      (fun fmt kc -> pp_kc fmt kc test_name)
      (c insn) pp_triple
      code.(pc + 1)
      (a insn)
  else if opc = op_upd_local then
    Format.fprintf fmt "%-14s (%a) <- (%a) %s %d" name pp_triple
      code.(pc + 2)
      pp_triple
      code.(pc + 1)
      arith_name.(c insn land 7)
      (b insn)
  else if opc = op_move_local then
    Format.fprintf fmt "%-14s (%a) <- (%a)" name pp_triple insn pp_triple
      code.(pc + 1)
  else if opc = op_local_arith then
    Format.fprintf fmt "%-14s (%a) %s %d" name pp_triple
      code.(pc + 1)
      arith_name.(c insn land 7)
      (b insn)
  else if opc = op_local2 then
    Format.fprintf fmt "%-14s (%a) (%a)" name pp_triple insn pp_triple
      code.(pc + 1)
  else if opc = op_local_car || opc = op_local_cdr then
    Format.fprintf fmt "%-14s %a" name pp_triple insn
  else if opc = op_jcmp_li then
    Format.fprintf fmt "%-14s %a (%a) %d -> %d" name
      (fun fmt kc -> pp_kc fmt kc cmp_name)
      (c insn) pp_triple
      code.(pc + 1)
      code.(pc + 2)
      (a insn)
  else if opc = op_jcmp_gg then
    Format.fprintf fmt "%-14s %a (%s) (%s) -> %d" name
      (fun fmt kc -> pp_kc fmt kc cmp_name)
      (c insn)
      p.globals.(a code.(pc + 1))
      p.globals.(b code.(pc + 1))
      (a insn)
  else if opc = op_jcmp_gi then
    Format.fprintf fmt "%-14s %a (%s) %d -> %d" name
      (fun fmt kc -> pp_kc fmt kc cmp_name)
      (c insn)
      p.globals.(b insn)
      code.(pc + 1)
      (a insn)
  else if opc = op_upd_global || opc = op_global_arith then
    Format.fprintf fmt "%-14s (%s) %s %d" name
      p.globals.(a insn)
      arith_name.(c insn land 7)
      (b insn)
  else if opc = op_cmp_imm then
    Format.fprintf fmt "%-14s %a %d" name
      (fun fmt kc -> pp_kc fmt kc cmp_name)
      (c insn) code.(pc + 1)
  else if opc = op_test then
    Format.fprintf fmt "%-14s %a" name
      (fun fmt kc -> pp_kc fmt kc test_name)
      (c insn)
  else if opc = op_jeq then
    Format.fprintf fmt "%-14s %s-> %d" name
      (if c insn land negate_bit <> 0 then "not " else "")
      (a insn)
  else if opc = op_push_int then
    (* payload is the tagged immediate; show the untagged integer *)
    let v = payload insn in
    if v land 1 = 1 then Format.fprintf fmt "%-14s %d" name (v asr 1)
    else Format.fprintf fmt "%-14s ref#%d" name (v lsr 1)
  else if opc = op_push_const then
    let i = a insn in
    let v = p.consts.(i) in
    Format.fprintf fmt "%-14s [%d] = %d" name i (v asr 1)
  else if opc = op_fail then
    Format.fprintf fmt "%-14s %S" name p.strings.(a insn)
  else if opc = op_jcmp_false then
    Format.fprintf fmt "%-14s %s -> %d" name cmp_name.(c insn) (a insn)
  else if opc = op_arith_imm then
    Format.fprintf fmt "%-14s %s %d" name arith_name.(c insn) (b insn)
  else if opc = op_local || opc = op_set_local || opc = op_set_local_void then
    Format.fprintf fmt "%-14s frame@%d slot %d hops %d" name (a insn) (b insn)
      (c insn)
  else if opc = op_enter_env then
    Format.fprintf fmt "%-14s parent@%d bindings %d" name (a insn) (b insn)
  else if opc = op_closure then
    let l = b insn in
    Format.fprintf fmt "%-14s parent@%d lambda %d (%s)" name (a insn) l
      p.lambdas.(l).l_name
  else if opc = op_global || opc = op_set_global || opc = op_store_global then
    Format.fprintf fmt "%-14s %d (%s)" name (a insn) p.globals.(a insn)
  else if opc = op_jump || opc = op_jump_if_false || opc = op_jump_if_true then
    Format.fprintf fmt "%-14s -> %d" name (a insn)
  else if opc = op_exit_env || opc = op_call then
    Format.fprintf fmt "%-14s %d" name (a insn)
  else Format.pp_print_string fmt name

let pp fmt p =
  let entry_of = Hashtbl.create 16 in
  Array.iteri
    (fun i (l : lambda_info) -> Hashtbl.replace entry_of l.l_entry i)
    p.lambdas;
  Format.fprintf fmt "@[<v>;; %d instruction(s), %d constant(s), %d lambda(s)"
    (Array.length p.code) (Array.length p.consts) (Array.length p.lambdas);
  let pc = ref 0 in
  while !pc < Array.length p.code do
    let pc0 = !pc in
    let insn = p.code.(pc0) in
    (match Hashtbl.find_opt entry_of pc0 with
    | Some l ->
      let li = p.lambdas.(l) in
      Format.fprintf fmt "@,;; lambda %d: %s/%d" l li.l_name li.l_params
    | None -> if pc0 = 0 then Format.fprintf fmt "@,;; toplevel");
    Format.fprintf fmt "@,%4d  %a" pc0 (pp_insn p p.code pc0) insn;
    pc := pc0 + insn_len insn
  done;
  Format.fprintf fmt "@]"
