(* The Beltlang bytecode VM: a tight dispatch loop over the flat code
   stream, with the collector's fast paths inlined into the hot
   opcode handlers.

   Equivalence contract: this engine must be indistinguishable from
   [Interp] on the simulated heap — same program output, same
   [Gc_stats], same sanitizer-visible event stream. That holds
   because (a) the operand stack IS the Roots shadow stack and the
   compiler pushes/releases exactly where the interpreter does, so
   every collection sees the same live set; (b) the inlined
   allocation fast path replicates [Gc.alloc]'s nursery-hit case
   word for word (the miss case falls back to [Gc.alloc] itself, and
   [Increment.bump_or_null] is side-effect-free on failure); (c) the
   inlined write barrier replicates [Write_barrier.record], counters,
   hooks and all. The differential suite (test_bytecode) enforces all
   three across programs x configurations.

   What makes it fast, relative to the AST walker:
   - one int-array fetch + one jump-table match per step (no
     closures, no list traversal, no per-step OCaml allocation);
   - locals resolved to static frame offsets at compile time
     (the interpreter re-walks the parent chain per access);
   - type checks as one cached-TIB word compare (the interpreter
     goes through [Gc.type_of] plus string compares);
   - allocation and barrier fast paths inlined at the opcode site. *)

module Vec = Beltway_util.Vec
module State = Beltway.State

exception Runtime_error = Interp.Runtime_error

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* A compilation unit: one [run]'s code and tables. Closures outlive
   the run that created them, so every lambda keeps a handle to its
   unit and the dispatch registers swap units on call/return. *)
type unit_ctx = {
  u_code : int array;
  u_consts : int array;
  u_strings : string array;
  u_genv : Roots.global array;
  u_base : int; (* this unit's offset into the persistent lambda table *)
  u_sites : int array;
      (* per-pc allocation-site id (code length; 0 where not an
         allocating opcode) — handlers stamp [State.alloc_site] before
         allocating so a profiler can attribute the object *)
}

type rt_lambda = {
  rl_entry : int;
  rl_params : int;
  rl_name : string;
  rl_unit : unit_ctx;
}

type t = {
  gc : Beltway.Gc.t;
  st : State.t;
  mem : Memory.t;
  frame_log : int;
  pair_ty : Type_registry.id;
  vector_ty : Type_registry.id;
  closure_ty : Type_registry.id;
  env_ty : Type_registry.id;
  (* cached TIB words: immortal boot-space refs, so a type check is
     one load and one compare *)
  pair_tib : Value.t;
  vector_tib : Value.t;
  closure_tib : Value.t;
  env_tib : Value.t;
  lambdas : rt_lambda Vec.t; (* persistent across runs, as in Interp *)
  globals : (string, Roots.global) Hashtbl.t;
  buf : Buffer.t;
  mutable steps : int; (* dispatched instructions, cumulative *)
}

let create gc =
  let st = Beltway.Gc.state gc in
  let pair_ty = Beltway.Gc.register_type gc ~name:"beltlang.pair" in
  let vector_ty = Beltway.Gc.register_type gc ~name:"beltlang.vector" in
  let closure_ty = Beltway.Gc.register_type gc ~name:"beltlang.closure" in
  let env_ty = Beltway.Gc.register_type gc ~name:"beltlang.env" in
  let dummy_unit =
    {
      u_code = [||];
      u_consts = [||];
      u_strings = [||];
      u_genv = [||];
      u_base = 0;
      u_sites = [||];
    }
  in
  {
    gc;
    st;
    mem = st.State.mem;
    frame_log = Memory.frame_log st.State.mem;
    pair_ty;
    vector_ty;
    closure_ty;
    env_ty;
    pair_tib = Beltway.Gc.tib_value gc pair_ty;
    vector_tib = Beltway.Gc.tib_value gc vector_ty;
    closure_tib = Beltway.Gc.tib_value gc closure_ty;
    env_tib = Beltway.Gc.tib_value gc env_ty;
    lambdas =
      Vec.create
        ~dummy:{ rl_entry = 0; rl_params = 0; rl_name = ""; rl_unit = dummy_unit }
        ();
    globals = Hashtbl.create 32;
    buf = Buffer.create 256;
    steps = 0;
  }

let gc t = t.gc
let output t = Buffer.contents t.buf
let clear_output t = Buffer.clear t.buf
let instructions t = t.steps

let global t name =
  Option.map
    (Roots.get_global (Beltway.Gc.roots t.gc))
    (Hashtbl.find_opt t.globals name)

(* Truthiness as in the interpreter: null (0) and the tagged zero
   immediate (1) are false. *)
let[@inline] truthy v = v <> 0 && v <> 1

let vtrue = Value.of_int 1
let vfalse = Value.of_int 0
let[@inline] of_bool b = if b then vtrue else vfalse

(* ---- inlined GC fast paths -------------------------------------- *)

(* Allocation: the nursery bump hit completes inline (in Gc, where the
   state's internals live); a miss takes the full [Gc.alloc] slow
   path, which re-runs the policy's trigger cascade. *)
let[@inline] alloc t ~ty ~tib ~nfields =
  let addr = Beltway.Gc.alloc_small_fast t.gc ~tib ~nfields in
  if addr <> Addr.null then addr else Beltway.Gc.alloc t.gc ~ty ~nfields

(* The write barrier, replicated from [Write_barrier.record] so the
   filter/stamp-compare fast path decides inline at the opcode site;
   counters and hooks fire exactly as the generic path's. The
   differential suite pins this equivalence across disciplines. *)
(* Out-of-line slow tail (remset insert + hooks): keeps the inline
   part of the barrier — the filter and stamp compare — free of
   closure definitions, which the non-flambda inliner refuses. *)
let barrier_slow st stats ~s ~tg ~slot =
  stats.Beltway.Gc_stats.barrier_slow <- stats.Beltway.Gc_stats.barrier_slow + 1;
  Beltway.Remset.insert st.State.remsets ~src_frame:s ~tgt_frame:tg ~slot;
  match st.State.hooks with
  | [] -> ()
  | hs ->
    let entries = Beltway.Remset.total_entries st.State.remsets in
    List.iter (fun h -> h.State.on_barrier_slow ~entries) hs

let[@inline] record_barrier t ~slot ~target =
  let st = t.st in
  let stats = st.State.stats in
  stats.Beltway.Gc_stats.barrier_ops <- stats.Beltway.Gc_stats.barrier_ops + 1;
  let s = slot lsr t.frame_log in
  let tg = target lsr t.frame_log in
  match st.State.policy.State.barrier with
  | State.Barrier_cards ->
    Beltway.Card_table.mark st.State.cards ~frame:s;
    stats.Beltway.Gc_stats.barrier_fast <- stats.Beltway.Gc_stats.barrier_fast + 1
  | State.Barrier_remsets { nursery_filter } ->
    let in_nursery =
      nursery_filter
      &&
      match Beltway.Belt.back st.State.belts.(0) with
      | None -> false
      | Some inc ->
        Beltway.Frame_table.incr_of st.State.ftab s = inc.Beltway.Increment.id
    in
    if in_nursery then
      stats.Beltway.Gc_stats.barrier_filtered <- stats.Beltway.Gc_stats.barrier_filtered + 1
    else if
      s <> tg
      && Beltway.Frame_table.stamp st.State.ftab tg
         < Beltway.Frame_table.stamp st.State.ftab s
    then barrier_slow st stats ~s ~tg ~slot
    else stats.Beltway.Gc_stats.barrier_fast <- stats.Beltway.Gc_stats.barrier_fast + 1

(* [Gc.write], with the barrier decision inlined above. Field access
   skips [Object_model]'s header re-read and [Memory]'s liveness
   checks: every address the VM dereferences came from a root slot
   (kept current by the collector) and passed a TIB type check, and
   every field index is either fixed by the object's type (pairs,
   closures) or bounds-checked against the header by the opcode
   handler (vectors, environments) — so the checked path could only
   re-verify what is already known. *)
let write_hooks hs obj i v =
  List.iter (fun (h : State.hooks) -> h.State.on_write ~obj ~field:i ~value:v) hs

let[@inline] write t obj i v =
  Memory.unsafe_set t.mem (obj + Object_model.header_words + i) v;
  if Value.is_ref v then
    record_barrier t ~slot:(Object_model.field_addr obj i)
      ~target:(Value.to_addr v);
  match t.st.State.hooks with [] -> () | hs -> write_hooks hs obj i v

let[@inline] read t obj i =
  Memory.unsafe_get t.mem (obj + Object_model.header_words + i)

(* Field count, from the object header (never a forwarding pointer
   between instructions). *)
let[@inline] obj_nfields t obj = Memory.unsafe_get t.mem obj asr 1

(* ---- type checks (one TIB-word compare) -------------------------- *)

let[@inline] is_of t tib v =
  Value.is_ref v && Memory.unsafe_get t.mem (Value.to_addr v + 1) = tib

let[@inline] as_pair t what v =
  if is_of t t.pair_tib v then Value.to_addr v
  else err "%s: expected a pair" what

let[@inline] as_vector t what v =
  if is_of t t.vector_tib v then Value.to_addr v
  else err "%s: expected a vector" what

let[@inline] as_int what v =
  if v land 1 = 1 then v asr 1 else err "%s: expected an integer" what

(* Fused-branch compare: low 3 bits of [kc] select the comparison,
   [Bytecode.negate_bit] flips it (an absorbed [not]). *)
let[@inline] cmp_holds kc a b =
  let taken =
    match kc land 7 with
    | 0 -> a < b
    | 1 -> a <= b
    | 2 -> a > b
    | 3 -> a >= b
    | _ -> a = b
  in
  taken <> (kc land Bytecode.negate_bit <> 0)

(* Fused arith against an immediate: type-checks the non-literal
   operand with the unfused opcode's error name. Div/mod are only
   emitted with a non-zero literal divisor. *)
let[@inline] arith_apply kind v0 k =
  let v = as_int (Array.unsafe_get Bytecode.arith_name kind) v0 in
  match kind with
  | 0 -> v + k
  | 1 -> v - k
  | 2 -> v * k
  | 3 -> v / k
  | _ -> v mod k

(* ---- rendering (the interpreter's display format) ---------------- *)

let render t v =
  let b = Buffer.create 32 in
  let rec go v =
    if Value.is_null v then Buffer.add_string b "()"
    else if Value.is_int v then
      Buffer.add_string b (string_of_int (Value.to_int v))
    else begin
      let addr = Value.to_addr v in
      let tib = Object_model.tib t.mem addr in
      if tib = t.pair_tib then begin
        Buffer.add_char b '(';
        let rec elems v first =
          if Value.is_null v then ()
          else if is_of t t.pair_tib v then begin
            if not first then Buffer.add_char b ' ';
            let a = Value.to_addr v in
            go (read t a 0);
            elems (read t a 1) false
          end
          else begin
            Buffer.add_string b " . ";
            go v
          end
        in
        elems v true;
        Buffer.add_char b ')'
      end
      else if tib = t.vector_tib then begin
        Buffer.add_string b "#(";
        let n = Object_model.nfields t.mem addr in
        for i = 0 to n - 1 do
          if i > 0 then Buffer.add_char b ' ';
          go (read t addr i)
        done;
        Buffer.add_char b ')'
      end
      else if tib = t.closure_tib then Buffer.add_string b "#<closure>"
      else Buffer.add_string b "#<object>"
    end
  in
  go v;
  Buffer.contents b

(* ---- dispatch ---------------------------------------------------- *)

(* Call frames: parallel stacks of the saved dispatch registers.
   Monomorphic int arrays, grown together out of line — a polymorphic
   vector would pay a [caml_modify] per saved register per call. *)
type frames = {
  mutable f_pc : int array;
  mutable f_fp : int array;
  mutable f_release : int array; (* shadow-stack watermark to restore on return *)
  mutable f_unit : unit_ctx array;
  mutable f_len : int;
}

let grow_frames fr dummy =
  let cap = Array.length fr.f_pc in
  let grow_int a = (let b = Array.make (2 * cap) 0 in Array.blit a 0 b 0 cap; b) in
  fr.f_pc <- grow_int fr.f_pc;
  fr.f_fp <- grow_int fr.f_fp;
  fr.f_release <- grow_int fr.f_release;
  let units = Array.make (2 * cap) dummy in
  Array.blit fr.f_unit 0 units 0 cap;
  fr.f_unit <- units

let exec t (unit0 : unit_ctx) ~fp:fp0 =
  let r = Beltway.Gc.roots t.gc in
  let frames =
    {
      f_pc = Array.make 64 0;
      f_fp = Array.make 64 0;
      f_release = Array.make 64 0;
      f_unit = Array.make 64 unit0;
      f_len = 0;
    }
  in
  let steps = ref 0 in
  (* Resolve an environment frame: [off] is fp-relative for frames in
     this call's stack segment; [hops] parent-chain loads reach frames
     captured from enclosing functions. Tail-recursive — no [ref]
     cell, this runs on every local-variable access. *)
  let rec hop v n =
    if not (Value.is_ref v) then err "internal: environment chain broken"
    else if n = 0 then Value.to_addr v
    else hop (read t (Value.to_addr v) 0) (n - 1)
  in
  let[@inline] env_frame fp off hops = hop (Roots.stack_get r (fp + off)) hops in
  (* The dispatch registers — current unit, its code array, pc, fp —
     are parameters of a tail-recursive loop, so every instruction
     boundary is a register move: no mutable cell, and in particular
     no [caml_modify] when call/return swaps the unit. *)
  let rec loop (u : unit_ctx) code pc fp =
    let insn = Array.unsafe_get code pc in
    let pc = pc + 1 in
    incr steps;
    (* Dense dispatch: the opcode constants of [Bytecode], as
       literals so the match compiles to a jump table. *)
    match insn land 0xff with
    | 0 (* halt *) -> ()
    | 1 (* push-int *) ->
      Roots.push r (insn asr 8);
      loop u code pc fp
    | 2 (* push-const *) ->
      Roots.push r (Array.unsafe_get u.u_consts (Bytecode.a insn));
      loop u code pc fp
    | 3 (* push-nil *) ->
      Roots.push r Value.null;
      loop u code pc fp
    | 4 (* pop *) ->
      ignore (Roots.pop r);
      loop u code pc fp
    | 5 (* dup *) ->
      Roots.push r (Roots.peek r 0);
      loop u code pc fp
    | 6 (* local *) ->
      let frame = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      Roots.push r (read t frame (Bytecode.b insn + 1));
      loop u code pc fp
    | 7 (* set-local *) ->
      let v = Roots.pop r in
      (* resolve after the value: its evaluation may have moved the
         frame (the stack slot is kept current by the collector) *)
      let frame = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      write t frame (Bytecode.b insn + 1) v;
      Roots.push r Value.null;
      loop u code pc fp
    | 8 (* global *) ->
      Roots.push r (Roots.get_global r (Array.unsafe_get u.u_genv (Bytecode.a insn)));
      loop u code pc fp
    | 9 (* set-global *) ->
      let v = Roots.pop r in
      Roots.set_global r (Array.unsafe_get u.u_genv (Bytecode.a insn)) v;
      Roots.push r Value.null;
      loop u code pc fp
    | 10 (* store-global *) ->
      let v = Roots.pop r in
      Roots.set_global r (Array.unsafe_get u.u_genv (Bytecode.a insn)) v;
      loop u code pc fp
    | 11 (* jump *) -> loop u code (Bytecode.a insn) fp
    | 12 (* jump-if-false *) ->
      if not (truthy (Roots.pop r)) then loop u code (Bytecode.a insn) fp
      else loop u code pc fp
    | 13 (* jump-if-true *) ->
      if truthy (Roots.pop r) then loop u code (Bytecode.a insn) fp
      else loop u code pc fp
    | 14 (* enter-env *) ->
      let k = Bytecode.b insn in
      t.st.State.alloc_site <- Array.unsafe_get u.u_sites (pc - 1);
      let frame = alloc t ~ty:t.env_ty ~tib:t.env_tib ~nfields:(k + 1) in
      (* parent read after the allocation: the stack slot tracks
         any move the collection performed *)
      write t frame 0 (Roots.stack_get r (fp + Bytecode.a insn));
      for i = 0 to k - 1 do
        write t frame (i + 1) (Roots.peek r (k - 1 - i))
      done;
      Roots.push r (Value.of_addr frame);
      loop u code pc fp
    | 15 (* exit-env *) ->
      let result = Roots.pop r in
      Roots.release r (Roots.depth r - (Bytecode.a insn + 1));
      Roots.push r result;
      loop u code pc fp
    | 16 (* closure *) ->
      t.st.State.alloc_site <- Array.unsafe_get u.u_sites (pc - 1);
      let addr = alloc t ~ty:t.closure_ty ~tib:t.closure_tib ~nfields:2 in
      write t addr 0 (Roots.stack_get r (fp + Bytecode.a insn));
      write t addr 1 (Value.of_int (u.u_base + Bytecode.b insn));
      Roots.push r (Value.of_addr addr);
      loop u code pc fp
    | 17 (* call *) ->
      let nargs = Bytecode.a insn in
      let fv = Roots.peek r nargs in
      if not (is_of t t.closure_tib fv) then err "call: expected a closure";
      let lam_id = as_int "call" (read t (Value.to_addr fv) 1) in
      let lam = Vec.get t.lambdas lam_id in
      if lam.rl_params <> nargs then
        err "%s expects %d arguments, got %d" lam.rl_name lam.rl_params nargs;
      t.st.State.alloc_site <- Array.unsafe_get u.u_sites (pc - 1);
      let frame = alloc t ~ty:t.env_ty ~tib:t.env_tib ~nfields:(nargs + 1) in
      (* re-resolve the closure: the allocation may have moved it *)
      let clos = Value.to_addr (Roots.peek r nargs) in
      write t frame 0 (read t clos 0);
      for i = 0 to nargs - 1 do
        write t frame (i + 1) (Roots.peek r (nargs - 1 - i))
      done;
      Roots.push r (Value.of_addr frame);
      let fp_new = Roots.depth r - 1 in
      let n = frames.f_len in
      if n = Array.length frames.f_pc then grow_frames frames unit0;
      Array.unsafe_set frames.f_pc n pc;
      Array.unsafe_set frames.f_fp n fp;
      Array.unsafe_set frames.f_release n (fp_new - nargs - 1);
      Array.unsafe_set frames.f_unit n u;
      frames.f_len <- n + 1;
      let u = lam.rl_unit in
      loop u u.u_code lam.rl_entry fp_new
    | 18 (* return *) ->
      let result = Roots.pop r in
      let n = frames.f_len - 1 in
      frames.f_len <- n;
      Roots.release r (Array.unsafe_get frames.f_release n);
      Roots.push r result;
      let u = Array.unsafe_get frames.f_unit n in
      loop u u.u_code
        (Array.unsafe_get frames.f_pc n)
        (Array.unsafe_get frames.f_fp n)
    | 19 (* qpair: [tail head] -> pair *) ->
      t.st.State.alloc_site <- Array.unsafe_get u.u_sites (pc - 1);
      let pair = alloc t ~ty:t.pair_ty ~tib:t.pair_tib ~nfields:2 in
      write t pair 0 (Roots.peek r 0);
      write t pair 1 (Roots.peek r 1);
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_addr pair);
      loop u code pc fp
    | 20 (* cons *) ->
      t.st.State.alloc_site <- Array.unsafe_get u.u_sites (pc - 1);
      let pair = alloc t ~ty:t.pair_ty ~tib:t.pair_tib ~nfields:2 in
      write t pair 0 (Roots.peek r 1);
      write t pair 1 (Roots.peek r 0);
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_addr pair);
      loop u code pc fp
    | 21 (* car *) ->
      let v = read t (as_pair t "car" (Roots.peek r 0)) 0 in
      ignore (Roots.pop r);
      Roots.push r v;
      loop u code pc fp
    | 22 (* cdr *) ->
      let v = read t (as_pair t "cdr" (Roots.peek r 0)) 1 in
      ignore (Roots.pop r);
      Roots.push r v;
      loop u code pc fp
    | 23 (* set-car! *) ->
      write t (as_pair t "set-car!" (Roots.peek r 1)) 0 (Roots.peek r 0);
      Roots.release r (Roots.depth r - 2);
      Roots.push r Value.null;
      loop u code pc fp
    | 24 (* set-cdr! *) ->
      write t (as_pair t "set-cdr!" (Roots.peek r 1)) 1 (Roots.peek r 0);
      Roots.release r (Roots.depth r - 2);
      Roots.push r Value.null;
      loop u code pc fp
    | 25 (* null? *) ->
      let v = of_bool (Value.is_null (Roots.pop r)) in
      Roots.push r v;
      loop u code pc fp
    | 26 (* pair? *) ->
      let v = of_bool (is_of t t.pair_tib (Roots.pop r)) in
      Roots.push r v;
      loop u code pc fp
    | 27 (* not *) ->
      let v = of_bool (not (truthy (Roots.pop r))) in
      Roots.push r v;
      loop u code pc fp
    | 28 (* eq? *) ->
      let b = Roots.pop r in
      let a = Roots.pop r in
      Roots.push r (of_bool (a = b));
      loop u code pc fp
    | 29 (* add *) ->
      let b = as_int "+" (Roots.peek r 0) in
      let a = as_int "+" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_int (a + b));
      loop u code pc fp
    | 30 (* sub *) ->
      let b = as_int "-" (Roots.peek r 0) in
      let a = as_int "-" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_int (a - b));
      loop u code pc fp
    | 31 (* mul *) ->
      let b = as_int "*" (Roots.peek r 0) in
      let a = as_int "*" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_int (a * b));
      loop u code pc fp
    | 32 (* div *) ->
      if as_int "/" (Roots.peek r 0) = 0 then err "division by zero";
      let b = as_int "/" (Roots.peek r 0) in
      let a = as_int "/" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_int (a / b));
      loop u code pc fp
    | 33 (* mod *) ->
      if as_int "mod" (Roots.peek r 0) = 0 then err "mod by zero";
      let b = as_int "mod" (Roots.peek r 0) in
      let a = as_int "mod" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_int (a mod b));
      loop u code pc fp
    | 34 (* lt *) ->
      let b = as_int "<" (Roots.peek r 0) in
      let a = as_int "<" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (of_bool (a < b));
      loop u code pc fp
    | 35 (* le *) ->
      let b = as_int "<=" (Roots.peek r 0) in
      let a = as_int "<=" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (of_bool (a <= b));
      loop u code pc fp
    | 36 (* gt *) ->
      let b = as_int ">" (Roots.peek r 0) in
      let a = as_int ">" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (of_bool (a > b));
      loop u code pc fp
    | 37 (* ge *) ->
      let b = as_int ">=" (Roots.peek r 0) in
      let a = as_int ">=" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (of_bool (a >= b));
      loop u code pc fp
    | 38 (* eq-num *) ->
      let b = as_int "=" (Roots.peek r 0) in
      let a = as_int "=" (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      Roots.push r (of_bool (a = b));
      loop u code pc fp
    | 39 (* make-vector *) ->
      let len = as_int "make-vector" (Roots.peek r 1) in
      if len < 0 then err "make-vector: negative length";
      t.st.State.alloc_site <- Array.unsafe_get u.u_sites (pc - 1);
      let v = alloc t ~ty:t.vector_ty ~tib:t.vector_tib ~nfields:len in
      let fill = Roots.peek r 0 in
      if not (Value.is_null fill) then
        for i = 0 to len - 1 do
          write t v i fill
        done;
      Roots.release r (Roots.depth r - 2);
      Roots.push r (Value.of_addr v);
      loop u code pc fp
    | 40 (* vector-ref *) ->
      let v = as_vector t "vector-ref" (Roots.peek r 1) in
      let i = as_int "vector-ref" (Roots.peek r 0) in
      if i < 0 || i >= obj_nfields t v then
        err "vector-ref: index %d out of bounds" i;
      let x = read t v i in
      Roots.release r (Roots.depth r - 2);
      Roots.push r x;
      loop u code pc fp
    | 41 (* vector-set! *) ->
      let v = as_vector t "vector-set!" (Roots.peek r 2) in
      let i = as_int "vector-set!" (Roots.peek r 1) in
      if i < 0 || i >= obj_nfields t v then
        err "vector-set!: index %d out of bounds" i;
      write t v i (Roots.peek r 0);
      Roots.release r (Roots.depth r - 3);
      Roots.push r Value.null;
      loop u code pc fp
    | 42 (* vector-length *) ->
      let v = as_vector t "vector-length" (Roots.peek r 0) in
      let n = obj_nfields t v in
      ignore (Roots.pop r);
      Roots.push r (Value.of_int n);
      loop u code pc fp
    | 43 (* print *) ->
      Buffer.add_string t.buf (render t (Roots.peek r 0));
      Buffer.add_char t.buf '\n';
      ignore (Roots.pop r);
      Roots.push r Value.null;
      loop u code pc fp
    | 44 (* fail *) ->
      raise (Runtime_error (Array.unsafe_get u.u_strings (Bytecode.a insn)))
    | 45 (* jcmp-false: fused compare + branch (A = target, C = kind) *) ->
      let kc = Bytecode.c insn in
      let name = Array.unsafe_get Bytecode.cmp_name (kc land 7) in
      (* Operand order and type-check order match the unfused compare
         opcodes exactly, down to the error strings. *)
      let b = as_int name (Roots.peek r 0) in
      let a = as_int name (Roots.peek r 1) in
      Roots.release r (Roots.depth r - 2);
      if cmp_holds kc a b then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 46 (* set-local, statement position: no null pushed *) ->
      let v = Roots.pop r in
      let frame = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      write t frame (Bytecode.b insn + 1) v;
      loop u code pc fp
    | 47 (* arith-imm: top of stack op B, rewritten in place *) ->
      let v = arith_apply (Bytecode.c insn land 7) (Roots.peek r 0) (Bytecode.b insn) in
      Roots.set_peek r 0 (Value.of_int v);
      loop u code pc fp
    | 48 (* jcmp-imm: compare popped operand with immediate word *) ->
      let kc = Bytecode.c insn in
      let b = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let a = as_int (Array.unsafe_get Bytecode.cmp_name (kc land 7)) (Roots.pop r) in
      if cmp_holds kc a b then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 49 (* jcmp-ll: compare two locals, branch — no stack traffic *) ->
      let w1 = Array.unsafe_get code pc in
      let w2 = Array.unsafe_get code (pc + 1) in
      let pc = pc + 2 in
      (* Resolution and type-check order mirror the unfused
         local-local-compare sequence: both frames resolved left to
         right, then checks right operand first. *)
      let f1 = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      let v1 = read t f1 (Bytecode.b w1 + 1) in
      let f2 = env_frame fp (Bytecode.a w2) (Bytecode.c w2) in
      let v2 = read t f2 (Bytecode.b w2 + 1) in
      let kc = Bytecode.c insn in
      let name = Array.unsafe_get Bytecode.cmp_name (kc land 7) in
      let b = as_int name v2 in
      let a = as_int name v1 in
      if cmp_holds kc a b then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 50 (* jtest: null?/pair? on popped value, branch when false *) ->
      let kc = Bytecode.c insn in
      let v = Roots.pop r in
      let holds =
        if kc land 7 = 0 then Value.is_null v else is_of t t.pair_tib v
      in
      if holds <> (kc land Bytecode.negate_bit <> 0) then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 51 (* jtest-l: null?/pair? on a local, branch when false *) ->
      let w1 = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let f = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      let v = read t f (Bytecode.b w1 + 1) in
      let kc = Bytecode.c insn in
      let holds =
        if kc land 7 = 0 then Value.is_null v else is_of t t.pair_tib v
      in
      if holds <> (kc land Bytecode.negate_bit <> 0) then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 52 (* upd-local: (set! x (op y k)) in one dispatch *) ->
      let w1 = Array.unsafe_get code pc in
      let w2 = Array.unsafe_get code (pc + 1) in
      let pc = pc + 2 in
      let fs = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      let v0 = read t fs (Bytecode.b w1 + 1) in
      let v = arith_apply (Bytecode.c insn land 7) v0 (Bytecode.b insn) in
      (* Destination resolved after the source read, as in the
         unfused encoding. *)
      let fd = env_frame fp (Bytecode.a w2) (Bytecode.c w2) in
      write t fd (Bytecode.b w2 + 1) (Value.of_int v);
      loop u code pc fp
    | 53 (* move-local: (set! x y), dst triple inline, src in w1 *) ->
      let w1 = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let fs = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      let v = read t fs (Bytecode.b w1 + 1) in
      let fd = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      write t fd (Bytecode.b insn + 1) v;
      loop u code pc fp
    | 54 (* local-arith: push (op y k) *) ->
      let w1 = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let f = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      let v0 = read t f (Bytecode.b w1 + 1) in
      let v = arith_apply (Bytecode.c insn land 7) v0 (Bytecode.b insn) in
      Roots.push r (Value.of_int v);
      loop u code pc fp
    | 55 (* local2: push two locals *) ->
      let w1 = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let f1 = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      Roots.push r (read t f1 (Bytecode.b insn + 1));
      let f2 = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      Roots.push r (read t f2 (Bytecode.b w1 + 1));
      loop u code pc fp
    | 56 (* local-car *) ->
      let f = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      let v = read t (as_pair t "car" (read t f (Bytecode.b insn + 1))) 0 in
      Roots.push r v;
      loop u code pc fp
    | 57 (* local-cdr *) ->
      let f = env_frame fp (Bytecode.a insn) (Bytecode.c insn) in
      let v = read t (as_pair t "cdr" (read t f (Bytecode.b insn + 1))) 1 in
      Roots.push r v;
      loop u code pc fp
    | 58 (* set-car!, statement position: no null pushed *) ->
      write t (as_pair t "set-car!" (Roots.peek r 1)) 0 (Roots.peek r 0);
      Roots.release r (Roots.depth r - 2);
      loop u code pc fp
    | 59 (* set-cdr!, statement position *) ->
      write t (as_pair t "set-cdr!" (Roots.peek r 1)) 1 (Roots.peek r 0);
      Roots.release r (Roots.depth r - 2);
      loop u code pc fp
    | 60 (* vector-set!, statement position *) ->
      let v = as_vector t "vector-set!" (Roots.peek r 2) in
      let i = as_int "vector-set!" (Roots.peek r 1) in
      if i < 0 || i >= obj_nfields t v then
        err "vector-set!: index %d out of bounds" i;
      write t v i (Roots.peek r 0);
      Roots.release r (Roots.depth r - 3);
      loop u code pc fp
    | 61 (* print, statement position *) ->
      Buffer.add_string t.buf (render t (Roots.peek r 0));
      Buffer.add_char t.buf '\n';
      ignore (Roots.pop r);
      loop u code pc fp
    | 62 (* jcmp-li: compare a local with an immediate, branch *) ->
      let w1 = Array.unsafe_get code pc in
      let k = Array.unsafe_get code (pc + 1) in
      let pc = pc + 2 in
      let f = env_frame fp (Bytecode.a w1) (Bytecode.c w1) in
      let v = read t f (Bytecode.b w1 + 1) in
      let kc = Bytecode.c insn in
      let a = as_int (Array.unsafe_get Bytecode.cmp_name (kc land 7)) v in
      if cmp_holds kc a k then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 63 (* jcmp-gg: compare two globals, branch *) ->
      let w1 = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let v1 = Roots.get_global r (Array.unsafe_get u.u_genv (Bytecode.a w1)) in
      let v2 = Roots.get_global r (Array.unsafe_get u.u_genv (Bytecode.b w1)) in
      let kc = Bytecode.c insn in
      let name = Array.unsafe_get Bytecode.cmp_name (kc land 7) in
      let b = as_int name v2 in
      let a = as_int name v1 in
      if cmp_holds kc a b then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 64 (* jcmp-gi: compare a global with an immediate, branch *) ->
      let k = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let v = Roots.get_global r (Array.unsafe_get u.u_genv (Bytecode.b insn)) in
      let kc = Bytecode.c insn in
      let a = as_int (Array.unsafe_get Bytecode.cmp_name (kc land 7)) v in
      if cmp_holds kc a k then loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | 65 (* upd-global: (set! g (op g k)) in one dispatch *) ->
      let g = Array.unsafe_get u.u_genv (Bytecode.a insn) in
      let v = arith_apply (Bytecode.c insn land 7) (Roots.get_global r g) (Bytecode.b insn) in
      Roots.set_global r g (Value.of_int v);
      loop u code pc fp
    | 66 (* global-arith: push (op g k) *) ->
      let v0 = Roots.get_global r (Array.unsafe_get u.u_genv (Bytecode.a insn)) in
      let v = arith_apply (Bytecode.c insn land 7) v0 (Bytecode.b insn) in
      Roots.push r (Value.of_int v);
      loop u code pc fp
    | 67 (* cmp-imm: compare popped operand with immediate, push bool *) ->
      let k = Array.unsafe_get code pc in
      let pc = pc + 1 in
      let kc = Bytecode.c insn in
      let a = as_int (Array.unsafe_get Bytecode.cmp_name (kc land 7)) (Roots.pop r) in
      Roots.push r (of_bool (cmp_holds kc a k));
      loop u code pc fp
    | 68 (* test: null?/pair? on popped value, push bool *) ->
      let kc = Bytecode.c insn in
      let v = Roots.pop r in
      let holds =
        if kc land 7 = 0 then Value.is_null v else is_of t t.pair_tib v
      in
      Roots.push r (of_bool (holds <> (kc land Bytecode.negate_bit <> 0)));
      loop u code pc fp
    | 69 (* jeq: eq? + branch when unequal (xor negate) *) ->
      let b = Roots.pop r in
      let a = Roots.pop r in
      if (a = b) <> (Bytecode.c insn land Bytecode.negate_bit <> 0) then
        loop u code pc fp
      else loop u code (Bytecode.a insn) fp
    | n -> err "internal: bad opcode %d" n
  in
  Fun.protect
    ~finally:(fun () -> t.steps <- t.steps + !steps)
    (fun () -> loop unit0 unit0.u_code 0 fp0)

(* ---- runs -------------------------------------------------------- *)

let run_compiled t (bc : Bytecode.program) =
  let base = Vec.length t.lambdas in
  let r = Beltway.Gc.roots t.gc in
  let genv =
    Array.map
      (fun name ->
        match Hashtbl.find_opt t.globals name with
        | Some g -> g
        | None ->
          let g = Roots.new_global r Value.null in
          Hashtbl.replace t.globals name g;
          g)
      bc.Bytecode.globals
  in
  (* Intern this unit's allocation sites so a profiler (attached now
     or later) can attribute objects to bytecode pcs. Interning is
     OCaml-side only — no simulated-heap traffic, stats unchanged. *)
  let u_sites = Array.make (Array.length bc.Bytecode.code) 0 in
  Array.iter
    (fun (pc, label) ->
      u_sites.(pc) <- Beltway.Gc.register_site t.gc ~name:label)
    (Compile.alloc_sites bc);
  let u =
    {
      u_code = bc.Bytecode.code;
      u_consts = bc.Bytecode.consts;
      u_strings = bc.Bytecode.strings;
      u_genv = genv;
      u_base = base;
      u_sites;
    }
  in
  Array.iter
    (fun (li : Bytecode.lambda_info) ->
      Vec.push t.lambdas
        {
          rl_entry = li.Bytecode.l_entry;
          rl_params = li.Bytecode.l_params;
          rl_name = li.Bytecode.l_name;
          rl_unit = u;
        })
    bc.Bytecode.lambdas;
  let m = Roots.mark r in
  (* Errors (including Out_of_memory) may abandon shadow-stack entries
     mid-run; restore the caller's watermark unconditionally. *)
  Fun.protect
    ~finally:(fun () -> Roots.release r m)
    (fun () ->
      (* Top level runs in a degenerate root frame, as in Interp. *)
      t.st.State.alloc_site <-
        Beltway.Gc.register_site t.gc ~name:"<toplevel>:frame";
      let frame = alloc t ~ty:t.env_ty ~tib:t.env_tib ~nfields:1 in
      Roots.push r (Value.of_addr frame);
      exec t u ~fp:(Roots.depth r - 1))

let run t prog = run_compiled t (Compile.compile prog)

let run_string t src =
  let initial_globals =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.globals []
  in
  run t (Ast.compile ~initial_globals (Sexp.parse_string src))
