(** Static analysis for Beltlang: the [--lint] pass.

    Three families of diagnostics over the raw s-expressions (the
    compiler stops at the first error; the analyser keeps going and
    reports everything):

    - {e errors}: unbound variables, [set!] of unbound names, arity
      mismatches against primitives and top-level definitions,
      malformed special forms — everything the resolver or interpreter
      would reject, found without running the program;
    - {e warnings}: unreachable code (branches and loop bodies guarded
      by constant conditions under Beltlang truthiness, dead tails of
      [and]/[or]), unused [let] bindings, parameters and globals;
    - {e notes}: allocation-site lifetime classification. A [cons],
      [make-vector], [lambda] or quoted list whose value is stored
      into a global, or into an existing heap structure via
      [set-car!]/[set-cdr!]/[vector-set!], escapes its creating scope
      and is a candidate for pretenured allocation on belt >= 1 (paper
      §5); allocations that stay local are best left to the nursery.

    Scoping mirrors [Ast.compile] exactly: top-level [define]s are
    pre-declared (mutual recursion), [let] is non-recursive, and a
    primitive name is a primitive only where no binding shadows it. *)

type severity = Error | Warning | Note

type diag = { severity : severity; code : string; message : string }
(** [code] is a stable kebab-case class: [unbound-var], [bad-arity],
    [bad-form], [unreachable], [constant-loop], [unused-binding],
    [unused-param], [unused-global], [pretenure], [alloc-summary],
    [bytecode-limit] (the compiled form would overflow a bytecode
    operand field — nesting deeper than the hop budget, too many
    bindings in one scope, or an oversized constant pool). *)

val analyze : Sexp.t list -> diag list
(** All diagnostics for a program, in traversal order (unused-global
    warnings and the allocation summary last). Never raises. *)

val errors : diag list -> int
val warnings : diag list -> int

val pp_diag : Format.formatter -> diag -> unit
(** [lint: <severity> [<code>] <message>]. *)
