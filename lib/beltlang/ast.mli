(** Beltlang abstract syntax and the resolver.

    The compiler turns s-expressions into an AST with all variable
    references resolved to lexical coordinates (frame depth, slot
    index) so the interpreter's environments can be flat heap objects
    with no name lookup at run time. Globals are resolved to dense
    indices.

    Special forms: [define] (top level; [(define (f x) body)] sugar),
    [lambda], [if], [let], [begin], [set!], [while], [and], [or],
    [quote] (integers, booleans, symbols-as-errors, and lists thereof
    become heap data at load time). Everything else is a call, with
    primitives recognised by name. *)

type prim =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq_num
  | Eq_phys  (** eq?: physical/immediate identity *)
  | Not
  | Cons | Car | Cdr | Set_car | Set_cdr
  | Is_null | Is_pair
  | Vector_make  (** (make-vector n fill) *)
  | Vector_ref | Vector_set | Vector_length
  | Print  (** append the value's rendering to the output buffer *)

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of { depth : int; idx : int }
  | Global of int
  | If of expr * expr * expr
  | Let of { bindings : expr list; body : expr list }
  | Lambda of { lam : int }
  | Call of expr * expr list
  | Prim of prim * expr list
  | Begin of expr list
  | Set_var of { depth : int; idx : int; value : expr }
  | Set_global of { idx : int; value : expr }
  | While of { cond : expr; body : expr list }
  | And of expr list
  | Or of expr list
  | Quoted of Sexp.t

type lambda = { params : int; body : expr list; name : string }

type program = {
  lambdas : lambda array;
  globals : string array; (** global names, by index *)
  toplevel : (int option * expr) list;
      (** [(Some g, e)]: define global [g] as [e]; [(None, e)]: effectful
          top-level expression. *)
}

exception Compile_error of string

val compile : ?initial_globals:string list -> Sexp.t list -> program
(** [initial_globals] pre-declares names defined by previously loaded
    programs (they occupy the first global indices, in order), so an
    interpreter session can compile forms incrementally.
    @raise Compile_error on unbound variables, bad special forms or
    arity errors for primitives. *)

val prim_name : prim -> string

val prims : (string * (prim * int)) list
(** Primitive name -> (operator, arity) — the resolver's table, shared
    with the static-analysis pass so the two cannot drift. *)
