(** The Beltlang bytecode VM.

    Drop-in replacement for {!Interp}: same heap representation, same
    output, and — by construction — the same [Gc_stats] and
    sanitizer-visible event stream on every program (the operand
    stack is the Roots shadow stack, and the inlined allocation /
    write-barrier fast paths replicate the generic [Gc] entry points
    exactly). What changes is speed: a flat code stream, a jump-table
    dispatch loop, static frame offsets for locals, and cached-TIB
    type checks. The differential suite in [test_bytecode] pins the
    equivalence. *)

type t

exception Runtime_error of string
(** The interpreter's exception, re-exported: both engines raise the
    same errors with the same messages. *)

val create : Beltway.Gc.t -> t
(** A VM instance over the given heap. Globals and compiled lambdas
    persist across [run] calls, as in {!Interp.create}. *)

val gc : t -> Beltway.Gc.t

val run : t -> Ast.program -> unit
(** Compile to bytecode and execute all top-level forms.
    @raise Runtime_error on dynamic type errors or arity mismatches.
    @raise Ast.Compile_error when the program exceeds a bytecode limit.
    @raise Beltway.Gc.Out_of_memory when the heap is too small. *)

val run_compiled : t -> Bytecode.program -> unit
(** Execute an already-compiled program. *)

val run_string : t -> string -> unit
(** Parse, compile and run.
    @raise Sexp.Parse_error / Ast.Compile_error accordingly. *)

val output : t -> string
(** Everything printed by [print] so far. *)

val clear_output : t -> unit

val global : t -> string -> Value.t option
(** Current value of a top-level definition (for tests). *)

val instructions : t -> int
(** Bytecode instructions dispatched so far, cumulative across runs —
    the throughput denominator for the interpreter benchmarks. *)
