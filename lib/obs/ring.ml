type 'a t = {
  slots : 'a array;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity dummy; start = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let dropped t = t.dropped
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.slots in
  if t.len < cap then begin
    t.slots.((t.start + t.len) mod cap) <- x;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest — a flight recorder keeps the tail of
       the run, not the head. *)
    t.slots.(t.start) <- x;
    t.start <- (t.start + 1) mod cap;
    t.dropped <- t.dropped + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of bounds";
  t.slots.((t.start + i) mod Array.length t.slots)

let iter t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
