(** A small metrics registry: named counters, gauges and histograms.

    The flight recorder aggregates into one of these (pause
    distributions, per-belt occupancy, remset pressure); the snapshot
    exporter serialises it as the [beltway-metrics/1] JSON schema.
    Histograms carry p50/p90/p99/max via
    {!Beltway_util.Histogram.quantile}. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter, creating it at zero on first use. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge (last-write-wins sample). *)

val observe : t -> bucket_width:float -> string -> float -> unit
(** Record one histogram observation; the histogram is created with
    [bucket_width] on first use (later widths are ignored). *)

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> float
(** 0 when absent. *)

val histogram : t -> string -> Beltway_util.Histogram.t option

val reset : t -> unit
(** Drop every counter, gauge and histogram — repeated in-process runs
    (the bench baseline diff, test grids) start from a clean registry
    instead of accumulating stale state. *)

val histogram_names : t -> string list
(** Registered histogram names, sorted — the stable export order. *)

val iter_histograms : t -> (string -> Beltway_util.Histogram.t -> unit) -> unit
(** Visit histograms in sorted-name order (same order as
    {!histogram_names} and the JSON export). *)

val to_json : t -> Beltway_util.Json.t
(** The [beltway-metrics/1] snapshot: counters and gauges by name,
    histograms as [{count; mean; max; p50; p90; p99}]. Keys are sorted,
    so output is deterministic. *)
