module Histogram = Beltway_util.Histogram
module Json = Beltway_util.Json

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    hists = Hashtbl.create 32;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t ~bucket_width name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
      let h = Histogram.create ~bucket_width () in
      Hashtbl.replace t.hists name h;
      h
  in
  Histogram.add h v

let counter t name =
  Option.fold ~none:0 ~some:( ! ) (Hashtbl.find_opt t.counters name)

let gauge t name =
  Option.fold ~none:0.0 ~some:( ! ) (Hashtbl.find_opt t.gauges name)

let histogram t name = Hashtbl.find_opt t.hists name

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let histogram_names t = sorted_keys t.hists

let iter_histograms t f =
  List.iter (fun k -> f k (Hashtbl.find t.hists k)) (sorted_keys t.hists)

let quantiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let histogram_json h =
  Json.Obj
    ([
       ("count", Json.Num (float_of_int (Histogram.count h)));
       ("mean", Json.Num (Histogram.mean h));
       ("max", Json.Num (Histogram.max_value h));
     ]
    @ List.map (fun (k, q) -> (k, Json.Num (Histogram.quantile h q))) quantiles)

let to_json t =
  let obj_of tbl value =
    Json.Obj (List.map (fun k -> (k, value (Hashtbl.find tbl k))) (sorted_keys tbl))
  in
  Json.Obj
    [
      ("schema", Json.Str "beltway-metrics/1");
      ("counters", obj_of t.counters (fun r -> Json.Num (float_of_int !r)));
      ("gauges", obj_of t.gauges (fun r -> Json.Num !r));
      ("histograms", obj_of t.hists histogram_json);
    ]
