(** The GC flight recorder.

    Attached to a heap via [State.hooks], the recorder keeps a
    fixed-capacity {!Ring} of structured events — collection pauses
    with their phase spans (roots, remset/card drain, Cheney copy,
    frame free), frame grants and frees, belt advances, copy-reserve
    samples, trigger firings — each stamped on the wall clock
    (microseconds since attach) and, for collections, the allocation
    clock. Alongside the ring it aggregates a {!Metrics} registry
    (pause and interval distributions, bytes copied, per-belt and
    per-increment occupancy, remembered-set pressure).

    Cost when detached: zero — no recorder state exists and every hook
    dispatch site in the collector short-circuits on the empty hook
    list. Cost when attached: O(1) per event, no per-slot or
    barrier-fast-path instrumentation. *)

type event =
  | Collection of {
      n : int;
      reason : Beltway.Gc_stats.reason;
      emergency : bool;
      full_heap : bool;
      start_us : float;
      dur_us : float;
      clock_words : int;  (** allocation clock at pause start *)
      copied_words : int;
      freed_frames : int;
      frames_after : int;
      reserve_frames : int;
    }  (** one complete collection pause *)
  | Phase of {
      n : int;  (** ordinal of the enclosing collection *)
      phase : Beltway.Gc_stats.gc_phase;
      start_us : float;
      dur_us : float;
    }  (** one phase span, nested inside collection [n]'s pause *)
  | Frame_grant of { t_us : float; frame : int; belt : int; during_gc : bool }
  | Frame_free of { t_us : float; frame : int; belt : int }
  | Belt_advance of { t_us : float; belt : int; inc_id : int; stamp : int }
  | Reserve of { t_us : float; frames : int }
      (** copy reserve sampled at the end of a collection *)
  | Trigger_fired of { t_us : float; reason : Beltway.Gc_stats.reason }
  | Gc_domain of {
      n : int;  (** ordinal of the enclosing collection *)
      domain : int;
      phases : (Beltway.Gc_stats.gc_phase * float * float) array;
          (** (phase, start_us, dur_us): this domain's share of the
              roots, remset/card and Cheney phases *)
      copied_objects : int;
      copied_words : int;
      scanned_slots : int;
      steals : int;  (** grey objects taken from other domains' deques *)
      cas_retries : int;  (** forwarding races lost (copy discarded) *)
    }
      (** one GC domain's contribution to a parallel collection
          ([gc_domains] > 1 only) *)

type t

val default_capacity : int

val attach : ?capacity:int -> Beltway.Gc.t -> t
(** Install the recorder's hooks (capacity = ring size in events,
    default {!default_capacity}). Events beyond capacity overwrite the
    oldest; see {!dropped}. *)

val detach : t -> unit
(** Remove the hooks; the recorded data stays readable. *)

val gc : t -> Beltway.Gc.t
val metrics : t -> Metrics.t

val events : t -> event list
(** Retained events, oldest first. *)

val iter_events : t -> (event -> unit) -> unit
val event_count : t -> int

val dropped : t -> int
(** Events lost to ring overflow. *)

val collections : t -> int
(** Complete pauses recorded (grows without bound; pauses are also kept
    outside the ring for the MMU cross-check). *)

val pause_starts_us : t -> float array
(** Wall-clock start of every recorded pause, in collection order. *)

val pause_durs_us : t -> float array
(** Wall-clock duration of every recorded pause, in collection order —
    the recorded timeline [Beltway_sim.Mmu.crosscheck] compares against
    the cost-model reconstruction. *)

val domain_copied_bytes : t -> Beltway_util.Histogram.t option
(** The per-domain [gc.domain.<d>.copied_bytes] histograms merged into
    one distribution (via [Histogram.merge]); [None] when every
    recorded collection was sequential. *)

val env_file : unit -> string option
(** [$BELTWAY_TRACE]: the trace output file requested by the
    environment, if any (the CLIs' default for [--trace]). *)
