(** Fixed-capacity ring buffer with drop-oldest overflow.

    The flight recorder's event store: a full ring overwrites its
    oldest entry (and counts the loss), so a long run keeps the most
    recent window of events at a bounded, allocation-free cost per
    event. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** @raise Invalid_argument when [capacity < 1]. [dummy] fills unused
    slots and is never observable. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val dropped : 'a t -> int
(** Number of events overwritten since creation (or [clear]). *)

val push : 'a t -> 'a -> unit
(** O(1); overwrites the oldest element when full. *)

val get : 'a t -> int -> 'a
(** [get t 0] is the oldest retained element.
    @raise Invalid_argument when out of bounds. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest to newest. *)

val fold : 'a t -> init:'acc -> f:('acc -> 'a -> 'acc) -> 'acc
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
