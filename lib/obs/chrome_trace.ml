module Json = Beltway_util.Json
module Gc_stats = Beltway.Gc_stats
module State = Beltway.State

(* Track layout: tid 0 is the mutator (collection pauses and their
   phase spans preempt the mutator, so they render there), tid 1+b is
   belt b (frame grants/frees and belt advances, so per-belt heap
   churn is visible as its own track), and tid 64+d is GC domain d's
   share of each parallel collection (64 clears every belt track:
   belts are bounded well below it by configuration parsing). *)
let mutator_tid = 0
let belt_tid b = b + 1
let gc_domain_tid d = 64 + d

let num i = Json.Num (float_of_int i)

let common ~pid ~tid ~name ~cat ~ph ~ts rest =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Num ts);
       ("pid", num pid);
       ("tid", num tid);
     ]
    @ rest)

let instant ~pid ~tid ~name ~cat ~ts args =
  common ~pid ~tid ~name ~cat ~ph:"i" ~ts
    [ ("s", Json.Str "t"); ("args", Json.Obj args) ]

let span ~pid ~tid ~name ~cat ~ts ~dur args =
  common ~pid ~tid ~name ~cat ~ph:"X" ~ts
    [ ("dur", Json.Num dur); ("args", Json.Obj args) ]

(* One recorder event can expand to several trace events (a parallel
   collection report becomes one span per phase on the domain's
   track), so this returns a list. *)
let event_json ~pid (e : Recorder.event) =
  match e with
  | Recorder.Gc_domain d ->
    let counters =
      [
        ("gc", num d.n);
        ("copied_objects", num d.copied_objects);
        ("copied_words", num d.copied_words);
        ("scanned_slots", num d.scanned_slots);
        ("steals", num d.steals);
        ("cas_retries", num d.cas_retries);
      ]
    in
    Array.to_list d.phases
    |> List.filter_map (fun (phase, start_us, dur_us) ->
           if dur_us <= 0.0 && phase <> Gc_stats.Phase_cheney then None
           else
             Some
               (span ~pid ~tid:(gc_domain_tid d.domain)
                  ~name:(Gc_stats.phase_to_string phase)
                  ~cat:"gc.domain" ~ts:start_us ~dur:dur_us
                  (* Counters ride on the Cheney span (the drain is
                     where copies, steals and CAS races happen). *)
                  (if phase = Gc_stats.Phase_cheney then counters
                   else [ ("gc", num d.n) ])))
  | Recorder.Collection c ->
    let label =
      Gc_stats.reason_to_string c.reason
      ^ if c.emergency then "-emergency" else ""
    in
    [
      span ~pid ~tid:mutator_tid
        ~name:(Printf.sprintf "GC %d (%s)" c.n label)
        ~cat:"gc" ~ts:c.start_us ~dur:c.dur_us
        [
        ("reason", Json.Str (Gc_stats.reason_to_string c.reason));
        ("emergency", Json.Bool c.emergency);
        ("full_heap", Json.Bool c.full_heap);
        ("n", num c.n);
        ("clock_words", num c.clock_words);
        ("copied_words", num c.copied_words);
        ("freed_frames", num c.freed_frames);
          ("frames_after", num c.frames_after);
          ("reserve_frames", num c.reserve_frames);
        ];
    ]
  | Recorder.Phase p ->
    [
      span ~pid ~tid:mutator_tid
        ~name:(Gc_stats.phase_to_string p.phase)
        ~cat:"gc.phase" ~ts:p.start_us ~dur:p.dur_us
        [ ("gc", num p.n) ];
    ]
  | Recorder.Frame_grant f ->
    [
      instant ~pid ~tid:(belt_tid f.belt) ~name:"frame grant" ~cat:"frame"
        ~ts:f.t_us
        [ ("frame", num f.frame); ("during_gc", Json.Bool f.during_gc) ];
    ]
  | Recorder.Frame_free f ->
    [
      instant ~pid ~tid:(belt_tid f.belt) ~name:"frame free" ~cat:"frame"
        ~ts:f.t_us
        [ ("frame", num f.frame) ];
    ]
  | Recorder.Belt_advance b ->
    [
      instant ~pid ~tid:(belt_tid b.belt) ~name:"belt advance" ~cat:"belt"
        ~ts:b.t_us
        [ ("inc", num b.inc_id); ("stamp", num b.stamp) ];
    ]
  | Recorder.Reserve r ->
    [
      common ~pid ~tid:mutator_tid ~name:"copy reserve" ~cat:"reserve" ~ph:"C"
        ~ts:r.t_us
        [ ("args", Json.Obj [ ("frames", num r.frames) ]) ];
    ]
  | Recorder.Trigger_fired tr ->
    [
      instant ~pid ~tid:mutator_tid
        ~name:("trigger " ^ Gc_stats.reason_to_string tr.reason)
        ~cat:"trigger" ~ts:tr.t_us [];
    ]

let meta ~pid ~tid ~kind name =
  Json.Obj
    [
      ("name", Json.Str kind);
      ("ph", Json.Str "M");
      ("pid", num pid);
      ("tid", num tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let track_meta ~pid ~process_name rec_ =
  let st = Beltway.Gc.state (Recorder.gc rec_) in
  let belt_name b =
    match State.los_belt st with
    | Some los when los = b -> "belt LOS"
    | _ -> Printf.sprintf "belt %d" b
  in
  meta ~pid ~tid:mutator_tid ~kind:"process_name" process_name
  :: meta ~pid ~tid:mutator_tid ~kind:"thread_name" "mutator"
  :: (List.init
        (Array.length st.State.belts)
        (fun b -> meta ~pid ~tid:(belt_tid b) ~kind:"thread_name" (belt_name b))
     @
     (* One named track per GC domain when collections are sharded. *)
     if st.State.gc_domains > 1 then
       List.init st.State.gc_domains (fun d ->
           meta ~pid ~tid:(gc_domain_tid d) ~kind:"thread_name"
             (Printf.sprintf "gc domain %d" d))
     else [])

let events_json ?(pid = 1) ?(process_name = "beltway") rec_ =
  let evs = ref [] in
  Recorder.iter_events rec_ (fun e ->
      evs := List.rev_append (event_json ~pid e) !evs);
  track_meta ~pid ~process_name rec_ @ List.rev !evs

let wrap traceEvents =
  Json.Obj
    [
      ("traceEvents", Json.Arr traceEvents);
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_json ?pid ?process_name rec_ = wrap (events_json ?pid ?process_name rec_)

let merge recs =
  wrap
    (List.concat
       (List.mapi
          (fun i (name, r) -> events_json ~pid:(i + 1) ~process_name:name r)
          recs))

let write_file file json =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (Json.to_string ~indent:true json);
      output_char oc '\n')
