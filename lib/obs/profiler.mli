(** Object-demographics profiler.

    Attaches to a heap through [State.hooks] (like {!Recorder} and the
    sanitizer — zero cost detached) and accumulates, per allocation
    site: object/word counts, copies (survivals), deaths and arrivals
    at the top belt; per belt: an age-at-copy histogram; plus a
    belt×belt promotion matrix and an occupancy/remset/pause time
    series sampled at every collection end.

    Sites are interned in the heap's registry
    ({!Beltway.Gc.register_site}); instrumented mutators stamp
    {!Beltway.Gc.set_alloc_site} immediately before each allocation.
    Objects allocated while the profiler is detached are untracked
    (their later moves are ignored).

    All demographic arithmetic runs on the allocation clock
    ([Gc_stats.words_allocated]), which is deterministic and frozen
    during collections — the [test/test_profiler.ml] differential
    grid checks it exactly against the Shadow heap's lifetime oracle. *)

type t

type sample = {
  s_gc : int;  (** collection ordinal *)
  s_clock_words : int;  (** allocation clock at the collection *)
  s_frames_used : int;
  s_reserve_frames : int;
  s_remset_entries : int;
  s_copied_words : int;
  s_pause_us : float;  (** wall-clock pause (not deterministic) *)
  s_belt_frames : int array;  (** per-belt occupancy, LOS included *)
}

val age_bucket_words : float
(** Bucket width of the per-belt age-at-copy histograms, in
    allocation-clock words. *)

val attach : Beltway.Gc.t -> t
(** Install the profiler's hooks; composes with the recorder and the
    sanitizer (hooks fire in installation order). *)

val detach : t -> unit
(** Remove the hooks; the accumulated data stays readable. *)

val gc : t -> Beltway.Gc.t

(** {2 Per-site accumulators} (0 for unknown ids) *)

val site_alloc_objects : t -> int -> int
val site_alloc_words : t -> int -> int

val site_copied_objects : t -> int -> int
(** Copy events charged to the site — an object copied by [k]
    collections contributes [k]. *)

val site_copied_words : t -> int -> int
val site_dead_objects : t -> int -> int
val site_dead_words : t -> int -> int

val site_top_belt_objects : t -> int -> int
(** Copies that landed an object of this site in the top (oldest
    regular) belt, coming from a younger belt. *)

(** {2 Demographics} *)

val belts : t -> int
(** Number of belts tracked (regular belts plus LOS when configured). *)

val age_histogram : t -> belt:int -> Beltway_util.Histogram.t
(** Age-at-copy distribution for objects copied {e out of} [belt],
    bucketed at {!age_bucket_words}. *)

val promotions : t -> int array array
(** Copy of the promotion matrix: [(promotions t).(src).(dst)] is the
    number of objects copied from belt [src] to belt [dst]. *)

val pretenure_site : t -> int -> bool
(** Deterministic pretenuring hint: the site has allocated at least 32
    objects and at least half of them reached the top belt. *)

val pretenure_sites : t -> int list
(** All hinted sites, ascending by id. *)

(** {2 Time series} *)

val collections : t -> int
val samples : t -> sample array

(** {2 Export} *)

val schema : string
(** ["beltway-profile/1"]. *)

val run_json : ?name:string -> t -> Beltway_util.Json.t
(** One run object (sites, belts, promotion matrix, series). *)

val runs_json : Beltway_util.Json.t list -> Beltway_util.Json.t
(** Wrap run objects in the versioned envelope. *)

val write_file : string -> Beltway_util.Json.t list -> unit
(** [write_file file runs] writes the envelope as pretty JSON. *)

val report : ?top:int -> Format.formatter -> t -> unit
(** Deterministic text report: top-[top] sites by allocated words with
    survival and top-belt percentages, plus pretenuring hints. *)

val env_file : unit -> string option
(** [BELTWAY_PROFILE] output path, if set and non-empty. *)
