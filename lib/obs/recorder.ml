module State = Beltway.State
module Gc_stats = Beltway.Gc_stats
module Vec = Beltway_util.Vec

type event =
  | Collection of {
      n : int;
      reason : Gc_stats.reason;
      emergency : bool;
      full_heap : bool;
      start_us : float;
      dur_us : float;
      clock_words : int;
      copied_words : int;
      freed_frames : int;
      frames_after : int;
      reserve_frames : int;
    }
  | Phase of {
      n : int;
      phase : Gc_stats.gc_phase;
      start_us : float;
      dur_us : float;
    }
  | Frame_grant of { t_us : float; frame : int; belt : int; during_gc : bool }
  | Frame_free of { t_us : float; frame : int; belt : int }
  | Belt_advance of { t_us : float; belt : int; inc_id : int; stamp : int }
  | Reserve of { t_us : float; frames : int }
  | Trigger_fired of { t_us : float; reason : Gc_stats.reason }
  | Gc_domain of {
      n : int;
      domain : int;
      phases : (Gc_stats.gc_phase * float * float) array;
      copied_objects : int;
      copied_words : int;
      scanned_slots : int;
      steals : int;
      cas_retries : int;
    }

let default_capacity = 1 lsl 16

type t = {
  gc : Beltway.Gc.t;
  ring : event Ring.t;
  metrics : Metrics.t;
  t0 : float; (* wall clock at attach, seconds *)
  pause_starts_us : float Vec.t;
  pause_durs_us : float Vec.t;
  mutable open_collection : float; (* start_us; < 0 when none *)
  mutable open_phase : Gc_stats.gc_phase option;
  mutable open_phase_start : float;
  mutable last_pause_end_us : float; (* < 0 before the first pause *)
  mutable hooks : State.hooks option;
  mutable saved_clock : (unit -> float) option;
      (* heap clock in force before attach, restored on detach *)
}

let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6

(* Histogram bucket widths, chosen for the magnitudes this simulation
   produces (microsecond-scale pauses, kilobyte-scale copies). *)
let pause_ns_width = 1_000.0
let interval_ns_width = 100_000.0
let copied_bytes_width = 4_096.0
let remset_slots_width = 16.0
let frames_width = 1.0

let record_collection_end t ~full_heap =
  let st = Beltway.Gc.state t.gc in
  let stats = st.State.stats in
  let n = Gc_stats.gcs stats in
  if n > 0 && t.open_collection >= 0.0 then begin
    let c = Vec.get stats.Gc_stats.collections (n - 1) in
    let start_us = t.open_collection in
    let end_us = now_us t in
    let dur_us = Float.max 0.0 (end_us -. start_us) in
    t.open_collection <- -1.0;
    Ring.push t.ring
      (Collection
         {
           n = c.Gc_stats.n;
           reason = c.Gc_stats.reason;
           emergency = c.Gc_stats.emergency;
           full_heap;
           start_us;
           dur_us;
           clock_words = c.Gc_stats.clock_words;
           copied_words = c.Gc_stats.copied_words;
           freed_frames = c.Gc_stats.freed_frames;
           frames_after = c.Gc_stats.heap_frames_after;
           reserve_frames = c.Gc_stats.reserve_frames;
         });
    Vec.push t.pause_starts_us start_us;
    Vec.push t.pause_durs_us dur_us;
    let m = t.metrics in
    Metrics.incr m "gc.collections";
    if full_heap then Metrics.incr m "gc.full_heap";
    if c.Gc_stats.emergency then Metrics.incr m "gc.emergency";
    Metrics.observe m ~bucket_width:pause_ns_width "gc.pause_ns" (dur_us *. 1e3);
    if t.last_pause_end_us >= 0.0 then
      Metrics.observe m ~bucket_width:interval_ns_width "gc.pause_interval_ns"
        ((start_us -. t.last_pause_end_us) *. 1e3);
    t.last_pause_end_us <- end_us;
    Metrics.observe m ~bucket_width:copied_bytes_width "gc.copied_bytes"
      (float_of_int (c.Gc_stats.copied_words * Addr.bytes_per_word));
    (* In-place strategy volumes. Guarded on nonzero so a copying run
       never creates these tracks and its metric dump stays
       byte-identical to the pre-strategy recorder. *)
    if c.Gc_stats.marked_words > 0 then
      Metrics.observe m ~bucket_width:copied_bytes_width "gc.marked_bytes"
        (float_of_int (c.Gc_stats.marked_words * Addr.bytes_per_word));
    if c.Gc_stats.swept_words > 0 then
      Metrics.observe m ~bucket_width:copied_bytes_width "gc.swept_bytes"
        (float_of_int (c.Gc_stats.swept_words * Addr.bytes_per_word));
    if c.Gc_stats.moved_words > 0 then
      Metrics.observe m ~bucket_width:copied_bytes_width "gc.moved_bytes"
        (float_of_int (c.Gc_stats.moved_words * Addr.bytes_per_word));
    Metrics.observe m ~bucket_width:remset_slots_width "gc.remset_slots"
      (float_of_int c.Gc_stats.remset_slots);
    Metrics.set_gauge m "heap.frames_used" (float_of_int st.State.frames_used);
    Metrics.set_gauge m "remset.entries"
      (float_of_int (Beltway.Remset.total_entries st.State.remsets));
    (* Occupancy telemetry: per-belt (named tracks) and per-increment
       (one pooled distribution). *)
    Array.iter
      (fun belt ->
        let bi = Beltway.Belt.index belt in
        let occ = float_of_int (Beltway.Belt.occupancy_frames belt) in
        Metrics.set_gauge m (Printf.sprintf "belt.%d.frames" bi) occ;
        Metrics.observe m ~bucket_width:frames_width
          (Printf.sprintf "belt.%d.occupancy_frames" bi)
          occ)
      st.State.belts;
    List.iter
      (fun (inc : Beltway.Increment.t) ->
        Metrics.observe m ~bucket_width:frames_width "increment.occupancy_frames"
          (float_of_int (Beltway.Increment.occupancy_frames inc)))
      (State.live_increments st)
  end

let attach ?(capacity = default_capacity) gc =
  let t =
    {
      gc;
      ring = Ring.create ~capacity ~dummy:(Reserve { t_us = 0.0; frames = 0 });
      metrics = Metrics.create ();
      t0 = Unix.gettimeofday ();
      pause_starts_us = Vec.create ~dummy:0.0 ();
      pause_durs_us = Vec.create ~dummy:0.0 ();
      open_collection = -1.0;
      open_phase = None;
      open_phase_start = 0.0;
      last_pause_end_us = -1.0;
      hooks = None;
      saved_clock = None;
    }
  in
  let st = Beltway.Gc.state gc in
  (* The parallel collector stamps per-domain phase windows with the
     heap's clock; point it at the recorder's timebase so those
     windows land on the same axis as every other event. *)
  t.saved_clock <- Some st.State.clock_us;
  st.State.clock_us <- (fun () -> now_us t);
  (* Phases fire inside a collection, before its record is pushed, so
     the in-flight collection's ordinal is one past the completed
     count. *)
  let gc_ordinal () = Gc_stats.gcs st.State.stats + 1 in
  let hooks =
    {
      State.noop_hooks with
      State.on_collect_start =
        (fun ~reason:_ ~emergency:_ -> t.open_collection <- now_us t);
      on_collect_end = (fun ~full_heap -> record_collection_end t ~full_heap);
      on_gc_phase =
        (fun ~phase ~enter ->
          if enter then begin
            t.open_phase <- Some phase;
            t.open_phase_start <- now_us t
          end
          else begin
            (match t.open_phase with
            | Some p when p = phase ->
              Ring.push t.ring
                (Phase
                   {
                     n = gc_ordinal ();
                     phase;
                     start_us = t.open_phase_start;
                     dur_us = Float.max 0.0 (now_us t -. t.open_phase_start);
                   })
            | _ -> ());
            t.open_phase <- None
          end);
      on_frame_grant =
        (fun ~frame ~belt ~during_gc ->
          Metrics.incr t.metrics "frames.granted";
          Ring.push t.ring (Frame_grant { t_us = now_us t; frame; belt; during_gc }));
      on_frame_free =
        (fun ~frame ~belt ->
          Metrics.incr t.metrics "frames.freed";
          Ring.push t.ring (Frame_free { t_us = now_us t; frame; belt }));
      on_belt_advance =
        (fun ~belt ~inc_id ~stamp ->
          Metrics.incr t.metrics "belt.advances";
          Ring.push t.ring (Belt_advance { t_us = now_us t; belt; inc_id; stamp }));
      on_reserve =
        (fun ~frames ->
          Metrics.set_gauge t.metrics "reserve.frames" (float_of_int frames);
          Ring.push t.ring (Reserve { t_us = now_us t; frames }));
      on_trigger =
        (fun ~reason ->
          Metrics.incr t.metrics ("trigger." ^ Gc_stats.reason_to_string reason);
          Ring.push t.ring (Trigger_fired { t_us = now_us t; reason }));
      on_barrier_slow =
        (fun ~entries ->
          Metrics.incr t.metrics "barrier.slow";
          Metrics.set_gauge t.metrics "remset.entries" (float_of_int entries));
      on_gc_domains =
        (fun ~reports ->
          (* Fired after the collection's record is pushed, so the
             completed count is this collection's ordinal. *)
          let n = Gc_stats.gcs st.State.stats in
          Metrics.set_gauge t.metrics "gc.domains"
            (float_of_int (Array.length reports));
          Array.iter
            (fun (r : State.par_report) ->
              Ring.push t.ring
                (Gc_domain
                   {
                     n;
                     domain = r.State.pr_domain;
                     phases = r.State.pr_phases;
                     copied_objects = r.State.pr_copied_objects;
                     copied_words = r.State.pr_copied_words;
                     scanned_slots = r.State.pr_scanned_slots;
                     steals = r.State.pr_steals;
                     cas_retries = r.State.pr_cas_retries;
                   });
              Metrics.incr ~by:r.State.pr_steals t.metrics "gc.par.steals";
              Metrics.incr ~by:r.State.pr_cas_retries t.metrics
                "gc.par.cas_retries";
              Metrics.observe t.metrics ~bucket_width:copied_bytes_width
                (Printf.sprintf "gc.domain.%d.copied_bytes" r.State.pr_domain)
                (float_of_int (r.State.pr_copied_words * Addr.bytes_per_word)))
            reports);
    }
  in
  State.add_hooks st hooks;
  t.hooks <- Some hooks;
  t

let detach t =
  match t.hooks with
  | None -> ()
  | Some h ->
    let st = Beltway.Gc.state t.gc in
    State.remove_hooks st h;
    (match t.saved_clock with
    | Some c ->
      st.State.clock_us <- c;
      t.saved_clock <- None
    | None -> ());
    t.hooks <- None

let domain_copied_bytes t =
  (* Per-domain copy histograms merged into one distribution; domains
     are dense from 0, so walk until the first absent name. *)
  let rec go d acc =
    match
      Metrics.histogram t.metrics (Printf.sprintf "gc.domain.%d.copied_bytes" d)
    with
    | None -> acc
    | Some h ->
      go (d + 1)
        (match acc with
        | None -> Some h
        | Some m -> Some (Beltway_util.Histogram.merge m h))
  in
  go 0 None

let gc t = t.gc
let metrics t = t.metrics
let events t = Ring.to_list t.ring
let iter_events t f = Ring.iter t.ring f
let event_count t = Ring.length t.ring
let dropped t = Ring.dropped t.ring
let collections t = Vec.length t.pause_durs_us
let pause_starts_us t = Vec.to_array t.pause_starts_us
let pause_durs_us t = Vec.to_array t.pause_durs_us

let env_file () =
  match Sys.getenv_opt "BELTWAY_TRACE" with
  | Some "" | None -> None
  | Some f -> Some f
