(* Object-demographics profiler: allocation-site telemetry, per-belt
   age-at-copy curves, a belt×belt promotion matrix and an
   occupancy/pause time series, layered entirely on [State.hooks] like
   the recorder and the sanitizer — detached, the collector pays one
   empty-list match per dispatch site and nothing else.

   Objects are tracked in a side table keyed by (frame, in-frame word
   offset), exactly the granularity [Frame_table] uses for stamps:
   [on_alloc] inserts a slot carrying the allocation site (read from
   the [State.alloc_site] channel an instrumented mutator stamped just
   before allocating), the birth allocation clock and the object size;
   [on_move] re-keys the slot to its destination and charges the copy
   to the site, the source belt's age histogram and the promotion
   matrix; [on_frame_free] declares every slot still keyed to the
   freed frame dead. Ages are measured on the allocation clock
   ([Gc_stats.words_allocated]), which does not advance during a
   collection — so the profiler's arithmetic is reproducible and can
   be compared exactly against the Shadow heap's lifetime oracle. *)

module State = Beltway.State
module Gc_stats = Beltway.Gc_stats
module Vec = Beltway_util.Vec
module Histogram = Beltway_util.Histogram
module Json = Beltway_util.Json

(* Age-at-copy histogram bucket width, in allocation-clock words.
   Shared with the differential test, which rebuilds histograms from
   the oracle's exact ages and demands bucket-for-bucket equality. *)
let age_bucket_words = 256.0

type slot = { sl_site : int; sl_birth : int; sl_words : int }

type sample = {
  s_gc : int;
  s_clock_words : int;
  s_frames_used : int;
  s_reserve_frames : int;
  s_remset_entries : int;
  s_copied_words : int;
  s_pause_us : float;
  s_belt_frames : int array;
}

type t = {
  gc : Beltway.Gc.t;
  mutable frames : (int, slot) Hashtbl.t option array;
      (* frame index -> live slots keyed by in-frame word offset;
         grown on demand, tables recycled on frame free *)
  (* Per-site accumulators, indexed by site id and grown on demand
     (site ids are dense, interned by [State.register_site]). *)
  mutable alloc_objects : int array;
  mutable alloc_words : int array;
  mutable copied_objects : int array;
  mutable copied_words : int array;
  mutable dead_objects : int array;
  mutable dead_words : int array;
  mutable top_belt_objects : int array;
      (* per site: copies whose destination is the top regular belt
         coming from below it — "reached the oldest belt" events *)
  age_hists : Histogram.t array; (* per source belt, age at copy *)
  promotions : int array array; (* [src belt].(dst belt) object copies *)
  series : sample Vec.t;
  mutable open_pause_start : float; (* seconds; < 0 when none *)
  mutable attach_clock : int; (* allocation clock at attach *)
  mutable hooks : State.hooks option;
}

let site_capacity t = Array.length t.alloc_objects

let grow a n =
  let b = Array.make n 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_site t s =
  let n = site_capacity t in
  if s >= n then begin
    let n' = max (s + 1) (max 8 (2 * n)) in
    t.alloc_objects <- grow t.alloc_objects n';
    t.alloc_words <- grow t.alloc_words n';
    t.copied_objects <- grow t.copied_objects n';
    t.copied_words <- grow t.copied_words n';
    t.dead_objects <- grow t.dead_objects n';
    t.dead_words <- grow t.dead_words n';
    t.top_belt_objects <- grow t.top_belt_objects n'
  end

let bucket t frame =
  let n = Array.length t.frames in
  if frame >= n then begin
    let a = Array.make (max (frame + 1) (2 * n)) None in
    Array.blit t.frames 0 a 0 n;
    t.frames <- a
  end;
  match t.frames.(frame) with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    t.frames.(frame) <- Some tbl;
    tbl

let belt_of_frame st frame =
  match State.inc_of_frame st frame with
  | Some inc -> inc.Beltway.Increment.belt
  | None -> -1

let record_alloc t ~addr ~nfields =
  let st = Beltway.Gc.state t.gc in
  let site = st.State.alloc_site in
  ensure_site t site;
  let words = Object_model.size_words ~nfields in
  t.alloc_objects.(site) <- t.alloc_objects.(site) + 1;
  t.alloc_words.(site) <- t.alloc_words.(site) + words;
  let mem = st.State.mem in
  (* on_alloc fires after the clock is bumped, so birth includes the
     object's own size — mirrored exactly by the Shadow oracle. *)
  Hashtbl.replace
    (bucket t (Memory.addr_frame mem addr))
    (Memory.addr_offset mem addr)
    { sl_site = site; sl_birth = st.State.stats.Gc_stats.words_allocated; sl_words = words }

let record_move t ~src ~dst =
  let st = Beltway.Gc.state t.gc in
  let mem = st.State.mem in
  let sframe = Memory.addr_frame mem src in
  let stbl = bucket t sframe in
  let soff = Memory.addr_offset mem src in
  match Hashtbl.find_opt stbl soff with
  | None -> () (* allocated before attach; untracked *)
  | Some sl ->
    Hashtbl.remove stbl soff;
    Hashtbl.replace
      (bucket t (Memory.addr_frame mem dst))
      (Memory.addr_offset mem dst)
      sl;
    ensure_site t sl.sl_site;
    t.copied_objects.(sl.sl_site) <- t.copied_objects.(sl.sl_site) + 1;
    t.copied_words.(sl.sl_site) <- t.copied_words.(sl.sl_site) + sl.sl_words;
    let src_belt = belt_of_frame st sframe in
    let dst_belt = belt_of_frame st (Memory.addr_frame mem dst) in
    let age = st.State.stats.Gc_stats.words_allocated - sl.sl_birth in
    if src_belt >= 0 then
      Histogram.add t.age_hists.(src_belt) (float_of_int age);
    if src_belt >= 0 && dst_belt >= 0 then begin
      t.promotions.(src_belt).(dst_belt) <-
        t.promotions.(src_belt).(dst_belt) + 1;
      let top = State.regular_belts st - 1 in
      if dst_belt = top && src_belt <> top then
        t.top_belt_objects.(sl.sl_site) <- t.top_belt_objects.(sl.sl_site) + 1
    end

let record_frame_free t ~frame =
  if frame < Array.length t.frames then
    match t.frames.(frame) with
    | None -> ()
    | Some tbl ->
      Hashtbl.iter
        (fun _ sl ->
          ensure_site t sl.sl_site;
          t.dead_objects.(sl.sl_site) <- t.dead_objects.(sl.sl_site) + 1;
          t.dead_words.(sl.sl_site) <- t.dead_words.(sl.sl_site) + sl.sl_words)
        tbl;
      Hashtbl.reset tbl (* keep the table: frames are recycled *)

(* An in-place strategy reclaimed one object without freeing its
   frame (swept into a free list, or slid over by the compactor):
   charge the site's death accumulators directly. Freed-frame deaths
   keep going through [record_frame_free] — the collector fires
   exactly one of the two per dead object, never both. *)
let record_object_dead t ~addr =
  let st = Beltway.Gc.state t.gc in
  let mem = st.State.mem in
  let tbl = bucket t (Memory.addr_frame mem addr) in
  let off = Memory.addr_offset mem addr in
  match Hashtbl.find_opt tbl off with
  | None -> () (* allocated before attach; untracked *)
  | Some sl ->
    Hashtbl.remove tbl off;
    ensure_site t sl.sl_site;
    t.dead_objects.(sl.sl_site) <- t.dead_objects.(sl.sl_site) + 1;
    t.dead_words.(sl.sl_site) <- t.dead_words.(sl.sl_site) + sl.sl_words

let record_collect_end t ~pause_us =
  let st = Beltway.Gc.state t.gc in
  let stats = st.State.stats in
  match Gc_stats.last stats with
  | None -> ()
  | Some c ->
    Vec.push t.series
      {
        s_gc = c.Gc_stats.n;
        s_clock_words = c.Gc_stats.clock_words;
        s_frames_used = st.State.frames_used;
        s_reserve_frames = c.Gc_stats.reserve_frames;
        s_remset_entries = Beltway.Remset.total_entries st.State.remsets;
        s_copied_words = c.Gc_stats.copied_words;
        s_pause_us = pause_us;
        s_belt_frames =
          Array.map (fun b -> Beltway.Belt.occupancy_frames b) st.State.belts;
      }

let attach gc =
  let st = Beltway.Gc.state gc in
  let nbelts = Array.length st.State.belts in
  let t =
    {
      gc;
      frames = Array.make (max 16 (Memory.max_frames st.State.mem)) None;
      alloc_objects = Array.make 8 0;
      alloc_words = Array.make 8 0;
      copied_objects = Array.make 8 0;
      copied_words = Array.make 8 0;
      dead_objects = Array.make 8 0;
      dead_words = Array.make 8 0;
      top_belt_objects = Array.make 8 0;
      age_hists =
        Array.init nbelts (fun _ ->
            Histogram.create ~bucket_width:age_bucket_words ());
      promotions = Array.init nbelts (fun _ -> Array.make nbelts 0);
      series = Vec.create ~dummy:{
        s_gc = 0; s_clock_words = 0; s_frames_used = 0; s_reserve_frames = 0;
        s_remset_entries = 0; s_copied_words = 0; s_pause_us = 0.0;
        s_belt_frames = [||];
      } ();
      open_pause_start = -1.0;
      attach_clock = st.State.stats.Gc_stats.words_allocated;
      hooks = None;
    }
  in
  let hooks =
    {
      State.noop_hooks with
      State.on_alloc = (fun ~addr ~tib:_ ~nfields -> record_alloc t ~addr ~nfields);
      on_move = (fun ~src ~dst -> record_move t ~src ~dst);
      on_frame_free = (fun ~frame ~belt:_ -> record_frame_free t ~frame);
      on_object_dead = (fun ~addr ~words:_ -> record_object_dead t ~addr);
      on_collect_start =
        (fun ~reason:_ ~emergency:_ -> t.open_pause_start <- Unix.gettimeofday ());
      on_collect_end =
        (fun ~full_heap:_ ->
          let pause_us =
            if t.open_pause_start < 0.0 then 0.0
            else Float.max 0.0 ((Unix.gettimeofday () -. t.open_pause_start) *. 1e6)
          in
          t.open_pause_start <- -1.0;
          record_collect_end t ~pause_us);
    }
  in
  State.add_hooks st hooks;
  t.hooks <- Some hooks;
  t

let detach t =
  match t.hooks with
  | None -> ()
  | Some h ->
    State.remove_hooks (Beltway.Gc.state t.gc) h;
    t.hooks <- None

let gc t = t.gc

let get a i = if i < Array.length a then a.(i) else 0
let site_alloc_objects t s = get t.alloc_objects s
let site_alloc_words t s = get t.alloc_words s
let site_copied_objects t s = get t.copied_objects s
let site_copied_words t s = get t.copied_words s
let site_dead_objects t s = get t.dead_objects s
let site_dead_words t s = get t.dead_words s
let site_top_belt_objects t s = get t.top_belt_objects s
let age_histogram t ~belt = t.age_hists.(belt)
let belts t = Array.length t.age_hists
let promotions t = Array.map Array.copy t.promotions
let collections t = Vec.length t.series
let samples t = Vec.to_array t.series

(* Pretenuring hint: a site qualifies when it has allocated enough to
   matter and at least half its objects were eventually copied into
   the top (oldest regular) belt — the §5 static-segregation signal. *)
let pretenure_min_objects = 32

let pretenure_site t s =
  let allocs = site_alloc_objects t s in
  allocs >= pretenure_min_objects && 2 * site_top_belt_objects t s >= allocs

let pretenure_sites t =
  let n = Beltway.Gc.site_count t.gc in
  let acc = ref [] in
  for s = n - 1 downto 0 do
    if pretenure_site t s then acc := s :: !acc
  done;
  !acc

(* ---- export -------------------------------------------------------- *)

let schema = "beltway-profile/1"

let histogram_json h =
  Json.Obj
    [
      ("bucket_words", Json.Num age_bucket_words);
      ("count", Json.Num (float_of_int (Histogram.count h)));
      ("max_age", Json.Num (Histogram.max_value h));
      ( "buckets",
        Json.Arr
          (List.map
             (fun (lower, count) ->
               Json.Arr [ Json.Num lower; Json.Num (float_of_int count) ])
             (Histogram.buckets h)) );
    ]

let site_json t s =
  Json.Obj
    [
      ("id", Json.Num (float_of_int s));
      ("site", Json.Str (Beltway.Gc.site_name t.gc s));
      ("alloc_objects", Json.Num (float_of_int (site_alloc_objects t s)));
      ("alloc_words", Json.Num (float_of_int (site_alloc_words t s)));
      ("copied_objects", Json.Num (float_of_int (site_copied_objects t s)));
      ("copied_words", Json.Num (float_of_int (site_copied_words t s)));
      ("dead_objects", Json.Num (float_of_int (site_dead_objects t s)));
      ("dead_words", Json.Num (float_of_int (site_dead_words t s)));
      ("top_belt_objects", Json.Num (float_of_int (site_top_belt_objects t s)));
      ("pretenure", Json.Bool (pretenure_site t s));
    ]

let sample_json s =
  Json.Obj
    [
      ("gc", Json.Num (float_of_int s.s_gc));
      ("clock_words", Json.Num (float_of_int s.s_clock_words));
      ("frames_used", Json.Num (float_of_int s.s_frames_used));
      ("reserve_frames", Json.Num (float_of_int s.s_reserve_frames));
      ("remset_entries", Json.Num (float_of_int s.s_remset_entries));
      ("copied_words", Json.Num (float_of_int s.s_copied_words));
      ("pause_us", Json.Num s.s_pause_us);
      ( "belt_frames",
        Json.Arr
          (Array.to_list
             (Array.map (fun f -> Json.Num (float_of_int f)) s.s_belt_frames)) );
    ]

let run_json ?(name = "run") t =
  let st = Beltway.Gc.state t.gc in
  let nsites = Beltway.Gc.site_count t.gc in
  let sites = ref [] in
  for s = nsites - 1 downto 0 do
    if site_alloc_objects t s > 0 then sites := site_json t s :: !sites
  done;
  Json.Obj
    [
      ("name", Json.Str name);
      ("config", Json.Str st.State.config.Beltway.Config.label);
      ("policy", Json.Str st.State.policy.State.policy_name);
      ("collections", Json.Num (float_of_int (collections t)));
      ("sites", Json.Arr !sites);
      ( "belts",
        Json.Arr
          (Array.to_list
             (Array.mapi
                (fun b h ->
                  Json.Obj
                    [
                      ("belt", Json.Num (float_of_int b));
                      ("age_histogram", histogram_json h);
                    ])
                t.age_hists)) );
      ( "promotions",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun row ->
                  Json.Arr
                    (Array.to_list
                       (Array.map (fun n -> Json.Num (float_of_int n)) row)))
                t.promotions)) );
      ("series", Json.Arr (Vec.fold (fun acc s -> sample_json s :: acc) [] t.series |> List.rev));
    ]

let runs_json runs = Json.Obj [ ("schema", Json.Str schema); ("runs", Json.Arr runs) ]
let write_file file runs = Chrome_trace.write_file file (runs_json runs)

(* Text report: the top-N sites by allocated words, with survival and
   pretenuring columns. Deterministic — counts only, no wall clock. *)
let report ?(top = 10) fmt t =
  let nsites = Beltway.Gc.site_count t.gc in
  let ids = ref [] in
  for s = nsites - 1 downto 0 do
    if site_alloc_objects t s > 0 then ids := s :: !ids
  done;
  let ids =
    List.sort
      (fun a b ->
        match compare (site_alloc_words t b) (site_alloc_words t a) with
        | 0 -> compare a b
        | c -> c)
      !ids
  in
  let shown = List.filteri (fun i _ -> i < top) ids in
  Format.fprintf fmt "@[<v>profile: %d sites, %d collections@,"
    (List.length ids) (collections t);
  Format.fprintf fmt "%-40s %10s %10s %10s %8s %8s@," "site" "allocs"
    "words" "copied" "surv%" "top%";
  List.iter
    (fun s ->
      let allocs = site_alloc_objects t s in
      let pct n = if allocs = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int allocs in
      Format.fprintf fmt "%-40s %10d %10d %10d %7.1f%% %7.1f%%@,"
        (Beltway.Gc.site_name t.gc s)
        allocs (site_alloc_words t s) (site_copied_objects t s)
        (pct (site_copied_objects t s))
        (pct (site_top_belt_objects t s)))
    shown;
  (match pretenure_sites t with
  | [] -> Format.fprintf fmt "pretenure hints: none"
  | sites ->
    Format.fprintf fmt "pretenure hints: %s"
      (String.concat ", " (List.map (Beltway.Gc.site_name t.gc) sites)));
  Format.fprintf fmt "@]"

let env_file () =
  match Sys.getenv_opt "BELTWAY_PROFILE" with
  | Some "" | None -> None
  | Some f -> Some f
