(** Chrome [trace_event] export of a flight-recorder run.

    Produces the JSON object format ([{"traceEvents": [...]}]) loadable
    in [chrome://tracing] and Perfetto. One track ("thread") per belt
    plus a mutator track: collection pauses and their phase spans are
    complete ("X") events on the mutator track, frame grants/frees and
    belt advances are instants on their belt's track, and the copy
    reserve is a counter series. Timestamps are the recorder's
    microseconds-since-attach, which is exactly what [ts]/[dur]
    expect. *)

val events_json :
  ?pid:int -> ?process_name:string -> Recorder.t -> Beltway_util.Json.t list
(** The flat event list (metadata events first), for embedding in a
    merged multi-process trace. *)

val to_json : ?pid:int -> ?process_name:string -> Recorder.t -> Beltway_util.Json.t
(** One recorder as a complete trace document. *)

val merge : (string * Recorder.t) list -> Beltway_util.Json.t
(** Several recorders as one trace document, each as its own process
    (labelled by the given name) — the bench harness's six-benchmark
    sweep view. *)

val write_file : string -> Beltway_util.Json.t -> unit
(** Pretty-print a JSON document to a file. *)
