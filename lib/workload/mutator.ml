module Prng = Beltway_util.Prng
module Vec = Beltway_util.Vec
module Pqueue = Beltway_util.Pqueue

type handle = { slot : Roots.global; mutable live : bool }

type t = {
  gc : Beltway.Gc.t;
  prng : Prng.t;
  free_slots : Roots.global Vec.t;
  deaths : handle Pqueue.t;
  dummy_global : Roots.global;
  mutable site_of_ty : int array;
      (* type id -> interned allocation-site id, -1 until first use;
         synthetic workloads allocate by type, so the type name is the
         natural site label for the demographics profiler *)
}

let create ?(seed = 0x5EED) gc =
  let roots = Beltway.Gc.roots gc in
  let dummy_global = Roots.new_global roots Value.null in
  {
    gc;
    prng = Prng.create ~seed;
    free_slots = Vec.create ~dummy:dummy_global ();
    deaths = Pqueue.create ~dummy:{ slot = dummy_global; live = false } ();
    dummy_global;
    site_of_ty = Array.make 16 (-1);
  }

(* Stamp the allocation-site channel with this type's site (interned
   lazily: site registration never touches the simulated heap). *)
let stamp_site t ~ty =
  let n = Array.length t.site_of_ty in
  if ty >= n then begin
    let a = Array.make (max (ty + 1) (2 * n)) (-1) in
    Array.blit t.site_of_ty 0 a 0 n;
    t.site_of_ty <- a
  end;
  let site =
    match t.site_of_ty.(ty) with
    | -1 ->
      let site =
        Beltway.Gc.register_site t.gc ~name:(Beltway.Gc.type_name t.gc ty)
      in
      t.site_of_ty.(ty) <- site;
      site
    | site -> site
  in
  Beltway.Gc.set_alloc_site t.gc site

let gc t = t.gc
let rng t = t.prng
let now t = Beltway.Gc.words_allocated t.gc

let fresh_slot t v =
  let roots = Beltway.Gc.roots t.gc in
  if Vec.is_empty t.free_slots then Roots.new_global roots v
  else begin
    let slot = Vec.pop t.free_slots in
    Roots.set_global roots slot v;
    slot
  end

let retain t addr =
  { slot = fresh_slot t (Value.of_addr addr); live = true }

let get t h =
  if not h.live then invalid_arg "Mutator.get: dropped handle";
  let v = Roots.get_global (Beltway.Gc.roots t.gc) h.slot in
  Value.to_addr v

let is_live _ h = h.live

let drop t h =
  if h.live then begin
    h.live <- false;
    Roots.set_global (Beltway.Gc.roots t.gc) h.slot Value.null;
    Vec.push t.free_slots h.slot
  end

let live_handles t =
  Roots.global_count (Beltway.Gc.roots t.gc) - Vec.length t.free_slots - 1

let alloc t ~ty ~nfields =
  stamp_site t ~ty;
  let addr = Beltway.Gc.alloc t.gc ~ty ~nfields in
  retain t addr

let schedule_drop t h ~dies_in =
  Pqueue.add t.deaths ~prio:(now t + dies_in) h

let alloc_dying t ~ty ~nfields ~dies_in =
  let h = alloc t ~ty ~nfields in
  schedule_drop t h ~dies_in;
  h

let alloc_temp t ~ty ~nfields =
  stamp_site t ~ty;
  ignore (Beltway.Gc.alloc t.gc ~ty ~nfields)

let link t ~from ~field ~to_ =
  let target = Value.of_addr (get t to_) in
  Beltway.Gc.write t.gc (get t from) field target

let unlink t ~from ~field = Beltway.Gc.write t.gc (get t from) field Value.null
let link_value t ~from ~field v = Beltway.Gc.write t.gc (get t from) field v
let read_field t h i = Beltway.Gc.read t.gc (get t h) i
let set_int t h i n = Beltway.Gc.write t.gc (get t h) i (Value.of_int n)

let alloc_into t ~parent ~field ~ty ~nfields =
  (* The allocation may collect and move the parent; its handle is
     re-read afterwards, and the fresh address is valid because nothing
     allocates in between. *)
  stamp_site t ~ty;
  let addr = Beltway.Gc.alloc t.gc ~ty ~nfields in
  Beltway.Gc.write t.gc (get t parent) field (Value.of_addr addr)

let child t h i =
  let v = read_field t h i in
  if Value.is_ref v then Some (retain t (Value.to_addr v)) else None

let tick t =
  let rec go () =
    match Pqueue.pop_le t.deaths (now t) with
    | None -> ()
    | Some (_, h) ->
      drop t h;
      go ()
  in
  go ()

let drain t =
  let rec go () =
    match Pqueue.pop_min t.deaths with
    | None -> ()
    | Some (_, h) ->
      drop t h;
      go ()
  in
  go ()
