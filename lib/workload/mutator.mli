(** The mutation engine shared by the synthetic benchmarks.

    A mutator drives a [Beltway.Gc] heap the way a program would:
    it allocates objects, links them into structures through the write
    barrier, holds some via {e handles} (GC-safe global root slots) and
    drops them on a {e death schedule} measured on the allocation clock
    (bytes allocated — the standard GC-literature notion of time).

    Address discipline: raw addresses are never held across an
    allocation; everything flows through handles or the shadow stack,
    so the engine is safe under any collector configuration. *)

type t

type handle
(** A GC-safe reference to a live object (backed by a global root
    slot). Handles are recycled after {!drop}. *)

val create : ?seed:int -> Beltway.Gc.t -> t
val gc : t -> Beltway.Gc.t
val rng : t -> Beltway_util.Prng.t

val now : t -> int
(** Allocation clock in words. *)

(** {2 Handles} *)

val retain : t -> Addr.t -> handle
(** Root the object at [addr] (valid now) in a fresh handle. *)

val get : t -> handle -> Addr.t
(** Current address of the handle's object.
    @raise Invalid_argument if the handle was dropped. *)

val is_live : t -> handle -> bool

val drop : t -> handle -> unit
(** Unroot; the object becomes garbage unless referenced elsewhere. *)

val live_handles : t -> int

(** {2 Allocation}

    Every allocation stamps the heap's allocation-site channel
    ({!Beltway.Gc.set_alloc_site}) with a site interned from the
    object's registered type name, so an attached demographics
    profiler attributes synthetic-workload objects per type. *)

val alloc : t -> ty:Type_registry.id -> nfields:int -> handle
(** Allocate and immediately root. *)

val alloc_dying : t -> ty:Type_registry.id -> nfields:int -> dies_in:int -> handle
(** Allocate, root, and schedule {!drop} after [dies_in] more words of
    allocation (serviced by {!tick}). *)

val alloc_temp : t -> ty:Type_registry.id -> nfields:int -> unit
(** Allocate an object and leave it unrooted — instant garbage (pure
    allocation-rate pressure). *)

(** {2 Structure building} *)

val link : t -> from:handle -> field:int -> to_:handle -> unit
(** [from.field <- to_] through the write barrier. *)

val unlink : t -> from:handle -> field:int -> unit
(** [from.field <- null]. *)

val link_value : t -> from:handle -> field:int -> Value.t -> unit

val read_field : t -> handle -> int -> Value.t

val set_int : t -> handle -> int -> int -> unit
(** Store an immediate integer field. *)

val alloc_into : t -> parent:handle -> field:int -> ty:Type_registry.id -> nfields:int -> unit
(** Allocate an object and store it directly into [parent.field]
    without rooting it separately — the child's liveness rides on the
    parent (interior nodes of trees/lists). *)

val child : t -> handle -> int -> handle option
(** Root the object currently referenced by [handle.field], if any. *)

(** {2 The death schedule} *)

val schedule_drop : t -> handle -> dies_in:int -> unit
(** Drop the handle once the allocation clock advances [dies_in]
    words. *)

val tick : t -> unit
(** Process all deaths due at the current clock. Call between
    allocation bursts. *)

val drain : t -> unit
(** Drop every scheduled handle immediately (end of benchmark). *)
