module Vec = Beltway_util.Vec

type t = { globals : Value.t Vec.t; stack : Value.t Vec.t }
type global = int

let create () =
  { globals = Vec.create ~dummy:Value.null (); stack = Vec.create ~dummy:Value.null () }

let new_global t v =
  let id = Vec.length t.globals in
  Vec.push t.globals v;
  id

let get_global t g = Vec.get t.globals g
let set_global t g v = Vec.set t.globals g v
let global_count t = Vec.length t.globals
let global_of_int i = i

let push t v = Vec.push t.stack v
let pop t = Vec.pop t.stack

let peek t i = Vec.get t.stack (Vec.length t.stack - 1 - i)
let set_peek t i v = Vec.set t.stack (Vec.length t.stack - 1 - i) v
let stack_get t i = Vec.get t.stack i
let stack_set t i v = Vec.set t.stack i v
let mark t = Vec.length t.stack
let release t m = Vec.truncate t.stack m
let depth t = Vec.length t.stack

let iter_update t f =
  let update vec = Vec.iteri (fun i v -> Vec.set vec i (f v)) vec in
  update t.globals;
  update t.stack

(* Strided shard of [iter_update] over the combined (globals ++ stack)
   index space: shard [index] of [stride] updates every slot whose
   combined index is congruent to [index]. Distinct shards touch
   disjoint slots, so the parallel collector runs one shard per domain
   with no synchronisation. *)
let iter_update_shard t ~index ~stride f =
  if index < 0 || stride < 1 || index >= stride then
    invalid_arg "Roots.iter_update_shard";
  let g = Vec.length t.globals in
  let n = g + Vec.length t.stack in
  let k = ref index in
  while !k < n do
    let i = !k in
    if i < g then Vec.set t.globals i (f (Vec.get t.globals i))
    else Vec.set t.stack (i - g) (f (Vec.get t.stack (i - g)));
    k := !k + stride
  done

let iter t f =
  Vec.iter f t.globals;
  Vec.iter f t.stack
