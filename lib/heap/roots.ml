(* Root slots are the hottest data structure in the system: every
   interpreter operand push/pop and every rooted temporary goes
   through the shadow stack. Both slot arrays are therefore
   monomorphic [int array]s ([Value.t = int]) manipulated with
   inline-annotated accessors — a polymorphic vector would compile
   every store to a [caml_modify] call, which measurably dominates the
   bytecode VM's dispatch loop. *)

type t = {
  mutable globals : int array;
  mutable global_count : int;
  mutable stack : int array;
  mutable sp : int; (* depth: slots [0, sp) are live *)
}

type global = int

let create () =
  {
    globals = Array.make 8 Value.null;
    global_count = 0;
    stack = Array.make 64 Value.null;
    sp = 0;
  }

(* Out-of-line growth keeps the push fast path small enough to inline. *)
let grow_stack t =
  let data = Array.make (2 * Array.length t.stack) Value.null in
  Array.blit t.stack 0 data 0 t.sp;
  t.stack <- data

let new_global t v =
  if t.global_count = Array.length t.globals then begin
    let data = Array.make (2 * Array.length t.globals) Value.null in
    Array.blit t.globals 0 data 0 t.global_count;
    t.globals <- data
  end;
  let id = t.global_count in
  t.globals.(id) <- v;
  t.global_count <- id + 1;
  id

let bad_global name g =
  invalid_arg (Printf.sprintf "Roots.%s: bad global slot %d" name g)

let[@inline] get_global t g =
  if g < 0 || g >= t.global_count then bad_global "get_global" g;
  Array.unsafe_get t.globals g

let[@inline] set_global t g v =
  if g < 0 || g >= t.global_count then bad_global "set_global" g;
  Array.unsafe_set t.globals g v

let global_count t = t.global_count
let global_of_int i = i

let[@inline] push t v =
  if t.sp = Array.length t.stack then grow_stack t;
  Array.unsafe_set t.stack t.sp v;
  t.sp <- t.sp + 1

let underflow name = invalid_arg (Printf.sprintf "Roots.%s: stack underflow" name)

let[@inline] pop t =
  if t.sp = 0 then underflow "pop";
  t.sp <- t.sp - 1;
  Array.unsafe_get t.stack t.sp

let stack_oob t name i =
  invalid_arg (Printf.sprintf "Roots.%s: index %d out of bounds [0,%d)" name i t.sp)

let[@inline] peek t i =
  let j = t.sp - 1 - i in
  if j < 0 || j >= t.sp then stack_oob t "peek" j;
  Array.unsafe_get t.stack j

let[@inline] set_peek t i v =
  let j = t.sp - 1 - i in
  if j < 0 || j >= t.sp then stack_oob t "set_peek" j;
  Array.unsafe_set t.stack j v

let[@inline] stack_get t i =
  if i < 0 || i >= t.sp then stack_oob t "stack_get" i;
  Array.unsafe_get t.stack i

let[@inline] stack_set t i v =
  if i < 0 || i >= t.sp then stack_oob t "stack_set" i;
  Array.unsafe_set t.stack i v

let[@inline] mark t = t.sp
let[@inline] release t m = if m < t.sp then t.sp <- m
let[@inline] depth t = t.sp

let iter_update t f =
  for i = 0 to t.global_count - 1 do
    t.globals.(i) <- f t.globals.(i)
  done;
  for i = 0 to t.sp - 1 do
    t.stack.(i) <- f t.stack.(i)
  done

(* Strided shard of [iter_update] over the combined (globals ++ stack)
   index space: shard [index] of [stride] updates every slot whose
   combined index is congruent to [index]. Distinct shards touch
   disjoint slots, so the parallel collector runs one shard per domain
   with no synchronisation. *)
let iter_update_shard t ~index ~stride f =
  if index < 0 || stride < 1 || index >= stride then
    invalid_arg "Roots.iter_update_shard";
  let g = t.global_count in
  let n = g + t.sp in
  let k = ref index in
  while !k < n do
    let i = !k in
    if i < g then t.globals.(i) <- f t.globals.(i)
    else t.stack.(i - g) <- f t.stack.(i - g);
    k := !k + stride
  done

let iter t f =
  for i = 0 to t.global_count - 1 do
    f t.globals.(i)
  done;
  for i = 0 to t.sp - 1 do
    f t.stack.(i)
  done
