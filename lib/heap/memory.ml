module A1 = Bigarray.Array1

type flat = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

type t = {
  frame_log : int;
  frame_words : int;
  max_frames : int;
  mutable flat : flat; (* one flat backing; frame f occupies [f lsl frame_log, (f+1) lsl frame_log) *)
  mutable cap_frames : int; (* frames the backing can hold *)
  mutable liveness : Bytes.t; (* bit per frame; 0 = unmapped/dead *)
  free_list : int Beltway_util.Vec.t; (* recycled frame indices *)
  mutable next_fresh : int; (* next never-used frame index *)
  mutable live : int;
  cas_locks : bool Atomic.t array; (* address-striped spinlocks for cas_word *)
  mutable marks : Bytes.t;
      (* side mark bitmap: one bit per word, indexed by address. Empty
         until a marking strategy calls [ensure_marks]; grown alongside
         the backing so addresses stay valid indices. *)
}

(* Word-access checking (null / dead-frame detection) is on by default:
   it is what lets the test suite catch use-after-free and wild
   pointers. Export BELTWAY_MEMCHECK=0 to strip the checks from the hot
   path entirely (every access compiles to one unchecked load/store). *)
let checks_enabled =
  match Sys.getenv_opt "BELTWAY_MEMCHECK" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let alloc_flat words : flat = A1.create Bigarray.int Bigarray.c_layout words

(* Stripe count for {!cas_word}: enough that two domains forwarding
   distinct objects rarely share a lock, small enough to sit in
   cache. Live stripes are spaced [cas_stride] slots apart so the
   boxed atomics (allocated consecutively) land on distinct cache
   lines instead of false-sharing four to a line. *)
let cas_stripes = 1024
let cas_stride = 8

let create ~frame_log_words ~max_frames =
  if frame_log_words < 4 then invalid_arg "Memory.create: frame_log_words < 4";
  if max_frames < 1 then invalid_arg "Memory.create: max_frames < 1";
  let cap_frames = max 2 (min (max_frames + 2) 64) in
  {
    frame_log = frame_log_words;
    frame_words = 1 lsl frame_log_words;
    max_frames;
    flat = alloc_flat (cap_frames lsl frame_log_words);
    cap_frames;
    liveness = Bytes.make ((cap_frames + 7) / 8) '\000';
    free_list = Beltway_util.Vec.create ~dummy:0 ();
    next_fresh = 1 (* frame 0 reserved: address 0 is null *);
    live = 0;
    cas_locks = Array.init (cas_stripes * cas_stride) (fun _ -> Atomic.make false);
    marks = Bytes.empty;
  }

let frame_log t = t.frame_log
let frame_words t = t.frame_words
let frame_bytes t = t.frame_words * Addr.bytes_per_word
let max_frames t = t.max_frames
let live_frames t = t.live
let fresh_frames t = t.next_fresh

exception Out_of_frames

let[@inline] live_bit t f =
  Char.code (Bytes.unsafe_get t.liveness (f lsr 3)) land (1 lsl (f land 7)) <> 0

let set_live_bit t f v =
  let byte = Char.code (Bytes.get t.liveness (f lsr 3)) in
  let mask = 1 lsl (f land 7) in
  Bytes.set t.liveness (f lsr 3)
    (Char.chr (if v then byte lor mask else byte land lnot mask))

let is_live t idx = idx >= 1 && idx < t.cap_frames && live_bit t idx

(* Grow the flat backing so frame indices < [needed] are addressable.
   Geometric growth; old contents are preserved by a block move. *)
let grow_backing t needed =
  if needed > t.cap_frames then begin
    let cap = max needed (t.cap_frames * 2) in
    let flat = alloc_flat (cap lsl t.frame_log) in
    A1.blit t.flat (A1.sub flat 0 (A1.dim t.flat));
    t.flat <- flat;
    let liveness = Bytes.make ((cap + 7) / 8) '\000' in
    Bytes.blit t.liveness 0 liveness 0 (Bytes.length t.liveness);
    t.liveness <- liveness;
    if Bytes.length t.marks > 0 then begin
      let marks = Bytes.make (((cap lsl t.frame_log) + 7) / 8) '\000' in
      Bytes.blit t.marks 0 marks 0 (Bytes.length t.marks);
      t.marks <- marks
    end;
    t.cap_frames <- cap
  end

let zero_frame t idx =
  A1.fill (A1.sub t.flat (idx lsl t.frame_log) t.frame_words) 0

let map_frame t idx =
  zero_frame t idx;
  set_live_bit t idx true;
  t.live <- t.live + 1

let alloc_frame t =
  if t.live >= t.max_frames then raise Out_of_frames;
  let idx =
    if not (Beltway_util.Vec.is_empty t.free_list) then
      Beltway_util.Vec.pop t.free_list
    else begin
      let idx = t.next_fresh in
      t.next_fresh <- idx + 1;
      grow_backing t (idx + 1);
      idx
    end
  in
  map_frame t idx;
  idx

(* Find a run of [n] consecutive indices in the free list; on success
   remove them from the list and return the first index. *)
let take_free_run t n =
  let len = Beltway_util.Vec.length t.free_list in
  if len < n then None
  else begin
    let sorted = Beltway_util.Vec.to_array t.free_list in
    Array.sort compare sorted;
    let first = ref (-1) in
    let run_start = ref 0 in
    (try
       for i = 1 to len do
         if i = len || sorted.(i) <> sorted.(i - 1) + 1 then begin
           if i - !run_start >= n then begin
             first := sorted.(!run_start);
             raise Exit
           end;
           run_start := i
         end
       done
     with Exit -> ());
    if !first < 0 then None
    else begin
      let lo = !first and hi = !first + n - 1 in
      (* In-place compaction of the survivors, preserving the vec's
         backing store. *)
      let w = ref 0 in
      for r = 0 to len - 1 do
        let idx = Beltway_util.Vec.get t.free_list r in
        if idx < lo || idx > hi then begin
          Beltway_util.Vec.set t.free_list !w idx;
          incr w
        end
      done;
      Beltway_util.Vec.truncate t.free_list !w;
      Some lo
    end
  end

let alloc_frames_contiguous t n =
  if n < 1 then invalid_arg "Memory.alloc_frames_contiguous: n < 1";
  if t.live + n > t.max_frames then raise Out_of_frames;
  let first =
    match take_free_run t n with
    | Some first -> first
    | None ->
      let first = t.next_fresh in
      t.next_fresh <- first + n;
      grow_backing t (first + n);
      first
  in
  List.init n (fun i ->
      let idx = first + i in
      map_frame t idx;
      idx)

let free_frame t idx =
  if not (is_live t idx) then
    invalid_arg (Printf.sprintf "Memory.free_frame: frame %d not live" idx);
  set_live_bit t idx false;
  Beltway_util.Vec.push t.free_list idx;
  t.live <- t.live - 1

(* Out-of-line failure paths keep the checking fast path small enough
   to inline. *)
let null_fail name = invalid_arg (Printf.sprintf "Memory.%s: null address" name)

let dead_fail t a name =
  invalid_arg
    (Printf.sprintf "Memory.%s: address %#x in dead frame %d" name a (a lsr t.frame_log))

let[@inline] check_addr t a name =
  if a = Addr.null then null_fail name;
  let f = a lsr t.frame_log in
  if f >= t.cap_frames || not (live_bit t f) then dead_fail t a name

let[@inline] unsafe_get t a = A1.unsafe_get t.flat a
let[@inline] unsafe_set t a v = A1.unsafe_set t.flat a v

let unsafe_blit t ~src ~dst ~len =
  if len <= 16 then
    for i = 0 to len - 1 do
      A1.unsafe_set t.flat (dst + i) (A1.unsafe_get t.flat (src + i))
    done
  else A1.blit (A1.sub t.flat src len) (A1.sub t.flat dst len)

let[@inline] get t a =
  if checks_enabled then check_addr t a "get";
  A1.unsafe_get t.flat a

let[@inline] set t a v =
  if checks_enabled then check_addr t a "set";
  A1.unsafe_set t.flat a v

let check_range t a len name =
  check_addr t a name;
  check_addr t (a + len - 1) name;
  if a lsr t.frame_log <> (a + len - 1) lsr t.frame_log then
    invalid_arg
      (Printf.sprintf "Memory.%s: range %#x+%d crosses a frame boundary" name a len)

let blit t ~src ~dst ~len =
  if len < 0 then invalid_arg "Memory.blit: negative length";
  if len > 0 then begin
    if checks_enabled then begin
      check_range t src len "blit";
      check_range t dst len "blit"
    end;
    if len <= 16 then
      for i = 0 to len - 1 do
        A1.unsafe_set t.flat (dst + i) (A1.unsafe_get t.flat (src + i))
      done
    else A1.blit (A1.sub t.flat src len) (A1.sub t.flat dst len)
  end

let fill t ~dst ~len v =
  if len < 0 then invalid_arg "Memory.fill: negative length";
  if len > 0 then begin
    if checks_enabled then check_range t dst len "fill";
    if len <= 16 then
      for i = 0 to len - 1 do
        A1.unsafe_set t.flat (dst + i) v
      done
    else A1.fill (A1.sub t.flat dst len) v
  end

(* Pre-grow the backing (and liveness bitmap) so that the next [n]
   fresh-frame allocations cannot replace [t.flat] or [t.liveness].
   The parallel collector calls this before fanning out: worker domains
   read the backing without synchronisation, which is only sound while
   the arrays are never swapped under them. *)
let reserve_fresh t ~frames =
  if frames < 0 then invalid_arg "Memory.reserve_fresh: negative frame count";
  grow_backing t (t.next_fresh + frames)

(* Word-granularity compare-and-set, emulated over the bigarray with
   address-striped spinlocks (OCaml exposes no native bigarray CAS).
   Returns the previous value: equal to [expect] iff the store
   happened. Only contending [cas_word] calls are mutually excluded —
   plain loads of the same word may observe either value, which the
   collector's forwarding protocol tolerates by construction (a stale
   "unforwarded" read just loses the subsequent CAS). *)
let cas_word t a ~expect ~desired =
  let lock = Array.unsafe_get t.cas_locks ((a land (cas_stripes - 1)) * cas_stride) in
  while not (Atomic.compare_and_set lock false true) do
    Domain.cpu_relax ()
  done;
  let prev = A1.unsafe_get t.flat a in
  if prev = expect then A1.unsafe_set t.flat a desired;
  Atomic.set lock false;
  prev

let frame_base t idx = idx lsl t.frame_log
let addr_frame t a = a lsr t.frame_log
let addr_offset t a = a land (t.frame_words - 1)

(* ------------------------------------------------------------------ *)
(* Side mark bitmap: the liveness machinery one level down — a bit per
   *word* instead of per frame, keyed by address. Non-moving
   reclamation strategies use it to record per-object reachability
   without touching header words (so forwarding encodings and the mark
   state can never collide). Lazily materialised: copying collectors
   never pay for it. *)

let ensure_marks t =
  let need = ((t.cap_frames lsl t.frame_log) + 7) / 8 in
  if Bytes.length t.marks < need then begin
    let marks = Bytes.make need '\000' in
    Bytes.blit t.marks 0 marks 0 (Bytes.length t.marks);
    t.marks <- marks
  end

let[@inline] marked t a =
  Char.code (Bytes.unsafe_get t.marks (a lsr 3)) land (1 lsl (a land 7)) <> 0

let[@inline] set_mark t a =
  let i = a lsr 3 in
  let byte = Char.code (Bytes.unsafe_get t.marks i) in
  Bytes.unsafe_set t.marks i (Char.unsafe_chr (byte lor (1 lsl (a land 7))))

let clear_marks_frame t idx =
  (* A frame's address range is byte-aligned in the bitmap:
     [frame_words >= 16], so the range spans whole bytes. *)
  Bytes.fill t.marks ((idx lsl t.frame_log) lsr 3) (t.frame_words lsr 3) '\000'
