(** The simulated physical memory: a set of frames.

    A frame is an aligned, contiguous, power-of-two-sized region of the
    virtual address space (paper S3.3.1). Memory hands out frames,
    reclaims them, and services word-granularity loads and stores.

    All frames share one flat backing store (a [Bigarray.Array1] of
    ints) in which frame [f] occupies words
    [f lsl frame_log .. (f+1) lsl frame_log - 1], so an address is
    itself the backing index: a load is a single unchecked read plus a
    liveness-bitmap test. Freed frame *indices* are recycled through a
    free list, mimicking a virtual memory manager that maps and unmaps
    page runs; the backing grows geometrically and is never returned.

    The *heap budget* (how many frames a collector configuration may
    hold at once) is enforced by the GC layer, not here: this module is
    the machine, not the policy. *)

type t

val create : frame_log_words:int -> max_frames:int -> t
(** [create ~frame_log_words ~max_frames]: frames hold
    [2^frame_log_words] words each; at most [max_frames] (excluding the
    reserved frame 0) may be live at once.
    @raise Invalid_argument if [frame_log_words < 4] or
    [max_frames < 1]. *)

val frame_log : t -> int
val frame_words : t -> int
val frame_bytes : t -> int
val max_frames : t -> int

val live_frames : t -> int
(** Number of frames currently allocated. *)

val fresh_frames : t -> int
(** Next never-used frame index: an upper bound (exclusive) on every
    index ever handed out. Grows only when the free list cannot satisfy
    a request, so it measures virtual-space consumption. *)

exception Out_of_frames
(** Raised by {!alloc_frame} when [max_frames] are already live. The GC
    layer treats its own budget exhaustion before this can trigger;
    seeing it escape indicates a collector bug (copy-reserve
    violation). *)

val alloc_frame : t -> int
(** Allocate a frame; its words are zeroed. Returns the frame index
    (>= 1). *)

val alloc_frames_contiguous : t -> int -> int list
(** Allocate [n] frames with consecutive indices — hence contiguous
    addresses — for objects larger than one frame (large object
    space). Consults the free list first, exactly like {!alloc_frame}:
    a run of [n] consecutive recycled indices is reused when one
    exists, and only otherwise is fresh virtual space consumed.
    @raise Out_of_frames if fewer than [n] frames remain in the
    budget. @raise Invalid_argument if [n < 1]. *)

val free_frame : t -> int -> unit
(** Return a frame to the free list. @raise Invalid_argument if the
    frame is not live. *)

val is_live : t -> int -> bool
(** Whether the frame index is currently allocated. *)

val checks_enabled : bool
(** Whether word accesses verify the liveness bitmap (the default).
    [BELTWAY_MEMCHECK=0] in the environment disables every check below
    — each access becomes a single unchecked load/store, and the
    use-after-free / wild-pointer / frame-boundary failure modes become
    undefined behaviour. *)

val get : t -> Addr.t -> int
(** Load the word at an address. @raise Invalid_argument on a null
    address or a dead frame (catching use-after-free / wild pointers in
    tests). *)

val set : t -> Addr.t -> int -> unit
(** Store a word. Same failure modes as {!get}. *)

val unsafe_get : t -> Addr.t -> int
(** {!get} without the liveness check, regardless of
    [checks_enabled]. The caller must know the frame is live. *)

val unsafe_set : t -> Addr.t -> int -> unit
(** {!set} without the liveness check. *)

val unsafe_blit : t -> src:Addr.t -> dst:Addr.t -> len:int -> unit
(** {!blit} without the range checks ([len] must be non-negative and
    both ranges within live frames). *)

val blit : t -> src:Addr.t -> dst:Addr.t -> len:int -> unit
(** Block move of [len] words, as one backing-store blit rather than
    per-word {!get}/{!set} round trips. Each of the source and
    destination ranges must lie within a single live frame.
    @raise Invalid_argument if a range is dead, crosses a frame
    boundary, or [len < 0]. *)

val fill : t -> dst:Addr.t -> len:int -> int -> unit
(** Block store of [len] copies of a word. Same constraints as
    {!blit}. *)

val reserve_fresh : t -> frames:int -> unit
(** Grow the backing store now so that the next [frames] fresh-frame
    allocations are guaranteed not to reallocate it. The parallel
    collector calls this before fanning out, because worker domains
    read the backing unsynchronised and the arrays must not be swapped
    under them. @raise Invalid_argument on a negative count. *)

val cas_word : t -> Addr.t -> expect:int -> desired:int -> int
(** Atomic compare-and-set of the word at an address, emulated with
    address-striped spinlocks: stores [desired] iff the word equals
    [expect], and returns the previous value either way (equal to
    [expect] iff the store happened). Safe from any domain; plain
    loads racing with it may return either value. *)

val frame_base : t -> int -> Addr.t
(** Address of word 0 of a frame. *)

val addr_frame : t -> Addr.t -> int
(** Frame index of an address (shift). *)

val addr_offset : t -> Addr.t -> int
(** Word offset of an address within its frame (mask) — the slot key
    for per-frame side tables. *)

(** {2 Side mark bitmap}

    One bit per heap *word*, keyed by address — the per-object
    reachability record used by the non-moving reclamation strategies
    (mark-sweep, mark-compact). Kept outside the heap so mark state can
    never collide with header encodings (forwarding pointers are odd
    header words). Lazily materialised: a heap that never marks never
    allocates it. *)

val ensure_marks : t -> unit
(** Materialise (or grow) the mark bitmap to cover every currently
    addressable frame. Must be called before {!marked} / {!set_mark};
    the bitmap then tracks backing growth automatically. *)

val marked : t -> Addr.t -> bool
(** Whether the word at an address carries a mark. Undefined before
    {!ensure_marks}. *)

val set_mark : t -> Addr.t -> unit
(** Set the mark bit for an address. Undefined before
    {!ensure_marks}. *)

val clear_marks_frame : t -> int -> unit
(** Clear every mark bit in one frame's address range (strategies clear
    exactly the plan's frames at mark-phase start). *)
