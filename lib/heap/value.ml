type t = int

(* All accessors are inline-annotated with out-of-line failure paths:
   they sit under every interpreter opcode and every collector scan. *)

let null = 0
let[@inline] of_int n = (n lsl 1) lor 1

let not_immediate () = invalid_arg "Value.to_int: not an immediate"

let[@inline] to_int v =
  if v land 1 = 0 then not_immediate ();
  v asr 1

let null_addr () = invalid_arg "Value.of_addr: null address"

let[@inline] of_addr a =
  if a = Addr.null then null_addr ();
  a lsl 1

let not_a_ref () = invalid_arg "Value.to_addr: not a reference"

let[@inline] to_addr v =
  if v land 1 = 1 || v = 0 then not_a_ref ();
  v lsr 1

let[@inline] is_null v = v = 0
let[@inline] is_int v = v land 1 = 1
let[@inline] is_ref v = v <> 0 && v land 1 = 0

let pp fmt v =
  if is_null v then Format.pp_print_string fmt "null"
  else if is_int v then Format.fprintf fmt "%d" (to_int v)
  else Format.fprintf fmt "ref%a" Addr.pp (to_addr v)
