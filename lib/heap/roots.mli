(** The root set: global slots and a shadow stack.

    Mutators never hold raw addresses across a potential collection;
    they hold *root slots* that the collector updates when objects
    move. Two kinds are provided:

    - {e globals}: stable numbered slots, the analogue of static fields
      (workload generators keep their live-object tables here);
    - {e shadow stack}: LIFO slots for temporaries, the analogue of
      thread stacks (the Beltlang interpreter roots its environments
      and evaluation temporaries here with mark/release discipline). *)

type t

type global = private int
(** Stable handle to a global slot. *)

val create : unit -> t

(** {2 Globals} *)

val new_global : t -> Value.t -> global
val get_global : t -> global -> Value.t
val set_global : t -> global -> Value.t -> unit

val global_count : t -> int
val global_of_int : int -> global
(** Escape hatch for tables indexed by dense ints; the int must come
    from a previous [new_global] (enforced on access). *)

(** {2 Shadow stack} *)

val push : t -> Value.t -> unit
val pop : t -> Value.t
val peek : t -> int -> Value.t
(** [peek t i]: [i] slots below the top (0 = top). *)

val set_peek : t -> int -> Value.t -> unit

val stack_get : t -> int -> Value.t
(** [stack_get t i]: absolute index from the bottom (0 = oldest). An
    interpreter whose current frame sits at a fixed depth uses this to
    address it across pushes and pops above it. *)

val stack_set : t -> int -> Value.t -> unit

val mark : t -> int
(** Current stack depth, for {!release}. *)

val release : t -> int -> unit
(** Truncate the stack back to a previous {!mark}. *)

val depth : t -> int

(** {2 Collector interface} *)

val iter_update : t -> (Value.t -> Value.t) -> unit
(** Apply a forwarding function to every slot (globals then stack),
    storing the result back. The collector's root-scan entry point. *)

val iter_update_shard : t -> index:int -> stride:int -> (Value.t -> Value.t) -> unit
(** Shard [index] of [stride] of {!iter_update}: updates every slot
    whose combined (globals then stack) index is congruent to [index]
    modulo [stride]. Shards touch disjoint slots, so the parallel
    collector runs one per domain concurrently.
    @raise Invalid_argument unless [0 <= index < stride]. *)

val iter : t -> (Value.t -> unit) -> unit
(** Read-only traversal (used by the reachability oracle). *)
