(* The collector zoo: one workload, every collector family the Beltway
   framework subsumes (paper S3.1) — semi-space, Appel generational,
   three-generation, fixed-size nursery, older-first mix, older-first,
   and the new Beltway X.X / X.X.100 — all selected by configuration
   string, all running the same mutator on the same heap budget.

   Run with: dune exec examples/collector_zoo.exe *)

let configs =
  [
    ("ss", "semi-space (BSS)");
    ("appel", "Appel generational (comparator)");
    ("100.100", "Beltway-as-Appel (BA2)");
    ("100.100.100", "three-generation Appel");
    ("fixed:25", "fixed 25% nursery generational");
    ("ofm:25", "older-first mix (BOFM)");
    ("of:25", "older-first (BOF)");
    ("25.25", "Beltway 25.25 (incomplete)");
    ("25.25.100", "Beltway 25.25.100 (complete)");
    ("25.25+policy:sweep:6", "Beltway 25.25, complete by schedule");
    ("25.25.100+cards", "... with a card-table barrier");
    ("25.25.100+los:256", "... with a large object space");
  ]

let () =
  let bench = Beltway_workload.Spec.jess in
  let heap_kb = 768 in
  let model = Beltway_sim.Cost_model.default in
  let table =
    Beltway_util.Table.create
      ~title:
        (Printf.sprintf "collector zoo: %s in a %d KB heap" bench.Beltway_workload.Spec.name
           heap_kb)
      ~columns:
        [ "config"; "family"; "GCs"; "copied KB"; "remset"; "GC time"; "total time"; "ok" ]
  in
  List.iter
    (fun (cs, family) ->
      let config =
        match Beltway.Config.parse cs with Ok c -> c | Error e -> failwith e
      in
      let gc = Beltway.Gc.create ~config ~heap_bytes:(heap_kb * 1024) () in
      let ok =
        try
          bench.Beltway_workload.Spec.run gc;
          true
        with Beltway.Gc.Out_of_memory _ -> false
      in
      let stats = Beltway.Gc.stats gc in
      Beltway_util.Table.add_row table
        [
          cs;
          family;
          string_of_int (Beltway.Gc_stats.gcs stats);
          string_of_int (Beltway.Gc_stats.total_copied_words stats * 4 / 1024);
          string_of_int stats.Beltway.Gc_stats.barrier_slow;
          Printf.sprintf "%.2e" (Beltway_sim.Cost_model.gc_time model stats);
          Printf.sprintf "%.2e" (Beltway_sim.Cost_model.total_time model stats);
          (if ok then "yes" else "OOM");
        ])
    configs;
  Beltway_util.Table.print table;
  print_endline
    "Every row is the same framework: belts + increments + promotion policy,\n\
     selected by the configuration string (paper section 3.1)."
