(* The bytecode VM's conformance gate: the AST interpreter is the
   differential oracle. For every bundled program across a grid of
   collector configurations — and for randomly generated well-scoped
   programs — the VM must produce byte-identical output AND
   byte-identical GC statistics (allocation counts, barrier breakdown,
   collection log). Output equality alone would not catch a fused
   opcode that perturbs the shadow stack at an allocation point; the
   stats equality pins the two engines to the same heap history. *)

module Sexp = Beltlang.Sexp
module Ast = Beltlang.Ast
module Interp = Beltlang.Interp
module Vm = Beltlang.Vm
module Compile = Beltlang.Compile
module Bytecode = Beltlang.Bytecode
module Analysis = Beltlang.Analysis
module Programs = Beltlang.Programs
module Gc = Beltway.Gc
module Gc_stats = Beltway.Gc_stats
module Config = Beltway.Config
module Sanitizer = Beltway_check.Sanitizer

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let gc_of ?(heap_kb = 512) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~config ~heap_bytes:(heap_kb * 1024) ()

(* One engine run: output, rendered stats, and the error message if
   the program failed. Runtime errors are legitimate program outcomes
   and must also match between engines, message for message. *)
type outcome = { out : string; stats : string; error : string option }

let stats_of gc =
  let st = Gc.stats gc in
  Format.asprintf "%a|gcs=%d copied=%d freed=%d" Gc_stats.pp_summary st
    (Gc_stats.gcs st)
    (Gc_stats.total_copied_words st)
    (Gc_stats.total_freed_frames st)

let run_interp ?heap_kb ?(sanitize = false) config src =
  let gc = gc_of ?heap_kb config in
  let san =
    if sanitize then Some (Sanitizer.attach ~level:Sanitizer.Paranoid gc) else None
  in
  let it = Interp.create gc in
  let error =
    try
      Interp.run_string it src;
      None
    with
    | Interp.Runtime_error m -> Some m
    | Beltway.State.Out_of_memory m -> Some ("oom: " ^ m)
  in
  Option.iter Sanitizer.check_now san;
  { out = Interp.output it; stats = stats_of gc; error }

let run_vm ?heap_kb ?(sanitize = false) config src =
  let gc = gc_of ?heap_kb config in
  let san =
    if sanitize then Some (Sanitizer.attach ~level:Sanitizer.Paranoid gc) else None
  in
  let vm = Vm.create gc in
  let error =
    try
      Vm.run_string vm src;
      None
    with
    | Vm.Runtime_error m -> Some m
    | Beltway.State.Out_of_memory m -> Some ("oom: " ^ m)
  in
  Option.iter Sanitizer.check_now san;
  { out = Vm.output vm; stats = stats_of gc; error }

let check_equal ~label a b =
  checks (label ^ ": output") a.out b.out;
  checks (label ^ ": gc stats") a.stats b.stats;
  checks (label ^ ": error")
    (Option.value ~default:"<none>" a.error)
    (Option.value ~default:"<none>" b.error)

(* ---- bundled programs x configuration grid ---- *)

let config_grid =
  [ "ss"; "appel"; "fixed:25"; "ofm:25"; "of:25"; "25.25"; "25.25.100";
    "10.10.100"; "25.25.100+nofilter"; "25.25+cards" ]

let test_programs_differential () =
  List.iter
    (fun (p : Programs.t) ->
      List.iter
        (fun config ->
          let label = Printf.sprintf "%s @ %s" p.Programs.name config in
          check_equal ~label
            (run_interp config p.Programs.source)
            (run_vm config p.Programs.source))
        config_grid)
    Programs.all

(* The sanitizer re-checks the heap invariants the fast paths could
   silently break (liveness bitmaps, barrier completeness); level 2 on
   both engines must stay clean and agree. *)
let test_programs_sanitized () =
  List.iter
    (fun (p : Programs.t) ->
      List.iter
        (fun config ->
          let label = Printf.sprintf "%s @ %s +sanitize" p.Programs.name config in
          check_equal ~label
            (run_interp ~sanitize:true config p.Programs.source)
            (run_vm ~sanitize:true config p.Programs.source))
        [ "25.25.100"; "appel" ])
    Programs.all

(* ---- random well-scoped programs (property) ---- *)

(* Source-level generation keeps programs well-scoped by construction:
   expressions only reference names the generator has already bound,
   and calls only target functions defined strictly earlier, so every
   generated program terminates. Runtime errors (car of an int,
   division by zero) are reachable on purpose — both engines must
   report them identically. *)
let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let atom vars =
    match vars with
    | [] -> oneof [ map string_of_int (int_range (-50) 50); return "nil"; return "#t" ]
    | _ ->
      oneof
        [ map string_of_int (int_range (-50) 50); oneofl vars; return "nil";
          oneofl vars ]
  in
  (* [expr depth vars funs]: an expression over bound variable names
     [vars] and earlier-defined functions [funs] (name, arity). *)
  let rec expr n vars funs =
    if n <= 0 then atom vars
    else
      let sub = expr (n - 1) vars funs in
      let cases =
        [
          atom vars;
          (let* op = oneofl [ "+"; "-"; "*"; "mod"; "<"; "<="; "="; "eq?" ] in
           let* a = sub and* b = sub in
           return (Printf.sprintf "(%s %s %s)" op a b));
          (let* a = sub and* b = sub in
           return (Printf.sprintf "(cons %s %s)" a b));
          (let* op = oneofl [ "car"; "cdr"; "null?"; "pair?"; "not" ] in
           let* a = sub in
           return (Printf.sprintf "(%s %s)" op a));
          (let* c = sub and* t = sub and* e = sub in
           return (Printf.sprintf "(if %s %s %s)" c t e));
          (let* v = oneofl [ "u"; "v"; "w" ] in
           let* b = sub in
           let* body = expr (n - 1) (v :: vars) funs in
           return (Printf.sprintf "(let ((%s %s)) %s)" v b body));
          (let* a = sub and* b = sub in
           return (Printf.sprintf "(begin %s %s)" a b));
          (let* a = sub and* b = sub in
           let* op = oneofl [ "and"; "or" ] in
           return (Printf.sprintf "(%s %s %s)" op a b));
        ]
        @ (match vars with
          | [] -> []
          | _ ->
            [
              (let* v = oneofl vars in
               let* b = sub in
               return (Printf.sprintf "(begin (set! %s %s) %s)" v b v));
            ])
        @ (match funs with
          | [] -> []
          | _ ->
            [
              (let* fname, arity = oneofl funs in
               let* args =
                 QCheck.Gen.list_repeat arity sub
               in
               return
                 (Printf.sprintf "(%s%s)" fname
                    (String.concat ""
                       (List.map (fun a -> " " ^ a) args))));
            ])
      in
      oneof cases
  in
  (* A program: a few globals, a few non-recursive functions (each may
     call only earlier ones), then printed toplevel expressions. *)
  let* nglobals = int_range 0 3 in
  let globals = List.init nglobals (fun i -> Printf.sprintf "g%d" i) in
  let* global_defs =
    QCheck.Gen.flatten_l
      (List.map
         (fun g ->
           let* v = expr 2 [] [] in
           return (Printf.sprintf "(define %s %s)" g v))
         globals)
  in
  let* nfuns = int_range 0 3 in
  let rec mk_funs i acc_defs funs =
    if i >= nfuns then return (List.rev acc_defs, funs)
    else
      let fname = Printf.sprintf "f%d" i in
      let* arity = int_range 1 3 in
      let params = List.init arity (fun j -> Printf.sprintf "p%d" j) in
      let* body = expr 3 (params @ globals) funs in
      let def =
        Printf.sprintf "(define (%s%s) %s)" fname
          (String.concat "" (List.map (fun p -> " " ^ p) params))
          body
      in
      mk_funs (i + 1) (def :: acc_defs) ((fname, arity) :: funs)
  in
  let* fun_defs, funs = mk_funs 0 [] [] in
  let* ntop = int_range 1 4 in
  let* tops =
    QCheck.Gen.flatten_l
      (List.init ntop (fun _ ->
           let* e = expr 4 [] funs in
           return (Printf.sprintf "(print %s)" e)))
  in
  return (String.concat "\n" (global_defs @ fun_defs @ tops))

let differential_prop =
  QCheck.Test.make ~name:"random programs: vm == interp (output, stats, errors)"
    ~count:300 (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      (* small heap: random programs must also agree across collections *)
      let a = run_interp ~heap_kb:64 "25.25.100" src in
      let b = run_vm ~heap_kb:64 "25.25.100" src in
      a.out = b.out && a.stats = b.stats && a.error = b.error)

(* ---- compiled form ---- *)

let test_compile_shapes () =
  (* Superinstruction selection is an implementation detail, but the
     flat encoding must stay self-consistent: walking the code stream
     by [insn_len] lands exactly on [halt]/[return] boundaries. *)
  List.iter
    (fun (p : Programs.t) ->
      let bc = Compile.compile (Ast.compile (Sexp.parse_string p.Programs.source)) in
      let n = Array.length bc.Bytecode.code in
      let pc = ref 0 in
      let ok = ref true in
      while !pc < n do
        let insn = bc.Bytecode.code.(!pc) in
        let op = Bytecode.op insn in
        if op < 0 || op >= Bytecode.op_count then ok := false;
        pc := !pc + Bytecode.insn_len insn
      done;
      checkb (p.Programs.name ^ ": insn_len walk is exact") true (!pc = n && !ok))
    Programs.all

let test_dump_is_stable () =
  (* the disassembler must cover every emitted opcode *)
  let bc =
    Compile.compile
      (Ast.compile
         (Sexp.parse_string
            "(define i 0) (define (f x) (if (< x 1) x (f (- x 1)))) \
             (while (< i 3) (print (f i)) (set! i (+ i 1)))"))
  in
  let dump = Format.asprintf "%a" Bytecode.pp bc in
  checkb "dump mentions code section" true
    (String.length dump > 0 && String.index_opt dump '\n' <> None)

(* ---- operand limits ---- *)

let deep_lambda_nest n =
  let rec go i acc = if i = 0 then acc else go (i - 1) ("(lambda () " ^ acc ^ ")") in
  "(define f (lambda (a) " ^ go n "a" ^ "))"

let test_limit_hops () =
  let src = deep_lambda_nest (Bytecode.max_c + 10) in
  checkb "hop overflow raises Compile_error" true
    (try
       ignore (Compile.compile (Ast.compile (Sexp.parse_string src)));
       false
     with Ast.Compile_error m ->
       (* the message must name the limit *)
       String.length m > 0 && String.sub m 0 14 = "bytecode limit");
  (* ... and the linter reports it statically, as an error *)
  let diags = Analysis.analyze (Sexp.parse_string src) in
  checki "lint flags bytecode-limit" 1
    (List.length
       (List.filter
          (fun (d : Analysis.diag) ->
            d.Analysis.code = "bytecode-limit" && d.Analysis.severity = Analysis.Error)
          diags))

let test_limit_within () =
  (* a nest just inside the hop budget still compiles and runs *)
  let src = deep_lambda_nest 16 in
  let vm = Vm.create (gc_of "25.25.100") in
  Vm.run_string vm src;
  checks "within limits runs" "" (Vm.output vm)

let suite =
  [
    ("programs x config grid: vm == interp", `Slow, test_programs_differential);
    ("programs under sanitizer: vm == interp", `Slow, test_programs_sanitized);
    ("compiled streams walk exactly", `Quick, test_compile_shapes);
    ("disassembly smoke", `Quick, test_dump_is_stable);
    ("operand limit: hops overflow", `Quick, test_limit_hops);
    ("operand limit: within budget", `Quick, test_limit_within);
    QCheck_alcotest.to_alcotest differential_prop;
  ]
