The checking layers, end to end.

Sanitized runs maintain a shadow heap through mutator hooks and diff it
against the real heap after every collection (level 2 also re-verifies
the structural invariants):

  $ beltway-run -b jess -H 1024 -q --sanitize
  sanitizer: OK

  $ beltway-run -b db -g appel+cards -H 1024 -q --sanitize 1
  sanitizer: OK

  $ beltlang -p sieve --sanitize
  168
  997
  sanitizer: OK

The environment switch is equivalent:

  $ BELTWAY_SANITIZE=2 beltlang -p tak
  7
  sanitizer: OK

A bad sanitizer level is rejected:

  $ beltway-run -b jess -q --sanitize 7
  error: --sanitize takes 0, 1 or 2 (got 7)
  [2]

The static analyser flags scope and arity defects, dead code and unused
bindings without running the program, plus pretenuring notes for
allocation sites that feed long-lived structures:

  $ cat > defects.bl <<'EOF'
  > (define (f x) (+ x y))
  > (define (g a b) a)
  > (define table (make-vector 64 0))
  > (vector-set! table 0 (cons 1 2))
  > (print (g 1))
  > (if #t (print 1) (print 2))
  > EOF
  $ beltlang --lint defects.bl
  lint: error [unbound-var] unbound variable y in f
  lint: warning [unused-param] parameter b is never used in g
  lint: note [pretenure] global table is initialised with a vector: immortal data, a candidate for alloc_pretenured (belt >= 1)
  lint: note [pretenure] cons cell stored into the heap via vector-set! likely outlives its creating scope: a candidate for alloc_pretenured (belt >= 1)
  lint: error [bad-arity] g expects 2 arguments, got 1
  lint: warning [unreachable] else-branch is unreachable: condition #t is always true
  lint: warning [unused-global] global f is defined but never used
  lint: note [alloc-summary] allocation sites: 2 data, 2 closure; 1 escaping to globals, 1 stored into the heap
  lint: 2 error(s), 3 warning(s)
  [1]

A clean program passes with errors-free output and exit 0:

  $ beltlang -p nqueens --lint
  lint: note [alloc-summary] allocation sites: 1 data, 3 closure; 0 escaping to globals, 0 stored into the heap
  lint: 0 error(s), 0 warning(s)
