(* Robustness: adversarial workloads under every configuration. Each
   run must either complete or raise Out_of_memory; in both cases the
   heap must remain structurally sound and, where the run completed,
   everything it dropped must be reclaimable. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module Torture = Beltway_workload.Torture

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let configs =
  [
    "ss"; "appel"; "appel3"; "fixed:25"; "ofm:25"; "of:25"; "25.25"; "25.25.100";
    "10.10.100"; "appel+cards"; "25.25.100+los:128"; "25.25.100+cards";
  ]

(* BELTWAY_VERIFY_EVERY=n: run the full integrity checker at every nth
   completed collection, not just at the end of the run — the
   configuration matrix below then exercises Verify at thousands of
   intermediate heap states. Off by default (it is quadratic-ish). *)
let verify_every =
  match Sys.getenv_opt "BELTWAY_VERIFY_EVERY" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None)
  | None -> None

let install_verify_every gc =
  match verify_every with
  | None -> ()
  | Some n ->
    let count = ref 0 in
    Beltway.State.add_hooks (Gc.state gc)
      {
        Beltway.State.noop_hooks with
        on_collect_end =
          (fun ~full_heap:_ ->
            incr count;
            if !count mod n = 0 then Beltway.Verify.check_exn gc);
      }

let run_one (t : Torture.t) cs ~heap_kb =
  let config = Result.get_ok (Config.parse cs) in
  let gc = Gc.create ~frame_log_words:8 ~config ~heap_bytes:(heap_kb * 1024) () in
  install_verify_every gc;
  let completed =
    try
      t.Torture.run gc;
      true
    with Gc.Out_of_memory _ -> false
  in
  (* OOM can abort mid-collection, leaving forwarding pointers behind:
     integrity is only checkable after completed runs. *)
  if completed then begin
    (match Beltway.Verify.check gc with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s under %s: integrity: %s" t.Torture.name cs e);
    (* the scenario dropped all its roots: a full collection must
       reclaim everything *)
    (try Gc.full_collect gc with Gc.Out_of_memory _ -> ());
    checki
      (Printf.sprintf "%s under %s leaves no live data" t.Torture.name cs)
      0
      (Beltway.Oracle.live_words gc)
  end;
  completed

let test_scenario (t : Torture.t) () =
  (* generous heap: every configuration should complete *)
  let completions = List.map (fun cs -> run_one t cs ~heap_kb:2048) configs in
  checkb
    (Printf.sprintf "%s completes under all configurations at 2MB" t.Torture.name)
    true
    (List.for_all Fun.id completions)

let test_scenario_tight (t : Torture.t) () =
  (* tight heap: completion is allowed to fail, soundness is not *)
  List.iter (fun cs -> ignore (run_one t cs ~heap_kb:160)) configs

let suite =
  List.map
    (fun t -> ("torture " ^ t.Torture.name, `Slow, test_scenario t))
    Torture.all
  @ List.map
      (fun t -> ("torture (tight) " ^ t.Torture.name, `Quick, test_scenario_tight t))
      Torture.all
