(* Tests for beltway.util: PRNG, vectors, priority queue, statistics,
   tables, histograms. *)

module Prng = Beltway_util.Prng
module Vec = Beltway_util.Vec
module Pqueue = Beltway_util.Pqueue
module SM = Beltway_util.Stats_math
module Table = Beltway_util.Table
module Histogram = Beltway_util.Histogram
module Json = Beltway_util.Json

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- Prng ---- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    checki "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Prng.next a <> Prng.next b then distinct := true
  done;
  checkb "different seeds differ" true !distinct

let test_prng_bounds () =
  let r = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    checkb "int in [0,17)" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in r 5 9 in
    checkb "int_in inclusive" true (v >= 5 && v <= 9)
  done

let test_prng_int_invalid () =
  let r = Prng.create ~seed:1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_copy_split () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  checki "copy continues identically" (Prng.next a) (Prng.next b);
  let c = Prng.split a in
  checkb "split diverges" true (Prng.next a <> Prng.next c)

let test_prng_chance () =
  let r = Prng.create ~seed:3 in
  checkb "p=0 never" false (Prng.chance r 0.0);
  checkb "p=1 always" true (Prng.chance r 1.0);
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.chance r 0.3 then incr hits
  done;
  checkb "p=0.3 plausible" true (!hits > 2_500 && !hits < 3_500)

let test_prng_exponential_mean () =
  let r = Prng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential r ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "exponential mean ~50" true (mean > 45.0 && mean < 55.0)

let test_prng_choose_shuffle () =
  let r = Prng.create ~seed:5 in
  let a = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    checkb "choose member" true (Array.exists (( = ) (Prng.choose r a)) a)
  done;
  let b = Array.init 100 Fun.id in
  Prng.shuffle r b;
  Array.sort compare b;
  check Alcotest.(array int) "shuffle is a permutation" (Array.init 100 Fun.id) b;
  Alcotest.check_raises "choose empty" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose r [||]))

(* ---- Vec ---- *)

let test_vec_basic () =
  let v = Vec.create ~dummy:0 () in
  checkb "fresh empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  checki "length" 100 (Vec.length v);
  checki "get 57" 57 (Vec.get v 57);
  Vec.set v 57 1000;
  checki "set visible" 1000 (Vec.get v 57);
  checki "top" 99 (Vec.top v);
  checki "pop" 99 (Vec.pop v);
  checki "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index 3 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "get negative"
    (Invalid_argument "Vec.get: index -1 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v (-1)))

let test_vec_clear_truncate () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 2;
  check Alcotest.(list int) "truncate" [ 1; 2 ] (Vec.to_list v);
  Vec.truncate v 10;
  checki "truncate longer is no-op" 2 (Vec.length v);
  Vec.clear v;
  checkb "clear" true (Vec.is_empty v)

let test_vec_swap_remove () =
  let v = Vec.of_list ~dummy:0 [ 10; 20; 30; 40 ] in
  checki "removed" 20 (Vec.swap_remove v 1);
  check Alcotest.(list int) "last moved in" [ 10; 40; 30 ] (Vec.to_list v);
  checki "remove last" 30 (Vec.swap_remove v 2);
  checki "len" 2 (Vec.length v)

let test_vec_iterators () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  checki "fold sum" 6 (Vec.fold ( + ) 0 v);
  checkb "exists" true (Vec.exists (( = ) 2) v);
  checkb "not exists" false (Vec.exists (( = ) 9) v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check
    Alcotest.(list (pair int int))
    "iteri order"
    [ (0, 1); (1, 2); (2, 3) ]
    (List.rev !acc);
  check Alcotest.(array int) "to_array" [| 1; 2; 3 |] (Vec.to_array v)

let vec_model_prop =
  QCheck.Test.make ~name:"Vec behaves like a list under push/pop/set" ~count:200
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let v = Vec.create ~dummy:0 () in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Vec.push v x;
            model := !model @ [ x ]
          end
          else if not (Vec.is_empty v) then begin
            ignore (Vec.pop v);
            model := List.filteri (fun i _ -> i < List.length !model - 1) !model
          end)
        ops;
      Vec.to_list v = !model)

(* ---- Pqueue ---- *)

let test_pqueue_order () =
  let q = Pqueue.create ~dummy:"" () in
  List.iter (fun (p, v) -> Pqueue.add q ~prio:p v)
    [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop_min q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "ascending" [ "a"; "b"; "c"; "d"; "e" ] (List.rev !order)

let test_pqueue_pop_le () =
  let q = Pqueue.create ~dummy:0 () in
  List.iter (fun p -> Pqueue.add q ~prio:p p) [ 10; 20; 30 ];
  check Alcotest.(option (pair int int)) "pop_le hit" (Some (10, 10)) (Pqueue.pop_le q 15);
  check Alcotest.(option (pair int int)) "pop_le miss" None (Pqueue.pop_le q 15);
  checki "two left" 2 (Pqueue.length q)

let test_pqueue_min_prio_clear () =
  let q = Pqueue.create ~dummy:0 () in
  check Alcotest.(option int) "empty min" None (Pqueue.min_prio q);
  Pqueue.add q ~prio:7 7;
  check Alcotest.(option int) "min" (Some 7) (Pqueue.min_prio q);
  Pqueue.clear q;
  checkb "cleared" true (Pqueue.is_empty q)

let pqueue_sort_prop =
  QCheck.Test.make ~name:"Pqueue drains in sorted order" ~count:200
    QCheck.(list small_nat)
    (fun l ->
      let q = Pqueue.create ~dummy:0 () in
      List.iter (fun p -> Pqueue.add q ~prio:p p) l;
      let rec drain acc =
        match Pqueue.pop_min q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare l)

(* ---- Stats_math ---- *)

let checkf = Alcotest.(check (float 1e-9))

let test_stats_mean_geomean () =
  checkf "mean" 2.0 (SM.mean [ 1.0; 2.0; 3.0 ]);
  checkf "mean empty" 0.0 (SM.mean []);
  checkf "geomean" 4.0 (SM.geomean [ 2.0; 8.0 ]);
  Alcotest.check_raises "geomean non-positive"
    (Invalid_argument "Stats_math.geomean: non-positive value") (fun () ->
      ignore (SM.geomean [ 1.0; 0.0 ]))

let test_stats_normalize () =
  check
    Alcotest.(list (float 1e-9))
    "normalize" [ 2.0; 1.0; 3.0 ]
    (SM.normalize_to_best [ 4.0; 2.0; 6.0 ])

let test_stats_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf "p0" 1.0 (SM.percentile a 0.0);
  checkf "p50" 3.0 (SM.percentile a 50.0);
  checkf "p100" 5.0 (SM.percentile a 100.0);
  checkf "p25 interpolates" 2.0 (SM.percentile a 25.0)

let test_stats_round () =
  checkf "round_to" 3.14 (SM.round_to 2 3.14159)

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 4 = "== t");
  checkb "has row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| 1 | 2  |"))

let test_table_arity () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "x" ])

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "z" ];
  let lines = String.split_on_char '\n' (Table.to_csv t) in
  check Alcotest.(list string) "csv" [ "#csv t"; "a,b"; "x;y,z"; "" ] lines

(* ---- Histogram ---- *)

let test_histogram () =
  let h = Histogram.create ~bucket_width:10.0 () in
  List.iter (Histogram.add h) [ 1.0; 5.0; 15.0; 99.0 ];
  checki "count" 4 (Histogram.count h);
  checkf "max" 99.0 (Histogram.max_value h);
  checkf "mean" 30.0 (Histogram.mean h);
  check
    Alcotest.(list (pair (float 1e-9) int))
    "buckets"
    [ (0.0, 2); (10.0, 1); (90.0, 1) ]
    (Histogram.buckets h);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Histogram.create: width must be positive") (fun () ->
      ignore (Histogram.create ~bucket_width:0.0 ()))

let test_histogram_quantile () =
  (* Empty: every quantile is 0. *)
  let e = Histogram.create ~bucket_width:10.0 () in
  checkf "empty p50" 0.0 (Histogram.quantile e 0.5);
  checkf "empty p99" 0.0 (Histogram.quantile e 0.99);
  (* Single sample: every quantile is (clamped to) that sample. *)
  let s = Histogram.create ~bucket_width:10.0 () in
  Histogram.add s 7.0;
  checkf "single p0" 7.0 (Histogram.quantile s 0.0);
  checkf "single p50" 7.0 (Histogram.quantile s 0.5);
  checkf "single p100" 7.0 (Histogram.quantile s 1.0);
  (* Out-of-range q clamps rather than raises. *)
  checkf "q below 0" 7.0 (Histogram.quantile s (-1.0));
  checkf "q above 1" 7.0 (Histogram.quantile s 2.0);
  (* Heavy tail: 99 small values and one huge one. The p99 bucket is
     still the small one; p100 must report the outlier exactly. *)
  let h = Histogram.create ~bucket_width:1.0 () in
  for _ = 1 to 99 do
    Histogram.add h 0.5
  done;
  Histogram.add h 1000.0;
  checkb "heavy-tail p50 in first bucket" true (Histogram.quantile h 0.5 <= 1.0);
  checkb "heavy-tail p99 in first bucket" true (Histogram.quantile h 0.99 <= 1.0);
  checkf "heavy-tail max" 1000.0 (Histogram.quantile h 1.0);
  (* Quantiles are monotone in q. *)
  let prev = ref 0.0 in
  List.iter
    (fun q ->
      let v = Histogram.quantile h q in
      checkb "monotone" true (v >= !prev);
      prev := v)
    [ 0.1; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_histogram_merge () =
  let mk vs =
    let h = Histogram.create ~bucket_width:10.0 () in
    List.iter (Histogram.add h) vs;
    h
  in
  (* Merging with empty preserves everything. *)
  let a = mk [ 1.0; 15.0; 99.0 ] in
  let m = Histogram.merge a (mk []) in
  checki "merge-empty count" 3 (Histogram.count m);
  checkf "merge-empty max" 99.0 (Histogram.max_value m);
  checkf "merge-empty mean" (Histogram.mean a) (Histogram.mean m);
  (* Merge equals the histogram of the concatenated samples. *)
  let xs = [ 1.0; 5.0; 15.0 ] and ys = [ 15.0; 99.0 ] in
  let both = Histogram.merge (mk xs) (mk ys) in
  let direct = mk (xs @ ys) in
  checki "count" (Histogram.count direct) (Histogram.count both);
  checkf "mean" (Histogram.mean direct) (Histogram.mean both);
  checkf "max" (Histogram.max_value direct) (Histogram.max_value both);
  check
    Alcotest.(list (pair (float 1e-9) int))
    "buckets"
    (Histogram.buckets direct)
    (Histogram.buckets both);
  (* Inputs are not mutated. *)
  checki "left untouched" 3 (Histogram.count (mk xs));
  (* Incompatible widths are rejected. *)
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Histogram.merge: bucket widths differ") (fun () ->
      ignore
        (Histogram.merge
           (Histogram.create ~bucket_width:1.0 ())
           (Histogram.create ~bucket_width:2.0 ())))

(* ---- Json ---- *)

let test_json_print () =
  let j =
    Json.Obj
      [
        ("a", Json.Num 1.5);
        ("b", Json.Arr [ Json.Null; Json.Bool true; Json.Str "x\"y\n" ]);
        ("n", Json.Num 42.0);
      ]
  in
  check Alcotest.string "compact"
    {|{"a":1.5,"b":[null,true,"x\"y\n"],"n":42}|}
    (Json.to_string j);
  check Alcotest.string "nan prints as null" "null" (Json.to_string (Json.Num Float.nan))

let test_json_parse () =
  let j = Json.of_string {| {"xs": [1, -2.5, "aAb"], "t": true} |} in
  Alcotest.(check (option (float 1e-9)))
    "number" (Some (-2.5))
    (Option.bind (Json.member "xs" j) (fun xs ->
         Option.bind (Json.to_list xs) (fun l -> Json.to_float (List.nth l 1))));
  Alcotest.(check (option string))
    "unicode escape" (Some "aAb")
    (Option.bind (Json.member "xs" j) (fun xs ->
         Option.bind (Json.to_list xs) (fun l -> Json.to_str (List.nth l 2))));
  check Alcotest.bool "absent member" true (Json.member "zzz" j = None)

let test_json_malformed () =
  let rejects s =
    match Json.of_string s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  checkb "unterminated array" true (rejects "[1, 2");
  checkb "trailing garbage" true (rejects "{} {}");
  checkb "bare word" true (rejects "nul");
  checkb "missing colon" true (rejects {|{"a" 1}|});
  checkb "empty input" true (rejects "")

let json_roundtrip_prop =
  let gen =
    QCheck.Gen.(
      sized
      @@ fix (fun self n ->
             let leaf =
               oneof
                 [
                   return Json.Null;
                   map (fun b -> Json.Bool b) bool;
                   map (fun i -> Json.Num (float_of_int i)) small_signed_int;
                   map (fun s -> Json.Str s) string_printable;
                 ]
             in
             if n = 0 then leaf
             else
               oneof
                 [
                   leaf;
                   map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (n / 2)));
                   map
                     (fun l -> Json.Obj l)
                     (list_size (int_bound 4)
                        (pair string_printable (self (n / 2))));
                 ]))
  in
  QCheck.Test.make ~name:"Json print/parse roundtrip" ~count:300
    (QCheck.make gen)
    (fun j ->
      Json.of_string (Json.to_string j) = j
      && Json.of_string (Json.to_string ~indent:true j) = j)

let suite =
  [
    ("prng determinism", `Quick, test_prng_determinism);
    ("prng seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng invalid bound", `Quick, test_prng_int_invalid);
    ("prng copy/split", `Quick, test_prng_copy_split);
    ("prng chance", `Quick, test_prng_chance);
    ("prng exponential mean", `Quick, test_prng_exponential_mean);
    ("prng choose/shuffle", `Quick, test_prng_choose_shuffle);
    ("vec basic", `Quick, test_vec_basic);
    ("vec bounds", `Quick, test_vec_bounds);
    ("vec clear/truncate", `Quick, test_vec_clear_truncate);
    ("vec swap_remove", `Quick, test_vec_swap_remove);
    ("vec iterators", `Quick, test_vec_iterators);
    QCheck_alcotest.to_alcotest vec_model_prop;
    ("pqueue order", `Quick, test_pqueue_order);
    ("pqueue pop_le", `Quick, test_pqueue_pop_le);
    ("pqueue min/clear", `Quick, test_pqueue_min_prio_clear);
    QCheck_alcotest.to_alcotest pqueue_sort_prop;
    ("stats mean/geomean", `Quick, test_stats_mean_geomean);
    ("stats normalize", `Quick, test_stats_normalize);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats round", `Quick, test_stats_round);
    ("table render", `Quick, test_table_render);
    ("table arity", `Quick, test_table_arity);
    ("table csv", `Quick, test_table_csv);
    ("histogram", `Quick, test_histogram);
    ("histogram quantile", `Quick, test_histogram_quantile);
    ("histogram merge", `Quick, test_histogram_merge);
    ("json print", `Quick, test_json_print);
    ("json parse", `Quick, test_json_parse);
    ("json malformed", `Quick, test_json_malformed);
    QCheck_alcotest.to_alcotest json_roundtrip_prop;
  ]
