(* White-box tests of the collection schedule: plan shape (downward
   closure in stamp order — the soundness invariant), policy choices,
   and the reserve/plan interplay. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module State = Beltway.State
module Schedule = Beltway.Schedule
module Collector = Beltway.Collector
module Increment = Beltway.Increment

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let gc_of ?(heap_kb = 192) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~frame_log_words:8 ~config ~heap_bytes:(heap_kb * 1024) ()

(* Every plan, under every configuration, in every reachable state,
   must be a downward-closed prefix of the collect-stamp order — the
   property that makes the unidirectional barrier sound. *)
let downward_closure_prop =
  let configs =
    [| "ss"; "appel"; "appel3"; "fixed:25"; "ofm:25"; "of:25"; "25.25"; "25.25.100";
       "10.10.100"; "25.25.100+los:16"; "appel+cards" |]
  in
  QCheck.Test.make ~name:"plans are downward-closed in stamp order" ~count:80
    QCheck.(pair small_nat small_nat)
    (fun (seed, cfg_idx) ->
      let cs = configs.(cfg_idx mod Array.length configs) in
      let gc = gc_of cs in
      let tr = Beltway_workload.Trace.random ~seed:(seed + 1) ~nroots:8 ~len:1200 in
      (try Beltway_workload.Trace.execute gc tr
       with Gc.Out_of_memory _ -> ());
      let st = Gc.state gc in
      match Schedule.choose_plan st ~reason:Beltway.Gc_stats.Heap_full with
      | None -> true
      | Some plan ->
        let in_plan =
          let h = Hashtbl.create 16 in
          List.iter
            (fun (i : Increment.t) -> Hashtbl.replace h i.Increment.id ())
            plan.Collector.increments;
          fun (i : Increment.t) -> Hashtbl.mem h i.Increment.id
        in
        let max_stamp =
          List.fold_left
            (fun acc (i : Increment.t) -> max acc i.Increment.stamp)
            min_int plan.Collector.increments
        in
        List.for_all
          (fun (i : Increment.t) -> i.Increment.stamp > max_stamp || in_plan i)
          (State.live_increments st))

let test_appel_prefers_nursery () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* some survivors in the old generation, a busy nursery *)
  let g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:4 in
  Roots.set_global roots g (Value.of_addr a);
  Gc.full_collect gc;
  for _ = 1 to 2_000 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  let st = Gc.state gc in
  match Schedule.choose_plan st ~reason:Beltway.Gc_stats.Heap_full with
  | Some plan ->
    checkb "plan collects only belt 0" true
      (List.for_all
         (fun (i : Increment.t) -> i.Increment.belt = 0)
         plan.Collector.increments);
    checkb "not a full-heap plan" false plan.Collector.full_heap
  | None -> Alcotest.fail "no plan"

let test_empty_nursery_escalates () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:4 in
  Roots.set_global roots g (Value.of_addr a);
  (* empty the nursery into the old generation *)
  Gc.collect gc;
  let st = Gc.state gc in
  match Schedule.choose_plan st ~reason:Beltway.Gc_stats.Heap_full with
  | Some plan ->
    checkb "escalates to the old generation" true
      (List.exists
         (fun (i : Increment.t) -> i.Increment.belt = 1)
         plan.Collector.increments)
  | None -> Alcotest.fail "no plan"

let test_plan_none_on_empty_heap () =
  let gc = gc_of "25.25.100" in
  checkb "nothing collectible" true
    (Schedule.choose_plan (Gc.state gc) ~reason:Beltway.Gc_stats.Heap_full = None)

let test_fifo_takes_oldest () =
  let gc = gc_of "ofm:25" in
  let ty = Gc.register_type gc ~name:"t" in
  (* several increments on the single belt *)
  for _ = 1 to 30_000 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  let st = Gc.state gc in
  let front_stamp =
    match Beltway.Belt.front st.State.belts.(0) with
    | Some i -> i.Increment.stamp
    | None -> Alcotest.fail "empty belt"
  in
  match Schedule.choose_plan st ~reason:Beltway.Gc_stats.Heap_full with
  | Some { Collector.increments = [ i ]; _ } ->
    checki "the globally oldest increment" front_stamp i.Increment.stamp
  | Some _ -> Alcotest.fail "expected a single-increment plan"
  | None -> Alcotest.fail "no plan"

let test_collect_now_records_reason () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  for _ = 1 to 200 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  (match Schedule.collect_now (Gc.state gc) ~reason:Beltway.Gc_stats.Forced with
  | Some record ->
    Alcotest.(check string)
      "reason" "forced"
      (Beltway.Gc_stats.reason_to_string record.Beltway.Gc_stats.reason);
    checkb "not an emergency plan" false record.Beltway.Gc_stats.emergency
  | None -> Alcotest.fail "no collection");
  ()

(* Reserve/schedule interplay: an Appel heap's dynamic-equivalent
   behaviour — the reserve grows with both generations' occupancy. *)
let test_reserve_tracks_occupancy () =
  let gc = gc_of "100.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let r0 = Gc.reserve_frames gc in
  let keep = Array.init 300 (fun _ -> Roots.new_global roots Value.null) in
  for i = 0 to 299 do
    let a = Gc.alloc gc ~ty ~nfields:20 in
    Roots.set_global roots keep.(i) (Value.of_addr a)
  done;
  let r1 = Gc.reserve_frames gc in
  checkb "reserve grew with live data" true (r1 > r0);
  Gc.full_collect gc;
  (* after promotion, reserve ~ old occupancy + pad *)
  let st = Gc.state gc in
  let old_occ = Beltway.Belt.occupancy_frames st.State.belts.(1) in
  let r2 = Gc.reserve_frames gc in
  checkb "reserve covers evacuating the old generation" true (r2 >= old_occ)

let suite =
  [
    QCheck_alcotest.to_alcotest downward_closure_prop;
    ("appel prefers nursery", `Quick, test_appel_prefers_nursery);
    ("empty nursery escalates", `Quick, test_empty_nursery_escalates);
    ("no plan on empty heap", `Quick, test_plan_none_on_empty_heap);
    ("fifo takes oldest", `Quick, test_fifo_takes_oldest);
    ("collect_now records reason", `Quick, test_collect_now_records_reason);
    ("reserve tracks occupancy", `Quick, test_reserve_tracks_occupancy);
  ]
