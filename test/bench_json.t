The bench harness records machine-readable results. A smoke run (tiny
bechamel quota, no figures) must still produce a BENCH_results.json
that passes the harness's own schema check.

  $ beltway-bench --smoke --jobs 2 > /dev/null
  $ beltway-bench --validate BENCH_results.json
  BENCH_results.json: ok

A malformed file is rejected with a non-zero exit.

  $ echo '{"micro": [' > broken.json
  $ beltway-bench --validate broken.json
  broken.json: parse error: unexpected end of input at offset 12
  [1]

  $ echo '{"micro": [], "phases": [{"phase": "micro"}]}' > incomplete.json
  $ beltway-bench --validate incomplete.json
  incomplete.json: entry missing numeric field "seconds"
  [1]

Since beltway-bench/2, every micro entry is keyed by the collector
policy it ran under; a results file without the field is rejected.

  $ echo '{"schema": "beltway-bench/2", "micro": [{"name": "x", "ns_per_run": 1}], "phases": []}' > nopolicy.json
  $ beltway-bench --validate nopolicy.json
  nopolicy.json: entry missing string field "policy"
  [1]

Since beltway-bench/4, the file carries a host header (so scaling rows
are interpretable on whatever box produced them) and the
interpreter-throughput section; both are checked.

  $ echo '{"schema": "beltway-bench/4", "micro": [], "phases": [], "interpreter": []}' > nohost.json
  $ beltway-bench --validate nohost.json
  nohost.json: missing or non-object "host"
  [1]

  $ echo '{"schema": "beltway-bench/4", "micro": [], "phases": [], "host": {"recommended_domain_count": 8}, "interpreter": [{"name": "tak", "engine": "bytecode", "seconds": 0.1}]}' > badinterp.json
  $ beltway-bench --validate badinterp.json
  badinterp.json: entry missing numeric field "ops_per_sec"
  [1]

Since beltway-bench/5, the file names the regression gate it was held
to (the "baseline" thresholds) and carries a profile-output pointer.

  $ echo '{"schema": "beltway-bench/5", "micro": [], "phases": [], "host": {"recommended_domain_count": 8}, "interpreter": []}' > nobaseline.json
  $ beltway-bench --validate nobaseline.json
  nobaseline.json: missing or non-object "baseline"
  [1]

  $ echo '{"schema": "beltway-bench/5", "micro": [], "phases": [], "host": {"recommended_domain_count": 8}, "interpreter": [], "baseline": {"micro_max_ratio": 1.3, "phases_max_ratio": 1.5, "interpreter_min_ratio": 0.9}, "profile": null}' > v5.json
  $ beltway-bench --validate v5.json
  v5.json: ok

Unknown or future schema strings are rejected outright — a validator
that waves through a schema it does not know checks nothing.

  $ echo '{"schema": "beltway-bench/9", "micro": [], "phases": []}' > future.json
  $ beltway-bench --validate future.json
  future.json: unknown schema "beltway-bench/9"
  [1]

Older schema versions are accepted without the newer sections.

  $ echo '{"schema": "beltway-bench/3", "micro": [], "phases": []}' > v3.json
  $ beltway-bench --validate v3.json
  v3.json: ok

Since beltway-bench/6, every micro entry is also keyed by the
reclamation strategy it ran under; a v6 file without the field is
rejected, while the pre-v6 schemas stay accepted without it.

  $ echo '{"schema": "beltway-bench/6", "micro": [{"name": "x", "policy": "beltway", "ns_per_run": 1}], "phases": [], "host": {"recommended_domain_count": 8}, "interpreter": [], "baseline": {"micro_max_ratio": 1.3, "phases_max_ratio": 1.5, "interpreter_min_ratio": 0.9}}' > nostrategy.json
  $ beltway-bench --validate nostrategy.json
  nostrategy.json: entry missing string field "strategy"
  [1]

The repository checks in the results of a real run of this harness;
that file must always validate against the checked-in binary's own
schema checker, so the two cannot drift apart unnoticed.

  $ beltway-bench --validate ../BENCH_results.json
  ../BENCH_results.json: ok
