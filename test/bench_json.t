The bench harness records machine-readable results. A smoke run (tiny
bechamel quota, no figures) must still produce a BENCH_results.json
that passes the harness's own schema check.

  $ beltway-bench --smoke --jobs 2 > /dev/null
  $ beltway-bench --validate BENCH_results.json
  BENCH_results.json: ok

A malformed file is rejected with a non-zero exit.

  $ echo '{"micro": [' > broken.json
  $ beltway-bench --validate broken.json
  broken.json: parse error: unexpected end of input at offset 12
  [1]

  $ echo '{"micro": [], "phases": [{"phase": "micro"}]}' > incomplete.json
  $ beltway-bench --validate incomplete.json
  incomplete.json: entry missing numeric field "seconds"
  [1]

Since beltway-bench/2, every micro entry is keyed by the collector
policy it ran under; a results file without the field is rejected.

  $ echo '{"schema": "beltway-bench/2", "micro": [{"name": "x", "ns_per_run": 1}], "phases": []}' > nopolicy.json
  $ beltway-bench --validate nopolicy.json
  nopolicy.json: entry missing string field "policy"
  [1]
