The bench harness records machine-readable results. A smoke run (tiny
bechamel quota, no figures) must still produce a BENCH_results.json
that passes the harness's own schema check.

  $ beltway-bench --smoke --jobs 2 > /dev/null
  $ beltway-bench --validate BENCH_results.json
  BENCH_results.json: ok

A malformed file is rejected with a non-zero exit.

  $ echo '{"micro": [' > broken.json
  $ beltway-bench --validate broken.json
  broken.json: parse error: unexpected end of input at offset 12
  [1]

  $ echo '{"micro": [], "phases": [{"phase": "micro"}]}' > incomplete.json
  $ beltway-bench --validate incomplete.json
  incomplete.json: entry missing numeric field "seconds"
  [1]

Since beltway-bench/2, every micro entry is keyed by the collector
policy it ran under; a results file without the field is rejected.

  $ echo '{"schema": "beltway-bench/2", "micro": [{"name": "x", "ns_per_run": 1}], "phases": []}' > nopolicy.json
  $ beltway-bench --validate nopolicy.json
  nopolicy.json: entry missing string field "policy"
  [1]

Since beltway-bench/4, the file carries a host header (so scaling rows
are interpretable on whatever box produced them) and the
interpreter-throughput section; both are checked.

  $ echo '{"schema": "beltway-bench/4", "micro": [], "phases": [], "interpreter": []}' > nohost.json
  $ beltway-bench --validate nohost.json
  nohost.json: missing or non-object "host"
  [1]

  $ echo '{"schema": "beltway-bench/4", "micro": [], "phases": [], "host": {"recommended_domain_count": 8}, "interpreter": [{"name": "tak", "engine": "bytecode", "seconds": 0.1}]}' > badinterp.json
  $ beltway-bench --validate badinterp.json
  badinterp.json: entry missing numeric field "ops_per_sec"
  [1]

Older schema versions are accepted without the newer sections.

  $ echo '{"schema": "beltway-bench/3", "micro": [], "phases": []}' > v3.json
  $ beltway-bench --validate v3.json
  v3.json: ok
