(* The reclamation-strategy registry's conformance gate (dune alias
   @strategy).

   Every registered strategy — looked up purely by its registry name,
   with no reference to the modules implementing it — must reclaim a
   real heap soundly on every base configuration in the grid: a
   mirrored random workload under the level-2 (paranoid) sanitizer,
   then a full collection leaving a clean integrity check and
   oracle-exact occupancy. A new registry entry is picked up here
   automatically. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module Strategy = Beltway.Strategy
module State = Beltway.State
module Sanitizer = Beltway_check.Sanitizer
module Trace = Beltway_workload.Trace
module Torture = Beltway_workload.Torture

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse_ok s =
  match Config.parse s with
  | Ok c -> c
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

(* The base configurations every strategy must handle: the two-belt
   semispace-like collector, Appel, and the paper's headline
   three-belt configuration. *)
let base_configs = [ "ss"; "appel"; "25.25.100" ]

(* One strategy on one base config: mirrored random workload under the
   paranoid sanitizer, then a full collection and the oracle's
   verdict. Copying and compacting strategies must end with occupancy
   exactly equal to the oracle's live words; mark-sweep reclaims in
   place, so its dead runs legitimately stay resident as free-list
   fillers and only the direction of the bound is checked. *)
let run_one ~key ~config_s =
  let cs =
    if key = Strategy.default_name then config_s
    else config_s ^ "+strategy:" ^ key
  in
  let config = parse_ok cs in
  let strat =
    match Strategy.resolve config with
    | Ok s -> s
    | Error e -> Alcotest.failf "Strategy.resolve %S: %s" cs e
  in
  checks (cs ^ " resolves to its own registry entry") key (Strategy.name strat);
  let gc = Gc.create ~frame_log_words:8 ~config ~heap_bytes:(768 * 1024) () in
  checks (cs ^ ": Gc.strategy_name agrees") key (Gc.strategy_name gc);
  let san = Sanitizer.attach ~level:Sanitizer.Paranoid gc in
  List.iter
    (fun seed ->
      let tr = Trace.random ~seed ~nroots:8 ~len:2000 in
      match Trace.compare_with_mirror gc tr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: mirror divergence: %s" cs e)
    [ 1; 2 ];
  Gc.full_collect gc;
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: integrity: %s" cs e);
  let retained = Beltway.Oracle.retained_garbage_words gc in
  if strat.State.strategy_moving then
    checki (cs ^ ": full collection reclaims all garbage") 0 retained
  else
    checkb
      (Printf.sprintf "%s: occupancy bounds the oracle (%d filler words)" cs
         retained)
      true (retained >= 0);
  checkb
    (Printf.sprintf "%s: sanitizer clean after %d collections" cs
       (Sanitizer.collections_checked san))
    true (Sanitizer.ok san)

let conformance (i : Strategy.info) () =
  (* The registry's own exemplar first, then the full base grid. *)
  let exemplar = parse_ok i.Strategy.exemplar_config in
  (match Strategy.resolve exemplar with
  | Ok s ->
    checks
      (i.Strategy.exemplar_config ^ " resolves to its own registry entry")
      i.Strategy.key (Strategy.name s)
  | Error e ->
    Alcotest.failf "Strategy.resolve %S: %s" i.Strategy.exemplar_config e);
  List.iter
    (fun config_s -> run_one ~key:i.Strategy.key ~config_s)
    base_configs

let test_resolution_errors () =
  let err cs =
    match Strategy.resolve (parse_ok cs) with
    | Ok _ -> Alcotest.failf "resolve %S unexpectedly succeeded" cs
    | Error e -> e
  in
  checkb "unknown strategy is rejected" true
    (String.length (err "25.25+strategy:nonesuch") > 0);
  checks "no suffix resolves to the default" Strategy.default_name
    (Strategy.name (Result.get_ok (Strategy.resolve (parse_ok "25.25.100"))));
  (* Gc.create surfaces resolution failures as Invalid_argument. *)
  checkb "Gc.create raises on an unknown strategy" true
    (try
       ignore
         (Gc.create
            ~config:(parse_ok "25.25+strategy:nonesuch")
            ~heap_bytes:(64 * 1024) ());
       false
     with Invalid_argument _ -> true)

(* Same convention as [Test_torture]: with [BELTWAY_VERIFY_EVERY=n]
   the full integrity checker runs at every nth completed collection
   (the @strategy alias sets n=3), otherwise only at the end. *)
let verify_every =
  match Sys.getenv_opt "BELTWAY_VERIFY_EVERY" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None)
  | None -> None

let install_verify_every gc =
  match verify_every with
  | None -> ()
  | Some n ->
    let count = ref 0 in
    State.add_hooks (Gc.state gc)
      {
        State.noop_hooks with
        on_collect_end =
          (fun ~full_heap:_ ->
            incr count;
            if !count mod n = 0 then Beltway.Verify.check_exn gc);
      }

(* The adversarial scenarios complete (or OOM) soundly under the
   in-place strategies too, leaving a verifiable heap with no live
   data once the roots are dropped. *)
let test_torture key () =
  List.iter
    (fun (t : Torture.t) ->
      let config = parse_ok ("25.25.100+strategy:" ^ key) in
      let gc =
        Gc.create ~frame_log_words:8 ~config ~heap_bytes:(2048 * 1024) ()
      in
      install_verify_every gc;
      let completed =
        try
          t.Torture.run gc;
          true
        with Gc.Out_of_memory _ -> false
      in
      if completed then begin
        (match Beltway.Verify.check gc with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "%s under %s: integrity: %s" t.Torture.name key e);
        (try Gc.full_collect gc with Gc.Out_of_memory _ -> ());
        checki
          (Printf.sprintf "%s under %s leaves no live data" t.Torture.name key)
          0
          (Beltway.Oracle.live_words gc)
      end)
    Torture.all

let suite =
  List.map
    (fun (i : Strategy.info) ->
      ("strategy conformance: " ^ i.Strategy.key, `Quick, conformance i))
    Strategy.infos
  @ [ ("resolution errors", `Quick, test_resolution_errors) ]
  @ List.map
      (fun key -> ("torture under " ^ key, `Slow, test_torture key))
      [ "marksweep"; "markcompact" ]
