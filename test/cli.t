The command-line surface, end to end.

Interpreted programs run on a Beltway-collected heap:

  $ beltlang -p nqueens
  92

  $ beltlang -p tak -g ss
  7

  $ beltlang --list
  gcbench      Boehm's GCBench (scaled): temporary binary trees built top-down and bottom-up under a long-lived tree
  nqueens      8-queens solution count by list-based backtracking
  list-sort    merge sort over an LCG-generated 400-element list
  queue-churn  imperative bounded ring over a vector, cycled heavily: steady old-to-young stores
  tak          the Takeuchi function: deep recursion, heavy frame churn
  sieve        primes below 1000 by repeated closure-based list filtering
  dict         association-list dictionary under insert/update/lookup load

A program from a file:

  $ cat > hello.bl <<'EOF'
  > (define (square x) (* x x))
  > (print (square 12))
  > EOF
  $ beltlang hello.bl
  144

Bad collector specifications are rejected:

  $ beltlang -p tak -g bogus
  error: unrecognised collector "bogus" (try: ss, appel, appel3, fixed:N, ofm:N, of:N, X.Y, X.Y.100)
  [2]

The collector-policy registry, and selection by name:

  $ beltway-run --policy list | cut -c1-40
  beltway      belt-major generational sch
               exemplar: 25.25.100
  older-first  global-FIFO scheduling unde
               exemplar: of:25
  sweep        beltway scheduling whose ev
               exemplar: 25.25+policy:swee

  $ beltway-run -g 25.25 --policy sweep -b jess -H 1024 -q --verify
  heap integrity: OK

  $ beltway-run --policy nonesuch -b jess
  error: unknown policy "nonesuch" (registered: beltway, older-first, sweep)
  [2]

Synthetic benchmarks with heap-integrity verification:

  $ beltway-run -g 25.25.100 -b raytrace -H 1024 -q --verify
  heap integrity: OK

  $ beltway-run -g of:25 -b jess -H 1024 -q --verify
  heap integrity: OK

A heap that is too small fails like a benchmark in the paper:

  $ beltway-run -g appel -b pseudojbb -H 64 -q 2>&1 | head -c 13
  OUT OF MEMORY

The experiment registry:

  $ beltway-experiments --list
  table1
  fig1
  fig5
  fig6
  fig7
  fig8
  fig9
  fig10
  fig11
  ablate
  xy
  interp
  sensitivity
