The GC flight recorder, end to end: a traced workload run and a traced
Beltlang program must both produce Chrome trace_event and metrics JSON
files that pass the bench harness's schema checks.

  $ beltway-run -b db -H 1920 -q --trace db.trace.json --metrics db.metrics.json
  $ beltway-bench --validate db.trace.json
  db.trace.json: ok
  $ beltway-bench --validate db.metrics.json
  db.metrics.json: ok

With tracing on, beltway-run reports the pause log and the cost-model
cross-check alongside the usual summary:

  $ beltway-run -b db -H 1920 --trace db2.trace.json | grep -cE 'MMU cross-check|trace:'
  2

The trace's GC pause spans agree 1:1 with the collection log: the span
count equals the "collections:" line of the stats summary.

  $ beltway-run -b db -H 1920 --trace db3.trace.json | sed -n 's/^collections: \([0-9]*\) .*/\1/p'
  13
  $ grep -c '"cat": "gc",' db3.trace.json
  13

BELTWAY_TRACE is the environment spelling of --trace:

  $ BELTWAY_TRACE=env.trace.json beltway-run -b db -H 1920 -q
  $ beltway-bench --validate env.trace.json
  env.trace.json: ok

The Beltlang interpreter exports the same way:

  $ beltlang -p queue-churn --trace bl.trace.json --metrics bl.metrics.json
  20000
  64
  $ beltway-bench --validate bl.trace.json
  bl.trace.json: ok
  $ beltway-bench --validate bl.metrics.json
  bl.metrics.json: ok

Tracing must not perturb the simulation: a traced and an untraced run
print byte-identical statistics (wall clock aside, everything the
summary reports is allocation-clock deterministic).

  $ beltway-run -b db -H 1920 -q --verify --trace det.trace.json > traced.txt
  $ beltway-run -b db -H 1920 -q --verify > plain.txt
  $ diff plain.txt traced.txt

Malformed trace and metrics files are rejected by the validator:

  $ echo '{"traceEvents": [{"ph": "X"}]}' > broken.trace.json
  $ beltway-bench --validate broken.trace.json
  broken.trace.json: entry missing string field "name"
  [1]

  $ echo '{"schema": "beltway-metrics/1", "counters": {}, "gauges": {}}' > broken.metrics.json
  $ beltway-bench --validate broken.metrics.json
  broken.metrics.json: missing or non-object "histograms"
  [1]
