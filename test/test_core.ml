(* White-box tests for the collector's building blocks: increments,
   belts, remembered sets, frame metadata, the write-barrier predicate
   and the copy reserve. *)

module Increment = Beltway.Increment
module Belt = Beltway.Belt
module Remset = Beltway.Remset
module Frame_info = Beltway_check.Frame_info
module State = Beltway.State
module Config = Beltway.Config
module Gc = Beltway.Gc

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- Increment ---- *)

let mem () = Memory.create ~frame_log_words:6 ~max_frames:64 (* 64-word frames *)

let inc ?(bound = None) () =
  Increment.create ~id:1 ~belt:0 ~stamp:7 ~bound_frames:bound

let test_increment_bump () =
  let m = mem () in
  let i = inc () in
  checkb "no room before a frame" true (Increment.try_bump i ~size:4 = None);
  Increment.add_frame i m (Memory.alloc_frame m);
  let a = Option.get (Increment.try_bump i ~size:10) in
  let b = Option.get (Increment.try_bump i ~size:10) in
  checki "bump is contiguous" (a + 10) b;
  checki "words used" 20 (Increment.words_used i);
  checki "objects" 2 i.Increment.objects

let test_increment_frame_overflow () =
  let m = mem () in
  let i = inc () in
  Increment.add_frame i m (Memory.alloc_frame m);
  (* fill the 64-word frame with 60 words; a 10-word bump must fail *)
  ignore (Increment.try_bump i ~size:60);
  checkb "doesn't fit" true (Increment.try_bump i ~size:10 = None);
  Increment.add_frame i m (Memory.alloc_frame m);
  checkb "fits in new frame" true (Increment.try_bump i ~size:10 <> None);
  checki "two frames" 2 (Increment.frame_count i);
  (* 4 words wasted at the first frame's seam *)
  checki "waste" (128 - 70) (Increment.wasted_words i m)

let test_increment_bound_seal () =
  let m = mem () in
  let i = inc ~bound:(Some 1) () in
  Increment.add_frame i m (Memory.alloc_frame m);
  checkb "at bound" true (Increment.at_bound i);
  Alcotest.check_raises "add beyond bound" (Invalid_argument "Increment.add_frame: at bound")
    (fun () -> Increment.add_frame i m (Memory.alloc_frame m));
  Increment.seal i;
  checkb "sealed rejects bump" true (Increment.try_bump i ~size:2 = None)

(* Write objects through the real object model so scan can size them. *)
let put_obj m i nfields =
  let size = Object_model.size_words ~nfields in
  match Increment.try_bump i ~size with
  | Some a ->
    Object_model.init m a ~tib:Value.null ~nfields;
    Some a
  | None -> None

let test_increment_scan_over_seams () =
  let m = mem () in
  let i = inc () in
  let expected = ref [] in
  let rng = Beltway_util.Prng.create ~seed:99 in
  (* allocate ~5 frames of objects with random sizes, crossing seams *)
  for _ = 1 to 60 do
    let nfields = Beltway_util.Prng.int_in rng 0 20 in
    match put_obj m i nfields with
    | Some a -> expected := a :: !expected
    | None ->
      Increment.add_frame i m (Memory.alloc_frame m);
      let a = Option.get (put_obj m i nfields) in
      expected := a :: !expected
  done;
  let scanned = ref [] in
  Increment.iter_objects i m (fun a -> scanned := a :: !scanned);
  Alcotest.(check (list int)) "scan visits every object in order" (List.rev !expected)
    (List.rev !scanned)

let test_increment_scan_pos_frontier () =
  let m = mem () in
  let i = inc () in
  Increment.add_frame i m (Memory.alloc_frame m);
  ignore (put_obj m i 3);
  let pos = Increment.scan_pos i in
  checkb "frontier has nothing pending" false (Increment.scan_pending i m pos);
  let a = Option.get (put_obj m i 2) in
  checkb "new object pending" true (Increment.scan_pending i m pos);
  checki "scan_step returns it" a (Increment.scan_step i m pos);
  checkb "caught up" false (Increment.scan_pending i m pos)

(* ---- Belt ---- *)

let mk_inc id stamp = Increment.create ~id ~belt:0 ~stamp ~bound_frames:None

let test_belt_fifo () =
  let b = Belt.create ~index:0 in
  checkb "empty" true (Belt.is_empty b);
  let i1 = mk_inc 1 10 and i2 = mk_inc 2 20 and i3 = mk_inc 3 30 in
  Belt.push_back b i1;
  Belt.push_back b i2;
  Belt.push_back b i3;
  checki "length" 3 (Belt.length b);
  checki "front oldest" 1 (Option.get (Belt.front b)).Increment.id;
  checki "back youngest" 3 (Option.get (Belt.back b)).Increment.id;
  Belt.remove b i2;
  checki "middle removal keeps order (front)" 1 (Option.get (Belt.front b)).Increment.id;
  checki "middle removal keeps order (back)" 3 (Option.get (Belt.back b)).Increment.id;
  Alcotest.check_raises "removing absent" (Invalid_argument "Belt.remove: increment not on belt")
    (fun () -> Belt.remove b i2)

let test_belt_swap () =
  let a = Belt.create ~index:0 and c = Belt.create ~index:1 in
  let i1 = mk_inc 1 10 in
  Belt.push_back a i1;
  Belt.swap_contents a c;
  checkb "a empty after swap" true (Belt.is_empty a);
  checki "c has the increment" 1 (Option.get (Belt.front c)).Increment.id;
  checki "increment belt index rewritten" 1 i1.Increment.belt

(* ---- Remset ---- *)

let test_remset_insert_iter () =
  let r = Remset.create () in
  Remset.insert r ~src_frame:5 ~tgt_frame:2 ~slot:100;
  Remset.insert r ~src_frame:5 ~tgt_frame:2 ~slot:104;
  Remset.insert r ~src_frame:6 ~tgt_frame:3 ~slot:200;
  checki "entries" 3 (Remset.total_entries r);
  checki "sets" 2 (Remset.sets r);
  let hits = ref [] in
  Remset.iter_into r ~in_plan:(fun f -> f = 2) (fun ~slot -> hits := slot :: !hits);
  Alcotest.(check (list int)) "only target-2 slots" [ 100; 104 ] (List.sort compare !hits);
  (* a source inside the plan is skipped: the scan finds those *)
  let hits = ref [] in
  Remset.iter_into r ~in_plan:(fun f -> f = 2 || f = 5) (fun ~slot -> hits := slot :: !hits);
  Alcotest.(check (list int)) "in-plan sources skipped" [] !hits

let test_remset_drop_frame () =
  let r = Remset.create () in
  Remset.insert r ~src_frame:5 ~tgt_frame:2 ~slot:100;
  Remset.insert r ~src_frame:2 ~tgt_frame:1 ~slot:50;
  Remset.insert r ~src_frame:7 ~tgt_frame:6 ~slot:70;
  Remset.drop_frame r 2;
  checki "sets touching frame 2 gone" 1 (Remset.total_entries r);
  checkb "unrelated survives" true
    (Remset.mem_slot r ~src_frame:7 ~tgt_frame:6 ~slot:70)

let test_remset_dedup () =
  let r = Remset.create ~dedup_threshold:8 () in
  for _ = 1 to 100 do
    Remset.insert r ~src_frame:1 ~tgt_frame:0 ~slot:42
  done;
  checkb "duplicates compacted" true (Remset.total_entries r < 20);
  checki "inserts counted raw" 100 (Remset.inserts r);
  checkb "slot retained" true (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:42)

let test_remset_mem_slot_lazy_index () =
  let r = Remset.create ~dedup_threshold:8 () in
  Remset.insert r ~src_frame:1 ~tgt_frame:0 ~slot:10;
  checkb "present" true (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:10);
  checkb "absent" false (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:11);
  (* inserts after the index was first built must become visible *)
  Remset.insert r ~src_frame:1 ~tgt_frame:0 ~slot:11;
  checkb "late insert visible" true
    (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:11);
  (* push the set over the dedup threshold: compaction must rebuild the
     index without losing or inventing slots *)
  for _ = 1 to 50 do
    Remset.insert r ~src_frame:1 ~tgt_frame:0 ~slot:12
  done;
  checkb "entries compacted" true (Remset.total_entries r < 10);
  checkb "slot survives dedup" true
    (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:12);
  checkb "early slot survives dedup" true
    (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:10);
  checkb "still no false positive" false
    (Remset.mem_slot r ~src_frame:1 ~tgt_frame:0 ~slot:13)

(* ---- Frame_info ---- *)

let test_frame_info () =
  let fi = Frame_info.create () in
  checki "unset stamp" Frame_info.no_stamp (Frame_info.stamp fi 12);
  Frame_info.set fi ~frame:12 ~stamp:99 ~incr:4;
  checki "stamp" 99 (Frame_info.stamp fi 12);
  checki "incr" 4 (Frame_info.incr_of fi 12);
  Frame_info.restamp fi ~frame:12 ~stamp:100;
  checki "restamped" 100 (Frame_info.stamp fi 12);
  Frame_info.clear fi ~frame:12;
  checki "cleared" Frame_info.no_stamp (Frame_info.stamp fi 12);
  (* growth beyond initial capacity *)
  Frame_info.set fi ~frame:5000 ~stamp:1 ~incr:1;
  checki "grown" 1 (Frame_info.stamp fi 5000)

(* ---- Write barrier predicate & stamps ---- *)

let gc_of config_str heap_kb =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~frame_log_words:8 ~config ~heap_bytes:(heap_kb * 1024) ()

let test_barrier_unidirectional () =
  let gc = gc_of "25.25.100" 256 in
  let st = Gc.state gc in
  (* fabricate two frames with ordered stamps *)
  let ft = st.State.ftab in
  Beltway.Frame_table.set ft ~frame:40 ~stamp:100 ~incr:0 ~pinned:false;
  Beltway.Frame_table.set ft ~frame:41 ~stamp:200 ~incr:1 ~pinned:false;
  checkb "young->old remembered (old collected later? no)" false
    (Beltway.Write_barrier.would_remember st ~src_frame:40 ~tgt_frame:41);
  checkb "old->young remembered" true
    (Beltway.Write_barrier.would_remember st ~src_frame:41 ~tgt_frame:40);
  checkb "intra-frame never" false
    (Beltway.Write_barrier.would_remember st ~src_frame:40 ~tgt_frame:40)

let test_barrier_counters_and_boot_target () =
  let gc = gc_of "appel+nofilter" 256 in
  let ty = Gc.register_type gc ~name:"t" in
  let a = Gc.alloc gc ~ty ~nfields:2 in
  (* the tib write took the barrier: boot targets are never remembered *)
  let stats = Gc.stats gc in
  checki "tib write barrier fast" 1 stats.Beltway.Gc_stats.barrier_fast;
  checki "no remembering" 0 stats.Beltway.Gc_stats.barrier_slow;
  (* an intra-increment pointer store: fast path *)
  Gc.write gc a 0 (Value.of_addr a);
  checki "intra-frame fast" 2 stats.Beltway.Gc_stats.barrier_fast

let test_nursery_filter_counts () =
  let gc = gc_of "25.25.100" 256 in
  let ty = Gc.register_type gc ~name:"t" in
  ignore (Gc.alloc gc ~ty ~nfields:2);
  let stats = Gc.stats gc in
  checki "filtered, not fast" 1 stats.Beltway.Gc_stats.barrier_filtered;
  checki "no fast path" 0 stats.Beltway.Gc_stats.barrier_fast

let test_stamps_belt_major_vs_fifo () =
  let gc = gc_of "25.25.100" 256 in
  let st = Gc.state gc in
  let s0 = State.stamp_for_belt st 0 in
  let s1 = State.stamp_for_belt st 1 in
  let s0' = State.stamp_for_belt st 0 in
  checkb "belt-major: belt0 < belt1 regardless of creation order" true
    (s0 < s1 && s0' < s1);
  let gc = gc_of "ofm:25" 256 in
  let st = Gc.state gc in
  let a = State.stamp_for_belt st 0 in
  let b = State.stamp_for_belt st 0 in
  checkb "fifo: creation order" true (a < b)

let test_bof_flip_epoch () =
  let gc = gc_of "of:25" 256 in
  let st = Gc.state gc in
  let before = State.stamp_for_belt st 0 in
  State.flip_belts st;
  let after = State.stamp_for_belt st 0 in
  checkb "flip advances the epoch band" true
    (after / Frame_info.priority_unit > before / Frame_info.priority_unit)

(* ---- Copy reserve ---- *)

let test_reserve_semi_space_half () =
  let gc = gc_of "ss" 256 in
  let ty = Gc.register_type gc ~name:"t" in
  (* fill ~40% of the heap; reserve must track occupancy + pad *)
  let heap = Gc.heap_frames gc in
  while Gc.frames_used gc < 2 * heap / 5 do
    ignore (Gc.alloc gc ~ty ~nfields:20)
  done;
  let r = Gc.reserve_frames gc in
  checkb "reserve ~ occupancy" true
    (r >= Gc.frames_used gc && r <= Gc.frames_used gc + 8)

let test_reserve_half_mode () =
  let gc = gc_of "appel" 256 in
  let r = Gc.reserve_frames gc in
  checkb "fixed >= half" true (r >= Gc.heap_frames gc / 2)

let test_reserve_small_when_increments_small () =
  let gc = gc_of "25.25.100" 1024 in
  let ty = Gc.register_type gc ~name:"t" in
  for _ = 1 to 2000 do
    ignore (Gc.alloc gc ~ty ~nfields:6)
  done;
  (* with bounded increments the reserve stays near one increment, far
     below half the heap (the paper's utilization advantage) *)
  checkb "reserve well below half" true
    (Gc.reserve_frames gc < Gc.heap_frames gc / 3)

let suite =
  [
    ("increment bump", `Quick, test_increment_bump);
    ("increment frame overflow", `Quick, test_increment_frame_overflow);
    ("increment bound/seal", `Quick, test_increment_bound_seal);
    ("increment scan over seams", `Quick, test_increment_scan_over_seams);
    ("increment scan frontier", `Quick, test_increment_scan_pos_frontier);
    ("belt fifo", `Quick, test_belt_fifo);
    ("belt swap (BOF flip)", `Quick, test_belt_swap);
    ("remset insert/iter", `Quick, test_remset_insert_iter);
    ("remset drop frame", `Quick, test_remset_drop_frame);
    ("remset dedup", `Quick, test_remset_dedup);
    ("remset mem_slot lazy index", `Quick, test_remset_mem_slot_lazy_index);
    ("frame info", `Quick, test_frame_info);
    ("barrier unidirectional", `Quick, test_barrier_unidirectional);
    ("barrier counters/boot", `Quick, test_barrier_counters_and_boot_target);
    ("nursery filter counts", `Quick, test_nursery_filter_counts);
    ("stamps belt-major vs fifo", `Quick, test_stamps_belt_major_vs_fifo);
    ("bof flip epoch", `Quick, test_bof_flip_epoch);
    ("reserve: semi-space", `Quick, test_reserve_semi_space_half);
    ("reserve: half mode", `Quick, test_reserve_half_mode);
    ("reserve: small increments", `Quick, test_reserve_small_when_increments_small);
  ]
