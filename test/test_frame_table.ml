(* The flat frame table behind the collection fast path: the packed
   metadata word must round-trip, the table must agree with the legacy
   two-array Frame_info under any operation sequence, and after real GC
   workloads every frame's word must describe its owning increment. *)

module Frame_table = Beltway.Frame_table
module Frame_info = Beltway_check.Frame_info
module Gc = Beltway.Gc
module Config = Beltway.Config
module State = Beltway.State
module Increment = Beltway.Increment

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- packed word round-trip ---- *)

let pack_roundtrip_prop =
  QCheck.Test.make ~name:"packed meta word round-trips" ~count:500
    QCheck.(triple (int_range (-1) (1 lsl 20)) bool bool)
    (fun (incr, pinned, in_plan) ->
      let m = Frame_table.pack ~incr ~pinned ~in_plan in
      Frame_table.meta_incr m = incr
      && Frame_table.meta_pinned m = pinned
      && Frame_table.meta_in_plan m = in_plan)

let test_pack_corners () =
  checki "no_meta decodes to no increment" (-1)
    (Frame_table.meta_incr Frame_table.no_meta);
  checkb "no_meta not pinned" false (Frame_table.meta_pinned Frame_table.no_meta);
  checkb "no_meta not in plan" false
    (Frame_table.meta_in_plan Frame_table.no_meta);
  (* the boot-space owner sentinel *)
  let m = Frame_table.pack ~incr:(-1) ~pinned:false ~in_plan:false in
  checki "incr -1 survives packing" (-1) (Frame_table.meta_incr m)

(* ---- agreement with the legacy Frame_info under random ops ---- *)

type op =
  | Set of int * int * int (* frame, stamp, incr *)
  | Restamp of int * int (* frame, stamp *)
  | Clear of int (* frame *)

let op_gen =
  QCheck.Gen.(
    let frame = int_range 0 300 in
    oneof
      [
        map3 (fun f s i -> Set (f, s, i)) frame (int_range 0 10_000)
          (int_range 0 500);
        map2 (fun f s -> Restamp (f, s)) frame (int_range 0 10_000);
        map (fun f -> Clear f) frame;
      ])

let apply_both ft fi set_frames op =
  match op with
  | Set (frame, stamp, incr) ->
    Frame_table.set ft ~frame ~stamp ~incr ~pinned:false;
    Frame_info.set fi ~frame ~stamp ~incr;
    Hashtbl.replace set_frames frame ()
  | Restamp (frame, stamp) ->
    Frame_table.restamp ft ~frame ~stamp;
    Frame_info.restamp fi ~frame ~stamp
  | Clear frame ->
    Frame_table.clear ft ~frame;
    Frame_info.clear fi ~frame

let agreement_prop =
  QCheck.Test.make
    ~name:"frame table agrees with legacy Frame_info under random ops" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 120) op_gen))
    (fun ops ->
      let ft = Frame_table.create () in
      let fi = Frame_info.create () in
      let set_frames = Hashtbl.create 16 in
      List.iter (apply_both ft fi set_frames) ops;
      (* Probe every frame ever touched plus a band of never-touched
         ones (exercising the out-of-capacity defaults). *)
      let ok = ref true in
      for frame = 0 to 310 do
        if Frame_table.stamp ft frame <> Frame_info.stamp fi frame then ok := false;
        if Frame_table.incr_of ft frame <> Frame_info.incr_of fi frame then
          ok := false;
        (* plain sets never pin or plan a frame *)
        if Frame_table.pinned ft frame || Frame_table.in_plan ft frame then
          ok := false
      done;
      (* far beyond both tables' capacity *)
      !ok
      && Frame_table.stamp ft 100_000 = Frame_table.no_stamp
      && Frame_table.incr_of ft 100_000 = -1)

let test_in_plan_bit_is_orthogonal () =
  let ft = Frame_table.create () in
  Frame_table.set ft ~frame:7 ~stamp:42 ~incr:3 ~pinned:true;
  Frame_table.set_in_plan ft ~frame:7 true;
  checki "stamp unaffected by plan bit" 42 (Frame_table.stamp ft 7);
  checki "incr unaffected by plan bit" 3 (Frame_table.incr_of ft 7);
  checkb "pinned unaffected by plan bit" true (Frame_table.pinned ft 7);
  checkb "in plan" true (Frame_table.in_plan ft 7);
  Frame_table.restamp ft ~frame:7 ~stamp:43;
  checkb "restamp preserves plan bit" true (Frame_table.in_plan ft 7);
  Frame_table.set_in_plan ft ~frame:7 false;
  checkb "plan bit cleared" false (Frame_table.in_plan ft 7);
  checkb "pinned survives plan-bit clear" true (Frame_table.pinned ft 7);
  (* re-granting a frame resets the plan bit *)
  Frame_table.set_in_plan ft ~frame:7 true;
  Frame_table.set ft ~frame:7 ~stamp:1 ~incr:9 ~pinned:false;
  checkb "set clears plan bit" false (Frame_table.in_plan ft 7)

(* ---- agreement with the increments after real GC workloads ---- *)

(* After any mix of allocation, mutation and collections, every frame
   of every live increment must carry that increment's id, stamp and
   pinnedness, with the plan bit clear (no collection in progress). *)
let check_table_describes_heap cs gc =
  let st = Gc.state gc in
  let ft = st.State.ftab in
  List.iter
    (fun (inc : Increment.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: inc %d not left in_plan" cs inc.Increment.id)
        false inc.Increment.in_plan;
      Alcotest.(check bool)
        (Printf.sprintf "%s: inc %d not left marked" cs inc.Increment.id)
        false inc.Increment.gc_mark;
      Beltway_util.Vec.iter
        (fun frame ->
          checki
            (Printf.sprintf "%s: frame %d owner" cs frame)
            inc.Increment.id (Frame_table.incr_of ft frame);
          checki
            (Printf.sprintf "%s: frame %d stamp" cs frame)
            inc.Increment.stamp (Frame_table.stamp ft frame);
          checkb
            (Printf.sprintf "%s: frame %d pinned bit" cs frame)
            inc.Increment.pinned
            (Frame_table.pinned ft frame);
          checkb
            (Printf.sprintf "%s: frame %d not in plan" cs frame)
            false
            (Frame_table.in_plan ft frame))
        inc.Increment.frames)
    (State.live_increments st)

let test_table_vs_heap_under_workloads () =
  List.iter
    (fun cs ->
      for seed = 1 to 6 do
        let config = Result.get_ok (Config.parse cs) in
        let gc =
          Gc.create ~frame_log_words:8 ~config ~heap_bytes:(192 * 1024) ()
        in
        let tr = Beltway_workload.Trace.random ~seed ~nroots:10 ~len:2000 in
        (match Beltway_workload.Trace.compare_with_mirror gc tr with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d under %s: %s" seed cs e);
        check_table_describes_heap cs gc;
        (* and again after a forced full collection moved everything *)
        Gc.full_collect gc;
        check_table_describes_heap cs gc
      done)
    [ "ss"; "appel"; "25.25.100"; "25.25.100+cards"; "25.25.100+los:48" ]

let suite =
  [
    QCheck_alcotest.to_alcotest pack_roundtrip_prop;
    ("pack corners", `Quick, test_pack_corners);
    QCheck_alcotest.to_alcotest agreement_prop;
    ("in-plan bit orthogonal", `Quick, test_in_plan_bit_is_orthogonal);
    ( "table describes heap under workloads",
      `Quick,
      test_table_vs_heap_under_workloads );
  ]
