let () =
  Alcotest.run "beltway"
    [
      ("util", Test_util.suite);
      ("heap", Test_heap.suite);
      ("config", Test_config.suite);
      ("policy", Test_policy.suite);
      ("strategy", Test_strategy.suite);
      ("core", Test_core.suite);
      ("frame table", Test_frame_table.suite);
      ("schedule", Test_schedule.suite);
      ("gc", Test_gc.suite);
      ("los", Test_los.suite);
      ("cards", Test_cards.suite);
      ("trace", Test_trace.suite);
      ("workload", Test_workload.suite);
      ("torture", Test_torture.suite);
      ("check", Test_check.suite);
      ("beltlang", Test_beltlang.suite);
      ("bytecode", Test_bytecode.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("profiler", Test_profiler.suite);
      ("parallel gc", Test_parallel_gc.suite);
    ]
