(* The GC flight recorder: ring semantics, 1:1 agreement between
   recorded pause spans and the collection log, exporter shapes, and
   the MMU cross-check. *)

module Gc = Beltway.Gc
module Gc_stats = Beltway.Gc_stats
module State = Beltway.State
module Config = Beltway.Config
module Ring = Beltway_obs.Ring
module Metrics = Beltway_obs.Metrics
module Recorder = Beltway_obs.Recorder
module Chrome_trace = Beltway_obs.Chrome_trace
module Mmu = Beltway_sim.Mmu
module Json = Beltway_util.Json

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let cfg s = Result.get_ok (Config.parse s)

(* A small list-churning mutator that provokes a few dozen collections
   (including the closing full collection) in a 256 KB heap. *)
let traced_run ?capacity () =
  let gc = Gc.create ~config:(cfg "25.25.100") ~heap_bytes:(256 * 1024) () in
  let recorder = Recorder.attach ?capacity gc in
  let ty = Gc.register_type gc ~name:"obs.test" in
  let roots = Roots.new_global (Gc.roots gc) Value.null in
  for i = 1 to 80_000 do
    let a = Gc.alloc gc ~ty ~nfields:2 in
    Gc.write gc a 0 (Value.of_int i);
    if i mod 64 = 0 then Roots.set_global (Gc.roots gc) roots (Value.of_addr a)
    else Gc.write gc a 1 (Roots.get_global (Gc.roots gc) roots)
  done;
  Gc.full_collect gc;
  Recorder.detach recorder;
  (gc, recorder)

(* ---- Ring ---- *)

let test_ring () =
  let r = Ring.create ~capacity:4 ~dummy:0 in
  checkb "fresh is empty" true (Ring.is_empty r);
  for i = 1 to 10 do
    Ring.push r i
  done;
  checki "length capped" 4 (Ring.length r);
  checki "dropped counts overflow" 6 (Ring.dropped r);
  checki "oldest survivor" 7 (Ring.get r 0);
  checki "newest" 10 (Ring.get r 3);
  Alcotest.(check (list int)) "oldest-first" [ 7; 8; 9; 10 ] (Ring.to_list r);
  checki "fold" 34 (Ring.fold r ~init:0 ~f:( + ));
  Ring.clear r;
  checki "cleared" 0 (Ring.length r);
  checki "clear resets dropped" 0 (Ring.dropped r);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0 ~dummy:0))

(* ---- pause spans vs the collection log ---- *)

let test_pause_agreement () =
  let gc, r = traced_run () in
  let stats = Gc.stats gc in
  let gcs = Gc_stats.gcs stats in
  checkb "run collected" true (gcs > 10);
  checki "recorder saw every pause" gcs (Recorder.collections r);
  checki "pause arrays aligned" gcs (Array.length (Recorder.pause_durs_us r));
  let collection_events =
    List.filter
      (function Recorder.Collection _ -> true | _ -> false)
      (Recorder.events r)
  in
  checki "nothing dropped" 0 (Recorder.dropped r);
  checki "one span per logged collection" gcs (List.length collection_events);
  List.iteri
    (fun i ev ->
      match ev with
      | Recorder.Collection { n; reason; emergency; clock_words; copied_words; _ }
        ->
        let logged = Beltway_util.Vec.get stats.Gc_stats.collections i in
        checki "ordinal" logged.Gc_stats.n n;
        checkb "reason" true (logged.Gc_stats.reason = reason);
        checkb "emergency" logged.Gc_stats.emergency emergency;
        checki "clock" logged.Gc_stats.clock_words clock_words;
        checki "copied" logged.Gc_stats.copied_words copied_words
      | _ -> ())
    collection_events;
  (* Pause starts ascend and durations are non-negative. *)
  let starts = Recorder.pause_starts_us r in
  let durs = Recorder.pause_durs_us r in
  Array.iteri
    (fun i s ->
      checkb "dur >= 0" true (durs.(i) >= 0.0);
      if i > 0 then checkb "starts ascend" true (s >= starts.(i - 1)))
    starts

let test_phase_spans () =
  let gc, r = traced_run () in
  let gcs = Gc_stats.gcs (Gc.stats gc) in
  let seen = ref 0 in
  let saw_cheney = ref false and saw_free = ref false in
  List.iter
    (function
      | Recorder.Phase { n; phase; dur_us; _ } ->
        incr seen;
        checkb "phase belongs to a logged GC" true (n >= 1 && n <= gcs);
        checkb "phase dur >= 0" true (dur_us >= 0.0);
        (match phase with
        | Gc_stats.Phase_cheney -> saw_cheney := true
        | Gc_stats.Phase_free -> saw_free := true
        | _ -> ())
      | _ -> ())
    (Recorder.events r);
  checkb "phase spans recorded" true (!seen > 0);
  checkb "cheney phase present" true !saw_cheney;
  checkb "free phase present" true !saw_free

let test_ring_overflow_keeps_pauses () =
  let gc, r = traced_run ~capacity:8 () in
  let gcs = Gc_stats.gcs (Gc.stats gc) in
  checki "ring clamps retained events" 8 (Recorder.event_count r);
  checkb "overflow counted" true (Recorder.dropped r > 0);
  (* The pause log lives outside the ring, so the cross-check still
     sees every collection. *)
  checki "pauses survive overflow" gcs (Recorder.collections r)

let test_detach_restores_zero_cost () =
  let gc, _ = traced_run () in
  checkb "no hooks left installed" true ((Gc.state gc).State.hooks = [])

(* ---- exporters ---- *)

let test_metrics_json () =
  let gc, r = traced_run () in
  let gcs = Gc_stats.gcs (Gc.stats gc) in
  let m = Recorder.metrics r in
  checki "gc.collections counter" gcs (Metrics.counter m "gc.collections");
  let json = Metrics.to_json m in
  Alcotest.(check (option string))
    "schema" (Some "beltway-metrics/1")
    (Option.bind (Json.member "schema" json) Json.to_str);
  let hist name field =
    Option.bind (Json.member "histograms" json) (fun h ->
        Option.bind (Json.member name h) (fun e ->
            Option.bind (Json.member field e) Json.to_float))
  in
  Alcotest.(check (option (float 1e-9)))
    "pause_ns count" (Some (float_of_int gcs))
    (hist "gc.pause_ns" "count");
  checkb "p99 present" true (hist "gc.pause_ns" "p99" <> None);
  checkb "occupancy histogram present" true
    (hist "increment.occupancy_frames" "count" <> None);
  (* Round-trips through the parser. *)
  checkb "parses back" true
    (match Json.of_string (Json.to_string ~indent:true json) with
    | _ -> true
    | exception Json.Parse_error _ -> false)

let test_chrome_trace () =
  let gc, r = traced_run () in
  let gcs = Gc_stats.gcs (Gc.stats gc) in
  let json = Chrome_trace.to_json ~process_name:"obs-test" r in
  let events =
    Option.get (Option.bind (Json.member "traceEvents" json) Json.to_list)
  in
  let str e name = Option.bind (Json.member name e) Json.to_str in
  let gc_spans =
    List.filter (fun e -> str e "ph" = Some "X" && str e "cat" = Some "gc") events
  in
  checki "one GC span per collection" gcs (List.length gc_spans);
  List.iter
    (fun e ->
      checkb "span has ts" true (Json.member "ts" e <> None);
      checkb "span has dur" true (Json.member "dur" e <> None))
    gc_spans;
  let thread_names =
    List.filter_map
      (fun e ->
        if str e "ph" = Some "M" && str e "name" = Some "thread_name" then
          Option.bind (Json.member "args" e) (fun a ->
              Option.bind (Json.member "name" a) Json.to_str)
        else None)
      events
  in
  checkb "mutator track" true (List.mem "mutator" thread_names);
  checkb "belt tracks" true (List.exists (fun n -> n <> "mutator") thread_names)

(* ---- MMU cross-check ---- *)

let test_mmu_of_pauses () =
  let tl =
    Mmu.of_pauses ~starts:[| 0.0; 10.0 |] ~durs:[| 2.0; 2.0 |] ~total:12.0 ()
  in
  checki "pause count" 2 (Mmu.pause_count tl);
  checkf "max pause" 2.0 (Mmu.max_pause tl);
  checkf "utilization" (8.0 /. 12.0) (Mmu.utilization tl);
  (* A window the size of one pause can be fully eaten by it. *)
  checkf "mmu at pause size" 0.0 (Mmu.mmu tl ~window:2.0)

let test_crosscheck_zero_drift () =
  (* Recorded durations that are an exact rescaling of the model's
     (different units, same shape) must report zero drift. *)
  let starts = [| 0.0; 10.0; 25.0 |] and durs = [| 1.0; 2.0; 3.0 |] in
  let tl = Mmu.of_pauses ~starts ~durs () in
  let recorded = Array.map (fun d -> d *. 1000.0) durs in
  let d = Mmu.crosscheck tl ~recorded_durs:recorded in
  checki "compared all" 3 d.Mmu.compared;
  checkf "mean drift" 0.0 d.Mmu.mean_share_dev;
  checkf "max drift" 0.0 d.Mmu.max_share_dev

let test_crosscheck_real_run () =
  let gc, r = traced_run () in
  let stats = Gc.stats gc in
  let tl = Mmu.timeline Beltway_sim.Cost_model.default stats in
  let d = Mmu.crosscheck tl ~recorded_durs:(Recorder.pause_durs_us r) in
  checki "model and recorder agree on pause count" d.Mmu.model_pauses
    d.Mmu.recorded_pauses;
  checki "all pauses compared" (Gc_stats.gcs stats) d.Mmu.compared;
  checkb "shares are fractions" true
    (d.Mmu.mean_share_dev >= 0.0 && d.Mmu.max_share_dev <= 1.0)

(* ---- phase-span balance (property, raw hooks) ---- *)

(* Every phase-span begin must have a matching end, strictly inside
   its collection's start/end pair — the invariant the recorder's span
   reconstruction and the profiler's sampling both lean on. Checked
   with raw hooks (no observer in between) across a config grid and
   every registered policy's exemplar configuration. *)
let test_phase_span_balance () =
  let exemplars =
    List.map (fun (name, _) -> Beltway.Policy.exemplar name)
      Beltway.Policy.registry
  in
  List.iter
    (fun config_str ->
      let gc = Gc.create ~config:(cfg config_str) ~heap_bytes:(256 * 1024) () in
      let st = Gc.state gc in
      let in_gc = ref false and open_spans = Hashtbl.create 8 in
      let collect_ends = ref 0 in
      let bad = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
      let hooks =
        {
          State.noop_hooks with
          on_collect_start =
            (fun ~reason:_ ~emergency:_ ->
              if !in_gc then fail "%s: nested collection" config_str;
              in_gc := true);
          on_gc_phase =
            (fun ~phase ~enter ->
              if not !in_gc then
                fail "%s: phase span outside a collection" config_str;
              let n =
                Option.value (Hashtbl.find_opt open_spans phase) ~default:0
              in
              if enter then Hashtbl.replace open_spans phase (n + 1)
              else if n = 0 then
                fail "%s: phase leave without a matching enter" config_str
              else Hashtbl.replace open_spans phase (n - 1));
          on_collect_end =
            (fun ~full_heap:_ ->
              Hashtbl.iter
                (fun _ n ->
                  if n <> 0 then
                    fail "%s: %d span(s) open at collection end" config_str n)
                open_spans;
              in_gc := false;
              incr collect_ends);
        }
      in
      State.add_hooks st hooks;
      let ty = Gc.register_type gc ~name:"obs.balance" in
      let roots = Roots.new_global (Gc.roots gc) Value.null in
      for i = 1 to 30_000 do
        let a = Gc.alloc gc ~ty ~nfields:2 in
        if i mod 96 = 0 then
          Roots.set_global (Gc.roots gc) roots (Value.of_addr a)
        else Gc.write gc a 1 (Roots.get_global (Gc.roots gc) roots)
      done;
      Gc.full_collect gc;
      State.remove_hooks st hooks;
      checkb (config_str ^ ": spans balanced") true (!bad = []);
      List.iter print_endline !bad;
      checkb (config_str ^ ": collections observed") true (!collect_ends > 0);
      checkb (config_str ^ ": no collection left open") false !in_gc)
    ([ "ss"; "appel"; "25.25.100"; "appel+cards" ] @ exemplars)

(* ---- Metrics reset and stable iteration (satellite) ---- *)

let test_metrics_reset_and_iteration () =
  let gc, r = traced_run () in
  let gcs = Gc_stats.gcs (Gc.stats gc) in
  let m = Recorder.metrics r in
  let names = Metrics.histogram_names m in
  checkb "histograms present" true (names <> []);
  Alcotest.(check (list string))
    "names are sorted" (List.sort compare names) names;
  let visited = ref [] in
  Metrics.iter_histograms m (fun name _ -> visited := name :: !visited);
  Alcotest.(check (list string))
    "iteration follows histogram_names" names
    (List.rev !visited);
  checki "counters live before reset" gcs (Metrics.counter m "gc.collections");
  Metrics.reset m;
  checki "counters cleared" 0 (Metrics.counter m "gc.collections");
  Alcotest.(check (list string)) "histograms cleared" [] (Metrics.histogram_names m);
  Metrics.iter_histograms m (fun _ _ -> Alcotest.fail "iterated after reset")

(* ---- Gc_stats edge cases (satellite) ---- *)

let test_empty_stats_summary () =
  let s = Format.asprintf "%a" Gc_stats.pp_summary (Gc_stats.create ()) in
  let contains sub =
    let n = String.length sub in
    let rec at i =
      i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
    in
    at 0
  in
  checkb "no NaN in empty summary" false (contains "nan");
  checkb "no infinity in empty summary" false (contains "inf");
  checkb "reports zero collections" true (contains "collections: 0")

let test_reason_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Gc_stats.reason_to_string r))
        (Option.map Gc_stats.reason_to_string
           (Gc_stats.reason_of_string (Gc_stats.reason_to_string r))))
    Gc_stats.all_reasons;
  checkb "unknown rejected" true (Gc_stats.reason_of_string "bogus" = None)

let suite =
  [
    ("ring", `Quick, test_ring);
    ("pause spans match the collection log", `Quick, test_pause_agreement);
    ("phase spans", `Quick, test_phase_spans);
    ("ring overflow keeps the pause log", `Quick, test_ring_overflow_keeps_pauses);
    ("detach restores the empty hook list", `Quick, test_detach_restores_zero_cost);
    ("phase-span balance across configs and policies", `Quick,
     test_phase_span_balance);
    ("metrics reset and stable iteration", `Quick,
     test_metrics_reset_and_iteration);
    ("metrics JSON shape", `Quick, test_metrics_json);
    ("chrome trace shape", `Quick, test_chrome_trace);
    ("mmu of_pauses", `Quick, test_mmu_of_pauses);
    ("mmu cross-check zero drift", `Quick, test_crosscheck_zero_drift);
    ("mmu cross-check real run", `Quick, test_crosscheck_real_run);
    ("empty stats summary", `Quick, test_empty_stats_summary);
    ("reason round-trip", `Quick, test_reason_roundtrip);
  ]
