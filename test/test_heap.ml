(* Tests for beltway.heap: addresses, memory/frames, tagged values,
   the object model, boot space, type registry and roots. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---- Addr ---- *)

let test_addr_packing () =
  let fl = 10 in
  let a = Addr.make ~frame_log:fl ~frame:3 ~offset:17 in
  checki "frame" 3 (Addr.frame_of ~frame_log:fl a);
  checki "offset" 17 (Addr.offset_of ~frame_log:fl a);
  checkb "same frame" true (Addr.same_frame ~frame_log:fl a (a + 100));
  checkb "different frame" false
    (Addr.same_frame ~frame_log:fl a (Addr.make ~frame_log:fl ~frame:4 ~offset:17))

let addr_roundtrip_prop =
  QCheck.Test.make ~name:"Addr pack/unpack roundtrip" ~count:500
    QCheck.(pair (int_range 1 100000) (int_range 0 1023))
    (fun (frame, offset) ->
      let a = Addr.make ~frame_log:10 ~frame ~offset in
      Addr.frame_of ~frame_log:10 a = frame && Addr.offset_of ~frame_log:10 a = offset)

(* ---- Memory ---- *)

let mem () = Memory.create ~frame_log_words:8 ~max_frames:8

let test_memory_geometry () =
  let m = mem () in
  checki "frame words" 256 (Memory.frame_words m);
  checki "frame bytes" 1024 (Memory.frame_bytes m);
  checki "no frames live" 0 (Memory.live_frames m)

let test_memory_alloc_free () =
  let m = mem () in
  let f1 = Memory.alloc_frame m in
  checkb "frame index >= 1 (0 reserved for null)" true (f1 >= 1);
  checkb "live" true (Memory.is_live m f1);
  let a = Memory.frame_base m f1 in
  Memory.set m a 42;
  checki "read back" 42 (Memory.get m a);
  Memory.free_frame m f1;
  checkb "dead" false (Memory.is_live m f1);
  checki "none live" 0 (Memory.live_frames m)

let test_memory_zeroed_on_reuse () =
  let m = mem () in
  let f1 = Memory.alloc_frame m in
  Memory.set m (Memory.frame_base m f1) 7;
  Memory.free_frame m f1;
  let f2 = Memory.alloc_frame m in
  checki "recycled index" f1 f2;
  checki "zeroed" 0 (Memory.get m (Memory.frame_base m f2))

let test_memory_budget () =
  let m = mem () in
  for _ = 1 to 8 do
    ignore (Memory.alloc_frame m)
  done;
  Alcotest.check_raises "out of frames" Memory.Out_of_frames (fun () ->
      ignore (Memory.alloc_frame m))

let test_memory_wild_access () =
  let m = mem () in
  Alcotest.check_raises "null get" (Invalid_argument "Memory.get: null address")
    (fun () -> ignore (Memory.get m Addr.null));
  let f = Memory.alloc_frame m in
  Memory.free_frame m f;
  let a = Memory.frame_base m f in
  checkb "use-after-free rejected" true
    (try
       ignore (Memory.get m a);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Memory.free_frame: frame %d not live" f))
    (fun () -> Memory.free_frame m f)

let test_memory_blit_fill () =
  let m = mem () in
  let f1 = Memory.alloc_frame m and f2 = Memory.alloc_frame m in
  let src = Memory.frame_base m f1 and dst = Memory.frame_base m f2 in
  let words = Memory.frame_words m in
  for i = 0 to words - 1 do
    Memory.set m (src + i) (i * 3)
  done;
  Memory.blit m ~src ~dst ~len:words;
  checki "whole-frame blit" (100 * 3) (Memory.get m (dst + 100));
  (* short blit takes the word-loop path *)
  Memory.blit m ~src:(src + 7) ~dst:(dst + 1) ~len:5;
  checki "short blit" (9 * 3) (Memory.get m (dst + 3));
  Memory.fill m ~dst ~len:words 7;
  checki "fill" 7 (Memory.get m (dst + words - 1));
  Memory.blit m ~src ~dst ~len:0 (* len 0 is a no-op, not an error *)

let test_memory_blit_frame_boundary () =
  let m = mem () in
  let f1 = Memory.alloc_frame m and f2 = Memory.alloc_frame m in
  let src = Memory.frame_base m f1 and dst = Memory.frame_base m f2 in
  let words = Memory.frame_words m in
  let crosses f = try f (); false with Invalid_argument _ -> true in
  checkb "blit src crossing boundary rejected" true
    (crosses (fun () -> Memory.blit m ~src:(src + words - 2) ~dst ~len:4));
  checkb "blit dst crossing boundary rejected" true
    (crosses (fun () -> Memory.blit m ~src ~dst:(dst + words - 2) ~len:4));
  checkb "fill crossing boundary rejected" true
    (crosses (fun () -> Memory.fill m ~dst:(dst + words - 2) ~len:4 0));
  checkb "blit into dead frame rejected" true
    (crosses (fun () ->
         Memory.free_frame m f2;
         Memory.blit m ~src ~dst ~len:4))

(* Satellite regression: contiguous allocation must consult the
   recycled-frame free list before minting fresh indices. *)
let test_memory_contiguous_recycles () =
  let m = Memory.create ~frame_log_words:8 ~max_frames:16 in
  let fs = List.init 6 (fun _ -> Memory.alloc_frame m) in
  Alcotest.(check (list int)) "fresh indices" [ 1; 2; 3; 4; 5; 6 ] fs;
  List.iter (Memory.free_frame m) [ 2; 3; 4; 5 ];
  Memory.set m (Memory.frame_base m 6) 99;
  let l = Memory.alloc_frames_contiguous m 3 in
  Alcotest.(check (list int)) "consecutive run from the free list" [ 2; 3; 4 ] l;
  checki "recycled frames read zeros" 0 (Memory.get m (Memory.frame_base m 2));
  checki "high-water mark unchanged" 7 (Memory.fresh_frames m);
  checki "untouched frame keeps its data" 99 (Memory.get m (Memory.frame_base m 6))

let test_memory_contiguous_fresh_fallback () =
  let m = Memory.create ~frame_log_words:8 ~max_frames:16 in
  ignore (List.init 5 (fun _ -> Memory.alloc_frame m));
  (* free list holds only non-consecutive indices: no run of 3 *)
  List.iter (Memory.free_frame m) [ 1; 3; 5 ];
  let l = Memory.alloc_frames_contiguous m 3 in
  Alcotest.(check (list int)) "falls back to fresh frames" [ 6; 7; 8 ] l

let test_memory_contiguous_full_budget () =
  (* With the whole budget freed, a full-budget contiguous request must
     recycle rather than demand fresh frames beyond the budget. *)
  let m = Memory.create ~frame_log_words:8 ~max_frames:8 in
  let fs = List.init 8 (fun _ -> Memory.alloc_frame m) in
  List.iter (Memory.free_frame m) fs;
  let l = Memory.alloc_frames_contiguous m 8 in
  Alcotest.(check (list int)) "entire budget recycled in place"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ] l;
  checki "no fresh frames minted" 9 (Memory.fresh_frames m)

(* Property: Memory with its liveness bitmap behaves like a per-address
   shadow map under random alloc/free/set/get/blit sequences. *)
let memory_model_prop =
  QCheck.Test.make ~name:"Memory agrees with a shadow model" ~count:100
    QCheck.(list (triple (int_range 0 4) small_nat small_nat))
    (fun ops ->
      let m = Memory.create ~frame_log_words:6 ~max_frames:12 in
      let words = Memory.frame_words m in
      let shadow = Hashtbl.create 512 in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, x, y) ->
          match op with
          | 0 -> (
            try
              let f = Memory.alloc_frame m in
              live := f :: !live;
              for i = 0 to words - 1 do
                Hashtbl.replace shadow (Memory.frame_base m f + i) 0
              done
            with Memory.Out_of_frames -> ())
          | 1 -> (
            match !live with
            | [] -> ()
            | f :: rest ->
              live := rest;
              let base = Memory.frame_base m f in
              for i = 0 to words - 1 do
                Hashtbl.remove shadow (base + i)
              done;
              Memory.free_frame m f)
          | 2 -> (
            match !live with
            | [] -> ()
            | fs ->
              let f = List.nth fs (x mod List.length fs) in
              let a = Memory.frame_base m f + (y mod words) in
              Memory.set m a ((x * 131) + y);
              Hashtbl.replace shadow a ((x * 131) + y))
          | 3 -> (
            match !live with
            | [] -> ()
            | fs ->
              let f = List.nth fs (x mod List.length fs) in
              let a = Memory.frame_base m f + (y mod words) in
              if Memory.get m a <> Hashtbl.find shadow a then ok := false)
          | _ -> (
            match !live with
            | f1 :: f2 :: _ ->
              let len = 1 + (y mod words) in
              let src = Memory.frame_base m f1 and dst = Memory.frame_base m f2 in
              Memory.blit m ~src ~dst ~len;
              for i = 0 to len - 1 do
                Hashtbl.replace shadow (dst + i) (Hashtbl.find shadow (src + i))
              done
            | _ -> ()))
        ops;
      Hashtbl.iter (fun a v -> if Memory.get m a <> v then ok := false) shadow;
      (* liveness bitmap agrees with the model, and dead frames reject
         every access *)
      for f = 1 to 11 do
        let alive = List.mem f !live in
        if Memory.is_live m f <> alive then ok := false;
        if not alive then begin
          match Memory.get m (Memory.frame_base m f) with
          | _ -> ok := false
          | exception Invalid_argument _ -> ()
        end
      done;
      !ok)

(* ---- Value ---- *)

let test_value_tags () =
  checkb "null is null" true (Value.is_null Value.null);
  let i = Value.of_int 42 in
  checkb "int tag" true (Value.is_int i);
  checkb "int not ref" false (Value.is_ref i);
  checki "int roundtrip" 42 (Value.to_int i);
  checki "negative roundtrip" (-17) (Value.to_int (Value.of_int (-17)));
  let r = Value.of_addr 1024 in
  checkb "ref tag" true (Value.is_ref r);
  checki "addr roundtrip" 1024 (Value.to_addr r)

let test_value_errors () =
  Alcotest.check_raises "to_int of ref" (Invalid_argument "Value.to_int: not an immediate")
    (fun () -> ignore (Value.to_int (Value.of_addr 8)));
  Alcotest.check_raises "to_addr of int"
    (Invalid_argument "Value.to_addr: not a reference") (fun () ->
      ignore (Value.to_addr (Value.of_int 3)));
  Alcotest.check_raises "of_addr null" (Invalid_argument "Value.of_addr: null address")
    (fun () -> ignore (Value.of_addr Addr.null))

let value_int_roundtrip_prop =
  QCheck.Test.make ~name:"Value int roundtrip" ~count:500
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun n ->
      let v = Value.of_int n in
      Value.is_int v && (not (Value.is_ref v)) && Value.to_int v = n)

(* ---- Object_model ---- *)

let test_object_layout () =
  let m = mem () in
  let f = Memory.alloc_frame m in
  let a = Memory.frame_base m f in
  Object_model.init m a ~tib:Value.null ~nfields:3;
  checki "nfields" 3 (Object_model.nfields m a);
  checki "size" 5 (Object_model.size_of m a);
  checkb "fields start null" true (Value.is_null (Object_model.get_field m a 0));
  Object_model.set_field m a 1 (Value.of_int 9);
  checki "field write" 9 (Value.to_int (Object_model.get_field m a 1));
  Alcotest.check_raises "field oob"
    (Invalid_argument
       (Printf.sprintf "Object_model: field 3 out of bounds [0,3) at %#x" a))
    (fun () -> ignore (Object_model.get_field m a 3))

let test_object_forwarding () =
  let m = mem () in
  let f = Memory.alloc_frame m in
  let a = Memory.frame_base m f in
  Object_model.init m a ~tib:Value.null ~nfields:2;
  checkb "not forwarded" true (Object_model.forwarded m a = None);
  Object_model.set_forwarding m a 4096;
  Alcotest.(check (option int)) "forwarded" (Some 4096) (Object_model.forwarded m a);
  checkb "nfields of forwarded rejected" true
    (try
       ignore (Object_model.nfields m a);
       false
     with Invalid_argument _ -> true)

let test_object_ref_slots () =
  let m = mem () in
  let f = Memory.alloc_frame m in
  let a = Memory.frame_base m f in
  Object_model.init m a ~tib:(Value.of_addr 512) ~nfields:3;
  Object_model.set_field m a 0 (Value.of_int 1);
  Object_model.set_field m a 1 (Value.of_addr 768);
  let slots = ref [] in
  Object_model.iter_ref_slots m a (fun s -> slots := s :: !slots);
  Alcotest.(check (list int)) "ref slots: tib and field 1"
    [ Object_model.tib_addr a; Object_model.field_addr a 1 ]
    (List.rev !slots)

(* ---- Boot_space / Type_registry ---- *)

let test_boot_space () =
  let m = Memory.create ~frame_log_words:8 ~max_frames:16 in
  let boot = Boot_space.create m in
  let a = Boot_space.alloc boot ~tib:Value.null ~nfields:4 in
  checkb "contains" true (Boot_space.contains boot a);
  checkb "not elsewhere" false (Boot_space.contains boot (a + 100000));
  checki "one frame" 1 (Boot_space.mem_frames boot);
  (* overflow into a second frame *)
  for _ = 1 to 60 do
    ignore (Boot_space.alloc boot ~tib:Value.null ~nfields:4)
  done;
  checkb "grew" true (Boot_space.mem_frames boot >= 2);
  checki "words used" (61 * 6) (Boot_space.words_used boot)

let test_type_registry () =
  let m = Memory.create ~frame_log_words:8 ~max_frames:16 in
  let boot = Boot_space.create m in
  let reg = Type_registry.create m boot in
  let t1 = Type_registry.register reg ~name:"cons" in
  let t2 = Type_registry.register reg ~name:"vector" in
  checkb "distinct ids" true (t1 <> t2);
  checki "idempotent" t1 (Type_registry.register reg ~name:"cons");
  checki "count" 2 (Type_registry.count reg);
  Alcotest.(check string) "name" "cons" (Type_registry.name reg t1);
  let tib = Type_registry.tib_value reg t1 in
  checkb "tib is a boot ref" true (Boot_space.contains boot (Value.to_addr tib));
  Alcotest.(check (option int)) "id recoverable" (Some t1) (Type_registry.id_of_tib reg tib);
  Alcotest.(check (option int)) "junk not a tib" None
    (Type_registry.id_of_tib reg (Value.of_int 5))

(* ---- Roots ---- *)

let test_roots_globals () =
  let r = Roots.create () in
  let g = Roots.new_global r (Value.of_int 1) in
  checki "initial" 1 (Value.to_int (Roots.get_global r g));
  Roots.set_global r g (Value.of_int 2);
  checki "updated" 2 (Value.to_int (Roots.get_global r g));
  checki "count" 1 (Roots.global_count r)

let test_roots_stack_discipline () =
  let r = Roots.create () in
  Roots.push r (Value.of_int 1);
  let m = Roots.mark r in
  Roots.push r (Value.of_int 2);
  Roots.push r (Value.of_int 3);
  checki "peek top" 3 (Value.to_int (Roots.peek r 0));
  checki "peek below" 2 (Value.to_int (Roots.peek r 1));
  Roots.set_peek r 0 (Value.of_int 30);
  checki "set_peek" 30 (Value.to_int (Roots.pop r));
  Roots.release r m;
  checki "released to mark" 1 (Roots.depth r);
  checki "stack_get absolute" 1 (Value.to_int (Roots.stack_get r 0))

let test_roots_iter_update () =
  let r = Roots.create () in
  ignore (Roots.new_global r (Value.of_int 5));
  Roots.push r (Value.of_int 7);
  Roots.iter_update r (fun v ->
      if Value.is_int v then Value.of_int (Value.to_int v + 1) else v);
  let vals = ref [] in
  Roots.iter r (fun v -> vals := Value.to_int v :: !vals);
  Alcotest.(check (list int)) "all slots updated" [ 8; 6 ] !vals

let suite =
  [
    ("addr packing", `Quick, test_addr_packing);
    QCheck_alcotest.to_alcotest addr_roundtrip_prop;
    ("memory geometry", `Quick, test_memory_geometry);
    ("memory alloc/free", `Quick, test_memory_alloc_free);
    ("memory zeroed on reuse", `Quick, test_memory_zeroed_on_reuse);
    ("memory budget", `Quick, test_memory_budget);
    ("memory wild access", `Quick, test_memory_wild_access);
    ("memory blit/fill", `Quick, test_memory_blit_fill);
    ("memory blit frame boundary", `Quick, test_memory_blit_frame_boundary);
    ("memory contiguous recycles", `Quick, test_memory_contiguous_recycles);
    ("memory contiguous fresh fallback", `Quick, test_memory_contiguous_fresh_fallback);
    ("memory contiguous full budget", `Quick, test_memory_contiguous_full_budget);
    QCheck_alcotest.to_alcotest memory_model_prop;
    ("value tags", `Quick, test_value_tags);
    ("value errors", `Quick, test_value_errors);
    QCheck_alcotest.to_alcotest value_int_roundtrip_prop;
    ("object layout", `Quick, test_object_layout);
    ("object forwarding", `Quick, test_object_forwarding);
    ("object ref slots", `Quick, test_object_ref_slots);
    ("boot space", `Quick, test_boot_space);
    ("type registry", `Quick, test_type_registry);
    ("roots globals", `Quick, test_roots_globals);
    ("roots stack discipline", `Quick, test_roots_stack_discipline);
    ("roots iter_update", `Quick, test_roots_iter_update);
  ]
