(* Tests for the measurement layer: cost model, MMU analysis and the
   experiment runner. *)

module Cost_model = Beltway_sim.Cost_model
module Mmu = Beltway_sim.Mmu
module Runner = Beltway_sim.Runner
module Figures = Beltway_sim.Figures
module Spec = Beltway_workload.Spec
module Gc = Beltway.Gc
module Config = Beltway.Config

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

(* Build stats with a given collection log for MMU testing. *)
let stats_with ~words collections =
  let s = Beltway.Gc_stats.create () in
  s.Beltway.Gc_stats.words_allocated <- words;
  List.iter
    (fun (clock_words, copied_words) ->
      Beltway.Gc_stats.record_collection s
        {
          Beltway.Gc_stats.n = 0;
          reason = Beltway.Gc_stats.Forced;
          emergency = false;
          clock_words;
          plan_incs = 1;
          plan_frames = 1;
          plan_words = copied_words;
          full_heap = false;
          copied_words;
          copied_objects = 1;
          scanned_slots = 0;
          remset_slots = 0;
          roots_scanned = 0;
          marked_objects = 0;
          marked_words = 0;
          swept_words = 0;
          moved_words = 0;
          freed_frames = 1;
          heap_frames_after = 1;
          reserve_frames = 1;
        })
    collections;
  s

(* A unit-cost model making pause arithmetic exact: mutator = 1/word,
   pause = gc_setup + copied * 1. *)
let unit_model =
  {
    Cost_model.alloc_word = 1.0;
    alloc_object = 0.0;
    barrier_filtered = 0.0;
    barrier_fast = 0.0;
    barrier_slow = 0.0;
    gc_setup = 0.0;
    gc_root = 0.0;
    gc_copy_word = 1.0;
    gc_scan_slot = 0.0;
    gc_remset_slot = 0.0;
    gc_free_frame = 0.0;
    gc_mark_word = 0.0;
    gc_sweep_word = 0.0;
    gc_move_word = 0.0;
  }

let test_cost_model_arithmetic () =
  let s = stats_with ~words:1000 [ (500, 100) ] in
  checkf "mutator" 1000.0 (Cost_model.mutator_time unit_model s);
  checkf "gc" 100.0 (Cost_model.gc_time unit_model s);
  checkf "total" 1100.0 (Cost_model.total_time unit_model s)

let test_cost_model_default_positive () =
  let s = stats_with ~words:1000 [ (500, 100) ] in
  checkb "all components positive" true
    (Cost_model.mutator_time Cost_model.default s > 0.0
    && Cost_model.gc_time Cost_model.default s > 0.0)

let test_mmu_no_pauses () =
  let tl = Mmu.timeline unit_model (stats_with ~words:1000 []) in
  checkf "utilization 1" 1.0 (Mmu.utilization tl);
  checkf "mmu = 1 everywhere" 1.0 (Mmu.mmu tl ~window:10.0);
  checkf "max pause 0" 0.0 (Mmu.max_pause tl)

let test_mmu_single_pause () =
  (* 1000 units of mutator with a 100-unit pause at t=500 *)
  let tl = Mmu.timeline unit_model (stats_with ~words:1000 [ (500, 100) ]) in
  checkf "total" 1100.0 (Mmu.total_time tl);
  checkf "max pause" 100.0 (Mmu.max_pause tl);
  checkf "mmu at window=pause" 0.0 (Mmu.mmu tl ~window:100.0);
  checkf "mmu at window 200" 0.5 (Mmu.mmu tl ~window:200.0);
  checkf "mmu at window 400" 0.75 (Mmu.mmu tl ~window:400.0);
  checkf "asymptote" (1000.0 /. 1100.0) (Mmu.mmu tl ~window:1e9)

let test_mmu_clustered_pauses () =
  (* two 50-unit pauses separated by 10 units of mutator: a 110-window
     covering both has utilization 10/110 *)
  let tl = Mmu.timeline unit_model (stats_with ~words:1000 [ (500, 50); (510, 50) ]) in
  checkf "clustered window" (10.0 /. 110.0) (Mmu.mmu tl ~window:110.0);
  checki "pauses" 2 (Mmu.pause_count tl)

let mmu_monotone_prop =
  QCheck.Test.make ~name:"MMU is monotone in the window" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 1 999) (int_range 1 200)))
    (fun pauses ->
      let tl = Mmu.timeline unit_model (stats_with ~words:1000 pauses) in
      let windows = [ 10.0; 50.0; 100.0; 500.0; 2000.0 ] in
      let values = List.map (fun w -> Mmu.mmu tl ~window:w) windows in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono values)

let test_runner_ladder () =
  let mults = Runner.multipliers ~full:false in
  checki "9 points" 9 (List.length mults);
  checkf "starts at 1" 1.0 (List.hd mults);
  checkf "ends at 3" 3.0 (List.nth mults 8);
  checki "33 points full" 33 (List.length (Runner.multipliers ~full:true));
  let ladder = Runner.heap_ladder ~min_frames:100 ~mults in
  checki "ladder base" 100 (List.hd ladder);
  checki "ladder top" 300 (List.nth ladder 8)

let test_runner_min_heap () =
  (* the minimum heap must complete and one frame less must not *)
  let b = Spec.raytrace in
  let mh = Runner.min_heap_frames b in
  let completes frames =
    (Runner.run_one ~bench:b ~config:Config.appel ~heap_frames:frames ()).Runner.completed
  in
  checkb "min completes" true (completes mh);
  checkb "min-1 fails" false (completes (mh - 1))

let test_runner_oom_reported () =
  let r =
    Runner.run_one ~bench:Spec.jess ~config:Config.appel ~heap_frames:8 ()
  in
  checkb "not completed" false r.Runner.completed;
  checkb "reason given" true (r.Runner.oom_reason <> None)

(* ---- Pool ---- *)

module Pool = Beltway_sim.Pool

let with_pool jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_pool_map_order () =
  with_pool 4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map ~pool:p (fun x -> x * x) xs));
  with_pool 1 (fun p ->
      Alcotest.(check (list int))
        "sequential pool" [ 2; 4 ]
        (Pool.map ~pool:p (fun x -> 2 * x) [ 1; 2 ]))

let test_pool_exception () =
  with_pool 4 (fun p ->
      Alcotest.check_raises "worker exception propagates"
        (Failure "task 7") (fun () ->
          ignore
            (Pool.map ~pool:p
               (fun x -> if x = 7 then failwith "task 7" else x)
               (List.init 16 Fun.id))))

let test_pool_nested_map () =
  (* a task that itself calls Pool.map must not deadlock: nested maps
     run sequentially in the worker *)
  with_pool 2 (fun p ->
      let r =
        Pool.map ~pool:p
          (fun x -> List.fold_left ( + ) 0 (Pool.map ~pool:p (fun y -> x * y) [ 1; 2; 3 ]))
          [ 1; 10 ]
      in
      Alcotest.(check (list int)) "nested" [ 6; 60 ] r)

(* The tentpole determinism guarantee: an evaluation sweep produces
   byte-identical tables at any job count. *)
let test_pool_sweep_deterministic () =
  let table_of results =
    let t =
      Beltway_util.Table.create ~title:"sweep"
        ~columns:[ "heap"; "completed"; "total" ]
    in
    List.iter
      (fun (r : Runner.result) ->
        Beltway_util.Table.add_row t
          [
            string_of_int r.Runner.heap_frames;
            string_of_bool r.Runner.completed;
            Printf.sprintf "%.6f" r.Runner.total_time;
          ])
      results;
    Beltway_util.Table.to_csv t
  in
  let heaps = [ 40; 60; 80; 120 ] in
  let run jobs =
    with_pool jobs (fun p ->
        table_of
          (Runner.sweep ~pool:p ~bench:Spec.raytrace ~config:Config.appel
             ~heaps ()))
  in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" (run 1) (run 4)

let test_figures_ids () =
  checki "13 artifacts" 13 (List.length Figures.all_ids);
  checkb "unknown id rejected" true
    (try
       Figures.run ~id:"fig99" ~full:false;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("cost model arithmetic", `Quick, test_cost_model_arithmetic);
    ("cost model default", `Quick, test_cost_model_default_positive);
    ("mmu no pauses", `Quick, test_mmu_no_pauses);
    ("mmu single pause", `Quick, test_mmu_single_pause);
    ("mmu clustered pauses", `Quick, test_mmu_clustered_pauses);
    QCheck_alcotest.to_alcotest mmu_monotone_prop;
    ("runner ladder", `Quick, test_runner_ladder);
    ("runner min heap", `Slow, test_runner_min_heap);
    ("runner OOM reported", `Quick, test_runner_oom_reported);
    ("pool map order", `Quick, test_pool_map_order);
    ("pool exception", `Quick, test_pool_exception);
    ("pool nested map", `Quick, test_pool_nested_map);
    ("pool sweep deterministic", `Slow, test_pool_sweep_deterministic);
    ("figure ids", `Quick, test_figures_ids);
  ]
