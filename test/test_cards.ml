(* Tests for the card-table barrier alternative (+cards): unconditional
   marking, dirty-frame scanning at collection, and full differential
   equivalence with the remset barrier. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module Card_table = Beltway.Card_table

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let gc_of ?(heap_kb = 192) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~frame_log_words:8 ~config ~heap_bytes:(heap_kb * 1024) ()

let test_card_table_unit () =
  let t = Card_table.create () in
  checki "clean" 0 (Card_table.dirty_count t);
  Card_table.mark t ~frame:5;
  Card_table.mark t ~frame:5;
  Card_table.mark t ~frame:9;
  checki "two dirty" 2 (Card_table.dirty_count t);
  checkb "is_dirty" true (Card_table.is_dirty t ~frame:5);
  Card_table.clear t ~frame:5;
  checkb "cleared" false (Card_table.is_dirty t ~frame:5);
  let seen = ref [] in
  Card_table.iter_dirty t (fun f -> seen := f :: !seen);
  Alcotest.(check (list int)) "iter" [ 9 ] !seen

let test_cards_mark_on_store () =
  let gc = gc_of "appel+cards" in
  let ty = Gc.register_type gc ~name:"t" in
  let st = Gc.state gc in
  let a = Gc.alloc gc ~ty ~nfields:2 in
  let before = Card_table.dirty_count st.Beltway.State.cards in
  Gc.write gc a 0 (Value.of_addr a);
  checkb "store dirtied a card" true
    (Card_table.dirty_count st.Beltway.State.cards >= max 1 before);
  (* no remset activity in cards mode *)
  checki "no remset slow path" 0 (Gc.stats gc).Beltway.Gc_stats.barrier_slow

let test_cards_survival () =
  let gc = gc_of "25.25.100+cards" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* an old object holding the only reference to ever-younger data *)
  let old_g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:2 in
  Roots.set_global roots old_g (Value.of_addr a);
  Gc.full_collect gc;
  for i = 1 to 3_000 do
    let young = Gc.alloc gc ~ty ~nfields:4 in
    Gc.write gc young 0 (Value.of_int i);
    Gc.write gc (Value.to_addr (Roots.get_global roots old_g)) 0 (Value.of_addr young)
  done;
  (* the last young object must be reachable through the old one *)
  let old_addr = Value.to_addr (Roots.get_global roots old_g) in
  let v = Gc.read gc old_addr 0 in
  checki "old->young edge preserved by card scans" 3000
    (Value.to_int (Gc.read gc (Value.to_addr v) 0));
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e

let test_cards_differential () =
  List.iter
    (fun cs ->
      for seed = 1 to 10 do
        let tr = Beltway_workload.Trace.random ~seed ~nroots:10 ~len:2500 in
        let gc = gc_of cs in
        (match Beltway_workload.Trace.compare_with_mirror gc tr with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d under %s: %s" seed cs e);
        match Beltway.Verify.check gc with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d under %s: integrity: %s" seed cs e
      done)
    [ "appel+cards"; "25.25.100+cards"; "ss+cards"; "of:25+cards"; "fixed:25+cards";
      "25.25.100+cards+los:64" ]

let test_cards_vs_remsets_same_results () =
  (* identical mutator, both barrier modes: identical reachable data *)
  let run cs =
    let gc = gc_of ~heap_kb:1024 cs in
    Beltway_workload.Spec.jess.Beltway_workload.Spec.run gc;
    (Beltway.Oracle.live_words gc, (Gc.stats gc).Beltway.Gc_stats.words_allocated)
  in
  checkb "same allocation and live data" true (run "25.25.100" = run "25.25.100+cards")

let test_cross_barrier_determinism () =
  (* The barrier mode changes when collection work happens, never what
     the mutator computes: the same random workload under remsets and
     under cards must leave both heaps Verify-clean with identical
     reachable-object counts and live data. *)
  for seed = 20 to 25 do
    let tr = Beltway_workload.Trace.random ~seed ~nroots:8 ~len:3000 in
    let run cs =
      let gc = gc_of ~heap_kb:256 cs in
      (match Beltway_workload.Trace.compare_with_mirror gc tr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d under %s: %s" seed cs e);
      (match Beltway.Verify.check gc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "seed %d under %s: integrity: %s" seed cs e);
      (Hashtbl.length (Beltway.Oracle.reachable gc), Beltway.Oracle.live_words gc)
    in
    let remset_counts = run "25.25.100" in
    let card_counts = run "25.25.100+cards" in
    checki
      (Printf.sprintf "seed %d: reachable objects agree across barriers" seed)
      (fst remset_counts) (fst card_counts);
    checki
      (Printf.sprintf "seed %d: live words agree across barriers" seed)
      (snd remset_counts) (snd card_counts)
  done

let test_cards_scan_work_is_nonzero () =
  let gc = gc_of "25.25.100+cards" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* an old object receiving young stores: its frame stays dirty and is
     outside most plans, so nursery collections must scan it *)
  let old_g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:3 in
  Roots.set_global roots old_g (Value.of_addr a);
  Gc.full_collect gc;
  for i = 1 to 30_000 do
    let young = Gc.alloc gc ~ty ~nfields:3 in
    if i mod 16 = 0 then
      Gc.write gc (Value.to_addr (Roots.get_global roots old_g)) 0 (Value.of_addr young)
  done;
  let stats = Gc.stats gc in
  let card_slots =
    Beltway_util.Vec.fold
      (fun acc c -> acc + c.Beltway.Gc_stats.remset_slots)
      0 stats.Beltway.Gc_stats.collections
  in
  checkb "collections scanned dirty frames" true (card_slots > 0)

let test_parse () =
  let c = Result.get_ok (Config.parse "appel+cards") in
  checkb "cards mode" true (c.Config.barrier = Config.Cards);
  let c = Result.get_ok (Config.parse "appel+cards+remsets") in
  checkb "last option wins" true (c.Config.barrier = Config.Remsets)

let suite =
  [
    ("card table unit", `Quick, test_card_table_unit);
    ("mark on store", `Quick, test_cards_mark_on_store);
    ("survival through card scans", `Quick, test_cards_survival);
    ("differential with cards", `Quick, test_cards_differential);
    ("cards vs remsets equivalence", `Slow, test_cards_vs_remsets_same_results);
    ("cross-barrier determinism", `Quick, test_cross_barrier_determinism);
    ("card scan work", `Quick, test_cards_scan_work_is_nonzero);
    ("parse", `Quick, test_parse);
  ]
