(* Tests for the Beltlang reader, compiler and interpreter, including
   cross-configuration output equality for the bundled programs. *)

module Sexp = Beltlang.Sexp
module Ast = Beltlang.Ast
module Interp = Beltlang.Interp
module Programs = Beltlang.Programs
module Gc = Beltway.Gc
module Config = Beltway.Config

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let gc_of ?(heap_kb = 512) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~config ~heap_bytes:(heap_kb * 1024) ()

let eval_output ?heap_kb ?(config = "25.25.100") src =
  let it = Interp.create (gc_of ?heap_kb config) in
  Interp.run_string it src;
  Interp.output it

(* ---- reader ---- *)

let test_sexp_atoms () =
  (match Sexp.parse_string "foo 42 #t" with
  | [ Sexp.Atom "foo"; Sexp.Atom "42"; Sexp.Atom "#t" ] -> ()
  | _ -> Alcotest.fail "bad parse");
  match Sexp.parse_string "" with
  | [] -> ()
  | _ -> Alcotest.fail "empty input should give no forms"

let test_sexp_nesting () =
  match Sexp.parse_string "(a (b c) ())" with
  | [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ]; Sexp.List [] ] ]
    -> ()
  | _ -> Alcotest.fail "bad nesting"

let test_sexp_quote_comment () =
  match Sexp.parse_string "'(1 2) ; trailing comment\n3" with
  | [ Sexp.List [ Sexp.Atom "quote"; Sexp.List [ Sexp.Atom "1"; Sexp.Atom "2" ] ];
      Sexp.Atom "3" ] -> ()
  | _ -> Alcotest.fail "bad quote/comment"

let test_sexp_errors () =
  List.iter
    (fun src ->
      checkb src true
        (try
           ignore (Sexp.parse_string src);
           false
         with Sexp.Parse_error _ -> true))
    [ "("; ")"; "(a"; "'" ]

(* ---- compiler ---- *)

let test_compile_unbound () =
  checkb "unbound" true
    (try
       ignore (Ast.compile (Sexp.parse_string "(+ x 1)"));
       false
     with Ast.Compile_error _ -> true)

let test_compile_arity () =
  checkb "prim arity" true
    (try
       ignore (Ast.compile (Sexp.parse_string "(cons 1)"));
       false
     with Ast.Compile_error _ -> true)

let test_compile_scoping () =
  (* let shadows globals; inner lambda sees outer params *)
  checks "scoping" "3\n10\n"
    (eval_output
       {|
(define x 10)
(let ((x 1))
  (print ((lambda (y) (+ x y)) 2)))
(print x)
|})

let test_compile_forward_reference () =
  (* mutual recursion via pre-declared globals *)
  checks "mutual recursion" "1\n"
    (eval_output
       {|
(define (even? n) (if (= n 0) #t (odd? (- n 1))))
(define (odd? n) (if (= n 0) #f (even? (- n 1))))
(print (even? 10))
|})

(* ---- interpreter semantics ---- *)

let test_arith () =
  checks "arith" "14\n2\n6\n3\n1\n"
    (eval_output "(print (+ 2 12)) (print (- 14 12)) (print (* 2 3)) (print (/ 7 2)) (print (mod 7 2))")

let test_comparisons () =
  checks "cmp" "1\n0\n1\n1\n0\n1\n"
    (eval_output
       "(print (< 1 2)) (print (> 1 2)) (print (<= 2 2)) (print (>= 2 2)) (print (= 1 2)) (print (= 3 3))")

let test_division_by_zero () =
  checkb "div0" true
    (try
       ignore (eval_output "(print (/ 1 0))");
       false
     with Interp.Runtime_error _ -> true)

let test_closures_capture () =
  checks "closure capture" "15\n"
    (eval_output
       {|
(define (adder n) (lambda (x) (+ x n)))
(define add5 (adder 5))
(print (add5 10))
|})

let test_closure_shared_state () =
  checks "set! through closure" "1\n2\n3\n"
    (eval_output
       {|
(define (counter)
  (let ((n 0))
    (lambda () (begin (set! n (+ n 1)) n))))
(define c (counter))
(print (c)) (print (c)) (print (c))
|})

let test_recursion () =
  checks "fib" "55\n" (eval_output "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (print (fib 10))")

let test_lists () =
  checks "lists" "1\n(2 3)\n(1 2 3)\n"
    (eval_output
       {|
(define l (cons 1 (cons 2 (cons 3 nil))))
(print (car l))
(print (cdr l))
(print l)
|})

let test_list_mutation () =
  checks "set-car!/set-cdr!" "(9 . 8)\n"
    (eval_output
       {|
(define p (cons 1 2))
(set-car! p 9)
(set-cdr! p 8)
(print p)
|})

let test_quote () =
  checks "quote" "(1 2 (3 4))\n" (eval_output "(print '(1 2 (3 4)))")

let test_vectors () =
  checks "vectors" "3\n0\n7\n"
    (eval_output
       {|
(define v (make-vector 3 0))
(print (vector-length v))
(print (vector-ref v 1))
(vector-set! v 1 7)
(print (vector-ref v 1))
|})

let test_vector_bounds () =
  checkb "vector oob" true
    (try
       ignore (eval_output "(vector-ref (make-vector 2 0) 5)");
       false
     with Interp.Runtime_error _ -> true)

let test_while_set () =
  checks "while" "45\n"
    (eval_output
       {|
(define i 0) (define sum 0)
(while (< i 10) (begin (set! sum (+ sum i)) (set! i (+ i 1))))
(print sum)
|})

let test_and_or () =
  checks "and/or" "0\n1\n5\n1\n"
    (eval_output
       "(print (and #t #f)) (print (and #t #t)) (print (or #f 5)) (print (or #t #f))")

let test_predicates () =
  checks "predicates" "1\n0\n1\n0\n1\n"
    (eval_output
       "(print (null? nil)) (print (null? (cons 1 2))) (print (pair? (cons 1 2))) (print (pair? 3)) (print (eq? 4 4))")

let test_type_errors () =
  List.iter
    (fun src ->
      checkb src true
        (try
           ignore (eval_output src);
           false
         with Interp.Runtime_error _ -> true))
    [ "(car 5)"; "(+ nil 1)"; "((lambda (x) x))" (* arity *); "(1 2)" (* not a closure *) ]

let test_globals_inspectable () =
  let it = Interp.create (gc_of "appel") in
  Interp.run_string it "(define x 42)";
  (match Interp.global it "x" with
  | Some v -> checki "global x" 42 (Value.to_int v)
  | None -> Alcotest.fail "x not defined");
  checkb "undefined" true (Interp.global it "y" = None)

let test_state_persists_across_runs () =
  let it = Interp.create (gc_of "appel") in
  Interp.run_string it "(define (f x) (* x 2))";
  Interp.run_string it "(print (f 21))";
  checks "second run sees first" "42\n" (Interp.output it)

let test_interp_oom () =
  let it = Interp.create (gc_of ~heap_kb:32 "appel") in
  checkb "heap exhausted" true
    (try
       Interp.run_string it
         "(define (grow l n) (if (= n 0) l (grow (cons n l) (- n 1)))) (print (grow nil 100000))";
       false
     with Gc.Out_of_memory _ -> true)

(* ---- programs under many collectors ---- *)

let program_configs = [ "ss"; "appel"; "fixed:25"; "ofm:25"; "of:25"; "25.25"; "25.25.100"; "10.10.100" ]

let test_program (p : Programs.t) () =
  let outputs =
    List.map
      (fun cs ->
        let gc = gc_of ~heap_kb:1024 cs in
        let it = Interp.create gc in
        Interp.run_string it p.Programs.source;
        (match Beltway.Verify.check gc with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s under %s: integrity: %s" p.Programs.name cs e);
        Interp.output it)
      program_configs
  in
  let reference = List.hd outputs in
  List.iteri
    (fun i o ->
      checks
        (Printf.sprintf "%s output equal under %s" p.Programs.name
           (List.nth program_configs i))
        reference o)
    outputs;
  match p.Programs.expected_output with
  | Some e -> checks (p.Programs.name ^ " expected output") e reference
  | None -> ()

(* --- static analysis ---------------------------------------------- *)

module Analysis = Beltlang.Analysis

let codes_of diags = List.map (fun d -> d.Analysis.code) diags

let analyze_str src = Analysis.analyze (Sexp.parse_string src)

let has code diags =
  if not (List.mem code (codes_of diags)) then
    Alcotest.failf "expected a %s diagnostic, got: %s" code
      (String.concat ", " (codes_of diags))

let lacks code diags =
  if List.mem code (codes_of diags) then
    Alcotest.failf "unexpected %s diagnostic" code

let test_lint_scope_arity () =
  let d =
    analyze_str
      "(define (f x) (+ x missing)) (f 1 2) (cons 1) (set! nowhere 3)"
  in
  has "unbound-var" d;
  has "bad-arity" d;
  checki "errors counted" 4 (Analysis.errors d);
  (* shadowing a primitive turns its uses into plain calls *)
  let d = analyze_str "(define (cons a) a) (cons 1)" in
  lacks "bad-arity" d;
  checki "no errors when prim shadowed" 0 (Analysis.errors d)

let test_lint_unreachable () =
  let d = analyze_str "(define (f) (if #t 1 2)) (f)" in
  has "unreachable" d;
  let d = analyze_str "(define (f) (while #f (print 1))) (f)" in
  has "unreachable" d;
  let d = analyze_str "(define (f) (or #t (print 1))) (f)" in
  has "unreachable" d;
  let d = analyze_str "(define (f n) (if (< n 2) 1 2)) (f 3)" in
  lacks "unreachable" d

let test_lint_unused () =
  let d = analyze_str "(define (f x y) x) (f 1 2)" in
  has "unused-param" d;
  let d = analyze_str "(define (f) (let ((a 1) (b 2)) a)) (f)" in
  has "unused-binding" d;
  let d = analyze_str "(define lonely 1) (print 2)" in
  has "unused-global" d;
  (* underscore opts out; set!-as-use counts *)
  let d = analyze_str "(define (f _x) (let ((a 1)) (set! a 2) a)) (f 1)" in
  checki "no warnings" 0 (Analysis.warnings d)

let test_lint_pretenure () =
  let d = analyze_str "(define table (make-vector 8 0)) (print (vector-ref table 0))" in
  has "pretenure" d;
  let d = analyze_str "(define (f v x) (vector-set! v 0 (cons x nil))) (f (make-vector 1 0) 2)" in
  has "pretenure" d;
  (* purely local allocation: nursery is right, no note *)
  let d = analyze_str "(define (f) (car (cons 1 2))) (print (f))" in
  lacks "pretenure" d

let test_lint_mirrors_compiler () =
  (* Everything the resolver accepts must lint error-free, and the
     analyser must keep scoping rules identical (let is non-recursive,
     defines are mutually recursive). *)
  let ok = "(define (even? n) (if (= n 0) #t (odd? (- n 1))))\n\
            (define (odd? n) (if (= n 0) #f (even? (- n 1))))\n\
            (print (if (even? 10) 1 0))" in
  ignore (Ast.compile (Sexp.parse_string ok));
  checki "mutual recursion lints clean" 0 (Analysis.errors (analyze_str ok));
  let bad = "(let ((x 1) (y x)) y)" in
  (try
     ignore (Ast.compile (Sexp.parse_string bad));
     Alcotest.fail "compiler accepted non-recursive let misuse"
   with Ast.Compile_error _ -> ());
  has "unbound-var" (analyze_str bad)

let test_lint_programs_clean () =
  List.iter
    (fun (p : Programs.t) ->
      let d = Analysis.analyze (Sexp.parse_string p.Programs.source) in
      checki (p.Programs.name ^ " lints without errors") 0 (Analysis.errors d))
    Programs.all

let suite =
  [
    ("sexp atoms", `Quick, test_sexp_atoms);
    ("sexp nesting", `Quick, test_sexp_nesting);
    ("sexp quote/comment", `Quick, test_sexp_quote_comment);
    ("sexp errors", `Quick, test_sexp_errors);
    ("compile unbound", `Quick, test_compile_unbound);
    ("compile arity", `Quick, test_compile_arity);
    ("compile scoping", `Quick, test_compile_scoping);
    ("compile forward reference", `Quick, test_compile_forward_reference);
    ("arith", `Quick, test_arith);
    ("comparisons", `Quick, test_comparisons);
    ("division by zero", `Quick, test_division_by_zero);
    ("closures capture", `Quick, test_closures_capture);
    ("closure shared state", `Quick, test_closure_shared_state);
    ("recursion", `Quick, test_recursion);
    ("lists", `Quick, test_lists);
    ("list mutation", `Quick, test_list_mutation);
    ("quote", `Quick, test_quote);
    ("vectors", `Quick, test_vectors);
    ("vector bounds", `Quick, test_vector_bounds);
    ("while/set!", `Quick, test_while_set);
    ("and/or", `Quick, test_and_or);
    ("predicates", `Quick, test_predicates);
    ("type errors", `Quick, test_type_errors);
    ("globals inspectable", `Quick, test_globals_inspectable);
    ("state persists across runs", `Quick, test_state_persists_across_runs);
    ("interpreter OOM", `Quick, test_interp_oom);
    ("lint scope/arity", `Quick, test_lint_scope_arity);
    ("lint unreachable", `Quick, test_lint_unreachable);
    ("lint unused", `Quick, test_lint_unused);
    ("lint pretenure notes", `Quick, test_lint_pretenure);
    ("lint mirrors the compiler", `Quick, test_lint_mirrors_compiler);
    ("lint bundled programs clean", `Quick, test_lint_programs_clean);
  ]
  @ List.map
      (fun p -> ("program " ^ p.Programs.name, `Slow, test_program p))
      Programs.all
