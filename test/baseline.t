The bench harness can gate a run against a prior results file:
--baseline OLD --compare NEW diffs two results files section by
section (micro ns_per_run at 1.30x, phase seconds at 1.50x,
interpreter ops_per_sec at 0.90x) and exits non-zero on any
regression.

  $ cat > old.json << 'EOF'
  > {
  >   "schema": "beltway-bench/4",
  >   "micro": [
  >     {"name": "alloc", "policy": "appel", "ns_per_run": 100.0},
  >     {"name": "barrier", "policy": "ss", "ns_per_run": 50.0}
  >   ],
  >   "phases": [
  >     {"phase": "micro", "seconds": 2.0, "jobs": 2, "gc_domains": 1}
  >   ],
  >   "interpreter": [
  >     {"name": "gcbench", "engine": "bytecode", "seconds": 1.0, "ops_per_sec": 1000.0}
  >   ]
  > }
  > EOF

A rerun within every threshold passes (exit 0).

  $ cat > clean.json << 'EOF'
  > {
  >   "schema": "beltway-bench/4",
  >   "micro": [
  >     {"name": "alloc", "policy": "appel", "ns_per_run": 105.0},
  >     {"name": "barrier", "policy": "ss", "ns_per_run": 48.0}
  >   ],
  >   "phases": [
  >     {"phase": "micro", "seconds": 2.2, "jobs": 2, "gc_domains": 1}
  >   ],
  >   "interpreter": [
  >     {"name": "gcbench", "engine": "bytecode", "seconds": 1.02, "ops_per_sec": 980.0}
  >   ]
  > }
  > EOF
  $ beltway-bench --baseline old.json --compare clean.json
  baseline check: clean.json vs old.json
  baseline: 4 compared, 0 skipped, 0 regression(s)

An injected regression — a 50% slower micro-benchmark and a 15% drop
in interpreter throughput — is caught, named, and fails the gate.

  $ cat > regressed.json << 'EOF'
  > {
  >   "schema": "beltway-bench/4",
  >   "micro": [
  >     {"name": "alloc", "policy": "appel", "ns_per_run": 150.0},
  >     {"name": "barrier", "policy": "ss", "ns_per_run": 48.0}
  >   ],
  >   "phases": [
  >     {"phase": "micro", "seconds": 2.2, "jobs": 2, "gc_domains": 1}
  >   ],
  >   "interpreter": [
  >     {"name": "gcbench", "engine": "bytecode", "seconds": 1.18, "ops_per_sec": 850.0}
  >   ]
  > }
  > EOF
  $ beltway-bench --baseline old.json --compare regressed.json
  baseline check: regressed.json vs old.json
    REGRESSION: micro alloc/appel ns_per_run 100 -> 150 (1.50x, limit 1.30x)
    REGRESSION: interpreter gcbench/bytecode ops_per_sec 1000 -> 850 (0.85x, limit 0.90x)
  baseline: 4 compared, 0 skipped, 2 regression(s)
  [1]

Entries present only on one side are reported but never fail the gate
(benchmarks come and go), and null metrics are skipped.

  $ cat > sparse.json << 'EOF'
  > {
  >   "schema": "beltway-bench/4",
  >   "micro": [
  >     {"name": "alloc", "policy": "appel", "ns_per_run": null}
  >   ],
  >   "phases": [],
  >   "interpreter": []
  > }
  > EOF
  $ beltway-bench --baseline old.json --compare sparse.json
  baseline check: sparse.json vs old.json
    skipped: micro barrier/ss missing from sparse.json
    skipped: phases micro/gc1 missing from sparse.json
    skipped: interpreter gcbench/bytecode missing from sparse.json
  baseline: 0 compared, 4 skipped, 0 regression(s)

A file marked as a smoke run carries measurement-free noise (tiny
bechamel quota): the gate still reports what it sees but the exit
stays 0 — only full-quota runs are enforced.

  $ cat > smoke.json << 'EOF'
  > {
  >   "schema": "beltway-bench/5",
  >   "smoke": true,
  >   "micro": [
  >     {"name": "alloc", "policy": "appel", "ns_per_run": 150.0}
  >   ],
  >   "phases": [],
  >   "interpreter": []
  > }
  > EOF
  $ beltway-bench --baseline old.json --compare smoke.json
  baseline check: smoke.json vs old.json
    REGRESSION: micro alloc/appel ns_per_run 100 -> 150 (1.50x, limit 1.30x)
    skipped: micro barrier/ss missing from smoke.json
    skipped: phases micro/gc1 missing from smoke.json
    skipped: interpreter gcbench/bytecode missing from smoke.json
  baseline: 1 compared, 3 skipped, 1 regression(s) [advisory: smoke-quota timings]

--compare without a baseline is a usage error.

  $ beltway-bench --compare clean.json
  error: --compare requires --baseline OLD.json
  [2]
