(* The object-demographics profiler, validated differentially against
   the shadow heap's lifetime oracle. Both observe the same hook
   stream and the same allocation clock but keep entirely separate
   books (the profiler re-keys a per-frame side table on every move;
   the shadow appends to a never-purged move log), so exact agreement
   on every per-site counter, every age histogram and the full
   promotion matrix is a strong check on both. Deaths are intentionally
   not compared: the shadow learns them at diff time, the profiler at
   frame-free time, and the two granularities differ. *)

module Gc = Beltway.Gc
module State = Beltway.State
module Config = Beltway.Config
module Spec = Beltway_workload.Spec
module Sanitizer = Beltway_check.Sanitizer
module Shadow = Beltway_check.Shadow
module Profiler = Beltway_obs.Profiler
module Histogram = Beltway_util.Histogram
module Json = Beltway_util.Json

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let cfg s = Result.get_ok (Config.parse s)

(* Run [bench] with both the shadow sanitizer and the profiler
   attached (sanitizer first: it must see every allocation the
   profiler sees). The heap is 4x the benchmark's minimum-heap hint,
   as in the harness's profiled sweep. *)
let profiled_run ~config_str bench =
  let config = cfg config_str in
  let heap_frames = max 8 (4 * bench.Spec.min_heap_hint_frames) in
  let gc =
    Gc.create ~frame_log_words:Beltway_sim.Runner.frame_log_words ~config
      ~heap_bytes:(heap_frames * Beltway_sim.Runner.frame_bytes) ()
  in
  let san = Sanitizer.attach ~level:Sanitizer.Shadow gc in
  let p = Profiler.attach gc in
  bench.Spec.run gc;
  Profiler.detach p;
  Sanitizer.detach san;
  checkb "sanitizer clean" true (Sanitizer.ok san);
  (gc, p, Sanitizer.shadow san)

(* Rebuild every profiler aggregate from the oracle's move log and
   require exact equality. *)
let check_against_oracle label gc p shadow =
  let n = Gc.site_count gc in
  for s = 0 to n - 1 do
    let who = Printf.sprintf "%s %s" label (Gc.site_name gc s) in
    checki (who ^ " alloc objects")
      (Shadow.site_alloc_objects shadow s)
      (Profiler.site_alloc_objects p s);
    checki (who ^ " alloc words")
      (Shadow.site_alloc_words shadow s)
      (Profiler.site_alloc_words p s)
  done;
  let belts = Profiler.belts p in
  let top = State.regular_belts (Gc.state gc) - 1 in
  let copied_objects = Array.make n 0 and copied_words = Array.make n 0 in
  let top_belt = Array.make n 0 in
  let hists =
    Array.init belts (fun _ ->
        Histogram.create ~bucket_width:Profiler.age_bucket_words ())
  in
  let promo = Array.make_matrix belts belts 0 in
  Array.iter
    (fun (m : Shadow.move_record) ->
      copied_objects.(m.m_site) <- copied_objects.(m.m_site) + 1;
      copied_words.(m.m_site) <- copied_words.(m.m_site) + m.m_words;
      if m.m_src_belt >= 0 then
        Histogram.add hists.(m.m_src_belt) (float_of_int m.m_age);
      if m.m_src_belt >= 0 && m.m_dst_belt >= 0 then begin
        promo.(m.m_src_belt).(m.m_dst_belt) <-
          promo.(m.m_src_belt).(m.m_dst_belt) + 1;
        if m.m_dst_belt = top && m.m_src_belt <> top then
          top_belt.(m.m_site) <- top_belt.(m.m_site) + 1
      end)
    (Shadow.moves shadow);
  for s = 0 to n - 1 do
    let who = Printf.sprintf "%s %s" label (Gc.site_name gc s) in
    checki (who ^ " copied objects") copied_objects.(s)
      (Profiler.site_copied_objects p s);
    checki (who ^ " copied words") copied_words.(s)
      (Profiler.site_copied_words p s);
    checki (who ^ " top-belt arrivals") top_belt.(s)
      (Profiler.site_top_belt_objects p s)
  done;
  for b = 0 to belts - 1 do
    let who = Printf.sprintf "%s belt %d" label b in
    let h = Profiler.age_histogram p ~belt:b in
    checki (who ^ " age count") (Histogram.count hists.(b)) (Histogram.count h);
    Alcotest.(check (float 1e-9))
      (who ^ " age max")
      (Histogram.max_value hists.(b))
      (Histogram.max_value h);
    Alcotest.(check (list (pair (float 1e-9) int)))
      (who ^ " age buckets")
      (Histogram.buckets hists.(b))
      (Histogram.buckets h)
  done;
  let pm = Profiler.promotions p in
  checki (label ^ " promotion matrix size") belts (Array.length pm);
  for i = 0 to belts - 1 do
    for j = 0 to belts - 1 do
      checki
        (Printf.sprintf "%s promotions %d->%d" label i j)
        promo.(i).(j) pm.(i).(j)
    done
  done

(* ---- the workload differential grid ---- *)

let test_workload_differential () =
  List.iter
    (fun config_str ->
      List.iter
        (fun bench_name ->
          let bench = Option.get (Spec.by_name bench_name) in
          let label = Printf.sprintf "%s/%s" bench_name config_str in
          let gc, p, shadow = profiled_run ~config_str bench in
          checkb (label ^ " collected") true (Profiler.collections p > 0);
          check_against_oracle label gc p shadow)
        [ "jess"; "db" ])
    [ "ss"; "appel"; "25.25.100" ]

(* ---- the bytecode-VM differential ---- *)

let test_vm_differential () =
  let gc = Gc.create ~config:(cfg "appel") ~heap_bytes:(512 * 1024) () in
  let san = Sanitizer.attach ~level:Sanitizer.Shadow gc in
  let p = Profiler.attach gc in
  let vm = Beltlang.Vm.create gc in
  let prog = Option.get (Beltlang.Programs.by_name "gcbench") in
  Beltlang.Vm.run_string vm prog.Beltlang.Programs.source;
  Profiler.detach p;
  Sanitizer.detach san;
  checkb "sanitizer clean" true (Sanitizer.ok san);
  checkb "vm collected" true (Profiler.collections p > 0);
  check_against_oracle "vm" gc p (Sanitizer.shadow san);
  (* The compiler labelled the VM's allocating opcodes: sites carry
     lambda@pc:kind names, and the toplevel frame has its own. *)
  let names = List.init (Gc.site_count gc) (Gc.site_name gc) in
  checkb "toplevel frame site" true (List.mem "<toplevel>:frame" names);
  checkb "bytecode sites labelled" true
    (List.exists (fun nm -> String.contains nm '@') names);
  (* Everything the VM allocated is attributed: nothing lands on the
     "unknown" site once the stamping covers every allocating opcode. *)
  checki "no unattributed allocations" 0 (Profiler.site_alloc_objects p 0)

(* ---- determinism (the pretenuring hints must be reproducible) ---- *)

let test_determinism () =
  let bench = Option.get (Spec.by_name "db") in
  let gc1, p1, _ = profiled_run ~config_str:"25.25.100" bench in
  let gc2, p2, _ = profiled_run ~config_str:"25.25.100" bench in
  checki "same site registry" (Gc.site_count gc1) (Gc.site_count gc2);
  for s = 0 to Gc.site_count gc1 - 1 do
    Alcotest.(check string) "site name" (Gc.site_name gc1 s) (Gc.site_name gc2 s);
    checki "alloc objects" (Profiler.site_alloc_objects p1 s)
      (Profiler.site_alloc_objects p2 s);
    checki "copied objects" (Profiler.site_copied_objects p1 s)
      (Profiler.site_copied_objects p2 s);
    checki "dead objects" (Profiler.site_dead_objects p1 s)
      (Profiler.site_dead_objects p2 s);
    checki "top-belt arrivals" (Profiler.site_top_belt_objects p1 s)
      (Profiler.site_top_belt_objects p2 s)
  done;
  Alcotest.(check (list int))
    "pretenure hints deterministic"
    (Profiler.pretenure_sites p1) (Profiler.pretenure_sites p2);
  checki "same collection count" (Profiler.collections p1)
    (Profiler.collections p2)

(* ---- zero cost when detached ---- *)

let test_detach_restores_zero_cost () =
  let bench = Option.get (Spec.by_name "db") in
  let gc, _, _ = profiled_run ~config_str:"appel" bench in
  checkb "no hooks left installed" true ((Gc.state gc).State.hooks = [])

(* ---- export shape ---- *)

let test_profile_json () =
  let bench = Option.get (Spec.by_name "db") in
  let _, p, _ = profiled_run ~config_str:"appel" bench in
  let j = Profiler.runs_json [ Profiler.run_json ~name:"db" p ] in
  Alcotest.(check (option string))
    "schema" (Some Profiler.schema)
    (Option.bind (Json.member "schema" j) Json.to_str);
  let runs = Option.get (Option.bind (Json.member "runs" j) Json.to_list) in
  checki "one run" 1 (List.length runs);
  let run = List.hd runs in
  Alcotest.(check (option string))
    "run name" (Some "db")
    (Option.bind (Json.member "name" run) Json.to_str);
  List.iter
    (fun section ->
      checkb (section ^ " present") true (Json.member section run <> None))
    [ "config"; "policy"; "collections"; "sites"; "belts"; "promotions"; "series" ];
  (* Round-trips through the parser. *)
  checkb "parses back" true
    (match Json.of_string (Json.to_string ~indent:true j) with
    | _ -> true
    | exception Json.Parse_error _ -> false)

let suite =
  [
    ("workload differential vs shadow oracle", `Quick, test_workload_differential);
    ("bytecode-VM differential vs shadow oracle", `Quick, test_vm_differential);
    ("demographics are deterministic", `Quick, test_determinism);
    ("detach restores the empty hook list", `Quick, test_detach_restores_zero_cost);
    ("profile JSON shape", `Quick, test_profile_json);
  ]
