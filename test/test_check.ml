(* The checking layers checked: the fault-injection matrix (every
   seeded defect class detected), zero false positives on clean runs of
   the six workloads and the bundled Beltlang programs, and the shadow
   heap's bookkeeping itself. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module Sanitizer = Beltway_check.Sanitizer
module Faults = Beltway_check.Faults

let checki = Alcotest.(check int)

let parse cs = Result.get_ok (Config.parse cs)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* --- fault matrix ------------------------------------------------- *)

let test_fault fault () =
  match Faults.inject fault with
  | Ok _violation -> ()
  | Error why -> Alcotest.failf "%s: %s" (Faults.name fault) why

(* The detections come from the layer the fault targets: barrier and
   accounting faults need Verify (Paranoid), memory faults are caught
   by the shadow diff alone. The harness encodes that; here we pin the
   reported messages to the expected defect class so a future
   regression cannot pass by flagging the wrong thing. *)
let test_fault_messages () =
  let expect fault fragment =
    match Faults.inject fault with
    | Error why -> Alcotest.failf "%s: %s" (Faults.name fault) why
    | Ok msg ->
      if not (contains ~needle:fragment msg) then
        Alcotest.failf "%s: expected %S in %S" (Faults.name fault) fragment msg
  in
  expect Faults.Skipped_barrier "unremembered interesting pointer";
  expect Faults.Dropped_remset "stale reference";
  expect Faults.Corrupted_header "corrupted header";
  expect Faults.Premature_free "lost object";
  expect Faults.Undersized_reserve "frame accounting drift";
  expect Faults.Racy_forwarding "stale reference";
  expect Faults.Dropped_mark "clobbered";
  expect Faults.Misthreaded_compact "stale reference"

(* --- clean runs: no false positives ------------------------------- *)

let assert_clean what san =
  Sanitizer.check_now san;
  match Sanitizer.violations san with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "%s: false positive (%d violations; first: %s)" what
      (List.length (Sanitizer.violations san))
      v

let test_clean_workload (bench : Beltway_workload.Spec.t) () =
  List.iter
    (fun cs ->
      let gc =
        Gc.create ~frame_log_words:8 ~config:(parse cs)
          ~heap_bytes:(1536 * 1024) ()
      in
      let san = Sanitizer.attach ~level:Sanitizer.Paranoid gc in
      bench.Beltway_workload.Spec.run gc;
      assert_clean (Printf.sprintf "%s under %s" bench.Beltway_workload.Spec.name cs) san;
      Alcotest.(check bool)
        (Printf.sprintf "%s: collections were checked" bench.Beltway_workload.Spec.name)
        true
        (Sanitizer.collections_checked san > 0))
    [ "25.25.100"; "appel+cards" ]

let test_clean_beltlang () =
  List.iter
    (fun (p : Beltlang.Programs.t) ->
      List.iter
        (fun cs ->
          let gc = Gc.create ~config:(parse cs) ~heap_bytes:(768 * 1024) () in
          let san = Sanitizer.attach ~level:Sanitizer.Paranoid gc in
          let interp = Beltlang.Interp.create gc in
          Beltlang.Interp.run_string interp p.Beltlang.Programs.source;
          (match p.Beltlang.Programs.expected_output with
          | Some expected ->
            Alcotest.(check string)
              (p.Beltlang.Programs.name ^ " output under sanitizer")
              expected
              (Beltlang.Interp.output interp)
          | None -> ());
          assert_clean (Printf.sprintf "beltlang %s under %s" p.Beltlang.Programs.name cs) san)
        [ "25.25.100"; "ss" ])
    Beltlang.Programs.all

(* --- shadow bookkeeping ------------------------------------------- *)

(* Hooks fire on every allocation path and survive a full collection:
   the shadow tracks exactly the reachable population after a purge. *)
let test_shadow_tracking () =
  let gc =
    Gc.create ~frame_log_words:8 ~config:(parse "25.25.100+los:128")
      ~heap_bytes:(512 * 1024) ()
  in
  let san = Sanitizer.attach ~level:Sanitizer.Shadow gc in
  let ty = Gc.register_type gc ~name:"check.node" in
  let roots = Gc.roots gc in
  (* kept: one small rooted object, one pretenured, one large (LOS) *)
  let keep = Gc.alloc gc ~ty ~nfields:2 in
  let gkeep = Roots.new_global roots (Value.of_addr keep) in
  let pre = Gc.alloc_pretenured gc ~ty ~nfields:2 ~belt:1 in
  let gpre = Roots.new_global roots (Value.of_addr pre) in
  let big = Gc.alloc gc ~ty ~nfields:200 in
  let gbig = Roots.new_global roots (Value.of_addr big) in
  (* garbage: dropped on the floor *)
  for _ = 1 to 50 do
    ignore (Gc.alloc gc ~ty ~nfields:3)
  done;
  Gc.full_collect gc;
  assert_clean "shadow tracking" san;
  (* The diff at collect-end purged the garbage: only the three
     survivors (and nothing else) remain mirrored. *)
  checki "tracked after purge" 3 (Sanitizer.tracked san);
  ignore (Roots.get_global roots gkeep);
  ignore (Roots.get_global roots gpre);
  ignore (Roots.get_global roots gbig)

let test_detach () =
  let gc = Gc.create ~config:(parse "ss") ~heap_bytes:(256 * 1024) () in
  let san = Sanitizer.attach ~level:Sanitizer.Shadow gc in
  let ty = Gc.register_type gc ~name:"check.node" in
  ignore (Gc.alloc gc ~ty ~nfields:1);
  checki "tracked while attached" 1 (Sanitizer.tracked san);
  Sanitizer.detach san;
  ignore (Gc.alloc gc ~ty ~nfields:1);
  checki "no tracking after detach" 1 (Sanitizer.tracked san)

let suite =
  List.map
    (fun f -> ("fault " ^ Faults.name f, `Quick, test_fault f))
    Faults.all
  @ [
      ("fault messages name the defect", `Quick, test_fault_messages);
      ("beltlang programs clean under sanitizer", `Slow, test_clean_beltlang);
      ("shadow tracks survivors exactly", `Quick, test_shadow_tracking);
      ("detach stops tracking", `Quick, test_detach);
    ]
  @ List.map
      (fun (b : Beltway_workload.Spec.t) ->
        ("clean " ^ b.Beltway_workload.Spec.name, `Slow, test_clean_workload b))
      Beltway_workload.Spec.all
