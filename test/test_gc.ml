(* End-to-end collector tests: survival, moving, completeness,
   triggers, OOM behaviour and heap integrity under every
   configuration. *)

module Gc = Beltway.Gc
module Config = Beltway.Config

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let all_configs =
  [
    "ss"; "appel"; "appel3"; "100.100"; "fixed:25"; "ofm:25"; "of:25";
    "25.25"; "25.25.100"; "10.10.100"; "50.50.100"; "appel+ttd:4";
    "25.25.100+remtrig:3000"; "25.25.100+nofilter";
  ]

let gc_of ?(heap_kb = 256) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~frame_log_words:8 ~config ~heap_bytes:(heap_kb * 1024) ()

(* Build a linked list keeping every [keep]th cell, return kept count. *)
let build_list gc ty ~cells ~keep =
  let roots = Gc.roots gc in
  let head = Roots.new_global roots Value.null in
  for i = 1 to cells do
    let a = Gc.alloc gc ~ty ~nfields:2 in
    Gc.write gc a 0 (Value.of_int i);
    if i mod keep = 0 then begin
      Gc.write gc a 1 (Roots.get_global roots head);
      Roots.set_global roots head (Value.of_addr a)
    end
  done;
  head

let list_contents gc head =
  let roots = Gc.roots gc in
  let rec go v acc =
    if Value.is_null v then List.rev acc
    else begin
      let a = Value.to_addr v in
      go (Gc.read gc a 1) (Value.to_int (Gc.read gc a 0) :: acc)
    end
  in
  go (Roots.get_global roots head) []

let test_survival config_str () =
  let gc = gc_of config_str in
  let ty = Gc.register_type gc ~name:"cons" in
  let head = build_list gc ty ~cells:30_000 ~keep:100 in
  checkb "collected at least once" true (Beltway.Gc_stats.gcs (Gc.stats gc) > 0);
  let expected = List.init 300 (fun i -> (300 - i) * 100) in
  Alcotest.(check (list int)) "list contents exact after collections" expected
    (list_contents gc head);
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e);
  checki "oracle live = 300 cells" (300 * 4) (Beltway.Oracle.live_words gc)

let test_objects_move () =
  let gc = gc_of "ss" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let a = Gc.alloc gc ~ty ~nfields:1 in
  let g = Roots.new_global roots (Value.of_addr a) in
  Gc.write gc a 0 (Value.of_int 123);
  Gc.collect gc;
  let a' = Value.to_addr (Roots.get_global roots g) in
  checkb "address changed" true (a <> a');
  checki "contents preserved" 123 (Value.to_int (Gc.read gc a' 0))

let test_forced_collections () =
  let gc = gc_of "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let head = build_list gc ty ~cells:2_000 ~keep:10 in
  let before = Beltway.Gc_stats.gcs (Gc.stats gc) in
  Gc.full_collect gc;
  checki "one more collection" (before + 1) (Beltway.Gc_stats.gcs (Gc.stats gc));
  checki "still 200 cells" 200 (List.length (list_contents gc head));
  (* everything must be compacted: occupancy == live after full GC *)
  checki "no floating garbage after full collection" 0
    (Beltway.Oracle.retained_garbage_words gc)

let test_empty_heap_collect () =
  let gc = gc_of "appel" in
  Gc.collect gc;
  Gc.full_collect gc;
  checki "no-op on empty heap" 0 (Beltway.Gc_stats.gcs (Gc.stats gc))

let test_type_recovery () =
  let gc = gc_of "appel" in
  let t1 = Gc.register_type gc ~name:"alpha" in
  let t2 = Gc.register_type gc ~name:"beta" in
  let a = Gc.alloc gc ~ty:t1 ~nfields:1 in
  let b = Gc.alloc gc ~ty:t2 ~nfields:1 in
  Alcotest.(check (option int)) "alpha" (Some t1) (Gc.type_of gc a);
  Alcotest.(check (option int)) "beta" (Some t2) (Gc.type_of gc b)

let test_type_survives_collection () =
  let gc = gc_of "ss" in
  let ty = Gc.register_type gc ~name:"gamma" in
  let roots = Gc.roots gc in
  let g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:1 in
  Roots.set_global roots g (Value.of_addr a);
  Gc.collect gc;
  Alcotest.(check (option int)) "tib survives the move" (Some ty)
    (Gc.type_of gc (Value.to_addr (Roots.get_global roots g)))

let test_oom_too_small () =
  let gc = gc_of ~heap_kb:16 "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let head = Roots.new_global roots Value.null in
  checkb "live data beyond heap raises" true
    (try
       (* every cell is kept alive: live set grows past the heap *)
       for _ = 1 to 100_000 do
         let a = Gc.alloc gc ~ty ~nfields:2 in
         Gc.write gc a 1 (Roots.get_global roots head);
         Roots.set_global roots head (Value.of_addr a)
       done;
       false
     with Gc.Out_of_memory _ -> true)

let test_oversized_alloc_rejected () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  checkb "larger than a frame" true
    (try
       ignore (Gc.alloc gc ~ty ~nfields:100_000);
       false
     with Invalid_argument _ -> true)

let test_negative_fields_rejected () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  Alcotest.check_raises "negative" (Invalid_argument "Gc.alloc: negative field count")
    (fun () -> ignore (Gc.alloc gc ~ty ~nfields:(-1)))

(* Completeness: a dropped cyclic ring spanning increments. *)
let build_cycle gc ty n =
  let roots = Gc.roots gc in
  let first = Roots.new_global roots Value.null in
  let prev = Roots.new_global roots Value.null in
  for _ = 1 to n do
    let a = Gc.alloc gc ~ty ~nfields:2 in
    (match Roots.get_global roots prev with
    | v when Value.is_null v -> Roots.set_global roots first (Value.of_addr a)
    | v -> Gc.write gc (Value.to_addr v) 1 (Value.of_addr a))
    ;
    Roots.set_global roots prev (Value.of_addr a)
  done;
  let last = Roots.get_global roots prev in
  Gc.write gc (Value.to_addr last) 1 (Roots.get_global roots first);
  Roots.set_global roots prev Value.null;
  first

let churn gc ty words =
  let start = Gc.words_allocated gc in
  while Gc.words_allocated gc - start < words do
    ignore (Gc.alloc gc ~ty ~nfields:6)
  done

let test_incomplete_retains_cycles () =
  let gc = gc_of ~heap_kb:512 "25.25" in
  let ty = Gc.register_type gc ~name:"t" in
  let ring = build_cycle gc ty 2_000 in
  churn gc ty 60_000 (* promote the ring across increments *);
  Roots.set_global (Gc.roots gc) ring Value.null;
  churn gc ty 200_000;
  checkb "cycle never reclaimed by 25.25" true
    (Beltway.Oracle.retained_garbage_words gc >= 2_000 * 4)

let test_complete_reclaims_cycles () =
  let gc = gc_of ~heap_kb:512 "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let ring = build_cycle gc ty 2_000 in
  churn gc ty 60_000;
  Roots.set_global (Gc.roots gc) ring Value.null;
  Gc.full_collect gc;
  checki "cycle reclaimed by the complete configuration" 0
    (Beltway.Oracle.retained_garbage_words gc)

let test_remset_trigger_fires () =
  let gc = gc_of "25.25.100+remtrig:500" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* park an old object, then hammer old->young stores *)
  let old_g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:2 in
  Roots.set_global roots old_g (Value.of_addr a);
  Gc.full_collect gc (* make it old *);
  let saw_remset_reason = ref false in
  (try
     for _ = 1 to 200_000 do
       let young = Gc.alloc gc ~ty ~nfields:2 in
       let old_addr = Value.to_addr (Roots.get_global roots old_g) in
       Gc.write gc old_addr 0 (Value.of_addr young);
       let st = Gc.stats gc in
       let n = Beltway_util.Vec.length st.Beltway.Gc_stats.collections in
       if
         n > 0
         && (Beltway_util.Vec.get st.Beltway.Gc_stats.collections (n - 1))
              .Beltway.Gc_stats.reason = Beltway.Gc_stats.Remset
       then begin
         saw_remset_reason := true;
         raise Exit
       end
     done
   with Exit -> ());
  checkb "a remset-triggered collection happened" true !saw_remset_reason

let test_ttd_splits_nursery () =
  let gc = gc_of ~heap_kb:128 "appel+ttd:16" in
  let ty = Gc.register_type gc ~name:"t" in
  let st = Gc.state gc in
  let saw_two = ref false in
  for _ = 1 to 60_000 do
    ignore (Gc.alloc gc ~ty ~nfields:4);
    if Beltway.Belt.length st.Beltway.State.belts.(0) >= 2 then saw_two := true
  done;
  checkb "time-to-die opened a second nursery increment" true !saw_two

let test_bof_flips () =
  let gc = gc_of ~heap_kb:128 "of:25" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* survivors are needed: with pure garbage the copy belt stays empty
     and flipping is (correctly) never required *)
  let ring = Array.init 400 (fun _ -> Roots.new_global roots Value.null) in
  for i = 1 to 160_000 do
    let a = Gc.alloc gc ~ty ~nfields:4 in
    if i mod 50 = 0 then Roots.set_global roots ring.(i / 50 mod 400) (Value.of_addr a)
  done;
  let st = Gc.state gc in
  checkb "epoch advanced (belts flipped)" true (st.Beltway.State.epoch > 0);
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e

let test_counters_accumulate () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  for _ = 1 to 100 do
    ignore (Gc.alloc gc ~ty ~nfields:3)
  done;
  let st = Gc.stats gc in
  checki "objects" 100 st.Beltway.Gc_stats.objects_allocated;
  checki "words" 500 st.Beltway.Gc_stats.words_allocated;
  checki "bytes" 2000 (Gc.bytes_allocated gc);
  checki "barrier per alloc (tib)" 100 st.Beltway.Gc_stats.barrier_ops

(* Deep structure across many collections: a binary tree built with the
   shadow stack, verified node-by-node afterwards. *)
let test_deep_tree config_str () =
  let gc = gc_of config_str in
  let ty = Gc.register_type gc ~name:"node" in
  let roots = Gc.roots gc in
  let rec build depth =
    (* returns a rooted value on top of the shadow stack *)
    if depth = 0 then Roots.push roots Value.null
    else begin
      build (depth - 1);
      build (depth - 1);
      let n = Gc.alloc gc ~ty ~nfields:3 in
      Gc.write gc n 2 (Value.of_int depth);
      let right = Roots.pop roots in
      let left = Roots.pop roots in
      Gc.write gc n 0 left;
      Gc.write gc n 1 right;
      Roots.push roots (Value.of_addr n)
    end
  in
  (* interleave: build a tree, churn garbage, build another *)
  build 10;
  for _ = 1 to 20_000 do
    ignore (Gc.alloc gc ~ty ~nfields:2)
  done;
  build 10;
  let rec check_tree v depth =
    if depth = 0 then checkb "leaf" true (Value.is_null v)
    else begin
      let a = Value.to_addr v in
      checki "depth tag" depth (Value.to_int (Gc.read gc a 2));
      check_tree (Gc.read gc a 0) (depth - 1);
      check_tree (Gc.read gc a 1) (depth - 1)
    end
  in
  check_tree (Roots.pop roots) 10;
  check_tree (Roots.pop roots) 10;
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e

let suite =
  List.map
    (fun cs -> ("survival under " ^ cs, `Quick, test_survival cs))
    all_configs
  @ List.map
      (fun cs -> ("deep tree under " ^ cs, `Quick, test_deep_tree cs))
      [ "ss"; "appel"; "of:25"; "ofm:25"; "25.25.100"; "10.10.100" ]
  @ [
      ("objects move", `Quick, test_objects_move);
      ("forced collections", `Quick, test_forced_collections);
      ("empty heap collect", `Quick, test_empty_heap_collect);
      ("type recovery", `Quick, test_type_recovery);
      ("type survives collection", `Quick, test_type_survives_collection);
      ("OOM when live exceeds heap", `Quick, test_oom_too_small);
      ("oversized alloc rejected", `Quick, test_oversized_alloc_rejected);
      ("negative fields rejected", `Quick, test_negative_fields_rejected);
      ("25.25 retains cycles", `Quick, test_incomplete_retains_cycles);
      ("25.25.100 reclaims cycles", `Quick, test_complete_reclaims_cycles);
      ("remset trigger fires", `Quick, test_remset_trigger_fires);
      ("ttd splits nursery", `Quick, test_ttd_splits_nursery);
      ("bof flips", `Quick, test_bof_flips);
      ("counters accumulate", `Quick, test_counters_accumulate);
    ]

(* ---- pretenuring (segregation by allocation site, paper S5) ---- *)

let test_pretenured_lands_on_belt () =
  let gc = gc_of "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let st = Gc.state gc in
  let a = Gc.alloc_pretenured gc ~ty ~nfields:4 ~belt:2 in
  let inc =
    Option.get (Beltway.State.inc_of_frame st (Beltway.State.frame_of_addr st a))
  in
  checki "on belt 2" 2 inc.Beltway.Increment.belt;
  Alcotest.check_raises "belt 0 rejected"
    (Invalid_argument "Schedule.prepare_alloc_in: bad belt 0") (fun () ->
      ignore (Gc.alloc_pretenured gc ~ty ~nfields:4 ~belt:0));
  Alcotest.check_raises "out of range rejected"
    (Invalid_argument "Schedule.prepare_alloc_in: bad belt 9") (fun () ->
      ignore (Gc.alloc_pretenured gc ~ty ~nfields:4 ~belt:9))

let test_pretenured_avoids_nursery_copies () =
  let gc = gc_of "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let a = Gc.alloc_pretenured gc ~ty ~nfields:4 ~belt:2 in
  Gc.write gc a 0 (Value.of_int 31337);
  let g = Roots.new_global roots (Value.of_addr a) in
  (* plenty of nursery churn: nursery collections must not move it *)
  for _ = 1 to 40_000 do
    ignore (Gc.alloc gc ~ty ~nfields:3)
  done;
  let a' = Value.to_addr (Roots.get_global roots g) in
  checkb "top-belt object not moved by minor collections" true (a = a');
  checki "contents intact" 31337 (Value.to_int (Gc.read gc a' 0));
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e

let test_pretenured_young_edges_remembered () =
  let gc = gc_of "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let old_ = Gc.alloc_pretenured gc ~ty ~nfields:4 ~belt:2 in
  let g = Roots.new_global roots (Value.of_addr old_) in
  let young = Gc.alloc gc ~ty ~nfields:2 in
  Gc.write gc young 0 (Value.of_int 7);
  Gc.write gc (Value.to_addr (Roots.get_global roots g)) 0 (Value.of_addr young);
  checkb "old-to-young store took the slow path" true
    ((Gc.stats gc).Beltway.Gc_stats.barrier_slow > 0);
  Gc.collect gc;
  let old_ = Value.to_addr (Roots.get_global roots g) in
  let young' = Value.to_addr (Gc.read gc old_ 0) in
  checki "young object survived via the pretenured parent" 7
    (Value.to_int (Gc.read gc young' 0))

let suite =
  suite
  @ [
      ("pretenured lands on belt", `Quick, test_pretenured_lands_on_belt);
      ("pretenured avoids nursery copies", `Quick, test_pretenured_avoids_nursery_copies);
      ("pretenured young edges remembered", `Quick, test_pretenured_young_edges_remembered);
    ]

(* ---- the verifier detects real corruption (tests of the oracle) ---- *)

let test_verify_detects_unremembered_pointer () =
  let gc = gc_of "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let old_g = Roots.new_global roots Value.null in
  let a = Gc.alloc gc ~ty ~nfields:2 in
  Roots.set_global roots old_g (Value.of_addr a);
  Gc.full_collect gc;
  let young = Gc.alloc gc ~ty ~nfields:2 in
  let old_addr = Value.to_addr (Roots.get_global roots old_g) in
  (* bypass the write barrier: raw store of an old-to-young pointer *)
  let st = Gc.state gc in
  Object_model.set_field st.Beltway.State.mem old_addr 0 (Value.of_addr young);
  checkb "unremembered pointer detected" true (Result.is_error (Beltway.Verify.check gc))

let test_verify_detects_dangling_pointer () =
  let gc = gc_of "ss" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let keep = Gc.alloc gc ~ty ~nfields:2 in
  let g = Roots.new_global roots (Value.of_addr keep) in
  let doomed = Gc.alloc gc ~ty ~nfields:2 in
  (* collect: [doomed] is unrooted and its frame is freed *)
  Gc.collect gc;
  let keep = Value.to_addr (Roots.get_global roots g) in
  let st = Gc.state gc in
  (* raw store of the stale address *)
  Object_model.set_field st.Beltway.State.mem keep 0 (Value.of_addr doomed);
  checkb "dangling pointer detected" true (Result.is_error (Beltway.Verify.check gc))

let test_verify_detects_accounting_drift () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  ignore (Gc.alloc gc ~ty ~nfields:2);
  let st = Gc.state gc in
  st.Beltway.State.frames_used <- st.Beltway.State.frames_used + 1;
  checkb "accounting drift detected" true (Result.is_error (Beltway.Verify.check gc));
  st.Beltway.State.frames_used <- st.Beltway.State.frames_used - 1;
  checkb "restored state passes" true (Result.is_ok (Beltway.Verify.check gc))

let suite =
  suite
  @ [
      ("verify detects unremembered pointer", `Quick, test_verify_detects_unremembered_pointer);
      ("verify detects dangling pointer", `Quick, test_verify_detects_dangling_pointer);
      ("verify detects accounting drift", `Quick, test_verify_detects_accounting_drift);
    ]

(* ---- oracle and diagnostics ---- *)

let test_oracle_counts_exactly () =
  let gc = gc_of "appel" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* a diamond: root -> a -> {b, c}, b -> d, c -> d: d counted once *)
  let mk n =
    let x = Gc.alloc gc ~ty ~nfields:2 in
    Gc.write gc x 0 (Value.of_int n);
    Roots.new_global roots (Value.of_addr x)
  in
  let d = mk 4 and b = mk 2 and c = mk 3 and a = mk 1 in
  let addr g = Value.to_addr (Roots.get_global roots g) in
  Gc.write gc (addr b) 1 (Value.of_addr (addr d));
  Gc.write gc (addr c) 1 (Value.of_addr (addr d));
  Gc.write gc (addr a) 1 (Value.of_addr (addr b));
  (* unroot everything except [a]; keep c reachable via nothing *)
  Roots.set_global roots b Value.null;
  Roots.set_global roots d Value.null;
  Roots.set_global roots c Value.null;
  (* reachable: a, b, d = 3 objects of 4 words *)
  checki "oracle live words" 12 (Beltway.Oracle.live_words gc);
  checki "reachable set size" 3 (Hashtbl.length (Beltway.Oracle.reachable gc));
  checkb "retained garbage counts c" true
    (Beltway.Oracle.retained_garbage_words gc >= 4)

let test_pp_heap_renders () =
  let gc = gc_of "25.25.100+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  ignore (Gc.alloc gc ~ty ~nfields:200) (* a pinned large object *);
  for _ = 1 to 500 do
    ignore (Gc.alloc gc ~ty ~nfields:4)
  done;
  let s = Format.asprintf "%a" Beltway.Gc.pp_heap gc in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions the LOS belt" true (contains s "LOS");
  checkb "mentions a pinned increment" true (contains s "pinned")

let test_zero_field_objects () =
  let gc = gc_of "25.25.100" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let a = Gc.alloc gc ~ty ~nfields:0 in
  let g = Roots.new_global roots (Value.of_addr a) in
  for _ = 1 to 20_000 do
    ignore (Gc.alloc gc ~ty ~nfields:0)
  done;
  let a' = Value.to_addr (Roots.get_global roots g) in
  checki "zero-field object survives" 0 (Gc.nfields gc a');
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e

let test_self_referential_object () =
  let gc = gc_of "ss" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let a = Gc.alloc gc ~ty ~nfields:1 in
  Gc.write gc a 0 (Value.of_addr a);
  let g = Roots.new_global roots (Value.of_addr a) in
  Gc.collect gc;
  let a' = Value.to_addr (Roots.get_global roots g) in
  checki "self loop follows the move" a' (Value.to_addr (Gc.read gc a' 0))

let suite =
  suite
  @ [
      ("oracle counts exactly", `Quick, test_oracle_counts_exactly);
      ("pp_heap renders", `Quick, test_pp_heap_renders);
      ("zero-field objects", `Quick, test_zero_field_objects);
      ("self-referential object", `Quick, test_self_referential_object);
    ]
