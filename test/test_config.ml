(* Tests for the configuration surface: named collectors, the
   command-line parser, validation and bound resolution. *)

module Config = Beltway.Config

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let parse_ok s =
  match Config.parse s with
  | Ok c -> c
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let parse_err s =
  match Config.parse s with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  | Error e -> e

let test_named_shapes () =
  checki "ss: one belt" 1 (Array.length Config.semi_space.Config.belts);
  checki "appel: two belts" 2 (Array.length Config.appel.Config.belts);
  checki "appel3: three belts" 3 (Array.length Config.appel3.Config.belts);
  checkb "appel reserves half" true (Config.appel.Config.reserve = Config.Half);
  checkb "BA2 dynamic" true (Config.beltway_appel.Config.reserve = Config.Dynamic);
  checkb "ss is FIFO" true (Config.semi_space.Config.order = Config.Global_fifo);
  checkb "bof flips" true ((Config.bof ~pct:25).Config.flip);
  checkb "bofm single belt" true (Array.length (Config.bofm ~pct:25).Config.belts = 1)

let test_parse_named () =
  List.iter
    (fun (s, expect_belts) ->
      let c = parse_ok s in
      checki (s ^ " belts") expect_belts (Array.length c.Config.belts))
    [
      ("ss", 1); ("bss", 1); ("appel", 2); ("ba2", 2); ("appel3", 3);
      ("fixed:25", 2); ("ofm:20", 1); ("bofm:20", 1); ("of:20", 2); ("bof:20", 2);
      ("25.25", 2); ("100.100", 2); ("25.25.100", 3); ("10.10.100", 3); ("40.20", 2);
      ("40.20.100", 3);
    ]

let test_parse_case_insensitive () =
  checki "APPEL" 2 (Array.length (parse_ok "APPEL").Config.belts)

let test_parse_rejects () =
  List.iter
    (fun s -> ignore (parse_err s))
    [ ""; "nope"; "fixed:"; "fixed:0"; "fixed:101"; "0.25"; "25.0"; "25.25.50";
      "25"; "25.25.100.100"; "of:x"; "25.25+bogus"; "25.25+ttd" ]

let test_parse_options () =
  let c = parse_ok "25.25.100+nofilter" in
  checkb "nofilter" false c.Config.nursery_filter;
  let c = parse_ok "25.25+remtrig:5000" in
  Alcotest.(check (option int)) "remtrig" (Some 5000) c.Config.remset_trigger;
  let c = parse_ok "appel+ttd:16" in
  Alcotest.(check (option int)) "ttd" (Some 16) c.Config.ttd_frames;
  checkb "ttd disables filter" false c.Config.nursery_filter;
  let c = parse_ok "25.25+halfreserve" in
  checkb "halfreserve" true (c.Config.reserve = Config.Half);
  let c = parse_ok "25.25+minuseful:5" in
  checki "minuseful" 5 c.Config.min_useful_frames

let test_validation_rules () =
  (* the nursery filter is only sound under belt-major stamping *)
  let bad = { (Config.bofm ~pct:25) with Config.nursery_filter = true } in
  checkb "filter under FIFO rejected" true (Result.is_error (Config.validate bad));
  let bad = { Config.appel with Config.min_useful_frames = 0 } in
  checkb "min_useful >= 1" true (Result.is_error (Config.validate bad));
  let bad = { Config.semi_space with Config.flip = true } in
  checkb "flip needs two belts" true (Result.is_error (Config.validate bad));
  checkb "named configs validate" true
    (List.for_all
       (fun c -> Result.is_ok (Config.validate c))
       [
         Config.semi_space; Config.appel; Config.appel3; Config.beltway_appel;
         Config.fixed_nursery ~pct:25; Config.bofm ~pct:25; Config.bof ~pct:25;
         Config.beltway_xx ~x:25; Config.beltway_xx100 ~x:25;
       ])

let test_label_roundtrip () =
  List.iter
    (fun s ->
      let c = parse_ok s in
      Alcotest.(check string) ("label of " ^ s) s (Config.to_string c))
    [ "ss"; "appel"; "25.25"; "25.25.100"; "25.25+remtrig:5000" ]

let test_resolve_bound () =
  let c = parse_ok "25.25" in
  Alcotest.(check (option int))
    "whole heap unbounded" None
    (Config.resolve_bound c ~heap_frames:100 Config.Whole_heap);
  (* dynamic reserve: x% of usable = heap * x / (100 + x) *)
  Alcotest.(check (option int))
    "pct under dynamic" (Some 20)
    (Config.resolve_bound c ~heap_frames:100 (Config.Pct 25));
  let h = parse_ok "fixed:25" in
  (* half reserve: x% of half the heap *)
  Alcotest.(check (option int))
    "pct under half" (Some 12)
    (Config.resolve_bound h ~heap_frames:100 (Config.Pct 25));
  Alcotest.(check (option int))
    "never zero" (Some 1)
    (Config.resolve_bound c ~heap_frames:4 (Config.Pct 1))

let test_x100_equals_appel_when_100 () =
  (* Beltway 100.100 must be the Appel shape with a dynamic reserve. *)
  let c = parse_ok "100.100" in
  checkb "nursery unbounded" true (c.Config.belts.(0).Config.bound = Config.Whole_heap);
  checkb "promotes next" true (c.Config.belts.(0).Config.promote = Config.Next_belt);
  checkb "top same-belt" true (c.Config.belts.(1).Config.promote = Config.Same_belt)

let suite =
  [
    ("named shapes", `Quick, test_named_shapes);
    ("parse named", `Quick, test_parse_named);
    ("parse case-insensitive", `Quick, test_parse_case_insensitive);
    ("parse rejects", `Quick, test_parse_rejects);
    ("parse options", `Quick, test_parse_options);
    ("validation rules", `Quick, test_validation_rules);
    ("label roundtrip", `Quick, test_label_roundtrip);
    ("resolve bound", `Quick, test_resolve_bound);
    ("100.100 is Appel-shaped", `Quick, test_x100_equals_appel_when_100);
  ]

(* Random configuration strings must never crash the parser, and every
   accepted configuration must pass validation and drive a real heap. *)
let config_fuzz_prop =
  QCheck.Test.make ~name:"config parser total on random strings" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 20) QCheck.Gen.printable)
    (fun s ->
      match Config.parse s with
      | Ok c -> Result.is_ok (Config.validate c)
      | Error _ -> true)

let accepted_configs_run_prop =
  (* generate structured random configs and check they run a tiny trace *)
  let gen =
    QCheck.Gen.(
      let* x = int_range 1 100 in
      let* y = int_range 1 100 in
      let* suffix = oneofl [ ""; "+nofilter"; "+cards"; "+los:16"; "+halfreserve"; "+remtrig:500" ] in
      let* shape = oneofl [ `XY; `XY100; `Named ] in
      match shape with
      | `XY -> return (Printf.sprintf "%d.%d%s" x y suffix)
      | `XY100 -> return (Printf.sprintf "%d.%d.100%s" x y suffix)
      | `Named ->
        let* base = oneofl [ "ss"; "appel"; "appel3"; "ofm:30"; "of:30"; "fixed:30" ] in
        return (base ^ suffix))
  in
  QCheck.Test.make ~name:"every accepted config drives a heap soundly" ~count:60
    (QCheck.make gen)
    (fun s ->
      match Config.parse s with
      | Error _ -> true
      | Ok config ->
        let gc =
          Beltway.Gc.create ~frame_log_words:8 ~config ~heap_bytes:(128 * 1024) ()
        in
        let tr = Beltway_workload.Trace.random ~seed:7 ~nroots:6 ~len:600 in
        (try
           Beltway_workload.Trace.execute gc tr;
           Result.is_ok (Beltway.Verify.check gc)
         with Beltway.Gc.Out_of_memory _ -> true))

(* parse → print → parse must be the identity on accepted strings, and
   must keep selecting the same collector policy. *)
let policy_of c =
  match Beltway.Policy.resolve c with
  | Ok p -> Ok (Beltway.Policy.name p)
  | Error e -> Error e

let roundtrips s =
  match Config.parse s with
  | Error _ -> true
  | Ok c -> (
    let printed = Config.to_string c in
    match Config.parse printed with
    | Error e -> Alcotest.failf "reparse of %S (from %S) failed: %s" printed s e
    | Ok c2 ->
      if c <> c2 then
        Alcotest.failf "%S: parse(print(parse)) differs structurally" s;
      if Config.to_string c2 <> printed then
        Alcotest.failf "%S: print is not stable under reparse" s;
      (match (policy_of c, policy_of c2) with
      | Ok a, Ok b when a = b -> ()
      | Error _, Error _ -> ()
      | _ -> Alcotest.failf "%S: reparse selects a different policy" s);
      true)

(* Every registered configuration string must round-trip and resolve. *)
let test_registered_roundtrip () =
  List.iter
    (fun s ->
      let c = parse_ok s in
      checkb (s ^ " round-trips") true (roundtrips s);
      checkb (s ^ " resolves a policy") true (Result.is_ok (policy_of c)))
    [
      "ss"; "bss"; "appel"; "ba2"; "appel3"; "fixed:25"; "ofm:25"; "of:25";
      "25.25"; "100.100"; "25.25.100"; "100.100.100";
      (* explicit registry selections, the exemplars included *)
      "25.25+policy:beltway"; "25.25+policy:sweep:4"; "25.25+policy:sweep";
      "25.25+nofilter+policy:older-first"; "25.25+policy:sweep:6"; "of:25+policy:older-first";
    ]

let config_roundtrip_prop =
  let gen =
    QCheck.Gen.(
      let* x = int_range 1 100 in
      let* y = int_range 1 100 in
      let* suffix =
        oneofl
          [ ""; "+nofilter"; "+cards"; "+halfreserve"; "+remtrig:500";
            "+policy:beltway"; "+policy:sweep:3"; "+policy:sweep";
            "+nofilter+policy:older-first" ]
      in
      let* shape = oneofl [ `XY; `XY100 ] in
      match shape with
      | `XY -> return (Printf.sprintf "%d.%d%s" x y suffix)
      | `XY100 -> return (Printf.sprintf "%d.%d.100%s" x y suffix))
  in
  QCheck.Test.make ~name:"parse/print/parse is the identity and policy-stable"
    ~count:50 (QCheck.make gen) roundtrips

let suite =
  suite
  @ [
      ("registered configs round-trip", `Quick, test_registered_roundtrip);
      QCheck_alcotest.to_alcotest config_fuzz_prop;
      QCheck_alcotest.to_alcotest accepted_configs_run_prop;
      QCheck_alcotest.to_alcotest config_roundtrip_prop;
    ]
