(* The parallel drain's conformance gate: sharding a collection across
   domains must be invisible to the mutator.

   Three bars, rising:
   - byte-identity at [gc_domains = 1]: the dispatch must take the
     sequential path, so every per-collection statistic matches a
     default heap exactly;
   - Oracle equivalence at [gc_domains = k]: the same trace executed
     under k domains ends isomorphic to the collector-free mirror
     (hence to the 1-domain heap) and agrees exactly on reachable
     words, under the paranoid sanitizer throughout;
   - torture across domain counts: the adversarial scenarios complete
     (or OOM) soundly at 1, 2 and 4 domains, re-verifying integrity at
     every nth collection when [BELTWAY_VERIFY_EVERY] is set (the
     @parallel alias runs this file with it at 1). *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module Gc_stats = Beltway.Gc_stats
module Trace = Beltway_workload.Trace
module Torture = Beltway_workload.Torture
module Sanitizer = Beltway_check.Sanitizer
module Vec = Beltway_util.Vec

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let configs =
  [ "ss"; "appel"; "25.25.100"; "appel+cards"; "25.25.100+los:128" ]

let domain_counts = [ 2; 4 ]
let seeds = [ 11; 23; 47 ]

let make_gc ~config_s ~domains ~heap_kb =
  let config = Result.get_ok (Config.parse config_s) in
  Gc.create ~frame_log_words:8 ~gc_domains:domains ~config
    ~heap_bytes:(heap_kb * 1024) ()

(* One trace under one domain count, paranoid sanitizer attached:
   mirror-isomorphic at the end, clean integrity, clean sanitizer.
   Returns the exact reachable word count for cross-domain-count
   comparison. *)
let run_trace ~config_s ~domains tr =
  let gc = make_gc ~config_s ~domains ~heap_kb:768 in
  let san = Sanitizer.attach ~level:Sanitizer.Paranoid gc in
  (match Trace.compare_with_mirror gc tr with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s at %d domains: mirror divergence: %s" config_s domains e);
  Gc.full_collect gc;
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "%s at %d domains: integrity: %s" config_s domains e);
  checkb
    (Printf.sprintf "%s at %d domains: sanitizer clean over %d collections"
       config_s domains
       (Sanitizer.collections_checked san))
    true (Sanitizer.ok san);
  Beltway.Oracle.live_words gc

let test_equivalence config_s () =
  List.iter
    (fun seed ->
      let tr = Trace.random ~seed ~nroots:8 ~len:2500 in
      let base = run_trace ~config_s ~domains:1 tr in
      List.iter
        (fun d ->
          checki
            (Printf.sprintf "%s seed %d: %d domains reach the 1-domain heap"
               config_s seed d)
            base
            (run_trace ~config_s ~domains:d tr))
        domain_counts)
    seeds

(* [gc_domains = 1] must be the sequential collector, bit for bit: a
   heap explicitly configured for one domain replays a default heap's
   every statistic (the [collection] records are all-scalar, so
   structural equality is exact). *)
let test_one_domain_identity () =
  let tr = Trace.random ~seed:7 ~nroots:8 ~len:4000 in
  let run ~explicit =
    let config = Result.get_ok (Config.parse "25.25.100") in
    let gc =
      if explicit then
        Gc.create ~frame_log_words:8 ~gc_domains:1 ~config
          ~heap_bytes:(768 * 1024) ()
      else Gc.create ~frame_log_words:8 ~config ~heap_bytes:(768 * 1024) ()
    in
    Trace.execute gc tr;
    Gc.full_collect gc;
    Gc.stats gc
  in
  let a = run ~explicit:false and b = run ~explicit:true in
  checki "same collection count" (Gc_stats.gcs a) (Gc_stats.gcs b);
  checki "same words allocated" a.Gc_stats.words_allocated
    b.Gc_stats.words_allocated;
  checki "same barrier ops" a.Gc_stats.barrier_ops b.Gc_stats.barrier_ops;
  for i = 0 to Gc_stats.gcs a - 1 do
    let ca = Vec.get a.Gc_stats.collections i
    and cb = Vec.get b.Gc_stats.collections i in
    checkb (Printf.sprintf "collection %d identical" i) true (ca = cb)
  done

(* Same convention as [Test_torture]: with [BELTWAY_VERIFY_EVERY=n]
   the full integrity checker runs at every nth completed collection
   (the @parallel alias sets n=1), otherwise only at the end. *)
let verify_every =
  match Sys.getenv_opt "BELTWAY_VERIFY_EVERY" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None)
  | None -> None

let install_verify_every gc =
  match verify_every with
  | None -> ()
  | Some n ->
    let count = ref 0 in
    Beltway.State.add_hooks (Gc.state gc)
      {
        Beltway.State.noop_hooks with
        on_collect_end =
          (fun ~full_heap:_ ->
            incr count;
            if !count mod n = 0 then Beltway.Verify.check_exn gc);
      }

let test_torture domains () =
  List.iter
    (fun (t : Torture.t) ->
      List.iter
        (fun config_s ->
          let gc = make_gc ~config_s ~domains ~heap_kb:2048 in
          install_verify_every gc;
          let completed =
            try
              t.Torture.run gc;
              true
            with Gc.Out_of_memory _ -> false
          in
          if completed then begin
            (match Beltway.Verify.check gc with
            | Ok () -> ()
            | Error e ->
              Alcotest.failf "%s under %s at %d domains: integrity: %s"
                t.Torture.name config_s domains e);
            (try Gc.full_collect gc with Gc.Out_of_memory _ -> ());
            checki
              (Printf.sprintf "%s under %s at %d domains leaves no live data"
                 t.Torture.name config_s domains)
              0
              (Beltway.Oracle.live_words gc)
          end)
        [ "25.25.100"; "appel+cards" ])
    Torture.all

(* Non-moving strategies have no per-domain reserve chunks to shard
   over, so asking them to parallelise must be a clean, early, tested
   error — from [Strategy.check_domains], [Gc.create] and
   [Gc.set_gc_domains] alike — while 1 domain remains fine. *)
let test_strategy_rejection () =
  List.iter
    (fun strat ->
      let config_s = "25.25.100+strategy:" ^ strat in
      let config = Result.get_ok (Config.parse config_s) in
      let expected =
        Printf.sprintf
          "strategy %s does not support a parallel drain (--gc-domains 2); \
           use --gc-domains 1 or the copying strategy"
          strat
      in
      (match Beltway.Strategy.resolve config with
      | Error e -> Alcotest.failf "%s: did not resolve: %s" config_s e
      | Ok s -> (
        match Beltway.Strategy.check_domains s ~gc_domains:2 with
        | Ok () -> Alcotest.failf "%s accepted 2 domains" config_s
        | Error e ->
          Alcotest.(check string)
            (config_s ^ ": check_domains names the fix")
            expected e));
      (match
         Gc.create ~frame_log_words:8 ~gc_domains:2 ~config
           ~heap_bytes:(256 * 1024) ()
       with
      | exception Invalid_argument e ->
        Alcotest.(check string)
          (config_s ^ ": Gc.create rejects 2 domains")
          ("Gc.create: " ^ expected) e
      | _ -> Alcotest.failf "Gc.create accepted %s at 2 domains" config_s);
      (* 1 domain (explicit or defaulted) must still work... *)
      let gc =
        Gc.create ~frame_log_words:8 ~gc_domains:1 ~config
          ~heap_bytes:(256 * 1024) ()
      in
      (* ...and a later escalation is rejected without wedging the heap. *)
      (match Gc.set_gc_domains gc 4 with
      | exception Invalid_argument e ->
        checkb
          (config_s ^ ": set_gc_domains names the strategy")
          true
          (String.length e > String.length "Gc.set_gc_domains: "
          && String.sub e 0 19 = "Gc.set_gc_domains: ")
      | () -> Alcotest.failf "set_gc_domains accepted %s at 4 domains" config_s);
      checki (config_s ^ ": heap stays sequential") 1 (Gc.gc_domains gc);
      let ty = Gc.register_type gc ~name:"parallel.reject" in
      ignore (Gc.alloc gc ~ty ~nfields:2);
      Gc.full_collect gc)
    [ "marksweep"; "markcompact" ]

let suite =
  ("1 domain is the sequential collector", `Quick, test_one_domain_identity)
  :: ("non-moving strategies reject a parallel drain", `Quick,
      test_strategy_rejection)
  :: List.map
       (fun cs -> ("oracle equivalence " ^ cs, `Slow, test_equivalence cs))
       configs
  @ List.map
      (fun d ->
        (Printf.sprintf "torture at %d domains" d, `Slow, test_torture d))
      [ 1; 2; 4 ]
