(* The policy registry's conformance gate (dune alias @policy).

   Every registered policy — looked up purely by its registry name,
   with no reference to any concrete policy module — must drive a real
   heap soundly: a mirrored random workload under the level-2
   (paranoid) sanitizer, then a full collection leaving zero retained
   garbage and a clean integrity check. A new registry entry is picked
   up here automatically. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module Policy = Beltway.Policy
module Sanitizer = Beltway_check.Sanitizer
module Trace = Beltway_workload.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse_ok s =
  match Config.parse s with
  | Ok c -> c
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

(* One registered policy, by name only: exemplar config string →
   parse → resolve → mirrored workload under the paranoid sanitizer →
   full collect → oracle + integrity. *)
let conformance name () =
  let cs = Policy.exemplar name in
  let config = parse_ok cs in
  (match Policy.resolve config with
  | Ok p -> checks (cs ^ " resolves to its own registry entry") name (Policy.name p)
  | Error e -> Alcotest.failf "Policy.resolve %S: %s" cs e);
  let gc = Gc.create ~frame_log_words:8 ~config ~heap_bytes:(768 * 1024) () in
  checks "Gc.policy_name agrees" name (Gc.policy_name gc);
  let san = Sanitizer.attach ~level:Sanitizer.Paranoid gc in
  List.iter
    (fun seed ->
      let tr = Trace.random ~seed ~nroots:8 ~len:2000 in
      match Trace.compare_with_mirror gc tr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "policy %s: mirror divergence: %s" name e)
    [ 1; 2; 3 ];
  Gc.full_collect gc;
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "policy %s: integrity: %s" name e);
  checki
    (Printf.sprintf "policy %s: full collection reclaims all garbage" name)
    0
    (Beltway.Oracle.retained_garbage_words gc);
  checkb
    (Printf.sprintf "policy %s: sanitizer clean after %d collections" name
       (Sanitizer.collections_checked san))
    true (Sanitizer.ok san)

(* Every pre-existing config string must resolve, through the registry
   alone, to the policy its order defaulted to before policies existed. *)
let test_default_resolution () =
  List.iter
    (fun (cs, expect) ->
      let p =
        match Policy.resolve (parse_ok cs) with
        | Ok p -> p
        | Error e -> Alcotest.failf "resolve %S: %s" cs e
      in
      checks (cs ^ " default policy") expect (Policy.name p))
    [
      ("ss", "older-first"); ("bss", "older-first"); ("ofm:25", "older-first");
      ("of:25", "older-first"); ("appel", "beltway"); ("ba2", "beltway");
      ("appel3", "beltway"); ("fixed:25", "beltway"); ("25.25", "beltway");
      ("100.100", "beltway"); ("25.25.100", "beltway"); ("100.100.100", "beltway");
    ]

let test_resolution_errors () =
  let err cs =
    match Policy.resolve (parse_ok cs) with
    | Ok _ -> Alcotest.failf "resolve %S unexpectedly succeeded" cs
    | Error e -> e
  in
  checkb "unknown policy is rejected" true
    (String.length (err "25.25+policy:nonesuch") > 0);
  checkb "sweep rejects a non-numeric period" true
    (String.length (err "25.25+policy:sweep:often") > 0);
  checkb "sweep rejects period < 2" true
    (String.length (err "25.25+policy:sweep:1") > 0);
  checkb "beltway takes no argument" true
    (String.length (err "25.25+policy:beltway:3") > 0);
  (* The nursery-source filter assumes belt-major stamps; the explicit
     +policy override must not smuggle it under FIFO order. *)
  checkb "older-first rejects the nursery filter" true
    (String.length (err "25.25+policy:older-first") > 0);
  checkb "older-first accepts +nofilter" true
    (match Policy.resolve (parse_ok "25.25+nofilter+policy:older-first") with
    | Ok p -> Policy.name p = "older-first"
    | Error _ -> false);
  (* Gc.create surfaces resolution failures as Invalid_argument. *)
  checkb "Gc.create raises on an unknown policy" true
    (try
       ignore
         (Gc.create ~config:(parse_ok "25.25+policy:nonesuch")
            ~heap_bytes:(64 * 1024) ());
       false
     with Invalid_argument _ -> true)

(* The collector the old knobs could not express: under plain 25.25, a
   large cycle spanning two top-belt increments migrates forever while
   the mutator runs (the S4.2.4 javac pathology — each collection
   copies the remembered half forward, out of the next plan's
   closure); under +policy:sweep the periodic full-heap target
   collects both halves together and reclaims it, without needing a
   third belt. *)
let test_sweep_completeness () =
  let cycle_half_words = 10 * 102 in
  let full_heap_gcs gc =
    Beltway_util.Vec.fold
      (fun n (c : Beltway.Gc_stats.collection) ->
        if c.Beltway.Gc_stats.full_heap then n + 1 else n)
      0 (Gc.stats gc).Beltway.Gc_stats.collections
  in
  let run cs =
    let config = parse_ok cs in
    let gc = Gc.create ~frame_log_words:8 ~config ~heap_bytes:(256 * 1024) () in
    let ty = Gc.register_type gc ~name:"node" in
    let roots = Gc.roots gc in
    let g = Roots.new_global roots Value.null in
    (* A 10-node chain rooted in [slot], linked through field 0. *)
    let build_chain slot =
      Roots.set_global roots slot (Value.of_addr (Gc.alloc gc ~ty ~nfields:100));
      let tail = ref (Roots.get_global roots slot) in
      for _ = 2 to 10 do
        let n = Gc.alloc gc ~ty ~nfields:100 in
        Gc.write gc (Value.to_addr !tail) 0 (Value.of_addr n);
        tail := Gc.read gc (Value.to_addr !tail) 0
      done
    in
    (* Re-walk from the root: collections move objects. *)
    let tail_of slot =
      let rec go v =
        let n = Gc.read gc (Value.to_addr v) 0 in
        if Value.is_ref n then go n else v
      in
      go (Roots.get_global roots slot)
    in
    (* Chain a, promoted off the nursery; then the younger chain b in a
       later increment; tie tails to heads through field 1 and drop
       both roots — one big cross-increment cyclic garbage structure. *)
    let a = Roots.new_global roots Value.null in
    build_chain a;
    for _ = 1 to 4 do
      Gc.collect gc
    done;
    let b = Roots.new_global roots Value.null in
    build_chain b;
    Gc.collect gc;
    Gc.write gc (Value.to_addr (tail_of a)) 1 (Roots.get_global roots b);
    Gc.write gc (Value.to_addr (tail_of b)) 1 (Roots.get_global roots a);
    Roots.set_global roots a Value.null;
    Roots.set_global roots b Value.null;
    let full_before = full_heap_gcs gc in
    (* Steady-state mutation: enough ordinary nursery collections for
       many sweep periods to elapse. *)
    for _ = 1 to 40000 do
      Roots.set_global roots g (Value.of_addr (Gc.alloc gc ~ty ~nfields:8))
    done;
    (full_heap_gcs gc - full_before, Beltway.Oracle.retained_garbage_words gc)
  in
  let plain_full, plain_retained = run "25.25" in
  let sweep_full, sweep_retained = run "25.25+policy:sweep:4" in
  checki "25.25 schedules no steady-state full-heap collection" 0 plain_full;
  checkb "sweep schedules steady-state full-heap collections" true (sweep_full > 0);
  checkb
    (Printf.sprintf "sweep reclaims the stranded cycle (%d vs %d words retained)"
       sweep_retained plain_retained)
    true
    (plain_retained > sweep_retained + cycle_half_words)

let suite =
  List.map
    (fun (name, _) -> ("policy conformance: " ^ name, `Quick, conformance name))
    Policy.registry
  @ [
      ("default resolution of the 12 configs", `Quick, test_default_resolution);
      ("resolution errors", `Quick, test_resolution_errors);
      ("sweep completeness by schedule", `Quick, test_sweep_completeness);
    ]
