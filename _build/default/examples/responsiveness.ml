(* Responsiveness: minimum mutator utilization (paper S4.3, Figure 11)
   for an interpreted program.

   Runs Beltlang's GCBench under collectors with different increment
   sizes and prints their MMU curves: smaller increments bound pause
   times and push the curve left (better responsiveness), at some cost
   in throughput — exactly the trade-off of Figure 11.

   Run with: dune exec examples/responsiveness.exe *)

let configs = [ "10.10.100"; "33.33.100"; "appel"; "ss" ]

let () =
  let program = Beltlang.Programs.gcbench in
  let model = Beltway_sim.Cost_model.default in
  let timelines =
    List.map
      (fun cs ->
        let config =
          match Beltway.Config.parse cs with Ok c -> c | Error e -> failwith e
        in
        let gc = Beltway.Gc.create ~config ~heap_bytes:(512 * 1024) () in
        let interp = Beltlang.Interp.create gc in
        Beltlang.Interp.run_string interp program.Beltlang.Programs.source;
        (cs, Beltway_sim.Mmu.timeline model (Beltway.Gc.stats gc)))
      configs
  in
  let table =
    Beltway_util.Table.create
      ~title:"MMU for interpreted GCBench (higher is better; window in cost units)"
      ~columns:("window" :: configs)
  in
  let windows = [ 1e4; 2e4; 4e4; 8e4; 1.6e5; 3.2e5; 6.4e5 ] in
  List.iter
    (fun w ->
      Beltway_util.Table.add_row table
        (Printf.sprintf "%.0e" w
        :: List.map
             (fun (_, tl) -> Printf.sprintf "%.3f" (Beltway_sim.Mmu.mmu tl ~window:w))
             timelines))
    windows;
  Beltway_util.Table.add_row table
    ("max pause"
    :: List.map (fun (_, tl) -> Printf.sprintf "%.2e" (Beltway_sim.Mmu.max_pause tl)) timelines);
  Beltway_util.Table.add_row table
    ("utilization"
    :: List.map
         (fun (_, tl) -> Printf.sprintf "%.3f" (Beltway_sim.Mmu.utilization tl))
         timelines);
  Beltway_util.Table.print table;
  print_endline
    "Smaller increments (10.10.100) bound the worst pause; the semi-space\n\
     collector pays one heap-sized pause (its MMU x-intercept is far right)."
