(* Completeness: the paper's S4.2.4 pathology, reproduced directly.

   Beltway X.X collects increments independently and so can never
   reclaim a garbage cycle that spans increments; X.X.100's third belt
   restores completeness at the cost of occasional full collections.
   Here we build large cyclic rings, promote them across increments,
   drop them, and use the reachability oracle to watch the retained
   garbage: under 25.25 it only grows; under 25.25.100 a full
   collection eventually returns it.

   Run with: dune exec examples/completeness.exe *)

module Gc = Beltway.Gc
open Beltway_heap

let build_ring gc ty roots n =
  (* A ring of n cells, reachable from a single global slot. *)
  let head = Roots.new_global roots Value.null in
  let prev = Roots.new_global roots Value.null in
  for i = 1 to n do
    let cell = Gc.alloc gc ~ty ~nfields:2 in
    Gc.write gc cell 0 (Value.of_int i);
    (match Roots.get_global roots prev with
    | v when Value.is_null v -> Roots.set_global roots head (Value.of_addr cell)
    | v -> Gc.write gc (Value.to_addr v) 1 (Value.of_addr cell));
    Roots.set_global roots prev (Value.of_addr cell)
  done;
  (* close the cycle: last -> first *)
  (match (Roots.get_global roots prev, Roots.get_global roots head) with
  | last, first when Value.is_ref last && Value.is_ref first ->
    Gc.write gc (Value.to_addr last) 1 first
  | _ -> ());
  Roots.set_global roots prev Value.null;
  head

let churn gc ty ~words =
  (* Plain allocation pressure to force collections (and promotion of
     any live rings across increments). *)
  let start = Gc.words_allocated gc in
  while Gc.words_allocated gc - start < words do
    ignore (Gc.alloc gc ~ty ~nfields:6)
  done

let run config_str =
  let config =
    match Beltway.Config.parse config_str with Ok c -> c | Error e -> failwith e
  in
  let gc = Gc.create ~config ~heap_bytes:(384 * 1024) () in
  let ty = Gc.register_type gc ~name:"cell" in
  let roots = Gc.roots gc in
  Format.printf "--- %s ---@." config_str;
  (try
     for round = 1 to 12 do
       let ring = build_ring gc ty roots 3_000 in
       (* Promote the ring across increments, then make it garbage. *)
       churn gc ty ~words:120_000;
       Roots.set_global roots ring Value.null;
       churn gc ty ~words:120_000;
       let retained = Beltway.Oracle.retained_garbage_words gc in
       Format.printf "round %d: %6d words of floating garbage, %3d GCs@." round
         retained
         (Beltway.Gc_stats.gcs (Gc.stats gc))
     done
   with Gc.Out_of_memory m ->
     Format.printf "OUT OF MEMORY: %s@." m;
     Format.printf
       "(the incomplete collector drowned in its own unreclaimable cycles)@.");
  Format.printf "@."

let () =
  print_endline
    "Cyclic garbage spanning increments: Beltway 25.25 (incomplete) retains it\n\
     forever; Beltway 25.25.100 reclaims it at full collections (paper S4.2.4).\n";
  run "25.25";
  run "25.25.100"
