(* Quickstart: create a Beltway-collected heap, allocate a linked list
   through the public API, survive collections, and read statistics.

   Run with: dune exec examples/quickstart.exe *)

module Gc = Beltway.Gc
module Config = Beltway.Config
open Beltway_heap

let () =
  (* 1. Pick a collector with the paper's command-line syntax: here the
     complete Beltway 25.25.100, a 2 MiB heap. *)
  let config =
    match Config.parse "25.25.100" with Ok c -> c | Error e -> failwith e
  in
  let gc = Gc.create ~config ~heap_bytes:(2 * 1024 * 1024) () in

  (* 2. Register an object type (this creates its immortal type object
     in the boot space, like a Jikes RVM TIB). *)
  let cons_ty = Gc.register_type gc ~name:"cons" in

  (* 3. Allocate. Objects move during collection, so anything held
     across an allocation lives in a root: a global slot here. *)
  let roots = Gc.roots gc in
  let list_head = Roots.new_global roots Value.null in
  for i = 1 to 100_000 do
    let cell = Gc.alloc gc ~ty:cons_ty ~nfields:2 in
    Gc.write gc cell 0 (Value.of_int i);
    (* link to the previous head; the write barrier runs underneath *)
    Gc.write gc cell 1 (Roots.get_global roots list_head);
    if i mod 10 = 0 then
      (* keep every 10th cell: the rest become garbage for the belts *)
      Roots.set_global roots list_head (Value.of_addr cell)
  done;

  (* 4. Walk the surviving structure (collections moved it many times;
     the root always points at the current copy). *)
  let rec length v acc =
    if Value.is_null v then acc
    else length (Gc.read gc (Value.to_addr v) 1) (acc + 1)
  in
  let len = length (Roots.get_global roots list_head) 0 in
  Format.printf "surviving list length: %d@." len;

  (* 5. Statistics: how hard did the collector work? *)
  Format.printf "%a@." Beltway.Gc_stats.pp_summary (Gc.stats gc);
  Format.printf "copy reserve right now: %d frames@." (Gc.reserve_frames gc);

  (* 6. The heap can be verified against an independent reachability
     oracle at any stop-the-world point. *)
  (match Beltway.Verify.check gc with
  | Ok () -> Format.printf "heap integrity: OK@."
  | Error e -> Format.printf "heap integrity: FAILED (%s)@." e);
  Format.printf "live data (oracle): %d words@." (Beltway.Oracle.live_words gc)
