examples/quickstart.mli:
