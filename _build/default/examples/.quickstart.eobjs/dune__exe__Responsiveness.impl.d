examples/responsiveness.ml: Beltlang Beltway Beltway_sim Beltway_util List Printf
