examples/quickstart.ml: Beltway Beltway_heap Format Roots Value
