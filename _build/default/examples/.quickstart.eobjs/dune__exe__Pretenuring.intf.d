examples/pretenuring.mli:
