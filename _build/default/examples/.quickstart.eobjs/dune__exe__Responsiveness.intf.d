examples/responsiveness.mli:
