examples/completeness.mli:
