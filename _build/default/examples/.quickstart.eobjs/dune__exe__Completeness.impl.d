examples/completeness.ml: Beltway Beltway_heap Format Roots Value
