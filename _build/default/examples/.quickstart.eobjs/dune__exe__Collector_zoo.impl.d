examples/collector_zoo.ml: Beltway Beltway_sim Beltway_util Beltway_workload List Printf
