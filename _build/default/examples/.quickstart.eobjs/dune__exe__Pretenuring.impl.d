examples/pretenuring.ml: Array Beltway Beltway_heap Format Result Roots Value
