examples/collector_zoo.mli:
