(* Pretenuring: segregation by allocation site (paper S5).

   The Beltway framework supports placing objects directly on higher
   belts. For data the program knows will live long — here a database
   built at startup and kept for the whole run — pretenuring skips the
   nursery entirely: the objects are never copied by minor collections,
   cutting GC work.

   This example builds the same workload twice (long-lived table +
   short-lived transaction churn) and compares normal allocation
   against pretenured placement of the table.

   Run with: dune exec examples/pretenuring.exe *)

module Gc = Beltway.Gc
open Beltway_heap

let run ~pretenure =
  let config = Result.get_ok (Beltway.Config.parse "25.25.100") in
  let gc = Gc.create ~config ~heap_bytes:(1024 * 1024) () in
  let ty = Gc.register_type gc ~name:"rec" in
  let roots = Gc.roots gc in
  (* the long-lived table: 600 records *)
  let table =
    Array.init 600 (fun i ->
        let a =
          if pretenure then Gc.alloc_pretenured gc ~ty ~nfields:16 ~belt:2
          else Gc.alloc gc ~ty ~nfields:16
        in
        Gc.write gc a 0 (Value.of_int i);
        Roots.new_global roots (Value.of_addr a))
  in
  (* transaction churn: short-lived allocation + occasional updates *)
  for i = 1 to 120_000 do
    let tmp = Gc.alloc gc ~ty ~nfields:6 in
    if i mod 64 = 0 then begin
      let slot = table.(i mod 600) in
      let rec_addr = Value.to_addr (Roots.get_global roots slot) in
      Gc.write gc rec_addr 1 (Value.of_addr tmp)
    end
  done;
  let stats = Gc.stats gc in
  Format.printf "%-12s gcs=%-4d copied=%7d words  barrier slow=%-5d peak=%d frames@."
    (if pretenure then "pretenured" else "normal")
    (Beltway.Gc_stats.gcs stats)
    (Beltway.Gc_stats.total_copied_words stats)
    stats.Beltway.Gc_stats.barrier_slow stats.Beltway.Gc_stats.peak_frames;
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Format.printf "integrity FAILED: %s@." e);
  Beltway.Gc_stats.total_copied_words stats

let () =
  print_endline
    "Long-lived table + short-lived churn, with and without pretenuring the\n\
     table onto the top belt (paper S5: segregation by allocation site).\n";
  let normal = run ~pretenure:false in
  let pret = run ~pretenure:true in
  Format.printf "@.copying avoided by pretenuring: %d words (%.0f%%)@."
    (normal - pret)
    (100.0 *. float_of_int (normal - pret) /. float_of_int (max 1 normal))
