  $ beltlang -p nqueens
  $ beltlang -p tak -g ss
  $ beltlang --list
  $ cat > hello.bl <<'EOF'
  > (define (square x) (* x x))
  > (print (square 12))
  > EOF
  $ beltlang hello.bl
  $ beltlang -p tak -g bogus
  $ beltway-run -g 25.25.100 -b raytrace -H 1024 -q --verify
  $ beltway-run -g of:25 -b jess -H 1024 -q --verify
  $ beltway-run -g appel -b pseudojbb -H 64 -q 2>&1 | head -c 13
  $ beltway-experiments --list
