(* Tests for the mutation engine, lifetime samplers and the six
   SPEC-like benchmark drivers. *)

module Mutator = Beltway_workload.Mutator
module Lifetime = Beltway_workload.Lifetime
module Spec = Beltway_workload.Spec
module Gc = Beltway.Gc
module Config = Beltway.Config
module Prng = Beltway_util.Prng

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let gc_of ?(heap_kb = 2048) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~config ~heap_bytes:(heap_kb * 1024) ()

let mut () = Mutator.create ~seed:1 (gc_of "appel")

(* ---- Mutator engine ---- *)

let test_handles () =
  let m = mut () in
  let gc = Mutator.gc m in
  let ty = Gc.register_type gc ~name:"t" in
  let h = Mutator.alloc m ~ty ~nfields:2 in
  checkb "live" true (Mutator.is_live m h);
  Mutator.set_int m h 0 99;
  Gc.full_collect gc;
  checki "survives via handle" 99
    (Value.to_int (Beltway.Gc.read gc (Mutator.get m h) 0));
  Mutator.drop m h;
  checkb "dropped" false (Mutator.is_live m h);
  checkb "get after drop raises" true
    (try
       ignore (Mutator.get m h);
       false
     with Invalid_argument _ -> true);
  checkb "double drop is harmless" true
    (Mutator.drop m h;
     true)

let test_handle_recycling () =
  let m = mut () in
  let gc = Mutator.gc m in
  let ty = Gc.register_type gc ~name:"t" in
  let h1 = Mutator.alloc m ~ty ~nfields:1 in
  let before = Mutator.live_handles m in
  Mutator.drop m h1;
  let h2 = Mutator.alloc m ~ty ~nfields:1 in
  checki "slot recycled, not grown" before (Mutator.live_handles m);
  Mutator.drop m h2

let test_death_schedule () =
  let m = mut () in
  let gc = Mutator.gc m in
  let ty = Gc.register_type gc ~name:"t" in
  let h = Mutator.alloc_dying m ~ty ~nfields:2 ~dies_in:100 in
  Mutator.tick m;
  checkb "alive before its time" true (Mutator.is_live m h);
  (* advance the allocation clock past the death time *)
  for _ = 1 to 40 do
    Mutator.alloc_temp m ~ty ~nfields:2
  done;
  Mutator.tick m;
  checkb "dead after 160 words" false (Mutator.is_live m h)

let test_drain () =
  let m = mut () in
  let gc = Mutator.gc m in
  let ty = Gc.register_type gc ~name:"t" in
  let h = Mutator.alloc_dying m ~ty ~nfields:2 ~dies_in:1_000_000 in
  Mutator.drain m;
  checkb "drain drops scheduled handles" false (Mutator.is_live m h)

let test_linking () =
  let m = mut () in
  let gc = Mutator.gc m in
  let ty = Gc.register_type gc ~name:"t" in
  let a = Mutator.alloc m ~ty ~nfields:2 in
  let b = Mutator.alloc m ~ty ~nfields:2 in
  Mutator.link m ~from:a ~field:0 ~to_:b;
  (match Mutator.child m a 0 with
  | Some c ->
    checkb "child resolves to b's object" true (Mutator.get m c = Mutator.get m b);
    Mutator.drop m c
  | None -> Alcotest.fail "no child");
  Mutator.unlink m ~from:a ~field:0;
  checkb "unlinked" true (Mutator.child m a 0 = None);
  Mutator.alloc_into m ~parent:a ~field:1 ~ty ~nfields:3;
  checkb "alloc_into links" true (Mutator.child m a 1 <> None)

(* ---- Lifetime samplers ---- *)

let test_lifetime_positive () =
  let rng = Prng.create ~seed:4 in
  let samplers =
    [
      Lifetime.exponential ~mean:100;
      Lifetime.uniform ~lo:1 ~hi:50;
      Lifetime.pareto ~shape:1.5 ~scale:10 ~cap:10_000;
      Lifetime.constant 7;
      Lifetime.generational ~young_mean:10 ~old_mean:1_000 ~survivor_fraction:0.1;
    ]
  in
  List.iter
    (fun s ->
      for _ = 1 to 500 do
        checkb "positive" true (s rng >= 1)
      done)
    samplers

let test_lifetime_mixture () =
  let rng = Prng.create ~seed:5 in
  let s = Lifetime.mixture [ (1.0, Lifetime.constant 1); (1.0, Lifetime.constant 100) ] in
  let ones = ref 0 and hundreds = ref 0 in
  for _ = 1 to 2_000 do
    match s rng with
    | 1 -> incr ones
    | 100 -> incr hundreds
    | n -> Alcotest.failf "unexpected sample %d" n
  done;
  checkb "both components drawn" true (!ones > 700 && !hundreds > 700);
  Alcotest.check_raises "empty mixture" (Invalid_argument "Lifetime.mixture: empty")
    (fun () ->
      let (_ : Lifetime.sampler) = Lifetime.mixture [] in
      ())

let test_lifetime_generational_shape () =
  let rng = Prng.create ~seed:6 in
  let s = Lifetime.generational ~young_mean:100 ~old_mean:100_000 ~survivor_fraction:0.1 in
  let old = ref 0 in
  let n = 5_000 in
  for _ = 1 to n do
    if s rng > 10_000 then incr old
  done;
  (* roughly 10% should be long-lived *)
  checkb "survivor fraction plausible" true (!old > n / 20 && !old < n / 4)

(* ---- Spec benchmarks ---- *)

let test_bench_runs (b : Spec.t) () =
  let gc = gc_of ~heap_kb:4096 "appel" in
  b.Spec.run gc;
  let stats = Gc.stats gc in
  let words = stats.Beltway.Gc_stats.words_allocated in
  checkb
    (Printf.sprintf "allocation near budget (%d vs %d)" words b.Spec.total_alloc_words)
    true
    (words >= b.Spec.total_alloc_words * 8 / 10
    && words <= b.Spec.total_alloc_words * 13 / 10);
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity after %s: %s" b.Spec.name e);
  (* all handles were dropped: everything is garbage at the end *)
  checki "no reachable data at end" 0 (Beltway.Oracle.live_words gc)

let test_bench_determinism () =
  let run () =
    let gc = gc_of ~heap_kb:2048 "25.25.100" in
    Spec.jess.Spec.run gc;
    let s = Gc.stats gc in
    (s.Beltway.Gc_stats.words_allocated, Beltway.Gc_stats.gcs s,
     s.Beltway.Gc_stats.barrier_slow)
  in
  checkb "two runs identical" true (run () = run ())

let test_bench_registry () =
  checki "six benchmarks" 6 (List.length Spec.all);
  checkb "by_name" true (Spec.by_name "javac" <> None);
  checkb "unknown" true (Spec.by_name "nope" = None)

let suite =
  [
    ("handles", `Quick, test_handles);
    ("handle recycling", `Quick, test_handle_recycling);
    ("death schedule", `Quick, test_death_schedule);
    ("drain", `Quick, test_drain);
    ("linking", `Quick, test_linking);
    ("lifetime positivity", `Quick, test_lifetime_positive);
    ("lifetime mixture", `Quick, test_lifetime_mixture);
    ("lifetime generational shape", `Quick, test_lifetime_generational_shape);
    ("bench determinism", `Quick, test_bench_determinism);
    ("bench registry", `Quick, test_bench_registry);
  ]
  @ List.map
      (fun b -> ("benchmark " ^ b.Spec.name, `Slow, test_bench_runs b))
      Spec.all
