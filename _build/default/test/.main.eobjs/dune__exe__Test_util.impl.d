test/test_util.ml: Alcotest Array Beltway_util Fun List QCheck QCheck_alcotest String
