test/test_workload.ml: Alcotest Beltway Beltway_util Beltway_workload List Printf Result Value
