test/test_config.ml: Alcotest Array Beltway Beltway_workload List Printf QCheck QCheck_alcotest Result
