test/test_beltlang.ml: Alcotest Beltlang Beltway List Printf Result Value
