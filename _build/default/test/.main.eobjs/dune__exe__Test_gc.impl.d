test/test_gc.ml: Alcotest Array Beltway Beltway_util Format Hashtbl List Object_model Option Result Roots String Value
