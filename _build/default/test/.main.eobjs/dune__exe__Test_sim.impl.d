test/test_sim.ml: Alcotest Beltway Beltway_sim Beltway_workload Gen List QCheck QCheck_alcotest
