test/test_trace.ml: Alcotest Beltway Beltway_workload List Printf QCheck QCheck_alcotest Result
