test/main.ml: Alcotest Test_beltlang Test_cards Test_config Test_core Test_gc Test_heap Test_los Test_schedule Test_sim Test_torture Test_trace Test_util Test_workload
