test/test_core.ml: Alcotest Beltway Beltway_util List Memory Object_model Option Result Value
