test/test_torture.ml: Alcotest Beltway Beltway_workload Fun List Printf Result
