test/test_heap.ml: Addr Alcotest Boot_space List Memory Object_model Printf QCheck QCheck_alcotest Roots Type_registry Value
