test/test_schedule.ml: Alcotest Array Beltway Beltway_workload Hashtbl List QCheck QCheck_alcotest Result Roots Value
