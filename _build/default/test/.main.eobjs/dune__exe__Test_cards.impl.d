test/test_cards.ml: Alcotest Beltway Beltway_util Beltway_workload List Result Roots Value
