test/test_los.ml: Alcotest Beltway Beltway_workload List Option Result Roots Value
