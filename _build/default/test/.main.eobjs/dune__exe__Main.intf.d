test/main.mli:
