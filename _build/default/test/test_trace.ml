(* Differential testing: random mutation traces executed against every
   collector configuration must agree with a pure-OCaml mirror, and
   leave the heap structurally sound. This is the suite's strongest
   whole-system property. *)

module Trace = Beltway_workload.Trace
module Gc = Beltway.Gc
module Config = Beltway.Config

let configs =
  [
    "ss"; "appel"; "appel3"; "fixed:25"; "ofm:25"; "of:25"; "25.25"; "25.25.100";
    "10.10.100"; "appel+ttd:8"; "25.25.100+remtrig:2000"; "40.20"; "of:10";
    "25.25.100+nofilter"; "25.25.100+halfreserve";
  ]

let gc_of config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~frame_log_words:8 ~config ~heap_bytes:(192 * 1024) ()

let run_one config_str seed =
  let tr = Trace.random ~seed ~nroots:10 ~len:2500 in
  let gc = gc_of config_str in
  (match Trace.compare_with_mirror gc tr with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d under %s: %s" seed config_str e);
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d under %s: integrity: %s" seed config_str e

let differential_prop config_str =
  QCheck.Test.make
    ~name:(Printf.sprintf "trace differential (%s)" config_str)
    ~count:12 QCheck.small_nat
    (fun seed ->
      let tr = Trace.random ~seed:(seed + 1) ~nroots:8 ~len:1500 in
      let gc = gc_of config_str in
      Result.is_ok (Trace.compare_with_mirror gc tr)
      && Result.is_ok (Beltway.Verify.check gc))

(* A handcrafted trace covering every op, as a deterministic anchor. *)
let test_handcrafted () =
  let open Trace in
  let tr =
    {
      nroots = 3;
      ops =
        [
          Alloc { root = 0; nfields = 2 };
          Write_int { src = 0; field = 0; v = 11 };
          Alloc { root = 1; nfields = 3 };
          Write { src = 1; field = 0; dst = 0 };
          Copy_root { src = 1; dst = 2 };
          Collect;
          Deref { src = 2; field = 0; dst = 0 };
          Write { src = 0; field = 1; dst = 2 } (* cycle: child -> parent *);
          Collect;
          Write_null { src = 1; field = 0 };
          Clear_root { root = 1 };
          Collect;
        ];
    }
  in
  List.iter
    (fun cs ->
      match Trace.compare_with_mirror (gc_of cs) tr with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" cs e)
    configs

(* Out-of-bounds writes are no-ops on both sides. *)
let test_oob_fields_ignored () =
  let open Trace in
  let tr =
    {
      nroots = 2;
      ops =
        [
          Alloc { root = 0; nfields = 1 };
          Write_int { src = 0; field = 5; v = 9 };
          Deref { src = 0; field = 7; dst = 1 };
          Write { src = 1; field = 0; dst = 0 } (* src null: no-op *);
        ];
    }
  in
  match Trace.compare_with_mirror (gc_of "appel") tr with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let suite =
  List.concat_map
    (fun cs ->
      [
        (Printf.sprintf "fixed seeds (%s)" cs, `Quick, fun () ->
          List.iter (run_one cs) [ 1; 2; 3 ]);
        QCheck_alcotest.to_alcotest (differential_prop cs);
      ])
    configs
  @ [
      ("handcrafted trace", `Quick, test_handcrafted);
      ("out-of-bounds fields ignored", `Quick, test_oob_fields_ignored);
    ]
