(* Tests for the large object space extension: objects at or above the
   configured threshold live as pinned single-object increments on a
   dedicated top belt — never copied, traced in place, reclaimed whole
   when a plan reaches them unreachable. *)

module Gc = Beltway.Gc
module Config = Beltway.Config
module State = Beltway.State

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* frame_log_words 8 = 256-word frames, so a 300-field object spans
   two frames. *)
let gc_of ?(heap_kb = 256) config_str =
  let config = Result.get_ok (Config.parse config_str) in
  Gc.create ~frame_log_words:8 ~config ~heap_bytes:(heap_kb * 1024) ()

let test_threshold_routing () =
  let gc = gc_of "appel+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let st = Gc.state gc in
  let small = Gc.alloc gc ~ty ~nfields:10 in
  let big = Gc.alloc gc ~ty ~nfields:200 in
  let inc_of a = Option.get (State.inc_of_frame st (State.frame_of_addr st a)) in
  checkb "small object not pinned" false (inc_of small).Beltway.Increment.pinned;
  checkb "big object pinned" true (inc_of big).Beltway.Increment.pinned;
  checki "pinned on the LOS belt" (Option.get (State.los_belt st))
    (inc_of big).Beltway.Increment.belt

let test_multi_frame_object () =
  let gc = gc_of "appel+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  (* 600 fields = 602 words: three 256-word frames *)
  let big = Gc.alloc gc ~ty ~nfields:600 in
  let g = Roots.new_global roots (Value.of_addr big) in
  for i = 0 to 599 do
    Gc.write gc big i (Value.of_int (i * 3))
  done;
  Gc.full_collect gc;
  let big = Value.to_addr (Roots.get_global roots g) in
  checki "600 fields" 600 (Gc.nfields gc big);
  let ok = ref true in
  for i = 0 to 599 do
    if Value.to_int (Gc.read gc big i) <> i * 3 then ok := false
  done;
  checkb "contents intact across frame seams" true !ok

let test_pinned_never_moves () =
  let gc = gc_of "ss+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let big = Gc.alloc gc ~ty ~nfields:300 in
  let g = Roots.new_global roots (Value.of_addr big) in
  let small = Gc.alloc gc ~ty ~nfields:2 in
  let gs = Roots.new_global roots (Value.of_addr small) in
  Gc.full_collect gc;
  checki "large object did not move" big (Value.to_addr (Roots.get_global roots g));
  checkb "small object moved" true
    (small <> Value.to_addr (Roots.get_global roots gs))

let test_unreachable_large_reclaimed () =
  let gc = gc_of "appel+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let big = Gc.alloc gc ~ty ~nfields:400 in
  let g = Roots.new_global roots (Value.of_addr big) in
  let used_with = Gc.frames_used gc in
  Roots.set_global roots g Value.null;
  Gc.full_collect gc;
  checkb "frames returned" true (Gc.frames_used gc < used_with);
  checki "nothing retained" 0 (Beltway.Oracle.retained_garbage_words gc)

let test_large_to_young_pointers () =
  let gc = gc_of "25.25.100+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let big = Gc.alloc gc ~ty ~nfields:200 in
  let g = Roots.new_global roots (Value.of_addr big) in
  (* store young refs into the old large object, then churn *)
  for round = 1 to 50 do
    let young = Gc.alloc gc ~ty ~nfields:4 in
    Gc.write gc young 0 (Value.of_int round);
    let big = Value.to_addr (Roots.get_global roots g) in
    Gc.write gc big (round mod 200) (Value.of_addr young);
    for _ = 1 to 200 do
      ignore (Gc.alloc gc ~ty ~nfields:6)
    done
  done;
  (match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e);
  (* the young objects stored into the large object must be live *)
  let big = Value.to_addr (Roots.get_global roots g) in
  let v = Gc.read gc big 50 in
  checkb "field 50 holds a live young object" true
    (Value.is_ref v && Value.to_int (Gc.read gc (Value.to_addr v) 0) = 50)

let test_large_holds_structure_live () =
  let gc = gc_of "appel+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let big = Gc.alloc gc ~ty ~nfields:150 in
  let g = Roots.new_global roots (Value.of_addr big) in
  let child = Gc.alloc gc ~ty ~nfields:2 in
  Gc.write gc child 0 (Value.of_int 777);
  Gc.write gc (Value.to_addr (Roots.get_global roots g)) 0 (Value.of_addr child);
  Gc.full_collect gc;
  Gc.full_collect gc;
  let big = Value.to_addr (Roots.get_global roots g) in
  let child = Value.to_addr (Gc.read gc big 0) in
  checki "child survived through the pinned parent" 777
    (Value.to_int (Gc.read gc child 0))

let test_large_cycle_between_los_objects () =
  let gc = gc_of "appel+los:128" in
  let ty = Gc.register_type gc ~name:"t" in
  let roots = Gc.roots gc in
  let a = Gc.alloc gc ~ty ~nfields:150 in
  let ga = Roots.new_global roots (Value.of_addr a) in
  let b = Gc.alloc gc ~ty ~nfields:150 in
  (* a <-> b cycle; only a rooted *)
  Gc.write gc b 0 (Roots.get_global roots ga);
  Gc.write gc (Value.to_addr (Roots.get_global roots ga)) 0 (Value.of_addr b);
  Gc.full_collect gc;
  checki "LOS-to-LOS edge keeps both alive" 0
    (Beltway.Oracle.retained_garbage_words gc);
  (* drop the root: the whole cycle must go at the next full collection *)
  Roots.set_global roots ga Value.null;
  Gc.full_collect gc;
  checki "LOS cycle reclaimed" 0 (Gc.live_words_upper_bound gc)

let test_too_large_for_heap () =
  let gc = gc_of ~heap_kb:16 "appel+los:64" in
  let ty = Gc.register_type gc ~name:"t" in
  checkb "impossible large object raises" true
    (try
       ignore (Gc.alloc gc ~ty ~nfields:20_000);
       false
     with Gc.Out_of_memory _ -> true)

let test_trace_differential_with_los () =
  (* random traces with a tiny threshold so some allocations are large *)
  List.iter
    (fun cs ->
      for seed = 1 to 8 do
        let tr = Beltway_workload.Trace.random ~seed ~nroots:8 ~len:1500 in
        let gc = gc_of cs in
        (match Beltway_workload.Trace.compare_with_mirror gc tr with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d under %s: %s" seed cs e);
        match Beltway.Verify.check gc with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d under %s: integrity: %s" seed cs e
      done)
    [ "appel+los:8"; "25.25.100+los:8"; "ss+los:8"; "of:25+los:8" ]

let test_los_benchmark_run () =
  (* a full synthetic benchmark with the LOS enabled stays sound *)
  let config = Result.get_ok (Config.parse "25.25.100+los:64") in
  let gc = Gc.create ~frame_log_words:8 ~config ~heap_bytes:(2048 * 1024) () in
  Beltway_workload.Spec.jess.Beltway_workload.Spec.run gc;
  match Beltway.Verify.check gc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "integrity: %s" e

let test_parse_and_validate () =
  checkb "parse" true (Result.is_ok (Config.parse "appel+los:256"));
  checkb "threshold >= 2" true (Result.is_error (Config.parse "appel+los:1"))

let suite =
  [
    ("threshold routing", `Quick, test_threshold_routing);
    ("multi-frame object", `Quick, test_multi_frame_object);
    ("pinned never moves", `Quick, test_pinned_never_moves);
    ("unreachable large reclaimed", `Quick, test_unreachable_large_reclaimed);
    ("large-to-young pointers", `Quick, test_large_to_young_pointers);
    ("large holds structure live", `Quick, test_large_holds_structure_live);
    ("LOS-to-LOS cycle", `Quick, test_large_cycle_between_los_objects);
    ("too large for heap", `Quick, test_too_large_for_heap);
    ("trace differential with LOS", `Quick, test_trace_differential_with_los);
    ("benchmark with LOS", `Slow, test_los_benchmark_run);
    ("parse and validate", `Quick, test_parse_and_validate);
  ]
