type t = {
  mem : Memory.t;
  frames : int Beltway_util.Vec.t;
  frame_set : (int, unit) Hashtbl.t;
  mutable cursor : Addr.t; (* next free word, 0 = no frame yet *)
  mutable limit : Addr.t; (* one past the current frame *)
  mutable used : int;
}

let create mem =
  {
    mem;
    frames = Beltway_util.Vec.create ~dummy:0 ();
    frame_set = Hashtbl.create 16;
    cursor = Addr.null;
    limit = Addr.null;
    used = 0;
  }

let extend t =
  let f = Memory.alloc_frame t.mem in
  Beltway_util.Vec.push t.frames f;
  Hashtbl.replace t.frame_set f ();
  t.cursor <- Memory.frame_base t.mem f;
  t.limit <- t.cursor + Memory.frame_words t.mem

let alloc t ~tib ~nfields =
  let size = Object_model.size_words ~nfields in
  if size > Memory.frame_words t.mem then
    invalid_arg "Boot_space.alloc: object larger than a frame";
  if t.cursor = Addr.null || t.cursor + size > t.limit then extend t;
  let addr = t.cursor in
  t.cursor <- t.cursor + size;
  t.used <- t.used + size;
  Object_model.init t.mem addr ~tib ~nfields;
  addr

let frames t = Beltway_util.Vec.to_list t.frames
let mem_frames t = Beltway_util.Vec.length t.frames
let contains t a = a <> Addr.null && Hashtbl.mem t.frame_set (Memory.addr_frame t.mem a)
let words_used t = t.used
