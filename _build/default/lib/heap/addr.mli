(** Simulated virtual addresses.

    The reproduction models a 32-bit-era heap (the paper's PowerMac G4)
    as a word-addressable virtual address space. An address is a word
    index packed as [frame lsl frame_log + offset], so — exactly as in
    the paper (S3.3.1) — frames are power-of-two aligned and the frame
    of an address is a single shift. Frame 0 is reserved so that the
    integer 0 is never a valid object address and can serve as null. *)

type t = int
(** Word index into the simulated address space. [0] is null/invalid. *)

val null : t

val bytes_per_word : int
(** 4: the paper's 32-bit platform. All "bytes" figures reported by the
    harness are [words * bytes_per_word]. *)

val frame_of : frame_log:int -> t -> int
(** The paper's [source >>> FRAME_SIZE_LOG] (Figure 4, line 3). *)

val offset_of : frame_log:int -> t -> int
(** Word offset within the frame. *)

val make : frame_log:int -> frame:int -> offset:int -> t
(** Pack a frame index and word offset into an address. *)

val same_frame : frame_log:int -> t -> t -> bool
(** The paper's intra-frame test: shift and compare. *)

val pp : Format.formatter -> t -> unit
(** Hex-ish rendering [f<frame>+<offset>] is not possible without the
    frame size; prints the raw word index. *)
