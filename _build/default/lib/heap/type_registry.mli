(** Types and their boot-space type objects (TIBs).

    Each registered type gets an immortal *type object* in the boot
    space; newly allocated objects reference it through their [tib]
    header slot. This reproduces the structure that makes young-to-old
    TIB writes the dominant write-barrier traffic in Jikes RVM
    (paper S3.3.2). *)

type t

type id = int

val create : Memory.t -> Boot_space.t -> t

val register : t -> name:string -> id
(** Register a type, creating its type object. Registering the same
    name twice returns the existing id. *)

val tib_value : t -> id -> Value.t
(** The tagged reference to the type object, suitable for storing in an
    object's [tib] slot. @raise Invalid_argument on unknown id. *)

val name : t -> id -> string
(** @raise Invalid_argument on unknown id. *)

val id_of_tib : t -> Value.t -> id option
(** Recover the type id from a tib reference (reads the type object's
    first field). [None] if the value is not a type-object
    reference. *)

val count : t -> int
