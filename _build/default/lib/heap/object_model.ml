let header_words = 2
let size_words ~nfields = nfields + header_words
let max_fields mem = Memory.frame_words mem - header_words

let init mem addr ~tib ~nfields =
  Memory.set mem addr (nfields lsl 1);
  Memory.set mem (addr + 1) tib

let status mem addr = Memory.get mem addr

let forwarded mem addr =
  let s = status mem addr in
  if s land 1 = 1 then Some (s lsr 1) else None

let set_forwarding mem addr new_addr = Memory.set mem addr ((new_addr lsl 1) lor 1)

let nfields mem addr =
  let s = status mem addr in
  if s land 1 = 1 then
    invalid_arg (Printf.sprintf "Object_model.nfields: object %#x is forwarded" addr);
  s lsr 1

let size_of mem addr = size_words ~nfields:(nfields mem addr)
let tib mem addr = Memory.get mem (addr + 1)
let set_tib mem addr v = Memory.set mem (addr + 1) v

let check_field mem addr i =
  let n = nfields mem addr in
  if i < 0 || i >= n then
    invalid_arg
      (Printf.sprintf "Object_model: field %d out of bounds [0,%d) at %#x" i n addr)

let get_field mem addr i =
  check_field mem addr i;
  Memory.get mem (addr + header_words + i)

let set_field mem addr i v =
  check_field mem addr i;
  Memory.set mem (addr + header_words + i) v

let field_addr addr i = addr + header_words + i
let tib_addr addr = addr + 1

let iter_ref_slots mem addr f =
  let n = nfields mem addr in
  if Value.is_ref (tib mem addr) then f (tib_addr addr);
  for i = 0 to n - 1 do
    if Value.is_ref (Memory.get mem (field_addr addr i)) then f (field_addr addr i)
  done
