type id = int

type t = {
  mem : Memory.t;
  boot : Boot_space.t;
  by_name : (string, id) Hashtbl.t;
  names : string Beltway_util.Vec.t;
  tibs : Value.t Beltway_util.Vec.t;
}

let create mem boot =
  {
    mem;
    boot;
    by_name = Hashtbl.create 32;
    names = Beltway_util.Vec.create ~dummy:"" ();
    tibs = Beltway_util.Vec.create ~dummy:Value.null ();
  }

let register t ~name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = Beltway_util.Vec.length t.names in
    (* Type object: field 0 = its id, field 1 = a name hash; immortal. *)
    let addr = Boot_space.alloc t.boot ~tib:Value.null ~nfields:2 in
    Object_model.set_field t.mem addr 0 (Value.of_int id);
    Object_model.set_field t.mem addr 1 (Value.of_int (Hashtbl.hash name land 0xFFFFFF));
    Hashtbl.replace t.by_name name id;
    Beltway_util.Vec.push t.names name;
    Beltway_util.Vec.push t.tibs (Value.of_addr addr);
    id

let check t id name =
  if id < 0 || id >= Beltway_util.Vec.length t.names then
    invalid_arg (Printf.sprintf "Type_registry.%s: unknown type id %d" name id)

let tib_value t id =
  check t id "tib_value";
  Beltway_util.Vec.get t.tibs id

let name t id =
  check t id "name";
  Beltway_util.Vec.get t.names id

let id_of_tib t v =
  if not (Value.is_ref v) then None
  else begin
    let addr = Value.to_addr v in
    if not (Boot_space.contains t.boot addr) then None
    else begin
      let id = Value.to_int (Object_model.get_field t.mem addr 0) in
      if id >= 0 && id < Beltway_util.Vec.length t.names then Some id else None
    end
  end

let count t = Beltway_util.Vec.length t.names
