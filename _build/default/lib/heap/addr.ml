type t = int

let null = 0
let bytes_per_word = 4
let frame_of ~frame_log a = a lsr frame_log
let offset_of ~frame_log a = a land ((1 lsl frame_log) - 1)
let make ~frame_log ~frame ~offset = (frame lsl frame_log) lor offset
let same_frame ~frame_log a b = a lsr frame_log = b lsr frame_log
let pp fmt a = Format.fprintf fmt "@0x%x" a
