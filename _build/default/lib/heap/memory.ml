type t = {
  frame_log : int;
  frame_words : int;
  max_frames : int;
  mutable backing : int array option array; (* indexed by frame; None = unmapped *)
  free_list : int Beltway_util.Vec.t; (* recycled frame indices *)
  recycled : int array Beltway_util.Vec.t; (* recycled backing arrays *)
  mutable next_fresh : int; (* next never-used frame index *)
  mutable live : int;
}

let create ~frame_log_words ~max_frames =
  if frame_log_words < 4 then invalid_arg "Memory.create: frame_log_words < 4";
  if max_frames < 1 then invalid_arg "Memory.create: max_frames < 1";
  {
    frame_log = frame_log_words;
    frame_words = 1 lsl frame_log_words;
    max_frames;
    backing = Array.make (max_frames + 2) None;
    free_list = Beltway_util.Vec.create ~dummy:0 ();
    recycled = Beltway_util.Vec.create ~dummy:[||] ();
    next_fresh = 1 (* frame 0 reserved: address 0 is null *);
    live = 0;
  }

let frame_log t = t.frame_log
let frame_words t = t.frame_words
let frame_bytes t = t.frame_words * Addr.bytes_per_word
let max_frames t = t.max_frames
let live_frames t = t.live

exception Out_of_frames

let grow_backing t needed =
  let cap = Array.length t.backing in
  if needed >= cap then begin
    let backing = Array.make (max (needed + 1) (cap * 2)) None in
    Array.blit t.backing 0 backing 0 cap;
    t.backing <- backing
  end

let alloc_frame t =
  if t.live >= t.max_frames then raise Out_of_frames;
  let idx =
    if not (Beltway_util.Vec.is_empty t.free_list) then
      Beltway_util.Vec.pop t.free_list
    else begin
      let idx = t.next_fresh in
      t.next_fresh <- idx + 1;
      grow_backing t idx;
      idx
    end
  in
  let store =
    if not (Beltway_util.Vec.is_empty t.recycled) then begin
      let a = Beltway_util.Vec.pop t.recycled in
      Array.fill a 0 t.frame_words 0;
      a
    end
    else Array.make t.frame_words 0
  in
  t.backing.(idx) <- Some store;
  t.live <- t.live + 1;
  idx

let alloc_frames_contiguous t n =
  if n < 1 then invalid_arg "Memory.alloc_frames_contiguous: n < 1";
  if t.live + n > t.max_frames then raise Out_of_frames;
  let first = t.next_fresh in
  t.next_fresh <- first + n;
  grow_backing t (first + n - 1);
  List.init n (fun i ->
      let idx = first + i in
      let store =
        if not (Beltway_util.Vec.is_empty t.recycled) then begin
          let a = Beltway_util.Vec.pop t.recycled in
          Array.fill a 0 t.frame_words 0;
          a
        end
        else Array.make t.frame_words 0
      in
      t.backing.(idx) <- Some store;
      t.live <- t.live + 1;
      idx)

let is_live t idx =
  idx >= 1 && idx < Array.length t.backing && t.backing.(idx) <> None

let free_frame t idx =
  match if idx >= 0 && idx < Array.length t.backing then t.backing.(idx) else None with
  | None -> invalid_arg (Printf.sprintf "Memory.free_frame: frame %d not live" idx)
  | Some store ->
    t.backing.(idx) <- None;
    Beltway_util.Vec.push t.free_list idx;
    Beltway_util.Vec.push t.recycled store;
    t.live <- t.live - 1

let store_of t a name =
  if a = Addr.null then invalid_arg (Printf.sprintf "Memory.%s: null address" name);
  let f = a lsr t.frame_log in
  match if f < Array.length t.backing then t.backing.(f) else None with
  | None -> invalid_arg (Printf.sprintf "Memory.%s: address %#x in dead frame %d" name a f)
  | Some store -> store

let get t a = (store_of t a "get").(a land (t.frame_words - 1))
let set t a v = (store_of t a "set").(a land (t.frame_words - 1)) <- v
let frame_base t idx = idx lsl t.frame_log
let addr_frame t a = a lsr t.frame_log
