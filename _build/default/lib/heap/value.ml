type t = int

let null = 0
let of_int n = (n lsl 1) lor 1

let to_int v =
  if v land 1 = 0 then invalid_arg "Value.to_int: not an immediate";
  v asr 1

let of_addr a =
  if a = Addr.null then invalid_arg "Value.of_addr: null address";
  a lsl 1

let to_addr v =
  if v land 1 = 1 || v = 0 then invalid_arg "Value.to_addr: not a reference";
  v lsr 1

let is_null v = v = 0
let is_int v = v land 1 = 1
let is_ref v = v <> 0 && v land 1 = 0

let pp fmt v =
  if is_null v then Format.pp_print_string fmt "null"
  else if is_int v then Format.fprintf fmt "%d" (to_int v)
  else Format.fprintf fmt "ref%a" Addr.pp (to_addr v)
