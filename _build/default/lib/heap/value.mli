(** Tagged slot values.

    Every field of every heap object, every root slot and every
    remembered value is one machine word with a one-bit tag, the
    classic uniform representation:

    - [0]                      : the null reference;
    - odd ([n lsl 1 lor 1])    : an immediate (unboxed) integer;
    - even, non-zero ([a lsl 1]) : a reference to address [a].

    The collector scans slots without type information: a slot is
    interesting iff {!is_ref}. *)

type t = int

val null : t
val of_int : int -> t
(** Immediate integer. The payload must fit in 62 bits. *)

val to_int : t -> int
(** @raise Invalid_argument if the value is not an immediate. *)

val of_addr : Addr.t -> t
(** Reference to a (non-null) address.
    @raise Invalid_argument on [Addr.null]. *)

val to_addr : t -> Addr.t
(** @raise Invalid_argument if the value is not a reference. *)

val is_null : t -> bool
val is_int : t -> bool
val is_ref : t -> bool

val pp : Format.formatter -> t -> unit
