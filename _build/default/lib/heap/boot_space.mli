(** The boot/immortal space.

    Jikes RVM pre-compiles the VM into a boot image whose objects (type
    information blocks among them) are never moved or reclaimed. We
    model it as a bump-allocated region of frames that the collector
    treats as older-than-everything: its frames receive the maximal
    collection stamp, so references *into* the boot space are never
    remembered and boot objects are never copied.

    Boot frames are allocated from the shared {!Memory} but are outside
    the collector's heap budget, matching the paper's accounting (heap
    sizes exclude the boot image). *)

type t

val create : Memory.t -> t

val alloc : t -> tib:Value.t -> nfields:int -> Addr.t
(** Bump-allocate an immortal object; extends the space by a frame when
    full. Fields start null. *)

val frames : t -> int list
(** Frames owned by the boot space (for stamp assignment). *)

val mem_frames : t -> int
(** Number of frames consumed. *)

val contains : t -> Addr.t -> bool
(** Whether an address falls in a boot frame. *)

val words_used : t -> int
