lib/heap/addr.mli: Format
