lib/heap/value.ml: Addr Format
