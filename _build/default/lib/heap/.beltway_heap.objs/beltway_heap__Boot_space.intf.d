lib/heap/boot_space.mli: Addr Memory Value
