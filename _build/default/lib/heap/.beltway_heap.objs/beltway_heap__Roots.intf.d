lib/heap/roots.mli: Value
