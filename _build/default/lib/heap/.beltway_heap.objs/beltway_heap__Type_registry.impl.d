lib/heap/type_registry.ml: Beltway_util Boot_space Hashtbl Memory Object_model Printf Value
