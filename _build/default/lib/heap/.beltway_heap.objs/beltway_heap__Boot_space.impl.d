lib/heap/boot_space.ml: Addr Beltway_util Hashtbl Memory Object_model
