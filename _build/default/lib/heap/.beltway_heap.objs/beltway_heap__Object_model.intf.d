lib/heap/object_model.mli: Addr Memory Value
