lib/heap/roots.ml: Beltway_util Value
