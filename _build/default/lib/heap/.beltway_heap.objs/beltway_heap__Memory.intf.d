lib/heap/memory.mli: Addr
