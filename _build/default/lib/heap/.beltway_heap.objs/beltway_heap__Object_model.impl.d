lib/heap/object_model.ml: Memory Printf Value
