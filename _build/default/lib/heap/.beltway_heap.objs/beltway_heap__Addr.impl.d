lib/heap/addr.ml: Format
