lib/heap/value.mli: Addr Format
