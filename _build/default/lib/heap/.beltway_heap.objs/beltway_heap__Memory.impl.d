lib/heap/memory.ml: Addr Array Beltway_util List Printf
