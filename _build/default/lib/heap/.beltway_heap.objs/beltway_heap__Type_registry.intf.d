lib/heap/type_registry.mli: Boot_space Memory Value
