(** Object layout on the simulated heap.

    Every object is a variable-length record of tagged slots with a
    two-word header:

    {v
      offset 0   status : nfields lsl 1           (bit0 = 0)
                        | (forwarded lsl 1) or 1  (bit0 = 1, during GC)
      offset 1   tib    : Value ref to the type object (boot space)
      offset 2+i field i: Value.t
    v}

    The [tib] slot reproduces Jikes RVM's type-information-block
    reference: it is written at birth through the write barrier, and —
    because type objects live in the (old, immortal) boot space — it is
    the dominant source of barrier activity that motivates the paper's
    nursery-source filter (S3.3.2). The collector scans [tib] like any
    other slot.

    Forwarding pointers overwrite the status word during collection,
    exactly as a real copying collector clobbers the header. *)

val header_words : int
(** 2. *)

val size_words : nfields:int -> int
(** Total footprint of an object with [nfields] fields. *)

val max_fields : Memory.t -> int
(** Largest representable object for this memory's frame size. *)

val init : Memory.t -> Addr.t -> tib:Value.t -> nfields:int -> unit
(** Write a fresh header at [addr]; fields are expected pre-zeroed
    (frames are zero-filled; bump allocation preserves this). *)

val nfields : Memory.t -> Addr.t -> int
(** @raise Invalid_argument if the object is forwarded (callers must
    check {!forwarded} first during collection). *)

val size_of : Memory.t -> Addr.t -> int
(** Footprint in words of the (non-forwarded) object at [addr]. *)

val tib : Memory.t -> Addr.t -> Value.t
val set_tib : Memory.t -> Addr.t -> Value.t -> unit

val get_field : Memory.t -> Addr.t -> int -> Value.t
(** @raise Invalid_argument when the index is out of bounds. *)

val set_field : Memory.t -> Addr.t -> int -> Value.t -> unit
(** Raw store; the GC-aware write path (with barrier) lives in
    [Beltway.Gc.write]. *)

val field_addr : Addr.t -> int -> Addr.t
(** Address of field slot [i] (for remembered-set entries, which record
    slot addresses). *)

val tib_addr : Addr.t -> Addr.t
(** Address of the tib slot. *)

val forwarded : Memory.t -> Addr.t -> Addr.t option
(** [Some new_addr] when the status word carries a forwarding
    pointer. *)

val set_forwarding : Memory.t -> Addr.t -> Addr.t -> unit
(** Install a forwarding pointer over the status word. *)

val iter_ref_slots : Memory.t -> Addr.t -> (Addr.t -> unit) -> unit
(** Apply [f] to the address of every slot (tib + fields) holding a
    reference. Used by the collector's scan loop and by the oracle. *)
