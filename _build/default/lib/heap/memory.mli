(** The simulated physical memory: a set of frames.

    A frame is an aligned, contiguous, power-of-two-sized region of the
    virtual address space (paper S3.3.1). Memory hands out frames,
    reclaims them, and services word-granularity loads and stores.
    Frames are backed lazily by OCaml int arrays; a freed frame's
    backing store is recycled through a free list, mimicking a virtual
    memory manager that maps and unmaps page runs.

    The *heap budget* (how many frames a collector configuration may
    hold at once) is enforced by the GC layer, not here: this module is
    the machine, not the policy. *)

type t

val create : frame_log_words:int -> max_frames:int -> t
(** [create ~frame_log_words ~max_frames]: frames hold
    [2^frame_log_words] words each; at most [max_frames] (excluding the
    reserved frame 0) may be live at once.
    @raise Invalid_argument if [frame_log_words < 4] or
    [max_frames < 1]. *)

val frame_log : t -> int
val frame_words : t -> int
val frame_bytes : t -> int
val max_frames : t -> int

val live_frames : t -> int
(** Number of frames currently allocated. *)

exception Out_of_frames
(** Raised by {!alloc_frame} when [max_frames] are already live. The GC
    layer treats its own budget exhaustion before this can trigger;
    seeing it escape indicates a collector bug (copy-reserve
    violation). *)

val alloc_frame : t -> int
(** Allocate a frame; its words are zeroed. Returns the frame index
    (>= 1). *)

val alloc_frames_contiguous : t -> int -> int list
(** Allocate [n] frames with consecutive indices — hence contiguous
    addresses — for objects larger than one frame (large object
    space). Always taken from fresh virtual space (never the recycle
    list), so heavy large-object churn consumes virtual frame indices;
    the backing stores are still recycled.
    @raise Out_of_frames if fewer than [n] frames remain in the
    budget. @raise Invalid_argument if [n < 1]. *)

val free_frame : t -> int -> unit
(** Return a frame to the free list. @raise Invalid_argument if the
    frame is not live. *)

val is_live : t -> int -> bool
(** Whether the frame index is currently allocated. *)

val get : t -> Addr.t -> int
(** Load the word at an address. @raise Invalid_argument on a null
    address or a dead frame (catching use-after-free / wild pointers in
    tests). *)

val set : t -> Addr.t -> int -> unit
(** Store a word. Same failure modes as {!get}. *)

val frame_base : t -> int -> Addr.t
(** Address of word 0 of a frame. *)

val addr_frame : t -> Addr.t -> int
(** Frame index of an address (shift). *)
