(** Object-lifetime models.

    Lifetimes are measured in words of allocation (the allocation
    clock). The empirical shape driving generational collection — the
    weak generational hypothesis — is a heavy-skewed mixture: most
    objects die within a small multiple of their own size, a minority
    live orders of magnitude longer, and a sliver is effectively
    immortal. Each benchmark composes these samplers with its own
    mixture weights. *)

type sampler = Beltway_util.Prng.t -> int
(** Draws a lifetime in words. *)

val exponential : mean:int -> sampler
(** Classic radioactive-decay lifetimes. *)

val uniform : lo:int -> hi:int -> sampler

val pareto : shape:float -> scale:int -> cap:int -> sampler
(** Heavy-tailed lifetimes, capped. *)

val constant : int -> sampler

val mixture : (float * sampler) list -> sampler
(** Weighted mixture; weights need not sum to 1 (normalised).
    @raise Invalid_argument on an empty or non-positive-weight list. *)

val generational : young_mean:int -> old_mean:int -> survivor_fraction:float -> sampler
(** The standard two-phase model: with probability
    [1 - survivor_fraction] an exponential death at [young_mean],
    otherwise at [old_mean]. *)
