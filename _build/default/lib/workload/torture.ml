module Prng = Beltway_util.Prng

type t = {
  name : string;
  description : string;
  run : Beltway.Gc.t -> unit;
}

let high_survival_run gc =
  let ty = Beltway.Gc.register_type gc ~name:"torture.hs" in
  let roots = Beltway.Gc.roots gc in
  (* a rolling window that retains ~90% of recent allocation *)
  let window = Array.init 2_000 (fun _ -> Roots.new_global roots Value.null) in
  let rng = Prng.create ~seed:0x70A7 in
  for i = 1 to 40_000 do
    let a = Beltway.Gc.alloc gc ~ty ~nfields:6 in
    Beltway.Gc.write gc a 0 (Value.of_int i);
    if not (Prng.chance rng 0.1) then
      Roots.set_global roots window.(i mod 2_000) (Value.of_addr a)
  done;
  Array.iter (fun g -> Roots.set_global roots g Value.null) window

let pointer_storm_run gc =
  let ty = Beltway.Gc.register_type gc ~name:"torture.ps" in
  let roots = Beltway.Gc.roots gc in
  let olds =
    Array.init 8 (fun _ ->
        let a = Beltway.Gc.alloc gc ~ty ~nfields:8 in
        Roots.new_global roots (Value.of_addr a))
  in
  Beltway.Gc.full_collect gc;
  let rng = Prng.create ~seed:0x5707 in
  for i = 1 to 120_000 do
    (* mostly pointer writes, occasional allocation *)
    if i mod 8 = 0 then begin
      let young = Beltway.Gc.alloc gc ~ty ~nfields:2 in
      let o = Value.to_addr (Roots.get_global roots olds.(Prng.int rng 8)) in
      Beltway.Gc.write gc o (Prng.int rng 8) (Value.of_addr young)
    end
    else begin
      let o = Value.to_addr (Roots.get_global roots olds.(Prng.int rng 8)) in
      let o' = Roots.get_global roots olds.(Prng.int rng 8) in
      Beltway.Gc.write gc o (Prng.int rng 8) o'
    end
  done;
  Array.iter (fun g -> Roots.set_global roots g Value.null) olds

let fragmentation_run gc =
  let ty = Beltway.Gc.register_type gc ~name:"torture.fr" in
  let roots = Beltway.Gc.roots gc in
  let frame_words = Beltway.Gc.frame_bytes gc / 4 in
  let big = max 8 (frame_words * 2 / 3) - 2 in
  let keep = Array.init 64 (fun _ -> Roots.new_global roots Value.null) in
  let rng = Prng.create ~seed:0xF4A6 in
  for i = 1 to 4_000 do
    (* a big object (two-thirds of a frame) then a burst of tiny ones:
       every frame seam wastes ~a third of a frame *)
    let a = Beltway.Gc.alloc gc ~ty ~nfields:big in
    if Prng.chance rng 0.25 then Roots.set_global roots keep.(i mod 64) (Value.of_addr a);
    for _ = 1 to 5 do
      ignore (Beltway.Gc.alloc gc ~ty ~nfields:1)
    done
  done;
  Array.iter (fun g -> Roots.set_global roots g Value.null) keep

let deep_lists_run gc =
  let ty = Beltway.Gc.register_type gc ~name:"torture.dl" in
  let roots = Beltway.Gc.roots gc in
  let head = Roots.new_global roots Value.null in
  (* one chain threaded through every increment the heap ever makes *)
  for i = 1 to 25_000 do
    let a = Beltway.Gc.alloc gc ~ty ~nfields:2 in
    Beltway.Gc.write gc a 0 (Value.of_int i);
    Beltway.Gc.write gc a 1 (Roots.get_global roots head);
    Roots.set_global roots head (Value.of_addr a);
    (* periodically truncate the tail to keep it fitting *)
    if i mod 5_000 = 0 then begin
      let rec nth v n =
        if n = 0 || Value.is_null v then v
        else nth (Beltway.Gc.read gc (Value.to_addr v) 1) (n - 1)
      in
      let cut = nth (Roots.get_global roots head) 1_000 in
      if Value.is_ref cut then Beltway.Gc.write gc (Value.to_addr cut) 1 Value.null
    end
  done;
  Roots.set_global roots head Value.null

let churn_spikes_run gc =
  let ty = Beltway.Gc.register_type gc ~name:"torture.cs" in
  let roots = Beltway.Gc.roots gc in
  let held = ref [] in
  for phase = 1 to 10 do
    if phase land 1 = 1 then
      (* pure garbage: everything dies instantly *)
      for _ = 1 to 8_000 do
        ignore (Beltway.Gc.alloc gc ~ty ~nfields:4)
      done
    else begin
      (* pure retention: everything this phase survives *)
      for _ = 1 to 1_500 do
        let a = Beltway.Gc.alloc gc ~ty ~nfields:4 in
        held := Roots.new_global roots (Value.of_addr a) :: !held
      done;
      (* then release the previous retention phase *)
      match !held with
      | _ :: _ when phase > 2 ->
        let n = List.length !held in
        List.iteri
          (fun i g -> if i >= n / 2 then Roots.set_global roots g Value.null)
          !held;
        held := List.filteri (fun i _ -> i < n / 2) !held
      | _ -> ()
    end
  done;
  List.iter (fun g -> Roots.set_global roots g Value.null) !held

let high_survival =
  {
    name = "high-survival";
    description = "~90% of allocation survives: copy-reserve worst case";
    run = high_survival_run;
  }

let pointer_storm =
  {
    name = "pointer-storm";
    description = "old objects rewritten with young refs at extreme rate";
    run = pointer_storm_run;
  }

let fragmentation =
  {
    name = "fragmentation";
    description = "alternating near-frame-sized and tiny objects";
    run = fragmentation_run;
  }

let deep_lists =
  {
    name = "deep-lists";
    description = "one chain threaded through every increment";
    run = deep_lists_run;
  }

let churn_spikes =
  {
    name = "churn-spikes";
    description = "alternating all-garbage and all-retained phases";
    run = churn_spikes_run;
  }

let all = [ high_survival; pointer_storm; fragmentation; deep_lists; churn_spikes ]
