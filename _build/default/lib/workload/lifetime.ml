module Prng = Beltway_util.Prng

type sampler = Prng.t -> int

let exponential ~mean rng = max 1 (int_of_float (Prng.exponential rng ~mean:(float_of_int mean)))
let uniform ~lo ~hi rng = Prng.int_in rng lo hi

let pareto ~shape ~scale ~cap rng =
  min cap (max 1 (int_of_float (Prng.pareto rng ~shape ~scale:(float_of_int scale))))

let constant n _rng = n

let mixture parts =
  if parts = [] then invalid_arg "Lifetime.mixture: empty";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
  if total <= 0.0 then invalid_arg "Lifetime.mixture: non-positive total weight";
  fun rng ->
    let x = Prng.float rng total in
    let rec pick acc = function
      | [] -> (snd (List.hd parts)) rng
      | (w, s) :: rest -> if x < acc +. w then s rng else pick (acc +. w) rest
    in
    pick 0.0 parts

let generational ~young_mean ~old_mean ~survivor_fraction =
  mixture
    [
      (1.0 -. survivor_fraction, exponential ~mean:young_mean);
      (survivor_fraction, exponential ~mean:old_mean);
    ]
