(** Flat mutation traces: the differential-testing workhorse.

    A trace is a sequence of primitive heap operations over a fixed set
    of root slots. The same trace can be executed against (a) a
    [Beltway.Gc] heap — under any collector configuration — and (b) a
    {e mirror}: a plain OCaml object graph that needs no collector at
    all. After execution the two are compared structurally; any
    divergence means the collector lost, corrupted or failed to update
    an object. Random traces (seeded) drive the qcheck properties that
    every configuration preserves mutator semantics.

    Operations deliberately include the patterns that stress Beltway:
    old-to-young stores, long chains crossing increments, cycle
    creation, and root churn. *)

type op =
  | Alloc of { root : int; nfields : int }
      (** allocate and store into root slot [root] *)
  | Write of { src : int; field : int; dst : int }
      (** roots[src].fields[field] <- roots[dst] (no-op if either root
          is null or the field is out of bounds) *)
  | Write_int of { src : int; field : int; v : int }
  | Write_null of { src : int; field : int }
  | Copy_root of { src : int; dst : int }  (** roots[dst] <- roots[src] *)
  | Clear_root of { root : int }
  | Deref of { src : int; field : int; dst : int }
      (** roots[dst] <- roots[src].fields[field] (walks into
          structures, keeping interior nodes directly rooted) *)
  | Collect  (** force a policy collection *)

type trace = { nroots : int; ops : op list }

val random : seed:int -> nroots:int -> len:int -> trace
(** A random trace biased toward structure building and mutation. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> trace -> unit

val execute : Beltway.Gc.t -> trace -> unit
(** Run against a real heap (roots live in fresh global slots).
    @raise Beltway.Gc.Out_of_memory if the heap is too small. *)

(** {2 The mirror} *)

type mirror_obj = { mutable fields : mirror_value array; serial : int }
and mirror_value = MNull | MInt of int | MRef of mirror_obj

val execute_mirror : trace -> mirror_value array
(** Run against the pure-OCaml mirror; returns final root values. *)

val compare_with_mirror : Beltway.Gc.t -> trace -> (unit, string) result
(** Execute on both, then compare the reachable graphs from the roots
    structurally (field-by-field, cycle-aware). [Ok ()] iff
    isomorphic. The heap execution uses fresh global root slots; the
    heap must not have been otherwise mutated between [execute] and
    the comparison — this function does both itself. *)
