(** Adversarial workloads.

    The six [Spec] benchmarks model well-behaved programs; these
    deliberately do not. Each scenario attacks one collector mechanism:

    - {!high_survival}: nearly everything survives every collection —
      worst case for the copy reserve and promotion chain;
    - {!pointer_storm}: a small set of old objects rewritten with young
      references at an extreme rate — remset growth/dedup and card
      re-dirtying;
    - {!fragmentation}: alternating tiny and near-frame-sized objects —
      frame-seam waste and the reserve's fragmentation pad;
    - {!deep_lists}: single long chains crossing every increment —
      worst-case scan depth and cross-increment pointer density;
    - {!churn_spikes}: alternating phases of pure garbage and pure
      retention — belt occupancy whiplash, triggers firing in both
      directions.

    Each returns normally or raises [Beltway.Gc.Out_of_memory]; in
    either case the heap must remain structurally sound (the test suite
    verifies integrity afterwards for every configuration). *)

type t = {
  name : string;
  description : string;
  run : Beltway.Gc.t -> unit;
}

val high_survival : t
val pointer_storm : t
val fragmentation : t
val deep_lists : t
val churn_spikes : t

val all : t list
