lib/workload/torture.ml: Array Beltway Beltway_util List Roots Value
