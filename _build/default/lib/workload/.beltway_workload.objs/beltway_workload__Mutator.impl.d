lib/workload/mutator.ml: Beltway Beltway_util Roots Value
