lib/workload/spec.mli: Beltway
