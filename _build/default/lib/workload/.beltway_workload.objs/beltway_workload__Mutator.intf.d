lib/workload/mutator.mli: Addr Beltway Beltway_util Type_registry Value
