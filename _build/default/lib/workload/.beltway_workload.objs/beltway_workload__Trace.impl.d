lib/workload/trace.ml: Addr Array Beltway Beltway_util Format Hashtbl List Printf Roots Value
