lib/workload/lifetime.mli: Beltway_util
