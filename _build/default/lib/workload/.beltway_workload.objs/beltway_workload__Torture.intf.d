lib/workload/torture.mli: Beltway
