lib/workload/spec.ml: Array Beltway Beltway_util Lifetime List Mutator Queue
