lib/workload/trace.mli: Beltway Format
