lib/workload/lifetime.ml: Beltway_util List
