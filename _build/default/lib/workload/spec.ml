module Prng = Beltway_util.Prng
module Vec = Beltway_util.Vec

type t = {
  name : string;
  description : string;
  total_alloc_words : int;
  live_hint_words : int;
  min_heap_hint_frames : int;
  run : Beltway.Gc.t -> unit;
}

(* A bounded pool of handles with random replacement: the standard
   shape for "working memory" / "recently touched objects". *)
module Pool = struct
  type p = { slots : Mutator.handle option Vec.t; cap : int }

  let create ~cap = { slots = Vec.create ~dummy:None (); cap }

  let add m p h =
    if Vec.length p.slots < p.cap then Vec.push p.slots (Some h)
    else begin
      let i = Prng.int (Mutator.rng m) p.cap in
      (match Vec.get p.slots i with Some old -> Mutator.drop m old | None -> ());
      Vec.set p.slots i (Some h)
    end

  let random m p =
    if Vec.is_empty p.slots then None
    else Vec.get p.slots (Prng.int (Mutator.rng m) (Vec.length p.slots))

  let drop_all m p =
    Vec.iter (function Some h -> Mutator.drop m h | None -> ()) p.slots;
    Vec.clear p.slots
end

(* ---------------------------------------------------------------- *)

let jess_run gc =
  let m = Mutator.create ~seed:0xA55E5 gc in
  let fact = Beltway.Gc.register_type gc ~name:"jess.fact" in
  let token = Beltway.Gc.register_type gc ~name:"jess.token" in
  let rng = Mutator.rng m in
  let lifetime =
    Lifetime.generational ~young_mean:3_000 ~old_mean:150_000 ~survivor_fraction:0.055
  in
  let facts = Pool.create ~cap:1500 in
  let budget = 3_700_000 in
  while Mutator.now m < budget do
    (* An activation: a burst of pattern-matching temporaries... *)
    let burst = Prng.int_in rng 4 24 in
    for _ = 1 to burst do
      Mutator.alloc_temp m ~ty:token ~nfields:(Prng.int_in rng 2 8)
    done;
    (* ...then assertion of a fact with a generational lifetime. *)
    let h = Mutator.alloc_dying m ~ty:fact ~nfields:6 ~dies_in:(lifetime rng) in
    Mutator.set_int m h 0 (Mutator.now m);
    (* Facts reference other working-memory facts. *)
    (match Pool.random m facts with
    | Some peer when Mutator.is_live m peer -> Mutator.link m ~from:h ~field:1 ~to_:peer
    | _ -> ());
    (* Occasionally an old fact is rewritten to point at the new one:
       old-to-young stores that exercise the barrier slow path. *)
    if Prng.chance rng 0.02 then begin
      match Pool.random m facts with
      | Some old when Mutator.is_live m old -> Mutator.link m ~from:old ~field:2 ~to_:h
      | _ -> ()
    end;
    Pool.add m facts (Mutator.retain m (Mutator.get m h));
    Mutator.tick m
  done;
  Pool.drop_all m facts;
  Mutator.drain m

(* ---------------------------------------------------------------- *)

let raytrace_run gc =
  let m = Mutator.create ~seed:0x7AC3 gc in
  let node = Beltway.Gc.register_type gc ~name:"rt.node" in
  let prim = Beltway.Gc.register_type gc ~name:"rt.prim" in
  let ray = Beltway.Gc.register_type gc ~name:"rt.ray" in
  let hit = Beltway.Gc.register_type gc ~name:"rt.hit" in
  let rng = Mutator.rng m in
  (* Phase 1: the scene — a balanced BVH-like tree, live for the whole
     run. Interior liveness rides on the root handle. *)
  let rec build depth parent field =
    if depth = 0 then
      Mutator.alloc_into m ~parent ~field ~ty:prim ~nfields:(Prng.int_in rng 8 14)
    else begin
      Mutator.alloc_into m ~parent ~field ~ty:node ~nfields:4;
      match Mutator.child m parent field with
      | None -> assert false
      | Some n ->
        build (depth - 1) n 0;
        build (depth - 1) n 1;
        Mutator.drop m n
    end
  in
  let scene = Mutator.alloc m ~ty:node ~nfields:4 in
  build 10 scene 0;
  build 10 scene 1;
  (* Phase 2: rays. Overwhelmingly instantly dead temporaries. *)
  let budget = 1_600_000 in
  let i = ref 0 in
  while Mutator.now m < budget do
    incr i;
    for _ = 1 to Prng.int_in rng 6 18 do
      Mutator.alloc_temp m ~ty:ray ~nfields:(Prng.int_in rng 3 9)
    done;
    if !i mod 64 = 0 then
      ignore (Mutator.alloc_dying m ~ty:hit ~nfields:10 ~dies_in:16_000);
    Mutator.tick m
  done;
  Mutator.drop m scene;
  Mutator.drain m

(* ---------------------------------------------------------------- *)

let db_run gc =
  let m = Mutator.create ~seed:0xDB gc in
  let bucket = Beltway.Gc.register_type gc ~name:"db.bucket" in
  let record = Beltway.Gc.register_type gc ~name:"db.record" in
  let value = Beltway.Gc.register_type gc ~name:"db.value" in
  let temp = Beltway.Gc.register_type gc ~name:"db.temp" in
  let rng = Mutator.rng m in
  let nbuckets = 32 and per_bucket = 52 in
  (* Phase 1: the database — buckets of records, each holding a value
     object; all long-lived. *)
  let buckets =
    Array.init nbuckets (fun _ ->
        let b = Mutator.alloc m ~ty:bucket ~nfields:per_bucket in
        for i = 0 to per_bucket - 1 do
          Mutator.alloc_into m ~parent:b ~field:i ~ty:record ~nfields:22
        done;
        b)
  in
  (* Give every record an initial value object. *)
  Array.iter
    (fun b ->
      for i = 0 to per_bucket - 1 do
        match Mutator.child m b i with
        | None -> assert false
        | Some r ->
          Mutator.alloc_into m ~parent:r ~field:0 ~ty:value ~nfields:10;
          Mutator.drop m r
      done)
    buckets;
  (* Phase 2: queries and updates. Modest allocation; the signature
     behaviour is update stores into *old* records. *)
  let budget = 1_300_000 in
  while Mutator.now m < budget do
    for _ = 1 to Prng.int_in rng 2 6 do
      Mutator.alloc_temp m ~ty:temp ~nfields:(Prng.int_in rng 6 28)
    done;
    if Prng.chance rng 0.10 then begin
      (* Update: a fresh value stored into an old record (slow-path
         barrier traffic); the previous value dies. *)
      let b = buckets.(Prng.int rng nbuckets) in
      match Mutator.child m b (Prng.int rng per_bucket) with
      | None -> assert false
      | Some r ->
        Mutator.alloc_into m ~parent:r ~field:0 ~ty:value ~nfields:10;
        Mutator.drop m r
    end;
    Mutator.tick m
  done;
  Array.iter (Mutator.drop m) buckets;
  Mutator.drain m

(* ---------------------------------------------------------------- *)

let javac_run gc =
  let m = Mutator.create ~seed:0xCAFE gc in
  let ast = Beltway.Gc.register_type gc ~name:"javac.ast" in
  let sym = Beltway.Gc.register_type gc ~name:"javac.sym" in
  let tok = Beltway.Gc.register_type gc ~name:"javac.tok" in
  let rng = Mutator.rng m in
  (* AST node layout: fields 0-3 children, 4 symbol entry, 5 back edge
     (cycle), 6 cross link, 7 payload. Children attach to dedicated
     slots, so the whole unit is retained until dropped. *)
  let units = 12 and nodes_per_unit = 3_000 in
  (* Two units overlap: the previous unit is dropped only after the
     next is built, as javac holds several phases of structure. *)
  let prev = ref None in
  for _u = 1 to units do
    let root = Mutator.alloc m ~ty:ast ~nfields:8 in
    let symtab = Mutator.alloc m ~ty:sym ~nfields:8 in
    (* AST <-> symbol-table cross links: cycles by construction. *)
    Mutator.link m ~from:root ~field:6 ~to_:symtab;
    Mutator.link m ~from:symtab ~field:6 ~to_:root;
    (* BFS frontier of nodes with free child slots, plus a pool of
       recent nodes for back edges. *)
    let frontier = Queue.create () in
    Queue.add (Mutator.retain m (Mutator.get m root)) frontier;
    let recent = Pool.create ~cap:48 in
    let made = ref 0 in
    while !made < nodes_per_unit && not (Queue.is_empty frontier) do
      let parent = Queue.pop frontier in
      let nkids = Prng.int_in rng 2 4 in
      for k = 0 to nkids - 1 do
        if !made < nodes_per_unit then begin
          incr made;
          (* Scanner and type-checker temporaries: the bulk of javac's
             allocation is transient. *)
          for _ = 1 to Prng.int_in rng 6 12 do
            Mutator.alloc_temp m ~ty:tok ~nfields:(Prng.int_in rng 4 10)
          done;
          Mutator.alloc_into m ~parent ~field:k ~ty:ast ~nfields:8;
          match Mutator.child m parent k with
          | None -> assert false
          | Some n ->
            (* Back edges to older nodes: intra-unit cycles that span
               increments once survivors are promoted. *)
            if !made mod 10 = 0 then begin
              match Pool.random m recent with
              | Some older when Mutator.is_live m older ->
                Mutator.link m ~from:n ~field:5 ~to_:older
              | _ -> Mutator.link m ~from:n ~field:5 ~to_:root
            end;
            (* Symbol entries interleave with AST growth, pointing both
               ways. *)
            if !made mod 16 = 0 then begin
              let e = Mutator.alloc m ~ty:sym ~nfields:4 in
              Mutator.link m ~from:e ~field:0 ~to_:n;
              Mutator.link m ~from:n ~field:4 ~to_:e;
              Mutator.link m ~from:e ~field:1 ~to_:symtab;
              Mutator.drop m e
            end;
            Pool.add m recent (Mutator.retain m (Mutator.get m n));
            Queue.add n frontier
        end
      done;
      Mutator.drop m parent;
      Mutator.tick m
    done;
    Queue.iter (fun h -> Mutator.drop m h) frontier;
    Pool.drop_all m recent;
    (* Drop the unit before last: its cyclic structure becomes garbage
       spanning many increments. *)
    (match !prev with
    | Some (r, s) ->
      Mutator.drop m r;
      Mutator.drop m s
    | None -> ());
    prev := Some (root, symtab);
    Mutator.tick m
  done;
  (match !prev with
  | Some (r, s) ->
    Mutator.drop m r;
    Mutator.drop m s
  | None -> ());
  Mutator.drain m

(* ---------------------------------------------------------------- *)

let jack_run gc =
  let m = Mutator.create ~seed:0x1ACC gc in
  let node = Beltway.Gc.register_type gc ~name:"jack.node" in
  let tok = Beltway.Gc.register_type gc ~name:"jack.tok" in
  let summary = Beltway.Gc.register_type gc ~name:"jack.sum" in
  let rng = Mutator.rng m in
  let passes = 16 in
  let summaries = Mutator.alloc m ~ty:summary ~nfields:passes in
  let words_per_pass = 4_000_000 / passes in
  for p = 1 to passes do
    let pass_start = Mutator.now m in
    (* The pass builds a parse structure that lives until pass end. *)
    let root = Mutator.alloc m ~ty:node ~nfields:10 in
    let spine = ref (Mutator.retain m (Mutator.get m root)) in
    while Mutator.now m - pass_start < words_per_pass do
      (* Token soup. *)
      for _ = 1 to Prng.int_in rng 3 10 do
        Mutator.alloc_temp m ~ty:tok ~nfields:(Prng.int_in rng 2 7)
      done;
      (* Grow the parse list: each element hangs off the previous. *)
      if Prng.chance rng 0.35 then begin
        let cur = !spine in
        Mutator.alloc_into m ~parent:cur ~field:0 ~ty:node ~nfields:10;
        (match Mutator.child m cur 0 with
        | Some next ->
          Mutator.drop m cur;
          spine := next
        | None -> assert false)
      end;
      Mutator.tick m
    done;
    Mutator.drop m !spine;
    (* Keep a small per-pass summary, drop the pass structure. *)
    Mutator.alloc_into m ~parent:summaries ~field:(p - 1) ~ty:summary ~nfields:6;
    Mutator.drop m root
  done;
  Mutator.drop m summaries;
  Mutator.drain m

(* ---------------------------------------------------------------- *)

let pseudojbb_run gc =
  let m = Mutator.create ~seed:0x1BB gc in
  let table = Beltway.Gc.register_type gc ~name:"jbb.table" in
  let item = Beltway.Gc.register_type gc ~name:"jbb.item" in
  let customer = Beltway.Gc.register_type gc ~name:"jbb.customer" in
  let order = Beltway.Gc.register_type gc ~name:"jbb.order" in
  let line = Beltway.Gc.register_type gc ~name:"jbb.line" in
  let hist = Beltway.Gc.register_type gc ~name:"jbb.hist" in
  let rng = Mutator.rng m in
  (* Warehouse database: item and customer tables, long-lived. *)
  let mk_table ty n fields per_bucket =
    let nbuckets = (n + per_bucket - 1) / per_bucket in
    Array.init nbuckets (fun _ ->
        let b = Mutator.alloc m ~ty:table ~nfields:per_bucket in
        for i = 0 to per_bucket - 1 do
          Mutator.alloc_into m ~parent:b ~field:i ~ty ~nfields:fields
        done;
        b)
  in
  let items = mk_table item 2600 10 64 in
  let customers = mk_table customer 1300 18 64 in
  (* Order-history ring: long-lived with FIFO replacement. *)
  let hist_cap = 72 and hist_fields = 40 in
  let history =
    Array.init hist_cap (fun _ -> Mutator.alloc m ~ty:table ~nfields:hist_fields)
  in
  let hist_head = ref 0 in
  (* A fixed number of transactions — the pseudojbb modification. *)
  let transactions = 26_000 in
  for txn = 1 to transactions do
    (* New order: a cluster of order lines, dead at transaction end. *)
    let o = Mutator.alloc m ~ty:order ~nfields:16 in
    let nlines = Prng.int_in rng 5 15 in
    for l = 0 to nlines - 1 do
      Mutator.alloc_into m ~parent:o ~field:l ~ty:line ~nfields:8
    done;
    (* Stock lookups: temporaries. *)
    for _ = 1 to Prng.int_in rng 2 8 do
      Mutator.alloc_temp m ~ty:line ~nfields:(Prng.int_in rng 3 8)
    done;
    (* 4%% of orders enter the history ring (evicting the oldest slot's
       entry): medium/long-lived survivors. *)
    if Prng.chance rng 0.04 then begin
      let slot = history.(!hist_head mod hist_cap) in
      incr hist_head;
      let e = Mutator.alloc m ~ty:hist ~nfields:12 in
      Mutator.link m ~from:e ~field:0 ~to_:o;
      (* Store into an old ring bucket: old-to-young pointer. *)
      Mutator.link m ~from:slot ~field:(!hist_head mod hist_fields) ~to_:e;
      Mutator.drop m e
    end;
    (* Payments update old customers in place. *)
    if Prng.chance rng 0.08 then begin
      let b = customers.(Prng.int rng (Array.length customers)) in
      match Mutator.child m b (Prng.int rng 64) with
      | Some c ->
        Mutator.alloc_into m ~parent:c ~field:0 ~ty:line ~nfields:6;
        Mutator.drop m c
      | None -> assert false
    end;
    (* Price checks read items (no allocation). *)
    ignore (Mutator.read_field m items.(Prng.int rng (Array.length items)) 0);
    Mutator.drop m o;
    if txn mod 32 = 0 then Mutator.tick m
  done;
  Array.iter (Mutator.drop m) items;
  Array.iter (Mutator.drop m) customers;
  Array.iter (Mutator.drop m) history;
  Mutator.drain m

(* ---------------------------------------------------------------- *)

let jess =
  {
    name = "jess";
    description = "expert-system shell: very high allocation rate, generational mix";
    total_alloc_words = 3_700_000;
    live_hint_words = 26_000;
    min_heap_hint_frames = 64;
    run = jess_run;
  }

let raytrace =
  {
    name = "raytrace";
    description = "ray tracer: long-lived scene + instantly dead ray temporaries";
    total_alloc_words = 1_600_000;
    live_hint_words = 34_000;
    min_heap_hint_frames = 80;
    run = raytrace_run;
  }

let db =
  {
    name = "db";
    description = "in-memory database: big old working set, update stores, light GC load";
    total_alloc_words = 1_300_000;
    live_hint_words = 52_000;
    min_heap_hint_frames = 120;
    run = db_run;
  }

let javac =
  {
    name = "javac";
    description = "compiler: per-unit cyclic ASTs dropped en masse";
    total_alloc_words = 3_300_000;
    live_hint_words = 60_000;
    min_heap_hint_frames = 140;
    run = javac_run;
  }

let jack =
  {
    name = "jack";
    description = "parser generator: repeated passes of medium-lived structure";
    total_alloc_words = 4_000_000;
    live_hint_words = 40_000;
    min_heap_hint_frames = 100;
    run = jack_run;
  }

let pseudojbb =
  {
    name = "pseudojbb";
    description = "3-tier transaction processing, fixed transaction count";
    total_alloc_words = 4_100_000;
    live_hint_words = 150_000;
    min_heap_hint_frames = 320;
    run = pseudojbb_run;
  }

let all = [ jess; raytrace; db; javac; jack; pseudojbb ]
let by_name n = List.find_opt (fun b -> b.name = n) all
