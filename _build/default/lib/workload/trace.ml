module Prng = Beltway_util.Prng

type op =
  | Alloc of { root : int; nfields : int }
  | Write of { src : int; field : int; dst : int }
  | Write_int of { src : int; field : int; v : int }
  | Write_null of { src : int; field : int }
  | Copy_root of { src : int; dst : int }
  | Clear_root of { root : int }
  | Deref of { src : int; field : int; dst : int }
  | Collect

type trace = { nroots : int; ops : op list }

let pp_op fmt = function
  | Alloc { root; nfields } -> Format.fprintf fmt "r%d := alloc(%d)" root nfields
  | Write { src; field; dst } -> Format.fprintf fmt "r%d.%d := r%d" src field dst
  | Write_int { src; field; v } -> Format.fprintf fmt "r%d.%d := %d" src field v
  | Write_null { src; field } -> Format.fprintf fmt "r%d.%d := null" src field
  | Copy_root { src; dst } -> Format.fprintf fmt "r%d := r%d" dst src
  | Clear_root { root } -> Format.fprintf fmt "r%d := null" root
  | Deref { src; field; dst } -> Format.fprintf fmt "r%d := r%d.%d" dst src field
  | Collect -> Format.fprintf fmt "collect"

let pp fmt t =
  Format.fprintf fmt "@[<v>trace (%d roots):@," t.nroots;
  List.iter (fun op -> Format.fprintf fmt "  %a@," pp_op op) t.ops;
  Format.fprintf fmt "@]"

let random ~seed ~nroots ~len =
  let rng = Prng.create ~seed in
  let r () = Prng.int rng nroots in
  let f () = Prng.int rng 8 in
  let ops =
    List.init len (fun _ ->
        let x = Prng.int rng 100 in
        if x < 35 then Alloc { root = r (); nfields = Prng.int_in rng 0 7 }
        else if x < 60 then Write { src = r (); field = f (); dst = r () }
        else if x < 70 then Write_int { src = r (); field = f (); v = Prng.int rng 10_000 }
        else if x < 75 then Write_null { src = r (); field = f () }
        else if x < 83 then Copy_root { src = r (); dst = r () }
        else if x < 88 then Clear_root { root = r () }
        else if x < 98 then Deref { src = r (); field = f (); dst = r () }
        else Collect)
  in
  { nroots; ops }

(* ---- heap execution ------------------------------------------------ *)

let execute_with gc t =
  let roots = Beltway.Gc.roots gc in
  let slots = Array.init t.nroots (fun _ -> Roots.new_global roots Value.null) in
  let ty = Beltway.Gc.register_type gc ~name:"trace.obj" in
  let get i = Roots.get_global roots slots.(i) in
  let set i v = Roots.set_global roots slots.(i) v in
  let with_obj i k =
    let v = get i in
    if Value.is_ref v then k (Value.to_addr v)
  in
  List.iter
    (fun op ->
      match op with
      | Alloc { root; nfields } ->
        let a = Beltway.Gc.alloc gc ~ty ~nfields in
        set root (Value.of_addr a)
      | Write { src; field; dst } ->
        with_obj src (fun a ->
            if field < Beltway.Gc.nfields gc a then begin
              let v = get dst in
              Beltway.Gc.write gc a field v
            end)
      | Write_int { src; field; v } ->
        with_obj src (fun a ->
            if field < Beltway.Gc.nfields gc a then
              Beltway.Gc.write gc a field (Value.of_int v))
      | Write_null { src; field } ->
        with_obj src (fun a ->
            if field < Beltway.Gc.nfields gc a then
              Beltway.Gc.write gc a field Value.null)
      | Copy_root { src; dst } -> set dst (get src)
      | Clear_root { root } -> set root Value.null
      | Deref { src; field; dst } ->
        with_obj src (fun a ->
            if field < Beltway.Gc.nfields gc a then
              set dst (Beltway.Gc.read gc a field))
      | Collect -> Beltway.Gc.collect gc)
    t.ops;
  slots

let execute gc t = ignore (execute_with gc t)

(* ---- mirror execution ---------------------------------------------- *)

type mirror_obj = { mutable fields : mirror_value array; serial : int }
and mirror_value = MNull | MInt of int | MRef of mirror_obj

let execute_mirror t =
  let roots = Array.make t.nroots MNull in
  let serial = ref 0 in
  let with_obj i k = match roots.(i) with MRef o -> k o | _ -> () in
  List.iter
    (fun op ->
      match op with
      | Alloc { root; nfields } ->
        incr serial;
        roots.(root) <- MRef { fields = Array.make nfields MNull; serial = !serial }
      | Write { src; field; dst } ->
        with_obj src (fun o ->
            if field < Array.length o.fields then o.fields.(field) <- roots.(dst))
      | Write_int { src; field; v } ->
        with_obj src (fun o ->
            if field < Array.length o.fields then o.fields.(field) <- MInt v)
      | Write_null { src; field } ->
        with_obj src (fun o ->
            if field < Array.length o.fields then o.fields.(field) <- MNull)
      | Copy_root { src; dst } -> roots.(dst) <- roots.(src)
      | Clear_root { root } -> roots.(root) <- MNull
      | Deref { src; field; dst } ->
        with_obj src (fun o ->
            if field < Array.length o.fields then roots.(dst) <- o.fields.(field))
      | Collect -> ())
    t.ops;
  roots

(* ---- comparison ----------------------------------------------------- *)

let compare_with_mirror gc t =
  let slots = execute_with gc t in
  let mirror_roots = execute_mirror t in
  let roots = Beltway.Gc.roots gc in
  let paired : (Addr.t, mirror_obj) Hashtbl.t = Hashtbl.create 64 in
  let rpaired : (int, Addr.t) Hashtbl.t = Hashtbl.create 64 in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec cmp hv mv =
    match (Value.is_null hv, Value.is_int hv, mv) with
    | true, _, MNull -> Ok ()
    | _, true, MInt n when Value.to_int hv = n -> Ok ()
    | false, false, MRef o -> begin
      let a = Value.to_addr hv in
      match (Hashtbl.find_opt paired a, Hashtbl.find_opt rpaired o.serial) with
      | Some o', _ when o' == o -> Ok ()
      | Some o', _ -> err "address %#x paired with two mirror objects (%d, %d)" a o'.serial o.serial
      | None, Some a' -> err "mirror object %d paired with two addresses (%#x, %#x)" o.serial a' a
      | None, None ->
        Hashtbl.replace paired a o;
        Hashtbl.replace rpaired o.serial a;
        let n = Beltway.Gc.nfields gc a in
        if n <> Array.length o.fields then
          err "object %#x has %d fields, mirror %d has %d" a n o.serial
            (Array.length o.fields)
        else begin
          let rec fields i =
            if i = n then Ok ()
            else begin
              match cmp (Beltway.Gc.read gc a i) o.fields.(i) with
              | Ok () -> fields (i + 1)
              | Error e -> Error e
            end
          in
          fields 0
        end
    end
    | _ -> err "value mismatch: heap %a vs mirror" Value.pp hv
  in
  let rec roots_cmp i =
    if i = t.nroots then Ok ()
    else begin
      match cmp (Roots.get_global roots slots.(i)) mirror_roots.(i) with
      | Ok () -> roots_cmp (i + 1)
      | Error e -> Error (Printf.sprintf "root %d: %s" i e)
    end
  in
  roots_cmp 0
