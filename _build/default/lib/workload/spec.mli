(** Synthetic analogues of the paper's six benchmarks (Table 1).

    The paper evaluates on five SPEC JVM98 programs plus pseudojbb.
    Those binaries (and a JVM to run them) are not available here, so
    each is modelled as a deterministic synthetic mutator reproducing
    the properties that drive collector behaviour: allocation volume,
    object size and lifetime distributions, pointer-mutation rate
    (especially old-to-young stores), heap shape (trees, tables,
    rings), and each benchmark's signature pathology —

    - [jess]: very high allocation rate, classic weak-generational
      lifetime mixture;
    - [raytrace]: long-lived scene built up front, then a torrent of
      instantly dead per-ray temporaries;
    - [db]: a long-lived database with low allocation and frequent
      old-to-young update stores (GC is not the dominant cost);
    - [javac]: per-compilation-unit ASTs with {e cross-increment
      cycles} dropped en masse — the structure that an incomplete
      collector (Beltway X.X) can never reclaim (S4.2.4);
    - [jack]: repeated parser-generator passes of medium-lived data;
    - [pseudojbb]: a fixed transaction count over a warehouse database
      with an order-history ring, the largest live set of the six.

    All sizes are scaled down ~50x from the paper (minimum heaps of
    hundreds of KiB rather than tens of MiB) so that full heap-size
    sweeps run in seconds; the ratios between benchmarks follow
    Table 1. *)

type t = {
  name : string;
  description : string;
  total_alloc_words : int; (** allocation budget: the run's length *)
  live_hint_words : int; (** approximate steady live set *)
  min_heap_hint_frames : int; (** starting point for min-heap search *)
  run : Beltway.Gc.t -> unit; (** drive the heap; raises [Gc.Out_of_memory]
                                  when the heap is too small *)
}

val jess : t
val raytrace : t
val db : t
val javac : t
val jack : t
val pseudojbb : t

val all : t list
(** The six, in the paper's order. *)

val by_name : string -> t option
