let log_src = Logs.Src.create "beltway.runner" ~doc:"Beltway experiment runner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  bench : string;
  config : string;
  heap_frames : int;
  heap_bytes : int;
  completed : bool;
  oom_reason : string option;
  stats : Beltway.Gc_stats.t;
  gc_time : float;
  mutator_time : float;
  total_time : float;
}

let frame_log_words = 10
let frame_bytes = (1 lsl frame_log_words) * Addr.bytes_per_word

let run_one ?(model = Cost_model.default) ~bench ~config ~heap_frames () =
  let gc =
    Beltway.Gc.create ~frame_log_words ~config
      ~heap_bytes:(heap_frames * frame_bytes) ()
  in
  let completed, oom_reason =
    try
      bench.Beltway_workload.Spec.run gc;
      (true, None)
    with Beltway.Gc.Out_of_memory m -> (false, Some m)
  in
  let stats = Beltway.Gc.stats gc in
  {
    bench = bench.Beltway_workload.Spec.name;
    config = Config.to_string config;
    heap_frames;
    heap_bytes = heap_frames * frame_bytes;
    completed;
    oom_reason;
    stats;
    gc_time = Cost_model.gc_time model stats;
    mutator_time = Cost_model.mutator_time model stats;
    total_time = Cost_model.total_time model stats;
  }

let memo : (string * string, int) Hashtbl.t = Hashtbl.create 16

let min_heap_frames ?(config = Config.appel) bench =
  let key = (bench.Beltway_workload.Spec.name, Config.to_string config) in
  match Hashtbl.find_opt memo key with
  | Some v -> v
  | None ->
    let completes frames =
      (run_one ~bench ~config ~heap_frames:frames ()).completed
    in
    (* Grow an upper bound from the hint, then binary search. *)
    let hi = ref (max 8 bench.Beltway_workload.Spec.min_heap_hint_frames) in
    while not (completes !hi) do
      hi := !hi * 2;
      if !hi > 1 lsl 22 then
        failwith
          (Printf.sprintf "min_heap_frames: %s/%s does not complete even at %d frames"
             bench.Beltway_workload.Spec.name (Config.to_string config) !hi)
    done;
    let lo = ref (max 4 (!hi / 16)) in
    (* Ensure lo fails (or accept lo). *)
    if completes !lo then hi := !lo
    else begin
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if completes mid then hi := mid else lo := mid
      done
    end;
    Log.info (fun m ->
        m "min heap for %s under %s: %d frames (%d KB)"
          bench.Beltway_workload.Spec.name (Config.to_string config) !hi
          (!hi * frame_bytes / 1024));
    Hashtbl.replace memo key !hi;
    !hi

let multipliers ~full =
  let n = if full then 33 else 9 in
  let ratio = 3.0 in
  List.init n (fun i ->
      let f = float_of_int i /. float_of_int (n - 1) in
      Float.pow ratio f)

let heap_ladder ~min_frames ~mults =
  List.map (fun m -> max 4 (int_of_float (Float.round (float_of_int min_frames *. m)))) mults

let sweep ?model ~bench ~config ~heaps () =
  List.map (fun heap_frames -> run_one ?model ~bench ~config ~heap_frames ()) heaps
