(** Minimum mutator utilization (paper S4.3, Figure 11).

    Following Cheng & Blelloch, mutator utilization over an interval
    [\[t, t+w)] is the fraction of that interval in which the mutator
    (not the collector) runs; MMU(w) is the minimum over all placements
    of a window of length [w] inside the run. MMU curves are
    monotonically increasing in [w]; the x-intercept is the maximum
    pause and the asymptote is overall throughput.

    The timeline is reconstructed from the collection log: mutator
    progress is interpolated on the allocation clock at the run's mean
    mutator rate, and each collection contributes a pause of its
    cost-model duration. *)

type timeline

val timeline : Cost_model.t -> Beltway.Gc_stats.t -> timeline

val total_time : timeline -> float
val max_pause : timeline -> float
val utilization : timeline -> float
(** Overall mutator fraction (the curve's asymptote). *)

val mmu : timeline -> window:float -> float
(** MMU for one window length, in [\[0,1\]]. Windows longer than the
    run return {!utilization}. *)

val curve : timeline -> windows:float list -> (float * float) list
(** [(w, mmu w)] pairs. *)

val pause_count : timeline -> int
