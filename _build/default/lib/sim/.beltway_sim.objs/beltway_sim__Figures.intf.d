lib/sim/figures.mli:
