lib/sim/mmu.mli: Beltway Cost_model
