lib/sim/runner.mli: Beltway Beltway_workload Config Cost_model
