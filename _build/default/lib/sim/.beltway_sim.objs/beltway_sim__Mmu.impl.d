lib/sim/mmu.ml: Array Beltway Beltway_util Cost_model Float List
