lib/sim/runner.ml: Addr Beltway Beltway_workload Config Cost_model Float Hashtbl List Logs Printf
