lib/sim/cost_model.ml: Beltway Beltway_util
