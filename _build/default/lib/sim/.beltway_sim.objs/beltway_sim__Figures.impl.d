lib/sim/figures.ml: Addr Beltlang Beltway Beltway_util Beltway_workload Config Cost_model Float Hashtbl List Mmu Option Printf Runner String
