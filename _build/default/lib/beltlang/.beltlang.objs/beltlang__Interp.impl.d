lib/beltlang/interp.ml: Array Ast Beltway Beltway_util Buffer Format Fun Hashtbl List Option Roots Sexp Type_registry Value
