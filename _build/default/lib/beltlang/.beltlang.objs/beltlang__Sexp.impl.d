lib/beltlang/sexp.ml: Format List Printf String
