lib/beltlang/sexp.mli: Format
