lib/beltlang/programs.ml: List
