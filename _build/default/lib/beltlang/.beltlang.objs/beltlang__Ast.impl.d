lib/beltlang/ast.ml: Beltway_util Format Hashtbl List Sexp String
