lib/beltlang/ast.mli: Sexp
