lib/beltlang/interp.mli: Ast Beltway Value
