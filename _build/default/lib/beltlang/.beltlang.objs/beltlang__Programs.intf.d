lib/beltlang/programs.mli:
