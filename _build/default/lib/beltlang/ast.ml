type prim =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq_num
  | Eq_phys
  | Not
  | Cons | Car | Cdr | Set_car | Set_cdr
  | Is_null | Is_pair
  | Vector_make
  | Vector_ref | Vector_set | Vector_length
  | Print

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of { depth : int; idx : int }
  | Global of int
  | If of expr * expr * expr
  | Let of { bindings : expr list; body : expr list }
  | Lambda of { lam : int }
  | Call of expr * expr list
  | Prim of prim * expr list
  | Begin of expr list
  | Set_var of { depth : int; idx : int; value : expr }
  | Set_global of { idx : int; value : expr }
  | While of { cond : expr; body : expr list }
  | And of expr list
  | Or of expr list
  | Quoted of Sexp.t

type lambda = { params : int; body : expr list; name : string }

type program = {
  lambdas : lambda array;
  globals : string array;
  toplevel : (int option * expr) list;
}

exception Compile_error of string

let err fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let prims =
  [
    ("+", (Add, 2)); ("-", (Sub, 2)); ("*", (Mul, 2)); ("/", (Div, 2));
    ("mod", (Mod, 2)); ("<", (Lt, 2)); ("<=", (Le, 2)); (">", (Gt, 2));
    (">=", (Ge, 2)); ("=", (Eq_num, 2)); ("eq?", (Eq_phys, 2)); ("not", (Not, 1));
    ("cons", (Cons, 2)); ("car", (Car, 1)); ("cdr", (Cdr, 1));
    ("set-car!", (Set_car, 2)); ("set-cdr!", (Set_cdr, 2));
    ("null?", (Is_null, 1)); ("pair?", (Is_pair, 1));
    ("make-vector", (Vector_make, 2)); ("vector-ref", (Vector_ref, 2));
    ("vector-set!", (Vector_set, 3)); ("vector-length", (Vector_length, 1));
    ("print", (Print, 1));
  ]

let prim_name p = fst (List.find (fun (_, (q, _)) -> q = p) prims)

type ctx = {
  scopes : string list list; (* innermost first *)
  globals : (string, int) Hashtbl.t;
  global_names : string Beltway_util.Vec.t;
  lambdas : lambda Beltway_util.Vec.t;
}

let lookup ctx name =
  let rec scan depth = function
    | [] -> None
    | frame :: rest -> (
      match List.find_index (String.equal name) frame with
      | Some idx -> Some (depth, idx)
      | None -> scan (depth + 1) rest)
  in
  scan 0 ctx.scopes

let global_idx ctx name = Hashtbl.find_opt ctx.globals name

let define_global ctx name =
  match Hashtbl.find_opt ctx.globals name with
  | Some i -> i
  | None ->
    let i = Beltway_util.Vec.length ctx.global_names in
    Hashtbl.replace ctx.globals name i;
    Beltway_util.Vec.push ctx.global_names name;
    i

let int_of_atom a = int_of_string_opt a

let rec compile_expr ctx (s : Sexp.t) : expr =
  match s with
  | Sexp.Atom "#t" -> Bool true
  | Sexp.Atom "#f" -> Bool false
  | Sexp.Atom "nil" | Sexp.List [] -> Nil
  | Sexp.Atom a -> (
    match int_of_atom a with
    | Some n -> Int n
    | None -> (
      match lookup ctx a with
      | Some (depth, idx) -> Var { depth; idx }
      | None -> (
        match global_idx ctx a with
        | Some g -> Global g
        | None -> err "unbound variable %s" a)))
  | Sexp.List (Sexp.Atom "quote" :: rest) -> (
    match rest with [ q ] -> Quoted q | _ -> err "quote expects one form")
  | Sexp.List (Sexp.Atom "if" :: rest) -> (
    match rest with
    | [ c; t ] -> If (compile_expr ctx c, compile_expr ctx t, Nil)
    | [ c; t; e ] -> If (compile_expr ctx c, compile_expr ctx t, compile_expr ctx e)
    | _ -> err "if expects 2 or 3 forms")
  | Sexp.List (Sexp.Atom "begin" :: body) -> Begin (List.map (compile_expr ctx) body)
  | Sexp.List (Sexp.Atom "lambda" :: rest) -> compile_lambda ctx ~name:"<lambda>" rest
  | Sexp.List (Sexp.Atom "let" :: Sexp.List bindings :: body) ->
    let names, exprs =
      List.split
        (List.map
           (function
             | Sexp.List [ Sexp.Atom n; e ] -> (n, e)
             | b -> err "bad let binding %a" Sexp.pp b)
           bindings)
    in
    let bindings = List.map (compile_expr ctx) exprs in
    let ctx' = { ctx with scopes = names :: ctx.scopes } in
    Let { bindings; body = List.map (compile_expr ctx') body }
  | Sexp.List [ Sexp.Atom "set!"; Sexp.Atom name; value ] -> (
    let value = compile_expr ctx value in
    match lookup ctx name with
    | Some (depth, idx) -> Set_var { depth; idx; value }
    | None -> (
      match global_idx ctx name with
      | Some idx -> Set_global { idx; value }
      | None -> err "set! of unbound variable %s" name))
  | Sexp.List (Sexp.Atom "while" :: cond :: body) ->
    While { cond = compile_expr ctx cond; body = List.map (compile_expr ctx) body }
  | Sexp.List (Sexp.Atom "and" :: rest) -> And (List.map (compile_expr ctx) rest)
  | Sexp.List (Sexp.Atom "or" :: rest) -> Or (List.map (compile_expr ctx) rest)
  | Sexp.List (Sexp.Atom op :: args) when List.mem_assoc op prims && lookup ctx op = None
                                          && global_idx ctx op = None ->
    let prim, arity = List.assoc op prims in
    if List.length args <> arity then
      err "%s expects %d arguments, got %d" op arity (List.length args);
    Prim (prim, List.map (compile_expr ctx) args)
  | Sexp.List (f :: args) ->
    Call (compile_expr ctx f, List.map (compile_expr ctx) args)

and compile_lambda ctx ~name = function
  | Sexp.List params :: body when body <> [] ->
    let params =
      List.map
        (function Sexp.Atom p -> p | s -> err "bad parameter %a" Sexp.pp s)
        params
    in
    let ctx' = { ctx with scopes = params :: ctx.scopes } in
    let body = List.map (compile_expr ctx') body in
    let lam = Beltway_util.Vec.length ctx.lambdas in
    Beltway_util.Vec.push ctx.lambdas { params = List.length params; body; name };
    Lambda { lam }
  | _ -> err "bad lambda"

let compile_top ctx (s : Sexp.t) : int option * expr =
  match s with
  | Sexp.List [ Sexp.Atom "define"; Sexp.Atom name; value ] ->
    let g = define_global ctx name in
    (Some g, compile_expr ctx value)
  | Sexp.List (Sexp.Atom "define" :: Sexp.List (Sexp.Atom name :: params) :: body) ->
    let g = define_global ctx name in
    (Some g, compile_lambda ctx ~name (Sexp.List params :: body))
  | other -> (None, compile_expr ctx other)

let compile ?(initial_globals = []) forms =
  let ctx =
    {
      scopes = [];
      globals = Hashtbl.create 32;
      global_names = Beltway_util.Vec.create ~dummy:"" ();
      lambdas = Beltway_util.Vec.create ~dummy:{ params = 0; body = []; name = "" } ();
    }
  in
  List.iter (fun name -> ignore (define_global ctx name)) initial_globals;
  (* Pre-declare every top-level defined name so definitions can be
     mutually recursive. *)
  List.iter
    (function
      | Sexp.List (Sexp.Atom "define" :: Sexp.Atom name :: _) ->
        ignore (define_global ctx name)
      | Sexp.List (Sexp.Atom "define" :: Sexp.List (Sexp.Atom name :: _) :: _) ->
        ignore (define_global ctx name)
      | _ -> ())
    forms;
  let toplevel = List.map (compile_top ctx) forms in
  {
    lambdas = Beltway_util.Vec.to_array ctx.lambdas;
    globals = Beltway_util.Vec.to_array ctx.global_names;
    toplevel;
  }
