module Vec = Beltway_util.Vec

exception Runtime_error of string

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type t = {
  gc : Beltway.Gc.t;
  pair_ty : Type_registry.id;
  vector_ty : Type_registry.id;
  closure_ty : Type_registry.id;
  env_ty : Type_registry.id;
  lambdas : Ast.lambda Vec.t; (* persistent across runs; closures hold indices *)
  globals : (string, Roots.global) Hashtbl.t;
  buf : Buffer.t;
}

let create gc =
  {
    gc;
    pair_ty = Beltway.Gc.register_type gc ~name:"beltlang.pair";
    vector_ty = Beltway.Gc.register_type gc ~name:"beltlang.vector";
    closure_ty = Beltway.Gc.register_type gc ~name:"beltlang.closure";
    env_ty = Beltway.Gc.register_type gc ~name:"beltlang.env";
    lambdas = Vec.create ~dummy:{ Ast.params = 0; body = []; name = "" } ();
    globals = Hashtbl.create 32;
    buf = Buffer.create 256;
  }

let gc t = t.gc
let output t = Buffer.contents t.buf
let clear_output t = Buffer.clear t.buf

let global t name =
  Option.map (Roots.get_global (Beltway.Gc.roots t.gc)) (Hashtbl.find_opt t.globals name)

(* Truthiness: #f (the immediate 0) and nil are false. *)
let truthy v = not (Value.is_null v || (Value.is_int v && Value.to_int v = 0))
let vtrue = Value.of_int 1
let vfalse = Value.of_int 0
let of_bool b = if b then vtrue else vfalse

type ctx = { t : t; base : int; genv : Roots.global array }

let roots ctx = Beltway.Gc.roots ctx.t.gc
let push ctx v = Roots.push (roots ctx) v
let peek ctx i = Roots.peek (roots ctx) i

let release ctx n =
  let r = roots ctx in
  Roots.release r (Roots.depth r - n)

(* Type checks *)
let as_int what v = if Value.is_int v then Value.to_int v else err "%s: expected an integer" what

let as_obj ctx ~ty what v =
  if not (Value.is_ref v) then err "%s: expected a %s" what ty;
  let addr = Value.to_addr v in
  match Beltway.Gc.type_of ctx.t.gc addr with
  | Some id
    when (ty = "pair" && id = ctx.t.pair_ty)
         || (ty = "vector" && id = ctx.t.vector_ty)
         || (ty = "closure" && id = ctx.t.closure_ty) ->
    addr
  | _ -> err "%s: expected a %s" what ty

(* Environment frames: slot 0 = parent, slots 1.. = variables. The
   current frame lives at a fixed absolute shadow-stack index so
   collections keep it current. *)
let env_addr ctx ~env depth =
  let v = ref (Roots.stack_get (roots ctx) env) in
  for _ = 1 to depth do
    if not (Value.is_ref !v) then err "internal: environment chain broken";
    v := Beltway.Gc.read ctx.t.gc (Value.to_addr !v) 0
  done;
  if not (Value.is_ref !v) then err "internal: environment chain broken";
  Value.to_addr !v

let render ctx v =
  let b = Buffer.create 32 in
  let rec go v =
    if Value.is_null v then Buffer.add_string b "()"
    else if Value.is_int v then Buffer.add_string b (string_of_int (Value.to_int v))
    else begin
      let addr = Value.to_addr v in
      match Beltway.Gc.type_of ctx.t.gc addr with
      | Some id when id = ctx.t.pair_ty ->
        Buffer.add_char b '(';
        let rec elems v first =
          if Value.is_null v then ()
          else if Value.is_ref v
                  && Beltway.Gc.type_of ctx.t.gc (Value.to_addr v) = Some ctx.t.pair_ty
          then begin
            if not first then Buffer.add_char b ' ';
            let a = Value.to_addr v in
            go (Beltway.Gc.read ctx.t.gc a 0);
            elems (Beltway.Gc.read ctx.t.gc a 1) false
          end
          else begin
            Buffer.add_string b " . ";
            go v
          end
        in
        elems v true;
        Buffer.add_char b ')'
      | Some id when id = ctx.t.vector_ty ->
        Buffer.add_string b "#(";
        let n = Beltway.Gc.nfields ctx.t.gc addr in
        for i = 0 to n - 1 do
          if i > 0 then Buffer.add_char b ' ';
          go (Beltway.Gc.read ctx.t.gc addr i)
        done;
        Buffer.add_char b ')'
      | Some id when id = ctx.t.closure_ty -> Buffer.add_string b "#<closure>"
      | _ -> Buffer.add_string b "#<object>"
    end
  in
  go v;
  Buffer.contents b

let rec eval ctx ~env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int n -> Value.of_int n
  | Ast.Bool b -> of_bool b
  | Ast.Nil -> Value.null
  | Ast.Var { depth; idx } ->
    Beltway.Gc.read ctx.t.gc (env_addr ctx ~env depth) (idx + 1)
  | Ast.Global g -> Roots.get_global (roots ctx) ctx.genv.(g)
  | Ast.If (c, th, el) ->
    if truthy (eval ctx ~env c) then eval ctx ~env th else eval ctx ~env el
  | Ast.Begin body -> eval_body ctx ~env body
  | Ast.And body ->
    let rec go = function
      | [] -> vtrue
      | [ last ] -> eval ctx ~env last
      | x :: rest -> if truthy (eval ctx ~env x) then go rest else vfalse
    in
    go body
  | Ast.Or body ->
    let rec go = function
      | [] -> vfalse
      | x :: rest ->
        let v = eval ctx ~env x in
        if truthy v then v else go rest
    in
    go body
  | Ast.While { cond; body } ->
    while truthy (eval ctx ~env cond) do
      ignore (eval_body ctx ~env body)
    done;
    Value.null
  | Ast.Set_var { depth; idx; value } ->
    let v = eval ctx ~env value in
    (* env_addr re-reads the (possibly moved) frame after evaluation;
       no allocation happens in between. *)
    Beltway.Gc.write ctx.t.gc (env_addr ctx ~env depth) (idx + 1) v;
    Value.null
  | Ast.Set_global { idx; value } ->
    let v = eval ctx ~env value in
    Roots.set_global (roots ctx) ctx.genv.(idx) v;
    Value.null
  | Ast.Lambda { lam } ->
    let addr = Beltway.Gc.alloc ctx.t.gc ~ty:ctx.t.closure_ty ~nfields:2 in
    Beltway.Gc.write ctx.t.gc addr 0 (Roots.stack_get (roots ctx) env);
    Beltway.Gc.write ctx.t.gc addr 1 (Value.of_int (ctx.base + lam));
    Value.of_addr addr
  | Ast.Let { bindings; body } ->
    let k = List.length bindings in
    List.iter (fun b -> push ctx (eval ctx ~env b)) bindings;
    let frame = Beltway.Gc.alloc ctx.t.gc ~ty:ctx.t.env_ty ~nfields:(k + 1) in
    Beltway.Gc.write ctx.t.gc frame 0 (Roots.stack_get (roots ctx) env);
    for i = 0 to k - 1 do
      Beltway.Gc.write ctx.t.gc frame (i + 1) (peek ctx (k - 1 - i))
    done;
    push ctx (Value.of_addr frame);
    let new_env = Roots.depth (roots ctx) - 1 in
    let result = eval_body ctx ~env:new_env body in
    release ctx (k + 1);
    result
  | Ast.Call (f, args) ->
    let fv = eval ctx ~env f in
    push ctx fv;
    List.iter (fun a -> push ctx (eval ctx ~env a)) args;
    let nargs = List.length args in
    let clos = as_obj ctx ~ty:"closure" "call" (peek ctx nargs) in
    let lam_id = as_int "call" (Beltway.Gc.read ctx.t.gc clos 1) in
    let lam = Vec.get ctx.t.lambdas lam_id in
    if lam.Ast.params <> nargs then
      err "%s expects %d arguments, got %d" lam.Ast.name lam.Ast.params nargs;
    let frame = Beltway.Gc.alloc ctx.t.gc ~ty:ctx.t.env_ty ~nfields:(nargs + 1) in
    (* Re-resolve the closure: the allocation may have moved it. *)
    let clos = Value.to_addr (peek ctx nargs) in
    Beltway.Gc.write ctx.t.gc frame 0 (Beltway.Gc.read ctx.t.gc clos 0);
    for i = 0 to nargs - 1 do
      Beltway.Gc.write ctx.t.gc frame (i + 1) (peek ctx (nargs - 1 - i))
    done;
    push ctx (Value.of_addr frame);
    let new_env = Roots.depth (roots ctx) - 1 in
    let result = eval_body ctx ~env:new_env lam.Ast.body in
    release ctx (nargs + 2);
    result
  | Ast.Prim (p, args) ->
    List.iter (fun a -> push ctx (eval ctx ~env a)) args;
    let n = List.length args in
    let result = apply_prim ctx p n in
    release ctx n;
    result
  | Ast.Quoted q -> quote ctx q

and eval_body ctx ~env = function
  | [] -> Value.null
  | [ last ] -> eval ctx ~env last
  | x :: rest ->
    ignore (eval ctx ~env x);
    eval_body ctx ~env rest

and quote ctx (s : Sexp.t) : Value.t =
  match s with
  | Sexp.Atom "#t" -> vtrue
  | Sexp.Atom "#f" -> vfalse
  | Sexp.Atom "nil" -> Value.null
  | Sexp.Atom a -> (
    match int_of_string_opt a with
    | Some n -> Value.of_int n
    | None -> err "quote: symbols are not supported (%s)" a)
  | Sexp.List items ->
    let rec build = function
      | [] -> Value.null
      | x :: rest ->
        let tail = build rest in
        push ctx tail;
        let head = quote ctx x in
        push ctx head;
        let pair = Beltway.Gc.alloc ctx.t.gc ~ty:ctx.t.pair_ty ~nfields:2 in
        Beltway.Gc.write ctx.t.gc pair 0 (peek ctx 0);
        Beltway.Gc.write ctx.t.gc pair 1 (peek ctx 1);
        release ctx 2;
        Value.of_addr pair
    in
    build items

and apply_prim ctx p n : Value.t =
  (* Arguments sit on the shadow stack: arg i at peek (n-1-i). *)
  let arg i = peek ctx (n - 1 - i) in
  let int_op what f =
    let a = as_int what (arg 0) and b = as_int what (arg 1) in
    Value.of_int (f a b)
  in
  let cmp what f =
    let a = as_int what (arg 0) and b = as_int what (arg 1) in
    of_bool (f a b)
  in
  match p with
  | Ast.Add -> int_op "+" ( + )
  | Ast.Sub -> int_op "-" ( - )
  | Ast.Mul -> int_op "*" ( * )
  | Ast.Div ->
    if as_int "/" (arg 1) = 0 then err "division by zero";
    int_op "/" ( / )
  | Ast.Mod ->
    if as_int "mod" (arg 1) = 0 then err "mod by zero";
    int_op "mod" ( mod )
  | Ast.Lt -> cmp "<" ( < )
  | Ast.Le -> cmp "<=" ( <= )
  | Ast.Gt -> cmp ">" ( > )
  | Ast.Ge -> cmp ">=" ( >= )
  | Ast.Eq_num -> cmp "=" ( = )
  | Ast.Eq_phys -> of_bool (arg 0 = arg 1)
  | Ast.Not -> of_bool (not (truthy (arg 0)))
  | Ast.Cons ->
    let pair = Beltway.Gc.alloc ctx.t.gc ~ty:ctx.t.pair_ty ~nfields:2 in
    Beltway.Gc.write ctx.t.gc pair 0 (arg 0);
    Beltway.Gc.write ctx.t.gc pair 1 (arg 1);
    Value.of_addr pair
  | Ast.Car -> Beltway.Gc.read ctx.t.gc (as_obj ctx ~ty:"pair" "car" (arg 0)) 0
  | Ast.Cdr -> Beltway.Gc.read ctx.t.gc (as_obj ctx ~ty:"pair" "cdr" (arg 0)) 1
  | Ast.Set_car ->
    Beltway.Gc.write ctx.t.gc (as_obj ctx ~ty:"pair" "set-car!" (arg 0)) 0 (arg 1);
    Value.null
  | Ast.Set_cdr ->
    Beltway.Gc.write ctx.t.gc (as_obj ctx ~ty:"pair" "set-cdr!" (arg 0)) 1 (arg 1);
    Value.null
  | Ast.Is_null -> of_bool (Value.is_null (arg 0))
  | Ast.Is_pair ->
    of_bool
      (Value.is_ref (arg 0)
      && Beltway.Gc.type_of ctx.t.gc (Value.to_addr (arg 0)) = Some ctx.t.pair_ty)
  | Ast.Vector_make ->
    let len = as_int "make-vector" (arg 0) in
    if len < 0 then err "make-vector: negative length";
    let v = Beltway.Gc.alloc ctx.t.gc ~ty:ctx.t.vector_ty ~nfields:len in
    let fill = arg 1 in
    if not (Value.is_null fill) then
      for i = 0 to len - 1 do
        Beltway.Gc.write ctx.t.gc v i fill
      done;
    Value.of_addr v
  | Ast.Vector_ref ->
    let v = as_obj ctx ~ty:"vector" "vector-ref" (arg 0) in
    let i = as_int "vector-ref" (arg 1) in
    if i < 0 || i >= Beltway.Gc.nfields ctx.t.gc v then err "vector-ref: index %d out of bounds" i;
    Beltway.Gc.read ctx.t.gc v i
  | Ast.Vector_set ->
    let v = as_obj ctx ~ty:"vector" "vector-set!" (arg 0) in
    let i = as_int "vector-set!" (arg 1) in
    if i < 0 || i >= Beltway.Gc.nfields ctx.t.gc v then err "vector-set!: index %d out of bounds" i;
    Beltway.Gc.write ctx.t.gc v i (arg 2);
    Value.null
  | Ast.Vector_length ->
    Value.of_int (Beltway.Gc.nfields ctx.t.gc (as_obj ctx ~ty:"vector" "vector-length" (arg 0)))
  | Ast.Print ->
    Buffer.add_string ctx.t.buf (render ctx (arg 0));
    Buffer.add_char ctx.t.buf '\n';
    Value.null

let run t (prog : Ast.program) =
  let base = Vec.length t.lambdas in
  Array.iter (fun lam -> Vec.push t.lambdas lam) prog.Ast.lambdas;
  let r = Beltway.Gc.roots t.gc in
  let genv =
    Array.map
      (fun name ->
        match Hashtbl.find_opt t.globals name with
        | Some g -> g
        | None ->
          let g = Roots.new_global r Value.null in
          Hashtbl.replace t.globals name g;
          g)
      prog.Ast.globals
  in
  let ctx = { t; base; genv } in
  let m = Roots.mark r in
  (* Errors (including Out_of_memory) may abandon shadow-stack entries
     mid-evaluation; restore the caller's watermark unconditionally. *)
  Fun.protect
    ~finally:(fun () -> Roots.release r m)
    (fun () ->
      (* Top level runs in a degenerate root frame. *)
      let frame = Beltway.Gc.alloc t.gc ~ty:t.env_ty ~nfields:1 in
      push ctx (Value.of_addr frame);
      let env = Roots.depth r - 1 in
      List.iter
        (fun (target, e) ->
          let v = eval ctx ~env e in
          match target with
          | Some g -> Roots.set_global r genv.(g) v
          | None -> ())
        prog.Ast.toplevel)

let run_string t src =
  let initial_globals = Hashtbl.fold (fun name _ acc -> name :: acc) t.globals [] in
  run t (Ast.compile ~initial_globals (Sexp.parse_string src))
