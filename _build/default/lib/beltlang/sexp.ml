type t = Atom of string | List of t list

exception Parse_error of string

type lexer = { src : string; mutable pos : int; mutable line : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let error lx fmt =
  Format.kasprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" lx.line s))) fmt

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_ws lx
  | _ -> ()

let is_atom_char = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '\'' -> false
  | _ -> true

let read_atom lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_atom_char c | None -> false) do
    advance lx
  done;
  if lx.pos = start then error lx "expected an atom";
  String.sub lx.src start (lx.pos - start)

let rec read_form lx =
  skip_ws lx;
  match peek lx with
  | None -> error lx "unexpected end of input"
  | Some '(' ->
    advance lx;
    let rec items acc =
      skip_ws lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List (List.rev acc)
      | None -> error lx "unterminated list"
      | Some _ -> items (read_form lx :: acc)
    in
    items []
  | Some ')' -> error lx "unexpected ')'"
  | Some '\'' ->
    advance lx;
    List [ Atom "quote"; read_form lx ]
  | Some _ -> Atom (read_atom lx)

let parse_string src =
  let lx = { src; pos = 0; line = 1 } in
  let rec forms acc =
    skip_ws lx;
    if lx.pos >= String.length src then List.rev acc else forms (read_form lx :: acc)
  in
  forms []

let rec pp fmt = function
  | Atom a -> Format.pp_print_string fmt a
  | List items ->
    Format.fprintf fmt "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      items
