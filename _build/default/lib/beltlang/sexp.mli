(** S-expression reader for Beltlang (lexer + parser).

    Beltlang is the Scheme-flavoured language whose values live on the
    simulated Beltway heap; its reader is deliberately tiny: atoms
    (integers, [#t]/[#f], symbols), lists, ['] quotation and [;]
    comments. *)

type t = Atom of string | List of t list

exception Parse_error of string
(** Raised with a human-readable message (position included). *)

val parse_string : string -> t list
(** All top-level forms in the input.
    @raise Parse_error on malformed input. *)

val pp : Format.formatter -> t -> unit
