type t = {
  name : string;
  source : string;
  expected_output : string option;
  description : string;
}

let gcbench =
  {
    name = "gcbench";
    description =
      "Boehm's GCBench (scaled): temporary binary trees built top-down and \
       bottom-up under a long-lived tree";
    expected_output = Some "2047\n31\n31\n127\n127\n511\n511\n2047\n";
    source =
      {|
;; A tree node is (cons left right); a leaf is (cons nil nil).
(define (make-tree d)
  (if (= d 0)
      (cons nil nil)
      (cons (make-tree (- d 1)) (make-tree (- d 1)))))

;; Top-down construction mutates freshly allocated nodes: the
;; pointer-store pattern GCBench uses to stress write barriers.
(define (populate d node)
  (if (> d 0)
      (begin
        (set-car! node (cons nil nil))
        (set-cdr! node (cons nil nil))
        (populate (- d 1) (car node))
        (populate (- d 1) (cdr node)))
      nil))

(define (tree-count node)
  (if (null? node)
      0
      (+ 1 (+ (tree-count (car node)) (tree-count (cdr node))))))

(define long-lived (make-tree 10))
(print (tree-count long-lived))

(define (stretch d iters)
  (while (> iters 0)
    (begin
      ;; bottom-up temporary
      (print (tree-count (make-tree d)))
      ;; top-down temporary
      (let ((n (cons nil nil)))
        (begin
          (populate d n)
          (print (tree-count n))))
      (set! iters (- iters 1)))))

(stretch 4 1)
(stretch 6 1)
(stretch 8 1)

;; the long-lived tree must have survived everything
(print (tree-count long-lived))
|};
  }

let nqueens =
  {
    name = "nqueens";
    description = "8-queens solution count by list-based backtracking";
    expected_output = Some "92\n";
    source =
      {|
(define (abs x) (if (< x 0) (- 0 x) x))

(define (safe? q qs d)
  (if (null? qs)
      #t
      (and (not (= q (car qs)))
           (and (not (= (abs (- q (car qs))) d))
                (safe? q (cdr qs) (+ d 1))))))

(define (solve n row placed)
  (if (= row n)
      1
      (let ((count 0) (q 0))
        (begin
          (while (< q n)
            (begin
              (if (safe? q placed 1)
                  (set! count (+ count (solve n (+ row 1) (cons q placed))))
                  nil)
              (set! q (+ q 1))))
          count))))

(print (solve 8 0 nil))
|};
  }

let list_sort =
  {
    name = "list-sort";
    description = "merge sort over an LCG-generated 400-element list";
    expected_output = Some "12488\n12488\n1\n";
    source =
      {|
(define seed 42)
(define (next-rand)
  (begin
    (set! seed (mod (+ (* seed 1103515245) 12345) 2147483648))
    (mod seed 100000)))

(define (gen n)
  (if (= n 0) nil (cons (next-rand) (gen (- n 1)))))

(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))

(define (merge a b)
  (if (null? a) b
      (if (null? b) a
          (if (<= (car a) (car b))
              (cons (car a) (merge (cdr a) b))
              (cons (car b) (merge a (cdr b)))))))

(define (split l)
  (if (or (null? l) (null? (cdr l)))
      (cons l nil)
      (let ((rest (split (cdr (cdr l)))))
        (cons (cons (car l) (car rest))
              (cons (car (cdr l)) (cdr rest))))))

(define (msort l)
  (if (or (null? l) (null? (cdr l)))
      l
      (let ((halves (split l)))
        (merge (msort (car halves)) (msort (cdr halves))))))

(define (sorted? l)
  (if (or (null? l) (null? (cdr l)))
      #t
      (and (<= (car l) (car (cdr l))) (sorted? (cdr l)))))

(define data (gen 400))
(print (sum data))
(define sorted (msort data))
(print (sum sorted))
(print (sorted? sorted))
|};
  }

let queue_churn =
  {
    name = "queue-churn";
    description =
      "imperative bounded ring over a vector, cycled heavily: steady \
       old-to-young stores";
    expected_output = Some "20000\n64\n";
    source =
      {|
(define ring (make-vector 64 nil))
(define i 0)
(define total 20000)

(while (< i total)
  (begin
    ;; Each slot holds a small record (a 3-element list); storing it
    ;; into the long-lived ring is an old-to-young pointer.
    (vector-set! ring (mod i 64) (cons i (cons (* i 2) (cons (* i 3) nil))))
    (set! i (+ i 1))))

(print i)

(define live 0)
(define j 0)
(while (< j 64)
  (begin
    (if (pair? (vector-ref ring j)) (set! live (+ live 1)) nil)
    (set! j (+ j 1))))
(print live)
|};
  }

let tak =
  {
    name = "tak";
    description = "the Takeuchi function: deep recursion, heavy frame churn";
    expected_output = Some "7\n";
    source =
      {|
(define (tak x y z)
  (if (< y x)
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))
      z))
(print (tak 18 12 6))
|};
  }

let prelude =
  {|
;; --- Beltlang prelude: list library ------------------------------
(define (length l) (if (null? l) 0 (+ 1 (length (cdr l)))))
(define (append a b) (if (null? a) b (cons (car a) (append (cdr a) b))))
(define (reverse-onto l acc)
  (if (null? l) acc (reverse-onto (cdr l) (cons (car l) acc))))
(define (reverse l) (reverse-onto l nil))
(define (map f l) (if (null? l) nil (cons (f (car l)) (map f (cdr l)))))
(define (filter p l)
  (if (null? l) nil
      (if (p (car l))
          (cons (car l) (filter p (cdr l)))
          (filter p (cdr l)))))
(define (foldl f acc l)
  (if (null? l) acc (foldl f (f acc (car l)) (cdr l))))
(define (iota-from a n) (if (= n 0) nil (cons a (iota-from (+ a 1) (- n 1)))))
(define (iota n) (iota-from 0 n))
(define (assq k l)
  (if (null? l) nil
      (if (eq? (car (car l)) k) (car l) (assq k (cdr l)))))
(define (for-each f l)
  (if (null? l) nil (begin (f (car l)) (for-each f (cdr l)))))
;; ------------------------------------------------------------------
|}

let sieve =
  {
    name = "sieve";
    description = "primes below 1000 by repeated closure-based list filtering";
    expected_output = Some "168\n997\n";
    source =
      prelude
      ^ {|
(define (sieve l)
  (if (null? l)
      nil
      (let ((p (car l)))
        (cons p (sieve (filter (lambda (x) (not (= (mod x p) 0))) (cdr l)))))))

(define primes (sieve (iota-from 2 998)))
(print (length primes))
(print (foldl (lambda (a b) (if (> a b) a b)) 0 primes))
|};
  }

let dict =
  {
    name = "dict";
    description = "association-list dictionary under insert/update/lookup load";
    expected_output = Some "256\n510\n96\n";
    source =
      prelude
      ^ {|
;; an alist of (key . box) pairs; updates overwrite the box contents
;; (old-to-young stores once the spine has aged)
(define table nil)
(define (insert! k v) (set! table (cons (cons k (cons v nil)) table)))
(define (update! k v)
  (let ((e (assq k table)))
    (if (null? e) (insert! k v) (set-car! (cdr e) v))))
(define (lookup k)
  (let ((e (assq k table)))
    (if (null? e) (- 0 1) (car (cdr e)))))

;; build 256 entries
(for-each (lambda (k) (insert! k k)) (iota 256))
(print (length table))

;; update every entry 8 times with fresh values
(define round 0)
(while (< round 8)
  (begin
    (for-each (lambda (k) (update! k (* k 2))) (iota 256))
    (set! round (+ round 1))))
(print (lookup 255))  ; 255 * 2 = 510
(print (lookup 48))   ; 48 * 2 = 96
|};
  }

let all = [ gcbench; nqueens; list_sort; queue_churn; tak; sieve; dict ]
let by_name n = List.find_opt (fun p -> p.name = n) all
