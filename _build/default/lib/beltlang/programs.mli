(** Ready-made Beltlang programs.

    Real (interpreted) programs whose memory is managed by the Beltway
    collectors — the second, independent mutator family next to the
    synthetic SPEC-like generators. Each value is the program source;
    [expected_output] (when given) is the exact [print] output, used
    by the cross-configuration differential tests: every collector
    must produce byte-identical program output. *)

type t = {
  name : string;
  source : string;
  expected_output : string option;
  description : string;
}

val gcbench : t
(** Boehm's classic GCBench: builds and drops complete binary trees of
    increasing depth, top-down and bottom-up, with a long-lived tree
    held throughout. *)

val nqueens : t
(** 8-queens solution count via list-based backtracking. *)

val list_sort : t
(** Merge sort over a pseudo-random 400-element list (LCG-generated);
    prints the sum before and after sorting and a sortedness check. *)

val queue_churn : t
(** An imperative bounded queue over vectors, cycled many times:
    steady old-to-young stores (the remset workout). *)

val tak : t
(** The Takeuchi function — deep recursion, environment-frame
    pressure, almost no retained data. *)

val sieve : t
(** Primes below 1000 by repeated list filtering through closures —
    heavy short-lived list churn with a growing long-lived result. *)

val dict : t
(** An association-list dictionary under insert/update/lookup load:
    update-in-place stores over an ageing spine (old-to-young
    pointers). *)

val prelude : string
(** A small list library written in Beltlang itself ([length],
    [append], [reverse], [map], [filter], [foldl], [iota], [assq],
    [for-each]); programs marked below already include it. *)

val all : t list
val by_name : string -> t option
