(** The Beltlang interpreter over the Beltway heap.

    Every runtime value is a tagged word ([Value.t]); every compound
    value — pairs, vectors, closures, environment frames — is an
    object on the simulated heap, allocated through the collector and
    mutated through the write barrier. The interpreter roots its
    working set on the shadow stack with mark/release discipline, so
    it is correct under every collector configuration; this is the
    "interpreter heap" reproduction strategy: a real language runtime
    whose memory behaviour the collectors manage.

    Heap layout: pairs are 2-slot objects; vectors are n-slot objects;
    closures are [|env; lambda-index|]; environment frames are
    [|parent; slot...|]. Booleans are the immediates 1/0; the empty
    list is the null reference. *)

type t

exception Runtime_error of string

val create : Beltway.Gc.t -> t
(** An interpreter instance over the given heap. Multiple programs may
    be run in sequence; globals persist across [run] calls. *)

val gc : t -> Beltway.Gc.t

val run : t -> Ast.program -> unit
(** Execute all top-level forms.
    @raise Runtime_error on dynamic type errors or arity mismatches.
    @raise Beltway.Gc.Out_of_memory when the heap is too small. *)

val run_string : t -> string -> unit
(** Parse, compile and run.
    @raise Sexp.Parse_error / Ast.Compile_error accordingly. *)

val output : t -> string
(** Everything printed by [print] so far. *)

val clear_output : t -> unit

val global : t -> string -> Value.t option
(** Current value of a top-level definition (for tests). *)
