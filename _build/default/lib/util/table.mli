(** Plain-text table rendering for the experiment harness.

    Every figure and table the benchmark binary reproduces is printed
    as an aligned text table so the output can be compared to the paper
    and post-processed (each data row is also emitted in a stable
    machine-readable "#csv" form by {!to_csv}). *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from [columns]. *)

val add_rowf : t -> float list -> unit
(** Convenience: format each float with 3 decimal places, prefixing the
    row with nothing. *)

val render : t -> string
(** Aligned, boxed text rendering including the title. *)

val to_csv : t -> string
(** Comma-separated rendering (header + rows), values escaped
    minimally (commas replaced by [;]). *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
