let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean = function
  | [] -> 0.0
  | l ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats_math.geomean: non-positive value"
          else acc +. Float.log x)
        0.0 l
    in
    Float.exp (sum_logs /. float_of_int (List.length l))

let min_l = function
  | [] -> invalid_arg "Stats_math.min_l: empty"
  | x :: xs -> List.fold_left Float.min x xs

let max_l = function
  | [] -> invalid_arg "Stats_math.max_l: empty"
  | x :: xs -> List.fold_left Float.max x xs

let normalize_to_best l =
  let best = min_l l in
  if best <= 0.0 then invalid_arg "Stats_math.normalize_to_best: non-positive best";
  List.map (fun x -> x /. best) l

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats_math.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats_math.percentile: p out of range";
  let a = Array.copy a in
  Array.sort compare a;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then a.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let round_to digits x =
  let m = Float.pow 10.0 (float_of_int digits) in
  Float.round (x *. m) /. m
