(** Binary min-heap priority queue with integer priorities.

    Used by the workload generators to schedule object deaths on the
    allocation clock (priority = death time in bytes allocated). *)

type 'a t

val create : dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> prio:int -> 'a -> unit
(** O(log n) insertion. *)

val min_prio : 'a t -> int option
(** Priority of the minimum element, or [None] if empty. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the minimum (priority, value) pair. *)

val pop_le : 'a t -> int -> (int * 'a) option
(** [pop_le t bound] pops the minimum element only when its priority is
    [<= bound]; the usual "drain everything due by now" idiom is
    [while pop_le t now <> None do ... done]. *)

val clear : 'a t -> unit
