type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.columns) (List.length row));
  t.rows <- t.rows @ [ row ]

let add_rowf t row = add_row t (List.map (Printf.sprintf "%.3f") row)

let widths t =
  let ncols = List.length t.columns in
  let w = Array.make ncols 0 in
  let feed row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  feed t.columns;
  List.iter feed t.rows;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let pad i cell =
    let n = w.(i) - String.length cell in
    cell ^ String.make (max 0 n) ' '
  in
  let render_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun wi ->
        Buffer.add_string buf (String.make (wi + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  render_row t.columns;
  rule ();
  List.iter render_row t.rows;
  rule ();
  Buffer.contents buf

let escape cell = String.map (fun c -> if c = ',' then ';' else c) cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row_to_csv row = String.concat "," (List.map escape row) in
  Buffer.add_string buf ("#csv " ^ escape t.title ^ "\n");
  Buffer.add_string buf (row_to_csv t.columns ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (row_to_csv r ^ "\n")) t.rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
