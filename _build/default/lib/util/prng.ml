type t = { mutable state : int }

(* SplitMix64 constants truncated to OCaml's 63-bit int range; the
   generator is a 63-bit SplitMix variant, which is more than adequate
   for workload simulation. *)
let golden_gamma = 0x1E3779B97F4A7C15

let create ~seed = { state = seed }
let copy t = { state = t.state }

let mix z =
  let z = (z lxor (z lsr 30)) * 0x2F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let next t =
  t.state <- t.state + golden_gamma;
  mix t.state land max_int

let split t =
  let s = next t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine for simulation purposes; bounds are
     tiny compared to 2^62 so bias is negligible. *)
  next t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound = Float.of_int (next t) /. Float.of_int max_int *. bound

let bool t = next t land 1 = 1

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t ~mean =
  let u = Float.max 1e-12 (float t 1.0) in
  -.mean *. Float.log u

let pareto t ~shape ~scale =
  let u = Float.max 1e-12 (float t 1.0) in
  scale /. Float.pow u (1.0 /. shape)

let geometric t ~p =
  let p = Float.max 1e-9 p in
  let u = Float.max 1e-12 (float t 1.0) in
  int_of_float (Float.log u /. Float.log (1.0 -. p))

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
