(** Fixed-bucket histograms for pause-time distributions. *)

type t

val create : bucket_width:float -> unit -> t
(** Buckets are [\[k*w, (k+1)*w)]. @raise Invalid_argument if
    [bucket_width <= 0]. *)

val add : t -> float -> unit
(** Record one observation; negative observations are clamped to 0. *)

val count : t -> int
(** Total observations. *)

val max_value : t -> float
(** Largest observation recorded (0 when empty). *)

val buckets : t -> (float * int) list
(** Non-empty buckets as (lower bound, count), ascending. *)

val mean : t -> float
(** Mean of raw observations (exact, not bucketised). *)
