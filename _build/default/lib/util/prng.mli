(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the reproduction (workload generators,
    property tests that need their own stream) flows through this
    SplitMix64 implementation so that every experiment is exactly
    reproducible from a seed, independent of the OCaml stdlib [Random]
    state. SplitMix64 is the standard seeding generator from Steele,
    Lea & Flood, "Fast Splittable Pseudorandom Number Generators"
    (OOPSLA 2014). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next : t -> int
(** [next t] is the next raw 63-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto(shape, scale) sample; heavy-tailed, used for object-lifetime
    mixtures. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success of a Bernoulli([p])
    trial; [p] is clamped away from 0. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on
    empty input. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
