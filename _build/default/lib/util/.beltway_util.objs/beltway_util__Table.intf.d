lib/util/table.mli:
