lib/util/histogram.ml: Float Hashtbl List Option
