lib/util/pqueue.mli:
