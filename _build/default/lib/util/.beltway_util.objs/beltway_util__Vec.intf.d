lib/util/vec.mli:
