lib/util/prng.mli:
