lib/util/histogram.mli:
