type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (cap * 2) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let v = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  v

let top t =
  if t.len = 0 then invalid_arg "Vec.top: empty";
  t.data.(t.len - 1)

let clear t =
  (* Overwrite with dummy so we do not retain OCaml-side garbage. *)
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let truncate t n =
  if n < t.len then begin
    Array.fill t.data n (t.len - n) t.dummy;
    t.len <- n
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_list t = List.init t.len (fun i -> t.data.(i))
let to_array t = Array.sub t.data 0 t.len

let of_list ~dummy l =
  let t = create ~capacity:(max 1 (List.length l)) ~dummy () in
  List.iter (push t) l;
  t

let swap_remove t i =
  check t i "swap_remove";
  let v = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  t.data.(t.len) <- t.dummy;
  v
