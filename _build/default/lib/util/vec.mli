(** Growable arrays.

    OCaml 5.1 predates [Stdlib.Dynarray]; this is the small subset the
    collector and workload generators need, tuned for the hot paths
    (remembered-set buffers, root stacks): amortised O(1) push, O(1)
    random access, O(1) clear that keeps the backing store. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector. [dummy] fills unused backing
    slots (it is never observable through the API). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element. @raise Invalid_argument when
    empty. *)

val top : 'a t -> 'a
(** Last element without removing it. @raise Invalid_argument when
    empty. *)

val clear : 'a t -> unit
(** Logical clear; capacity (and [dummy] slots) retained. *)

val truncate : 'a t -> int -> unit
(** [truncate t n] drops elements at indices >= [n]. No-op if already
    shorter. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t
val swap_remove : 'a t -> int -> 'a
(** [swap_remove t i] removes index [i] in O(1) by moving the last
    element into its place; returns the removed element. Order is not
    preserved. *)
