type 'a t = { prios : int Vec.t; vals : 'a Vec.t }

let create ~dummy () =
  { prios = Vec.create ~dummy:0 (); vals = Vec.create ~dummy () }

let length t = Vec.length t.prios
let is_empty t = Vec.is_empty t.prios

let swap t i j =
  let pi = Vec.get t.prios i and pj = Vec.get t.prios j in
  Vec.set t.prios i pj;
  Vec.set t.prios j pi;
  let vi = Vec.get t.vals i and vj = Vec.get t.vals j in
  Vec.set t.vals i vj;
  Vec.set t.vals j vi

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Vec.get t.prios i < Vec.get t.prios parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && Vec.get t.prios l < Vec.get t.prios !smallest then smallest := l;
  if r < n && Vec.get t.prios r < Vec.get t.prios !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~prio v =
  Vec.push t.prios prio;
  Vec.push t.vals v;
  sift_up t (length t - 1)

let min_prio t = if is_empty t then None else Some (Vec.get t.prios 0)

let pop_min t =
  if is_empty t then None
  else begin
    let prio = Vec.get t.prios 0 and v = Vec.get t.vals 0 in
    let last = length t - 1 in
    swap t 0 last;
    ignore (Vec.pop t.prios);
    ignore (Vec.pop t.vals);
    if last > 0 then sift_down t 0;
    Some (prio, v)
  end

let pop_le t bound =
  match min_prio t with
  | Some p when p <= bound -> pop_min t
  | _ -> None

let clear t =
  Vec.clear t.prios;
  Vec.clear t.vals
