(** Small numeric helpers used by the experiment harness: the paper
    reports geometric means across benchmarks and normalises each curve
    to the best point in the figure. *)

val mean : float list -> float
(** Arithmetic mean; 0 on empty input. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on empty input.
    @raise Invalid_argument if any value is [<= 0]. *)

val min_l : float list -> float
(** Minimum; @raise Invalid_argument on empty input. *)

val max_l : float list -> float
(** Maximum; @raise Invalid_argument on empty input. *)

val normalize_to_best : float list -> float list
(** Divide every value by the list minimum (the paper's
    "relative to best result, lower is better" y-axes). Values [<= 0]
    or an empty list are rejected. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]]; sorts a copy; linear
    interpolation between ranks. @raise Invalid_argument on empty. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds to [digits] decimal places. *)
