type t = {
  bucket_width : float;
  counts : (int, int) Hashtbl.t;
  mutable n : int;
  mutable sum : float;
  mutable max_v : float;
}

let create ~bucket_width () =
  if bucket_width <= 0.0 then invalid_arg "Histogram.create: width must be positive";
  { bucket_width; counts = Hashtbl.create 64; n = 0; sum = 0.0; max_v = 0.0 }

let add t v =
  let v = Float.max 0.0 v in
  let b = int_of_float (v /. t.bucket_width) in
  Hashtbl.replace t.counts b (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts b));
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let max_value t = t.max_v

let buckets t =
  Hashtbl.fold (fun b c acc -> (float_of_int b *. t.bucket_width, c) :: acc) t.counts []
  |> List.sort compare

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
