module Vec = Beltway_util.Vec

type collection = {
  n : int;
  reason : string;
  clock_words : int;
  plan_incs : int;
  plan_frames : int;
  plan_words : int;
  full_heap : bool;
  copied_words : int;
  copied_objects : int;
  scanned_slots : int;
  remset_slots : int;
  roots_scanned : int;
  freed_frames : int;
  heap_frames_after : int;
  reserve_frames : int;
}

let dummy_collection =
  {
    n = -1;
    reason = "";
    clock_words = 0;
    plan_incs = 0;
    plan_frames = 0;
    plan_words = 0;
    full_heap = false;
    copied_words = 0;
    copied_objects = 0;
    scanned_slots = 0;
    remset_slots = 0;
    roots_scanned = 0;
    freed_frames = 0;
    heap_frames_after = 0;
    reserve_frames = 0;
  }

type t = {
  mutable words_allocated : int;
  mutable objects_allocated : int;
  mutable barrier_ops : int;
  mutable barrier_fast : int;
  mutable barrier_slow : int;
  mutable barrier_filtered : int;
  mutable frames_allocated : int;
  mutable peak_frames : int;
  collections : collection Vec.t;
}

let create () =
  {
    words_allocated = 0;
    objects_allocated = 0;
    barrier_ops = 0;
    barrier_fast = 0;
    barrier_slow = 0;
    barrier_filtered = 0;
    frames_allocated = 0;
    peak_frames = 0;
    collections = Vec.create ~dummy:dummy_collection ();
  }

let record_collection t c = Vec.push t.collections c
let gcs t = Vec.length t.collections

let total_copied_words t =
  Vec.fold (fun acc c -> acc + c.copied_words) 0 t.collections

let total_freed_frames t =
  Vec.fold (fun acc c -> acc + c.freed_frames) 0 t.collections

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>allocated: %d words in %d objects@,\
     barriers: %d (%d fast, %d slow, %d filtered)@,\
     collections: %d (copied %d words, freed %d frames, peak %d frames)@]"
    t.words_allocated t.objects_allocated t.barrier_ops t.barrier_fast t.barrier_slow
    t.barrier_filtered (gcs t) (total_copied_words t) (total_freed_frames t)
    t.peak_frames
