(** Heap integrity checking.

    [check] walks the heap and validates every structural invariant the
    collector relies on; it is run by the test suite after interleaved
    mutation and collection under every configuration. Checks:

    - every root reference points at a well-formed, non-forwarded
      object in a frame owned by a live increment (or the boot space);
    - every reference field of every increment-resident object does
      likewise;
    - frame metadata agrees with increment membership, and per-belt
      FIFO stamp order holds (front stamps are minimal);
    - occupancy accounting matches a direct walk;
    - {b remset sufficiency}: for every object's reference slot whose
      (source frame, target frame) pair satisfies the barrier
      predicate, a remembered-set entry for that slot exists — the
      exact invariant that makes independent increment collection
      sound. Only *reachable* source objects are required to be
      covered (dead objects' slots may have been dropped with their
      frames). *)

val check : Gc.t -> (unit, string) result
(** [Ok ()] or [Error description_of_first_violation]. *)

val check_exn : Gc.t -> unit
(** @raise Failure on the first violation. *)
