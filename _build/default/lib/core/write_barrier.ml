let would_remember st ~src_frame ~tgt_frame =
  src_frame <> tgt_frame
  && Frame_info.stamp st.State.finfo tgt_frame
     < Frame_info.stamp st.State.finfo src_frame

(* Is the frame part of the open nursery increment? Used only when the
   configuration enables the filter (single-increment nursery). *)
let in_nursery st frame =
  match Belt.back st.State.belts.(0) with
  | None -> false
  | Some inc -> Frame_info.incr_of st.State.finfo frame = inc.Increment.id

let record st ~slot ~target =
  let stats = st.State.stats in
  stats.Gc_stats.barrier_ops <- stats.Gc_stats.barrier_ops + 1;
  let frame_log = Memory.frame_log st.State.mem in
  let s = slot lsr frame_log in
  let t = target lsr frame_log in
  match st.State.config.Config.barrier with
  | Config.Cards ->
    (* Unconditional card marking: no stamp comparison at all; the
       collector pays by scanning dirty frames. *)
    Card_table.mark st.State.cards ~frame:s;
    stats.Gc_stats.barrier_fast <- stats.Gc_stats.barrier_fast + 1
  | Config.Remsets ->
    if st.State.config.Config.nursery_filter && in_nursery st s then
      stats.Gc_stats.barrier_filtered <- stats.Gc_stats.barrier_filtered + 1
    else if
      s <> t
      && Frame_info.stamp st.State.finfo t < Frame_info.stamp st.State.finfo s
    then begin
      stats.Gc_stats.barrier_slow <- stats.Gc_stats.barrier_slow + 1;
      Remset.insert st.State.remsets ~src_frame:s ~tgt_frame:t ~slot
    end
    else stats.Gc_stats.barrier_fast <- stats.Gc_stats.barrier_fast + 1
