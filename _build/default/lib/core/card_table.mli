(** Card-table pointer tracking: the classic alternative to remembered
    sets (paper S5, citing Wilson & Moher).

    A card-marking barrier is unconditionally cheap — mark the card
    containing the written slot, no stamp comparison — and pays for it
    at collection time: every dirty card outside the plan must be
    scanned for pointers into the plan. The paper's GCTk could not use
    cards because Jikes RVM lays out arrays and scalars in opposite
    directions (object starts cannot be recovered from card
    boundaries); our increments can enumerate their objects, so this
    reproduction implements cards at frame granularity — coarse cards,
    accentuating the scan-cost side of the trade-off the paper
    describes. Select with the [+cards] configuration option and
    compare via the ablation bench. *)

type t

val create : unit -> t

val mark : t -> frame:int -> unit
(** The mutator wrote a pointer somewhere in this frame. O(1). *)

val is_dirty : t -> frame:int -> bool

val clear : t -> frame:int -> unit
(** Clean one card (after a collection scanned it and found nothing
    left to remember, or when its frame is freed). *)

val iter_dirty : t -> (int -> unit) -> unit
(** All currently dirty frames (order unspecified). Safe against
    marks/clears during iteration (iterates a snapshot). *)

val dirty_count : t -> int
