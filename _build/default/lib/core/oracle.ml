let reachable gc =
  let st = Gc.state gc in
  let mem = st.State.mem in
  let seen = Hashtbl.create 1024 in
  let work = ref [] in
  let push v =
    if Value.is_ref v then begin
      let a = Value.to_addr v in
      (* Trace only collector-owned objects: boot objects are immortal
         and hold no heap references. *)
      if (not (Boot_space.contains st.State.boot a)) && not (Hashtbl.mem seen a) then begin
        Hashtbl.replace seen a ();
        work := a :: !work
      end
    end
  in
  Roots.iter st.State.roots push;
  let rec drain () =
    match !work with
    | [] -> ()
    | a :: rest ->
      work := rest;
      Object_model.iter_ref_slots mem a (fun slot -> push (Memory.get mem slot));
      drain ()
  in
  drain ();
  seen

let live_words gc =
  let st = Gc.state gc in
  let mem = st.State.mem in
  Hashtbl.fold
    (fun addr () acc -> acc + Object_model.size_of mem addr)
    (reachable gc) 0

let retained_garbage_words gc = Gc.live_words_upper_bound gc - live_words gc
