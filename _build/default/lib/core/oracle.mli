(** A non-moving reachability oracle over the simulated heap.

    The oracle computes exact reachability from the root set by a
    mark-style trace that never moves anything — an independent
    implementation against which every Beltway configuration is
    validated in the test suite. It also measures exact live data,
    which is how the tests observe the paper's completeness results:
    Beltway X.X retains cross-increment cyclic garbage forever
    ([retained_garbage] stays positive), while X.X.100 eventually
    reclaims it. *)

val reachable : Gc.t -> (Addr.t, unit) Hashtbl.t
(** Addresses of all heap objects (boot space excluded) reachable from
    the roots. *)

val live_words : Gc.t -> int
(** Exact words of reachable heap data. *)

val retained_garbage_words : Gc.t -> int
(** Occupied words minus reachable words: floating garbage currently
    held by the heap. *)
