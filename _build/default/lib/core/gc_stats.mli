(** Collector statistics and the per-collection event log.

    The harness reconstructs the paper's figures from these raw event
    counts: GC "time" and mutator "time" are computed by
    [Beltway_sim.Cost_model] from bytes copied, slots scanned, barrier
    paths taken, etc., so the collector itself stays measurement-
    agnostic. The allocation clock (words allocated so far) timestamps
    every collection, which is what the MMU analysis needs. *)

type collection = {
  n : int; (** ordinal of this collection *)
  reason : string; (** "heap-full", "nursery", "remset", ... *)
  clock_words : int; (** allocation clock when the pause began *)
  plan_incs : int; (** increments collected together *)
  plan_frames : int;
  plan_words : int; (** occupancy of the collected increments *)
  full_heap : bool;
  copied_words : int;
  copied_objects : int;
  scanned_slots : int; (** slots examined by the Cheney scan *)
  remset_slots : int;
      (** barrier-bookkeeping slots processed as roots: remembered-set
          entries under [Remsets], or slots of dirty-frame objects
          scanned under [Cards] *)
  roots_scanned : int;
  freed_frames : int;
  heap_frames_after : int; (** frames still held after the collection *)
  reserve_frames : int; (** copy reserve in force when triggered *)
}

type t = {
  mutable words_allocated : int;
  mutable objects_allocated : int;
  mutable barrier_ops : int; (** barrier executions (every pointer store) *)
  mutable barrier_fast : int; (** taken but nothing remembered *)
  mutable barrier_slow : int; (** remset insert performed *)
  mutable barrier_filtered : int; (** skipped by the nursery-source filter *)
  mutable frames_allocated : int; (** lifetime frame grants *)
  mutable peak_frames : int; (** high-water heap footprint *)
  collections : collection Beltway_util.Vec.t;
}

val create : unit -> t

val record_collection : t -> collection -> unit

val gcs : t -> int
val total_copied_words : t -> int
val total_freed_frames : t -> int

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph human-readable summary. *)
