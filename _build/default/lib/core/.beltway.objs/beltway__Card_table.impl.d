lib/core/card_table.ml: Hashtbl List
