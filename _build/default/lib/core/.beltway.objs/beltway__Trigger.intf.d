lib/core/trigger.mli: State
