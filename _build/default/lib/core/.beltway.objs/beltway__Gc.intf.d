lib/core/gc.mli: Addr Config Format Gc_stats Roots State Type_registry Value
