lib/core/frame_info.mli:
