lib/core/gc.ml: Addr Array Belt Boot_space Card_table Config Copy_reserve Format Frame_info Gc_stats Increment List Memory Object_model Remset Schedule State Type_registry Value Write_barrier
