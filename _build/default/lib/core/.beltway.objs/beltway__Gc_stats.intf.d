lib/core/gc_stats.mli: Beltway_util Format
