lib/core/verify.ml: Array Belt Beltway_util Boot_space Card_table Config Format Frame_info Gc Hashtbl Increment List Memory Object_model Oracle Printf Remset Result Roots State Value Write_barrier
