lib/core/trigger.ml: Addr Array Belt Config Copy_reserve Increment Remset State
