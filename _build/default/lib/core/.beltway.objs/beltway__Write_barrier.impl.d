lib/core/write_barrier.ml: Array Belt Card_table Config Frame_info Gc_stats Increment Memory Remset State
