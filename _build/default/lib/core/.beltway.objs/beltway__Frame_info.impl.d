lib/core/frame_info.ml: Array
