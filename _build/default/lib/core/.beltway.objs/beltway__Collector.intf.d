lib/core/collector.mli: Gc_stats Increment State
