lib/core/schedule.mli: Collector Gc_stats Increment State
