lib/core/belt.mli: Increment
