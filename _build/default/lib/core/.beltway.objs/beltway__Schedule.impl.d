lib/core/schedule.ml: Addr Array Belt Collector Config Copy_reserve Increment List Logs Memory Option Printf State Trigger
