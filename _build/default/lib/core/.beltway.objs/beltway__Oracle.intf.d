lib/core/oracle.mli: Addr Gc Hashtbl
