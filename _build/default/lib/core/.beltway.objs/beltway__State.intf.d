lib/core/state.mli: Addr Belt Boot_space Card_table Config Frame_info Gc_stats Hashtbl Increment Memory Remset Roots Type_registry
