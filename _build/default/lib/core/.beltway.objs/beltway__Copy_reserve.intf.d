lib/core/copy_reserve.mli: State
