lib/core/state.ml: Array Belt Beltway_util Boot_space Card_table Config Frame_info Gc_stats Hashtbl Increment List Memory Printf Remset Roots Type_registry
