lib/core/card_table.mli:
