lib/core/collector.ml: Array Beltway_util Card_table Config Copy_reserve Gc_stats Hashtbl Increment List Memory Object_model Option Printf Remset Roots State Value Write_barrier
