lib/core/copy_reserve.ml: Array Belt Config Increment List State
