lib/core/config.ml: Array Format List Printf Result String
