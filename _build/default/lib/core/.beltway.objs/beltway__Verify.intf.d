lib/core/verify.mli: Gc
