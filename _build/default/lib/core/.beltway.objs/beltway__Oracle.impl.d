lib/core/oracle.ml: Boot_space Gc Hashtbl Memory Object_model Roots State Value
