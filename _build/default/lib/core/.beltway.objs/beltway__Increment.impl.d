lib/core/increment.ml: Addr Beltway_util List Memory Object_model
