lib/core/remset.ml: Beltway_util Hashtbl List
