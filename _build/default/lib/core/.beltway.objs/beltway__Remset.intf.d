lib/core/remset.mli: Addr
