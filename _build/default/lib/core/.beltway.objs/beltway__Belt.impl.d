lib/core/belt.ml: Increment List
