lib/core/write_barrier.mli: Addr State
