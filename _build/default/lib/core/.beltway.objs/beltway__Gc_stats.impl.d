lib/core/gc_stats.ml: Beltway_util Format
