lib/core/increment.mli: Addr Beltway_util Memory
