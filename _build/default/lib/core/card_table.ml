type t = { dirty : (int, unit) Hashtbl.t }

let create () = { dirty = Hashtbl.create 64 }
let mark t ~frame = Hashtbl.replace t.dirty frame ()
let is_dirty t ~frame = Hashtbl.mem t.dirty frame
let clear t ~frame = Hashtbl.remove t.dirty frame

let iter_dirty t f =
  Hashtbl.fold (fun frame () acc -> frame :: acc) t.dirty [] |> List.iter f

let dirty_count t = Hashtbl.length t.dirty
