(* beltlang: run a Beltlang program (from a file or the bundled suite)
   on a simulated heap under any Beltway collector configuration. *)

let run config_str heap_kb source_file builtin list_programs show_stats =
  if list_programs then begin
    List.iter
      (fun (p : Beltlang.Programs.t) ->
        Printf.printf "%-12s %s\n" p.name p.description)
      Beltlang.Programs.all;
    exit 0
  end;
  match Beltway.Config.parse config_str with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    exit 2
  | Ok config ->
    let source =
      match (builtin, source_file) with
      | Some name, _ -> (
        match Beltlang.Programs.by_name name with
        | Some p -> p.Beltlang.Programs.source
        | None ->
          Printf.eprintf "error: no bundled program %S (try --list)\n" name;
          exit 2)
      | None, Some file -> (
        try In_channel.with_open_text file In_channel.input_all
        with Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          exit 2)
      | None, None ->
        Printf.eprintf "error: give a FILE or --program NAME (see --list)\n";
        exit 2
    in
    let gc = Beltway.Gc.create ~config ~heap_bytes:(heap_kb * 1024) () in
    let interp = Beltlang.Interp.create gc in
    let status =
      try
        Beltlang.Interp.run_string interp source;
        0
      with
      | Beltlang.Sexp.Parse_error e | Beltlang.Ast.Compile_error e ->
        Printf.eprintf "syntax error: %s\n" e;
        2
      | Beltlang.Interp.Runtime_error e ->
        Printf.eprintf "runtime error: %s\n" e;
        1
      | Beltway.Gc.Out_of_memory e ->
        Printf.eprintf "out of memory: %s\n" e;
        3
    in
    print_string (Beltlang.Interp.output interp);
    if show_stats then
      Format.eprintf "[gc %a] %a@." Beltway.Config.pp config Beltway.Gc_stats.pp_summary
        (Beltway.Gc.stats gc);
    exit status

open Cmdliner

let config_arg =
  let doc = "Collector configuration (as for beltway-run)." in
  Arg.(value & opt string "25.25.100" & info [ "g"; "gc" ] ~docv:"CONFIG" ~doc)

let heap_arg =
  let doc = "Heap size in KiB." in
  Arg.(value & opt int 512 & info [ "H"; "heap-kb" ] ~docv:"KB" ~doc)

let file_arg =
  let doc = "Beltlang source file." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let builtin_arg =
  let doc = "Run a bundled program instead of a file." in
  Arg.(value & opt (some string) None & info [ "p"; "program" ] ~docv:"NAME" ~doc)

let list_arg =
  let doc = "List bundled programs." in
  Arg.(value & flag & info [ "list" ] ~doc)

let stats_arg =
  let doc = "Print collector statistics to stderr." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let cmd =
  let doc = "run a Beltlang program on a Beltway-collected heap" in
  Cmd.v
    (Cmd.info "beltlang" ~doc)
    Term.(const run $ config_arg $ heap_arg $ file_arg $ builtin_arg $ list_arg $ stats_arg)

let () = Cmd.eval cmd |> exit
